// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them as text.
//
// Usage:
//
//	experiments [-scale quick|paper] [-only substring] [-csv dir]
//	            [-concurrency N] [-telemetry] [-progress]
//	            [-faults] [-loss P] [-outage F]
//
// The quick scale (default) runs the whole evaluation in a few minutes
// at roughly a tenth of the paper's size; the paper scale uses 250
// anchors and 2269 proxy servers and takes correspondingly longer.
// With -csv, each figure's data series is also written as CSV for
// replotting. The pipelines are deterministic at any -concurrency
// setting; -telemetry prints per-stage timings after the run and
// -progress streams completion counts during it.
//
// -faults arms the netsim fault-injection layer for the whole
// evaluation (default mix at the -loss rate, 0.1 unless given);
// -loss or -outage alone also arm it. The Robustness experiment runs
// its own loss sweep regardless, restoring the lab afterwards.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"activegeo/internal/experiments"
	"activegeo/internal/telemetry"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	only := flag.String("only", "", "run only experiments whose name contains this substring (e.g. 'Fig 17')")
	csvDir := flag.String("csv", "", "also write each figure's data series as CSV into this directory")
	concurrency := flag.Int("concurrency", 0, "worker pool size for the parallel pipelines (0 = GOMAXPROCS; results are identical at any setting)")
	telFlag := flag.Bool("telemetry", false, "print per-stage timings and counters to stderr after the run")
	progressFlag := flag.Bool("progress", false, "stream pipeline progress to stderr")
	faultsFlag := flag.Bool("faults", false, "arm fault injection with the default mix at the -loss rate")
	loss := flag.Float64("loss", 0, "injected probe-loss rate (implies -faults; default 0.1 when -faults is set alone)")
	outage := flag.Float64("outage", 0, "fraction of landmarks with an outage window (implies -faults; overrides the default mix)")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("creating csv dir: %v", err)
		}
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q (want quick or paper)", *scale)
	}
	cfg.Concurrency = *concurrency
	cfg.Faults = experiments.FaultProfile(*faultsFlag, *loss, *outage)

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building lab (%d anchors, %d probes, %d servers)…\n",
		cfg.Anchors, cfg.Probes, cfg.FleetTotal)
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	tel := telemetry.New()
	lab.Telemetry = tel
	if *progressFlag {
		tel.OnProgress(func(p telemetry.Progress) {
			step := p.Total / 20
			if step < 1 {
				step = 1
			}
			if p.Done%step == 0 || p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "  %s: %d/%d\n", p.Stage, p.Done, p.Total)
			}
		})
	}
	fmt.Fprintf(os.Stderr, "lab ready in %v\n", time.Since(start).Round(time.Millisecond))

	// csvOut opens a CSV file in the export directory, or returns nil.
	csvOut := func(name string) *os.File {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, experiments.CSVName(name)))
		if err != nil {
			log.Printf("csv %s: %v", name, err)
			return nil
		}
		return f
	}
	exportCSV := func(name string, write func(f *os.File) error) {
		f := csvOut(name)
		if f == nil {
			return
		}
		defer f.Close()
		if err := write(f); err != nil {
			log.Printf("csv %s: %v", name, err)
		}
	}

	type renderer func() (string, error)
	exps := []struct {
		name string
		run  renderer
	}{
		{"Fig 2", func() (string, error) { r, err := lab.Fig2Calibration(); return render(r, err) }},
		{"Fig 4", func() (string, error) { r, err := lab.Fig4ToolValidation(); return render(r, err) }},
		{"Fig 5/6", func() (string, error) {
			rows, err := lab.Fig5Windows()
			if err != nil {
				return "", err
			}
			exportCSV("fig5", func(f *os.File) error { return experiments.WriteFig5CSV(f, rows) })
			return experiments.RenderFig5(rows), nil
		}},
		{"Fig 9", func() (string, error) {
			rows, records, err := lab.Fig9Detailed()
			if err != nil {
				return "", err
			}
			exportCSV("fig9", func(f *os.File) error { return experiments.WriteFig9CSV(f, rows) })
			exportCSV("fig9_hosts", func(f *os.File) error { return experiments.WriteFig9HostsCSV(f, records) })
			return experiments.RenderFig9(rows), nil
		}},
		{"Fig 10", func() (string, error) { r, err := lab.Fig10EstimateRatios(); return render(r, err) }},
		{"Fig 11", func() (string, error) {
			r, err := lab.Fig11LandmarkEffectiveness(8)
			if err != nil {
				return "", err
			}
			exportCSV("fig11", func(f *os.File) error { return experiments.WriteFig11CSV(f, r) })
			return r.Render(), nil
		}},
		{"§5.1 coverage", func() (string, error) { r, err := lab.CBGppCoverage(); return render(r, err) }},
		{"Fig 13", func() (string, error) { r, err := lab.Fig13Eta(); return render(r, err) }},
		{"Fig 14", func() (string, error) { return lab.Fig14Market().Render(), nil }},
		{"Fig 15/16", func() (string, error) { r, err := lab.Fig16Disambiguation(); return render(r, err) }},
		{"Fig 17", func() (string, error) {
			r, err := lab.Fig17Assessment()
			if err != nil {
				return "", err
			}
			exportCSV("fig17", func(f *os.File) error { return experiments.WriteFig17CSV(f, r) })
			return r.Render(), nil
		}},
		{"Fig 18/19", func() (string, error) {
			r, err := lab.Fig18HonestyByCountry()
			if err != nil {
				return "", err
			}
			exportCSV("fig18", func(f *os.File) error { return experiments.WriteFig18CSV(f, r) })
			return r.Render(), nil
		}},
		{"Fig 20", func() (string, error) { r, err := lab.Fig20RegionSizeVsLandmark(); return render(r, err) }},
		{"Fig 21", func() (string, error) {
			rows, err := lab.Fig21Comparison()
			if err != nil {
				return "", err
			}
			exportCSV("fig21", func(f *os.File) error { return experiments.WriteFig21CSV(f, rows) })
			return experiments.RenderFig21(rows), nil
		}},
		{"Fig 22/23", func() (string, error) {
			r, err := lab.Fig22_23Confusion()
			if err != nil {
				return "", err
			}
			exportCSV("fig22", func(f *os.File) error { return experiments.WriteFig22CSV(f, r) })
			exportCSV("fig23", func(f *os.File) error { return experiments.WriteFig23CSV(f, r) })
			return r.Render(), nil
		}},
		{"Ext refinement", func() (string, error) { r, err := lab.ExtRefinement(10); return render(r, err) }},
		{"Ext co-location", func() (string, error) { r, err := lab.ExtCoLocation("A", 80); return render(r, err) }},
		{"Ext indirect error", func() (string, error) { r, err := lab.ExtIndirectError(25); return render(r, err) }},
		{"Ext adversary", func() (string, error) { r, err := lab.ExtAdversary(); return render(r, err) }},
		{"Ext constellations", func() (string, error) { r, err := lab.ExtConstellations(); return render(r, err) }},
		{"Robustness", func() (string, error) {
			r, err := lab.Robustness(nil, 8)
			if err != nil {
				return "", err
			}
			exportCSV("robustness", func(f *os.File) error { return experiments.WriteRobustnessCSV(f, r) })
			return r.Render(), nil
		}},
	}

	failures := 0
	for _, e := range exps {
		if *only != "" && !strings.Contains(e.name, *only) {
			continue
		}
		t0 := time.Now()
		out, err := e.run()
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.name, err)
			continue
		}
		fmt.Println(strings.TrimRight(out, "\n"))
		fmt.Fprintf(os.Stderr, "  (%s in %v)\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	if *telFlag {
		fmt.Fprint(os.Stderr, tel.Render())
	}
	if failures > 0 {
		os.Exit(1)
	}
}

type renderable interface{ Render() string }

func render(r renderable, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}
