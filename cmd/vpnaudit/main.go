// Command vpnaudit runs the paper's §6 audit over the simulated VPN
// fleet and prints per-provider and per-server verdicts.
//
// Usage:
//
//	vpnaudit [-scale quick|paper] [-provider A] [-v]
//	         [-concurrency N] [-telemetry] [-progress]
//	         [-faults] [-loss P] [-outage F]
//	         [-stream] [-batch N] [-queue N]
//
// Results are identical at every -concurrency setting (all randomness is
// derived per server); the flag only trades wall-clock time for cores.
// -telemetry prints per-stage wall/CPU timings and counters to stderr
// after the run; -progress streams completion counts while it runs.
//
// -stream runs the audit through the streaming pipeline (internal/stream)
// instead of the materializing one: servers flow through bounded batches
// of -batch servers with at most -queue batches buffered, so peak memory
// is O(batch) rather than O(fleet). The verdicts are byte-identical to
// the batch audit's — -stream changes the memory profile, not the
// answers.
//
// -faults arms the netsim fault-injection layer with the default mix at
// -loss (probe loss rate, default 0.1); -loss or -outage alone also arm
// it. -outage overrides the fraction of landmarks suffering an outage
// window. Faulty runs stay deterministic — same seed, same verdicts at
// any concurrency — and print a coverage/confidence summary of what the
// resilient pipeline lost.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"activegeo/internal/assess"
	"activegeo/internal/experiments"
	"activegeo/internal/telemetry"
	"activegeo/internal/vis"
)

// printHonestyMaps renders the Figure 19 analogue: one world map per
// provider, each claimed country shaded by how many of its claims the
// measurements back up ('#' all backed … 'x' none; '?' claimed but
// unmeasured).
func printHonestyMaps(fig18 *experiments.Fig18Result, only string) {
	byProv := map[string]map[string]assess.HonestyCell{}
	for _, c := range fig18.Cells {
		if byProv[c.Provider] == nil {
			byProv[c.Provider] = map[string]assess.HonestyCell{}
		}
		byProv[c.Provider][c.Country] = c
	}
	provs := make([]string, 0, len(byProv))
	for p := range byProv {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		if only != "" && p != only {
			continue
		}
		cells := byProv[p]
		fmt.Printf("provider %s claim honesty ('#' ≥75%%, '+' ≥50%%, '-' ≥25%%, 'x' <25%%):\n", p)
		fmt.Println(vis.CountryMap(120, func(code string) rune {
			c, ok := cells[code]
			if !ok {
				return 0 // not claimed: plain land
			}
			switch h := c.Honesty(); {
			case h >= 0.75:
				return '#'
			case h >= 0.50:
				return '+'
			case h >= 0.25:
				return '-'
			default:
				return 'x'
			}
		}))
	}
}

func main() {
	scale := flag.String("scale", "quick", "audit scale: quick or paper")
	provider := flag.String("provider", "", "restrict per-server output to one provider (A–G)")
	verbose := flag.Bool("v", false, "print one line per server")
	maps := flag.Bool("maps", false, "draw a Figure 19-style honesty world map per provider")
	concurrency := flag.Int("concurrency", 0, "worker pool size for the parallel pipelines (0 = GOMAXPROCS; results are identical at any setting)")
	telFlag := flag.Bool("telemetry", false, "print per-stage timings and counters to stderr after the run")
	progressFlag := flag.Bool("progress", false, "stream pipeline progress to stderr")
	faultsFlag := flag.Bool("faults", false, "arm fault injection with the default mix at the -loss rate")
	loss := flag.Float64("loss", 0, "injected probe-loss rate (implies -faults; default 0.1 when -faults is set alone)")
	outage := flag.Float64("outage", 0, "fraction of landmarks with an outage window (implies -faults; overrides the default mix)")
	streamFlag := flag.Bool("stream", false, "run the audit through the streaming pipeline (bounded memory, identical verdicts)")
	batchSize := flag.Int("batch", 0, "streaming batch size (0 = default; only with -stream)")
	queueDepth := flag.Int("queue", 0, "streaming queue depth in batches (0 = default; only with -stream)")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Concurrency = *concurrency
	cfg.Faults = experiments.FaultProfile(*faultsFlag, *loss, *outage)

	start := time.Now()
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	tel := telemetry.New()
	lab.Telemetry = tel
	if *progressFlag {
		tel.OnProgress(progressPrinter())
	}
	if *streamFlag {
		runStreaming(lab, tel, start, *batchSize, *queueDepth, *provider, *verbose, *telFlag)
		return
	}
	run, err := lab.Audit()
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "audited %d servers in %v (%d measure / %d locate failures)\n",
		len(run.Results), time.Since(start).Round(time.Millisecond),
		run.MeasureFailures, run.LocateFailures)
	if len(run.Coverage) > 0 {
		meanCov := 0.0
		for _, r := range run.Results {
			if c, ok := run.Coverage[r.ServerID]; ok {
				meanCov += c.Coverage
			}
		}
		meanCov /= float64(len(run.Coverage))
		fmt.Fprintf(os.Stderr,
			"fault injection (loss %.2f): %d/%d servers degraded, mean coverage %.3f, %d retries, %d probe failures, %d lost landmarks, %d disconnects\n",
			cfg.Faults.ProbeLoss, run.DegradedServers, len(run.Coverage), meanCov,
			run.Retries, run.ProbeFailures, run.LostLandmarks, run.Disconnects)
	}

	fig17, err := lab.Fig17Assessment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig17.Render())

	fig18, err := lab.Fig18HonestyByCountry()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig18.Render())

	rows, err := lab.Fig21Comparison()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderFig21(rows))

	if *maps {
		printHonestyMaps(fig18, *provider)
	}

	if *verbose || *provider != "" {
		fmt.Println("per-server verdicts:")
		for _, r := range run.Results {
			if *provider != "" && r.Provider != *provider {
				continue
			}
			extra := ""
			if r.Verdict == assess.Uncertain && len(r.Candidates) > 1 {
				extra = fmt.Sprintf(" (could be: %v)", r.Candidates)
			}
			if c, ok := run.Coverage[r.ServerID]; ok && c.Confidence != "full" {
				extra += fmt.Sprintf(" [coverage %d/%d, confidence %s]", c.Measured, c.Planned, c.Confidence)
			}
			fmt.Printf("  %-14s provider %s  claimed %s  verdict %-9s probable %s%s\n",
				r.ServerID, r.Provider, r.ClaimedCountry, r.Verdict, r.ProbableCountry, extra)
		}
	}

	if *telFlag {
		fmt.Fprint(os.Stderr, tel.Render())
	}
}

// runStreaming drives the audit through the bounded-memory streaming
// pipeline and prints the tally off the columnar store. The verdicts are
// byte-identical to the batch audit's (the parity is test-pinned); the
// figure renderings need the materialized run and are batch-mode only.
func runStreaming(lab *experiments.Lab, tel *telemetry.Collector, start time.Time, batchSize, queueDepth int, provider string, verbose, telFlag bool) {
	auditor := lab.StreamingAuditor(batchSize, queueDepth)
	stats, err := auditor.Sync(context.Background(), lab.StreamSource())
	if err != nil {
		log.Fatalf("streaming audit: %v", err)
	}
	st := auditor.Store().Stats()
	fmt.Fprintf(os.Stderr, "streamed %d servers in %v: %d audited, %d skipped, %d batches (%d measure / %d locate failures)\n",
		stats.Total, time.Since(start).Round(time.Millisecond),
		stats.Audited, stats.Skipped, stats.Batches, st.MeasureFailures, st.LocateFailures)
	if st.FaultyServers > 0 {
		fmt.Fprintf(os.Stderr,
			"fault injection: %d/%d servers degraded, %d retries, %d probe failures, %d lost landmarks, %d disconnects\n",
			st.DegradedServers, st.FaultyServers, st.Retries, st.ProbeFailures, st.LostLandmarks, st.Disconnects)
	}

	t := auditor.Store().Tally()
	total := t.Credible + t.Uncertain + t.False
	fmt.Printf("streaming audit tally over %d servers:\n", total)
	fmt.Printf("  credible  %4d\n", t.Credible)
	fmt.Printf("  uncertain %4d (%d on the claimed continent)\n", t.Uncertain, t.UncertainSameCont)
	fmt.Printf("  false     %4d (%d off-continent)\n", t.False, t.FalseOffContinent)
	fmt.Printf("  reclassified: %d by data-center metadata, %d by group disambiguation\n",
		st.ReclassifiedByDC, st.ReclassifiedByGroup)

	if verbose || provider != "" {
		fmt.Println("per-server verdicts:")
		for _, s := range lab.Fleet.Servers() {
			if provider != "" && s.Provider != provider {
				continue
			}
			v, probable, ok := auditor.Store().VerdictOf(s.Host.ID)
			if !ok {
				continue
			}
			fmt.Printf("  %-14s provider %s  claimed %s  verdict %-9s probable %s\n",
				s.Host.ID, s.Provider, s.ClaimedCountry, v, probable)
		}
	}

	if telFlag {
		fmt.Fprint(os.Stderr, tel.Render())
	}
}

// progressPrinter returns a telemetry progress callback that prints a
// throttled line per stage: roughly every 5% of the total, and always
// the final event.
func progressPrinter() func(telemetry.Progress) {
	return func(p telemetry.Progress) {
		step := p.Total / 20
		if step < 1 {
			step = 1
		}
		if p.Done%step == 0 || p.Done == p.Total {
			fmt.Fprintf(os.Stderr, "  %s: %d/%d\n", p.Stage, p.Done, p.Total)
		}
	}
}
