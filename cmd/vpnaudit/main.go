// Command vpnaudit runs the paper's §6 audit over the simulated VPN
// fleet and prints per-provider and per-server verdicts.
//
// Usage:
//
//	vpnaudit [-scale quick|paper] [-provider A] [-v]
//	         [-concurrency N] [-telemetry] [-progress]
//	         [-faults] [-loss P] [-outage F]
//
// Results are identical at every -concurrency setting (all randomness is
// derived per server); the flag only trades wall-clock time for cores.
// -telemetry prints per-stage wall/CPU timings and counters to stderr
// after the run; -progress streams completion counts while it runs.
//
// -faults arms the netsim fault-injection layer with the default mix at
// -loss (probe loss rate, default 0.1); -loss or -outage alone also arm
// it. -outage overrides the fraction of landmarks suffering an outage
// window. Faulty runs stay deterministic — same seed, same verdicts at
// any concurrency — and print a coverage/confidence summary of what the
// resilient pipeline lost.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"activegeo/internal/assess"
	"activegeo/internal/experiments"
	"activegeo/internal/telemetry"
	"activegeo/internal/vis"
)

// printHonestyMaps renders the Figure 19 analogue: one world map per
// provider, each claimed country shaded by how many of its claims the
// measurements back up ('#' all backed … 'x' none; '?' claimed but
// unmeasured).
func printHonestyMaps(fig18 *experiments.Fig18Result, only string) {
	byProv := map[string]map[string]assess.HonestyCell{}
	for _, c := range fig18.Cells {
		if byProv[c.Provider] == nil {
			byProv[c.Provider] = map[string]assess.HonestyCell{}
		}
		byProv[c.Provider][c.Country] = c
	}
	provs := make([]string, 0, len(byProv))
	for p := range byProv {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		if only != "" && p != only {
			continue
		}
		cells := byProv[p]
		fmt.Printf("provider %s claim honesty ('#' ≥75%%, '+' ≥50%%, '-' ≥25%%, 'x' <25%%):\n", p)
		fmt.Println(vis.CountryMap(120, func(code string) rune {
			c, ok := cells[code]
			if !ok {
				return 0 // not claimed: plain land
			}
			switch h := c.Honesty(); {
			case h >= 0.75:
				return '#'
			case h >= 0.50:
				return '+'
			case h >= 0.25:
				return '-'
			default:
				return 'x'
			}
		}))
	}
}

func main() {
	scale := flag.String("scale", "quick", "audit scale: quick or paper")
	provider := flag.String("provider", "", "restrict per-server output to one provider (A–G)")
	verbose := flag.Bool("v", false, "print one line per server")
	maps := flag.Bool("maps", false, "draw a Figure 19-style honesty world map per provider")
	concurrency := flag.Int("concurrency", 0, "worker pool size for the parallel pipelines (0 = GOMAXPROCS; results are identical at any setting)")
	telFlag := flag.Bool("telemetry", false, "print per-stage timings and counters to stderr after the run")
	progressFlag := flag.Bool("progress", false, "stream pipeline progress to stderr")
	faultsFlag := flag.Bool("faults", false, "arm fault injection with the default mix at the -loss rate")
	loss := flag.Float64("loss", 0, "injected probe-loss rate (implies -faults; default 0.1 when -faults is set alone)")
	outage := flag.Float64("outage", 0, "fraction of landmarks with an outage window (implies -faults; overrides the default mix)")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Concurrency = *concurrency
	cfg.Faults = experiments.FaultProfile(*faultsFlag, *loss, *outage)

	start := time.Now()
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	tel := telemetry.New()
	lab.Telemetry = tel
	if *progressFlag {
		tel.OnProgress(progressPrinter())
	}
	run, err := lab.Audit()
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "audited %d servers in %v (%d measure / %d locate failures)\n",
		len(run.Results), time.Since(start).Round(time.Millisecond),
		run.MeasureFailures, run.LocateFailures)
	if len(run.Coverage) > 0 {
		meanCov := 0.0
		for _, r := range run.Results {
			if c, ok := run.Coverage[r.ServerID]; ok {
				meanCov += c.Coverage
			}
		}
		meanCov /= float64(len(run.Coverage))
		fmt.Fprintf(os.Stderr,
			"fault injection (loss %.2f): %d/%d servers degraded, mean coverage %.3f, %d retries, %d probe failures, %d lost landmarks, %d disconnects\n",
			cfg.Faults.ProbeLoss, run.DegradedServers, len(run.Coverage), meanCov,
			run.Retries, run.ProbeFailures, run.LostLandmarks, run.Disconnects)
	}

	fig17, err := lab.Fig17Assessment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig17.Render())

	fig18, err := lab.Fig18HonestyByCountry()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig18.Render())

	rows, err := lab.Fig21Comparison()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderFig21(rows))

	if *maps {
		printHonestyMaps(fig18, *provider)
	}

	if *verbose || *provider != "" {
		fmt.Println("per-server verdicts:")
		for _, r := range run.Results {
			if *provider != "" && r.Provider != *provider {
				continue
			}
			extra := ""
			if r.Verdict == assess.Uncertain && len(r.Candidates) > 1 {
				extra = fmt.Sprintf(" (could be: %v)", r.Candidates)
			}
			if c, ok := run.Coverage[r.ServerID]; ok && c.Confidence != "full" {
				extra += fmt.Sprintf(" [coverage %d/%d, confidence %s]", c.Measured, c.Planned, c.Confidence)
			}
			fmt.Printf("  %-14s provider %s  claimed %s  verdict %-9s probable %s%s\n",
				r.ServerID, r.Provider, r.ClaimedCountry, r.Verdict, r.ProbableCountry, extra)
		}
	}

	if *telFlag {
		fmt.Fprint(os.Stderr, tel.Render())
	}
}

// progressPrinter returns a telemetry progress callback that prints a
// throttled line per stage: roughly every 5% of the total, and always
// the final event.
func progressPrinter() func(telemetry.Progress) {
	return func(p telemetry.Progress) {
		step := p.Total / 20
		if step < 1 {
			step = 1
		}
		if p.Done%step == 0 || p.Done == p.Total {
			fmt.Fprintf(os.Stderr, "  %s: %d/%d\n", p.Stage, p.Done, p.Total)
		}
	}
}
