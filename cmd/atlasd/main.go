// Command atlasd runs the measurement coordination server of §4.1 over
// real HTTP: it builds a (simulated) landmark constellation and serves
// landmark lists and lazily fitted delay–distance models to measurement
// tools, collecting their uploaded reports.
//
// Usage:
//
//	atlasd [-addr 127.0.0.1:8080] [-anchors 120] [-probes 200]
//	       [-seed 2018] [-max-inflight 64] [-quiet]
//
// Endpoints:
//
//	GET  /v1/landmarks/phase1?draw=K
//	GET  /v1/landmarks/phase2?continent=Europe&n=25&draw=K
//	GET  /v1/model/{landmark-id}
//	POST /v1/report
//	GET  /v1/metrics
//	GET  /v1/healthz
//
// The server sheds load beyond -max-inflight with 429 + Retry-After.
// On SIGINT/SIGTERM it stops accepting measurement-path work (503),
// drains in-flight report batches, prints the telemetry summary and
// exits — no accepted report is ever lost to a restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	anchors := flag.Int("anchors", 120, "number of anchors")
	probes := flag.Int("probes", 200, "number of stable probes")
	seed := flag.Int64("seed", 2018, "world seed")
	maxInflight := flag.Int("max-inflight", atlasd.DefaultMaxInflight,
		"admitted concurrent measurement-path requests; excess load is shed with 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight requests before giving up")
	quiet := flag.Bool("quiet", false, "suppress per-request access logs")
	flag.Parse()

	simNet := netsim.New(*seed)
	rng := rand.New(rand.NewSource(*seed))
	cons, err := atlas.Build(simNet, atlas.Config{
		Anchors:        *anchors,
		Probes:         *probes,
		SamplesPerPair: 4,
	}, rng)
	if err != nil {
		log.Fatalf("building constellation: %v", err)
	}

	tel := telemetry.New()
	var access *log.Logger
	if !*quiet {
		access = log.New(os.Stderr, "atlasd: ", log.LstdFlags)
	}
	srv := atlasd.NewServer(cons, atlasd.Config{
		Seed:        *seed,
		Opts:        cbg.Options{Slowline: true},
		MaxInflight: *maxInflight,
		Telemetry:   tel,
		Log:         access,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "atlasd: %d anchors + %d probes; models fit on demand; serving on http://%s (max-inflight %d)\n",
		*anchors, *probes, ln.Addr(), *maxInflight)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "atlasd: %v: draining in-flight requests…\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "atlasd: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "atlasd: shutdown: %v\n", err)
	}
	m := srv.Metrics()
	fmt.Fprintf(os.Stderr, "atlasd: drained; %d reports ledgered (%d duplicates suppressed), %d model fits\n",
		m.ReportsLedgered, m.DuplicateReports, m.ModelCache.Fits)
	fmt.Fprint(os.Stderr, tel.Render())
}
