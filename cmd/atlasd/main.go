// Command atlasd runs the measurement coordination server of §4.1 over
// real HTTP: it builds a (simulated) landmark constellation, calibrates
// the per-landmark delay–distance models, and serves landmark lists and
// models to measurement tools, collecting their uploaded reports.
//
// Usage:
//
//	atlasd [-addr 127.0.0.1:8080] [-anchors 120] [-probes 200] [-seed 2018]
//
// Endpoints:
//
//	GET  /v1/landmarks/phase1
//	GET  /v1/landmarks/phase2?continent=Europe&n=25
//	GET  /v1/model/{landmark-id}
//	POST /v1/report
//	GET  /v1/healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"

	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/netsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	anchors := flag.Int("anchors", 120, "number of anchors")
	probes := flag.Int("probes", 200, "number of stable probes")
	seed := flag.Int64("seed", 2018, "world seed")
	flag.Parse()

	simNet := netsim.New(*seed)
	rng := rand.New(rand.NewSource(*seed))
	cons, err := atlas.Build(simNet, atlas.Config{
		Anchors:        *anchors,
		Probes:         *probes,
		SamplesPerPair: 4,
	}, rng)
	if err != nil {
		log.Fatalf("building constellation: %v", err)
	}
	cal, err := cbg.Calibrate(cons, cbg.Options{Slowline: true})
	if err != nil {
		log.Fatalf("calibrating: %v", err)
	}
	srv := atlasd.NewServer(cons, cal, *seed)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "atlasd: %d anchors + %d probes calibrated; serving on http://%s\n",
		*anchors, *probes, ln.Addr())
	log.Fatal(http.Serve(ln, srv.Handler()))
}
