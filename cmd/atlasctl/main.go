// Command atlasctl operates an atlasd constellation over plain HTTP:
// it is the thin CLI face of constellation.Controller, speaking only
// the shards' existing wire surface, so it works against any fleet it
// can reach — in-process test clusters export the same endpoints.
//
// Usage:
//
//	atlasctl -shards URL[,URL...] status
//	atlasctl -shards URL[,URL...] advance-epoch
//	atlasctl -shards URL[,URL...] [-ring-seed N] [-vnodes K] drain NAME
//	atlasctl -shards URL[,URL...] sync-epoch NAME EPOCH
//
// Shard names default to the URL host; NAME@URL entries assign
// explicit names, which must match the names the fleet's ring was
// built with (drain routes ledger replays by ring position, so
// -ring-seed and -vnodes must also match the fleet's values).
//
//	status         print each shard's epoch and fence state
//	advance-epoch  run the two-phase barrier: prepare everywhere,
//	               commit everywhere, abort all on any prepare failure
//	drain NAME     gracefully remove NAME: drain it, then replay its
//	               report ledger onto its ring successors
//	sync-epoch     jump one (typically restarted) shard to the epoch
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"activegeo/internal/atlasd"
	"activegeo/internal/constellation"
	"activegeo/internal/netsim"
)

// parseShards turns the -shards list into named refs. Each entry is
// either a bare URL (named by its host) or NAME@URL.
func parseShards(list string) ([]constellation.ShardRef, error) {
	var refs []constellation.ShardRef
	seen := make(map[string]bool)
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, raw := "", entry
		if at := strings.Index(entry, "@"); at >= 0 {
			name, raw = entry[:at], entry[at+1:]
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("bad shard URL %q (want http://host:port or NAME@http://host:port)", entry)
		}
		if name == "" {
			name = u.Host
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate shard name %q", name)
		}
		seen[name] = true
		refs = append(refs, constellation.ShardRef{
			Name:   name,
			Client: &atlasd.Client{BaseURL: strings.TrimRight(raw, "/")},
		})
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("no shards given")
	}
	return refs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasctl: ")
	shardsFlag := flag.String("shards", "", "comma-separated shard URLs (NAME@URL to name them)")
	ringSeed := flag.Int64("ring-seed", 0, "ring placement seed (must match the fleet's; used by drain)")
	vnodes := flag.Int("vnodes", constellation.DefaultVirtualNodes, "virtual nodes per shard (must match the fleet's; used by drain)")
	timeout := flag.Duration("timeout", 30*time.Second, "overall operation deadline")
	flag.Parse()

	refs, err := parseShards(*shardsFlag)
	if err != nil {
		log.Fatal(err)
	}
	ctl := &constellation.Controller{Shards: func() []constellation.ShardRef { return refs }}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd := flag.Arg(0); cmd {
	case "status":
		bad := 0
		for _, st := range ctl.Status(ctx) {
			if st.Err != nil {
				fmt.Printf("%-12s unreachable: %v\n", st.Name, st.Err)
				bad++
				continue
			}
			fence := ""
			if st.Fenced {
				fence = "  [fenced]"
			}
			fmt.Printf("%-12s epoch %d%s\n", st.Name, st.Epoch, fence)
		}
		if bad > 0 {
			os.Exit(1)
		}

	case "advance-epoch":
		epoch, err := ctl.AdvanceEpoch(ctx)
		if err != nil {
			log.Fatalf("barrier failed (fleet stays consistent): %v", err)
		}
		fmt.Printf("fleet advanced to epoch %d\n", epoch)

	case "drain":
		name := flag.Arg(1)
		if name == "" {
			log.Fatal("drain needs a shard name")
		}
		var from constellation.ShardRef
		survivors := make([]string, 0, len(refs)-1)
		byName := make(map[string]constellation.ShardRef, len(refs))
		for _, ref := range refs {
			byName[ref.Name] = ref
			if ref.Name == name {
				from = ref
				continue
			}
			survivors = append(survivors, ref.Name)
		}
		if from.Client == nil {
			log.Fatalf("unknown shard %q (have %s)", name, *shardsFlag)
		}
		if len(survivors) == 0 {
			log.Fatalf("cannot drain the only shard")
		}
		// The post-drain ring: every shard but the victim. Replays route
		// by the same pure placement function the fleet uses.
		ring := constellation.NewRing(*ringSeed, *vnodes, survivors...)
		route := func(clientID string) []constellation.ShardRef {
			var out []constellation.ShardRef
			for _, s := range ring.Successors(netsim.HostID(clientID)) {
				out = append(out, byName[s])
			}
			return out
		}
		replayed, err := ctl.DrainShard(ctx, from, route)
		if err != nil {
			log.Fatalf("drain: %v", err)
		}
		fmt.Printf("drained %s; replayed %d ledger entries to successors\n", name, replayed)

	case "sync-epoch":
		name, epochArg := flag.Arg(1), flag.Arg(2)
		if name == "" || epochArg == "" {
			log.Fatal("sync-epoch needs a shard name and an epoch")
		}
		epoch, err := strconv.ParseInt(epochArg, 10, 64)
		if err != nil {
			log.Fatalf("bad epoch %q: %v", epochArg, err)
		}
		for _, ref := range refs {
			if ref.Name != name {
				continue
			}
			if err := ctl.SyncEpoch(ctx, ref, epoch); err != nil {
				log.Fatalf("sync: %v", err)
			}
			fmt.Printf("%s synced to epoch %d\n", name, epoch)
			return
		}
		log.Fatalf("unknown shard %q", name)

	default:
		log.Fatalf("unknown command %q (want status, advance-epoch, drain or sync-epoch)", cmd)
	}
}
