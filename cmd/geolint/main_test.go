package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSeededViolationExitsNonZero: pointing the multichecker at a
// fixture package full of violations must exit 1 and print findings —
// the make ci gate demanded by the acceptance criteria.
func TestSeededViolationExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"internal/analysis/testdata/src/errdrop"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "[errdrop]") {
		t.Errorf("output does not name the analyzer:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output does not summarize the finding count:\n%s", out.String())
	}
}

// TestTreeIsClean: the whole repository passes the suite with zero
// findings — every deliberate exception carries a reasoned directive.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint: skipped with -short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("geolint ./... = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestListFlag: -list prints every analyzer with its doc line.
func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"detrand", "simclock", "maporder", "sharedrand", "floatexact", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestBadPatternExitsTwo: load failures are usage errors, not findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errw.String())
	}
}
