package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolationExitsNonZero: pointing the multichecker at a
// fixture package full of violations must exit 1 and print findings —
// the make ci gate demanded by the acceptance criteria.
func TestSeededViolationExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"internal/analysis/testdata/src/errdrop"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "[errdrop]") {
		t.Errorf("output does not name the analyzer:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output does not summarize the finding count:\n%s", out.String())
	}
}

// TestTreeIsClean: the whole repository passes the suite with zero
// findings — every deliberate exception carries a reasoned directive.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint: skipped with -short")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("geolint ./... = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestListFlag: -list prints every analyzer with its doc line.
func TestListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"detrand", "simclock", "maporder", "sharedrand", "floatexact",
		"errdrop", "lockorder", "unitflow", "goroleak"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestBadPatternExitsTwo: load failures are usage errors, not findings.
func TestBadPatternExitsTwo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errw.String())
	}
}

// TestJSONOutput: -json emits a machine-readable document with the
// finding count and suggested fixes — the CI artifact format.
func TestJSONOutput(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-json", "internal/analysis/testdata/src/errdrop"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errw.String())
	}
	var payload struct {
		Count      int `json:"count"`
		Suppressed int `json:"suppressed"`
		Findings   []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			Fixes    []struct {
				Message string `json:"message"`
			} `json:"fixes"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &payload); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if payload.Count == 0 || payload.Count != len(payload.Findings) {
		t.Fatalf("count = %d with %d findings", payload.Count, len(payload.Findings))
	}
	for _, f := range payload.Findings {
		if f.Analyzer != "errdrop" || f.Line == 0 || f.File == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if len(f.Fixes) == 0 {
			t.Errorf("errdrop finding lost its suggested fix: %+v", f)
		}
	}
}

// TestParallelOutputIdentical: -parallel N output is byte-identical to
// the serial run, exit code included.
func TestParallelOutputIdentical(t *testing.T) {
	args := []string{"internal/analysis/testdata/src/errdrop", "internal/analysis/testdata/src/maporder"}
	var serial, par, errw bytes.Buffer
	codeS := run(append([]string{"-parallel=1"}, args...), &serial, &errw)
	codeP := run(append([]string{"-parallel=8"}, args...), &par, &errw)
	if codeS != codeP {
		t.Fatalf("exit codes differ: serial %d, parallel %d", codeS, codeP)
	}
	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Fatalf("outputs differ:\n--- serial ---\n%s--- parallel ---\n%s", serial.String(), par.String())
	}
	if serial.Len() == 0 {
		t.Fatal("fixture run produced no output; the comparison is vacuous")
	}
}

// TestBaselineFlow: -write-baseline snapshots the findings, a
// subsequent -baseline run suppresses them and exits 0, and the ratchet
// reports how much it swallowed.
func TestBaselineFlow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	pattern := "internal/analysis/testdata/src/errdrop"

	var out, errw bytes.Buffer
	if code := run([]string{"-baseline", base, "-write-baseline", pattern}, &out, &errw); code != 0 {
		t.Fatalf("write-baseline exit = %d; stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "wrote baseline") {
		t.Fatalf("no write confirmation:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-baseline", base, pattern}, &out, &errw); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "baselined finding(s) suppressed") {
		t.Fatalf("suppression not reported:\n%s", out.String())
	}

	// The ratchet bites on anything new: a second fixture package the
	// baseline has never seen fails the run.
	out.Reset()
	code := run([]string{"-baseline", base, pattern, "internal/analysis/testdata/src/maporder"}, &out, &errw)
	if code != 1 {
		t.Fatalf("new findings must fail a baselined run: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[maporder]") || strings.Contains(out.String(), "[errdrop]") {
		t.Fatalf("want only the new maporder findings:\n%s", out.String())
	}
}

// TestMissingBaselineIsUsageError: a typo'd -baseline path must not
// silently tolerate everything.
func TestMissingBaselineIsUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json"),
		"internal/analysis/testdata/src/errdrop"}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestDiffRequiresFix pins the flag contract.
func TestDiffRequiresFix(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-diff", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestFixDiffDryRun: -fix -diff prints the pending rewrite without
// touching the tree, and on a fixture with fixable findings the diff is
// non-empty.
func TestFixDiffDryRun(t *testing.T) {
	fixture := "internal/analysis/testdata/src/errdrop/errdrop.go"
	before, err := os.ReadFile(filepath.Join("..", "..", fixture))
	if err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	code := run([]string{"-fix", "-diff", "internal/analysis/testdata/src/errdrop"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings exist); stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "+\t_ = c.Close()") {
		t.Fatalf("diff does not show the rewrite:\n%s", out.String())
	}
	after, err := os.ReadFile(filepath.Join("..", "..", fixture))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("-fix -diff modified the tree")
	}
}

// TestFixDiffCleanTree: on the clean repository -fix -diff emits no
// pending rewrites and exits 0 — the make lint-fix-check gate.
func TestFixDiffCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint: skipped with -short")
	}
	var out, errw bytes.Buffer
	code := run([]string{"-fix", "-diff", "./..."}, &out, &errw)
	if code != 0 || out.Len() != 0 {
		t.Fatalf("clean tree has pending fixes (exit %d):\n%s%s", code, out.String(), errw.String())
	}
}
