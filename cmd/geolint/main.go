// Command geolint is the repository's multichecker: it runs the
// internal/analysis suite (detrand, simclock, maporder, sharedrand,
// floatexact, errdrop, lockorder, unitflow, goroleak) over the named
// packages and exits non-zero when any invariant is violated.
//
// Usage:
//
//	geolint [flags] [packages]
//
//	-list            list the analyzers and exit
//	-json            emit findings as a JSON document (the CI artifact)
//	-fix             apply suggested fixes to the source tree
//	-diff            with -fix: print the rewrite as a unified diff
//	                 instead of writing files (dry run)
//	-baseline FILE   ratchet: suppress findings recorded in FILE, fail
//	                 only on new ones
//	-write-baseline  with -baseline: snapshot current findings to FILE
//	-parallel N      package-load worker count (default GOMAXPROCS;
//	                 1 = serial; output is identical either way)
//
// Packages are go-style patterns relative to the module root
// ("./...", "./internal/geo", "internal/experiments/..."); the default
// is "./...". Deliberate exceptions are annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or alone on the line above; there is no blanket
// disable, and a malformed directive is itself a finding. Exit status:
// 0 clean, 1 findings (whether or not -fix repaired them), 2 usage or
// load failure. Fix application is idempotent: running -fix twice
// writes nothing the second time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"activegeo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("geolint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	fix := fs.Bool("fix", false, "apply suggested fixes")
	diff := fs.Bool("diff", false, "with -fix: print the rewrite as a unified diff instead of writing")
	baselinePath := fs.String("baseline", "", "ratchet file: suppress findings recorded in it")
	writeBaseline := fs.Bool("write-baseline", false, "with -baseline: snapshot current findings and exit")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "package-load worker count (1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *diff && !*fix {
		fmt.Fprintln(errw, "geolint: -diff requires -fix")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(errw, "geolint: -write-baseline requires -baseline FILE")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errw, "geolint: %v\n", err)
		return 2
	}
	diags, modDir, err := lintPatterns(wd, patterns, suite, *parallel)
	if err != nil {
		fmt.Fprintf(errw, "geolint: %v\n", err)
		return 2
	}

	if *writeBaseline {
		b := analysis.NewBaseline(diags, modDir)
		if err := b.WriteBaseline(*baselinePath); err != nil {
			fmt.Fprintf(errw, "geolint: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "geolint: wrote baseline (%d finding(s)) to %s\n", len(diags), *baselinePath)
		return 0
	}
	suppressed := 0
	if *baselinePath != "" {
		b, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(errw, "geolint: %v\n", err)
			return 2
		}
		diags, suppressed = b.Filter(diags, modDir)
	}

	if *fix {
		res, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(errw, "geolint: %v\n", err)
			return 2
		}
		if *diff {
			text, err := res.Diff()
			if err != nil {
				fmt.Fprintf(errw, "geolint: %v\n", err)
				return 2
			}
			fmt.Fprint(out, text)
		} else {
			if err := res.WriteFixes(); err != nil {
				fmt.Fprintf(errw, "geolint: %v\n", err)
				return 2
			}
			if res.Applied > 0 || res.Skipped > 0 {
				fmt.Fprintf(out, "geolint: applied %d fix(es), skipped %d\n", res.Applied, res.Skipped)
			}
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}

	if *jsonOut {
		if err := writeJSON(out, diags, suppressed); err != nil {
			fmt.Fprintf(errw, "geolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		if suppressed > 0 {
			fmt.Fprintf(out, "geolint: %d baselined finding(s) suppressed\n", suppressed)
		}
		if len(diags) > 0 {
			fmt.Fprintf(out, "geolint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the stable JSON rendering of one finding.
type jsonDiag struct {
	File     string                  `json:"file"`
	Line     int                     `json:"line"`
	Col      int                     `json:"col"`
	Analyzer string                  `json:"analyzer"`
	Message  string                  `json:"message"`
	Fixes    []analysis.SuggestedFix `json:"fixes,omitempty"`
}

func writeJSON(out io.Writer, diags []analysis.Diagnostic, suppressed int) error {
	payload := struct {
		Count      int        `json:"count"`
		Suppressed int        `json:"suppressed"`
		Findings   []jsonDiag `json:"findings"`
	}{Count: len(diags), Suppressed: suppressed, Findings: []jsonDiag{}}
	for _, d := range diags {
		payload.Findings = append(payload.Findings, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fixes:    d.Fixes,
		})
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}

// lintPatterns loads the packages over a worker pool and returns every
// finding in deterministic (directory, position) order plus the module
// root for baseline relativization.
func lintPatterns(dir string, patterns []string, suite []*analysis.Analyzer, workers int) ([]analysis.Diagnostic, string, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, "", err
	}
	pkgs, err := loader.LoadPatternsParallel(workers, patterns...)
	if err != nil {
		return nil, "", err
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, suite)
		if err != nil {
			return nil, "", err
		}
		all = append(all, diags...)
	}
	return all, loader.ModDir, nil
}
