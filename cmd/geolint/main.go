// Command geolint is the repository's multichecker: it runs the
// internal/analysis suite (detrand, simclock, maporder, sharedrand,
// floatexact, errdrop) over the named packages and exits non-zero when
// any invariant is violated.
//
// Usage:
//
//	geolint [-list] [packages]
//
// Packages are go-style patterns relative to the module root
// ("./...", "./internal/geo", "internal/experiments/..."); the default
// is "./...". Deliberate exceptions are annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or alone on the line above; there is no blanket
// disable, and a malformed directive is itself a finding. Exit status:
// 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"activegeo/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("geolint", flag.ContinueOnError)
	fs.SetOutput(errw)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errw, "geolint: %v\n", err)
		return 2
	}
	n, err := lintPatterns(wd, patterns, suite, out)
	if err != nil {
		fmt.Fprintf(errw, "geolint: %v\n", err)
		return 2
	}
	if n > 0 {
		fmt.Fprintf(out, "geolint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// lintPatterns loads the packages and prints every finding, returning
// the count.
func lintPatterns(dir string, patterns []string, suite []*analysis.Analyzer, out io.Writer) (int, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, suite)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		total += len(diags)
	}
	return total, nil
}
