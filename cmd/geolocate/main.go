// Command geolocate estimates a target's location from a JSON file of
// round-trip-time measurements to landmarks in known positions.
//
// Usage:
//
//	geolocate -alg cbg++ measurements.json
//
// The input is a JSON array:
//
//	[
//	  {"landmark": "fra-anchor", "lat": 50.11, "lon": 8.68, "rtt_ms": 21.4},
//	  {"landmark": "ams-anchor", "lat": 52.37, "lon": 4.89, "rtt_ms": 24.9}
//	]
//
// Because the landmarks in the file are not part of a calibration mesh,
// all algorithms use their pooled delay–distance model, calibrated on a
// simulated constellation with the given seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/geoloc"
	"activegeo/internal/hybrid"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/octant"
	"activegeo/internal/spotter"
	"activegeo/internal/vis"
	"activegeo/internal/worldmap"
)

func main() {
	algName := flag.String("alg", "cbg++", "algorithm: cbg, cbg++, octant, spotter, hybrid")
	resDeg := flag.Float64("res", 1.0, "grid resolution in degrees")
	seed := flag.Int64("seed", 2018, "calibration seed")
	showMap := flag.Bool("map", false, "draw the prediction region on an ASCII world map")
	mapWidth := flag.Int("map-width", 120, "map width in characters")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: geolocate [-alg name] measurements.json")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	ms, err := measure.ReadMeasurements(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatalf("parsing %s: %v", flag.Arg(0), err)
	}
	if len(ms) == 0 {
		log.Fatal("no measurements in input")
	}

	// Calibrate pooled models on a simulated constellation.
	net := netsim.New(*seed)
	cons, err := atlas.Build(net, atlas.Config{Anchors: 120, Probes: 0, SamplesPerPair: 4},
		rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	env := geoloc.NewEnv(*resDeg)

	var alg geoloc.Algorithm
	switch *algName {
	case "cbg":
		cal, cerr := cbg.Calibrate(cons, cbg.Options{})
		if cerr != nil {
			log.Fatal(cerr)
		}
		alg = cbg.New(env, cal)
	case "cbg++":
		cal, cerr := cbgpp.Calibrate(cons, cbgpp.Options{})
		if cerr != nil {
			log.Fatal(cerr)
		}
		alg = cbgpp.New(env, cal, cbgpp.Options{})
	case "octant":
		cal, cerr := octant.Calibrate(cons)
		if cerr != nil {
			log.Fatal(cerr)
		}
		alg = octant.New(env, cal)
	case "spotter":
		model, cerr := spotter.Calibrate(cons)
		if cerr != nil {
			log.Fatal(cerr)
		}
		alg = spotter.New(env, model)
	case "hybrid":
		model, cerr := spotter.Calibrate(cons)
		if cerr != nil {
			log.Fatal(cerr)
		}
		alg = hybrid.New(env, model)
	default:
		log.Fatalf("unknown algorithm %q", *algName)
	}

	region, err := alg.Locate(ms)
	if err != nil {
		log.Fatalf("locate: %v", err)
	}
	if region.Empty() {
		fmt.Println("no region consistent with the measurements (empty intersection)")
		os.Exit(1)
	}
	centroid, _ := region.Centroid()
	fmt.Printf("algorithm: %s\n", alg.Name())
	fmt.Printf("region:    %d cells, %.0f km²\n", region.Count(), region.AreaKm2())
	fmt.Printf("centroid:  %v\n", centroid)
	codes := env.Mask.CountriesOverlapping(region)
	if len(codes) > 0 {
		fmt.Printf("countries: ")
		for i, code := range codes {
			if i > 0 {
				fmt.Print(", ")
			}
			if c := worldmap.ByCode(code); c != nil {
				fmt.Printf("%s (%s)", c.Name, code)
			} else {
				fmt.Print(code)
			}
		}
		fmt.Println()
	}
	if *showMap {
		fmt.Println(vis.RenderRegion(region, *mapWidth, nil))
	}
}
