package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

var (
	srvOnce sync.Once
	srvFix  *demoServer
)

func demoFixture(t *testing.T) *demoServer {
	t.Helper()
	srvOnce.Do(func() {
		var err error
		srvFix, err = newDemoServer(7)
		if err != nil {
			panic(err)
		}
	})
	return srvFix
}

func TestIndexPage(t *testing.T) {
	d := demoFixture(t)
	rec := httptest.NewRecorder()
	d.handleIndex(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	body := rec.Body.String()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(body, "Active geolocation") || !strings.Contains(body, `action="/locate"`) {
		t.Error("index page incomplete")
	}
}

func TestLocateEndpoint(t *testing.T) {
	d := demoFixture(t)
	rec := httptest.NewRecorder()
	d.handleLocate(rec, httptest.NewRequest(http.MethodGet, "/locate?lat=52.52&lon=13.40", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, "<svg") {
		t.Error("no SVG in response")
	}
	if !strings.Contains(body, "Prediction for") {
		t.Error("no verdict text")
	}
	if !strings.Contains(body, "could be:") {
		t.Error("no candidate countries")
	}
	// A second locate must work (unique target IDs).
	rec2 := httptest.NewRecorder()
	d.handleLocate(rec2, httptest.NewRequest(http.MethodGet, "/locate?lat=40.71&lon=-74.01", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("second locate: %d", rec2.Code)
	}
}

func TestLocateValidation(t *testing.T) {
	d := demoFixture(t)
	for _, q := range []string{"", "lat=abc&lon=0", "lat=91&lon=0", "lat=0&lon=181"} {
		rec := httptest.NewRecorder()
		d.handleLocate(rec, httptest.NewRequest(http.MethodGet, "/locate?"+q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("query %q: status %d", q, rec.Code)
		}
	}
}

func TestLocateOverHTTP(t *testing.T) {
	d := demoFixture(t)
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.handleIndex)
	mux.HandleFunc("/locate", d.handleLocate)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/locate?lat=1.35&lon=103.82")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "<svg") {
		t.Errorf("live request failed: %d", resp.StatusCode)
	}
}
