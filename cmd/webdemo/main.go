// Command webdemo is this library's version of the paper's Web-based
// measurement application (§4.2): an HTTP server that runs a live
// active-geolocation demonstration and draws the measurements as circles
// on a map, together with the CBG++ prediction region.
//
// Usage:
//
//	webdemo [-addr 127.0.0.1:8099] [-seed 2018]
//
// Open http://127.0.0.1:8099/ and pick a (simulated) place to locate:
// the server measures it through the simulated constellation with the
// web tool, multilaterates with CBG++, and returns the SVG map plus the
// verdict — the same flow the paper demonstrated at
// research.owlfolio.org/active-geo, self-contained and offline.
package main

import (
	"flag"
	"fmt"
	"html/template"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"

	"activegeo/internal/atlas"
	"activegeo/internal/cbgpp"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/svgmap"
	"activegeo/internal/worldmap"
)

var page = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>activegeo live demo</title>
<style>body{font-family:sans-serif;max-width:1100px;margin:2em auto;color:#222}
svg{border:1px solid #ccc;width:100%;height:auto}
code{background:#f4f4f4;padding:1px 4px}</style></head>
<body>
<h1>Active geolocation, live</h1>
<p>Pick a target. The server measures it against the landmark
constellation with the two-phase procedure, multilaterates with CBG++,
and draws every measurement disk and the final prediction region —
as in Figure 1 of <em>How to Catch when Proxies Lie</em> (IMC '18).</p>
<form method="GET" action="/locate">
lat <input name="lat" value="{{.Lat}}" size="8">
lon <input name="lon" value="{{.Lon}}" size="8">
<button type="submit">Locate</button>
</form>
{{if .Result}}
<h2>{{.Result.Title}}</h2>
<p>{{.Result.Detail}}</p>
{{.Result.SVG}}
{{end}}
</body></html>`))

type resultView struct {
	Title  string
	Detail string
	SVG    template.HTML
}

type pageView struct {
	Lat, Lon string
	Result   *resultView
}

type demoServer struct {
	cons *atlas.Constellation
	alg  *cbgpp.CBGPP
	env  *geoloc.Env
	seed int64

	mu  sync.Mutex
	seq int
}

func (d *demoServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	_ = page.Execute(w, pageView{Lat: "52.52", Lon: "13.40"})
}

func (d *demoServer) handleLocate(w http.ResponseWriter, r *http.Request) {
	lat, err1 := strconv.ParseFloat(r.URL.Query().Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(r.URL.Query().Get("lon"), 64)
	p := geo.Point{Lat: lat, Lon: lon}
	if err1 != nil || err2 != nil || !p.Valid() {
		http.Error(w, "bad lat/lon", http.StatusBadRequest)
		return
	}

	d.mu.Lock()
	d.seq++
	target := netsim.HostID(fmt.Sprintf("demo-target-%04d", d.seq))
	err := d.cons.Net().AddHost(&netsim.Host{ID: target, Loc: p})
	d.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Per-target noise stream, a pure function of (seed, target): no
	// handler-shared *rand.Rand, so concurrent locates never perturb
	// each other's measurements (sharedrand analyzer, DESIGN.md §6).
	rng := rand.New(rand.NewSource(measure.StreamSeed(d.seed, target)))

	tp := &measure.TwoPhase{Cons: d.cons, Tool: &measure.WebTool{Net: d.cons.Net()}}
	res, err := tp.Run(target, rng)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ms := res.Measurements()
	region, err := d.alg.Locate(ms)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	m := svgmap.New(1100)
	cal := d.alg.Calibration()
	for _, meas := range geoloc.Collapse(ms) {
		m.AddDisk(geo.Cap{
			Center:   meas.Landmark,
			RadiusKm: cal.MaxDistanceKm(meas.LandmarkID, meas.OneWayMs()),
		}, "#1f6fb2")
	}
	m.AddRegion(region, "#c0392b")
	m.AddPoint(p, "#111", "target")

	detail := fmt.Sprintf("%d measurements (phase 1: %d, phase 2 on %s: %d); region %d cells, %.0f km²",
		len(ms), len(res.Phase1), res.Continent, len(res.Phase2), region.Count(), region.AreaKm2())
	if codes := d.env.Mask.CountriesOverlapping(region); len(codes) > 0 {
		names := make([]string, 0, len(codes))
		for _, code := range codes {
			if c := worldmap.ByCode(code); c != nil {
				names = append(names, c.Name)
			}
		}
		detail += fmt.Sprintf("; could be: %v", names)
	}
	view := pageView{
		Lat: r.URL.Query().Get("lat"),
		Lon: r.URL.Query().Get("lon"),
		Result: &resultView{
			Title:  "Prediction for " + p.String(),
			Detail: detail,
			SVG:    template.HTML(m.String()), // generated server-side, no user input
		},
	}
	_ = page.Execute(w, view)
}

func newDemoServer(seed int64) (*demoServer, error) {
	simNet := netsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	cons, err := atlas.Build(simNet, atlas.Config{Anchors: 100, Probes: 150, SamplesPerPair: 4}, rng)
	if err != nil {
		return nil, err
	}
	env := geoloc.NewEnv(1.0)
	cal, err := cbgpp.Calibrate(cons, cbgpp.Options{})
	if err != nil {
		return nil, err
	}
	return &demoServer{
		cons: cons,
		alg:  cbgpp.New(env, cal, cbgpp.Options{}),
		env:  env,
		seed: seed,
	}, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8099", "listen address")
	seed := flag.Int64("seed", 2018, "world seed")
	flag.Parse()

	d, err := newDemoServer(*seed)
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", d.handleIndex)
	mux.HandleFunc("/locate", d.handleLocate)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "webdemo: serving on http://%s\n", ln.Addr())
	log.Fatal(http.Serve(ln, mux))
}
