// Command benchaudit times the repo's two performance-critical paths
// and writes the numbers as JSON.
//
// Usage:
//
//	benchaudit [-mode audit|locate] [-scale quick|paper] [-out FILE]
//
// Mode "audit" (the default) times the §6 audit pipeline serially and
// in parallel on the same lab configuration, verifies the two runs
// produce identical verdict tallies, and writes BENCH_audit.json. The
// speedup is bounded by the core count: on a single-core machine serial
// and parallel times are expected to be roughly equal, and the JSON
// records the core count so readers can interpret the ratio.
//
// Mode "locate" times each localization algorithm before and after the
// geometry kernel — the pre-kernel per-cell-haversine reference
// implementations (internal/refimpl) against the kernel-backed ones —
// on identical measurement vectors, then times one full quick audit for
// the end-to-end wall-clock number, and writes BENCH_locate.json. Both
// sides are warmed before timing, so the "after" numbers reflect the
// steady state the audit runs in (landmark distance fields cached).
//
// Mode "faults" runs the robustness sweep (experiments.Robustness):
// the full audit plus a five-algorithm crowd localization at each loss
// rate of the default sweep, recording the credible/uncertain/false
// tallies, coverage and mean region sizes vs. injected loss, and writes
// BENCH_faults.json. The sweep is deterministic, so the JSON doubles as
// a regression record of the loss-threshold result in DESIGN.md §10.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"activegeo/internal/assess"
	"activegeo/internal/experiments"
	"activegeo/internal/geoloc"
	"activegeo/internal/measure"
	"activegeo/internal/refimpl"
)

type auditReport struct {
	Config           string  `json:"config"`
	Servers          int     `json:"servers"`
	Cores            int     `json:"cores"`
	ParallelWorkers  int     `json:"parallel_workers"`
	SerialMs         float64 `json:"serial_ms"`
	ParallelMs       float64 `json:"parallel_ms"`
	Speedup          float64 `json:"speedup"`
	TalliesIdentical bool    `json:"tallies_identical"`
	Credible         int     `json:"credible"`
	Uncertain        int     `json:"uncertain"`
	False            int     `json:"false"`
}

type faultsRow struct {
	Loss            float64            `json:"loss"`
	Credible        int                `json:"credible"`
	Uncertain       int                `json:"uncertain"`
	False           int                `json:"false"`
	MeanCoverage    float64            `json:"mean_coverage"`
	MeasureFailures int                `json:"measure_failures"`
	LocateFailures  int                `json:"locate_failures"`
	DegradedServers int                `json:"degraded_servers"`
	Disconnects     int                `json:"disconnects"`
	LostLandmarks   int                `json:"lost_landmarks"`
	Retries         int                `json:"retries"`
	MeanAreaKm2     map[string]float64 `json:"mean_area_km2"`
	WithinTolerance bool               `json:"within_tolerance"`
}

type faultsReport struct {
	Config        string      `json:"config"`
	Cores         int         `json:"cores"`
	Servers       int         `json:"servers"`
	CrowdHosts    int         `json:"crowd_hosts"`
	LossThreshold float64     `json:"loss_threshold"`
	Tolerance     float64     `json:"tolerance"`
	WallMs        float64     `json:"wall_ms"`
	Points        []faultsRow `json:"points"`
}

type locateRow struct {
	Algorithm   string  `json:"algorithm"`
	BeforeMsOp  float64 `json:"before_ms_per_locate"`
	AfterMsOp   float64 `json:"after_ms_per_locate"`
	Speedup     float64 `json:"speedup"`
	RegionCells int     `json:"region_cells"`
	DiffCells   int     `json:"diff_cells_vs_reference"`
}

type locateReport struct {
	Config      string      `json:"config"`
	Cores       int         `json:"cores"`
	GridResDeg  float64     `json:"grid_res_deg"`
	Targets     int         `json:"targets"`
	Algorithms  []locateRow `json:"algorithms"`
	AuditWallMs float64     `json:"audit_wall_ms"`
	Credible    int         `json:"credible"`
	Uncertain   int         `json:"uncertain"`
	False       int         `json:"false"`
}

// timeAudit builds a fresh lab at the given concurrency and times one
// full audit. A fresh lab per run keeps the comparison honest: nothing
// is pre-warmed for the second configuration.
func timeAudit(cfg experiments.Config, workers int) (time.Duration, assess.Tally, int, error) {
	cfg.Concurrency = workers
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return 0, assess.Tally{}, 0, err
	}
	start := time.Now()
	run, err := lab.Audit()
	if err != nil {
		return 0, assess.Tally{}, 0, err
	}
	return time.Since(start), assess.Tabulate(run.Results), len(run.Results), nil
}

func runAudit(scale string, cfg experiments.Config, out string) {
	workers := runtime.GOMAXPROCS(0)
	serial, serialTally, servers, err := timeAudit(cfg, 1)
	if err != nil {
		log.Fatalf("serial audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serial (1 worker):    %v over %d servers\n", serial.Round(time.Millisecond), servers)
	parallel, parallelTally, _, err := timeAudit(cfg, workers)
	if err != nil {
		log.Fatalf("parallel audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "parallel (%d workers): %v\n", workers, parallel.Round(time.Millisecond))

	identical := serialTally == parallelTally
	if !identical {
		log.Fatalf("determinism violation: serial tally %+v != parallel tally %+v", serialTally, parallelTally)
	}

	r := auditReport{
		Config:           scale,
		Servers:          servers,
		Cores:            runtime.NumCPU(),
		ParallelWorkers:  workers,
		SerialMs:         float64(serial.Microseconds()) / 1000,
		ParallelMs:       float64(parallel.Microseconds()) / 1000,
		Speedup:          float64(serial) / float64(parallel),
		TalliesIdentical: identical,
		Credible:         serialTally.Credible,
		Uncertain:        serialTally.Uncertain,
		False:            serialTally.False,
	}
	writeJSON(out, r)
	fmt.Fprintf(os.Stderr, "speedup %.2fx on %d cores; tallies identical; wrote %s\n", r.Speedup, r.Cores, out)
}

// timeLocate reports the mean per-Locate wall time over the target
// measurement vectors, after one warmup pass (which also fills the
// distance-field cache for the kernel side — the steady state every
// audit target after the first runs in).
func timeLocate(alg geoloc.Algorithm, targets [][]geoloc.Measurement) (float64, error) {
	for _, ms := range targets {
		if _, err := alg.Locate(ms); err != nil {
			return 0, err
		}
	}
	const minRounds, minDuration = 3, 300 * time.Millisecond
	rounds := 0
	start := time.Now()
	for rounds < minRounds || time.Since(start) < minDuration {
		for _, ms := range targets {
			if _, err := alg.Locate(ms); err != nil {
				return 0, err
			}
		}
		rounds++
	}
	elapsed := time.Since(start)
	return float64(elapsed.Microseconds()) / 1000 / float64(rounds*len(targets)), nil
}

// symmetricDiffCells counts cells in exactly one of the two regions.
func symmetricDiffCells(a, b interface {
	Each(func(int))
	Contains(int) bool
}) int {
	n := 0
	a.Each(func(i int) {
		if !b.Contains(i) {
			n++
		}
	})
	b.Each(func(i int) {
		if !a.Contains(i) {
			n++
		}
	})
	return n
}

func runLocate(scale string, cfg experiments.Config, out string) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	const nTargets = 3
	if len(lab.Crowd) < nTargets {
		log.Fatalf("need %d crowd hosts, lab has %d", nTargets, len(lab.Crowd))
	}
	targets := make([][]geoloc.Measurement, nTargets)
	for i := range targets {
		rng := rand.New(rand.NewSource(int64(77 + i)))
		targets[i] = measure.Measurements(lab.Crowd[i].MeasureAllAnchors(lab.Cons, rng))
		if len(targets[i]) == 0 {
			log.Fatalf("crowd host %d produced no measurements", i)
		}
	}

	model := lab.Spotter.Model()
	pairs := []struct {
		name      string
		ref, fast geoloc.Algorithm
	}{
		{"CBG", &refimpl.CBG{Env: lab.Env, Cal: lab.CBG.Calibration()}, lab.CBG},
		{"CBG++", &refimpl.CBGPP{Env: lab.Env, Cal: lab.CBGpp.Calibration()}, lab.CBGpp},
		{"Quasi-Octant", &refimpl.Octant{Env: lab.Env, Cal: lab.Octant.Calibration()}, lab.Octant},
		{"Spotter", &refimpl.Spotter{Env: lab.Env, Model: model}, lab.Spotter},
		{"Hybrid", &refimpl.Hybrid{Env: lab.Env, Model: model}, lab.Hybrid},
	}

	rep := locateReport{
		Config:     scale,
		Cores:      runtime.NumCPU(),
		GridResDeg: cfg.GridResDeg,
		Targets:    nTargets,
	}
	for _, p := range pairs {
		before, err := timeLocate(p.ref, targets)
		if err != nil {
			log.Fatalf("%s reference: %v", p.name, err)
		}
		after, err := timeLocate(p.fast, targets)
		if err != nil {
			log.Fatalf("%s kernel: %v", p.name, err)
		}
		refRegion, err := p.ref.Locate(targets[0])
		if err != nil {
			log.Fatalf("%s reference: %v", p.name, err)
		}
		fastRegion, err := p.fast.Locate(targets[0])
		if err != nil {
			log.Fatalf("%s kernel: %v", p.name, err)
		}
		row := locateRow{
			Algorithm:   p.name,
			BeforeMsOp:  before,
			AfterMsOp:   after,
			Speedup:     before / after,
			RegionCells: fastRegion.Count(),
			DiffCells:   symmetricDiffCells(refRegion, fastRegion),
		}
		rep.Algorithms = append(rep.Algorithms, row)
		fmt.Fprintf(os.Stderr, "%-13s before %8.3f ms  after %8.3f ms  %6.1fx  (diff %d cells)\n",
			p.name, row.BeforeMsOp, row.AfterMsOp, row.Speedup, row.DiffCells)
	}

	wall, tally, servers, err := timeAudit(cfg, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	rep.AuditWallMs = float64(wall.Microseconds()) / 1000
	rep.Credible = tally.Credible
	rep.Uncertain = tally.Uncertain
	rep.False = tally.False
	fmt.Fprintf(os.Stderr, "quick audit: %v over %d servers (credible %d / uncertain %d / false %d)\n",
		wall.Round(time.Millisecond), servers, tally.Credible, tally.Uncertain, tally.False)

	writeJSON(out, rep)
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

func runFaults(scale string, cfg experiments.Config, out string) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	const crowdHosts = 8
	start := time.Now()
	res, err := lab.Robustness(nil, crowdHosts)
	if err != nil {
		log.Fatalf("robustness sweep: %v", err)
	}
	wall := time.Since(start)

	rep := faultsReport{
		Config:        scale,
		Cores:         runtime.NumCPU(),
		Servers:       len(lab.Fleet.Servers()),
		CrowdHosts:    res.CrowdHosts,
		LossThreshold: experiments.RobustnessLossThreshold,
		Tolerance:     experiments.RobustnessTallyTolerance,
		WallMs:        float64(wall.Microseconds()) / 1000,
	}
	baseline := res.Points[0].Tally
	for _, p := range res.Points {
		row := faultsRow{
			Loss:            p.Loss,
			Credible:        p.Tally.Credible,
			Uncertain:       p.Tally.Uncertain,
			False:           p.Tally.False,
			MeanCoverage:    p.MeanCoverage,
			MeasureFailures: p.MeasureFailures,
			LocateFailures:  p.LocateFailures,
			DegradedServers: p.DegradedServers,
			Disconnects:     p.Disconnects,
			LostLandmarks:   p.LostLandmarks,
			Retries:         p.Retries,
			MeanAreaKm2:     map[string]float64{},
			WithinTolerance: p.WithinTolerance(baseline, experiments.RobustnessTallyTolerance),
		}
		for _, a := range p.Areas {
			row.MeanAreaKm2[a.Algorithm] = a.MeanAreaKm2
		}
		rep.Points = append(rep.Points, row)
		fmt.Fprintf(os.Stderr, "loss %.2f: %4d/%4d/%4d  coverage %.3f  degraded %d  within tolerance: %v\n",
			p.Loss, p.Tally.Credible, p.Tally.Uncertain, p.Tally.False,
			p.MeanCoverage, p.DegradedServers, row.WithinTolerance)
	}
	for _, row := range rep.Points {
		if row.Loss <= rep.LossThreshold && !row.WithinTolerance {
			log.Fatalf("loss %.2f is under the documented threshold %.2f but outside tolerance", row.Loss, rep.LossThreshold)
		}
	}
	writeJSON(out, rep)
	fmt.Fprintf(os.Stderr, "swept %d loss rates in %v; wrote %s\n", len(rep.Points), wall.Round(time.Millisecond), out)
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	mode := flag.String("mode", "audit", "what to benchmark: audit, locate or faults")
	scale := flag.String("scale", "quick", "audit scale: quick or paper")
	out := flag.String("out", "", "output JSON path (default BENCH_<mode>.json)")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	switch *mode {
	case "audit":
		if *out == "" {
			*out = "BENCH_audit.json"
		}
		runAudit(*scale, cfg, *out)
	case "locate":
		if *out == "" {
			*out = "BENCH_locate.json"
		}
		runLocate(*scale, cfg, *out)
	case "faults":
		if *out == "" {
			*out = "BENCH_faults.json"
		}
		runFaults(*scale, cfg, *out)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
