// Command benchaudit times the §6 audit pipeline serially and in
// parallel on the same lab configuration, verifies the two runs produce
// identical verdict tallies, and writes the numbers as JSON.
//
// Usage:
//
//	benchaudit [-scale quick|paper] [-out BENCH_audit.json]
//
// The speedup is bounded by the core count: on a single-core machine
// serial and parallel times are expected to be roughly equal, and the
// JSON records the core count so readers can interpret the ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"activegeo/internal/assess"
	"activegeo/internal/experiments"
)

type report struct {
	Config           string  `json:"config"`
	Servers          int     `json:"servers"`
	Cores            int     `json:"cores"`
	ParallelWorkers  int     `json:"parallel_workers"`
	SerialMs         float64 `json:"serial_ms"`
	ParallelMs       float64 `json:"parallel_ms"`
	Speedup          float64 `json:"speedup"`
	TalliesIdentical bool    `json:"tallies_identical"`
	Credible         int     `json:"credible"`
	Uncertain        int     `json:"uncertain"`
	False            int     `json:"false"`
}

// timeAudit builds a fresh lab at the given concurrency and times one
// full audit. A fresh lab per run keeps the comparison honest: nothing
// is pre-warmed for the second configuration.
func timeAudit(cfg experiments.Config, workers int) (time.Duration, assess.Tally, int, error) {
	cfg.Concurrency = workers
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return 0, assess.Tally{}, 0, err
	}
	start := time.Now()
	run, err := lab.Audit()
	if err != nil {
		return 0, assess.Tally{}, 0, err
	}
	return time.Since(start), assess.Tabulate(run.Results), len(run.Results), nil
}

func main() {
	scale := flag.String("scale", "quick", "audit scale: quick or paper")
	out := flag.String("out", "BENCH_audit.json", "output JSON path")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	workers := runtime.GOMAXPROCS(0)
	serial, serialTally, servers, err := timeAudit(cfg, 1)
	if err != nil {
		log.Fatalf("serial audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serial (1 worker):    %v over %d servers\n", serial.Round(time.Millisecond), servers)
	parallel, parallelTally, _, err := timeAudit(cfg, workers)
	if err != nil {
		log.Fatalf("parallel audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "parallel (%d workers): %v\n", workers, parallel.Round(time.Millisecond))

	identical := serialTally == parallelTally
	if !identical {
		log.Fatalf("determinism violation: serial tally %+v != parallel tally %+v", serialTally, parallelTally)
	}

	r := report{
		Config:           *scale,
		Servers:          servers,
		Cores:            runtime.NumCPU(),
		ParallelWorkers:  workers,
		SerialMs:         float64(serial.Microseconds()) / 1000,
		ParallelMs:       float64(parallel.Microseconds()) / 1000,
		Speedup:          float64(serial) / float64(parallel),
		TalliesIdentical: identical,
		Credible:         serialTally.Credible,
		Uncertain:        serialTally.Uncertain,
		False:            serialTally.False,
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "speedup %.2fx on %d cores; tallies identical; wrote %s\n", r.Speedup, r.Cores, *out)
}
