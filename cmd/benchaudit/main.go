// Command benchaudit times the repo's two performance-critical paths
// and writes the numbers as JSON.
//
// Usage:
//
//	benchaudit [-mode audit|locate] [-scale quick|paper] [-out FILE]
//
// Mode "audit" (the default) times the §6 audit pipeline serially and
// in parallel on the same lab configuration, verifies the two runs
// produce identical verdict tallies, and writes BENCH_audit.json. The
// speedup is bounded by the core count: on a single-core machine serial
// and parallel times are expected to be roughly equal, and the JSON
// records the core count so readers can interpret the ratio.
//
// Mode "locate" times each localization algorithm three ways on
// identical measurement vectors — the pre-kernel per-cell-haversine
// reference implementations (internal/refimpl), the distance-slice
// kernel with the quantized mask cache disabled, and the full mask-on
// path — then times one full quick audit for the end-to-end wall-clock
// number, and writes BENCH_locate.json. All sides are warmed before
// timing, so the numbers reflect the steady state the audit runs in
// (landmark distance fields and mask families cached). The run aborts
// with a non-zero exit if any algorithm's region differs from the
// reference by even one cell on either kernel path, or if the
// quick-fleet verdict tally drifts from 166/25/161.
//
// Mode "faults" runs the robustness sweep (experiments.Robustness):
// the full audit plus a five-algorithm crowd localization at each loss
// rate of the default sweep, recording the credible/uncertain/false
// tallies, coverage and mean region sizes vs. injected loss, and writes
// BENCH_faults.json. The sweep is deterministic, so the JSON doubles as
// a regression record of the loss-threshold result in DESIGN.md §10.
//
// Mode "stream" certifies the streaming audit pipeline (internal/stream)
// on two axes. Correctness: a streaming pass over the quick fleet must
// reproduce the batch audit's fingerprint byte for byte (the run aborts
// on any verdict delta), and a second pass over the unchanged fleet must
// re-measure nothing. Memory: a synthetic 100k-server fleet (-servers to
// override) is streamed through bounded batches while the heap is
// sampled at every batch boundary; the run aborts if the peak heap
// exceeds the post-setup baseline by more than the bounded-memory
// ceiling, or if the peak number of simultaneously provisioned hosts
// exceeds (queue depth + 2) batches. Results go to BENCH_stream.json.
//
// Mode "constellation" certifies the sharded coordination fleet
// (DESIGN.md §13): thousands of closed-loop clients run their
// campaigns across an N-shard epoch-coordinated constellation — ring
// routing, failover, hedged phase-2 queries — and the run aborts
// unless every client's logical transcript is byte-identical to a
// single-shard serial oracle. A second fleet repeats the run while a
// shard is drained mid-soak (its ledger replayed to ring successors)
// and the fleet epoch is advanced through the two-phase barrier; the
// same byte-identity and the exactly-once ledger contract must hold
// through the churn. Throughput, failover/hedge counts, the ring
// partition and per-shard fit counts go to BENCH_constellation.json.
//
// Mode "adversary" scores the detection layer against the default
// attack matrix (experiments.DefaultAttackMatrix): the full audit runs
// under every attack point — lying proxies, Byzantine landmarks, blends
// and an all-honest control — at the fixed benchmark scale
// (experiments.AdversaryBenchConfig), once serially and once at the
// machine's width on fresh labs. The run aborts with a non-zero exit
// unless the two sweeps' fingerprints (every per-point audit SHA and
// confusion matrix) are byte-identical, and unless the pooled detection
// quality clears the CI floors: precision ≥ 0.9 and recall ≥ 0.8.
// Per-point confusion matrices and the pooled scores go to
// BENCH_adversary.json.
//
// Mode "atlasd" load-tests the coordination service (DESIGN.md §11):
// 32 closed-loop clients run the full phase1→phase2→model→report
// campaign against an in-process server, once serially and once fully
// concurrently on fresh servers, and the run aborts unless every
// client's transcript is byte-identical between the two. A third run
// drains the server mid-soak and verifies no accepted report was
// dropped or duplicated. Throughput, p50/p99 latency, shed rate and
// model-cache coalescing go to BENCH_atlasd.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"activegeo/internal/assess"
	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/constellation"
	"activegeo/internal/experiments"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/loadgen"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/refimpl"
	"activegeo/internal/stream"
)

type auditReport struct {
	Config           string  `json:"config"`
	Servers          int     `json:"servers"`
	Cores            int     `json:"cores"`
	ParallelWorkers  int     `json:"parallel_workers"`
	SerialMs         float64 `json:"serial_ms"`
	ParallelMs       float64 `json:"parallel_ms"`
	Speedup          float64 `json:"speedup"`
	TalliesIdentical bool    `json:"tallies_identical"`
	Credible         int     `json:"credible"`
	Uncertain        int     `json:"uncertain"`
	False            int     `json:"false"`
}

type faultsRow struct {
	Loss            float64            `json:"loss"`
	Credible        int                `json:"credible"`
	Uncertain       int                `json:"uncertain"`
	False           int                `json:"false"`
	MeanCoverage    float64            `json:"mean_coverage"`
	MeasureFailures int                `json:"measure_failures"`
	LocateFailures  int                `json:"locate_failures"`
	DegradedServers int                `json:"degraded_servers"`
	Disconnects     int                `json:"disconnects"`
	LostLandmarks   int                `json:"lost_landmarks"`
	Retries         int                `json:"retries"`
	MeanAreaKm2     map[string]float64 `json:"mean_area_km2"`
	WithinTolerance bool               `json:"within_tolerance"`
}

type faultsReport struct {
	Config        string      `json:"config"`
	Cores         int         `json:"cores"`
	Servers       int         `json:"servers"`
	CrowdHosts    int         `json:"crowd_hosts"`
	LossThreshold float64     `json:"loss_threshold"`
	Tolerance     float64     `json:"tolerance"`
	WallMs        float64     `json:"wall_ms"`
	Points        []faultsRow `json:"points"`
}

// locateRow times each algorithm three ways: the pre-kernel reference
// (before), the PR 2 distance-slice kernel with the mask cache disabled
// (kernel / mask-off), and the full quantized-mask path (after /
// mask-on). Both diff columns compare against the reference regions
// summed over every benchmark target and must be zero — runLocate
// aborts otherwise.
type locateRow struct {
	Algorithm       string  `json:"algorithm"`
	BeforeMsOp      float64 `json:"before_ms_per_locate"`
	KernelMsOp      float64 `json:"kernel_mask_off_ms_per_locate"`
	AfterMsOp       float64 `json:"after_ms_per_locate"`
	Speedup         float64 `json:"speedup"`
	KernelSpeedup   float64 `json:"kernel_speedup_vs_reference"`
	MaskSpeedup     float64 `json:"mask_speedup_vs_kernel"`
	RegionCells     int     `json:"region_cells"`
	DiffCells       int     `json:"diff_cells_vs_reference"`
	KernelDiffCells int     `json:"kernel_diff_cells_vs_reference"`
}

type locateReport struct {
	Config        string      `json:"config"`
	Cores         int         `json:"cores"`
	GridResDeg    float64     `json:"grid_res_deg"`
	Targets       int         `json:"targets"`
	Algorithms    []locateRow `json:"algorithms"`
	MaskStepKm    float64     `json:"mask_step_km"`
	MaskLevels    int         `json:"mask_levels"`
	MaskBytes     int         `json:"mask_bytes_per_landmark"`
	MaskHits      uint64      `json:"mask_hits"`
	MaskMisses    uint64      `json:"mask_misses"`
	MaskEvictions uint64      `json:"mask_evictions"`
	MaskRefined   uint64      `json:"mask_refined_cells"`
	AuditWallMs   float64     `json:"audit_wall_ms"`
	Credible      int         `json:"credible"`
	Uncertain     int         `json:"uncertain"`
	False         int         `json:"false"`
	TallyPinned   bool        `json:"tally_pinned"`
}

// timeAudit builds a fresh lab at the given concurrency and times one
// full audit. A fresh lab per run keeps the comparison honest: nothing
// is pre-warmed for the second configuration.
func timeAudit(cfg experiments.Config, workers int) (time.Duration, assess.Tally, int, error) {
	cfg.Concurrency = workers
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return 0, assess.Tally{}, 0, err
	}
	start := time.Now()
	run, err := lab.Audit()
	if err != nil {
		return 0, assess.Tally{}, 0, err
	}
	return time.Since(start), assess.Tabulate(run.Results), len(run.Results), nil
}

func runAudit(scale string, cfg experiments.Config, out string) {
	workers := runtime.GOMAXPROCS(0)
	serial, serialTally, servers, err := timeAudit(cfg, 1)
	if err != nil {
		log.Fatalf("serial audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serial (1 worker):    %v over %d servers\n", serial.Round(time.Millisecond), servers)
	parallel, parallelTally, _, err := timeAudit(cfg, workers)
	if err != nil {
		log.Fatalf("parallel audit: %v", err)
	}
	fmt.Fprintf(os.Stderr, "parallel (%d workers): %v\n", workers, parallel.Round(time.Millisecond))

	identical := serialTally == parallelTally
	if !identical {
		log.Fatalf("determinism violation: serial tally %+v != parallel tally %+v", serialTally, parallelTally)
	}

	r := auditReport{
		Config:           scale,
		Servers:          servers,
		Cores:            runtime.NumCPU(),
		ParallelWorkers:  workers,
		SerialMs:         float64(serial.Microseconds()) / 1000,
		ParallelMs:       float64(parallel.Microseconds()) / 1000,
		Speedup:          float64(serial) / float64(parallel),
		TalliesIdentical: identical,
		Credible:         serialTally.Credible,
		Uncertain:        serialTally.Uncertain,
		False:            serialTally.False,
	}
	writeJSON(out, r)
	fmt.Fprintf(os.Stderr, "speedup %.2fx on %d cores; tallies identical; wrote %s\n", r.Speedup, r.Cores, out)
}

// timeLocate reports the mean per-Locate wall time over the target
// measurement vectors, after one warmup pass (which also fills the
// distance-field cache for the kernel side — the steady state every
// audit target after the first runs in).
func timeLocate(alg geoloc.Algorithm, targets [][]geoloc.Measurement) (float64, error) {
	for _, ms := range targets {
		if _, err := alg.Locate(ms); err != nil {
			return 0, err
		}
	}
	const minRounds, minDuration = 3, 300 * time.Millisecond
	rounds := 0
	start := time.Now()
	for rounds < minRounds || time.Since(start) < minDuration {
		for _, ms := range targets {
			if _, err := alg.Locate(ms); err != nil {
				return 0, err
			}
		}
		rounds++
	}
	elapsed := time.Since(start)
	return float64(elapsed.Microseconds()) / 1000 / float64(rounds*len(targets)), nil
}

// symmetricDiffCells counts cells in exactly one of the two regions.
func symmetricDiffCells(a, b interface {
	Each(func(int))
	Contains(int) bool
}) int {
	n := 0
	a.Each(func(i int) {
		if !b.Contains(i) {
			n++
		}
	})
	b.Each(func(i int) {
		if !a.Contains(i) {
			n++
		}
	})
	return n
}

func runLocate(scale string, cfg experiments.Config, out string) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	const nTargets = 3
	if len(lab.Crowd) < nTargets {
		log.Fatalf("need %d crowd hosts, lab has %d", nTargets, len(lab.Crowd))
	}
	targets := make([][]geoloc.Measurement, nTargets)
	for i := range targets {
		rng := rand.New(rand.NewSource(int64(77 + i)))
		targets[i] = measure.Measurements(lab.Crowd[i].MeasureAllAnchors(lab.Cons, rng))
		if len(targets[i]) == 0 {
			log.Fatalf("crowd host %d produced no measurements", i)
		}
	}

	model := lab.Spotter.Model()
	pairs := []struct {
		name      string
		ref, fast geoloc.Algorithm
	}{
		{"CBG", &refimpl.CBG{Env: lab.Env, Cal: lab.CBG.Calibration()}, lab.CBG},
		{"CBG++", &refimpl.CBGPP{Env: lab.Env, Cal: lab.CBGpp.Calibration()}, lab.CBGpp},
		{"Quasi-Octant", &refimpl.Octant{Env: lab.Env, Cal: lab.Octant.Calibration()}, lab.Octant},
		{"Spotter", &refimpl.Spotter{Env: lab.Env, Model: model}, lab.Spotter},
		{"Hybrid", &refimpl.Hybrid{Env: lab.Env, Model: model}, lab.Hybrid},
	}

	rep := locateReport{
		Config:     scale,
		Cores:      runtime.NumCPU(),
		GridResDeg: cfg.GridResDeg,
		Targets:    nTargets,
	}
	// withMasksOff runs fn with the lab Env's mask cache disabled, i.e.
	// on the PR 2 distance-slice kernel alone.
	savedMasks := lab.Env.Masks
	withMasksOff := func(fn func() error) error {
		lab.Env.Masks = nil
		defer func() { lab.Env.Masks = savedMasks }()
		return fn()
	}
	for _, p := range pairs {
		before, err := timeLocate(p.ref, targets)
		if err != nil {
			log.Fatalf("%s reference: %v", p.name, err)
		}
		var kernel float64
		if err := withMasksOff(func() error {
			var err error
			kernel, err = timeLocate(p.fast, targets)
			return err
		}); err != nil {
			log.Fatalf("%s kernel (mask off): %v", p.name, err)
		}
		after, err := timeLocate(p.fast, targets)
		if err != nil {
			log.Fatalf("%s mask path: %v", p.name, err)
		}
		// Equivalence oracle over every benchmark target: reference vs
		// mask-off kernel vs mask-on path, all three byte-identical.
		kernelDiff, maskDiff, regionCells := 0, 0, 0
		for ti, ms := range targets {
			refRegion, err := p.ref.Locate(ms)
			if err != nil {
				log.Fatalf("%s reference: %v", p.name, err)
			}
			var kernelRegion *grid.Region
			if err := withMasksOff(func() error {
				var err error
				kernelRegion, err = p.fast.Locate(ms)
				return err
			}); err != nil {
				log.Fatalf("%s kernel (mask off): %v", p.name, err)
			}
			maskRegion, err := p.fast.Locate(ms)
			if err != nil {
				log.Fatalf("%s mask path: %v", p.name, err)
			}
			kernelDiff += symmetricDiffCells(refRegion, kernelRegion)
			maskDiff += symmetricDiffCells(refRegion, maskRegion)
			if ti == 0 {
				regionCells = maskRegion.Count()
			}
		}
		row := locateRow{
			Algorithm:       p.name,
			BeforeMsOp:      before,
			KernelMsOp:      kernel,
			AfterMsOp:       after,
			Speedup:         before / after,
			KernelSpeedup:   before / kernel,
			MaskSpeedup:     kernel / after,
			RegionCells:     regionCells,
			DiffCells:       maskDiff,
			KernelDiffCells: kernelDiff,
		}
		rep.Algorithms = append(rep.Algorithms, row)
		fmt.Fprintf(os.Stderr, "%-13s before %8.3f ms  mask-off %8.3f ms  mask-on %8.3f ms  %6.1fx total (%.1fx from masks, diff %d cells)\n",
			p.name, row.BeforeMsOp, row.KernelMsOp, row.AfterMsOp, row.Speedup, row.MaskSpeedup, row.DiffCells)
		if maskDiff != 0 || kernelDiff != 0 {
			log.Fatalf("%s: regions differ from reference (kernel diff %d cells, mask diff %d cells) — geometry must be byte-identical",
				p.name, kernelDiff, maskDiff)
		}
	}

	if mc := lab.Env.Masks; mc != nil {
		s := mc.Stats()
		rep.MaskStepKm = grid.DefaultMaskStepKm
		rep.MaskLevels = s.Levels
		rep.MaskBytes = s.BytesPerMask
		rep.MaskHits = s.Hits
		rep.MaskMisses = s.Misses
		rep.MaskEvictions = s.Evictions
		rep.MaskRefined = s.RefinedCells
		fmt.Fprintf(os.Stderr, "mask cache: %d entries, %d hits / %d misses, %d annulus cells refined (%d levels, %d KB/landmark)\n",
			s.Entries, s.Hits, s.Misses, s.RefinedCells, s.Levels, s.BytesPerMask/1024)
	}

	wall, tally, servers, err := timeAudit(cfg, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	rep.AuditWallMs = float64(wall.Microseconds()) / 1000
	rep.Credible = tally.Credible
	rep.Uncertain = tally.Uncertain
	rep.False = tally.False
	fmt.Fprintf(os.Stderr, "quick audit: %v over %d servers (credible %d / uncertain %d / false %d)\n",
		wall.Round(time.Millisecond), servers, tally.Credible, tally.Uncertain, tally.False)
	if scale == "quick" {
		if tally.Credible != 166 || tally.Uncertain != 25 || tally.False != 161 {
			log.Fatalf("quick-fleet tally drifted: got %d/%d/%d, want 166/25/161 — the mask cache must not change verdicts",
				tally.Credible, tally.Uncertain, tally.False)
		}
		rep.TallyPinned = true
	}

	writeJSON(out, rep)
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

func runFaults(scale string, cfg experiments.Config, out string) {
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	const crowdHosts = 8
	start := time.Now()
	res, err := lab.Robustness(nil, crowdHosts)
	if err != nil {
		log.Fatalf("robustness sweep: %v", err)
	}
	wall := time.Since(start)

	rep := faultsReport{
		Config:        scale,
		Cores:         runtime.NumCPU(),
		Servers:       len(lab.Fleet.Servers()),
		CrowdHosts:    res.CrowdHosts,
		LossThreshold: experiments.RobustnessLossThreshold,
		Tolerance:     experiments.RobustnessTallyTolerance,
		WallMs:        float64(wall.Microseconds()) / 1000,
	}
	baseline := res.Points[0].Tally
	for _, p := range res.Points {
		row := faultsRow{
			Loss:            p.Loss,
			Credible:        p.Tally.Credible,
			Uncertain:       p.Tally.Uncertain,
			False:           p.Tally.False,
			MeanCoverage:    p.MeanCoverage,
			MeasureFailures: p.MeasureFailures,
			LocateFailures:  p.LocateFailures,
			DegradedServers: p.DegradedServers,
			Disconnects:     p.Disconnects,
			LostLandmarks:   p.LostLandmarks,
			Retries:         p.Retries,
			MeanAreaKm2:     map[string]float64{},
			WithinTolerance: p.WithinTolerance(baseline, experiments.RobustnessTallyTolerance),
		}
		for _, a := range p.Areas {
			row.MeanAreaKm2[a.Algorithm] = a.MeanAreaKm2
		}
		rep.Points = append(rep.Points, row)
		fmt.Fprintf(os.Stderr, "loss %.2f: %4d/%4d/%4d  coverage %.3f  degraded %d  within tolerance: %v\n",
			p.Loss, p.Tally.Credible, p.Tally.Uncertain, p.Tally.False,
			p.MeanCoverage, p.DegradedServers, row.WithinTolerance)
	}
	for _, row := range rep.Points {
		if row.Loss <= rep.LossThreshold && !row.WithinTolerance {
			log.Fatalf("loss %.2f is under the documented threshold %.2f but outside tolerance", row.Loss, rep.LossThreshold)
		}
	}
	writeJSON(out, rep)
	fmt.Fprintf(os.Stderr, "swept %d loss rates in %v; wrote %s\n", len(rep.Points), wall.Round(time.Millisecond), out)
}

type atlasdReport struct {
	Config      string `json:"config"`
	Cores       int    `json:"cores"`
	Landmarks   int    `json:"landmarks"`
	Clients     int    `json:"clients"`
	Iterations  int    `json:"iterations"`
	SecondPhase int    `json:"second_phase"`
	MaxInflight int    `json:"max_inflight"`

	// Concurrent-vs-serial determinism run:
	Ops                  int     `json:"ops"`
	SerialWallMs         float64 `json:"serial_wall_ms"`
	ConcurrentWallMs     float64 `json:"concurrent_wall_ms"`
	ThroughputOps        float64 `json:"throughput_ops_per_sec"`
	P50Ms                float64 `json:"p50_ms"`
	P99Ms                float64 `json:"p99_ms"`
	Shed                 int     `json:"shed"`
	ShedRate             float64 `json:"shed_rate"`
	TranscriptsIdentical bool    `json:"transcripts_identical"`
	ModelFits            int64   `json:"model_fits"`
	ModelCacheHits       int64   `json:"model_cache_hits"`
	ModelCoalesced       int64   `json:"model_coalesced"`

	// Graceful-shutdown run:
	DrainStoppedClients int   `json:"drain_stopped_clients"`
	DrainAccepted       int   `json:"drain_accepted_reports"`
	DrainDropped        int   `json:"drain_dropped_reports"`
	DuplicateReports    int64 `json:"duplicate_reports"`
}

// ledgerDiff cross-checks client-side 202 receipts against the server
// ledger and returns how many receipts have no ledger entry (dropped)
// plus how many ledger entries have no receipt (phantom). Both must be
// zero for the exactly-once guarantee to hold.
func ledgerDiff(srv *atlasd.Server, res *loadgen.Result) (dropped, phantom int) {
	ledger := map[string]int{}
	for _, rep := range srv.Reports() {
		ledger[fmt.Sprintf("%s|%d", rep.Client, rep.Seq)]++
	}
	for _, st := range res.PerClient {
		for _, seq := range st.AcceptedSeqs {
			key := fmt.Sprintf("%s|%d", st.Client, seq)
			if ledger[key] != 1 {
				dropped++
			}
			delete(ledger, key)
		}
	}
	for _, n := range ledger {
		phantom += n
	}
	return dropped, phantom
}

func runAtlasd(scale, out string) {
	const seed = 2018
	clients, iterations, secondPhase := 32, 3, 8
	anchors, probes := 40, 30
	if scale == "paper" {
		anchors, probes, iterations = 120, 200, 5
	}

	simNet := netsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	cons, err := atlas.Build(simNet, atlas.Config{Anchors: anchors, Probes: probes, SamplesPerPair: 3}, rng)
	if err != nil {
		log.Fatalf("building constellation: %v", err)
	}
	hosts := make([]netsim.HostID, clients)
	for i := range hosts {
		id := netsim.HostID(fmt.Sprintf("bench-client-%04d", i))
		loc := geo.Point{Lat: -55 + 120*rng.Float64(), Lon: -175 + 350*rng.Float64()}
		if err := simNet.AddHost(&netsim.Host{ID: id, Loc: loc}); err != nil {
			log.Fatalf("adding vantage host: %v", err)
		}
		hosts[i] = id
	}

	newServer := func(maxInflight int) *atlasd.Server {
		return atlasd.NewServer(cons, atlasd.Config{
			Seed:        seed,
			Opts:        cbg.Options{Slowline: true},
			MaxInflight: maxInflight,
		})
	}
	newRunner := func(srv *atlasd.Server) *loadgen.Runner {
		return &loadgen.Runner{
			Handler: srv.Handler(),
			Tool:    &measure.CLITool{Net: cons.Net()},
			Hosts:   hosts,
		}
	}
	cfg := loadgen.Config{Clients: clients, Iterations: iterations, SecondPhase: secondPhase, Seed: seed}
	ctx := context.Background()

	// 1. Serial reference run on a fresh server.
	serialCfg := cfg
	serialCfg.Concurrency = 1
	serial, err := newRunner(newServer(0)).Run(ctx, serialCfg)
	if err != nil {
		log.Fatalf("serial run: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serial (1 at a time):   %d ops in %.0f ms\n", serial.Ops, serial.WallMs)

	// 2. Fully concurrent run on another fresh server.
	concSrv := newServer(0)
	conc, err := newRunner(concSrv).Run(ctx, cfg)
	if err != nil {
		log.Fatalf("concurrent run: %v", err)
	}
	fmt.Fprintf(os.Stderr, "concurrent (%d clients): %d ops in %.0f ms (%.0f ops/s, p50 %.3f ms, p99 %.3f ms)\n",
		clients, conc.Ops, conc.WallMs, conc.ThroughputOps, conc.P50Ms, conc.P99Ms)

	if !loadgen.TranscriptsIdentical(serial, conc) {
		log.Fatalf("determinism violation: concurrent transcripts differ from the serial run")
	}
	if d, p := ledgerDiff(concSrv, conc); d != 0 || p != 0 {
		log.Fatalf("ledger mismatch in concurrent run: %d dropped, %d phantom", d, p)
	}
	cache := concSrv.Metrics().ModelCache
	if maxFits := int64(len(cons.All()) + 1); cache.Fits > maxFits {
		log.Fatalf("model cache did not coalesce: %d fits for %d landmarks", cache.Fits, len(cons.All()))
	}
	fmt.Fprintf(os.Stderr, "transcripts identical; model cache: %d fits, %d hits, %d coalesced\n",
		cache.Fits, cache.Hits, cache.Coalesced)

	// 3. Graceful shutdown under load: a small admission bound plus an
	// over-long campaign; drain once every client has a ledgered report.
	drainSrv := newServer(8)
	drainCfg := cfg
	drainCfg.Iterations = 50
	resc := make(chan *loadgen.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := newRunner(drainSrv).Run(ctx, drainCfg)
		resc <- res
		errc <- err
	}()
	deadline := time.Now().Add(60 * time.Second)
	for drainSrv.Metrics().ReportsLedgered < clients {
		if time.Now().After(deadline) {
			log.Fatalf("shutdown scenario never ledgered a first round of reports")
		}
		time.Sleep(2 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := drainSrv.Drain(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	drained := <-resc
	if err := <-errc; err != nil {
		log.Fatalf("shutdown run: %v", err)
	}
	stopped := 0
	for _, st := range drained.PerClient {
		if st.DrainStopped {
			stopped++
		}
	}
	dropped, phantom := ledgerDiff(drainSrv, drained)
	if dropped != 0 || phantom != 0 {
		log.Fatalf("graceful shutdown lost reports: %d dropped, %d phantom", dropped, phantom)
	}
	m := drainSrv.Metrics()
	fmt.Fprintf(os.Stderr, "graceful shutdown: %d clients stopped by drain, %d reports accepted, 0 dropped (%d duplicate retries suppressed)\n",
		stopped, drained.AcceptedReports, m.DuplicateReports)

	writeJSON(out, atlasdReport{
		Config:      scale,
		Cores:       runtime.NumCPU(),
		Landmarks:   len(cons.All()),
		Clients:     clients,
		Iterations:  iterations,
		SecondPhase: secondPhase,
		MaxInflight: atlasd.DefaultMaxInflight,

		Ops:                  conc.Ops,
		SerialWallMs:         serial.WallMs,
		ConcurrentWallMs:     conc.WallMs,
		ThroughputOps:        conc.ThroughputOps,
		P50Ms:                conc.P50Ms,
		P99Ms:                conc.P99Ms,
		Shed:                 conc.Shed,
		ShedRate:             conc.ShedRate(),
		TranscriptsIdentical: true,
		ModelFits:            cache.Fits,
		ModelCacheHits:       cache.Hits,
		ModelCoalesced:       cache.Coalesced,

		DrainStoppedClients: stopped,
		DrainAccepted:       drained.AcceptedReports,
		DrainDropped:        dropped,
		DuplicateReports:    m.DuplicateReports,
	})
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

type streamReport struct {
	Config string `json:"config"`
	Cores  int    `json:"cores"`

	// Quick-fleet parity against the batch oracle:
	Servers          int     `json:"servers"`
	BatchWallMs      float64 `json:"batch_wall_ms"`
	StreamWallMs     float64 `json:"stream_wall_ms"`
	FingerprintMatch bool    `json:"fingerprint_match"`
	Credible         int     `json:"credible"`
	Uncertain        int     `json:"uncertain"`
	False            int     `json:"false"`
	SecondPassAudits int     `json:"second_pass_audits"`

	// Synthetic bounded-memory run:
	SynthServers    int     `json:"synth_servers"`
	BatchSize       int     `json:"batch_size"`
	QueueDepth      int     `json:"queue_depth"`
	SynthWallMs     float64 `json:"synth_wall_ms"`
	SynthBatches    int     `json:"synth_batches"`
	BaselineHeapMB  float64 `json:"baseline_heap_mb"`
	PeakHeapMB      float64 `json:"peak_heap_mb"`
	HeapCeilingMB   float64 `json:"heap_ceiling_mb"`
	MaxLiveHosts    int     `json:"max_live_hosts"`
	LiveHostBound   int     `json:"live_host_bound"`
	SynthCredible   int     `json:"synth_credible"`
	SynthUncertain  int     `json:"synth_uncertain"`
	SynthFalse      int     `json:"synth_false"`
	SynthSecondPass int     `json:"synth_second_pass_audits"`
}

// heapMB returns the current live-heap size in MB after a collection,
// so batch-to-batch samples measure retained state, not GC phase.
func heapMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

func runStream(scale string, cfg experiments.Config, synthServers int, out string) {
	workers := runtime.GOMAXPROCS(0)
	cfg.Concurrency = workers

	// Part 1: fingerprint parity with the batch oracle on the quick fleet.
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("building lab: %v", err)
	}
	start := time.Now()
	run, err := lab.Audit()
	if err != nil {
		log.Fatalf("batch audit: %v", err)
	}
	batchWall := time.Since(start)
	oracle := experiments.Fingerprint(run)

	auditor := lab.StreamingAuditor(0, 0)
	start = time.Now()
	if _, err := auditor.Sync(context.Background(), lab.StreamSource()); err != nil {
		log.Fatalf("streaming audit: %v", err)
	}
	streamWall := time.Since(start)
	if got := auditor.Store().Fingerprint(); got != oracle {
		log.Fatalf("verdict delta: streaming fingerprint diverges from the batch oracle\n--- batch ---\n%s--- stream ---\n%s", oracle, got)
	}
	second, err := auditor.Sync(context.Background(), lab.StreamSource())
	if err != nil {
		log.Fatalf("second streaming pass: %v", err)
	}
	if second.Audited != 0 {
		log.Fatalf("incremental bug: second pass over the unchanged fleet re-measured %d servers", second.Audited)
	}
	tally := auditor.Store().Tally()
	fmt.Fprintf(os.Stderr, "parity: %d servers, batch %v vs stream %v, fingerprints identical, pass 2 re-measured 0\n",
		len(run.Results), batchWall.Round(time.Millisecond), streamWall.Round(time.Millisecond))

	// Part 2: bounded memory on a synthetic fleet far larger than RAM
	// would allow if the pipeline materialized it.
	const batchSize, queueDepth = 256, 2
	simNet := netsim.New(9090)
	rng := rand.New(rand.NewSource(9090))
	cons, err := atlas.Build(simNet, atlas.Config{Anchors: 24, Probes: 12, SamplesPerPair: 3}, rng)
	if err != nil {
		log.Fatalf("building synth constellation: %v", err)
	}
	env := geoloc.NewEnv(4)
	cal, err := cbgpp.Calibrate(cons, cbgpp.Options{})
	if err != nil {
		log.Fatalf("calibrating: %v", err)
	}
	client := netsim.HostID("stream-bench-client")
	if err := simNet.AddHost(&netsim.Host{ID: client, Loc: geo.Point{Lat: 50.11, Lon: 8.68}, AccessDelayMs: 1}); err != nil {
		log.Fatalf("adding client: %v", err)
	}
	src := stream.NewSynthSource(simNet, synthServers, 777)

	baseline := heapMB()
	ceiling := baseline + 128
	peak := baseline
	var mu sync.Mutex
	synthAuditor := stream.New(stream.Config{
		Cons:        cons,
		Client:      client,
		Env:         env,
		Mask:        env.Mask,
		Locator:     cbgpp.New(env, cal, cbgpp.Options{}),
		Seed:        4242,
		Concurrency: workers,
		BatchSize:   batchSize,
		QueueDepth:  queueDepth,
		OnBatchDone: func(bs stream.BatchStats) {
			h := heapMB()
			mu.Lock()
			if h > peak {
				peak = h
			}
			mu.Unlock()
		},
	})
	start = time.Now()
	synthStats, err := synthAuditor.Sync(context.Background(), src)
	if err != nil {
		log.Fatalf("synthetic streaming audit: %v", err)
	}
	synthWall := time.Since(start)
	if peak > ceiling {
		log.Fatalf("bounded-memory violation: peak heap %.1f MB exceeds ceiling %.1f MB (baseline %.1f MB)", peak, ceiling, baseline)
	}
	liveBound := (queueDepth + 2) * batchSize
	if src.MaxLiveHosts() > liveBound {
		log.Fatalf("provisioning violation: %d live hosts at peak, bound is %d", src.MaxLiveHosts(), liveBound)
	}
	synthSecond, err := synthAuditor.Sync(context.Background(), src)
	if err != nil {
		log.Fatalf("second synthetic pass: %v", err)
	}
	if synthSecond.Audited != 0 {
		log.Fatalf("incremental bug: second synthetic pass re-measured %d servers", synthSecond.Audited)
	}
	synthTally := synthAuditor.Store().Tally()
	fmt.Fprintf(os.Stderr, "synthetic: %d servers in %d batches over %v; heap baseline %.1f MB, peak %.1f MB (ceiling %.1f); peak live hosts %d (bound %d)\n",
		synthServers, synthStats.Batches, synthWall.Round(time.Millisecond), baseline, peak, ceiling, src.MaxLiveHosts(), liveBound)

	writeJSON(out, streamReport{
		Config: scale,
		Cores:  runtime.NumCPU(),

		Servers:          len(run.Results),
		BatchWallMs:      float64(batchWall.Microseconds()) / 1000,
		StreamWallMs:     float64(streamWall.Microseconds()) / 1000,
		FingerprintMatch: true,
		Credible:         tally.Credible,
		Uncertain:        tally.Uncertain,
		False:            tally.False,
		SecondPassAudits: second.Audited,

		SynthServers:    synthServers,
		BatchSize:       batchSize,
		QueueDepth:      queueDepth,
		SynthWallMs:     float64(synthWall.Microseconds()) / 1000,
		SynthBatches:    synthStats.Batches,
		BaselineHeapMB:  baseline,
		PeakHeapMB:      peak,
		HeapCeilingMB:   ceiling,
		MaxLiveHosts:    src.MaxLiveHosts(),
		LiveHostBound:   liveBound,
		SynthCredible:   synthTally.Credible,
		SynthUncertain:  synthTally.Uncertain,
		SynthFalse:      synthTally.False,
		SynthSecondPass: synthSecond.Audited,
	})
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

type adversaryPointRow struct {
	Name             string  `json:"name"`
	Attack           string  `json:"attack"`
	ProxyFraction    float64 `json:"proxy_fraction"`
	Aggressiveness   float64 `json:"aggressiveness"`
	ByzantineFrac    float64 `json:"byzantine_fraction"`
	DetectOnly       bool    `json:"detect_only"`
	TP               int     `json:"tp"`
	FP               int     `json:"fp"`
	FN               int     `json:"fn"`
	TN               int     `json:"tn"`
	Unscored         int     `json:"unscored"`
	LandmarkTP       int     `json:"landmark_tp"`
	LandmarkFP       int     `json:"landmark_fp"`
	LandmarkFN       int     `json:"landmark_fn"`
	SuspectedServers int     `json:"suspected_servers"`
	FlaggedLandmarks int     `json:"flagged_landmarks"`
	ExcludedMeas     int     `json:"excluded_measurements"`
	AuditSHA         string  `json:"audit_sha256"`
}

type adversaryReport struct {
	Config  string `json:"config"`
	Cores   int    `json:"cores"`
	Servers int    `json:"servers"`
	Anchors int    `json:"anchors"`

	Points []adversaryPointRow `json:"points"`

	Precision         float64 `json:"precision"`
	Recall            float64 `json:"recall"`
	ProxyPrecision    float64 `json:"proxy_precision"`
	ProxyRecall       float64 `json:"proxy_recall"`
	LandmarkPrecision float64 `json:"landmark_precision"`
	LandmarkRecall    float64 `json:"landmark_recall"`

	PrecisionFloor float64 `json:"precision_floor"`
	RecallFloor    float64 `json:"recall_floor"`
	FloorsCleared  bool    `json:"floors_cleared"`

	SerialWallMs          float64 `json:"serial_wall_ms"`
	ParallelWallMs        float64 `json:"parallel_wall_ms"`
	ParallelWorkers       int     `json:"parallel_workers"`
	FingerprintsIdentical bool    `json:"fingerprints_identical"`
}

func runAdversary(out string) {
	const precisionFloor, recallFloor = 0.9, 0.8
	cfg := experiments.AdversaryBenchConfig()
	sweepAt := func(workers int) (*experiments.AdversaryResult, int, int, time.Duration) {
		c := cfg
		c.Concurrency = workers
		lab, err := experiments.NewLab(c)
		if err != nil {
			log.Fatalf("building lab (%d workers): %v", workers, err)
		}
		start := time.Now()
		res, err := lab.AdversarySweep(nil)
		if err != nil {
			log.Fatalf("adversary sweep (%d workers): %v", workers, err)
		}
		return res, len(lab.Fleet.Servers()), len(lab.Cons.Anchors()), time.Since(start)
	}

	serial, servers, anchors, serialWall := sweepAt(1)
	fmt.Fprintf(os.Stderr, "serial (1 worker):    %d attack points in %v\n", len(serial.Points), serialWall.Round(time.Millisecond))
	workers := runtime.GOMAXPROCS(0)
	parallel, _, _, parWall := sweepAt(workers)
	fmt.Fprintf(os.Stderr, "parallel (%d workers): %d attack points in %v\n", workers, len(parallel.Points), parWall.Round(time.Millisecond))

	if serial.Fingerprint() != parallel.Fingerprint() {
		log.Fatalf("determinism violation: adversary sweeps differ across concurrency\n--- serial ---\n%s--- parallel ---\n%s",
			serial.Fingerprint(), parallel.Fingerprint())
	}
	fmt.Fprint(os.Stderr, serial.Render())

	rep := adversaryReport{
		Config:  "bench",
		Cores:   runtime.NumCPU(),
		Servers: servers,
		Anchors: anchors,

		Precision:         serial.Precision,
		Recall:            serial.Recall,
		ProxyPrecision:    serial.ProxyPrecision,
		ProxyRecall:       serial.ProxyRecall,
		LandmarkPrecision: serial.LandmarkPrecision,
		LandmarkRecall:    serial.LandmarkRecall,

		PrecisionFloor: precisionFloor,
		RecallFloor:    recallFloor,
		FloorsCleared:  serial.Precision >= precisionFloor && serial.Recall >= recallFloor,

		SerialWallMs:          float64(serialWall.Microseconds()) / 1000,
		ParallelWallMs:        float64(parWall.Microseconds()) / 1000,
		ParallelWorkers:       workers,
		FingerprintsIdentical: true,
	}
	for _, pt := range serial.Points {
		rep.Points = append(rep.Points, adversaryPointRow{
			Name:             pt.Name,
			Attack:           pt.Plan.Attack.String(),
			ProxyFraction:    pt.Plan.ProxyFraction,
			Aggressiveness:   pt.Plan.Aggressiveness,
			ByzantineFrac:    pt.Plan.ByzantineFraction,
			DetectOnly:       pt.Plan.DetectOnly,
			TP:               pt.TP,
			FP:               pt.FP,
			FN:               pt.FN,
			TN:               pt.TN,
			Unscored:         pt.Unscored,
			LandmarkTP:       pt.LandmarkTP,
			LandmarkFP:       pt.LandmarkFP,
			LandmarkFN:       pt.LandmarkFN,
			SuspectedServers: pt.SuspectedServers,
			FlaggedLandmarks: pt.FlaggedLandmarks,
			ExcludedMeas:     pt.ExcludedMeasurements,
			AuditSHA:         pt.AuditSHA,
		})
	}
	writeJSON(out, rep)
	if !rep.FloorsCleared {
		log.Fatalf("detection floors violated: precision %.3f (floor %.2f), recall %.3f (floor %.2f)",
			rep.Precision, precisionFloor, rep.Recall, recallFloor)
	}
	fmt.Fprintf(os.Stderr, "precision %.3f ≥ %.2f, recall %.3f ≥ %.2f; fingerprints identical; wrote %s\n",
		rep.Precision, precisionFloor, rep.Recall, recallFloor, out)
}

type constellationReport struct {
	Config     string `json:"config"`
	Cores      int    `json:"cores"`
	Landmarks  int    `json:"landmarks"`
	Shards     int    `json:"shards"`
	VNodes     int    `json:"virtual_nodes"`
	RingSeed   int64  `json:"ring_seed"`
	Clients    int    `json:"clients"`
	Iterations int    `json:"iterations"`

	// Ring partition of the landmark space, keyed by shard.
	LandmarkPartition map[string]int `json:"landmark_partition"`

	// Oracle (1 shard, serial, no hedging) vs concurrent fleet:
	OracleWallMs         float64          `json:"oracle_wall_ms"`
	FleetWallMs          float64          `json:"fleet_wall_ms"`
	ThroughputOps        float64          `json:"throughput_ops_per_sec"`
	P50Ms                float64          `json:"p50_ms"`
	P99Ms                float64          `json:"p99_ms"`
	Ops                  int              `json:"ops"`
	TranscriptsIdentical bool             `json:"transcripts_identical"`
	HedgesLaunched       int64            `json:"hedges_launched"`
	HedgesWon            int64            `json:"hedges_won"`
	PerShardFits         map[string]int64 `json:"per_shard_model_fits"`

	// Churn run: same workload with a mid-run shard drain plus an epoch
	// advance through the two-phase barrier.
	ChurnWallMs           float64 `json:"churn_wall_ms"`
	ChurnTranscriptsOK    bool    `json:"churn_transcripts_identical"`
	DrainedShard          string  `json:"drained_shard"`
	ReplayedReports       int     `json:"replayed_reports"`
	Failovers             int64   `json:"failovers"`
	EpochAfterChurn       int64   `json:"epoch_after_churn"`
	ChurnAccepted         int     `json:"churn_accepted_reports"`
	ChurnDropped          int     `json:"churn_dropped_reports"`
	ChurnPerShardDupes    int     `json:"churn_per_shard_duplicates"`
	ChurnCrossShardCopies int     `json:"churn_cross_shard_copies"`
}

// clusterLedgerDiff cross-checks client receipts against the merged
// fleet ledger: dropped counts receipts absent from every shard,
// perShardDupes counts keys some single shard ledgered twice (a broken
// dedupe), crossShard counts keys present on more than one shard
// (legitimate only transiently around a drain; reported, not fatal).
func clusterLedgerDiff(fleet *constellation.Cluster, res *loadgen.Result) (dropped, perShardDupes, crossShard int) {
	merged := fleet.MergedLedger()
	for _, st := range res.PerClient {
		for _, seq := range st.AcceptedSeqs {
			holders := merged[fmt.Sprintf("%s|%d", st.Client, seq)]
			if len(holders) == 0 {
				dropped++
				continue
			}
			if len(holders) > 1 {
				crossShard++
			}
			for _, n := range holders {
				if n > 1 {
					perShardDupes++
				}
			}
		}
	}
	return dropped, perShardDupes, crossShard
}

func runConstellation(scale, out string) {
	const seed = 2018
	const ringSeed, vnodes = 2018, 32
	shards := []string{"s0", "s1", "s2", "s3"}
	clients, iterations, secondPhase := 1200, 2, 8
	anchors, probes := 40, 30
	if scale == "paper" {
		clients, anchors, probes = 4000, 120, 200
	}

	simNet := netsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	cons, err := atlas.Build(simNet, atlas.Config{Anchors: anchors, Probes: probes, SamplesPerPair: 3}, rng)
	if err != nil {
		log.Fatalf("building constellation: %v", err)
	}
	hosts := make([]netsim.HostID, clients)
	for i := range hosts {
		id := netsim.HostID(fmt.Sprintf("fleet-client-%05d", i))
		loc := geo.Point{Lat: -55 + 120*rng.Float64(), Lon: -175 + 350*rng.Float64()}
		if err := simNet.AddHost(&netsim.Host{ID: id, Loc: loc}); err != nil {
			log.Fatalf("adding vantage host: %v", err)
		}
		hosts[i] = id
	}
	base := atlasd.Config{Seed: seed, Opts: cbg.Options{Slowline: true}, MaxInflight: 128}
	tool := &measure.CLITool{Net: cons.Net()}
	cfg := loadgen.ClusterConfig{Clients: clients, Iterations: iterations, SecondPhase: secondPhase, Seed: seed}
	ctx := context.Background()

	// 1. Single-shard serial oracle, hedging off.
	oracleFleet := constellation.NewCluster(cons, base, []string{"oracle"}, ringSeed, vnodes)
	oclient := oracleFleet.Client()
	oclient.NoHedge = true
	ocfg := cfg
	ocfg.Concurrency = 1
	oracle, err := (&loadgen.ClusterRunner{Coordinator: oclient, Tool: tool, Hosts: hosts}).Run(ctx, ocfg)
	if err != nil {
		log.Fatalf("oracle run: %v", err)
	}
	fmt.Fprintf(os.Stderr, "oracle (1 shard, serial): %d ops in %.0f ms\n", oracle.Ops, oracle.WallMs)

	// 2. Concurrent run across the full fleet, hedging on.
	fleet := constellation.NewCluster(cons, base, shards, ringSeed, vnodes)
	res, err := (&loadgen.ClusterRunner{Coordinator: fleet.Client(), Tool: tool, Hosts: hosts}).Run(ctx, cfg)
	if err != nil {
		log.Fatalf("fleet run: %v", err)
	}
	fmt.Fprintf(os.Stderr, "fleet (%d shards, %d clients): %d ops in %.0f ms (%.0f ops/s, p50 %.3f ms, p99 %.3f ms)\n",
		len(shards), clients, res.Ops, res.WallMs, res.ThroughputOps, res.P50Ms, res.P99Ms)
	if !loadgen.TranscriptsIdentical(oracle, res) {
		n := 0
		for i := range oracle.PerClient {
			if oracle.PerClient[i].TranscriptSHA != res.PerClient[i].TranscriptSHA {
				n++
			}
		}
		log.Fatalf("determinism violation: %d of %d fleet transcripts differ from the serial oracle", n, clients)
	}
	if d, p, _ := clusterLedgerDiff(fleet, res); d != 0 || p != 0 {
		log.Fatalf("fleet ledger mismatch: %d dropped, %d per-shard duplicates", d, p)
	}
	perShardFits := make(map[string]int64, len(shards))
	for _, name := range fleet.Members() {
		perShardFits[name] = fleet.Shard(name).Metrics().ModelCache.Fits
	}
	hedges := fleet.Telemetry().Count("constellation.hedge.launched")
	hedgeWins := fleet.Telemetry().Count("constellation.hedge.won")
	fmt.Fprintf(os.Stderr, "transcripts identical; hedges launched %d (won %d); per-shard fits %v\n",
		hedges, hedgeWins, perShardFits)

	// 3. Churn run on a fresh fleet: drain one shard once it has
	// ledgered reports, advance the fleet epoch through the barrier, all
	// while the load is running. Same oracle applies — the transcripts
	// are topology-independent by contract.
	churnFleet := constellation.NewCluster(cons, base, shards, ringSeed, vnodes)
	chaosErr := make(chan error, 1)
	drained := make(chan struct {
		shard    string
		replayed int
	}, 1)
	go func() {
		// Wait for some shard to have ledgered reports, then drain it.
		var victim string
		deadline := time.Now().Add(60 * time.Second)
		for victim == "" {
			if time.Now().After(deadline) {
				chaosErr <- fmt.Errorf("no shard ledgered a report within 60s")
				return
			}
			for _, name := range churnFleet.Members() {
				if srv := churnFleet.Shard(name); srv != nil && srv.Metrics().ReportsLedgered > 0 {
					victim = name
					break
				}
			}
			if victim == "" {
				time.Sleep(time.Millisecond)
			}
		}
		replayed, err := churnFleet.Drain(ctx, victim)
		if err != nil {
			chaosErr <- fmt.Errorf("draining %s: %w", victim, err)
			return
		}
		drained <- struct {
			shard    string
			replayed int
		}{victim, replayed}
		if _, err := churnFleet.Controller().AdvanceEpoch(ctx); err != nil {
			chaosErr <- fmt.Errorf("epoch barrier under load: %w", err)
			return
		}
		chaosErr <- nil
	}()
	churn, err := (&loadgen.ClusterRunner{Coordinator: churnFleet.Client(), Tool: tool, Hosts: hosts}).Run(ctx, cfg)
	if err != nil {
		log.Fatalf("churn run: %v", err)
	}
	if err := <-chaosErr; err != nil {
		log.Fatalf("churn scenario: %v", err)
	}
	dr := <-drained
	churnOK := loadgen.TranscriptsIdentical(oracle, churn)
	if !churnOK {
		n := 0
		for i := range oracle.PerClient {
			if oracle.PerClient[i].TranscriptSHA != churn.PerClient[i].TranscriptSHA {
				n++
			}
		}
		log.Fatalf("determinism violation under churn: %d of %d transcripts differ from the serial oracle", n, clients)
	}
	dropped, dupes, cross := clusterLedgerDiff(churnFleet, churn)
	if dropped != 0 || dupes != 0 {
		log.Fatalf("churn ledger mismatch: %d dropped, %d per-shard duplicates", dropped, dupes)
	}
	epoch := churnFleet.Epoch()
	failovers := churnFleet.Telemetry().Count("constellation.failover")
	fmt.Fprintf(os.Stderr, "churn: drained %s (replayed %d reports), advanced to epoch %d, %d failovers, transcripts identical, 0 dropped\n",
		dr.shard, dr.replayed, epoch, failovers)

	lmIDs := make([]netsim.HostID, 0, len(cons.All()))
	for _, lm := range cons.All() {
		lmIDs = append(lmIDs, lm.Host.ID)
	}
	writeJSON(out, constellationReport{
		Config:     scale,
		Cores:      runtime.NumCPU(),
		Landmarks:  len(lmIDs),
		Shards:     len(shards),
		VNodes:     vnodes,
		RingSeed:   ringSeed,
		Clients:    clients,
		Iterations: iterations,

		LandmarkPartition: fleet.Ring().Partition(lmIDs),

		OracleWallMs:         oracle.WallMs,
		FleetWallMs:          res.WallMs,
		ThroughputOps:        res.ThroughputOps,
		P50Ms:                res.P50Ms,
		P99Ms:                res.P99Ms,
		Ops:                  res.Ops,
		TranscriptsIdentical: true,
		HedgesLaunched:       hedges,
		HedgesWon:            hedgeWins,
		PerShardFits:         perShardFits,

		ChurnWallMs:           churn.WallMs,
		ChurnTranscriptsOK:    churnOK,
		DrainedShard:          dr.shard,
		ReplayedReports:       dr.replayed,
		Failovers:             failovers,
		EpochAfterChurn:       epoch,
		ChurnAccepted:         churn.AcceptedReports,
		ChurnDropped:          dropped,
		ChurnPerShardDupes:    dupes,
		ChurnCrossShardCopies: cross,
	})
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
}

func main() {
	mode := flag.String("mode", "audit", "what to benchmark: audit, locate, faults, stream, adversary, atlasd or constellation")
	scale := flag.String("scale", "quick", "audit scale: quick or paper")
	out := flag.String("out", "", "output JSON path (default BENCH_<mode>.json)")
	synthServers := flag.Int("servers", 100_000, "synthetic fleet size for -mode stream")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	switch *mode {
	case "audit":
		if *out == "" {
			*out = "BENCH_audit.json"
		}
		runAudit(*scale, cfg, *out)
	case "locate":
		if *out == "" {
			*out = "BENCH_locate.json"
		}
		runLocate(*scale, cfg, *out)
	case "faults":
		if *out == "" {
			*out = "BENCH_faults.json"
		}
		runFaults(*scale, cfg, *out)
	case "stream":
		if *out == "" {
			*out = "BENCH_stream.json"
		}
		runStream(*scale, cfg, *synthServers, *out)
	case "adversary":
		if *out == "" {
			*out = "BENCH_adversary.json"
		}
		runAdversary(*out)
	case "atlasd":
		if *out == "" {
			*out = "BENCH_atlasd.json"
		}
		runAtlasd(*scale, *out)
	case "constellation":
		if *out == "" {
			*out = "BENCH_constellation.json"
		}
		runConstellation(*scale, *out)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
