module activegeo

go 1.22
