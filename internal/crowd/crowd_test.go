package crowd

import (
	"math/rand"
	"sync"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

var (
	once    sync.Once
	consFix *atlas.Constellation
	hostFix []*Host
)

func fixture(t testing.TB) (*atlas.Constellation, []*Host) {
	t.Helper()
	once.Do(func() {
		net := netsim.New(99)
		rng := rand.New(rand.NewSource(99))
		var err error
		consFix, err = atlas.Build(net, atlas.Config{Anchors: 40, Probes: 30, SamplesPerPair: 3}, rng)
		if err != nil {
			panic(err)
		}
		hostFix, err = Build(consFix, Config{Volunteers: 10, MTurk: 40}, rng)
		if err != nil {
			panic(err)
		}
	})
	return consFix, hostFix
}

func TestBuildCohort(t *testing.T) {
	_, hosts := fixture(t)
	if len(hosts) != 50 {
		t.Fatalf("cohort size %d", len(hosts))
	}
	volunteers, mturk := 0, 0
	windows := 0
	for _, h := range hosts {
		if h.MTurk {
			mturk++
		} else {
			volunteers++
		}
		if h.OS == measure.Windows {
			windows++
		}
		if !h.TrueLoc.Valid() || !h.Reported.Valid() {
			t.Errorf("%s has invalid locations", h.ID)
		}
		// Reported location within ~2 km of truth (rounded coords).
		if d := geo.DistanceKm(h.TrueLoc, h.Reported); d > 2 {
			t.Errorf("%s reported %f km from truth", h.ID, d)
		}
	}
	if volunteers != 10 || mturk != 40 {
		t.Errorf("split %d/%d", volunteers, mturk)
	}
	// §4.3/§5: most contributors used Windows.
	if windows < len(hosts)/2 {
		t.Errorf("only %d/%d on Windows", windows, len(hosts))
	}
}

func TestCohortGeography(t *testing.T) {
	_, hosts := fixture(t)
	byCont := map[worldmap.Continent]int{}
	for _, h := range hosts {
		if c := worldmap.Locate(h.TrueLoc); c != nil {
			byCont[c.Continent]++
		}
	}
	// Europe + North America majority, but at least three continents.
	if byCont[worldmap.Europe]+byCont[worldmap.NorthAmerica] < len(hosts)/3 {
		t.Errorf("EU+NA share too small: %v", byCont)
	}
	if len(byCont) < 3 {
		t.Errorf("only %d continents: %v", len(byCont), byCont)
	}
}

func TestMeasureAllAnchors(t *testing.T) {
	cons, hosts := fixture(t)
	rng := rand.New(rand.NewSource(7))
	samples := hosts[0].MeasureAllAnchors(cons, rng)
	if len(samples) != len(cons.Anchors()) {
		t.Fatalf("samples = %d, want %d", len(samples), len(cons.Anchors()))
	}
	for _, s := range samples {
		if s.RTTms <= 0 {
			t.Fatalf("bad RTT %f", s.RTTms)
		}
		if s.Trips != 1 && s.Trips != 2 {
			t.Fatalf("trips = %d", s.Trips)
		}
	}
}

func TestMeasureTwoPhase(t *testing.T) {
	cons, hosts := fixture(t)
	rng := rand.New(rand.NewSource(8))
	res, err := hosts[1].MeasureTwoPhase(cons, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phase1) == 0 {
		t.Error("no phase-1 samples")
	}
}

func TestDefaultConfigUsedWhenEmpty(t *testing.T) {
	net := netsim.New(123)
	cons, err := atlas.Build(net, atlas.Config{Anchors: 10, Probes: 0, SamplesPerPair: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := Build(cons, Config{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 190 {
		t.Errorf("default cohort size %d, want 190 (40+150)", len(hosts))
	}
}
