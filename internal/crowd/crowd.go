// Package crowd models the crowdsourced validation hosts of §5: 40
// volunteers recruited from mailing lists plus 150 Mechanical Turk
// workers, who reported their location to two decimal places (~1 km) and
// measured RTTs to RIPE Atlas anchors and probes with the Web-based tool
// — mostly from Windows machines, which is what makes the validation a
// fair stand-in for the noise proxies add (§5, last paragraph).
package crowd

import (
	"fmt"
	"math"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

// Host is one crowdsourced validation host.
type Host struct {
	ID       netsim.HostID
	TrueLoc  geo.Point
	Reported geo.Point // rounded to two decimal places, as uploaded
	OS       measure.OS
	Browser  measure.Browser
	MTurk    bool // paid contributor vs volunteer
}

// Config controls cohort construction.
type Config struct {
	Volunteers int // paper: 40
	MTurk      int // paper: 150
}

// DefaultConfig matches the paper's cohort.
func DefaultConfig() Config { return Config{Volunteers: 40, MTurk: 150} }

// cities weights the cohort's geography like Figure 8: mostly Europe and
// North America, with enough contributors elsewhere for statistics.
var cities = []struct {
	lat, lon, weight float64
}{
	{52.52, 13.41, 8}, {48.86, 2.35, 7}, {51.51, -0.13, 8}, {40.42, -3.70, 5},
	{41.90, 12.50, 4}, {52.23, 21.01, 4}, {59.33, 18.07, 3}, {50.08, 14.44, 3},
	{47.50, 19.04, 2}, {38.72, -9.14, 2}, {55.76, 37.62, 3}, {50.45, 30.52, 2},
	{40.71, -74.01, 8}, {41.88, -87.63, 6}, {34.05, -118.24, 6}, {47.61, -122.33, 4},
	{43.65, -79.38, 4}, {29.76, -95.37, 3}, {39.74, -104.99, 2}, {25.76, -80.19, 2},
	{19.43, -99.13, 3}, {-23.55, -46.63, 4}, {-34.60, -58.38, 3}, {4.71, -74.07, 2},
	{-33.45, -70.67, 2}, {35.68, 139.65, 3}, {37.57, 126.98, 2}, {28.61, 77.21, 4},
	{19.08, 72.88, 3}, {13.76, 100.50, 2}, {1.35, 103.82, 2}, {14.60, 120.98, 3},
	{-6.21, 106.85, 2}, {-33.87, 151.21, 3}, {-36.85, 174.76, 1}, {30.04, 31.24, 2},
	{6.52, 3.38, 2}, {-26.20, 28.05, 2}, {-1.29, 36.82, 1}, {33.57, -7.59, 1},
	{41.01, 28.98, 3}, {35.69, 51.39, 1},
}

// Build places the cohort's hosts into the constellation's network.
func Build(cons *atlas.Constellation, cfg Config, rng *rand.Rand) ([]*Host, error) {
	total := cfg.Volunteers + cfg.MTurk
	if total == 0 {
		cfg = DefaultConfig()
		total = cfg.Volunteers + cfg.MTurk
	}
	var weightSum float64
	for _, c := range cities {
		weightSum += c.weight
	}
	hosts := make([]*Host, 0, total)
	for i := 0; i < total; i++ {
		x := rng.Float64() * weightSum
		city := cities[len(cities)-1]
		for _, c := range cities {
			x -= c.weight
			if x <= 0 {
				city = c
				break
			}
		}
		loc := geo.DestinationPoint(
			geo.Point{Lat: city.lat, Lon: city.lon},
			rng.Float64()*360, rng.Float64()*40)
		h := &Host{
			ID:      netsim.HostID(fmt.Sprintf("crowd-%03d", i)),
			TrueLoc: loc,
			Reported: geo.Point{
				Lat: math.Round(loc.Lat*100) / 100,
				Lon: math.Round(loc.Lon*100) / 100,
			},
			MTurk: i >= cfg.Volunteers,
		}
		// §5: most contributors used Windows; browsers vary.
		if rng.Float64() < 0.8 {
			h.OS = measure.Windows
		} else {
			h.OS = measure.Linux
		}
		switch rng.Intn(3) {
		case 0:
			h.Browser = measure.Chrome
		case 1:
			h.Browser = measure.Firefox
		default:
			h.Browser = measure.Edge
		}
		if err := cons.Net().AddHost(&netsim.Host{
			ID:            h.ID,
			Loc:           loc,
			AccessDelayMs: 3 + rng.ExpFloat64()*10, // residential
		}); err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// MeasureAllAnchors measures the host against every anchor with its own
// web tool — the §5.2 protocol ("we measured the round-trip time between
// all 250 RIPE Atlas anchors and the target").
func (h *Host) MeasureAllAnchors(cons *atlas.Constellation, rng *rand.Rand) []measure.Sample {
	tool := &measure.WebTool{Net: cons.Net(), OS: h.OS, Browser: h.Browser}
	var out []measure.Sample
	for _, lm := range cons.Anchors() {
		s, err := tool.Measure(h.ID, lm, rng)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

// MeasureTwoPhase runs the standard two-phase procedure with the host's
// web tool.
func (h *Host) MeasureTwoPhase(cons *atlas.Constellation, rng *rand.Rand) (*measure.Result, error) {
	tool := &measure.WebTool{Net: cons.Net(), OS: h.OS, Browser: h.Browser}
	tp := &measure.TwoPhase{Cons: cons, Tool: tool}
	return tp.Run(h.ID, rng)
}
