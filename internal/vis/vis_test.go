package vis

import (
	"strings"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

func TestCanvasBaseLayer(t *testing.T) {
	c := NewCanvas(80)
	s := c.String()
	lines := strings.Split(s, "\n")
	if len(lines) != 80/4+2 {
		t.Fatalf("canvas has %d lines", len(lines))
	}
	for i, l := range lines {
		if len([]rune(l)) != 82 {
			t.Fatalf("line %d width %d", i, len([]rune(l)))
		}
	}
	if !strings.ContainsRune(s, GlyphLand) {
		t.Error("no land drawn")
	}
	if !strings.ContainsRune(s, GlyphWater) {
		t.Error("no water drawn")
	}
	// Europe should be land, the mid-Pacific water.
	row, col := c.cellAt(geo.Point{Lat: 50, Lon: 10})
	if c.cells[row][col] != GlyphLand {
		t.Error("central Europe not land")
	}
	row, col = c.cellAt(geo.Point{Lat: -40, Lon: -120})
	if c.cells[row][col] != GlyphWater {
		t.Error("south Pacific not water")
	}
}

func TestMarkRegionAndPoint(t *testing.T) {
	g := grid.New(2.0)
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	r := g.CapRegion(geo.Cap{Center: berlin, RadiusKm: 400})

	out := RenderRegion(r, 100, &berlin)
	if !strings.ContainsRune(out, GlyphRegion) {
		t.Error("region not drawn")
	}
	if !strings.ContainsRune(out, GlyphPoint) {
		t.Error("truth mark not drawn")
	}
	// The marks are in the right part of the map: north of the equator
	// row, east of the Greenwich column but in the western half of Asia.
	c := NewCanvas(100)
	c.MarkRegion(r, GlyphRegion)
	for row := range c.cells {
		for col, ch := range c.cells[row] {
			if ch != GlyphRegion {
				continue
			}
			p := c.pointAt(row, col)
			if p.Lat < 40 || p.Lat > 65 || p.Lon < 0 || p.Lon > 30 {
				t.Fatalf("region glyph at %v, far from Berlin", p)
			}
		}
	}
}

func TestTinyRegionStillVisible(t *testing.T) {
	g := grid.New(1.0)
	r := g.NewRegion()
	r.Add(g.CellAt(geo.Point{Lat: 1.35, Lon: 103.82})) // a single cell (Singapore)
	c := NewCanvas(60)                                 // character cells 6°x7.5°: bigger than the region cell
	c.MarkRegion(r, GlyphRegion)
	found := false
	for _, row := range c.cells {
		for _, ch := range row {
			if ch == GlyphRegion {
				found = true
			}
		}
	}
	if !found {
		t.Error("single-cell region vanished from the map")
	}
}

func TestCountryMap(t *testing.T) {
	out := CountryMap(80, func(code string) rune {
		if code == "us" {
			return '@'
		}
		return 0
	})
	if !strings.ContainsRune(out, '@') {
		t.Error("US not drawn")
	}
	if !strings.ContainsRune(out, GlyphLand) {
		t.Error("other land should stay plain")
	}
	// The '@' glyphs should sit in the western hemisphere rows/cols.
	c := NewCanvas(80)
	lines := strings.Split(out, "\n")[1:] // skip border
	for row, line := range lines {
		for col, ch := range []rune(line) {
			if ch != '@' || col == 0 {
				continue
			}
			p := c.pointAt(row, col-1) // border offset
			if p.Lon > -60 || p.Lat < 15 {
				t.Fatalf("US glyph at %v", p)
			}
		}
	}
}

func TestMinimumWidth(t *testing.T) {
	c := NewCanvas(1)
	if c.width < 20 || c.height < 8 {
		t.Errorf("minimums not enforced: %dx%d", c.width, c.height)
	}
}

func TestCellAtEdges(t *testing.T) {
	c := NewCanvas(40)
	for _, p := range []geo.Point{{Lat: 90, Lon: -180}, {Lat: -90, Lon: 180}, {Lat: 0, Lon: 0}} {
		row, col := c.cellAt(p)
		if row < 0 || row >= c.height || col < 0 || col >= c.width {
			t.Errorf("cellAt(%v) = %d,%d out of bounds", p, row, col)
		}
	}
}
