// Package vis renders world maps and prediction regions as text — the
// library's stand-in for the paper's map figures, usable directly from
// terminal tools (cmd/geolocate --map and the examples).
//
// The projection is equirectangular: longitude maps linearly to columns
// and latitude to rows. Character cells are roughly twice as tall as
// they are wide, so a canvas of width w uses w/4 rows for the 2:1
// world aspect ratio.
package vis

import (
	"strings"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
	"activegeo/internal/worldmap"
)

// Glyphs used by the base map and the standard marks.
const (
	GlyphWater  = ' '
	GlyphLand   = '.'
	GlyphRegion = '#'
	GlyphPoint  = 'X'
)

// Canvas is a text world map.
type Canvas struct {
	width, height int
	cells         [][]rune
}

// NewCanvas creates a canvas of the given character width (minimum 20)
// with the land/water base layer drawn from the worldmap atlas.
func NewCanvas(width int) *Canvas {
	if width < 20 {
		width = 20
	}
	height := width / 4
	if height < 8 {
		height = 8
	}
	c := &Canvas{width: width, height: height}
	c.cells = make([][]rune, height)
	for row := range c.cells {
		c.cells[row] = make([]rune, width)
		for col := range c.cells[row] {
			if worldmap.OnLand(c.pointAt(row, col)) {
				c.cells[row][col] = GlyphLand
			} else {
				c.cells[row][col] = GlyphWater
			}
		}
	}
	return c
}

// pointAt returns the geographic center of a character cell.
func (c *Canvas) pointAt(row, col int) geo.Point {
	lat := 90 - (float64(row)+0.5)*180/float64(c.height)
	lon := -180 + (float64(col)+0.5)*360/float64(c.width)
	return geo.Point{Lat: lat, Lon: lon}
}

// cellAt returns the character cell containing p.
func (c *Canvas) cellAt(p geo.Point) (row, col int) {
	p = p.Normalize()
	row = int((90 - p.Lat) / 180 * float64(c.height))
	if row >= c.height {
		row = c.height - 1
	}
	if row < 0 {
		row = 0
	}
	col = int((p.Lon + 180) / 360 * float64(c.width))
	if col >= c.width {
		col = c.width - 1
	}
	if col < 0 {
		col = 0
	}
	return row, col
}

// MarkRegion draws every cell of the region with the glyph.
func (c *Canvas) MarkRegion(r *grid.Region, glyph rune) {
	// Sample the canvas rather than the region: a region cell can be
	// smaller than a character cell and vice versa, so mark a character
	// if its center's grid cell is in the region, and additionally mark
	// the character under each region cell's center (so small regions
	// never disappear).
	g := r.Grid()
	for row := 0; row < c.height; row++ {
		for col := 0; col < c.width; col++ {
			if r.Contains(g.CellAt(c.pointAt(row, col))) {
				c.cells[row][col] = glyph
			}
		}
	}
	r.Each(func(i int) {
		row, col := c.cellAt(g.Center(i))
		c.cells[row][col] = glyph
	})
}

// MarkPoint draws a single point with the glyph.
func (c *Canvas) MarkPoint(p geo.Point, glyph rune) {
	row, col := c.cellAt(p)
	c.cells[row][col] = glyph
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var b strings.Builder
	b.Grow((c.width + 3) * (c.height + 2))
	b.WriteString("+" + strings.Repeat("-", c.width) + "+\n")
	for _, row := range c.cells {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", c.width) + "+")
	return b.String()
}

// RenderRegion is the one-call convenience: a world map with the region
// and (optionally) the true location marked.
func RenderRegion(r *grid.Region, width int, truth *geo.Point) string {
	c := NewCanvas(width)
	c.MarkRegion(r, GlyphRegion)
	if truth != nil {
		c.MarkPoint(*truth, GlyphPoint)
	}
	return c.String()
}

// CountryMap renders a world map where each land character is chosen by
// the country it falls in — the primitive behind Figure 19-style
// per-provider honesty maps. glyph receives the ISO code and returns the
// character to draw; returning 0 keeps the plain land glyph.
func CountryMap(width int, glyph func(code string) rune) string {
	c := NewCanvas(width)
	for row := 0; row < c.height; row++ {
		for col := 0; col < c.width; col++ {
			if c.cells[row][col] != GlyphLand {
				continue
			}
			if country := worldmap.Locate(c.pointAt(row, col)); country != nil {
				if g := glyph(country.Code); g != 0 {
					c.cells[row][col] = g
				}
			}
		}
	}
	return c.String()
}
