package detect

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/netsim"
)

// synthMesh builds a fully-connected mesh over n anchors placed on a
// line 600 km apart, with honest RTT = slope·dist + base plus a small
// deterministic ripple. liars maps anchor index to a mutator applied to
// the edges that anchor owns (its own reports); displace maps anchor
// index to a claimed-position offset in km applied to the distances of
// every edge touching it (both views — a misreported position corrupts
// the geometry for peers too).
func synthMesh(n int, ownBias map[int]float64, displaceKm map[int]float64) []MeshEdge {
	id := func(i int) netsim.HostID { return netsim.HostID(fmt.Sprintf("anchor-%03d", i)) }
	pos := func(i int) float64 { return float64(i) * 600 }
	claimed := func(i int) float64 { return pos(i) + displaceKm[i] }
	var edges []MeshEdge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			trueDist := math.Abs(pos(i) - pos(j))
			claimedDist := math.Abs(claimed(i) - claimed(j))
			// Honest timing follows the true geometry; the ripple keeps
			// the fit from being degenerate.
			rtt := 0.012*trueDist + 5 + 0.3*float64((i*7+j*13)%5)
			rtt += ownBias[i] // the owner's forged report padding
			edges = append(edges, MeshEdge{
				From:          id(i),
				To:            id(j),
				ClaimedDistKm: claimedDist,
				MinRTTms:      rtt,
			})
		}
	}
	return edges
}

// TestCrossValidateHonestMesh: an all-honest mesh must flag nobody.
func TestCrossValidateHonestMesh(t *testing.T) {
	rep := CrossValidate(synthMesh(12, nil, nil), DefaultCrossValidateConfig())
	if len(rep.Flagged) != 0 {
		t.Fatalf("honest mesh flagged %v", rep.Flagged)
	}
	if rep.Fit.Slope < 0.008 || rep.Fit.Slope > 0.016 {
		t.Fatalf("global fit slope %.4f implausible for 0.012 ms/km mesh", rep.Fit.Slope)
	}
}

// TestCrossValidateBiasLiar: an anchor padding its own reports by 40 ms
// shows the differential intercept signature — its own-view fit is
// elevated, the honest peer view toward it is not.
func TestCrossValidateBiasLiar(t *testing.T) {
	edges := synthMesh(12, map[int]float64{3: 40}, nil)
	rep := CrossValidate(edges, DefaultCrossValidateConfig())
	want := netsim.HostID("anchor-003")
	if !rep.IsFlagged(want) {
		t.Fatalf("bias liar %s not flagged; flagged=%v", want, rep.Flagged)
	}
	if len(rep.Flagged) != 1 {
		t.Fatalf("flagged %v, want only %s", rep.Flagged, want)
	}
	for _, v := range rep.Verdicts {
		if v.ID == want {
			if v.Reason != "bias" {
				t.Errorf("reason = %q, want bias", v.Reason)
			}
			if v.ShiftMs < 25 {
				t.Errorf("differential shift %.1f ms, want >= 25 (forged padding is one-sided)", v.ShiftMs)
			}
		} else if v.Flagged {
			t.Errorf("honest anchor %s flagged (%s)", v.ID, v.Reason)
		}
	}
}

// TestCrossValidatePositionLiarGreedyPeel: a displaced anchor makes
// edges physically impossible, but each violating edge implicates both
// endpoints. The greedy attribution must flag only the anchor
// concentrating the violations and exonerate the honest peers its edges
// touch.
func TestCrossValidatePositionLiarGreedyPeel(t *testing.T) {
	// 2500 km displacement on short (600–1200 km) hops breaks the
	// 100 km/ms one-way floor on many of anchor 5's edges.
	edges := synthMesh(12, nil, map[int]float64{5: 2500})
	rep := CrossValidate(edges, DefaultCrossValidateConfig())
	want := netsim.HostID("anchor-005")
	if !rep.IsFlagged(want) {
		t.Fatalf("position liar %s not flagged; flagged=%v", want, rep.Flagged)
	}
	for _, v := range rep.Verdicts {
		if v.ID == want {
			if v.Reason != "position" {
				t.Errorf("reason = %q, want position", v.Reason)
			}
			if v.FloorViolations == 0 {
				t.Errorf("position liar shows no floor violations")
			}
		} else if v.Flagged {
			t.Errorf("honest peer %s condemned by the liar's edges (%s)", v.ID, v.Reason)
		}
	}
}

// TestIsFlaggedNil: a nil report never flags.
func TestIsFlaggedNil(t *testing.T) {
	var rep *LandmarkReport
	if rep.IsFlagged("anyone") {
		t.Fatal("nil report flagged a landmark")
	}
}

// TestMaskStrings: canonical order, empty mask renders nil.
func TestMaskStrings(t *testing.T) {
	if got := MaskStrings(0); got != nil {
		t.Fatalf("MaskStrings(0) = %v, want nil", got)
	}
	got := MaskStrings(ReasonSmooth | ReasonShift | ReasonFast)
	want := []string{"smooth", "shift", "fast"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MaskStrings = %v, want %v", got, want)
	}
}

// TestLowerMAD: contamination entirely above the median must not move
// the one-sided scale — that is the property the fast gate relies on.
func TestLowerMAD(t *testing.T) {
	clean := []float64{10, 11, 12, 13, 14, 15, 16}
	base := lowerMAD(clean)
	if base <= 0 {
		t.Fatalf("lowerMAD of spread data = %v, want > 0", base)
	}
	contaminated := append(append([]float64{}, clean...), 100, 200, 300)
	if got := lowerMAD(contaminated); got > base+2 {
		t.Fatalf("upper-tail contamination moved lowerMAD %v -> %v", base, got)
	}
}

// synthMeasurements builds a server's measurement set around a centroid:
// landmarks on a ring of radii, RTT = slope·dist + base + ripple.
func synthMeasurements(n int, slope, base, rippleMs float64) ([]geoloc.Measurement, geo.Point) {
	centroid := geo.Point{Lat: 48, Lon: 11}
	ms := make([]geoloc.Measurement, n)
	for i := range ms {
		bearing := float64(i * 37 % 360)
		dist := 500 + float64(i*211%3000)
		lm := geo.DestinationPoint(centroid, bearing, dist)
		rtt := slope*dist + base + rippleMs*float64(i%5-2)/2
		ms[i] = geoloc.Measurement{
			LandmarkID: netsim.HostID(fmt.Sprintf("lm-%03d", i)),
			Landmark:   lm,
			RTTms:      rtt,
		}
	}
	return ms, centroid
}

// TestJudgeServers: a population of honest servers calibrates the
// gates; a shifted, a deflated and a too-smooth server trip exactly the
// expected detectors, and judging is idempotent and order-free.
func TestJudgeServers(t *testing.T) {
	cfg := DefaultInspectConfig()
	insps := map[string]Inspection{}
	for i := 0; i < 20; i++ {
		ms, c := synthMeasurements(24, 0.012, 8, 4)
		insps[fmt.Sprintf("honest-%02d", i)] = InspectServer(ms, c, cfg)
	}
	shifted, c1 := synthMeasurements(24, 0.012, 200, 4)
	insps["shifted"] = InspectServer(shifted, c1, cfg)
	deflated, c2 := synthMeasurements(24, 0.001, 8, 4)
	insps["deflated"] = InspectServer(deflated, c2, cfg)
	smooth, c3 := synthMeasurements(24, 0.012, 8, 0)
	insps["smooth"] = InspectServer(smooth, c3, cfg)

	judged := JudgeServers(insps, cfg)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("honest-%02d", i)
		if judged[id].Suspected {
			t.Errorf("honest server %s suspected: %v", id, judged[id].Reasons)
		}
	}
	for id, bit := range map[string]uint8{
		"shifted":  ReasonShift,
		"deflated": ReasonSlow,
		"smooth":   ReasonSmooth,
	} {
		j := judged[id]
		if !j.Suspected || j.ReasonMask&bit == 0 {
			t.Errorf("%s: suspected=%v mask=%08b, want bit %08b set", id, j.Suspected, j.ReasonMask, bit)
		}
		if j.Score < 1 {
			t.Errorf("%s: score %.3f < 1 despite tripped detector", id, j.Score)
		}
	}

	again := JudgeServers(judged, cfg)
	if !reflect.DeepEqual(again, judged) {
		t.Fatal("JudgeServers is not idempotent over its own output")
	}
}

// TestInspectServerTooFew: under MinMeasurements the verdict stays
// unfitted and judging leaves it clear.
func TestInspectServerTooFew(t *testing.T) {
	cfg := DefaultInspectConfig()
	ms, c := synthMeasurements(cfg.MinMeasurements-1, 0.012, 8, 4)
	insp := InspectServer(ms, c, cfg)
	if insp.Fitted {
		t.Fatal("fitted with fewer than MinMeasurements samples")
	}
	judged := JudgeServers(map[string]Inspection{"x": insp}, cfg)
	if judged["x"].Suspected {
		t.Fatal("unfitted inspection judged suspected")
	}
}
