// Package detect is the adversary-detection layer: it cross-validates
// every landmark against the inter-anchor calibration mesh to flag
// Byzantine landmarks (misreported positions, biased delay reports),
// and inspects each server's measurement pattern for the signatures of
// proxy-side manipulation (decoy rewrites, selective inflation or
// deflation, Gill-style constant shifts).
//
// The package never sees ground truth: it works from what the actors
// *report* — claimed landmark positions and as-reported RTTs — exactly
// the information a real auditor would have. The experiments layer
// scores its output against the adversary plan's ground truth to
// produce the precision/recall numbers the CI floors enforce.
//
// Everything here is pure computation over its inputs: no RNG, no
// clock, no map-order dependence, so detection verdicts inherit the
// pipeline's byte-identical determinism at any concurrency.
package detect

import (
	"math"
	"sort"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
)

// maxSpeedKmPerMs is the physical propagation bound the simulator
// enforces (200 km/ms in fibre, i.e. an RTT of t ms cannot cover more
// than 100·t km one way). A *claimed* geometry that breaks it proves a
// lie somewhere on the edge.
const maxSpeedKmPerMs = 200

// MeshEdge is one directed inter-anchor calibration observation as the
// auditor sees it: the distance the two endpoints' *claimed* positions
// imply, against the best RTT the owner *reported* for the pair.
type MeshEdge struct {
	From, To      netsim.HostID
	ClaimedDistKm float64
	MinRTTms      float64
}

// MeshEdges reconstructs the as-reported calibration mesh. reported
// maps a landmark to the position it claims (identity for honest
// landmarks); rttBias is the padding a landmark adds to the delays *it
// reports* (zero for honest landmarks). The bias lands only on the
// owning side: a Byzantine anchor can forge its own measurement logs,
// but it cannot alter what an honest peer times toward it. That
// asymmetry is precisely what cross-validation exploits. Edges follow
// the constellation's anchor order, so the slice is deterministic.
func MeshEdges(cons *atlas.Constellation, reported func(id netsim.HostID, trueLoc geo.Point) geo.Point, rttBias func(id netsim.HostID) float64) []MeshEdge {
	var edges []MeshEdge
	for _, a := range cons.Anchors() {
		from := a.Host.ID
		repFrom := reported(from, a.Host.Loc)
		for _, ps := range cons.CalibrationPairs(from) {
			peer := cons.Landmark(ps.Peer)
			if peer == nil || len(ps.RTTms) == 0 {
				continue
			}
			repPeer := reported(ps.Peer, peer.Host.Loc)
			edges = append(edges, MeshEdge{
				From:          from,
				To:            ps.Peer,
				ClaimedDistKm: geo.DistanceKm(repFrom, repPeer),
				MinRTTms:      ps.MinRTTms() + rttBias(from),
			})
		}
	}
	return edges
}

// CrossValidateConfig tunes the landmark cross-validation thresholds.
type CrossValidateConfig struct {
	// Trim is the robust-fit trim fraction for the global mesh line and
	// each per-anchor line.
	Trim float64
	// MinEdges is the fewest observations (in each direction) an anchor
	// needs to be judged.
	MinEdges int
	// BiasFloorMs and BiasK gate the bias-liar rule on the *differential*
	// intercept: the anchor's own-report fit minus the peer-view fit of
	// edges measured toward it. Honest congestion inflates both views
	// equally and cancels; forged report padding lands only on the own
	// side. Flag when the differential exceeds the population median by
	// max(BiasFloorMs, BiasK · population MAD).
	BiasFloorMs float64
	BiasK       float64
	// FloorViolations flags an anchor as displaced once this many of its
	// edges (own and peer-view combined) claim a distance the RTT
	// physically cannot cover. An edge only proves *one of its two
	// endpoints* lies, so violations are attributed greedily: the anchor
	// concentrating the most violating edges is flagged first and its
	// edges withdrawn, which exonerates the honest peers those edges
	// also touched.
	FloorViolations int
	// InterceptCapMs is the secondary displacement rule: an anchor whose
	// claimed position sits closer to the mesh than reality makes every
	// RTT look too slow for its distance, pushing a huge constant into
	// *both* views' intercepts — which the differential cancels but the
	// cap catches.
	InterceptCapMs float64
}

// DefaultCrossValidateConfig returns the tuned thresholds.
func DefaultCrossValidateConfig() CrossValidateConfig {
	return CrossValidateConfig{
		Trim:            0.25,
		MinEdges:        6,
		BiasFloorMs:     25,
		BiasK:           6,
		FloorViolations: 3,
		InterceptCapMs:  120,
	}
}

// LandmarkVerdict is one anchor's cross-validation outcome.
type LandmarkVerdict struct {
	ID netsim.HostID
	// Edges and PeerEdges count the anchor's own reports and the honest
	// world's measurements toward it.
	Edges     int
	PeerEdges int
	// InterceptMs and SlopeMsPerKm are the anchor's own robust
	// distance→RTT fit over the edges it reported; PeerInterceptMs is
	// the same fit over edges its peers reported toward it. ShiftMs is
	// the differential InterceptMs − PeerInterceptMs: honest path
	// quality cancels out of it, forged report padding does not.
	InterceptMs     float64
	PeerInterceptMs float64
	ShiftMs         float64
	SlopeMsPerKm    float64
	// OwnMADms is the residual MAD about the anchor's own fit.
	OwnMADms float64
	// FloorViolations counts edges (both views) whose claimed distance
	// exceeds what their RTT can physically cover.
	FloorViolations int
	Flagged         bool
	// Reason is "position" (physically impossible edges, or both views
	// pinned at an absurd intercept) or "bias" (own-vs-peer intercept
	// differential); position wins when both trip — the physical
	// evidence is the stronger claim.
	Reason string
}

// LandmarkReport is the cross-validation of the whole mesh.
type LandmarkReport struct {
	// Fit is the robust global distance→RTT line; MADms the robust
	// spread of its residuals — the honest-network baseline.
	Fit   mathx.Line
	MADms float64
	// Verdicts follow the constellation's anchor order.
	Verdicts []LandmarkVerdict
	// Flagged lists the suspected landmark IDs, sorted.
	Flagged []netsim.HostID
}

// IsFlagged reports whether the given landmark was flagged.
func (r *LandmarkReport) IsFlagged(id netsim.HostID) bool {
	if r == nil {
		return false
	}
	i := sort.Search(len(r.Flagged), func(i int) bool { return r.Flagged[i] >= id })
	return i < len(r.Flagged) && r.Flagged[i] == id
}

// CrossValidate fits the global distance→RTT line robustly (Byzantine
// edges are the contamination the trimmed fit shrugs off), then judges
// each anchor by comparing two views of it: the fit over edges the
// anchor *reported* versus the fit over edges honest peers measured
// *toward* it. An honestly-congested anchor elevates both views
// identically, so the differential intercept isolates forged report
// padding; a misreported position corrupts the claimed distances in
// both views, surfacing as physically impossible edges or a pinned
// intercept no real path explains. Thresholds adapt to the population
// via median/MAD, so the honest majority defines "normal".
func CrossValidate(edges []MeshEdge, cfg CrossValidateConfig) *LandmarkReport {
	rep := &LandmarkReport{}
	if len(edges) < 2 {
		return rep
	}
	dist := make([]float64, len(edges))
	rtt := make([]float64, len(edges))
	for i, e := range edges {
		dist[i] = e.ClaimedDistKm
		rtt[i] = e.MinRTTms
	}
	fit, err := mathx.TrimmedLine(dist, rtt, cfg.Trim)
	if err != nil {
		return rep
	}
	rep.Fit = fit
	resid := make([]float64, len(edges))
	for i, e := range edges {
		resid[i] = e.MinRTTms - fit.At(e.ClaimedDistKm)
	}
	rep.MADms = mathx.MAD(resid)

	// Group edges by owner (own view) and by target (peer view),
	// first-seen owner order.
	var order []netsim.HostID
	byOwner := map[netsim.HostID][]MeshEdge{}
	byTarget := map[netsim.HostID][]MeshEdge{}
	for _, e := range edges {
		if _, seen := byOwner[e.From]; !seen {
			order = append(order, e.From)
		}
		byOwner[e.From] = append(byOwner[e.From], e)
		byTarget[e.To] = append(byTarget[e.To], e)
	}

	// Physically impossible edges, attributed greedily: each violation
	// proves one of its two endpoints lies, so repeatedly flag the
	// anchor concentrating the most violations and withdraw its edges —
	// the honest peers those edges also touched are exonerated.
	var violations [][2]netsim.HostID
	for _, e := range edges {
		if e.ClaimedDistKm > e.MinRTTms*maxSpeedKmPerMs/2 {
			violations = append(violations, [2]netsim.HostID{e.From, e.To})
		}
	}
	displacedSet := map[netsim.HostID]bool{}
	for {
		counts := map[netsim.HostID]int{}
		for _, v := range violations {
			counts[v[0]]++
			counts[v[1]]++
		}
		var worst netsim.HostID
		worstN := 0
		for _, id := range order {
			if n := counts[id]; n > worstN {
				worst, worstN = id, n
			}
		}
		if worstN < cfg.FloorViolations {
			break
		}
		displacedSet[worst] = true
		kept := violations[:0]
		for _, v := range violations {
			if v[0] != worst && v[1] != worst {
				kept = append(kept, v)
			}
		}
		violations = kept
	}

	verdicts := make([]LandmarkVerdict, len(order))
	for i, id := range order {
		own := byOwner[id]
		peer := byTarget[id]
		v := LandmarkVerdict{ID: id, Edges: len(own), PeerEdges: len(peer)}
		fitView := func(es []MeshEdge) (mathx.Line, float64, bool) {
			xs := make([]float64, len(es))
			ys := make([]float64, len(es))
			for j, e := range es {
				xs[j] = e.ClaimedDistKm
				ys[j] = e.MinRTTms
				if e.ClaimedDistKm > e.MinRTTms*maxSpeedKmPerMs/2 {
					v.FloorViolations++
				}
			}
			ln, ferr := mathx.TrimmedLine(xs, ys, cfg.Trim)
			if ferr != nil {
				return mathx.Line{}, 0, false
			}
			rs := make([]float64, len(es))
			for j := range es {
				rs[j] = ys[j] - ln.At(xs[j])
			}
			return ln, mathx.MAD(rs), true
		}
		ownFit, ownMAD, ownOK := fitView(own)
		peerFit, _, peerOK := fitView(peer)
		if ownOK {
			v.InterceptMs = ownFit.Intercept
			v.SlopeMsPerKm = ownFit.Slope
			v.OwnMADms = ownMAD
		}
		if peerOK {
			v.PeerInterceptMs = peerFit.Intercept
		}
		if ownOK && peerOK {
			v.ShiftMs = ownFit.Intercept - peerFit.Intercept
		}
		verdicts[i] = v
	}

	// Population statistics over the differentials: the honest majority
	// centers near zero and defines the spread the threshold scales with.
	shifts := make([]float64, len(verdicts))
	for i, v := range verdicts {
		shifts[i] = v.ShiftMs
	}
	centerShift := mathx.Median(shifts)
	biasGate := math.Max(cfg.BiasFloorMs, cfg.BiasK*mathx.MAD(shifts))

	for i := range verdicts {
		v := &verdicts[i]
		displaced := displacedSet[v.ID]
		if v.Edges >= cfg.MinEdges && v.PeerEdges >= cfg.MinEdges {
			displaced = displaced || math.Min(v.InterceptMs, v.PeerInterceptMs) > cfg.InterceptCapMs
			if !displaced && v.ShiftMs-centerShift > biasGate {
				v.Flagged, v.Reason = true, "bias"
			}
		}
		if displaced {
			v.Flagged, v.Reason = true, "position"
		}
		if v.Flagged {
			rep.Flagged = append(rep.Flagged, v.ID)
		}
	}
	rep.Verdicts = verdicts
	sort.Slice(rep.Flagged, func(i, j int) bool { return rep.Flagged[i] < rep.Flagged[j] })
	return rep
}

// Detector reason bits, in canonical order. Interned as a single byte
// so the streaming store can hold verdict reasons columnar.
const (
	// ReasonSmooth: residuals are too clean — forged delays carry only
	// the attacker's small synthetic noise, not the network's spread.
	ReasonSmooth uint8 = 1 << iota
	// ReasonSpread: residuals are far too dispersed — the selective
	// inflation signature (a shifted subset no single line absorbs).
	ReasonSpread
	// ReasonShift: the fitted intercept carries a large constant
	// offset — the Gill-style added-delay signature.
	ReasonShift
	// ReasonSlow: the fitted distance→RTT slope collapsed toward zero —
	// deflation pins every landmark near the client-leg floor, erasing
	// the distance dependence real propagation always shows.
	ReasonSlow
	// ReasonFast: the fitted slope implies propagation markedly slower
	// than the network's effective speed — the decoy-rewrite signature,
	// where forged delays are synthesized at a conservative pretend
	// speed to keep the decoy geometry self-consistent.
	ReasonFast
)

// reasonNames follows the bit order above.
var reasonNames = []string{"smooth", "spread", "shift", "slow", "fast"}

// MaskStrings renders a reason mask as the canonical reason names.
func MaskStrings(mask uint8) []string {
	var out []string
	for i, name := range reasonNames {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, name)
		}
	}
	return out
}

// InspectConfig tunes the per-server manipulation detectors. The
// spread and shift gates calibrate against the audited population
// (JudgeServers), so "normal" is whatever the honest majority of
// servers looks like under the current network conditions; the slope
// and smoothness gates are absolute, anchored to the physics the
// simulator (and the real internet) enforces.
type InspectConfig struct {
	// MinMeasurements is the fewest samples a verdict needs.
	MinMeasurements int
	// Trim is the robust-fit trim fraction for the server's own line.
	Trim float64
	// SpreadFloorMs and SpreadFactor gate ReasonSpread: flag when the
	// residual MAD exceeds max(SpreadFloorMs, SpreadFactor · population
	// median MAD).
	SpreadFloorMs float64
	SpreadFactor  float64
	// ShiftFloorMs and ShiftK gate ReasonShift: flag when the fitted
	// intercept exceeds the population median by max(ShiftFloorMs,
	// ShiftK · population MAD).
	ShiftFloorMs float64
	ShiftK       float64
	// SlowSlope trips ReasonSlow when the fitted slope falls below it
	// (ms/km; honest round-trip propagation here runs ≈ 0.012).
	SlowSlope float64
	// FastFloor and FastK gate ReasonFast: flag when the fitted slope
	// exceeds the population median by max(FastFloor, FastK ·
	// population MAD) — i.e. the implied propagation is markedly slower
	// per km than the honest majority's.
	FastFloor float64
	FastK     float64
	// SmoothFloorMs trips ReasonSmooth when the residual MAD falls
	// below it — real measurement noise never collapses this far.
	SmoothFloorMs float64
}

// DefaultInspectConfig returns the tuned thresholds.
func DefaultInspectConfig() InspectConfig {
	return InspectConfig{
		MinMeasurements: 8,
		Trim:            0.35,
		SpreadFloorMs:   15,
		SpreadFactor:    3.5,
		ShiftFloorMs:    40,
		ShiftK:          8,
		SlowSlope:       0.0095,
		FastFloor:       0.005,
		FastK:           4,
		SmoothFloorMs:   1.2,
	}
}

// Inspection is one server's manipulation verdict.
type Inspection struct {
	// N is the number of measurements inspected; Fitted is false when
	// there were too few to fit (the verdict stays clear).
	N      int
	Fitted bool
	// MADms, InterceptMs and SlopeMsPerKm are the robust fit of
	// distance-to-centroid against corrected RTT.
	MADms        float64
	InterceptMs  float64
	SlopeMsPerKm float64
	// Suspected is true when any detector tripped. Score is the
	// strongest detector's signal-to-threshold ratio (values above 1
	// mean suspected; the margin grades confidence). ReasonMask has one
	// bit per tripped detector (Reason* constants); Reasons renders it
	// in canonical order. All three are set by JudgeServers.
	Suspected  bool
	Score      float64
	ReasonMask uint8
	Reasons    []string
}

// InspectServer fits one server's (as-corrected) measurement set
// against the location it was localized to. centroid is the prediction
// region's centroid — under attack that is where the *forged* geometry
// points, which is exactly the self-consistency the detectors probe.
// The fit is pure per-server statistics; JudgeServers applies the
// population-calibrated thresholds afterwards.
func InspectServer(ms []geoloc.Measurement, centroid geo.Point, cfg InspectConfig) Inspection {
	insp := Inspection{N: len(ms)}
	if len(ms) < cfg.MinMeasurements {
		return insp
	}
	dist := make([]float64, len(ms))
	rtt := make([]float64, len(ms))
	for i, m := range ms {
		dist[i] = geo.DistanceKm(centroid, m.Landmark)
		rtt[i] = m.RTTms
	}
	fit, err := mathx.TrimmedLine(dist, rtt, cfg.Trim)
	if err != nil {
		return insp
	}
	resid := make([]float64, len(ms))
	for i := range ms {
		resid[i] = rtt[i] - fit.At(dist[i])
	}
	insp.Fitted = true
	insp.MADms = mathx.MAD(resid)
	insp.InterceptMs = fit.Intercept
	insp.SlopeMsPerKm = fit.Slope
	return insp
}

// lowerMAD is the median absolute deviation computed over the values
// at or below the median only — a one-sided robust scale that stays
// calibrated when the contamination all lies above the center.
func lowerMAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := mathx.Median(xs)
	var dev []float64
	for _, x := range xs {
		if x <= med {
			dev = append(dev, med-x)
		}
	}
	return mathx.Median(dev)
}

// JudgeServers applies the detection thresholds to a whole audit's
// inspections at once. The spread and shift gates scale with the
// population's median/MAD — the honest majority of servers calibrates
// "normal" — while the slope and smoothness gates are absolute. The
// returned map carries the same inspections with Suspected, Score and
// the reason fields filled in. Population statistics are order-free
// (medians over sorted copies), so the result is deterministic
// whatever order the inspections were produced in.
func JudgeServers(insps map[string]Inspection, cfg InspectConfig) map[string]Inspection {
	var mads, iceps, slopes []float64
	for _, insp := range insps {
		if insp.Fitted {
			mads = append(mads, insp.MADms)
			iceps = append(iceps, insp.InterceptMs)
			slopes = append(slopes, insp.SlopeMsPerKm)
		}
	}
	// The gates only consume medians and MADs, but sorting here erases
	// the map-iteration order entirely rather than trusting every
	// downstream consumer to be order-free.
	sort.Float64s(mads)
	sort.Float64s(iceps)
	sort.Float64s(slopes)
	spreadGate := math.Max(cfg.SpreadFloorMs, cfg.SpreadFactor*mathx.Median(mads))
	shiftGate := mathx.Median(iceps) + math.Max(cfg.ShiftFloorMs, cfg.ShiftK*mathx.MAD(iceps))
	// The slope spread comes from the lower half only: every slope
	// attack pushes the fit *away* from the honest propagation speed, so
	// the below-median population stays uncontaminated while liars in
	// the upper half would otherwise widen their own gate.
	fastGate := mathx.Median(slopes) + math.Max(cfg.FastFloor, cfg.FastK*lowerMAD(slopes))

	out := make(map[string]Inspection, len(insps))
	for id, insp := range insps {
		if insp.Fitted {
			// Every ratio is computed unconditionally and in a fixed
			// order, so Score is a deterministic function of the inputs.
			const tiny = 1e-9
			spreadRatio := insp.MADms / math.Max(spreadGate, tiny)
			shiftRatio := insp.InterceptMs / math.Max(shiftGate, tiny)
			slowRatio := cfg.SlowSlope / math.Max(insp.SlopeMsPerKm, cfg.SlowSlope/100)
			fastRatio := insp.SlopeMsPerKm / math.Max(fastGate, tiny)
			smoothRatio := cfg.SmoothFloorMs / math.Max(insp.MADms, cfg.SmoothFloorMs/100)
			if smoothRatio >= 1 {
				insp.ReasonMask |= ReasonSmooth
			}
			if spreadRatio >= 1 {
				insp.ReasonMask |= ReasonSpread
			}
			if shiftRatio >= 1 {
				insp.ReasonMask |= ReasonShift
			}
			if slowRatio >= 1 {
				insp.ReasonMask |= ReasonSlow
			}
			if fastRatio >= 1 {
				insp.ReasonMask |= ReasonFast
			}
			insp.Score = spreadRatio
			for _, r := range []float64{shiftRatio, slowRatio, fastRatio, smoothRatio} {
				insp.Score = math.Max(insp.Score, r)
			}
			if insp.Score < 0 {
				insp.Score = 0
			}
			insp.Suspected = insp.ReasonMask != 0
			insp.Reasons = MaskStrings(insp.ReasonMask)
		}
		out[id] = insp
	}
	return out
}
