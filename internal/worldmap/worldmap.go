// Package worldmap is the library's substitute for the Natural Earth map
// the paper uses: a country atlas in which every country or territory is
// approximated by a union of spherical caps, plus continent assignments
// following the paper's Appendix A conventions (Mexico with Central
// America, Turkey and Russia with Europe, the Middle East with Africa,
// Malaysia and New Zealand with Oceania, Australia on its own).
//
// It supports the three operations the assessment pipeline needs:
// point→country lookup, country↔region overlap, and a land mask that
// excludes oceans and all terrain north of 85°N or south of 60°S
// (following Eriksson et al.'s external-facts advice quoted in §3).
package worldmap

import (
	"math"
	"sort"
	"sync"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

// Continent is the paper's eight-way continent scheme (Appendix A).
type Continent int

// Continents in the order used by the paper's Figure 22 confusion matrix.
const (
	Europe Continent = iota
	Africa           // includes the Middle East, per Appendix A
	Asia
	Oceania // includes Malaysia, Indonesia, New Zealand, Pacific islands
	NorthAmerica
	CentralAmerica // includes Mexico and the Caribbean
	SouthAmerica
	Australia
	numContinents
)

// NumContinents is the number of continent categories.
const NumContinents = int(numContinents)

var continentNames = [...]string{
	"Europe", "Africa", "Asia", "Oceania",
	"North America", "Central America", "South America", "Australia",
}

// String implements fmt.Stringer.
func (c Continent) String() string {
	if c < 0 || int(c) >= len(continentNames) {
		return "Unknown"
	}
	return continentNames[c]
}

// AllContinents lists every continent in Figure 22 order.
func AllContinents() []Continent {
	out := make([]Continent, NumContinents)
	for i := range out {
		out[i] = Continent(i)
	}
	return out
}

// Country is a country or territory. Its territory is approximated by a
// union of spherical caps; Ref is a reference point (capital or largest
// city) guaranteed to be inside the shape, used for placing hosts.
type Country struct {
	Code      string // ISO 3166-1 alpha-2, lowercase (as in Figure 17)
	Name      string
	Continent Continent
	Ref       geo.Point
	Shapes    []geo.Cap
}

// Contains reports whether p falls within any of the country's caps.
func (c *Country) Contains(p geo.Point) bool {
	for _, s := range c.Shapes {
		if s.Contains(p) {
			return true
		}
	}
	return false
}

// distanceScore returns the normalized distance of p to the country: 0 at
// a cap center, 1 on a cap boundary, >1 outside. Used to break ties when
// overlapping cap approximations both claim a point.
func (c *Country) distanceScore(p geo.Point) float64 {
	best := math.Inf(1)
	for _, s := range c.Shapes {
		if s.RadiusKm <= 0 {
			continue
		}
		if score := geo.DistanceKm(s.Center, p) / s.RadiusKm; score < best {
			best = score
		}
	}
	return best
}

// AreaKm2 returns the approximate land area of the country (sum of cap
// areas; overlapping caps are counted once only via a coarse grid).
func (c *Country) AreaKm2() float64 {
	var a float64
	for _, s := range c.Shapes {
		a += s.AreaKm2()
	}
	return a
}

var (
	countriesOnce sync.Once
	countryList   []*Country
	countryByCode map[string]*Country
)

func initCountries() {
	countriesOnce.Do(func() {
		countryList = buildCountries()
		sort.Slice(countryList, func(i, j int) bool {
			return countryList[i].Code < countryList[j].Code
		})
		countryByCode = make(map[string]*Country, len(countryList))
		for _, c := range countryList {
			countryByCode[c.Code] = c
		}
	})
}

// Countries returns all countries, sorted by code. The returned slice is
// shared; do not modify it.
func Countries() []*Country {
	initCountries()
	return countryList
}

// ByCode returns the country with the given ISO code, or nil.
func ByCode(code string) *Country {
	initCountries()
	return countryByCode[code]
}

// Locate returns the country containing p. When cap approximations of
// neighboring countries overlap, the country whose cap center is
// proportionally closest wins. Returns nil for open ocean or excluded
// latitudes.
func Locate(p geo.Point) *Country {
	initCountries()
	if p.Lat > 85 || p.Lat < -60 {
		return nil
	}
	var best *Country
	bestScore := math.Inf(1)
	for _, c := range countryList {
		if !c.Contains(p) {
			continue
		}
		if s := c.distanceScore(p); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// OnLand reports whether p is within some country's shape and inside the
// usable latitude band.
func OnLand(p geo.Point) bool { return Locate(p) != nil }

// Mask precomputes, for one grid, the land region and a region per
// country. Building a Mask is expensive (seconds at fine resolutions);
// reuse it.
type Mask struct {
	g      *grid.Grid
	land   *grid.Region
	byCode map[string]*grid.Region
	cellOf []string // country code per cell ("" = water/excluded)
}

// NewMask builds the land/country masks for g.
func NewMask(g *grid.Grid) *Mask {
	initCountries()
	m := &Mask{
		g:      g,
		land:   g.NewRegion(),
		byCode: make(map[string]*grid.Region, len(countryList)),
		cellOf: make([]string, g.NumCells()),
	}
	type claim struct {
		code  string
		score float64
	}
	bestClaim := make([]claim, g.NumCells())
	for i := range bestClaim {
		bestClaim[i] = claim{score: math.Inf(1)}
	}
	for _, c := range countryList {
		r := g.NewRegion()
		for _, s := range c.Shapes {
			r.AddCap(s)
		}
		// Latitude exclusion.
		r.Filter(func(p geo.Point) bool { return p.Lat <= 85 && p.Lat >= -60 })
		// Guarantee the reference point's cell is present even at coarse
		// resolutions (tiny island countries can fall between centers).
		ref := g.CellAt(c.Ref)
		if p := g.Center(ref); p.Lat <= 85 && p.Lat >= -60 {
			r.Add(ref)
		}
		m.byCode[c.Code] = r
		m.land.UnionWith(r)
		r.Each(func(i int) {
			s := c.distanceScore(g.Center(i))
			if s < bestClaim[i].score {
				bestClaim[i] = claim{code: c.Code, score: s}
			}
		})
	}
	for i, cl := range bestClaim {
		m.cellOf[i] = cl.code
	}
	return m
}

// Grid returns the grid the mask was built for.
func (m *Mask) Grid() *grid.Grid { return m.g }

// Land returns a fresh copy of the land region.
func (m *Mask) Land() *grid.Region { return m.land.Clone() }

// LandRef returns the shared land region; callers must not modify it.
func (m *Mask) LandRef() *grid.Region { return m.land }

// CountryRegion returns the shared region for the given country code, or
// nil. Callers must not modify it.
func (m *Mask) CountryRegion(code string) *grid.Region { return m.byCode[code] }

// CountryOfCell returns the country code owning cell i ("" for water).
func (m *Mask) CountryOfCell(i int) string { return m.cellOf[i] }

// Overlaps reports whether the region overlaps the country's territory.
func (m *Mask) Overlaps(r *grid.Region, code string) bool {
	cr := m.byCode[code]
	return cr != nil && r.IntersectsRegion(cr)
}

// Within reports whether the region lies entirely inside the country.
func (m *Mask) Within(r *grid.Region, code string) bool {
	cr := m.byCode[code]
	if cr == nil || r.Empty() {
		return false
	}
	outside := r.Clone()
	outside.SubtractWith(cr)
	// Cells that belong to no country (water) do not count against
	// containment: a coastal region's watery fringe is not evidence the
	// target is in another country.
	ok := true
	outside.Each(func(i int) {
		if m.cellOf[i] != "" {
			ok = false
		}
	})
	return ok
}

// CountriesOverlapping returns the codes of every country the region
// touches, sorted.
func (m *Mask) CountriesOverlapping(r *grid.Region) []string {
	seen := map[string]bool{}
	r.Each(func(i int) {
		if code := m.cellOf[i]; code != "" {
			seen[code] = true
		}
	})
	out := make([]string, 0, len(seen))
	for code := range seen {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// ContinentsOverlapping returns the set of continents the region touches.
func (m *Mask) ContinentsOverlapping(r *grid.Region) []Continent {
	seen := map[Continent]bool{}
	for _, code := range m.CountriesOverlapping(r) {
		if c := ByCode(code); c != nil {
			seen[c.Continent] = true
		}
	}
	out := make([]Continent, 0, len(seen))
	for cont := range seen {
		out = append(out, cont)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
