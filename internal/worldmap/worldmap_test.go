package worldmap

import (
	"testing"

	"activegeo/internal/datacenter"
	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

func TestEveryDataCenterInsideItsCountry(t *testing.T) {
	for _, dc := range datacenter.All() {
		c := ByCode(dc.Country)
		if c == nil {
			t.Errorf("DC %s references unknown country %q", dc.ID, dc.Country)
			continue
		}
		// A server can be scattered up to ~15 km from the DC; require
		// slack so scattered hosts stay in-country too.
		covered := false
		for _, s := range c.Shapes {
			if geo.DistanceKm(s.Center, dc.Loc) <= s.RadiusKm-20 {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("DC %s (%s) at %v not comfortably inside %s", dc.ID, dc.City, dc.Loc, dc.Country)
		}
	}
}

func TestCountriesWellFormed(t *testing.T) {
	cs := Countries()
	if len(cs) < 150 {
		t.Fatalf("atlas has only %d countries", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if c.Code == "" || c.Name == "" {
			t.Errorf("country with empty code/name: %+v", c)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if len(c.Shapes) == 0 {
			t.Errorf("%s has no shapes", c.Code)
		}
		if !c.Ref.Valid() {
			t.Errorf("%s has invalid ref %v", c.Code, c.Ref)
		}
		if !c.Contains(c.Ref) {
			t.Errorf("%s: reference point %v outside own shapes", c.Code, c.Ref)
		}
		if c.Continent < 0 || int(c.Continent) >= NumContinents {
			t.Errorf("%s has bad continent %d", c.Code, c.Continent)
		}
	}
}

func TestByCode(t *testing.T) {
	if c := ByCode("de"); c == nil || c.Name != "Germany" {
		t.Errorf("ByCode(de) = %+v", c)
	}
	if ByCode("zz") != nil {
		t.Error("ByCode(zz) should be nil")
	}
}

func TestLocateKnownCities(t *testing.T) {
	cases := []struct {
		name string
		p    geo.Point
		want string
	}{
		{"berlin", geo.Point{Lat: 52.52, Lon: 13.405}, "de"},
		{"amsterdam", geo.Point{Lat: 52.37, Lon: 4.89}, "nl"},
		{"prague", geo.Point{Lat: 50.075, Lon: 14.44}, "cz"},
		{"new-york", geo.Point{Lat: 40.71, Lon: -74.01}, "us"},
		{"toronto", geo.Point{Lat: 43.65, Lon: -79.38}, "ca"},
		{"sydney", geo.Point{Lat: -33.87, Lon: 151.21}, "au"},
		{"tokyo", geo.Point{Lat: 35.68, Lon: 139.65}, "jp"},
		{"singapore", geo.Point{Lat: 1.35, Lon: 103.82}, "sg"},
		{"sao-paulo", geo.Point{Lat: -23.55, Lon: -46.63}, "br"},
		{"moscow", geo.Point{Lat: 55.76, Lon: 37.62}, "ru"},
		{"pyongyang", geo.Point{Lat: 39.02, Lon: 125.74}, "kp"},
		{"hong-kong", geo.Point{Lat: 22.32, Lon: 114.17}, "hk"},
		{"johannesburg", geo.Point{Lat: -26.20, Lon: 28.05}, "za"},
		{"pitcairn", geo.Point{Lat: -25.07, Lon: -130.10}, "pn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Locate(c.p)
			if got == nil {
				t.Fatalf("Locate(%v) = nil, want %s", c.p, c.want)
			}
			if got.Code != c.want {
				t.Errorf("Locate(%v) = %s, want %s", c.p, got.Code, c.want)
			}
		})
	}
}

func TestLocateRefRoundTrip(t *testing.T) {
	// Every country's reference point must locate back to that country —
	// including microstates enclosed by bigger neighbors (Vatican, San
	// Marino, Monaco), which the normalized-distance tie-break protects.
	for _, c := range Countries() {
		if c.Ref.Lat > 85 || c.Ref.Lat < -60 {
			continue
		}
		got := Locate(c.Ref)
		if got == nil {
			t.Errorf("%s: ref %v locates to open ocean", c.Code, c.Ref)
			continue
		}
		if got.Code != c.Code {
			t.Errorf("%s: ref locates to %s", c.Code, got.Code)
		}
	}
}

func TestLocateOpenOcean(t *testing.T) {
	oceans := []geo.Point{
		{Lat: 0, Lon: -30},    // mid-Atlantic
		{Lat: -40, Lon: -120}, // south Pacific
		{Lat: 35, Lon: -150},  // north Pacific
	}
	for _, p := range oceans {
		if c := Locate(p); c != nil {
			t.Errorf("Locate(%v) = %s, want open ocean", p, c.Code)
		}
	}
}

func TestLocateExcludedLatitudes(t *testing.T) {
	if Locate(geo.Point{Lat: 88, Lon: 0}) != nil {
		t.Error("north of 85°N must be excluded")
	}
	if Locate(geo.Point{Lat: -70, Lon: 0}) != nil {
		t.Error("south of 60°S must be excluded")
	}
}

func TestContinentAssignments(t *testing.T) {
	// The paper's Appendix A conventions.
	cases := map[string]Continent{
		"mx": CentralAmerica,
		"tr": Europe,
		"ru": Europe,
		"sa": Africa, // Middle East with Africa
		"il": Africa,
		"my": Oceania,
		"nz": Oceania,
		"au": Australia,
		"ir": Asia,
		"kz": Asia,
		"us": NorthAmerica,
		"br": SouthAmerica,
	}
	for code, want := range cases {
		c := ByCode(code)
		if c == nil {
			t.Errorf("missing country %s", code)
			continue
		}
		if c.Continent != want {
			t.Errorf("%s continent = %v, want %v", code, c.Continent, want)
		}
	}
}

func TestContinentString(t *testing.T) {
	if Europe.String() != "Europe" || Australia.String() != "Australia" {
		t.Error("continent names wrong")
	}
	if Continent(99).String() != "Unknown" {
		t.Error("out-of-range continent should be Unknown")
	}
	if len(AllContinents()) != NumContinents {
		t.Error("AllContinents size")
	}
}

func newTestMask(t testing.TB) *Mask {
	t.Helper()
	return NewMask(grid.New(2.0))
}

func TestMaskLandCoversRefs(t *testing.T) {
	m := newTestMask(t)
	land := m.LandRef()
	for _, c := range Countries() {
		if c.Ref.Lat > 85 || c.Ref.Lat < -60 {
			continue
		}
		if !land.ContainsPoint(c.Ref) {
			t.Errorf("land mask misses %s ref %v", c.Code, c.Ref)
		}
	}
}

func TestMaskCountryRegion(t *testing.T) {
	m := newTestMask(t)
	de := m.CountryRegion("de")
	if de == nil || de.Empty() {
		t.Fatal("Germany region missing/empty")
	}
	if !de.ContainsPoint(geo.Point{Lat: 52.52, Lon: 13.405}) {
		t.Error("Germany region misses Berlin")
	}
	if m.CountryRegion("zz") != nil {
		t.Error("unknown code should have nil region")
	}
}

func TestMaskOverlapsAndWithin(t *testing.T) {
	g := grid.New(2.0)
	m := NewMask(g)

	// A small region around Berlin lies within Germany.
	berlin := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 52.52, Lon: 13.405}, RadiusKm: 100})
	berlin.IntersectWith(m.LandRef())
	if !m.Overlaps(berlin, "de") {
		t.Error("Berlin region should overlap Germany")
	}
	if !m.Within(berlin, "de") {
		t.Error("Berlin region should be within Germany")
	}
	if m.Overlaps(berlin, "kp") {
		t.Error("Berlin region should not overlap North Korea")
	}

	// The Figure 1 scenario: a Benelux-scale region overlaps several
	// countries but is not within any single one.
	benelux := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 50.8, Lon: 4.4}, RadiusKm: 400})
	benelux.IntersectWith(m.LandRef())
	codes := m.CountriesOverlapping(benelux)
	want := map[string]bool{"be": true, "nl": true, "de": true, "fr": true}
	found := 0
	for _, code := range codes {
		if want[code] {
			found++
		}
	}
	if found < 4 {
		t.Errorf("Benelux region overlaps %v, want it to cover be/nl/de/fr", codes)
	}
	if m.Within(benelux, "be") {
		t.Error("400 km region is not within Belgium alone")
	}
}

func TestMaskContinentsOverlapping(t *testing.T) {
	g := grid.New(2.0)
	m := NewMask(g)
	// A region spanning the Bosphorus area touches Europe and Africa
	// (Middle East) at least.
	r := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 36.5, Lon: 36.0}, RadiusKm: 700})
	r.IntersectWith(m.LandRef())
	conts := m.ContinentsOverlapping(r)
	if len(conts) < 2 {
		t.Errorf("expected multiple continents, got %v", conts)
	}
}

func TestMaskWithinEmptyRegion(t *testing.T) {
	g := grid.New(2.0)
	m := NewMask(g)
	if m.Within(g.NewRegion(), "de") {
		t.Error("empty region is not within anything")
	}
}

func TestCellOfConsistency(t *testing.T) {
	g := grid.New(2.0)
	m := NewMask(g)
	land := m.LandRef()
	land.Each(func(i int) {
		if m.CountryOfCell(i) == "" {
			t.Fatalf("land cell %d has no owner", i)
		}
	})
}

func TestCountryArea(t *testing.T) {
	de := ByCode("de")
	a := de.AreaKm2()
	// Germany is ~357k km²; cap-union approximation should be within 3x.
	if a < 150e3 || a > 1.2e6 {
		t.Errorf("Germany approximate area %.0f km² wildly off", a)
	}
	if ByCode("va").AreaKm2() > 100 {
		t.Error("Vatican should be tiny")
	}
}

func BenchmarkLocate(b *testing.B) {
	p := geo.Point{Lat: 48.85, Lon: 2.35}
	for i := 0; i < b.N; i++ {
		Locate(p)
	}
}

func BenchmarkNewMask(b *testing.B) {
	g := grid.New(2.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMask(g)
	}
}
