package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Well-known city coordinates used across the test suite.
var (
	paris     = Point{Lat: 48.8566, Lon: 2.3522}
	london    = Point{Lat: 51.5074, Lon: -0.1278}
	newYork   = Point{Lat: 40.7128, Lon: -74.0060}
	sydney    = Point{Lat: -33.8688, Lon: 151.2093}
	tokyo     = Point{Lat: 35.6762, Lon: 139.6503}
	frankfurt = Point{Lat: 50.1109, Lon: 8.6821}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b Point
		want float64 // km
		tol  float64
	}{
		{"paris-london", paris, london, 344, 5},
		{"london-newyork", london, newYork, 5570, 30},
		{"newyork-sydney", newYork, sydney, 15990, 80},
		{"tokyo-frankfurt", tokyo, frankfurt, 9370, 60},
		{"same-point", paris, paris, 0, 1e-9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if math.Abs(got-c.want) > c.tol {
				t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f ± %.1f", c.a, c.b, got, c.want, c.tol)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= HalfEquatorKm+60 // mean-radius half circumference ≈ 20015
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		c := Point{Lat: clampLat(lat3), Lon: clampLon(lon3)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(lat, lon, brg, dist float64) bool {
		p := Point{Lat: clampLat(lat) * 0.9, Lon: clampLon(lon)} // stay off poles
		d := math.Mod(math.Abs(dist), 5000)
		dest := DestinationPoint(p, math.Mod(math.Abs(brg), 360), d)
		back := DistanceKm(p, dest)
		return math.Abs(back-d) < 1e-3*d+1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationDue(t *testing.T) {
	// Due north from the equator by 1/4 circumference lands on the pole.
	quarter := math.Pi * EarthRadiusKm / 2
	dest := DestinationPoint(Point{0, 0}, 0, quarter)
	if math.Abs(dest.Lat-90) > 0.01 {
		t.Errorf("due north quarter-circumference: got %v, want pole", dest)
	}
	// Due east along the equator stays on the equator.
	dest = DestinationPoint(Point{0, 0}, 90, 1000)
	if math.Abs(dest.Lat) > 1e-6 {
		t.Errorf("due east along equator left the equator: %v", dest)
	}
	if math.Abs(dest.Lon-1000/EarthRadiusKm*radToDeg) > 0.01 {
		t.Errorf("due east 1000 km: got lon %.4f", dest.Lon)
	}
}

func TestAntipode(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := Point{Lat: clampLat(lat), Lon: clampLon(lon)}
		d := DistanceKm(p, Antipode(p))
		return math.Abs(d-math.Pi*EarthRadiusKm) < 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInitialBearing(t *testing.T) {
	// From the equator straight toward the pole.
	if b := InitialBearingDeg(Point{0, 0}, Point{10, 0}); math.Abs(b) > 1e-6 {
		t.Errorf("northward bearing = %f, want 0", b)
	}
	if b := InitialBearingDeg(Point{0, 0}, Point{0, 10}); math.Abs(b-90) > 1e-6 {
		t.Errorf("eastward bearing = %f, want 90", b)
	}
	if b := InitialBearingDeg(Point{0, 0}, Point{-10, 0}); math.Abs(b-180) > 1e-6 {
		t.Errorf("southward bearing = %f, want 180", b)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want Point }{
		{Point{0, 190}, Point{0, -170}},
		{Point{0, -190}, Point{0, 170}},
		{Point{0, 360}, Point{0, 0}},
		{Point{95, 0}, Point{90, 0}},
		{Point{-95, 0}, Point{-90, 0}},
		{Point{45, 180}, Point{45, -180}},
	}
	for _, c := range cases {
		got := c.in.Normalize()
		if math.Abs(got.Lat-c.want.Lat) > 1e-9 || math.Abs(got.Lon-c.want.Lon) > 1e-9 {
			t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValid(t *testing.T) {
	if !paris.Valid() {
		t.Error("paris should be valid")
	}
	bad := []Point{{91, 0}, {0, 181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range bad {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestCapContains(t *testing.T) {
	c := Cap{Center: paris, RadiusKm: 400}
	if !c.Contains(london) {
		t.Error("London is within 400 km of Paris")
	}
	if c.Contains(newYork) {
		t.Error("New York is not within 400 km of Paris")
	}
	if !c.Contains(paris) {
		t.Error("cap must contain its own center")
	}
}

func TestCapArea(t *testing.T) {
	// Small cap area approaches the flat-disk area πr².
	c := Cap{Center: paris, RadiusKm: 100}
	flat := math.Pi * 100 * 100
	if got := c.AreaKm2(); math.Abs(got-flat)/flat > 0.001 {
		t.Errorf("small cap area %.1f differs from flat %.1f", got, flat)
	}
	// Whole-sphere cap covers the full surface.
	whole := Cap{Center: paris, RadiusKm: math.Pi * EarthRadiusKm}
	sphere := 4 * math.Pi * EarthRadiusKm * EarthRadiusKm
	if got := whole.AreaKm2(); math.Abs(got-sphere)/sphere > 1e-9 {
		t.Errorf("whole cap area %.0f, want %.0f", got, sphere)
	}
	if (Cap{Center: paris, RadiusKm: -5}).AreaKm2() != 0 {
		t.Error("negative radius cap has zero area")
	}
}

func TestRingContains(t *testing.T) {
	r := Ring{Center: paris, MinKm: 300, MaxKm: 400}
	if !r.Contains(london) { // ~344 km
		t.Error("London is in the 300-400 km ring around Paris")
	}
	if r.Contains(paris) {
		t.Error("center is inside MinKm, outside the ring")
	}
	if r.Contains(newYork) {
		t.Error("New York is beyond MaxKm")
	}
}

func TestMaxDistanceKm(t *testing.T) {
	if got := MaxDistanceKm(10, BaselineSpeedKmPerMs); got != 2000 {
		t.Errorf("10 ms at baseline = %f, want 2000", got)
	}
	if got := MaxDistanceKm(1e6, BaselineSpeedKmPerMs); got != HalfEquatorKm {
		t.Errorf("huge delay must clamp to half equator, got %f", got)
	}
	if got := MaxDistanceKm(-1, BaselineSpeedKmPerMs); got != 0 {
		t.Errorf("negative delay must clamp to 0, got %f", got)
	}
}

func TestSlowlineConstant(t *testing.T) {
	// The paper derives 84.5 km/ms from 20037.508 km / 237 ms.
	derived := HalfEquatorKm / GeostationaryOneWayMs
	if math.Abs(derived-SlowlineSpeedKmPerMs) > 0.1 {
		t.Errorf("slowline %f inconsistent with derivation %f", SlowlineSpeedKmPerMs, derived)
	}
}

func TestPointString(t *testing.T) {
	s := Point{Lat: -33.8688, Lon: 151.2093}.String()
	if s != "33.8688°S 151.2093°E" {
		t.Errorf("String() = %q", s)
	}
	s = Point{Lat: 40.7128, Lon: -74.0060}.String()
	if s != "40.7128°N 74.0060°W" {
		t.Errorf("String() = %q", s)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 90)
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}
