package geo

import (
	"math"
	"math/rand"
	"testing"
)

func randPoint(rng *rand.Rand) Point {
	// Uniform on the sphere (not uniform in lat/lon), so polar and
	// antipodal cases are exercised.
	z := 2*rng.Float64() - 1
	lon := 360*rng.Float64() - 180
	return Point{Lat: math.Asin(z) * radToDeg, Lon: lon}
}

// TestVecDistanceMatchesHaversine is the kernel's core property: for any
// two points, acos(dot of unit vectors)·R agrees with the haversine
// distance. Haversine is the more stable formula near zero and acos near
// the antipode, so the comparison uses a mixed absolute/relative bound.
func TestVecDistanceMatchesHaversine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a, b := randPoint(rng), randPoint(rng)
		want := DistanceKm(a, b)
		got := UnitVec(a).DistanceKmTo(UnitVec(b))
		if diff := math.Abs(got - want); diff > 1e-6+1e-9*want {
			t.Fatalf("distance mismatch for %v %v: haversine %.12f, vec %.12f (diff %g)", a, b, want, got, diff)
		}
	}
}

// TestCosForKmMembership checks that the dot-product threshold test
// agrees with the distance comparison it replaces.
func TestCosForKmMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		c, p := randPoint(rng), randPoint(rng)
		radius := rng.Float64() * HalfEquatorKm
		dot := UnitVec(c).Dot(UnitVec(p))
		wantIn := DistanceKmFromDot(dot) <= radius
		gotIn := dot >= CosForKm(radius)
		if wantIn != gotIn {
			t.Fatalf("membership mismatch: center %v point %v radius %.3f km (dot %.15f)", c, p, radius, dot)
		}
	}
}

func TestCosForKmEdges(t *testing.T) {
	if CosForKm(0) != 1 || CosForKm(-5) != 1 {
		t.Error("non-positive radius should give threshold 1")
	}
	if CosForKm(math.Pi*EarthRadiusKm) != -1 || CosForKm(1e9) != -1 {
		t.Error("radius ≥ half circumference should admit everything")
	}
}

func TestUnitVecIsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		v := UnitVec(randPoint(rng))
		n := math.Sqrt(v.Dot(v))
		if math.Abs(n-1) > 1e-12 {
			t.Fatalf("norm %g", n)
		}
	}
}
