// Package geo provides the spherical geodesy primitives used throughout
// the geolocation pipeline: points on the Earth's surface, great-circle
// distances and destinations, bearings, and the physical speed constants
// from the paper (the 200 km/ms fiber baseline and the 84.5 km/ms
// geostationary slowline).
//
// All distances are kilometers, all times are milliseconds, and all angles
// at the API boundary are degrees. Latitude is positive north, longitude
// positive east.
package geo

import (
	"fmt"
	"math"
)

const (
	// EarthRadiusKm is the mean Earth radius used for all great-circle math.
	EarthRadiusKm = 6371.0

	// HalfEquatorKm is half the equatorial circumference: the farthest any
	// two points on Earth can be from each other along the surface.
	// The paper uses 20 037.508 km.
	HalfEquatorKm = 20037.508

	// BaselineSpeedKmPerMs is the fastest a signal can travel in fiber,
	// roughly 2/3 of the speed of light in vacuum: 200 km/ms.
	BaselineSpeedKmPerMs = 200.0

	// SlowlineSpeedKmPerMs is the paper's CBG++ lower speed bound:
	// one-way travel times above 237 ms could involve a geostationary
	// satellite hop, which can bridge any two points on a hemisphere, so
	// they carry no distance information. HalfEquatorKm / 237 ms = 84.5.
	SlowlineSpeedKmPerMs = 84.5

	// GeostationaryOneWayMs is the one-way travel time above which a
	// measurement could have crossed a geostationary satellite link.
	GeostationaryOneWayMs = 237.0

	// ICLabSpeedKmPerMs is the speed limit used by ICLab's geolocation
	// checker: 153 km/ms (0.5104 c), slightly faster than the "speed of
	// internet" of Katz-Bassett et al.
	ICLabSpeedKmPerMs = 153.0
)

const (
	degToRad = math.Pi / 180.0
	radToDeg = 180.0 / math.Pi
)

// Point is a location on the Earth's surface.
type Point struct {
	Lat float64 // degrees, positive north, in [-90, 90]
	Lon float64 // degrees, positive east, in [-180, 180)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	ns, ew := "N", "E"
	lat, lon := p.Lat, p.Lon
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	return fmt.Sprintf("%.4f°%s %.4f°%s", lat, ns, lon, ew)
}

// Valid reports whether p is a well-formed coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 &&
		p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Normalize returns p with longitude wrapped into [-180, 180) and latitude
// clamped into [-90, 90].
func (p Point) Normalize() Point {
	lon := math.Mod(p.Lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	lon -= 180
	lat := p.Lat
	if lat > 90 {
		lat = 90
	} else if lat < -90 {
		lat = -90
	}
	return Point{Lat: lat, Lon: lon}
}

// DistanceKm returns the great-circle distance between a and b using the
// haversine formula, which is numerically stable at small distances.
func DistanceKm(a, b Point) float64 {
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// InitialBearingDeg returns the initial great-circle bearing from a to b,
// in degrees clockwise from north, in [0, 360).
func InitialBearingDeg(a, b Point) float64 {
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brg := math.Atan2(y, x) * radToDeg
	if brg < 0 {
		brg += 360
	}
	return brg
}

// DestinationPoint returns the point reached by traveling distKm from p
// along the given initial bearing (degrees clockwise from north).
func DestinationPoint(p Point, bearingDeg, distKm float64) Point {
	lat1 := p.Lat * degToRad
	lon1 := p.Lon * degToRad
	brg := bearingDeg * degToRad
	ad := distKm / EarthRadiusKm // angular distance

	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brg) * math.Sin(ad) * math.Cos(lat1)
	x := math.Cos(ad) - math.Sin(lat1)*sinLat2
	lon2 := lon1 + math.Atan2(y, x)

	return Point{Lat: lat2 * radToDeg, Lon: lon2 * radToDeg}.Normalize()
}

// Antipode returns the point diametrically opposite p.
func Antipode(p Point) Point {
	return Point{Lat: -p.Lat, Lon: p.Lon + 180}.Normalize()
}

// Cap is a spherical cap: all points within RadiusKm of Center along the
// surface. It is the "disk on a map" primitive of multilateration.
type Cap struct {
	Center   Point
	RadiusKm float64
}

// Contains reports whether p lies inside the cap (inclusive).
func (c Cap) Contains(p Point) bool {
	return DistanceKm(c.Center, p) <= c.RadiusKm
}

// AreaKm2 returns the surface area of the cap.
func (c Cap) AreaKm2() float64 {
	if c.RadiusKm <= 0 {
		return 0
	}
	ad := c.RadiusKm / EarthRadiusKm
	if ad >= math.Pi {
		return 4 * math.Pi * EarthRadiusKm * EarthRadiusKm
	}
	return 2 * math.Pi * EarthRadiusKm * EarthRadiusKm * (1 - math.Cos(ad))
}

// Ring is a spherical annulus: points at distance [MinKm, MaxKm] from
// Center. Octant-style algorithms multilaterate with rings rather than
// disks.
type Ring struct {
	Center Point
	MinKm  float64
	MaxKm  float64
}

// Contains reports whether p lies inside the ring (inclusive).
func (r Ring) Contains(p Point) bool {
	d := DistanceKm(r.Center, p)
	return d >= r.MinKm && d <= r.MaxKm
}

// MaxDistanceKm converts a one-way travel time to the farthest distance a
// packet could have covered at the given speed.
func MaxDistanceKm(oneWayMs, speedKmPerMs float64) float64 {
	d := oneWayMs * speedKmPerMs
	if d > HalfEquatorKm {
		return HalfEquatorKm
	}
	if d < 0 {
		return 0
	}
	return d
}

// OneWayMs halves a round-trip time. RTT measurements bound distance via
// the one-way travel time.
func OneWayMs(rttMs float64) float64 { return rttMs / 2 }
