package geo

import "math"

// Vec3 is a 3-D Cartesian vector. Points on the Earth's surface are
// represented as unit vectors from the sphere's center; the great-circle
// distance between two points is then acos(dot)·R, and "within radius r"
// becomes a single dot-product comparison against a precomputed cos(r/R)
// — no trigonometry per candidate point.
//
// This is the geometry kernel the grid package builds on: cell centers
// are converted to unit vectors once at grid construction, so the
// localization hot loops (cap rasterization, ring tests, posterior
// scoring, nearest-cell search) never call sin/cos/asin per cell.
type Vec3 struct {
	X, Y, Z float64
}

// UnitVec returns the unit vector of a surface point. The conversion
// uses the same cos(lat)cos(lon)/cos(lat)sin(lon)/sin(lat) expressions
// as the rest of the package, so results composed from unit vectors are
// bit-compatible with code that computed them inline.
func UnitVec(p Point) Vec3 {
	latR := p.Lat * degToRad
	lonR := p.Lon * degToRad
	cl := math.Cos(latR)
	return Vec3{X: cl * math.Cos(lonR), Y: cl * math.Sin(lonR), Z: math.Sin(latR)}
}

// Dot returns the scalar product of two vectors. For unit vectors it is
// the cosine of the angle between them.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// DistanceKmFromDot converts a dot product of two unit vectors to the
// great-circle distance between the points, clamping rounding noise
// outside [-1, 1] (float dot products of unit vectors can overshoot by
// an ulp).
func DistanceKmFromDot(dot float64) float64 {
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	return math.Acos(dot) * EarthRadiusKm
}

// DistanceKmTo returns the great-circle distance between the points
// represented by the unit vectors v and w.
func (v Vec3) DistanceKmTo(w Vec3) float64 { return DistanceKmFromDot(v.Dot(w)) }

// CosForKm returns cos(km / R): the dot-product threshold for membership
// tests. For unit vectors u, v and a radius r ∈ (0, πR),
//
//	distance(u, v) <= r  ⟺  u·v >= CosForKm(r)
//
// Radii ≥ half the sphere's circumference return -1, so the comparison
// admits every point (dot products of unit vectors are ≥ -1); radii ≤ 0
// return 1. Callers that must treat a zero radius as "center point only"
// (dot can exceed 1 by an ulp) should special-case it rather than rely
// on the threshold.
func CosForKm(km float64) float64 {
	if km <= 0 {
		return 1
	}
	a := km / EarthRadiusKm
	if a >= math.Pi {
		return -1
	}
	return math.Cos(a)
}
