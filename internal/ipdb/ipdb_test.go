package ipdb

import (
	"math/rand"
	"testing"

	"activegeo/internal/netsim"
	"activegeo/internal/proxy"
)

func testFleet(t testing.TB) *proxy.Fleet {
	t.Helper()
	net := netsim.New(5)
	cfg := proxy.DefaultConfig()
	cfg.TotalServers = 700
	f, err := proxy.BuildFleet(net, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDatabasesRoster(t *testing.T) {
	dbs := Databases()
	if len(dbs) != 5 {
		t.Fatalf("databases = %d, want 5 (Fig 21)", len(dbs))
	}
	want := map[string]bool{"MaxMind": true, "IPInfo": true, "IP2Location": true, "Eureka": true, "DB-IP": true}
	for _, db := range dbs {
		if !want[db.Name] {
			t.Errorf("unexpected database %q", db.Name)
		}
	}
	if ByName("MaxMind") == nil {
		t.Error("ByName failed")
	}
	if ByName("nope") != nil {
		t.Error("unknown name should be nil")
	}
}

func TestLookupDeterministic(t *testing.T) {
	f := testFleet(t)
	db := ByName("MaxMind")
	for _, s := range f.Servers()[:50] {
		a, b := db.Lookup(s), db.Lookup(s)
		if a != b {
			t.Fatalf("lookup not deterministic for %s: %q vs %q", s.Host.ID, a, b)
		}
		if a != s.ClaimedCountry && a != s.TrueCountry {
			t.Fatalf("lookup returned neither claim nor truth: %q", a)
		}
	}
}

func TestDatabasesAgreeMoreThanTruth(t *testing.T) {
	// The §6.2 observation: IP-to-location databases echo provider
	// claims far more often than the ground truth warrants.
	f := testFleet(t)
	servers := f.Servers()
	truthAgree := 0
	for _, s := range servers {
		if s.TrueCountry == s.ClaimedCountry {
			truthAgree++
		}
	}
	truthRate := float64(truthAgree) / float64(len(servers))
	for _, db := range Databases() {
		rate := db.AgreementRate(servers)
		if rate <= truthRate {
			t.Errorf("%s agreement %.2f should exceed ground-truth rate %.2f", db.Name, rate, truthRate)
		}
		if rate < 0.5 || rate > 1.0 {
			t.Errorf("%s agreement %.2f out of plausible range", db.Name, rate)
		}
	}
}

func TestPerProviderShape(t *testing.T) {
	// IPInfo is notably skeptical of provider B (Fig 21: 39%).
	f := testFleet(t)
	b := f.Provider("B").Servers
	ipinfo := ByName("IPInfo").AgreementRate(asServers(b))
	maxmind := ByName("MaxMind").AgreementRate(asServers(b))
	if ipinfo >= maxmind {
		t.Errorf("IPInfo should trust provider B far less than MaxMind: %.2f vs %.2f", ipinfo, maxmind)
	}
}

func TestAgreementRateEmpty(t *testing.T) {
	if ByName("MaxMind").AgreementRate(nil) != 0 {
		t.Error("empty agreement should be 0")
	}
}

func asServers(s []*proxy.Server) []*proxy.Server { return s }
