// Package ipdb models the five commercial IP-to-location databases the
// paper compares against in §6.2 (Figure 21). The paper's observation —
// and the reason these databases cannot be trusted for proxies — is that
// they are far more likely to agree with the providers' claims than any
// active measurement, plausibly because providers influence the
// information the databases draw on, with some lag time.
//
// Each synthetic database therefore reports the provider's claimed
// country with a per-database, per-provider agreement probability
// (shaped like the paper's Figure 21 rows), and the true hosting country
// otherwise — the "default guess from IP address registry information"
// case, which for commercial data centers tends to be right.
package ipdb

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"activegeo/internal/proxy"
)

// Database is one IP-to-location database.
type Database struct {
	Name string
	// agreement maps a provider name to the probability the database
	// echoes that provider's claim.
	agreement map[string]float64
	// defaultAgreement applies to unknown providers.
	defaultAgreement float64
}

// databases reproduces the Figure 21 row shapes: all five databases
// agree with providers far more often than active geolocation does, but
// IP2Location and IPInfo are notably more skeptical of providers B/E.
var databases = []*Database{
	{Name: "MaxMind", defaultAgreement: 0.95, agreement: map[string]float64{
		"A": 0.99, "B": 0.99, "C": 0.99, "D": 0.82, "E": 0.99, "F": 1.00, "G": 1.00}},
	{Name: "IPInfo", defaultAgreement: 0.9, agreement: map[string]float64{
		"A": 0.97, "B": 0.39, "C": 0.97, "D": 0.79, "E": 0.93, "F": 0.93, "G": 1.00}},
	{Name: "IP2Location", defaultAgreement: 0.85, agreement: map[string]float64{
		"A": 0.91, "B": 0.47, "C": 0.95, "D": 0.77, "E": 0.65, "F": 0.97, "G": 0.91}},
	{Name: "Eureka", defaultAgreement: 0.95, agreement: map[string]float64{
		"A": 0.99, "B": 0.99, "C": 0.99, "D": 0.82, "E": 0.99, "F": 1.00, "G": 1.00}},
	{Name: "DB-IP", defaultAgreement: 0.9, agreement: map[string]float64{
		"A": 0.94, "B": 0.99, "C": 0.98, "D": 0.88, "E": 0.86, "F": 0.97, "G": 0.94}},
}

// Databases returns the five databases, sorted by name.
func Databases() []*Database {
	out := append([]*Database(nil), databases...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named database, or nil.
func ByName(name string) *Database {
	for _, db := range databases {
		if db.Name == name {
			return db
		}
	}
	return nil
}

// Lookup returns the database's country entry for a server. The answer
// is deterministic per (database, server address): real databases don't
// change their mind between queries.
func (d *Database) Lookup(s *proxy.Server) string {
	p := d.defaultAgreement
	if v, ok := d.agreement[s.Provider]; ok {
		p = v
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(d.Name))
	_, _ = h.Write([]byte(s.Host.Addr))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() < p {
		return s.ClaimedCountry
	}
	return s.TrueCountry
}

// AgreementRate returns the fraction of the given servers for which the
// database agrees with the provider's claimed country — one cell of the
// Figure 21 matrix.
func (d *Database) AgreementRate(servers []*proxy.Server) float64 {
	if len(servers) == 0 {
		return 0
	}
	agree := 0
	for _, s := range servers {
		if d.Lookup(s) == s.ClaimedCountry {
			agree++
		}
	}
	return float64(agree) / float64(len(servers))
}
