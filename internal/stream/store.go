package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"activegeo/internal/assess"
	"activegeo/internal/detect"
	"activegeo/internal/netsim"
)

// Audit pipeline stage names recorded for failed servers. The values
// match the batch audit's experiments.StageMeasure/StageLocate so the
// fingerprints agree byte for byte (stream cannot import experiments:
// experiments imports stream for the Lab wiring).
const (
	StageMeasure = "measure"
	StageLocate  = "locate"
)

// Coverage is one server's degradation annotation under fault injection,
// mirroring the batch audit's CoverageNote field for field.
type Coverage struct {
	Planned         int
	Measured        int
	Retries         int
	ProbeFailures   int
	LostLandmarks   []netsim.HostID
	Disconnected    bool
	BudgetExhausted bool
	Ratio           float64
	Confidence      string
}

// Store is the columnar (struct-of-arrays) verdict store: the only
// O(fleet) state the streaming audit keeps. Verdicts, claims and
// candidate sets are interned into small integer columns; the heavy
// per-server artifacts (RTT vectors, prediction regions) never enter the
// store — they live only inside the batch that produced them.
//
// Rows are append-only in first-seen order; re-auditing a server updates
// its row in place, so a pass over an unchanged fleet keeps rows in
// fleet order and the fingerprint lines up with the batch audit's.
type Store struct {
	mu sync.RWMutex

	ids   []netsim.HostID
	index map[netsim.HostID]int

	// Interning tables. Index 0 of countries is "", so zero-valued
	// columns read back as "no country".
	countries    []string
	countryIdx   map[string]uint16
	providers    []string
	providerIdx  map[string]uint16
	groupKeys    []string
	groupIdx     map[string]uint32
	groupMembers map[uint32][]int // group → rows, insertion order

	// Per-row columns.
	provider []uint16
	claimed  []uint16
	group    []uint32
	sig      []uint64
	assessed []bool
	lastPass []uint32

	raw, dc, final, cont []uint8 // assess.Verdict values
	probableDC           []uint16
	probableFinal        []uint16
	cells                []int32
	nMeas                []uint16
	candidates           [][]uint16 // sorted interned country codes

	errStage []uint8 // 0 none, 1 measure, 2 locate
	errMsg   []string

	coverage map[int]Coverage

	// Adversary-detection columns, populated only while the auditor's
	// plan is armed. advInsp holds each row's manipulation inspection —
	// the raw per-server fit is written by setResult, the judged fields
	// (Suspected/Score/Reasons) by resolveAdversary over the whole
	// population. advExcluded counts the row's measurements dropped for
	// coming from flagged landmarks.
	advArmed    bool
	advFlagged  []netsim.HostID
	advInsp     []detect.Inspection
	advExcluded []int32

	reclassifiedByGroup int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		index:        map[netsim.HostID]int{},
		countries:    []string{""},
		countryIdx:   map[string]uint16{"": 0},
		providers:    []string{""},
		providerIdx:  map[string]uint16{"": 0},
		groupKeys:    []string{""},
		groupIdx:     map[string]uint32{"": 0},
		groupMembers: map[uint32][]int{},
		coverage:     map[int]Coverage{},
	}
}

func (s *Store) internCountry(c string) uint16 {
	if i, ok := s.countryIdx[c]; ok {
		return i
	}
	i := uint16(len(s.countries))
	s.countries = append(s.countries, c)
	s.countryIdx[c] = i
	return i
}

func (s *Store) internProvider(p string) uint16 {
	if i, ok := s.providerIdx[p]; ok {
		return i
	}
	i := uint16(len(s.providers))
	s.providers = append(s.providers, p)
	s.providerIdx[p] = i
	return i
}

func (s *Store) internGroup(g string) uint32 {
	if i, ok := s.groupIdx[g]; ok {
		return i
	}
	i := uint32(len(s.groupKeys))
	s.groupKeys = append(s.groupKeys, g)
	s.groupIdx[g] = i
	return i
}

// Len returns the number of rows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ids)
}

// ensure returns the row for spec's server, creating it on first sight
// and keeping its group membership current.
func (s *Store) ensure(spec ServerSpec) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	row, ok := s.index[spec.ID]
	if !ok {
		row = len(s.ids)
		s.ids = append(s.ids, spec.ID)
		s.index[spec.ID] = row
		s.provider = append(s.provider, s.internProvider(spec.Provider))
		s.claimed = append(s.claimed, s.internCountry(spec.Claimed))
		s.group = append(s.group, 0)
		s.sig = append(s.sig, 0)
		s.assessed = append(s.assessed, false)
		s.lastPass = append(s.lastPass, 0)
		s.raw = append(s.raw, uint8(assess.Uncertain))
		s.dc = append(s.dc, uint8(assess.Uncertain))
		s.final = append(s.final, uint8(assess.Uncertain))
		s.cont = append(s.cont, uint8(assess.Uncertain))
		s.probableDC = append(s.probableDC, 0)
		s.probableFinal = append(s.probableFinal, 0)
		s.cells = append(s.cells, 0)
		s.nMeas = append(s.nMeas, 0)
		s.candidates = append(s.candidates, nil)
		s.errStage = append(s.errStage, 0)
		s.errMsg = append(s.errMsg, "")
		s.advInsp = append(s.advInsp, detect.Inspection{})
		s.advExcluded = append(s.advExcluded, 0)
	}
	g := s.internGroup(spec.GroupKey)
	if old := s.group[row]; old != g {
		if old != 0 || ok {
			members := s.groupMembers[old]
			for i, r := range members {
				if r == row {
					s.groupMembers[old] = append(members[:i], members[i+1:]...)
					break
				}
			}
		}
		s.group[row] = g
		s.groupMembers[g] = append(s.groupMembers[g], row)
	}
	return row
}

// sigOf returns the row's stored dependency signature and whether the
// row has ever been assessed.
func (s *Store) sigOf(row int) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sig[row], s.assessed[row]
}

// outcome is one server's freshly computed assessment, written into the
// row's columns by setResult.
type outcome struct {
	spec       ServerSpec
	sig        uint64
	pass       uint32
	raw        assess.Verdict
	dc         assess.Verdict
	cont       assess.Verdict
	probable   string
	candidates []string
	cells      int
	nMeas      int
	errStage   string
	errMsg     string
	coverage   *Coverage
	insp       detect.Inspection
	excluded   int
}

func (s *Store) setResult(row int, o outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.provider[row] = s.internProvider(o.spec.Provider)
	s.claimed[row] = s.internCountry(o.spec.Claimed)
	s.sig[row] = o.sig
	s.assessed[row] = true
	s.lastPass[row] = o.pass
	s.raw[row] = uint8(o.raw)
	s.dc[row] = uint8(o.dc)
	s.final[row] = uint8(o.dc) // group disambiguation refines this in resolveGroups
	s.cont[row] = uint8(o.cont)
	p := s.internCountry(o.probable)
	s.probableDC[row] = p
	s.probableFinal[row] = p
	s.cells[row] = int32(o.cells)
	s.nMeas[row] = uint16(o.nMeas)
	if len(o.candidates) == 0 {
		s.candidates[row] = nil
	} else {
		cand := make([]uint16, len(o.candidates))
		for i, c := range o.candidates {
			cand[i] = s.internCountry(c)
		}
		s.candidates[row] = cand
	}
	switch o.errStage {
	case StageMeasure:
		s.errStage[row] = 1
	case StageLocate:
		s.errStage[row] = 2
	default:
		s.errStage[row] = 0
	}
	s.errMsg[row] = o.errMsg
	if o.coverage != nil {
		s.coverage[row] = *o.coverage
	} else {
		delete(s.coverage, row)
	}
	s.advInsp[row] = o.insp
	s.advExcluded[row] = int32(o.excluded)
}

// setAdversary records the current pass's adversary state: whether the
// detection layer is armed (which switches the fingerprint's adversary
// annotations on) and the sorted flagged-landmark set.
func (s *Store) setAdversary(armed bool, flagged []netsim.HostID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advArmed = armed
	s.advFlagged = append(s.advFlagged[:0], flagged...)
}

// resolveAdversary re-judges every row's manipulation inspection against
// the whole store's population, mirroring the batch audit's
// detect.JudgeServers stage. Like resolveGroups it is idempotent — the
// judged fields are a pure function of the raw per-row fits, so deltas
// from a partial re-audit compose exactly as a full pass would.
func (s *Store) resolveAdversary(cfg detect.InspectConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.advArmed {
		return
	}
	byID := make(map[string]detect.Inspection, len(s.ids))
	for row, id := range s.ids {
		byID[string(id)] = s.advInsp[row]
	}
	judged := detect.JudgeServers(byID, cfg)
	for row, id := range s.ids {
		s.advInsp[row] = judged[string(id)]
	}
}

// resolveGroups reruns the Figure 16 metadata disambiguation over every
// group, recomputing the final verdicts from the post-data-center
// columns. It is idempotent — deltas from a partial re-audit compose
// with unchanged rows exactly as a full batch pass would, because the
// group refinement is a pure function of the group's candidate sets.
// Semantics mirror assess.DisambiguateGroup.
func (s *Store) resolveGroups() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Reset finals to the pre-group verdicts.
	for row := range s.final {
		s.final[row] = s.dc[row]
		s.probableFinal[row] = s.probableDC[row]
	}
	s.reclassifiedByGroup = 0
	gids := make([]int, 0, len(s.groupMembers))
	for g := range s.groupMembers {
		if g != 0 {
			gids = append(gids, int(g))
		}
	}
	sort.Ints(gids)
	common := map[uint16]int{}
	for _, gi := range gids {
		rows := s.groupMembers[uint32(gi)]
		if len(rows) < 2 {
			continue
		}
		for k := range common {
			delete(common, k)
		}
		usable := 0
		for _, row := range rows {
			if s.cells[row] == 0 {
				continue
			}
			usable++
			for _, c := range s.candidates[row] {
				common[c]++
			}
		}
		if usable < 2 {
			continue
		}
		var shared []uint16
		for c, n := range common {
			if n == usable {
				shared = append(shared, c)
			}
		}
		if len(shared) == 0 {
			continue
		}
		// Sort by country code, as DisambiguateGroup does, so shared[0]
		// (the ascribed probable country) matches the batch audit.
		sort.Slice(shared, func(i, j int) bool {
			return s.countries[shared[i]] < s.countries[shared[j]]
		})
		for _, row := range rows {
			if s.cells[row] == 0 || assess.Verdict(s.dc[row]) != assess.Uncertain {
				continue
			}
			claimedShared := false
			for _, c := range shared {
				if c == s.claimed[row] {
					claimedShared = true
					break
				}
			}
			switch {
			case !claimedShared:
				s.final[row] = uint8(assess.False)
			case len(shared) == 1:
				s.final[row] = uint8(assess.Credible)
			}
			s.probableFinal[row] = shared[0]
			if assess.Verdict(s.final[row]) != assess.Uncertain {
				s.reclassifiedByGroup++
			}
		}
	}
}

// Tally aggregates the final verdicts the way assess.Tabulate does,
// straight off the columns — no result materialization.
func (s *Store) Tally() assess.Tally {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tallyLocked()
}

func (s *Store) tallyLocked() assess.Tally {
	var t assess.Tally
	for row := range s.final {
		switch assess.Verdict(s.final[row]) {
		case assess.Credible:
			t.Credible++
		case assess.Uncertain:
			t.Uncertain++
			if assess.Verdict(s.cont[row]) != assess.False {
				t.UncertainSameCont++
			}
		case assess.False:
			t.False++
			if assess.Verdict(s.cont[row]) == assess.False {
				t.FalseOffContinent++
			}
		}
	}
	return t
}

// Stats are the store-wide aggregates of the batch audit's AuditRun.
type Stats struct {
	Servers             int
	ReclassifiedByDC    int
	ReclassifiedByGroup int
	MeasureFailures     int
	LocateFailures      int

	Retries         int
	ProbeFailures   int
	LostLandmarks   int
	Disconnects     int
	DegradedServers int
	FaultyServers   int
}

// ConfidenceFull mirrors measure.ConfidenceFull without importing it
// into the hot columnar path's dependencies.
const confidenceFull = "full"

// Stats computes the aggregates.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.statsLocked()
}

func (s *Store) statsLocked() Stats {
	st := Stats{Servers: len(s.ids), ReclassifiedByGroup: s.reclassifiedByGroup}
	for row := range s.ids {
		if assess.Verdict(s.raw[row]) == assess.Uncertain && assess.Verdict(s.dc[row]) != assess.Uncertain {
			st.ReclassifiedByDC++
		}
		switch s.errStage[row] {
		case 1:
			st.MeasureFailures++
		case 2:
			st.LocateFailures++
		}
	}
	rows := make([]int, 0, len(s.coverage))
	for row := range s.coverage {
		rows = append(rows, row)
	}
	sort.Ints(rows)
	for _, row := range rows {
		c := s.coverage[row]
		st.FaultyServers++
		st.Retries += c.Retries
		st.ProbeFailures += c.ProbeFailures
		st.LostLandmarks += len(c.LostLandmarks)
		if c.Disconnected {
			st.Disconnects++
		}
		if c.Confidence != confidenceFull {
			st.DegradedServers++
		}
	}
	return st
}

// VerdictOf returns the final verdict and probable country for one
// server (ok=false if the server was never seen).
func (s *Store) VerdictOf(id netsim.HostID) (v assess.Verdict, probable string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	row, found := s.index[id]
	if !found {
		return 0, "", false
	}
	return assess.Verdict(s.final[row]), s.countries[s.probableFinal[row]], true
}

// InspectionOf returns one server's judged manipulation inspection
// (ok=false if the server was never seen). Meaningful only while the
// auditor's adversary plan is armed; on the honest path it is zero.
func (s *Store) InspectionOf(id netsim.HostID) (detect.Inspection, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	row, found := s.index[id]
	if !found {
		return detect.Inspection{}, false
	}
	return s.advInsp[row], true
}

// LastPass returns the Sync pass (1-based) in which the server was last
// measured, 0 if never.
func (s *Store) LastPass(id netsim.HostID) uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	row, found := s.index[id]
	if !found {
		return 0
	}
	return s.lastPass[row]
}

// Fingerprint serializes the store byte-identically to the batch
// audit's fingerprint (internal/experiments.Fingerprint): per-server
// verdict lines in row order, the aggregate tally line, and the faults
// line when any coverage annotations exist. Parity with the golden
// audit SHA is what pins the streaming pipeline to the materializing
// one.
func (s *Store) Fingerprint() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	for row, id := range s.ids {
		var cand []string
		if cs := s.candidates[row]; len(cs) > 0 {
			cand = make([]string, len(cs))
			for i, c := range cs {
				cand[i] = s.countries[c]
			}
		}
		fmt.Fprintf(&b, "%s|%s|%s|%s|%s|%v|%d", id,
			assess.Verdict(s.raw[row]), assess.Verdict(s.final[row]),
			assess.Verdict(s.cont[row]), s.countries[s.probableFinal[row]],
			cand, s.cells[row])
		switch s.errStage[row] {
		case 1:
			fmt.Fprintf(&b, "|err:%s:%s", StageMeasure, s.errMsg[row])
		case 2:
			fmt.Fprintf(&b, "|err:%s:%s", StageLocate, s.errMsg[row])
		}
		if c, ok := s.coverage[row]; ok {
			fmt.Fprintf(&b, "|cov:%d/%d:r%d:f%d:lost%v:disc%v:budget%v:%.4f:%s",
				c.Measured, c.Planned, c.Retries, c.ProbeFailures, c.LostLandmarks,
				c.Disconnected, c.BudgetExhausted, c.Ratio, c.Confidence)
		}
		// Adversary annotations only exist when the plan is armed, so the
		// honest fingerprint is byte-identical to the pre-adversary one.
		if s.advArmed {
			insp := s.advInsp[row]
			fmt.Fprintf(&b, "|adv:%v:%.4f:%v", insp.Suspected, insp.Score, insp.Reasons)
		}
		b.WriteByte('\n')
	}
	t := s.tallyLocked()
	st := s.statsLocked()
	fmt.Fprintf(&b, "tally:%d/%d/%d offcont:%d samecont:%d dc:%d group:%d mfail:%d lfail:%d\n",
		t.Credible, t.Uncertain, t.False, t.FalseOffContinent, t.UncertainSameCont,
		st.ReclassifiedByDC, st.ReclassifiedByGroup, st.MeasureFailures, st.LocateFailures)
	if st.FaultyServers > 0 {
		fmt.Fprintf(&b, "faults: retries:%d probefail:%d lost:%d disc:%d degraded:%d\n",
			st.Retries, st.ProbeFailures, st.LostLandmarks, st.Disconnects, st.DegradedServers)
	}
	if s.advArmed {
		suspected, excluded := 0, 0
		for row := range s.ids {
			if s.advInsp[row].Suspected {
				suspected++
			}
			excluded += int(s.advExcluded[row])
		}
		fmt.Fprintf(&b, "adversary: flagged:%v excluded:%d suspected:%d\n",
			s.advFlagged, excluded, suspected)
	}
	return b.String()
}
