// Package stream is the streaming fleet audit: the §6 pipeline
// restructured so memory stays bounded at any fleet size. The
// materializing Lab.Audit keeps every server's measurements and
// prediction region alive at once — O(fleet) — which caps the auditable
// fleet far below the ROADMAP's production scale. Here the fleet flows
// through a bounded-queue batch scheduler instead: per-server RTT
// vectors and regions live only for the batch that carries them, and the
// only O(fleet) state is the columnar verdict store (a few dozen bytes
// per server).
//
// Re-assessment is churn-driven: every verdict is stamped with a
// dependency signature over the atlas epoch, the fault ledger and the
// server's claim, and a Sync pass re-measures only the servers whose
// signature changed. Measurement randomness comes from the same
// per-entity streams as the batch audit (measure.StreamSeed over the
// same base seed), so a streaming pass over an unchanged fleet is
// byte-identical to Lab.Audit — fingerprint parity is pinned in
// internal/experiments' tests against the audit golden SHA.
package stream

import (
	"fmt"

	"activegeo/internal/netsim"
	"activegeo/internal/proxy"
)

// ServerSpec is the compact description of one fleet member — everything
// the audit needs to measure and judge it, without holding the server
// object itself.
type ServerSpec struct {
	ID       netsim.HostID
	Provider string
	// Claimed is the provider's advertised country (ISO code).
	Claimed string
	// GroupKey clusters servers claimed to share one physical location
	// (provider/AS//24, as in Fleet.DataCenterGroups); empty means the
	// server is in no group.
	GroupKey string
}

// Source enumerates a fleet for the streaming auditor. Specs must be
// cheap: the feeder calls Spec once per server per pass.
type Source interface {
	Len() int
	Spec(i int) ServerSpec
}

// Provisioner is an optional Source extension for fleets whose hosts do
// not pre-exist in the network: the scheduler provisions each batch's
// hosts just before measuring and releases them right after assessment,
// so the network holds O(batch) synthetic hosts, never O(fleet).
type Provisioner interface {
	// Provision registers the hosts for the given specs.
	Provision(specs []ServerSpec) error
	// Release deregisters them again.
	Release(specs []ServerSpec)
}

// FleetSource adapts a materialized proxy.Fleet (hosts already
// registered in the network) to the streaming auditor, enumerating
// servers in the same provider-then-ID order as Fleet.Servers so
// fingerprints line up row for row with the batch audit.
type FleetSource struct {
	servers []*proxy.Server
}

// NewFleetSource builds a source over the fleet's current servers.
func NewFleetSource(f *proxy.Fleet) *FleetSource {
	return &FleetSource{servers: f.Servers()}
}

// Len implements Source.
func (s *FleetSource) Len() int { return len(s.servers) }

// Spec implements Source.
func (s *FleetSource) Spec(i int) ServerSpec {
	sv := s.servers[i]
	return ServerSpec{
		ID:       sv.Host.ID,
		Provider: sv.Provider,
		Claimed:  sv.ClaimedCountry,
		// Same key format as Fleet.DataCenterGroups, so the streaming
		// group disambiguation partitions exactly like the batch one.
		GroupKey: fmt.Sprintf("%s/AS%d/%s", sv.Provider, sv.Host.ASN, sv.Host.Prefix24),
	}
}
