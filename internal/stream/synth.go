package stream

import (
	"fmt"
	"math/rand"
	"sync"

	"activegeo/internal/datacenter"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

// SynthSource generates an arbitrarily large synthetic proxy fleet
// without ever materializing it: each server's spec and host are pure
// functions of (seed, index), built on demand and registered in the
// network only for the lifetime of the batch measuring them (the
// Provisioner contract). This is how benchaudit proves the streaming
// audit's memory is O(batch): a 100k-server pass holds ~BatchSize hosts
// and regions at any instant.
type SynthSource struct {
	net  *netsim.Network
	n    int
	seed int64

	dcs     []datacenter.DC
	hosting []string

	mu      sync.Mutex
	live    int
	maxLive int
}

// NewSynthSource builds a generator for n servers over net.
func NewSynthSource(net *netsim.Network, n int, seed int64) *SynthSource {
	return &SynthSource{
		net:     net,
		n:       n,
		seed:    seed,
		dcs:     datacenter.All(),
		hosting: datacenter.HostingCountries(),
	}
}

// Len implements Source.
func (s *SynthSource) Len() int { return s.n }

// rngFor returns the deterministic stream of one server: independent of
// batch composition and pass order, like every other per-entity stream
// in the repo.
func (s *SynthSource) rngFor(i int) *rand.Rand {
	id := netsim.HostID(fmt.Sprintf("synth-%07d", i))
	return rand.New(rand.NewSource(s.seed ^ int64(netsim.HashID(id))))
}

// gen derives server i's spec and host in one draw sequence, so the
// advertised claim and the ground-truth placement stay consistent.
func (s *SynthSource) gen(i int) (ServerSpec, *netsim.Host) {
	rng := s.rngFor(i)
	dc := s.dcs[rng.Intn(len(s.dcs))]
	claimed := dc.Country
	if rng.Float64() >= 0.6 { // dishonest: claim some other hosting country
		claimed = s.hosting[rng.Intn(len(s.hosting))]
	}
	provider := fmt.Sprintf("S%d", i%4)
	asn := 70000 + rng.Intn(len(s.dcs))
	loc := geo.DestinationPoint(dc.Loc, rng.Float64()*360, rng.Float64()*15)
	spec := ServerSpec{
		ID:       netsim.HostID(fmt.Sprintf("synth-%07d", i)),
		Provider: provider,
		Claimed:  claimed,
		GroupKey: fmt.Sprintf("%s/AS%d/10.%d.%d", provider, asn, asn%250, i%16),
	}
	host := &netsim.Host{
		ID:            spec.ID,
		Addr:          fmt.Sprintf("10.%d.%d.%d", (i/65536)%250, (i/256)%250, i%250+1),
		Loc:           loc,
		Country:       dc.Country,
		ASN:           asn,
		DataCenter:    dc.ID,
		BlocksICMP:    rng.Float64() < 0.9,
		AccessDelayMs: 0.2 + rng.Float64()*0.3,
	}
	return spec, host
}

// Spec implements Source.
func (s *SynthSource) Spec(i int) ServerSpec {
	spec, _ := s.gen(i)
	return spec
}

// Provision implements Provisioner: registers the batch's hosts.
func (s *SynthSource) Provision(specs []ServerSpec) error {
	for _, spec := range specs {
		var idx int
		if _, err := fmt.Sscanf(string(spec.ID), "synth-%d", &idx); err != nil {
			return fmt.Errorf("stream: synth spec with foreign ID %q", spec.ID)
		}
		_, host := s.gen(idx)
		if err := s.net.AddHost(host); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.live += len(specs)
	if s.live > s.maxLive {
		s.maxLive = s.live
	}
	s.mu.Unlock()
	return nil
}

// Release implements Provisioner: deregisters the batch's hosts.
func (s *SynthSource) Release(specs []ServerSpec) {
	for _, spec := range specs {
		s.net.RemoveHost(spec.ID)
	}
	s.mu.Lock()
	s.live -= len(specs)
	s.mu.Unlock()
}

// MaxLiveHosts reports the peak number of synthetic hosts registered at
// once — the structural bounded-memory witness (≈ QueueDepth+1 batches).
func (s *SynthSource) MaxLiveHosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxLive
}
