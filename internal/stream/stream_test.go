package stream

import (
	"context"
	"math/rand"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/cbgpp"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/netsim"
)

// testEnv is a minimal measurement substrate for the stream package's
// own tests: a small constellation, a coarse grid and a calibrated
// CBG++, with no fleet — the synthetic source provisions servers itself.
type testEnv struct {
	net    *netsim.Network
	cons   *atlas.Constellation
	env    *geoloc.Env
	loc    geoloc.Algorithm
	client netsim.HostID
}

func newTestEnv(t *testing.T, seed int64) *testEnv {
	t.Helper()
	net := netsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	cons, err := atlas.Build(net, atlas.Config{Anchors: 16, Probes: 8, SamplesPerPair: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	env := geoloc.NewEnv(4)
	cal, err := cbgpp.Calibrate(cons, cbgpp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	client := netsim.HostID("stream-test-client")
	if err := net.AddHost(&netsim.Host{
		ID:            client,
		Loc:           geo.Point{Lat: 50.11, Lon: 8.68},
		AccessDelayMs: 1,
	}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{
		net:    net,
		cons:   cons,
		env:    env,
		loc:    cbgpp.New(env, cal, cbgpp.Options{}),
		client: client,
	}
}

func (te *testEnv) auditor(batchSize, queueDepth int) *Auditor {
	return New(Config{
		Cons:        te.cons,
		Client:      te.client,
		Env:         te.env,
		Mask:        te.env.Mask,
		Locator:     te.loc,
		Seed:        4242,
		Concurrency: 4,
		BatchSize:   batchSize,
		QueueDepth:  queueDepth,
	})
}

// TestSynthSourceBoundedProvisioning: a synthetic fleet far larger than
// one batch keeps at most (QueueDepth+2) batches of hosts registered at
// any instant — queued batches, the one being measured, and the one the
// feeder holds while blocked on a full queue. That structural bound is
// what makes the streaming audit O(batch) in live state, not O(fleet).
func TestSynthSourceBoundedProvisioning(t *testing.T) {
	te := newTestEnv(t, 31)
	const n, batchSize, queueDepth = 400, 32, 2
	src := NewSynthSource(te.net, n, 777)
	a := te.auditor(batchSize, queueDepth)

	stats, err := a.Sync(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Audited != n || stats.Skipped != 0 {
		t.Fatalf("first pass over a fresh synthetic fleet: %+v, want %d audited", stats, n)
	}
	bound := (queueDepth + 2) * batchSize
	if got := src.MaxLiveHosts(); got > bound {
		t.Fatalf("peak live hosts %d exceeds the (queue+2)×batch bound %d", got, bound)
	}
	if got := src.MaxLiveHosts(); got < batchSize {
		t.Fatalf("peak live hosts %d never reached one full batch %d — provisioning is broken", got, batchSize)
	}

	// Second pass: nothing changed, so nothing is re-provisioned.
	before := src.MaxLiveHosts()
	stats, err = a.Sync(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Audited != 0 || stats.Skipped != n {
		t.Fatalf("second pass must skip everything: %+v", stats)
	}
	if got := src.MaxLiveHosts(); got != before {
		t.Fatalf("second pass provisioned hosts: peak went %d → %d", before, got)
	}
}

// TestSynthDeterministicAcrossBatchGeometry: the verdict fingerprint of
// a synthetic pass is independent of batch size and queue depth.
func TestSynthDeterministicAcrossBatchGeometry(t *testing.T) {
	const n = 200
	ref := ""
	for i, geom := range []struct{ batch, queue int }{{16, 1}, {64, 3}} {
		te := newTestEnv(t, 31)
		src := NewSynthSource(te.net, n, 777)
		a := te.auditor(geom.batch, geom.queue)
		if _, err := a.Sync(context.Background(), src); err != nil {
			t.Fatal(err)
		}
		fp := a.Store().Fingerprint()
		if i == 0 {
			ref = fp
		} else if fp != ref {
			t.Fatalf("batch=%d queue=%d diverged from batch=16 queue=1:\n--- ref ---\n%s--- got ---\n%s",
				geom.batch, geom.queue, ref, fp)
		}
	}
}

// TestSyncContextCancel: a canceled context aborts the pass with the
// context error rather than hanging the feeder on a full queue.
func TestSyncContextCancel(t *testing.T) {
	te := newTestEnv(t, 31)
	src := NewSynthSource(te.net, 400, 777)
	a := te.auditor(8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := false
	a.cfg.OnBatchDone = func(BatchStats) {
		if !done {
			done = true
			cancel()
		}
	}
	_, err := a.Sync(ctx, src)
	if err == nil {
		t.Fatal("Sync with canceled context returned nil error")
	}

	// Everything the canceled pass did not finish stayed dirty: a fresh
	// pass picks the remainder up, and a third pass is quiescent.
	a.cfg.OnBatchDone = nil
	resume, err := a.Sync(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if resume.Audited == 0 {
		t.Fatal("resume pass audited nothing — canceled rows were wrongly marked clean")
	}
	final, err := a.Sync(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if final.Audited != 0 || final.Skipped != 400 {
		t.Fatalf("post-resume pass must be quiescent over all 400 servers: %+v", final)
	}
}
