package stream

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"activegeo/internal/assess"
	"activegeo/internal/atlas"
	"activegeo/internal/detect"
	"activegeo/internal/geoloc"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
	"activegeo/internal/worldmap"
)

// Config parameterizes a streaming Auditor. Cons, Client, Env, Mask and
// Locator must match the batch audit's for fingerprint parity; Seed must
// be the same measurement base seed (the lab's audit stream seed), since
// each server's randomness is measure.StreamSeed(Seed, id) on both
// paths.
type Config struct {
	Cons    *atlas.Constellation
	Client  netsim.HostID
	Env     *geoloc.Env
	Mask    *worldmap.Mask
	Locator geoloc.Algorithm

	// Seed is the base seed of the per-server measurement streams.
	Seed int64
	// PolicyFn returns the resilience policy for a batch (consulted at
	// batch formation, so re-arming faults mid-run takes effect on the
	// next batch). nil means the zero policy — the historical
	// fault-free path.
	PolicyFn func() measure.Policy

	// Concurrency bounds the measurement and assessment pools inside
	// one batch (0 = GOMAXPROCS). Results are identical at any width.
	Concurrency int
	// BatchSize is the number of servers measured per batch (default
	// 64). Peak transient memory is O(QueueDepth × BatchSize).
	BatchSize int
	// QueueDepth bounds the batches buffered between the feeder and the
	// measuring worker (default 2). The feeder blocks when the queue is
	// full — backpressure, not accumulation.
	QueueDepth int

	// Adversary, when armed, mirrors the batch audit's detection layer:
	// the calibration mesh is cross-validated before each pass, flagged
	// landmarks' reports are dropped from every server's localization
	// inputs, and each verdict carries a manipulation inspection judged
	// against the whole store's population after the pass. nil (or a
	// disabled plan) keeps the pipeline byte-identical to the honest
	// engine.
	Adversary *measure.AdversaryPlan

	// Telemetry receives queue-depth and batch-latency distributions
	// plus audited/skipped counters (nil discards).
	Telemetry *telemetry.Collector

	// OnBatchDone, if non-nil, is called synchronously from the worker
	// after each batch is fully assessed, with no measurement in
	// flight — the safe point to apply constellation churn mid-pass.
	OnBatchDone func(BatchStats)
}

// BatchStats describes one completed batch.
type BatchStats struct {
	Pass    uint32
	Index   int // batch number within the pass, 0-based
	Servers int
	WallMs  float64
}

// PassStats summarizes one Sync pass.
type PassStats struct {
	Total   int // servers enumerated from the source
	Audited int // servers measured this pass
	Skipped int // servers whose dependency signature was unchanged
	Batches int
}

// Auditor runs streaming audit passes against a columnar Store.
type Auditor struct {
	cfg   Config
	store *Store
	pass  uint32

	// lmReport is the current pass's landmark cross-validation (nil when
	// the adversary layer is disarmed). Recomputed at the top of every
	// Sync so constellation churn re-judges the mesh.
	lmReport *detect.LandmarkReport
}

// New builds an Auditor over a fresh store.
func New(cfg Config) *Auditor {
	return &Auditor{cfg: cfg, store: NewStore()}
}

// Store exposes the verdict store.
func (a *Auditor) Store() *Store { return a.store }

func (a *Auditor) concurrency() int {
	if a.cfg.Concurrency > 0 {
		return a.cfg.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

func (a *Auditor) batchSize() int {
	if a.cfg.BatchSize > 0 {
		return a.cfg.BatchSize
	}
	return 64
}

func (a *Auditor) queueDepth() int {
	if a.cfg.QueueDepth > 0 {
		return a.cfg.QueueDepth
	}
	return 2
}

func (a *Auditor) policy() measure.Policy {
	if a.cfg.PolicyFn == nil {
		return measure.Policy{}
	}
	return a.cfg.PolicyFn()
}

// signature folds everything a server's verdict depends on — the
// constellation epoch (landmark set + calibration generation), the fault
// ledger, and the server's own claim metadata — into one dependency
// stamp. A stored verdict is current iff its stamp matches.
func (a *Auditor) signature(spec ServerSpec) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		mix(uint64(len(s)))
	}
	mix(a.cfg.Cons.Epoch())
	mix(a.cfg.Cons.Net().Faults().Signature())
	// Arming, disarming or re-tuning the adversary plan changes what a
	// verdict means, so it dirties every row (nil and the zero plan
	// share the stable "disabled" stamp).
	mix(a.cfg.Adversary.Signature())
	mixStr(spec.Provider)
	mixStr(spec.Claimed)
	mixStr(spec.GroupKey)
	return h
}

// batchItem is one dirty server queued for measurement.
type batchItem struct {
	row  int
	spec ServerSpec
	sig  uint64
}

// Sync runs one streaming pass over the source: servers whose dependency
// signature changed since their last verdict are re-measured in bounded
// batches; the rest are skipped. After the pass the group metadata
// refinement is re-resolved over the whole store, so partial deltas
// compose into exactly the verdicts a full batch audit would produce.
//
// Determinism: each server draws from its own (Seed, ID) stream, batch
// composition only affects scheduling, and per-batch results are written
// into per-row slots — so verdicts are a pure function of (store state,
// source, constellation, faults), at any Concurrency/BatchSize/QueueDepth.
func (a *Auditor) Sync(ctx context.Context, src Source) (PassStats, error) {
	a.pass++
	tel := a.cfg.Telemetry
	prov, _ := src.(Provisioner)
	stats := PassStats{Total: src.Len()}

	// Stage 0 (adversary plan armed only): cross-validate the anchors
	// against the as-reported calibration mesh, exactly as the batch
	// audit does. The flagged set filters every batch's localization
	// inputs below and is stamped into the store for the fingerprint.
	if plan := a.cfg.Adversary; plan.Enabled() {
		edges := detect.MeshEdges(a.cfg.Cons, plan.ReportedPosition, plan.ReportBiasMs)
		a.lmReport = detect.CrossValidate(edges, detect.DefaultCrossValidateConfig())
		a.store.setAdversary(true, a.lmReport.Flagged)
	} else {
		a.lmReport = nil
		a.store.setAdversary(false, nil)
	}

	batches := make(chan []batchItem, a.queueDepth())
	var feedErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(batches)
		batch := make([]batchItem, 0, a.batchSize())
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			if prov != nil {
				specs := make([]ServerSpec, len(batch))
				for i, it := range batch {
					specs[i] = it.spec
				}
				if err := prov.Provision(specs); err != nil {
					feedErr = fmt.Errorf("stream: provisioning batch: %w", err)
					return false
				}
			}
			tel.Observe("stream.queue.depth", float64(len(batches)))
			select {
			case batches <- batch:
			case <-ctx.Done():
				// The batch was provisioned but never handed off: release
				// it here or its hosts leak into the next pass.
				if prov != nil {
					specs := make([]ServerSpec, len(batch))
					for i, it := range batch {
						specs[i] = it.spec
					}
					prov.Release(specs)
				}
				feedErr = ctx.Err()
				return false
			}
			batch = make([]batchItem, 0, a.batchSize())
			return true
		}
		for i := 0; i < src.Len(); i++ {
			spec := src.Spec(i)
			row := a.store.ensure(spec)
			// The signature is captured at batch formation: churn
			// landing after this point re-dirties the server on the
			// next pass rather than silently racing this one.
			sig := a.signature(spec)
			if stored, assessed := a.store.sigOf(row); assessed && stored == sig {
				stats.Skipped++
				continue
			}
			batch = append(batch, batchItem{row: row, spec: spec, sig: sig})
			if len(batch) >= a.batchSize() {
				if !flush() {
					return
				}
			}
		}
		flush()
	}()

	for batch := range batches {
		if ctx.Err() != nil {
			// Canceled: drain without assessing, so every unfinished row
			// keeps its old signature and stays dirty for the next pass.
			if prov != nil {
				specs := make([]ServerSpec, len(batch))
				for i, it := range batch {
					specs[i] = it.spec
				}
				prov.Release(specs)
			}
			continue
		}
		start := time.Now()
		a.runBatch(ctx, batch)
		if prov != nil {
			specs := make([]ServerSpec, len(batch))
			for i, it := range batch {
				specs[i] = it.spec
			}
			prov.Release(specs)
		}
		wallMs := float64(time.Since(start)) / float64(time.Millisecond)
		tel.Observe("stream.batch.ms", wallMs)
		tel.Add("stream.audited", int64(len(batch)))
		stats.Audited += len(batch)
		if a.cfg.OnBatchDone != nil {
			a.cfg.OnBatchDone(BatchStats{
				Pass: a.pass, Index: stats.Batches, Servers: len(batch), WallMs: wallMs,
			})
		}
		stats.Batches++
	}
	wg.Wait()
	if feedErr != nil {
		return stats, feedErr
	}

	a.store.resolveGroups()
	// Like the group refinement, the manipulation judgment is a pure
	// function of the whole store's per-server fits: re-judging after
	// every pass makes partial deltas compose into exactly the verdicts
	// a full batch audit would produce.
	a.store.resolveAdversary(detect.DefaultInspectConfig())
	tel.Add("stream.skipped", int64(stats.Skipped))
	tel.Add("stream.passes", 1)
	return stats, nil
}

// runBatch measures and assesses one batch: the only point where RTT
// vectors and prediction regions exist, and they die with the batch.
func (a *Auditor) runBatch(ctx context.Context, batch []batchItem) {
	proxies := make([]netsim.HostID, len(batch))
	for i, it := range batch {
		proxies[i] = it.spec.ID
	}
	mb := &measure.Batch{
		Cons:        a.cfg.Cons,
		Client:      a.cfg.Client,
		Eta:         measure.DefaultEta,
		Concurrency: a.concurrency(),
		Seed:        a.cfg.Seed,
		Policy:      a.policy(),
		Adversary:   a.cfg.Adversary,
	}
	measured := mb.Run(ctx, proxies)
	if ctx.Err() != nil {
		// The measurement was cut short by cancellation; don't bake the
		// partial results into the store — the rows stay dirty.
		return
	}

	armed := a.cfg.Adversary.Enabled()
	inspectCfg := detect.DefaultInspectConfig()
	parallelFor(len(batch), a.concurrency(), func(i int) {
		it := batch[i]
		o := outcome{spec: it.spec, sig: it.sig, pass: a.pass}
		region := a.cfg.Env.Grid.NewRegion()
		var ms []geoloc.Measurement
		switch {
		case measured[i].Err != nil:
			o.errStage = StageMeasure
			o.errMsg = measured[i].Err.Error()
		default:
			ms = measured[i].Result.Measurements()
			if armed {
				// Flagged landmarks' reports are poison: drop them before
				// fitting a region, exactly as the batch audit does.
				kept := make([]geoloc.Measurement, 0, len(ms))
				for _, m := range ms {
					if !a.lmReport.IsFlagged(m.LandmarkID) {
						kept = append(kept, m)
					}
				}
				o.excluded = len(ms) - len(kept)
				ms = kept
			}
			o.nMeas = len(ms)
			if len(ms) < 4 {
				o.errStage = StageMeasure
				// Byte-identical to the batch audit's error (which is
				// minted in package experiments) so fingerprints agree.
				o.errMsg = fmt.Sprintf("experiments: only %d usable measurements (need 4)", len(ms))
			} else if r2, lerr := a.cfg.Locator.Locate(ms); lerr != nil {
				o.errStage = StageLocate
				o.errMsg = lerr.Error()
			} else {
				region = r2
			}
		}
		if armed {
			if c, ok := region.Centroid(); ok {
				o.insp = detect.InspectServer(ms, c, inspectCfg)
			}
		}
		res := assess.Assess(a.cfg.Mask, region, string(it.spec.ID), it.spec.Provider, it.spec.Claimed)
		o.raw = res.VerdictRaw
		o.dc = res.Verdict
		o.cont = res.ContVerdict
		o.probable = res.ProbableCountry
		o.candidates = res.Candidates
		o.cells = region.Count()
		if r := measured[i].Result; r != nil && r.Deg != nil {
			o.coverage = &Coverage{
				Planned:         r.Deg.Planned,
				Measured:        r.Deg.Measured,
				Retries:         r.Deg.Retries,
				ProbeFailures:   r.Deg.ProbeFailures,
				LostLandmarks:   append([]netsim.HostID(nil), r.Deg.LostLandmarks...),
				Disconnected:    r.Deg.Disconnected,
				BudgetExhausted: r.Deg.BudgetExhausted,
				Ratio:           r.Deg.Coverage(),
				Confidence:      r.Deg.Confidence(),
			}
		}
		a.store.setResult(it.row, o)
	})
}

// parallelFor runs fn(i) for i in [0, n) on at most workers goroutines
// (inline, in order, when workers ≤ 1). Work is handed out by an atomic
// counter; fn writes into per-index state, so scheduling cannot affect
// results.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
