package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	span := c.StartStage("x") // must not panic
	span.End()
	c.Add("n", 3)
	c.Progress("x", 1, 2)
	c.OnProgress(func(Progress) {})
	if c.Count("n") != 0 {
		t.Error("nil collector counted")
	}
	if c.Stages() != nil || c.Counters() != nil {
		t.Error("nil collector returned data")
	}
	if c.Render() != "" {
		t.Error("nil collector rendered")
	}
}

func TestStagesAccumulate(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		sp := c.StartStage("stage-a")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	sp := c.StartStage("stage-b")
	sp.End()
	stages := c.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Name != "stage-a" || stages[1].Name != "stage-b" {
		t.Fatalf("stage order %v", []string{stages[0].Name, stages[1].Name})
	}
	if stages[0].Spans != 3 {
		t.Errorf("spans = %d, want 3", stages[0].Spans)
	}
	if stages[0].Wall < 3*time.Millisecond {
		t.Errorf("wall = %v, want ≥ 3ms", stages[0].Wall)
	}
	if !strings.Contains(c.Render(), "stage-a") {
		t.Error("render")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Count("hits"); got != 800 {
		t.Errorf("hits = %d, want 800", got)
	}
	if !strings.Contains(c.Render(), "hits") {
		t.Error("render should list counters")
	}
}

func TestProgressCallback(t *testing.T) {
	c := New()
	var mu sync.Mutex
	var events []Progress
	c.OnProgress(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	c.Progress("measure", 1, 10)
	c.Progress("measure", 10, 10)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[1] != (Progress{Stage: "measure", Done: 10, Total: 10}) {
		t.Errorf("event = %+v", events[1])
	}
}

func TestNilCollectorObserve(t *testing.T) {
	var c *Collector
	c.Observe("lat", 1.0) // must not panic
	if _, ok := c.Distribution("lat"); ok {
		t.Error("nil collector has a distribution")
	}
	if c.Distributions() != nil {
		t.Error("nil collector returned distributions")
	}
}

func TestDistributionExactSmall(t *testing.T) {
	c := New()
	for i := 1; i <= 100; i++ {
		c.Observe("lat", float64(i))
	}
	s, ok := c.Distribution("lat")
	if !ok {
		t.Fatal("distribution missing")
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("mean = %v", got)
	}
	// Exact below the reservoir cap: p50 of 1..100 interpolates to 50.5.
	if s.P50 < 50 || s.P50 > 51 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Errorf("p99 = %v", s.P99)
	}
}

func TestDistributionDecimation(t *testing.T) {
	// Push well past the reservoir cap; count/sum/min/max stay exact and
	// the quantiles of a uniform ramp stay near their true values.
	c := New()
	const n = 100_000
	for i := 0; i < n; i++ {
		c.Observe("d", float64(i))
	}
	s, _ := c.Distribution("d")
	if s.Count != n || s.Min != 0 || s.Max != n-1 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if rel := s.P50/float64(n) - 0.5; rel < -0.02 || rel > 0.02 {
		t.Errorf("p50 = %v, want ~%v", s.P50, n/2)
	}
	if rel := s.P99/float64(n) - 0.99; rel < -0.02 || rel > 0.02 {
		t.Errorf("p99 = %v, want ~%v", s.P99, 99*n/100)
	}
}

func TestDistributionsOrderAndRender(t *testing.T) {
	c := New()
	c.Observe("b", 2)
	c.Observe("a", 1)
	c.Observe("b", 4)
	ds := c.Distributions()
	if len(ds) != 2 || ds[0].Name != "b" || ds[1].Name != "a" {
		t.Fatalf("distributions = %+v", ds)
	}
	if ds[0].Count != 2 || ds[0].Sum != 6 {
		t.Errorf("b = %+v", ds[0])
	}
	out := c.Render()
	if !strings.Contains(out, "distributions") || !strings.Contains(out, "a") {
		t.Errorf("render missing distributions: %s", out)
	}
}

func TestObserveConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Observe("x", 1)
			}
		}()
	}
	wg.Wait()
	s, _ := c.Distribution("x")
	if s.Count != 8000 || s.Sum != 8000 {
		t.Errorf("count/sum = %d/%v", s.Count, s.Sum)
	}
}
