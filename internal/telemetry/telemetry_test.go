package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	span := c.StartStage("x") // must not panic
	span.End()
	c.Add("n", 3)
	c.Progress("x", 1, 2)
	c.OnProgress(func(Progress) {})
	if c.Count("n") != 0 {
		t.Error("nil collector counted")
	}
	if c.Stages() != nil || c.Counters() != nil {
		t.Error("nil collector returned data")
	}
	if c.Render() != "" {
		t.Error("nil collector rendered")
	}
}

func TestStagesAccumulate(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		sp := c.StartStage("stage-a")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	sp := c.StartStage("stage-b")
	sp.End()
	stages := c.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if stages[0].Name != "stage-a" || stages[1].Name != "stage-b" {
		t.Fatalf("stage order %v", []string{stages[0].Name, stages[1].Name})
	}
	if stages[0].Spans != 3 {
		t.Errorf("spans = %d, want 3", stages[0].Spans)
	}
	if stages[0].Wall < 3*time.Millisecond {
		t.Errorf("wall = %v, want ≥ 3ms", stages[0].Wall)
	}
	if !strings.Contains(c.Render(), "stage-a") {
		t.Error("render")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Count("hits"); got != 800 {
		t.Errorf("hits = %d, want 800", got)
	}
	if !strings.Contains(c.Render(), "hits") {
		t.Error("render should list counters")
	}
}

func TestProgressCallback(t *testing.T) {
	c := New()
	var mu sync.Mutex
	var events []Progress
	c.OnProgress(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	c.Progress("measure", 1, 10)
	c.Progress("measure", 10, 10)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[1] != (Progress{Stage: "measure", Done: 10, Total: 10}) {
		t.Errorf("event = %+v", events[1])
	}
}
