// Package telemetry instruments the experiment pipelines: named stage
// timings (wall clock and process CPU), monotonic counters, and
// progress callbacks. The §6 audit is the repo's most expensive run; at
// paper scale an operator needs to see where the time goes and how many
// servers failed each stage, not a silent multi-minute pause.
//
// A nil *Collector is valid and discards everything, so pipeline code
// can be instrumented unconditionally:
//
//	span := tel.StartStage("audit.measure") // tel may be nil
//	...
//	span.End()
//
// All methods are safe for concurrent use; the audit's worker pools
// report progress and counters from many goroutines at once.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"activegeo/internal/mathx"
)

// Stage is the accumulated cost of one named pipeline stage. A stage
// that runs more than once (per-provider batches, benchmark loops)
// accumulates across spans.
type Stage struct {
	Name string
	// Wall is summed wall-clock time across spans.
	Wall time.Duration
	// CPU is summed process CPU time (user+system) across spans. On
	// platforms without rusage support it stays zero. With parallel
	// stages CPU exceeding Wall is the expected sign of real speedup.
	CPU time.Duration
	// Spans counts StartStage/End pairs folded into this stage.
	Spans int
}

// Progress is one progress callback event.
type Progress struct {
	Stage string
	Done  int
	Total int
}

// Collector gathers stages, counters, distributions and progress for
// one pipeline run.
type Collector struct {
	mu       sync.Mutex
	order    []string
	stages   map[string]*Stage
	corder   []string
	counters map[string]int64
	dorder   []string
	dists    map[string]*dist
	progress func(Progress)
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		stages:   make(map[string]*Stage),
		counters: make(map[string]int64),
		dists:    make(map[string]*dist),
	}
}

// OnProgress registers fn to receive progress events. fn is called
// synchronously from whatever goroutine reports progress, so it must be
// cheap and concurrency-safe.
func (c *Collector) OnProgress(fn func(Progress)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.progress = fn
	c.mu.Unlock()
}

// Span times one execution of a stage, from StartStage to End.
type Span struct {
	c     *Collector
	name  string
	start time.Time
	cpu0  time.Duration
}

// StartStage opens a timing span for the named stage. The returned span
// (which may be nil, on a nil collector) is closed with End.
func (c *Collector) StartStage(name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{c: c, name: name, start: time.Now(), cpu0: processCPU()}
}

// End closes the span and folds its wall/CPU cost into the stage.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	wall := time.Since(sp.start)
	cpu := processCPU() - sp.cpu0
	c := sp.c
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stages[sp.name]
	if st == nil {
		st = &Stage{Name: sp.name}
		c.stages[sp.name] = st
		c.order = append(c.order, sp.name)
	}
	st.Wall += wall
	if cpu > 0 {
		st.CPU += cpu
	}
	st.Spans++
}

// Add increments a named counter by delta.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.counters[name]; !ok {
		c.corder = append(c.corder, name)
	}
	c.counters[name] += delta
}

// Count returns the current value of a counter (0 if never added).
func (c *Collector) Count(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// distCap bounds the per-distribution sample reservoir. When the
// reservoir fills, every other kept sample is dropped and the keep
// stride doubles, so memory stays bounded while the kept set remains an
// even systematic sample of the observation sequence.
const distCap = 4096

// dist accumulates one named value distribution.
type dist struct {
	count    int64
	sum      float64
	min, max float64
	stride   int64 // keep one observation in every stride
	kept     []float64
}

func (d *dist) observe(v float64) {
	if d.count == 0 {
		d.min, d.max = v, v
	} else {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
	}
	if d.count%d.stride == 0 {
		if len(d.kept) == distCap {
			half := d.kept[:0]
			for i := 0; i < distCap; i += 2 {
				half = append(half, d.kept[i])
			}
			d.kept = half
			d.stride *= 2
		}
		d.kept = append(d.kept, v)
	}
	d.count++
	d.sum += v
}

// DistSnapshot is a point-in-time summary of one distribution. The
// quantiles are computed over the reservoir, which is exact until
// distCap observations and a systematic subsample after.
type DistSnapshot struct {
	Name  string
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	P50   float64
	P90   float64
	P99   float64
}

// Mean returns the arithmetic mean of all observations.
func (s DistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Observe folds one value into the named distribution.
func (c *Collector) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.dists[name]
	if d == nil {
		d = &dist{stride: 1}
		c.dists[name] = d
		c.dorder = append(c.dorder, name)
	}
	d.observe(v)
}

func (d *dist) snapshot(name string) DistSnapshot {
	s := DistSnapshot{Name: name, Count: d.count, Sum: d.sum, Min: d.min, Max: d.max}
	if len(d.kept) > 0 {
		s.P50 = mathx.Quantile(d.kept, 0.50)
		s.P90 = mathx.Quantile(d.kept, 0.90)
		s.P99 = mathx.Quantile(d.kept, 0.99)
	}
	return s
}

// Distribution returns a snapshot of one named distribution; the
// second result is false if nothing was ever observed under that name.
func (c *Collector) Distribution(name string) (DistSnapshot, bool) {
	if c == nil {
		return DistSnapshot{Name: name}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.dists[name]
	if d == nil {
		return DistSnapshot{Name: name}, false
	}
	return d.snapshot(name), true
}

// Distributions returns snapshots of every distribution in
// first-observation order.
func (c *Collector) Distributions() []DistSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DistSnapshot, 0, len(c.dorder))
	for _, name := range c.dorder {
		out = append(out, c.dists[name].snapshot(name))
	}
	return out
}

// Progress forwards a progress event to the registered callback.
func (c *Collector) Progress(stage string, done, total int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	fn := c.progress
	c.mu.Unlock()
	if fn != nil {
		fn(Progress{Stage: stage, Done: done, Total: total})
	}
}

// Stages returns a copy of all stages in first-start order.
func (c *Collector) Stages() []Stage {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Stage, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.stages[name])
	}
	return out
}

// Counters returns a copy of all counters, sorted by name.
func (c *Collector) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Render formats the collected stages and counters as an aligned text
// report, suitable for printing to stderr after a run.
func (c *Collector) Render() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry | stage timings:\n")
	for _, name := range c.order {
		st := c.stages[name]
		fmt.Fprintf(&b, "  %-24s wall %10v  cpu %10v  (%d span", name,
			st.Wall.Round(time.Millisecond), st.CPU.Round(time.Millisecond), st.Spans)
		if st.Spans != 1 {
			b.WriteString("s")
		}
		b.WriteString(")\n")
	}
	if len(c.corder) > 0 {
		names := append([]string(nil), c.corder...)
		sort.Strings(names)
		fmt.Fprintf(&b, "telemetry | counters:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-24s %d\n", name, c.counters[name])
		}
	}
	if len(c.dorder) > 0 {
		names := append([]string(nil), c.dorder...)
		sort.Strings(names)
		fmt.Fprintf(&b, "telemetry | distributions:\n")
		for _, name := range names {
			s := c.dists[name].snapshot(name)
			fmt.Fprintf(&b, "  %-24s n=%d  mean %.3f  p50 %.3f  p99 %.3f  max %.3f\n",
				name, s.Count, s.Mean(), s.P50, s.P99, s.Max)
		}
	}
	return b.String()
}
