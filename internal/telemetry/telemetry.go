// Package telemetry instruments the experiment pipelines: named stage
// timings (wall clock and process CPU), monotonic counters, and
// progress callbacks. The §6 audit is the repo's most expensive run; at
// paper scale an operator needs to see where the time goes and how many
// servers failed each stage, not a silent multi-minute pause.
//
// A nil *Collector is valid and discards everything, so pipeline code
// can be instrumented unconditionally:
//
//	span := tel.StartStage("audit.measure") // tel may be nil
//	...
//	span.End()
//
// All methods are safe for concurrent use; the audit's worker pools
// report progress and counters from many goroutines at once.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage is the accumulated cost of one named pipeline stage. A stage
// that runs more than once (per-provider batches, benchmark loops)
// accumulates across spans.
type Stage struct {
	Name string
	// Wall is summed wall-clock time across spans.
	Wall time.Duration
	// CPU is summed process CPU time (user+system) across spans. On
	// platforms without rusage support it stays zero. With parallel
	// stages CPU exceeding Wall is the expected sign of real speedup.
	CPU time.Duration
	// Spans counts StartStage/End pairs folded into this stage.
	Spans int
}

// Progress is one progress callback event.
type Progress struct {
	Stage string
	Done  int
	Total int
}

// Collector gathers stages, counters and progress for one pipeline run.
type Collector struct {
	mu       sync.Mutex
	order    []string
	stages   map[string]*Stage
	corder   []string
	counters map[string]int64
	progress func(Progress)
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		stages:   make(map[string]*Stage),
		counters: make(map[string]int64),
	}
}

// OnProgress registers fn to receive progress events. fn is called
// synchronously from whatever goroutine reports progress, so it must be
// cheap and concurrency-safe.
func (c *Collector) OnProgress(fn func(Progress)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.progress = fn
	c.mu.Unlock()
}

// Span times one execution of a stage, from StartStage to End.
type Span struct {
	c     *Collector
	name  string
	start time.Time
	cpu0  time.Duration
}

// StartStage opens a timing span for the named stage. The returned span
// (which may be nil, on a nil collector) is closed with End.
func (c *Collector) StartStage(name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{c: c, name: name, start: time.Now(), cpu0: processCPU()}
}

// End closes the span and folds its wall/CPU cost into the stage.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	wall := time.Since(sp.start)
	cpu := processCPU() - sp.cpu0
	c := sp.c
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stages[sp.name]
	if st == nil {
		st = &Stage{Name: sp.name}
		c.stages[sp.name] = st
		c.order = append(c.order, sp.name)
	}
	st.Wall += wall
	if cpu > 0 {
		st.CPU += cpu
	}
	st.Spans++
}

// Add increments a named counter by delta.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.counters[name]; !ok {
		c.corder = append(c.corder, name)
	}
	c.counters[name] += delta
}

// Count returns the current value of a counter (0 if never added).
func (c *Collector) Count(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Progress forwards a progress event to the registered callback.
func (c *Collector) Progress(stage string, done, total int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	fn := c.progress
	c.mu.Unlock()
	if fn != nil {
		fn(Progress{Stage: stage, Done: done, Total: total})
	}
}

// Stages returns a copy of all stages in first-start order.
func (c *Collector) Stages() []Stage {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Stage, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.stages[name])
	}
	return out
}

// Counters returns a copy of all counters, sorted by name.
func (c *Collector) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Render formats the collected stages and counters as an aligned text
// report, suitable for printing to stderr after a run.
func (c *Collector) Render() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry | stage timings:\n")
	for _, name := range c.order {
		st := c.stages[name]
		fmt.Fprintf(&b, "  %-24s wall %10v  cpu %10v  (%d span", name,
			st.Wall.Round(time.Millisecond), st.CPU.Round(time.Millisecond), st.Spans)
		if st.Spans != 1 {
			b.WriteString("s")
		}
		b.WriteString(")\n")
	}
	if len(c.corder) > 0 {
		names := append([]string(nil), c.corder...)
		sort.Strings(names)
		fmt.Fprintf(&b, "telemetry | counters:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-24s %d\n", name, c.counters[name])
		}
	}
	return b.String()
}
