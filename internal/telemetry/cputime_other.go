//go:build !unix

package telemetry

import "time"

// processCPU is unavailable without rusage support; stage CPU timings
// read as zero and only wall-clock times are meaningful.
func processCPU() time.Duration { return 0 }
