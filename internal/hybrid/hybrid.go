// Package hybrid implements the paper's Quasi-Octant/Spotter hybrid
// (§3.4), built to separate the effect of Spotter's probabilistic
// multilateration from its cubic-polynomial delay model: it uses
// Spotter's fitted µ/σ curves but Quasi-Octant's ring-based
// multilateration, with each ring spanning [µ−5σ, µ+5σ].
package hybrid

import (
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/spotter"
)

// SigmaSpan is how many standard deviations the ring extends on each
// side of the mean distance.
const SigmaSpan = 5.0

// Hybrid combines Spotter's delay model with ring multilateration.
type Hybrid struct {
	env   *geoloc.Env
	model *spotter.Model
}

// New builds a Hybrid instance from a fitted Spotter model.
func New(env *geoloc.Env, model *spotter.Model) *Hybrid {
	return &Hybrid{env: env, model: model}
}

// Name implements geoloc.Algorithm.
func (h *Hybrid) Name() string { return "Hybrid" }

// Rings returns the µ±5σ annulus constraints for a measurement set.
func (h *Hybrid) Rings(ms []geoloc.Measurement) []geo.Ring {
	ms = geoloc.Collapse(ms)
	rings := make([]geo.Ring, 0, len(ms))
	for _, m := range ms {
		t := m.OneWayMs()
		mu, sig := h.model.MuKm(t), h.model.SigmaKm(t)
		min := mu - SigmaSpan*sig
		if min < 0 {
			min = 0
		}
		max := mu + SigmaSpan*sig
		if max > geo.HalfEquatorKm {
			max = geo.HalfEquatorKm
		}
		rings = append(rings, geo.Ring{Center: m.Landmark, MinKm: min, MaxKm: max})
	}
	return rings
}

// Locate implements geoloc.Algorithm: the cells covered by the largest
// number of µ±5σ rings, restricted to the physical exclusions. Ring
// rasterization draws on the Env's shared landmark distance fields.
func (h *Hybrid) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	pad := h.env.PadKm()
	regions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		t := m.OneWayMs()
		mu, sig := h.model.MuKm(t), h.model.SigmaKm(t)
		r := geo.Ring{Center: m.Landmark, MinKm: mu - SigmaSpan*sig, MaxKm: mu + SigmaSpan*sig}
		if r.MaxKm > geo.HalfEquatorKm {
			r.MaxKm = geo.HalfEquatorKm
		}
		r.MaxKm += pad
		r.MinKm -= pad
		if r.MinKm < 0 {
			r.MinKm = 0
		}
		regions = append(regions, h.env.RingRegionFor(m.LandmarkID, r))
	}
	best := geoloc.IntersectOrArgmax(h.env.Grid, regions)
	return h.env.ApplyExclusions(best), nil
}

var _ geoloc.Algorithm = (*Hybrid)(nil)
