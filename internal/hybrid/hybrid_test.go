package hybrid

import (
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/spotter"
)

func TestLocate(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := spotter.Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, model)
	if alg.Name() != "Hybrid" {
		t.Error("name")
	}
	rng := rand.New(rand.NewSource(51))
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	ms := algtest.MeasureTarget(t, cons, "hyb-berlin", berlin, 25, rng)
	region, err := alg.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if region.Empty() {
		t.Fatal("empty Hybrid region")
	}
	c, _ := region.Centroid()
	if d := geo.DistanceKm(c, berlin); d > 5000 {
		t.Errorf("Hybrid centroid %.0f km from truth", d)
	}
}

func TestRingsSpanFiveSigma(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := spotter.Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, model)
	a := cons.Anchors()[0]
	ms := []geoloc.Measurement{{LandmarkID: a.Host.ID, Landmark: a.Host.Loc, RTTms: 80}}
	rings := alg.Rings(ms)
	if len(rings) != 1 {
		t.Fatalf("rings = %d", len(rings))
	}
	mu, sig := model.MuKm(40), model.SigmaKm(40)
	wantMin := mu - SigmaSpan*sig
	if wantMin < 0 {
		wantMin = 0
	}
	if rings[0].MinKm != wantMin {
		t.Errorf("ring min %f, want %f", rings[0].MinKm, wantMin)
	}
	wantMax := mu + SigmaSpan*sig
	if wantMax > geo.HalfEquatorKm {
		wantMax = geo.HalfEquatorKm
	}
	if rings[0].MaxKm != wantMax {
		t.Errorf("ring max %f, want %f", rings[0].MaxKm, wantMax)
	}
}

func TestLocateNoMeasurements(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := spotter.Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(env, model).Locate(nil); err != geoloc.ErrNoMeasurements {
		t.Errorf("err = %v", err)
	}
}

// TestLocateMaskToggle: Hybrid's σ-span rings run through
// Env.RingRegionFor, so the quantized mask cache must leave its regions
// byte-identical to the per-cell ring scan.
func TestLocateMaskToggle(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := spotter.Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, model)
	rng := rand.New(rand.NewSource(101))
	targets := map[string]geo.Point{
		"masktoggle-hyb-berlin": {Lat: 52.52, Lon: 13.405},
		"masktoggle-hyb-seoul":  {Lat: 37.57, Lon: 126.98},
	}
	for id, loc := range targets {
		ms := algtest.MeasureTarget(t, cons, id, loc, 25, rng)
		on, err := alg.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		saved := env.Masks
		env.Masks = nil
		off, err := alg.Locate(ms)
		env.Masks = saved
		if err != nil {
			t.Fatal(err)
		}
		if !on.Equal(off) {
			t.Fatalf("%s: mask-on region (%d cells) differs from mask-off (%d cells)", id, on.Count(), off.Count())
		}
	}
}
