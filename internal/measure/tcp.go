package measure

import (
	"context"
	"errors"
	"net"
	"strings"
	"syscall"
	"time"
)

// ConnectRTT measures one real TCP handshake round trip to addr
// (host:port) using the operating system's connect primitive, exactly
// like the paper's command-line tool: the timer stops when the
// connection is accepted or refused — both mean the second packet of the
// three-way handshake arrived — and the connection is closed without
// sending any data. Errors that originate from intermediate routers
// ("network unreachable" and friends) do not measure a full round trip
// and are reported as errors.
func ConnectRTT(ctx context.Context, addr string) (time.Duration, error) {
	var d net.Dialer
	//lint:allow simclock real TCP handshake timing — this is the paper's live command-line tool, not a simulated path
	start := time.Now()
	conn, err := d.DialContext(ctx, "tcp", addr)
	//lint:allow simclock real TCP handshake timing — wall clock is the measurement here
	elapsed := time.Since(start)
	if err == nil {
		_ = conn.Close()
		return elapsed, nil
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		// RST received: still one full round trip.
		return elapsed, nil
	}
	return 0, err
}

// MinConnectRTT takes up to attempts measurements and returns the
// fastest, skipping transient failures; it fails only when every attempt
// fails.
func MinConnectRTT(ctx context.Context, addr string, attempts int) (time.Duration, error) {
	return minRTT(ctx, addr, attempts, ConnectRTT)
}

// minRTT is MinConnectRTT over an injectable probe — the same min-of-k
// loop, parameterized so the loss/partial-failure paths are testable
// without a lossy real network.
func minRTT(ctx context.Context, addr string, attempts int, probe func(context.Context, string) (time.Duration, error)) (time.Duration, error) {
	if attempts < 1 {
		attempts = 3
	}
	var best time.Duration
	var lastErr error
	ok := false
	for i := 0; i < attempts; i++ {
		rtt, err := probe(ctx, addr)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if !ok || rtt < best {
			best, ok = rtt, true
		}
	}
	if !ok {
		if lastErr == nil {
			lastErr = errors.New("measure: no successful attempts")
		}
		return 0, lastErr
	}
	return best, nil
}

// IsRefused reports whether an error is the connection-refused condition
// that still constitutes a valid round-trip measurement. Exposed for
// callers shelling the primitive directly.
func IsRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		(err != nil && strings.Contains(err.Error(), "connection refused"))
}
