package measure

import (
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
)

func TestAdversaryDecoyShiftsApparentLocation(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv-proxy", geo.Point{Lat: 52.37, Lon: 4.89}) // really Amsterdam
	decoy := geo.Point{Lat: 35.68, Lon: 139.65}                                      // pretends Tokyo
	rng := rand.New(rand.NewSource(8))

	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	adv := &AdversarialProxiedTool{Inner: inner, Decoy: &decoy}

	lms := cons.Anchors()[:30]
	honest := inner
	var honestErr, forgedErr float64
	n := 0
	for _, lm := range lms {
		h, err := honest.Measure("", lm, rng)
		if err != nil {
			continue
		}
		f, err := adv.MeasureLandmark(lm, rng)
		if err != nil {
			continue
		}
		clientLeg, _ := cons.Net().BaseRTTMs(client, proxy)
		trueDist := geo.DistanceKm(geo.Point{Lat: 52.37, Lon: 4.89}, lm.Host.Loc)
		decoyDist := geo.DistanceKm(decoy, lm.Host.Loc)
		// Honest apparent proxy-leg one-way distance at 120 km/ms.
		honestKm := geo.OneWayMs(h.RTTms-clientLeg) * 120
		forgedKm := geo.OneWayMs(f.RTTms-clientLeg) * 120
		honestErr += abs(honestKm - trueDist)
		forgedErr += abs(forgedKm - decoyDist)
		n++
	}
	if n < 10 {
		t.Fatalf("only %d measurements", n)
	}
	// The forged measurements should track the decoy geometry at least
	// as consistently as honest ones track the truth.
	if forgedErr/float64(n) > 3000 {
		t.Errorf("forged measurements mean deviation from decoy geometry %.0f km", forgedErr/float64(n))
	}
}

func TestAdversaryExtraDelay(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv2-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv2-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy, Attempts: 1}
	adv := &AdversarialProxiedTool{Inner: inner, ExtraDelayMs: 100}
	lm := cons.Anchors()[0]

	rng := rand.New(rand.NewSource(9))
	base, err := inner.Measure("", lm, rng)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := adv.MeasureLandmark(lm, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Not comparable sample-to-sample (different jitter draws), but the
	// 100 ms padding must dominate.
	if forged.RTTms < base.RTTms+50 {
		t.Errorf("extra delay not applied: %.1f vs %.1f", forged.RTTms, base.RTTms)
	}
}

func TestAdversaryMeasureAll(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv3-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv3-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	decoy := geo.Point{Lat: -33.87, Lon: 151.21}
	adv := &AdversarialProxiedTool{Inner: inner, Decoy: &decoy}
	samples := adv.MeasureAll(cons.Anchors()[:10], rand.New(rand.NewSource(10)))
	if len(samples) != 10 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if s.RTTms <= 0 {
			t.Fatal("bad sample")
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
