package measure

import (
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
)

func TestAdversaryDecoyShiftsApparentLocation(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv-proxy", geo.Point{Lat: 52.37, Lon: 4.89}) // really Amsterdam
	decoy := geo.Point{Lat: 35.68, Lon: 139.65}                                      // pretends Tokyo
	rng := rand.New(rand.NewSource(8))

	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	adv := &AdversarialProxiedTool{Inner: inner, Decoy: &decoy}

	lms := cons.Anchors()[:30]
	honest := inner
	var honestErr, forgedErr float64
	n := 0
	for _, lm := range lms {
		h, err := honest.Measure("", lm, rng)
		if err != nil {
			continue
		}
		f, err := adv.MeasureLandmark(lm, rng)
		if err != nil {
			continue
		}
		clientLeg, _ := cons.Net().BaseRTTMs(client, proxy)
		trueDist := geo.DistanceKm(geo.Point{Lat: 52.37, Lon: 4.89}, lm.Host.Loc)
		decoyDist := geo.DistanceKm(decoy, lm.Host.Loc)
		// Honest apparent proxy-leg one-way distance at 120 km/ms.
		honestKm := geo.OneWayMs(h.RTTms-clientLeg) * 120
		forgedKm := geo.OneWayMs(f.RTTms-clientLeg) * 120
		honestErr += abs(honestKm - trueDist)
		forgedErr += abs(forgedKm - decoyDist)
		n++
	}
	if n < 10 {
		t.Fatalf("only %d measurements", n)
	}
	// The forged measurements should track the decoy geometry at least
	// as consistently as honest ones track the truth.
	if forgedErr/float64(n) > 3000 {
		t.Errorf("forged measurements mean deviation from decoy geometry %.0f km", forgedErr/float64(n))
	}
}

func TestAdversaryExtraDelay(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv2-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv2-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy, Attempts: 1}
	adv := &AdversarialProxiedTool{Inner: inner, ExtraDelayMs: 100}
	lm := cons.Anchors()[0]

	rng := rand.New(rand.NewSource(9))
	base, err := inner.Measure("", lm, rng)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := adv.MeasureLandmark(lm, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Not comparable sample-to-sample (different jitter draws), but the
	// 100 ms padding must dominate.
	if forged.RTTms < base.RTTms+50 {
		t.Errorf("extra delay not applied: %.1f vs %.1f", forged.RTTms, base.RTTms)
	}
}

func TestAdversaryMeasureAll(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv3-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv3-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	decoy := geo.Point{Lat: -33.87, Lon: 151.21}
	adv := &AdversarialProxiedTool{Inner: inner, Decoy: &decoy}
	samples := adv.MeasureAll(cons.Anchors()[:10], rand.New(rand.NewSource(10)))
	if len(samples) != 10 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if s.RTTms <= 0 {
			t.Fatal("bad sample")
		}
	}
}

// TestAdversaryForgedCentroidNearDecoy multilaterates the forged
// measurements over a candidate grid (the anchors' own locations plus
// the decoy and the truth) and asserts the best-fitting candidate lands
// within tolerance of the decoy — the attacker's goal state.
func TestAdversaryForgedCentroidNearDecoy(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv4-client", geo.Point{Lat: 50.11, Lon: 8.68})
	trueLoc := geo.Point{Lat: 52.37, Lon: 4.89}
	proxy := addTarget(t, cons.Net(), "adv4-proxy", trueLoc)
	decoy := geo.Point{Lat: 35.68, Lon: 139.65}
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	adv := &AdversarialProxiedTool{Inner: inner, Decoy: &decoy}
	rng := rand.New(rand.NewSource(44))
	clientLeg, _ := cons.Net().BaseRTTMs(client, proxy)

	lms := cons.Anchors()[:40]
	type obs struct {
		at geo.Point
		km float64
	}
	var observations []obs
	for _, lm := range lms {
		s, err := adv.MeasureLandmark(lm, rng)
		if err != nil {
			continue
		}
		observations = append(observations, obs{lm.Host.Loc, geo.OneWayMs(s.RTTms-clientLeg) * 120})
	}
	if len(observations) < 20 {
		t.Fatalf("only %d measurements", len(observations))
	}
	candidates := []geo.Point{decoy, trueLoc}
	for _, lm := range lms {
		candidates = append(candidates, lm.Host.Loc)
	}
	best, bestCost := geo.Point{}, 0.0
	for i, c := range candidates {
		cost := 0.0
		for _, o := range observations {
			cost += abs(geo.DistanceKm(c, o.at) - o.km)
		}
		if i == 0 || cost < bestCost {
			best, bestCost = c, cost
		}
	}
	if d := geo.DistanceKm(best, decoy); d > 1000 {
		t.Errorf("forged measurements multilaterate to %+v, %.0f km from decoy", best, d)
	}
}

// TestAdversaryClientLegFloor asserts the invariant every attack mode
// must respect: the client talks to the proxy directly, so no forged
// RTT can undercut the real client↔proxy time.
func TestAdversaryClientLegFloor(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv5-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv5-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	decoy := geo.Point{Lat: 1.35, Lon: 103.82}
	near := geo.Point{Lat: 48.8, Lon: 2.4} // decoy on top of the proxy: max deflation pressure
	clientLeg, _ := cons.Net().BaseRTTMs(client, proxy)

	cases := []struct {
		name string
		tool AdversarialProxiedTool
	}{
		{"decoy-full", AdversarialProxiedTool{Decoy: &decoy}},
		{"decoy-near", AdversarialProxiedTool{Decoy: &near}},
		{"decoy-blend", AdversarialProxiedTool{Decoy: &near, Aggressiveness: 0.6}},
		{"inflate", AdversarialProxiedTool{InflateMs: 80}},
		{"deflate-full", AdversarialProxiedTool{DeflateKeep: 0.05, TargetFraction: 1}},
		{"deflate-blend", AdversarialProxiedTool{DeflateKeep: 0.25, Aggressiveness: 0.4}},
		{"delay", AdversarialProxiedTool{ExtraDelayMs: 150}},
		{"combined", AdversarialProxiedTool{Decoy: &near, DeflateKeep: 0.1, TargetFraction: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tool := tc.tool
			tool.Inner = &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
			rng := rand.New(rand.NewSource(45))
			for _, lm := range cons.Anchors()[:30] {
				s, err := tool.MeasureLandmark(lm, rng)
				if err != nil {
					continue
				}
				if s.RTTms < clientLeg {
					t.Fatalf("%s: forged RTT %.3f ms undercuts client leg %.3f ms at %s",
						tc.name, s.RTTms, clientLeg, lm.Host.ID)
				}
			}
		})
	}
}

// TestAdversaryExtraDelayConstantShift pins the Gill-style expectation:
// with ExtraDelayMs alone, identical RNG streams produce measurements
// offset by exactly the configured constant (the attack consumes no
// extra draws).
func TestAdversaryExtraDelayConstantShift(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv6-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv6-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	const shift = 100.0
	adv := &AdversarialProxiedTool{Inner: inner, ExtraDelayMs: shift}

	honestRng := rand.New(rand.NewSource(46))
	forgedRng := rand.New(rand.NewSource(46))
	for _, lm := range cons.Anchors()[:25] {
		h, errH := inner.Measure("", lm, honestRng)
		f, errF := adv.MeasureLandmark(lm, forgedRng)
		if (errH == nil) != (errF == nil) {
			t.Fatalf("error divergence at %s: %v vs %v", lm.Host.ID, errH, errF)
		}
		if errH != nil {
			continue
		}
		if got := f.RTTms - h.RTTms; abs(got-shift) > 1e-9 {
			t.Errorf("%s: shift %.6f ms, want exactly %.0f", lm.Host.ID, got, shift)
		}
	}
}

// TestAdversarySelectiveTargeting asserts the selective attacks hit
// exactly the hash-chosen subset: targeted landmarks move, untargeted
// landmarks' measurements are byte-identical to honest ones.
func TestAdversarySelectiveTargeting(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "adv7-client", geo.Point{Lat: 50.11, Lon: 8.68})
	proxy := addTarget(t, cons.Net(), "adv7-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	inner := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}

	cases := []struct {
		name string
		tool AdversarialProxiedTool
		dir  float64 // expected sign of (forged − honest) on targets
	}{
		{"inflate", AdversarialProxiedTool{InflateMs: 80, SelectSeed: 3}, +1},
		{"deflate", AdversarialProxiedTool{DeflateKeep: 0.2, SelectSeed: 3}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tool := tc.tool
			tool.Inner = inner
			honestRng := rand.New(rand.NewSource(47))
			forgedRng := rand.New(rand.NewSource(47))
			var targeted, spared int
			for _, lm := range cons.Anchors()[:30] {
				h, errH := inner.Measure("", lm, honestRng)
				f, errF := tool.MeasureLandmark(lm, forgedRng)
				if errH != nil || errF != nil {
					continue
				}
				if tool.Targeted(lm.Host.ID) {
					targeted++
					if tc.dir*(f.RTTms-h.RTTms) <= 0 {
						t.Errorf("targeted %s unmoved: honest %.3f forged %.3f", lm.Host.ID, h.RTTms, f.RTTms)
					}
				} else {
					spared++
					if f.RTTms != h.RTTms {
						t.Errorf("untargeted %s perturbed: honest %.6f forged %.6f", lm.Host.ID, h.RTTms, f.RTTms)
					}
				}
			}
			if targeted < 5 || spared < 5 {
				t.Fatalf("degenerate split: %d targeted, %d spared", targeted, spared)
			}
		})
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
