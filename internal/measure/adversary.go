package measure

import (
	"fmt"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

// AdversarialProxiedTool wraps a ProxiedTool with the attacks the
// paper's Discussion (§8) warns about. A proxy sits in the middle of
// every measurement, so it can manipulate apparent RTTs in both
// directions more easily than the end-host adversaries of Gill et al.
// and Abdou et al.:
//
//   - selective *added* delay per landmark displaces the prediction
//     region away from the proxy's true location;
//   - forged early SYN-ACKs — trivial for the proxy, which sees the SYNs
//     and needs no sequence-number guessing — *shorten* apparent RTTs,
//     pulling the prediction toward a chosen decoy.
//
// The Decoy policy implements the natural combined strategy: make every
// landmark's apparent proxy↔landmark time look as if the proxy were at
// the decoy location. InflateMs and DeflateKeep implement the selective
// per-landmark variants of Abdou's delay-manipulation taxonomy, and
// ExtraDelayMs the cruder Gill-style constant shift. Whatever the
// strategy, the client leg cannot be forged below its real value — the
// client talks to the proxy directly — so every manipulated RTT is
// floored at the measured client↔proxy time.
type AdversarialProxiedTool struct {
	Inner *ProxiedTool

	// Decoy, when set, rewrites each apparent proxy↔landmark RTT to the
	// time a proxy at the decoy location would plausibly produce
	// (decoy–landmark great-circle distance at the pretend speed).
	Decoy *geo.Point
	// PretendSpeedKmPerMs is the speed the forged delays imply
	// (default: 120 km/ms, a plausible terrestrial path speed; using the
	// full 200 km/ms would look suspiciously fast).
	PretendSpeedKmPerMs float64
	// ExtraDelayMs adds a constant to every measurement instead of (or
	// on top of) the decoy rewrite — the cruder Gill et al. attack.
	ExtraDelayMs float64

	// Aggressiveness blends the decoy rewrite with the honest
	// observation: 1 replaces the apparent RTT outright, 0.5 moves it
	// halfway toward the forgery. Zero (the historical zero value)
	// means full aggressiveness, so existing decoy configurations are
	// unchanged.
	Aggressiveness float64
	// InflateMs, when positive, adds that many milliseconds to the
	// RTTs of the targeted landmark subset — selective inflation.
	InflateMs float64
	// DeflateKeep, when in (0, 1), shrinks the targeted landmarks'
	// proxy↔landmark component to that fraction of its honest value —
	// selective early SYN-ACKs. The client-leg floor still holds.
	DeflateKeep float64
	// TargetFraction is the fraction of landmarks the selective attacks
	// (InflateMs, DeflateKeep) hit, chosen by a pure hash of
	// (SelectSeed, landmark ID) so the targeted set is deterministic
	// and independent of measurement order. Zero means half.
	TargetFraction float64
	// SelectSeed seeds the target-selection hash.
	SelectSeed int64
}

func (a *AdversarialProxiedTool) pretendSpeed() float64 {
	if a.PretendSpeedKmPerMs <= 0 {
		return 120
	}
	return a.PretendSpeedKmPerMs
}

func (a *AdversarialProxiedTool) aggressiveness() float64 {
	switch {
	case a.Aggressiveness <= 0:
		return 1
	case a.Aggressiveness > 1:
		return 1
	default:
		return a.Aggressiveness
	}
}

// Targeted reports whether the selective attacks hit this landmark: a
// pure function of (SelectSeed, id), never of the RNG, so the attacked
// subset is identical at any concurrency and in any measurement order.
func (a *AdversarialProxiedTool) Targeted(id netsim.HostID) bool {
	f := a.TargetFraction
	if f <= 0 {
		f = 0.5
	}
	return hashFraction(a.SelectSeed, "advtarget", string(id)) < f
}

// MeasureLandmark performs one manipulated measurement.
func (a *AdversarialProxiedTool) MeasureLandmark(lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	s, err := a.Inner.Measure("", lm, rng)
	if err != nil {
		return Sample{}, err
	}
	// The client leg cannot be forged below its real value — the client
	// talks to the proxy directly — so the adversary manipulates only
	// the proxy↔landmark component.
	clientLeg, err := a.Inner.Net.BaseRTTMs(a.Inner.Client, a.Inner.Proxy)
	if err != nil {
		return Sample{}, err
	}
	if a.Decoy != nil {
		d := geo.DistanceKm(*a.Decoy, lm.Host.Loc)
		forged := clientLeg + 2*d/a.pretendSpeed() + 2 + rng.Float64()*3
		s.RTTms += a.aggressiveness() * (forged - s.RTTms)
	}
	if a.InflateMs > 0 && a.Targeted(lm.Host.ID) {
		s.RTTms += a.aggressiveness() * a.InflateMs
	}
	if a.DeflateKeep > 0 && a.DeflateKeep < 1 && a.Targeted(lm.Host.ID) {
		keep := 1 - a.aggressiveness()*(1-a.DeflateKeep)
		s.RTTms = clientLeg + keep*(s.RTTms-clientLeg)
	}
	s.RTTms += a.ExtraDelayMs
	if s.RTTms < clientLeg {
		s.RTTms = clientLeg
	}
	return s, nil
}

// Measure implements Tool, so the adversarial tool drops into TwoPhase,
// Session and Batch exactly where the honest ProxiedTool would.
func (a *AdversarialProxiedTool) Measure(_ netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	return a.MeasureLandmark(lm, rng)
}

var _ Tool = (*AdversarialProxiedTool)(nil)

// MeasureAll measures every given landmark with the manipulated tool.
func (a *AdversarialProxiedTool) MeasureAll(lms []*atlas.Landmark, rng *rand.Rand) []Sample {
	var out []Sample
	for _, lm := range lms {
		s, err := a.MeasureLandmark(lm, rng)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

// hashFraction maps (seed, kind, id) to a uniform [0, 1) draw via the
// same FNV-1a host hash the fault layer uses for its pure structural
// draws — never the measurement RNG, so attack membership is a property
// of the configuration, not of scheduling. As in netsim's Outage, the
// hash seeds a throwaway generator rather than being used as raw bits:
// FNV's avalanche on near-identical IDs is too weak for direct use.
func hashFraction(seed int64, kind, id string) float64 {
	h := netsim.HashID(netsim.HostID(fmt.Sprintf("%s|%d|%s", kind, seed, id)))
	return rand.New(rand.NewSource(int64(h))).Float64()
}
