package measure

import (
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
)

// AdversarialProxiedTool wraps a ProxiedTool with the attacks the
// paper's Discussion (§8) warns about. A proxy sits in the middle of
// every measurement, so it can manipulate apparent RTTs in both
// directions more easily than the end-host adversaries of Gill et al.
// and Abdou et al.:
//
//   - selective *added* delay per landmark displaces the prediction
//     region away from the proxy's true location;
//   - forged early SYN-ACKs — trivial for the proxy, which sees the SYNs
//     and needs no sequence-number guessing — *shorten* apparent RTTs,
//     pulling the prediction toward a chosen decoy.
//
// The Decoy policy implements the natural combined strategy: make every
// landmark's apparent proxy↔landmark time look as if the proxy were at
// the decoy location.
type AdversarialProxiedTool struct {
	Inner *ProxiedTool

	// Decoy, when set, rewrites each apparent proxy↔landmark RTT to the
	// time a proxy at the decoy location would plausibly produce
	// (decoy–landmark great-circle distance at the pretend speed).
	Decoy *geo.Point
	// PretendSpeedKmPerMs is the speed the forged delays imply
	// (default: 120 km/ms, a plausible terrestrial path speed; using the
	// full 200 km/ms would look suspiciously fast).
	PretendSpeedKmPerMs float64
	// ExtraDelayMs adds a constant to every measurement instead of (or
	// on top of) the decoy rewrite — the cruder Gill et al. attack.
	ExtraDelayMs float64
}

func (a *AdversarialProxiedTool) pretendSpeed() float64 {
	if a.PretendSpeedKmPerMs <= 0 {
		return 120
	}
	return a.PretendSpeedKmPerMs
}

// MeasureLandmark performs one manipulated measurement.
func (a *AdversarialProxiedTool) MeasureLandmark(lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	s, err := a.Inner.Measure("", lm, rng)
	if err != nil {
		return Sample{}, err
	}
	// The client leg cannot be forged below its real value — the client
	// talks to the proxy directly — so the adversary manipulates only
	// the proxy↔landmark component.
	clientLeg, err := a.Inner.Net.BaseRTTMs(a.Inner.Client, a.Inner.Proxy)
	if err != nil {
		return Sample{}, err
	}
	if a.Decoy != nil {
		d := geo.DistanceKm(*a.Decoy, lm.Host.Loc)
		forged := 2*d/a.pretendSpeed() + 2 + rng.Float64()*3
		s.RTTms = clientLeg + forged
	}
	s.RTTms += a.ExtraDelayMs
	return s, nil
}

// MeasureAll measures every given landmark with the manipulated tool.
func (a *AdversarialProxiedTool) MeasureAll(lms []*atlas.Landmark, rng *rand.Rand) []Sample {
	var out []Sample
	for _, lm := range lms {
		s, err := a.MeasureLandmark(lm, rng)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}
