package measure

import (
	"bytes"
	"strings"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
)

func TestMeasurementsRoundTrip(t *testing.T) {
	in := []geoloc.Measurement{
		{LandmarkID: "fra", Landmark: geo.Point{Lat: 50.11, Lon: 8.68}, RTTms: 21.5},
		{LandmarkID: "syd", Landmark: geo.Point{Lat: -33.87, Lon: 151.21}, RTTms: 310.25},
	}
	var buf bytes.Buffer
	if err := WriteMeasurements(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMeasurements(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost measurements: %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("measurement %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestReadMeasurementsValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"garbage", "not json"},
		{"bad-lat", `[{"landmark":"a","lat":91,"lon":0,"rtt_ms":5}]`},
		{"bad-rtt", `[{"landmark":"a","lat":0,"lon":0,"rtt_ms":0}]`},
		{"negative-rtt", `[{"landmark":"a","lat":0,"lon":0,"rtt_ms":-3}]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadMeasurements(strings.NewReader(c.json)); err == nil {
				t.Error("want error")
			}
		})
	}
	// Empty array is fine.
	ms, err := ReadMeasurements(strings.NewReader("[]"))
	if err != nil || len(ms) != 0 {
		t.Errorf("empty array: %v, %v", ms, err)
	}
}

func TestWireFormatMatchesGeolocateCmd(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMeasurements(&buf, []geoloc.Measurement{
		{LandmarkID: "x", Landmark: geo.Point{Lat: 1, Lon: 2}, RTTms: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"landmark"`, `"lat"`, `"lon"`, `"rtt_ms"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("wire format missing %s: %s", key, buf.String())
		}
	}
}
