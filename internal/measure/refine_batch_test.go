package measure

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"activegeo/internal/algtest"
	"activegeo/internal/cbg"
	"activegeo/internal/cbgpp"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/netsim"
)

func refinerFixture(t *testing.T) (*Refiner, netsim.HostID, geo.Point) {
	t.Helper()
	cons, env := algtest.Fixture(t)
	cal, err := cbg.Calibrate(cons, cbg.Options{Slowline: true})
	if err != nil {
		t.Fatal(err)
	}
	alg := cbgpp.New(env, cal, cbgpp.Options{})
	loc := geo.Point{Lat: 48.86, Lon: 2.35} // Paris
	from := addTarget(t, cons.Net(), "refine-paris", loc)
	return &Refiner{
		Cons:   cons,
		Tool:   &CLITool{Net: cons.Net()},
		Locate: func(ms []geoloc.Measurement) (*grid.Region, error) { return alg.Locate(ms) },
	}, from, loc
}

func TestRefinerShrinksRegion(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	r, from, loc := refinerFixture(t)
	rng := rand.New(rand.NewSource(42))

	// Start from a deliberately sparse initial set: phase-1-style
	// far-flung anchors only.
	tp := &TwoPhase{Cons: cons, Tool: r.Tool, SecondPhase: 5}
	initial, err := tp.Run(from, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(from, initial.Measurements(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AreaHistory) < 2 {
		t.Fatalf("no refinement rounds ran: history %v", res.AreaHistory)
	}
	first, last := res.AreaHistory[0], res.AreaHistory[len(res.AreaHistory)-1]
	if last > first {
		t.Errorf("refinement grew the region: %.0f → %.0f", first, last)
	}
	if last < first*0.9 {
		t.Logf("refinement shrank region %.0f → %.0f km² in %d rounds", first, last, res.Rounds)
	}
	// Refined region must still cover the truth (it is CBG++-based).
	if d := res.Region.DistanceToPointKm(loc); d > 300 {
		t.Errorf("refined region misses truth by %.0f km", d)
	}
}

func TestRefinerTargetArea(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	r, from, _ := refinerFixture(t)
	r.TargetAreaKm2 = 1e12 // absurdly generous: met immediately
	rng := rand.New(rand.NewSource(43))
	tp := &TwoPhase{Cons: cons, Tool: r.Tool}
	initial, err := tp.Run(from, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(from, initial.Measurements(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("target met at start but %d rounds ran", res.Rounds)
	}
}

func TestRefinerNoInitialRegion(t *testing.T) {
	r, from, _ := refinerFixture(t)
	r.Locate = func(ms []geoloc.Measurement) (*grid.Region, error) {
		return nil, geoloc.ErrNoMeasurements
	}
	if _, err := r.Run(from, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error when localization fails")
	}
}

func TestBatchDeterministicAndOrdered(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "batch-client", geo.Point{Lat: 50.11, Lon: 8.68})
	var proxies []netsim.HostID
	for i, city := range []geo.Point{
		{Lat: 52.37, Lon: 4.89}, {Lat: 48.86, Lon: 2.35}, {Lat: 40.71, Lon: -74.01},
		{Lat: 35.68, Lon: 139.65}, {Lat: 51.51, Lon: -0.13},
	} {
		id := addTarget(t, cons.Net(), "batch-proxy-"+string(rune('a'+i)), city)
		proxies = append(proxies, id)
	}
	b := &Batch{Cons: cons, Client: client, Seed: 99, Concurrency: 3}
	ctx := context.Background()
	r1 := b.Run(ctx, proxies)
	r2 := b.Run(ctx, proxies)
	if len(r1) != len(proxies) {
		t.Fatalf("results = %d", len(r1))
	}
	for i := range r1 {
		if r1[i].Proxy != proxies[i] {
			t.Fatalf("result %d out of order", i)
		}
		if r1[i].Err != nil {
			t.Fatalf("proxy %s failed: %v", r1[i].Proxy, r1[i].Err)
		}
		// Determinism across runs regardless of goroutine scheduling.
		m1, m2 := r1[i].Result.Measurements(), r2[i].Result.Measurements()
		if len(m1) != len(m2) {
			t.Fatalf("proxy %s: %d vs %d measurements across runs", r1[i].Proxy, len(m1), len(m2))
		}
		for j := range m1 {
			if m1[j] != m2[j] {
				t.Fatalf("proxy %s: measurement %d differs across runs", r1[i].Proxy, j)
			}
		}
	}
	if got := len(Succeeded(r1)); got != len(proxies) {
		t.Errorf("Succeeded = %d", got)
	}
	SortByProxy(r1)
	for i := 1; i < len(r1); i++ {
		if r1[i-1].Proxy > r1[i].Proxy {
			t.Fatal("not sorted")
		}
	}
}

func TestBatchCancellation(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "batch-cancel-client", geo.Point{Lat: 50.11, Lon: 8.68})
	var proxies []netsim.HostID
	for i := 0; i < 20; i++ {
		id := addTarget(t, cons.Net(), "batch-cancel-"+string(rune('a'+i)), geo.Point{Lat: 50, Lon: float64(i)})
		proxies = append(proxies, id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting: every proxy must report ctx.Err()
	b := &Batch{Cons: cons, Client: client, Seed: 1, Concurrency: 2}
	results := b.Run(ctx, proxies)
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("proxy %d (%s): err = %v, want context.Canceled", i, r.Proxy, r.Err)
		}
	}
	_ = time.Now()
}

func TestBatchCancellationMidBatchIsCleanCutoff(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "batch-midcancel-client", geo.Point{Lat: 50.11, Lon: 8.68})
	var proxies []netsim.HostID
	for i := 0; i < 24; i++ {
		id := addTarget(t, cons.Net(), "batch-midcancel-"+string(rune('a'+i)), geo.Point{Lat: 48, Lon: float64(i)})
		proxies = append(proxies, id)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := &Batch{Cons: cons, Client: client, Seed: 7, Concurrency: 2}
	b.OnProgress = func(done, total int) {
		if done == 2 {
			cancel() // cancel while most of the batch is still pending
		}
	}
	results := b.Run(ctx, proxies)
	// Cancellation must be a clean cutoff: once any proxy reports
	// ctx.Err() at dispatch, every later proxy must too — no proxy after
	// the cutoff may have been measured.
	firstCancelled := -1
	for i, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			firstCancelled = i
			break
		}
	}
	if firstCancelled == -1 {
		t.Fatal("no proxy observed the mid-batch cancellation")
	}
	for i := firstCancelled; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("proxy %d (%s) was dispatched after the cancellation cutoff: err = %v",
				i, results[i].Proxy, results[i].Err)
		}
	}
}
