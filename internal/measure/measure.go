// Package measure implements the paper's measurement machinery (§4):
//
//   - the command-line tool: a TCP connection to port 80, timed from SYN
//     to SYN-ACK/RST, measuring exactly one round trip;
//   - the Web-based tool: fetch() of an HTTPS URL at port 80, measuring
//     one or two round trips depending on whether the landmark listens on
//     port 80 — plus the heavy Windows/browser noise quantified in §4.3;
//   - the two-phase procedure (§4.1): three anchors per continent to
//     deduce the continent, then 25 random same-continent landmarks;
//   - the proxy adaptation (§5.3): measuring through a proxy and removing
//     the client↔proxy RTT estimated by pinging oneself through the
//     proxy, A = B − ηC.
//
// A parallel real-network implementation of the command-line tool's
// primitive (TCP connect RTT over package net) lives in tcp.go.
package measure

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// Sample is one raw tool observation against a landmark.
type Sample struct {
	LandmarkID netsim.HostID
	Landmark   geo.Point
	RTTms      float64
	// Trips is how many round trips the observation actually spans: the
	// CLI tool always measures 1; the web tool measures 1 or 2 and
	// cannot tell which (§4.2), recorded here as 2 when the landmark
	// listened on port 80 — test code may inspect it, algorithms must
	// not.
	Trips int
}

// Measurements converts samples to algorithm inputs.
func Measurements(samples []Sample) []geoloc.Measurement {
	out := make([]geoloc.Measurement, len(samples))
	for i, s := range samples {
		out[i] = geoloc.Measurement{
			LandmarkID: s.LandmarkID,
			Landmark:   s.Landmark,
			RTTms:      s.RTTms,
		}
	}
	return out
}

// Tool measures the round-trip time from a client host to a landmark.
type Tool interface {
	Measure(from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error)
}

// HTTPPort is the TCP port both tools probe: the usual port for
// unencrypted HTTP, the only port reliably unfiltered (§4.2).
const HTTPPort = 80

// CLITool is the standalone command-line measurement program: a TCP
// connection to port 80, timed to the first round trip, repeated
// Attempts times keeping the minimum.
type CLITool struct {
	Net      *netsim.Network
	Attempts int // default 3
	// Clock, when set, is advanced by the simulated time each probe
	// consumes (nil pins the session to time zero).
	Clock *netsim.Clock
}

func (t *CLITool) attempts() int {
	if t.Attempts < 1 {
		return 3
	}
	return t.Attempts
}

// Measure implements Tool.
func (t *CLITool) Measure(from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	best := -1.0
	for i := 0; i < t.attempts(); i++ {
		rtt, err := t.Net.Probe(from, lm.Host.ID, HTTPPort, rng, t.Clock)
		if err != nil {
			return Sample{}, fmt.Errorf("measure: cli %s→%s: %w", from, lm.Host.ID, err)
		}
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	return Sample{LandmarkID: lm.Host.ID, Landmark: lm.Host.Loc, RTTms: best, Trips: 1}, nil
}

// OS is the client operating system of the web tool; §4.3 found it
// changes the noise floor dramatically.
type OS int

// Supported client platforms.
const (
	Linux OS = iota
	Windows
)

// Browser shapes the web tool's high-outlier behaviour (§4.3, Figure 6:
// outlier magnitude depends primarily on the browser).
type Browser int

// Browsers exercised in the paper's Figures 4–6.
const (
	Chrome Browser = iota
	Firefox
	Edge
)

// webNoise returns per-measurement additive noise and the high-outlier
// distribution parameters for an OS/browser combination, in ms.
func webNoise(os OS, br Browser) (jitterMs, outlierProb, outlierMeanMs float64) {
	if os == Linux {
		// Modern JS engines measure almost as cleanly as the CLI tool
		// ("a testament to the efficiency of modern JavaScript
		// interpreters").
		return 1.5, 0, 0
	}
	switch br {
	case Chrome:
		return 18, 0.06, 700
	case Firefox:
		return 22, 0.08, 1100
	default: // Edge
		return 25, 0.10, 1600
	}
}

// WebTool is the browser-based measurement application. It requests
// https:// on port 80; if the landmark listens there, the browser only
// reports failure after the TLS ClientHello triggers a protocol error —
// a second round trip the tool cannot distinguish from the first.
type WebTool struct {
	Net      *netsim.Network
	OS       OS
	Browser  Browser
	Attempts int // default 3
	// Clock, when set, is advanced by the simulated time each probe
	// consumes (nil pins the session to time zero).
	Clock *netsim.Clock
}

func (t *WebTool) attempts() int {
	if t.Attempts < 1 {
		return 3
	}
	return t.Attempts
}

// Measure implements Tool.
func (t *WebTool) Measure(from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	jitter, outlierProb, outlierMean := webNoise(t.OS, t.Browser)
	trips := 1
	if lm.Host.ListensHTTP {
		trips = 2
	}
	best := -1.0
	for i := 0; i < t.attempts(); i++ {
		rtt, err := t.Net.Probe(from, lm.Host.ID, HTTPPort, rng, t.Clock)
		if err != nil {
			return Sample{}, fmt.Errorf("measure: web %s→%s: %w", from, lm.Host.ID, err)
		}
		if trips == 2 {
			extra, err := t.Net.Probe(from, lm.Host.ID, HTTPPort, rng, t.Clock)
			if err != nil {
				return Sample{}, fmt.Errorf("measure: web %s→%s: %w", from, lm.Host.ID, err)
			}
			rtt += extra
		}
		rtt += rng.ExpFloat64() * jitter
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	// High outliers survive even min-of-k on Windows: they are a
	// property of the browser's scheduling, not of single packets.
	if outlierProb > 0 && rng.Float64() < outlierProb {
		best += outlierMean * (0.5 + rng.ExpFloat64())
	}
	return Sample{LandmarkID: lm.Host.ID, Landmark: lm.Host.Loc, RTTms: best, Trips: trips}, nil
}

// TwoPhase is the §4.1 measurement procedure.
type TwoPhase struct {
	Cons *atlas.Constellation
	Tool Tool
	// PerContinent is the number of anchors measured per continent in
	// phase one (paper: 3).
	PerContinent int
	// SecondPhase is the number of same-continent landmarks measured in
	// phase two (paper: 25).
	SecondPhase int
	// Session, when set, routes every landmark measurement through the
	// resilient path (retries, backoff, deadline budgets, degradation
	// accounting); nil keeps the historical fault-free code path.
	Session *Session
}

// Result is a completed two-phase measurement.
type Result struct {
	Continent worldmap.Continent
	Phase1    []Sample
	Phase2    []Sample
	// Deg is the degradation ledger of a resilient campaign (nil when
	// the measurement ran on the fault-free path).
	Deg *Degradation
}

// Samples returns both phases' samples.
func (r *Result) Samples() []Sample {
	out := make([]Sample, 0, len(r.Phase1)+len(r.Phase2))
	out = append(out, r.Phase1...)
	out = append(out, r.Phase2...)
	return out
}

// Measurements returns both phases as algorithm inputs.
func (r *Result) Measurements() []geoloc.Measurement {
	return Measurements(r.Samples())
}

// ErrNoLandmarks is returned when the constellation has no usable
// landmarks for a phase.
var ErrNoLandmarks = errors.New("measure: no usable landmarks")

// Run executes the two-phase procedure for a client (or proxy) host.
func (tp *TwoPhase) Run(from netsim.HostID, rng *rand.Rand) (*Result, error) {
	perCont := tp.PerContinent
	if perCont < 1 {
		perCont = 3
	}
	second := tp.SecondPhase
	if second < 1 {
		second = 25
	}
	byCont := tp.Cons.ByContinent()

	// Phase one: a few widely dispersed anchors per continent.
	res := &Result{}
	bestRTT := -1.0
	bestCont := worldmap.Europe
	for _, cont := range worldmap.AllContinents() {
		lms := anchorsOf(byCont[cont])
		if len(lms) == 0 {
			continue
		}
		for _, i := range rng.Perm(len(lms))[:min(perCont, len(lms))] {
			s, err := tp.measure(from, lms[i], rng)
			if err != nil {
				continue // unreachable landmark: skip, like the real tool
			}
			res.Phase1 = append(res.Phase1, s)
			if bestRTT < 0 || s.RTTms < bestRTT {
				bestRTT, bestCont = s.RTTms, cont
			}
		}
	}
	if len(res.Phase1) == 0 {
		if tp.Session != nil {
			tp.Session.finish()
		}
		return nil, ErrNoLandmarks
	}
	res.Continent = bestCont

	// Phase two: random landmarks (anchors + stable probes) on the
	// deduced continent.
	pool := byCont[bestCont]
	if len(pool) == 0 {
		tp.seal(res)
		return res, nil
	}
	for _, i := range rng.Perm(len(pool))[:min(second, len(pool))] {
		s, err := tp.measure(from, pool[i], rng)
		if err != nil {
			continue
		}
		res.Phase2 = append(res.Phase2, s)
	}
	tp.seal(res)
	return res, nil
}

// measure routes one landmark measurement through the resilient session
// when one is attached (tallying its outcome in the degradation
// ledger), or straight to the tool on the historical path.
func (tp *TwoPhase) measure(from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	if tp.Session == nil {
		return tp.Tool.Measure(from, lm, rng)
	}
	s, err := tp.Session.Measure(tp.Tool, from, lm, rng)
	tp.Session.record(lm.Host.ID, err)
	return s, err
}

// seal closes the resilient session's ledger (if any) and attaches it
// to the result.
func (tp *TwoPhase) seal(res *Result) {
	if tp.Session == nil {
		return
	}
	tp.Session.finish()
	res.Deg = &tp.Session.Deg
}

func anchorsOf(lms []*atlas.Landmark) []*atlas.Landmark {
	out := lms[:0:0]
	for _, lm := range lms {
		if lm.IsAnchor {
			out = append(out, lm)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SortSamplesByRTT orders samples ascending by RTT (stable on landmark
// ID), a convenience for reporting.
func SortSamplesByRTT(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].RTTms != samples[j].RTTms {
			return samples[i].RTTms < samples[j].RTTms
		}
		return samples[i].LandmarkID < samples[j].LandmarkID
	})
}
