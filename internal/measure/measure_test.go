package measure

import (
	"math"
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

func addTarget(t testing.TB, net *netsim.Network, id string, loc geo.Point) netsim.HostID {
	t.Helper()
	hid := netsim.HostID(id)
	if net.Host(hid) == nil {
		if err := net.AddHost(&netsim.Host{ID: hid, Loc: loc}); err != nil {
			t.Fatal(err)
		}
	}
	return hid
}

func TestCLIToolSingleTrip(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	from := addTarget(t, cons.Net(), "m-cli-berlin", geo.Point{Lat: 52.52, Lon: 13.405})
	tool := &CLITool{Net: cons.Net(), Attempts: 4}
	rng := rand.New(rand.NewSource(1))
	lm := cons.Anchors()[0]
	s, err := tool.Measure(from, lm, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trips != 1 {
		t.Errorf("CLI trips = %d", s.Trips)
	}
	if s.RTTms <= 0 {
		t.Errorf("RTT = %f", s.RTTms)
	}
	base, _ := cons.Net().BaseRTTMs(from, lm.Host.ID)
	if s.RTTms < base {
		t.Errorf("measured %f below base %f", s.RTTms, base)
	}
}

func TestWebToolTwoTripDoubling(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	from := addTarget(t, cons.Net(), "m-web-berlin", geo.Point{Lat: 52.52, Lon: 13.405})
	tool := &WebTool{Net: cons.Net(), OS: Linux, Attempts: 5}
	rng := rand.New(rand.NewSource(2))

	// Regression of measured RTT on base RTT per trip group should show
	// the §4.3 slope ratio of ≈2.
	var x1, y1, x2, y2 []float64
	for _, lm := range cons.Anchors() {
		s, err := tool.Measure(from, lm, rng)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := cons.Net().BaseRTTMs(from, lm.Host.ID)
		if s.Trips == 2 {
			x2, y2 = append(x2, base), append(y2, s.RTTms)
		} else {
			x1, y1 = append(x1, base), append(y1, s.RTTms)
		}
	}
	if len(x1) < 10 || len(x2) < 10 {
		t.Fatalf("trip groups too small: %d/%d", len(x1), len(x2))
	}
	l1, err := mathx.FitLineThroughOrigin(x1, y1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := mathx.FitLineThroughOrigin(x2, y2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := l2.Slope / l1.Slope
	if math.Abs(ratio-2) > 0.25 {
		t.Errorf("two-trip/one-trip slope ratio = %f, want ≈2 (Fig 4)", ratio)
	}
}

func TestWindowsNoisierThanLinux(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	from := addTarget(t, cons.Net(), "m-os-berlin", geo.Point{Lat: 52.52, Lon: 13.405})
	rng := rand.New(rand.NewSource(3))
	excess := func(os OS, br Browser) float64 {
		tool := &WebTool{Net: cons.Net(), OS: os, Browser: br, Attempts: 3}
		var tot float64
		n := 0
		for _, lm := range cons.Anchors()[:40] {
			s, err := tool.Measure(from, lm, rng)
			if err != nil {
				continue
			}
			base, _ := cons.Net().BaseRTTMs(from, lm.Host.ID)
			mult := float64(s.Trips)
			tot += s.RTTms - mult*base
			n++
		}
		return tot / float64(n)
	}
	linux := excess(Linux, Firefox)
	windows := excess(Windows, Firefox)
	if windows <= linux {
		t.Errorf("Windows excess %f should exceed Linux %f (Fig 5)", windows, linux)
	}
}

func TestWindowsHighOutliers(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	from := addTarget(t, cons.Net(), "m-out-berlin", geo.Point{Lat: 52.52, Lon: 13.405})
	rng := rand.New(rand.NewSource(4))
	tool := &WebTool{Net: cons.Net(), OS: Windows, Browser: Edge, Attempts: 3}
	outliers := 0
	total := 0
	for round := 0; round < 5; round++ {
		for _, lm := range cons.Anchors()[:40] {
			s, err := tool.Measure(from, lm, rng)
			if err != nil {
				continue
			}
			total++
			if s.RTTms > 1000 {
				outliers++
			}
		}
	}
	frac := float64(outliers) / float64(total)
	if frac < 0.02 || frac > 0.35 {
		t.Errorf("high-outlier fraction %f, want a noticeable minority (Fig 6)", frac)
	}
}

func TestTwoPhaseContinentInference(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	rng := rand.New(rand.NewSource(5))
	// Tokyo may resolve to Asia or Oceania: under the paper's Appendix A
	// continents, Manila and Singapore count as Oceania, and an East
	// Asian target can be closer to them than to the sampled Asian
	// anchors.
	cases := map[string]struct {
		loc  geo.Point
		want map[worldmap.Continent]bool
	}{
		"m-tp-berlin": {geo.Point{Lat: 52.52, Lon: 13.405}, map[worldmap.Continent]bool{worldmap.Europe: true}},
		"m-tp-chi":    {geo.Point{Lat: 41.88, Lon: -87.63}, map[worldmap.Continent]bool{worldmap.NorthAmerica: true}},
		"m-tp-tokyo":  {geo.Point{Lat: 35.68, Lon: 139.65}, map[worldmap.Continent]bool{worldmap.Asia: true, worldmap.Oceania: true}},
	}
	for id, c := range cases {
		from := addTarget(t, cons.Net(), id, c.loc)
		tp := &TwoPhase{Cons: cons, Tool: &CLITool{Net: cons.Net()}}
		res, err := tp.Run(from, rng)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !c.want[res.Continent] {
			t.Errorf("%s: inferred %v, want one of %v", id, res.Continent, c.want)
		}
		if len(res.Phase2) == 0 {
			t.Errorf("%s: no phase-2 samples", id)
		}
		// Phase-2 landmarks must all be on the deduced continent.
		for _, s := range res.Phase2 {
			lm := cons.Landmark(s.LandmarkID)
			wc := worldmap.ByCode(lm.Host.Country)
			if wc.Continent != res.Continent {
				t.Errorf("%s: phase-2 landmark %s on %v, want %v", id, s.LandmarkID, wc.Continent, res.Continent)
			}
		}
		if len(res.Measurements()) != len(res.Phase1)+len(res.Phase2) {
			t.Errorf("%s: Measurements() size mismatch", id)
		}
	}
}

func TestTwoPhaseRespectsSecondPhaseCount(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	from := addTarget(t, cons.Net(), "m-tp2-berlin", geo.Point{Lat: 52.52, Lon: 13.405})
	tp := &TwoPhase{Cons: cons, Tool: &CLITool{Net: cons.Net()}, SecondPhase: 7}
	res, err := tp.Run(from, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phase2) > 7 {
		t.Errorf("phase 2 used %d landmarks, cap was 7", len(res.Phase2))
	}
}

func TestSortSamplesByRTT(t *testing.T) {
	s := []Sample{{LandmarkID: "b", RTTms: 5}, {LandmarkID: "a", RTTms: 5}, {LandmarkID: "c", RTTms: 1}}
	SortSamplesByRTT(s)
	if s[0].LandmarkID != "c" || s[1].LandmarkID != "a" || s[2].LandmarkID != "b" {
		t.Errorf("order: %v", s)
	}
}
