package measure

import (
	"errors"
	"fmt"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
)

// DefaultEta is the paper's measured relationship between direct and
// indirect (self-ping through the proxy) round-trip times: the robust
// regression in Figure 13 found a slope of 0.49 with R² > 0.99 —
// "almost exactly 1/2", because pinging yourself through the proxy
// crosses the client↔proxy leg twice.
const DefaultEta = 0.49

// proxyOverheadMs is the processing delay a proxy adds per forwarded
// round trip.
const proxyOverheadMs = 0.8

// ProxiedTool measures landmarks through a network proxy: the observed
// time is the client↔proxy RTT plus the proxy↔landmark RTT (§2,
// "Challenges of geolocating proxies").
type ProxiedTool struct {
	Net      *netsim.Network
	Client   netsim.HostID
	Proxy    netsim.HostID
	Attempts int // default 3
	// Clock, when set, is advanced by the simulated time each leg
	// consumes (nil pins the session to time zero).
	Clock *netsim.Clock
}

func (t *ProxiedTool) attempts() int {
	if t.Attempts < 1 {
		return 3
	}
	return t.Attempts
}

// Measure implements Tool. The from argument is ignored — the client
// configured on the tool originates every measurement, matching the
// paper's single-client setup in Frankfurt.
func (t *ProxiedTool) Measure(_ netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	best := -1.0
	for i := 0; i < t.attempts(); i++ {
		leg1, err := t.Net.SampleRTTMs(t.Client, t.Proxy, rng)
		if err != nil {
			return Sample{}, fmt.Errorf("measure: proxied %s→%s: %w", t.Client, t.Proxy, err)
		}
		t.Clock.Advance(leg1)
		leg2, err := t.Net.Probe(t.Proxy, lm.Host.ID, HTTPPort, rng, t.Clock)
		if err != nil {
			return Sample{}, fmt.Errorf("measure: proxied %s→%s: %w", t.Proxy, lm.Host.ID, err)
		}
		rtt := leg1 + leg2 + proxyOverheadMs
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	return Sample{LandmarkID: lm.Host.ID, Landmark: lm.Host.Loc, RTTms: best, Trips: 1}, nil
}

// SelfPing measures the client pinging itself through the proxy
// (Figure 12): the packet crosses the client↔proxy leg twice, so the
// result is slightly more than twice the direct client↔proxy RTT.
func (t *ProxiedTool) SelfPing(rng *rand.Rand) (float64, error) {
	best := -1.0
	for i := 0; i < t.attempts(); i++ {
		out, err := t.Net.SampleRTTMs(t.Client, t.Proxy, rng)
		if err != nil {
			return 0, err
		}
		back, err := t.Net.SampleRTTMs(t.Proxy, t.Client, rng)
		if err != nil {
			return 0, err
		}
		v := out + back + proxyOverheadMs
		t.Clock.Advance(v)
		if best < 0 || v < best {
			best = v
		}
	}
	return best, nil
}

// CorrectForProxy removes the client↔proxy leg from proxied samples:
// A = B − ηC, where B is the proxied RTT, C the self-ping RTT and η the
// calibrated direct/indirect ratio (DefaultEta when zero). Samples whose
// corrected RTT would be non-positive are dropped.
func CorrectForProxy(samples []Sample, selfPingMs, eta float64) []Sample {
	if eta == 0 {
		eta = DefaultEta
	}
	out := make([]Sample, 0, len(samples))
	for _, s := range samples {
		corrected := s.RTTms - eta*selfPingMs
		if corrected <= 0 {
			continue
		}
		s.RTTms = corrected
		out = append(out, s)
	}
	return out
}

// EstimateEta reproduces the Figure 13 calibration: given paired direct
// and indirect (self-ping) RTTs for proxies that happen to answer pings
// both ways, it fits a robust (Theil–Sen) regression of direct on
// indirect and returns the slope η and the fit's R².
func EstimateEta(directMs, indirectMs []float64) (eta, r2 float64, err error) {
	if len(directMs) != len(indirectMs) {
		return 0, 0, errors.New("measure: mismatched direct/indirect sample counts")
	}
	line, err := mathx.TheilSen(indirectMs, directMs)
	if err != nil {
		return 0, 0, err
	}
	pred := make([]float64, len(directMs))
	for i, x := range indirectMs {
		pred[i] = line.At(x)
	}
	return line.Slope, mathx.RSquared(directMs, pred), nil
}

// ProxiedTwoPhase runs the full §6 pipeline for one proxy: self-ping,
// two-phase measurement through the proxy, and per-sample correction.
func ProxiedTwoPhase(cons *atlas.Constellation, client, proxy netsim.HostID, eta float64, rng *rand.Rand) (*Result, error) {
	pt := &ProxiedTool{Net: cons.Net(), Client: client, Proxy: proxy}
	self, err := pt.SelfPing(rng)
	if err != nil {
		return nil, err
	}
	tp := &TwoPhase{Cons: cons, Tool: pt}
	res, err := tp.Run(proxy, rng)
	if err != nil {
		return nil, err
	}
	res.Phase1 = CorrectForProxy(res.Phase1, self, eta)
	res.Phase2 = CorrectForProxy(res.Phase2, self, eta)
	return res, nil
}
