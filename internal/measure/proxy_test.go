package measure

import (
	"math"
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

func proxySetup(t testing.TB) (client, proxy netsim.HostID, net *netsim.Network) {
	t.Helper()
	cons, _ := algtest.Fixture(t)
	net = cons.Net()
	client = addTarget(t, net, "m-client-fra", geo.Point{Lat: 50.11, Lon: 8.68}) // Frankfurt, like the paper
	proxy = addTarget(t, net, "m-proxy-lyon", geo.Point{Lat: 45.76, Lon: 4.84})  // Lyon, like Figure 12
	return client, proxy, net
}

func TestProxiedToolAddsClientLeg(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client, proxy, net := proxySetup(t)
	rng := rand.New(rand.NewSource(7))
	pt := &ProxiedTool{Net: net, Client: client, Proxy: proxy}
	lm := cons.Anchors()[0]

	s, err := pt.Measure("", lm, rng)
	if err != nil {
		t.Fatal(err)
	}
	directBase, _ := net.BaseRTTMs(proxy, lm.Host.ID)
	clientLegBase, _ := net.BaseRTTMs(client, proxy)
	if s.RTTms < directBase+clientLegBase {
		t.Errorf("proxied RTT %f less than the sum of its legs' floors %f", s.RTTms, directBase+clientLegBase)
	}
}

func TestSelfPingIsRoughlyTwiceDirect(t *testing.T) {
	client, proxy, net := proxySetup(t)
	rng := rand.New(rand.NewSource(8))
	pt := &ProxiedTool{Net: net, Client: client, Proxy: proxy, Attempts: 5}
	self, err := pt.SelfPing(rng)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := net.BaseRTTMs(client, proxy)
	ratio := self / direct
	if ratio < 1.9 || ratio > 3.0 {
		t.Errorf("self-ping/direct = %f, want slightly above 2 (Fig 12)", ratio)
	}
}

func TestCorrectForProxyRecoversDirectRTT(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client, proxy, net := proxySetup(t)
	rng := rand.New(rand.NewSource(9))
	pt := &ProxiedTool{Net: net, Client: client, Proxy: proxy, Attempts: 5}
	self, err := pt.SelfPing(rng)
	if err != nil {
		t.Fatal(err)
	}

	var raw []Sample
	for _, lm := range cons.Anchors()[:30] {
		s, err := pt.Measure("", lm, rng)
		if err != nil {
			continue
		}
		raw = append(raw, s)
	}
	corrected := CorrectForProxy(raw, self, 0.49)
	if len(corrected) != len(raw) {
		t.Fatalf("dropped %d samples", len(raw)-len(corrected))
	}
	// Corrected RTTs should approximate the proxy→landmark RTT: compare
	// against the base leg and require small relative error on average.
	var relErr float64
	for i, s := range corrected {
		base, _ := net.BaseRTTMs(proxy, s.LandmarkID)
		relErr += math.Abs(s.RTTms-base) / base
		_ = i
	}
	relErr /= float64(len(corrected))
	if relErr > 0.6 {
		t.Errorf("mean relative error after correction = %f", relErr)
	}
	// And the correction must never produce a *lower* total error than
	// leaving the client leg in. (Sanity: uncorrected is biased up.)
	var rawErr float64
	for _, s := range raw {
		base, _ := net.BaseRTTMs(proxy, s.LandmarkID)
		rawErr += math.Abs(s.RTTms-base) / base
	}
	rawErr /= float64(len(raw))
	if relErr >= rawErr {
		t.Errorf("correction did not reduce error: %f vs %f", relErr, rawErr)
	}
}

func TestCorrectForProxyDropsNonPositive(t *testing.T) {
	s := []Sample{{LandmarkID: "a", RTTms: 10}, {LandmarkID: "b", RTTms: 100}}
	out := CorrectForProxy(s, 50, 0.49) // 10 - 24.5 < 0 → dropped
	if len(out) != 1 || out[0].LandmarkID != "b" {
		t.Errorf("got %v", out)
	}
	if math.Abs(out[0].RTTms-(100-24.5)) > 1e-9 {
		t.Errorf("corrected RTT %f", out[0].RTTms)
	}
	// Zero eta uses the default.
	out = CorrectForProxy([]Sample{{LandmarkID: "c", RTTms: 100}}, 100, 0)
	if math.Abs(out[0].RTTms-(100-DefaultEta*100)) > 1e-9 {
		t.Errorf("default eta not applied: %f", out[0].RTTms)
	}
}

func TestEstimateEta(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var direct, indirect []float64
	for i := 0; i < 120; i++ {
		d := 5 + rng.Float64()*250
		indirect = append(indirect, d/0.49+rng.NormFloat64()*2)
		direct = append(direct, d)
	}
	eta, r2, err := EstimateEta(direct, indirect)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eta-0.49) > 0.02 {
		t.Errorf("eta = %f, want ≈0.49", eta)
	}
	if r2 < 0.99 {
		t.Errorf("R² = %f, want > 0.99 (Fig 13)", r2)
	}
	if _, _, err := EstimateEta([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestProxiedTwoPhaseEndToEnd(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client, proxy, _ := proxySetup(t)
	rng := rand.New(rand.NewSource(11))
	res, err := ProxiedTwoPhase(cons, client, proxy, DefaultEta, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The proxy is in Lyon: continent must come out as Europe.
	if res.Continent.String() != "Europe" {
		t.Errorf("continent = %v", res.Continent)
	}
	if len(res.Phase2) < 10 {
		t.Errorf("phase 2 has only %d samples", len(res.Phase2))
	}
}
