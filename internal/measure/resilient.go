package measure

// Fault resilience: per-probe retry with capped exponential backoff on
// the simulated session clock, per-landmark and per-campaign deadline
// budgets, and degradation accounting — so a measurement campaign run
// against an injected-fault network (netsim.FaultConfig) proceeds with
// a partial landmark set instead of failing outright, and reports
// exactly what it lost.
//
// The resilient path is opt-in: the zero Policy keeps every pipeline on
// the historical code path (no extra random draws, no clock), which is
// what keeps fault-free runs byte-identical to the pre-fault engine.

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"activegeo/internal/atlas"
	"activegeo/internal/netsim"
)

// Policy configures the resilience of a measurement session. The zero
// value disables the resilient path entirely.
type Policy struct {
	// Retries is how many times a failed probe is retried (after the
	// tool's own attempts) before the landmark is abandoned.
	Retries int
	// BackoffMs is the initial retry backoff charged to the session
	// clock; it doubles per retry up to MaxBackoffMs. Defaults (when a
	// positive policy leaves them zero): 250 ms, capped at 2000 ms.
	BackoffMs    float64
	MaxBackoffMs float64
	// LandmarkBudgetMs bounds the simulated time spent on one landmark
	// (retries stop once exceeded); 0 = unbounded.
	LandmarkBudgetMs float64
	// CampaignBudgetMs bounds the whole campaign: once the session
	// clock passes it, remaining landmarks are recorded as lost and
	// the campaign returns what it has; 0 = unbounded.
	CampaignBudgetMs float64
}

// Enabled reports whether any resilience feature is armed.
func (p Policy) Enabled() bool {
	return p.Retries > 0 || p.LandmarkBudgetMs > 0 || p.CampaignBudgetMs > 0
}

func (p Policy) backoff() float64 {
	if p.BackoffMs > 0 {
		return p.BackoffMs
	}
	return 250
}

func (p Policy) maxBackoff() float64 {
	if p.MaxBackoffMs > 0 {
		return p.MaxBackoffMs
	}
	return 2000
}

// DefaultPolicy is the resilience profile the audit pipeline uses when
// fault injection is armed: two retries at 250 ms backoff doubling to
// a 2 s cap, 12 s per landmark, 180 s per campaign.
func DefaultPolicy() Policy {
	return Policy{
		Retries:          2,
		BackoffMs:        250,
		MaxBackoffMs:     2000,
		LandmarkBudgetMs: 12000,
		CampaignBudgetMs: 180000,
	}
}

// ErrBudget is returned (wrapped) when a campaign's simulated deadline
// budget is exhausted before a landmark could be measured.
var ErrBudget = errors.New("measure: campaign budget exhausted")

// Degradation records what a resilient session lost: the audit tags
// each AuditRun entry with these counters as its coverage/confidence
// annotation.
type Degradation struct {
	// Planned counts landmarks the campaign attempted; Measured the
	// ones that produced a sample.
	Planned  int
	Measured int
	// LostLandmarks are the landmarks that never answered (sorted).
	LostLandmarks []netsim.HostID
	// Retries counts backoff-retry rounds; ProbeFailures counts failed
	// measurement attempts (each up to the tool's attempt count).
	Retries       int
	ProbeFailures int
	// Disconnected marks a proxy that hung up mid-session;
	// BudgetExhausted a campaign cut off by its deadline budget.
	Disconnected    bool
	BudgetExhausted bool
	// ElapsedMs is the campaign's final simulated clock reading.
	ElapsedMs float64
}

// Coverage is the fraction of planned landmarks that produced a
// sample (1 when nothing was planned).
func (d *Degradation) Coverage() float64 {
	if d == nil || d.Planned == 0 {
		return 1
	}
	return float64(d.Measured) / float64(d.Planned)
}

// Confidence grades used by Degradation.Confidence.
const (
	ConfidenceFull     = "full"     // ≥95% coverage, session intact
	ConfidenceDegraded = "degraded" // ≥50% coverage
	ConfidenceLow      = "low"      // anything worse
)

// Confidence maps the coverage (and session fate) to a grade.
func (d *Degradation) Confidence() string {
	cov := d.Coverage()
	switch {
	case cov >= 0.95 && (d == nil || !d.Disconnected):
		return ConfidenceFull
	case cov >= 0.5:
		return ConfidenceDegraded
	default:
		return ConfidenceLow
	}
}

// Session threads one measurement campaign's resilience state: the
// simulated clock, the retry policy, the proxy's disconnect fate and
// the degradation tally. Sessions are single-campaign, single-
// goroutine state; each entity in a batch gets its own.
type Session struct {
	Clock  *netsim.Clock
	Policy Policy
	Deg    Degradation

	net          *netsim.Network
	disconnectAt float64 // campaign time the proxy hangs up; +Inf = never
}

// NewSession starts a resilient campaign session against net. The
// proxy-disconnect fate is drawn once from rng (the entity's stream),
// so the session remains a pure function of (seed, entity).
func NewSession(net *netsim.Network, pol Policy, rng *rand.Rand) *Session {
	s := &Session{
		Clock:        &netsim.Clock{},
		Policy:       pol,
		net:          net,
		disconnectAt: math.Inf(1),
	}
	if at, ok := net.SessionDisconnectMs(rng); ok {
		s.disconnectAt = at
	}
	return s
}

// Terminal reports whether the campaign cannot usefully continue: the
// proxy hung up or the campaign budget ran out.
func (s *Session) Terminal() bool {
	return s.Deg.Disconnected || s.Deg.BudgetExhausted
}

// overBudget reports (and records) campaign-budget exhaustion.
func (s *Session) overBudget() bool {
	if s.Policy.CampaignBudgetMs > 0 && s.Clock.NowMs() >= s.Policy.CampaignBudgetMs {
		s.Deg.BudgetExhausted = true
		return true
	}
	return false
}

// disconnected reports (and records) a proxy that hung up.
func (s *Session) disconnected() bool {
	if s.Clock.NowMs() >= s.disconnectAt {
		s.Deg.Disconnected = true
		return true
	}
	return false
}

// Measure runs one landmark measurement under the session's retry,
// backoff and budget rules, updating the degradation tally. The tool
// must share the session's Clock for budgets to mean anything.
func (s *Session) Measure(tool Tool, from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	if s.overBudget() {
		return Sample{}, ErrBudget
	}
	if s.disconnected() {
		return Sample{}, netsim.ErrProxyDisconnected
	}
	deadline := math.Inf(1)
	if s.Policy.LandmarkBudgetMs > 0 {
		deadline = s.Clock.NowMs() + s.Policy.LandmarkBudgetMs
	}
	backoff := s.Policy.backoff()
	var lastErr error
	for attempt := 0; ; attempt++ {
		smp, err := tool.Measure(from, lm, rng)
		if err == nil {
			return smp, nil
		}
		lastErr = err
		if errors.Is(err, netsim.ErrProxyDisconnected) {
			s.Deg.Disconnected = true
			return Sample{}, err
		}
		s.Deg.ProbeFailures++
		if !netsim.Transient(err) || attempt >= s.Policy.Retries {
			return Sample{}, lastErr
		}
		// Capped exponential backoff, charged to the simulated clock.
		s.Clock.Advance(backoff)
		backoff *= 2
		if m := s.Policy.maxBackoff(); backoff > m {
			backoff = m
		}
		s.Deg.Retries++
		if s.Clock.NowMs() > deadline || s.overBudget() {
			return Sample{}, lastErr
		}
		if s.disconnected() {
			return Sample{}, netsim.ErrProxyDisconnected
		}
	}
}

// record tallies one landmark's outcome in the degradation ledger.
func (s *Session) record(lm netsim.HostID, err error) {
	s.Deg.Planned++
	if err == nil {
		s.Deg.Measured++
		return
	}
	s.Deg.LostLandmarks = append(s.Deg.LostLandmarks, lm)
}

// finish seals the ledger: sorts the losses and stamps the elapsed
// simulated time.
func (s *Session) finish() {
	sort.Slice(s.Deg.LostLandmarks, func(i, j int) bool {
		return s.Deg.LostLandmarks[i] < s.Deg.LostLandmarks[j]
	})
	s.Deg.ElapsedMs = s.Clock.NowMs()
}

// ProxiedTwoPhaseResilient runs the full §6 pipeline for one proxy
// with fault resilience: self-ping, two-phase measurement through the
// proxy with retries/backoff/budgets on the simulated clock, and
// per-sample η correction. The returned Result carries a Degradation
// ledger describing everything the campaign lost; a campaign that
// degrades (landmarks dark, proxy gone partway) still returns the
// partial Result rather than an error, as long as phase one produced
// at least one sample.
func ProxiedTwoPhaseResilient(cons *atlas.Constellation, client, proxy netsim.HostID, eta float64, pol Policy, rng *rand.Rand) (*Result, error) {
	net := cons.Net()
	sess := NewSession(net, pol, rng)
	pt := &ProxiedTool{Net: net, Client: client, Proxy: proxy, Clock: sess.Clock}
	self, err := pt.SelfPing(rng)
	if err != nil {
		return nil, err
	}
	tp := &TwoPhase{Cons: cons, Tool: pt, Session: sess}
	res, err := tp.Run(proxy, rng)
	if err != nil {
		return nil, err
	}
	res.Phase1 = CorrectForProxy(res.Phase1, self, eta)
	res.Phase2 = CorrectForProxy(res.Phase2, self, eta)
	return res, nil
}
