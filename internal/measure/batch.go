package measure

import (
	"context"
	"math/rand"
	"sort"
	"sync"

	"activegeo/internal/atlas"
	"activegeo/internal/netsim"
)

// Batch runs the full proxied two-phase pipeline for many proxies
// concurrently — the command-line tool "can process a list of proxies in
// one batch" (§4.2). Concurrency is bounded both to be kind to the
// landmarks (simultaneous measurements create the extra congestion that
// Holterbach et al. warn invalidates results, §2) and to keep the
// per-proxy random streams deterministic: each proxy gets its own seeded
// generator, so results are identical regardless of scheduling.
type Batch struct {
	Cons   *atlas.Constellation
	Client netsim.HostID
	// Eta is the client-leg correction factor (DefaultEta when 0).
	Eta float64
	// Concurrency bounds parallel proxies (default 8).
	Concurrency int
	// Seed derives each proxy's measurement randomness.
	Seed int64
}

// BatchResult is one proxy's outcome.
type BatchResult struct {
	Proxy  netsim.HostID
	Result *Result
	Err    error
}

func (b *Batch) concurrency() int {
	if b.Concurrency < 1 {
		return 8
	}
	return b.Concurrency
}

// Run measures every proxy and returns results in the input order. It
// honors ctx cancellation: pending proxies are reported with ctx.Err().
func (b *Batch) Run(ctx context.Context, proxies []netsim.HostID) []BatchResult {
	out := make([]BatchResult, len(proxies))
	sem := make(chan struct{}, b.concurrency())
	var wg sync.WaitGroup
	for i, p := range proxies {
		out[i].Proxy = p
		select {
		case <-ctx.Done():
			out[i].Err = ctx.Err()
			continue
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int, p netsim.HostID) {
			defer wg.Done()
			defer func() { <-sem }()
			// Per-proxy deterministic stream: independent of scheduling.
			rng := rand.New(rand.NewSource(b.Seed ^ int64(hashID(p))))
			res, err := ProxiedTwoPhase(b.Cons, b.Client, p, b.Eta, rng)
			out[i].Result = res
			out[i].Err = err
		}(i, p)
	}
	wg.Wait()
	return out
}

// hashID is a small FNV-1a over the host ID.
func hashID(id netsim.HostID) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// Succeeded filters a batch down to the successful results, preserving
// order.
func Succeeded(results []BatchResult) []BatchResult {
	out := make([]BatchResult, 0, len(results))
	for _, r := range results {
		if r.Err == nil && r.Result != nil {
			out = append(out, r)
		}
	}
	return out
}

// SortByProxy orders batch results by proxy ID.
func SortByProxy(results []BatchResult) {
	sort.Slice(results, func(i, j int) bool { return results[i].Proxy < results[j].Proxy })
}
