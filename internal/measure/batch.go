package measure

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"activegeo/internal/atlas"
	"activegeo/internal/netsim"
)

// Batch runs the full proxied two-phase pipeline for many proxies
// concurrently — the command-line tool "can process a list of proxies in
// one batch" (§4.2). Concurrency is bounded both to be kind to the
// landmarks (simultaneous measurements create the extra congestion that
// Holterbach et al. warn invalidates results, §2) and to keep the
// per-proxy random streams deterministic: each proxy gets its own seeded
// generator, so results are identical regardless of scheduling.
type Batch struct {
	Cons   *atlas.Constellation
	Client netsim.HostID
	// Eta is the client-leg correction factor (DefaultEta when 0).
	Eta float64
	// Concurrency bounds parallel proxies (default 8).
	Concurrency int
	// Seed derives each proxy's measurement randomness.
	Seed int64
	// OnProgress, if non-nil, is called once per finished proxy
	// (successful, failed, or cancelled) with the completed count so
	// far and the total. It is invoked from worker goroutines and must
	// be concurrency-safe; completion order is scheduling-dependent
	// even though results are not.
	OnProgress func(done, total int)
	// Policy, when enabled, routes every proxy through the resilient
	// pipeline (retries, backoff, budgets, degradation ledgers); the
	// zero Policy keeps the historical fault-free path, byte-identical
	// to the pre-fault engine.
	Policy Policy
	// Adversary, when armed, routes every proxy through the adversarial
	// pipeline: lying proxies manipulate their apparent RTTs and
	// Byzantine landmarks misreport. nil (or a disabled plan) keeps the
	// honest path, byte-identical to the pre-adversary engine.
	Adversary *AdversaryPlan
}

// BatchResult is one proxy's outcome.
type BatchResult struct {
	Proxy  netsim.HostID
	Result *Result
	Err    error
}

func (b *Batch) concurrency() int {
	if b.Concurrency < 1 {
		return 8
	}
	return b.Concurrency
}

// StreamSeed derives the deterministic per-proxy stream seed from a base
// seed: a pure function of (seed, id) shared by Batch and the experiment
// pipelines, so a serial loop and a parallel batch draw identical
// randomness for the same host.
func StreamSeed(seed int64, id netsim.HostID) int64 {
	return seed ^ int64(netsim.HashID(id))
}

// Run measures every proxy and returns results in the input order. It
// honors ctx cancellation as a clean cutoff: once ctx is done, every
// not-yet-dispatched proxy is reported with ctx.Err(), and no proxy is
// dispatched afterwards. Proxies already in flight run to completion.
func (b *Batch) Run(ctx context.Context, proxies []netsim.HostID) []BatchResult {
	out := make([]BatchResult, len(proxies))
	sem := make(chan struct{}, b.concurrency())
	var wg sync.WaitGroup
	var done int64
	finish := func() {
		if b.OnProgress != nil {
			b.OnProgress(int(atomic.AddInt64(&done, 1)), len(proxies))
		}
	}
	for i, p := range proxies {
		out[i].Proxy = p
		// Check cancellation before (and again after) the select: when
		// ctx is done and a semaphore slot is free at the same time, the
		// select chooses between its ready cases at random, which would
		// let some post-cancellation proxies slip through to measurement
		// nondeterministically. The explicit ctx.Err() checks make
		// cancellation a deterministic cutoff.
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			finish()
			continue
		}
		select {
		case <-ctx.Done():
			out[i].Err = ctx.Err()
			finish()
			continue
		case sem <- struct{}{}:
			if err := ctx.Err(); err != nil {
				<-sem
				out[i].Err = err
				finish()
				continue
			}
		}
		wg.Add(1)
		go func(i int, p netsim.HostID) {
			defer wg.Done()
			defer func() { <-sem }()
			// Per-proxy deterministic stream: independent of scheduling.
			rng := rand.New(rand.NewSource(StreamSeed(b.Seed, p)))
			var res *Result
			var err error
			if b.Adversary.Enabled() {
				res, err = ProxiedTwoPhaseAdversarial(b.Cons, b.Client, p, b.Eta, b.Policy, b.Adversary, rng)
			} else if b.Policy.Enabled() {
				res, err = ProxiedTwoPhaseResilient(b.Cons, b.Client, p, b.Eta, b.Policy, rng)
			} else {
				res, err = ProxiedTwoPhase(b.Cons, b.Client, p, b.Eta, rng)
			}
			out[i].Result = res
			out[i].Err = err
			finish()
		}(i, p)
	}
	wg.Wait()
	return out
}

// Succeeded filters a batch down to the successful results, preserving
// order.
func Succeeded(results []BatchResult) []BatchResult {
	out := make([]BatchResult, 0, len(results))
	for _, r := range results {
		if r.Err == nil && r.Result != nil {
			out = append(out, r)
		}
	}
	return out
}

// SortByProxy orders batch results by proxy ID.
func SortByProxy(results []BatchResult) {
	sort.Slice(results, func(i, j int) bool { return results[i].Proxy < results[j].Proxy })
}
