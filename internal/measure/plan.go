package measure

import (
	"math"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

// The adversary plan: a seeded, deterministic description of which
// actors lie and how. Proxies can forge their apparent location (decoy
// rewrite), selectively inflate or deflate per-landmark RTTs, or add a
// Gill-style constant delay; landmarks can turn Byzantine — misreport
// their position or bias the calibration measurements they contribute
// to the inter-anchor mesh (the BFT-PoLoc threat model). Every
// membership draw is a pure hash of (plan seed, host ID), so an armed
// plan perturbs the pipeline identically at any concurrency and in any
// fleet order, and the zero plan is exactly the honest pipeline.

// ProxyAttack selects a lying proxy's manipulation strategy.
type ProxyAttack int

// The attack taxonomy (Abdou & van Oorschot; paper §8).
const (
	// AttackNone leaves every proxy honest.
	AttackNone ProxyAttack = iota
	// AttackDecoy rewrites apparent RTTs to match a decoy location.
	AttackDecoy
	// AttackInflate adds delay to a targeted landmark subset.
	AttackInflate
	// AttackDeflate forges early SYN-ACKs toward a targeted subset.
	AttackDeflate
	// AttackDelay adds a constant delay to every measurement.
	AttackDelay
)

// String implements fmt.Stringer.
func (a ProxyAttack) String() string {
	switch a {
	case AttackNone:
		return "none"
	case AttackDecoy:
		return "decoy"
	case AttackInflate:
		return "inflate"
	case AttackDeflate:
		return "deflate"
	case AttackDelay:
		return "delay"
	default:
		return "unknown"
	}
}

// AdversaryPlan arms the adversary layer. The zero value (and a nil
// plan) is fully disabled: every pipeline behaves byte-identically to
// the honest engine, which is what the golden-fingerprint regression
// pins.
type AdversaryPlan struct {
	// Seed drives every membership and geometry hash.
	Seed int64

	// Attack is the lying proxies' strategy; ProxyFraction the fraction
	// of the fleet that lies (pure hash draw per proxy ID).
	Attack        ProxyAttack
	ProxyFraction float64
	// Aggressiveness scales the attack strength in (0, 1]; zero means
	// full strength.
	Aggressiveness float64
	// PretendSpeedKmPerMs tunes the decoy rewrite (default 120).
	PretendSpeedKmPerMs float64
	// InflateMs is the selective-inflation delta (default 80 ms).
	InflateMs float64
	// DeflateKeep is the kept fraction of the proxy leg under selective
	// deflation (default 0.25).
	DeflateKeep float64
	// ExtraDelayMs is the constant shift of AttackDelay (default 120 ms).
	ExtraDelayMs float64

	// ByzantineFraction is the fraction of anchors that lie (pure hash
	// draw per anchor ID). Each Byzantine anchor deterministically
	// either misreports its position or biases its mesh calibration.
	ByzantineFraction float64
	// PositionLieKm is how far a position-lying anchor displaces its
	// reported coordinates (default 2500 km).
	PositionLieKm float64
	// MeshBiasMs is the delay a bias-lying anchor pads onto every RTT
	// it reports — its mesh rows and its responses to probes alike
	// (default 40 ms).
	MeshBiasMs float64

	// DetectOnly arms the detection layer with zero liars: every actor
	// is honest, but cross-validation and per-server inspection still
	// run. The attack matrix's control point uses this to charge false
	// positives on clean traffic against detection precision.
	DetectOnly bool
}

// Enabled reports whether the adversary layer is armed (false for nil).
func (p *AdversaryPlan) Enabled() bool {
	if p == nil {
		return false
	}
	return (p.Attack != AttackNone && p.ProxyFraction > 0) || p.ByzantineFraction > 0 || p.DetectOnly
}

// Signature folds the plan into a deterministic dependency stamp, the
// counterpart of netsim.FaultConfig.Signature for incremental
// consumers: verdicts computed under one plan are stale under another.
// nil and the zero plan share the stable "disabled" signature.
func (p *AdversaryPlan) Signature() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	if p == nil {
		p = &AdversaryPlan{}
	}
	mix(uint64(p.Seed))
	mix(uint64(p.Attack))
	if p.DetectOnly {
		mix(1)
	} else {
		mix(0)
	}
	for _, v := range []float64{
		p.ProxyFraction, p.Aggressiveness, p.PretendSpeedKmPerMs,
		p.InflateMs, p.DeflateKeep, p.ExtraDelayMs,
		p.ByzantineFraction, p.PositionLieKm, p.MeshBiasMs,
	} {
		mix(math.Float64bits(v))
	}
	return h
}

func (p *AdversaryPlan) aggressiveness() float64 {
	if p.Aggressiveness <= 0 || p.Aggressiveness > 1 {
		return 1
	}
	return p.Aggressiveness
}

func (p *AdversaryPlan) inflateMs() float64 {
	if p.InflateMs > 0 {
		return p.InflateMs
	}
	return 80
}

func (p *AdversaryPlan) deflateKeep() float64 {
	if p.DeflateKeep > 0 && p.DeflateKeep < 1 {
		return p.DeflateKeep
	}
	return 0.25
}

func (p *AdversaryPlan) extraDelayMs() float64 {
	if p.ExtraDelayMs > 0 {
		return p.ExtraDelayMs
	}
	return 120
}

func (p *AdversaryPlan) positionLieKm() float64 {
	if p.PositionLieKm > 0 {
		return p.PositionLieKm
	}
	return 2500
}

func (p *AdversaryPlan) meshBiasMs() float64 {
	if p.MeshBiasMs > 0 {
		return p.MeshBiasMs
	}
	return 40
}

// LyingProxy reports whether the plan makes this proxy lie — the ground
// truth the detection scorer checks precision/recall against.
func (p *AdversaryPlan) LyingProxy(id netsim.HostID) bool {
	if p == nil || p.Attack == AttackNone || p.ProxyFraction <= 0 {
		return false
	}
	return hashFraction(p.Seed, "advproxy", string(id)) < p.ProxyFraction
}

// ByzantineLandmark reports whether the plan makes this landmark lie.
func (p *AdversaryPlan) ByzantineLandmark(id netsim.HostID) bool {
	if p == nil || p.ByzantineFraction <= 0 {
		return false
	}
	return hashFraction(p.Seed, "advlandmark", string(id)) < p.ByzantineFraction
}

// PositionLiar reports whether a Byzantine landmark lies by misreporting
// its position (the alternative is biasing its reported delays). The
// mode is a deterministic coin per landmark; when one of the two lie
// magnitudes is explicitly zeroed the other mode is used throughout.
func (p *AdversaryPlan) PositionLiar(id netsim.HostID) bool {
	if !p.ByzantineLandmark(id) {
		return false
	}
	if p.PositionLieKm < 0 {
		return false
	}
	if p.MeshBiasMs < 0 {
		return true
	}
	return hashFraction(p.Seed, "advposmode", string(id)) < 0.5
}

// BiasLiar reports whether a Byzantine landmark lies by padding the
// delays it reports.
func (p *AdversaryPlan) BiasLiar(id netsim.HostID) bool {
	return p.ByzantineLandmark(id) && !p.PositionLiar(id)
}

// ReportedPosition is the position the landmark claims: its true
// location, unless it is a position liar — then a point displaced by
// PositionLieKm at a hash-chosen bearing.
func (p *AdversaryPlan) ReportedPosition(id netsim.HostID, true_ geo.Point) geo.Point {
	if !p.PositionLiar(id) {
		return true_
	}
	bearing := 360 * hashFraction(p.Seed, "advbearing", string(id))
	return geo.DestinationPoint(true_, bearing, p.positionLieKm())
}

// ReportBiasMs is the delay the landmark pads onto every RTT it
// reports (zero for honest and position-lying landmarks).
func (p *AdversaryPlan) ReportBiasMs(id netsim.HostID) float64 {
	if p == nil || !p.BiasLiar(id) {
		return 0
	}
	return p.meshBiasMs()
}

// DecoyFor is the decoy location a lying proxy forges under
// AttackDecoy: a hash-chosen bearing and a 4000–9000 km displacement
// from its true location, far enough that the forged region is
// geographically distinct.
func (p *AdversaryPlan) DecoyFor(id netsim.HostID, true_ geo.Point) geo.Point {
	bearing := 360 * hashFraction(p.Seed, "advdecoybrg", string(id))
	dist := 4000 + 5000*hashFraction(p.Seed, "advdecoykm", string(id))
	return geo.DestinationPoint(true_, bearing, dist)
}

// proxyTool wraps the honest proxied tool with the plan's attack for
// one lying proxy.
func (p *AdversaryPlan) proxyTool(inner *ProxiedTool, trueLoc geo.Point) Tool {
	adv := &AdversarialProxiedTool{
		Inner:          inner,
		Aggressiveness: p.aggressiveness(),
		SelectSeed:     p.Seed,
	}
	switch p.Attack {
	case AttackDecoy:
		decoy := p.DecoyFor(inner.Proxy, trueLoc)
		adv.Decoy = &decoy
		adv.PretendSpeedKmPerMs = p.PretendSpeedKmPerMs
	case AttackInflate:
		adv.InflateMs = p.inflateMs()
	case AttackDeflate:
		adv.DeflateKeep = p.deflateKeep()
	case AttackDelay:
		adv.ExtraDelayMs = p.aggressiveness() * p.extraDelayMs()
	default:
		return inner
	}
	return adv
}

// byzantineTool post-processes samples for Byzantine landmarks: a
// position liar's samples carry its misreported coordinates into the
// localization inputs, and a bias liar pads its response time. Only
// anchors can be Byzantine — they are the mesh participants BFT-PoLoc
// models; probes don't calibrate and so have no trigonometry to
// subvert. The wrapper adds no RNG draws, so honest landmarks'
// measurements are untouched bytes.
type byzantineTool struct {
	inner Tool
	plan  *AdversaryPlan
}

// Measure implements Tool.
func (b byzantineTool) Measure(from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	s, err := b.inner.Measure(from, lm, rng)
	if err != nil {
		return s, err
	}
	if lm.IsAnchor && b.plan.ByzantineLandmark(lm.Host.ID) {
		s.Landmark = b.plan.ReportedPosition(lm.Host.ID, lm.Host.Loc)
		s.RTTms += b.plan.ReportBiasMs(lm.Host.ID)
	}
	return s, nil
}

// ProxiedTwoPhaseAdversarial runs the full §6 pipeline for one proxy
// under an armed adversary plan: self-ping, two-phase measurement with
// the proxy's attack tool (when it lies) and the Byzantine landmark
// overlay, then per-sample η correction. With a zero policy and a
// disabled plan the draw sequence is identical to ProxiedTwoPhase, so
// honest servers under an armed plan still measure exactly as before.
func ProxiedTwoPhaseAdversarial(cons *atlas.Constellation, client, proxy netsim.HostID, eta float64, pol Policy, plan *AdversaryPlan, rng *rand.Rand) (*Result, error) {
	net := cons.Net()
	var sess *Session
	pt := &ProxiedTool{Net: net, Client: client, Proxy: proxy}
	if pol.Enabled() {
		sess = NewSession(net, pol, rng)
		pt.Clock = sess.Clock
	}
	self, err := pt.SelfPing(rng)
	if err != nil {
		return nil, err
	}
	var tool Tool = pt
	if plan.LyingProxy(proxy) {
		trueLoc := geo.Point{}
		if h := net.Host(proxy); h != nil {
			trueLoc = h.Loc
		}
		tool = plan.proxyTool(pt, trueLoc)
	}
	if plan != nil && plan.ByzantineFraction > 0 {
		tool = byzantineTool{inner: tool, plan: plan}
	}
	tp := &TwoPhase{Cons: cons, Tool: tool, Session: sess}
	res, err := tp.Run(proxy, rng)
	if err != nil {
		return nil, err
	}
	res.Phase1 = CorrectForProxy(res.Phase1, self, eta)
	res.Phase2 = CorrectForProxy(res.Phase2, self, eta)
	return res, nil
}
