package measure

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"activegeo/internal/algtest"
	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

// scriptedTool fails with the scripted errors in order, then succeeds
// forever with a fixed sample.
type scriptedTool struct {
	errs  []error
	calls int
	rtt   float64
}

func (t *scriptedTool) Measure(_ netsim.HostID, lm *atlas.Landmark, _ *rand.Rand) (Sample, error) {
	i := t.calls
	t.calls++
	if i < len(t.errs) && t.errs[i] != nil {
		return Sample{}, t.errs[i]
	}
	return Sample{LandmarkID: lm.Host.ID, Landmark: lm.Host.Loc, RTTms: t.rtt, Trips: 1}, nil
}

func testLandmark(id string) *atlas.Landmark {
	return &atlas.Landmark{Host: &netsim.Host{
		ID:  netsim.HostID(id),
		Loc: geo.Point{Lat: 48.86, Lon: 2.35},
	}}
}

func freshSession(pol Policy) *Session {
	n := netsim.New(1)
	return NewSession(n, pol, rand.New(rand.NewSource(1)))
}

func TestSessionRetryThenSucceed(t *testing.T) {
	lost := fmt.Errorf("probe: %w", netsim.ErrProbeLost)
	tool := &scriptedTool{errs: []error{lost, lost}, rtt: 42}
	sess := freshSession(Policy{Retries: 2, BackoffMs: 100, MaxBackoffMs: 1000})
	s, err := sess.Measure(tool, "client", testLandmark("lm"), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("retry-then-succeed failed: %v", err)
	}
	if s.RTTms != 42 || tool.calls != 3 {
		t.Errorf("sample %v after %d calls, want 42 after 3", s.RTTms, tool.calls)
	}
	if sess.Deg.Retries != 2 || sess.Deg.ProbeFailures != 2 {
		t.Errorf("ledger = %+v, want 2 retries / 2 failures", sess.Deg)
	}
	// Backoff 100 + 200 ms must have been charged to the sim clock.
	if got := sess.Clock.NowMs(); got != 300 {
		t.Errorf("clock = %v ms, want 300 (100+200 backoff)", got)
	}
}

func TestSessionAllAttemptsFail(t *testing.T) {
	lost := fmt.Errorf("probe: %w", netsim.ErrProbeLost)
	tool := &scriptedTool{errs: []error{lost, lost, lost, lost, lost}}
	sess := freshSession(Policy{Retries: 2})
	_, err := sess.Measure(tool, "client", testLandmark("lm"), rand.New(rand.NewSource(2)))
	if !errors.Is(err, netsim.ErrProbeLost) {
		t.Fatalf("err = %v, want ErrProbeLost", err)
	}
	if tool.calls != 3 { // initial + 2 retries
		t.Errorf("calls = %d, want 3", tool.calls)
	}
	if sess.Deg.ProbeFailures != 3 || sess.Deg.Retries != 2 {
		t.Errorf("ledger = %+v, want 3 failures / 2 retries", sess.Deg)
	}
}

func TestSessionNonTransientFailsFast(t *testing.T) {
	tool := &scriptedTool{errs: []error{netsim.ErrPortFiltered, nil}}
	sess := freshSession(Policy{Retries: 5})
	_, err := sess.Measure(tool, "client", testLandmark("lm"), rand.New(rand.NewSource(2)))
	if !errors.Is(err, netsim.ErrPortFiltered) {
		t.Fatalf("err = %v, want ErrPortFiltered", err)
	}
	if tool.calls != 1 {
		t.Errorf("non-transient error retried: %d calls", tool.calls)
	}
}

func TestSessionLandmarkBudgetStopsRetries(t *testing.T) {
	lost := fmt.Errorf("probe: %w", netsim.ErrProbeLost)
	tool := &scriptedTool{errs: []error{lost, lost, lost, lost, lost, lost, lost, lost}}
	// 8 allowed retries, but the landmark budget only admits the first
	// backoff (500 ms > 300 ms budget).
	sess := freshSession(Policy{Retries: 8, BackoffMs: 500, LandmarkBudgetMs: 300})
	_, err := sess.Measure(tool, "client", testLandmark("lm"), rand.New(rand.NewSource(2)))
	if !errors.Is(err, netsim.ErrProbeLost) {
		t.Fatalf("err = %v", err)
	}
	if tool.calls != 1 {
		t.Errorf("calls = %d, want 1 (budget blocks every retry)", tool.calls)
	}
}

func TestSessionCampaignBudgetTerminal(t *testing.T) {
	sess := freshSession(Policy{Retries: 1, CampaignBudgetMs: 100})
	sess.Clock.Advance(150)
	tool := &scriptedTool{rtt: 10}
	_, err := sess.Measure(tool, "client", testLandmark("lm"), rand.New(rand.NewSource(2)))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if tool.calls != 0 {
		t.Error("tool consulted after campaign budget exhausted")
	}
	if !sess.Terminal() || !sess.Deg.BudgetExhausted {
		t.Errorf("session not terminal: %+v", sess.Deg)
	}
}

func TestSessionDisconnectTerminal(t *testing.T) {
	n := netsim.New(1)
	n.SetFaults(netsim.FaultConfig{DisconnectProb: 1.0})
	sess := NewSession(n, Policy{Retries: 1}, rand.New(rand.NewSource(3)))
	sess.Clock.Advance(n.Faults().Horizon()) // sail past any disconnect time
	tool := &scriptedTool{rtt: 10}
	_, err := sess.Measure(tool, "client", testLandmark("lm"), rand.New(rand.NewSource(2)))
	if !errors.Is(err, netsim.ErrProxyDisconnected) {
		t.Fatalf("err = %v, want ErrProxyDisconnected", err)
	}
	if tool.calls != 0 {
		t.Error("tool consulted after proxy disconnect")
	}
	if !sess.Terminal() || !sess.Deg.Disconnected {
		t.Errorf("session not terminal: %+v", sess.Deg)
	}
}

func TestDegradationCoverageAndConfidence(t *testing.T) {
	var nilDeg *Degradation
	if nilDeg.Coverage() != 1 || nilDeg.Confidence() != ConfidenceFull {
		t.Error("nil ledger must read as full coverage")
	}
	cases := []struct {
		deg  Degradation
		cov  float64
		conf string
	}{
		{Degradation{Planned: 20, Measured: 20}, 1, ConfidenceFull},
		{Degradation{Planned: 20, Measured: 19}, 0.95, ConfidenceFull},
		{Degradation{Planned: 20, Measured: 14}, 0.7, ConfidenceDegraded},
		{Degradation{Planned: 20, Measured: 4}, 0.2, ConfidenceLow},
		{Degradation{Planned: 20, Measured: 20, Disconnected: true}, 1, ConfidenceDegraded},
	}
	for i, c := range cases {
		if got := c.deg.Coverage(); got != c.cov {
			t.Errorf("case %d: coverage = %v, want %v", i, got, c.cov)
		}
		if got := c.deg.Confidence(); got != c.conf {
			t.Errorf("case %d: confidence = %q, want %q", i, got, c.conf)
		}
	}
}

// lossyBatchFixture builds a constellation with faults armed and a set
// of proxies for resilient-batch tests.
func lossyBatchFixture(t *testing.T, loss float64) (*Batch, []netsim.HostID) {
	t.Helper()
	cons, _ := algtest.Fixture(t)
	cons.Net().SetFaults(netsim.DefaultFaults(loss))
	client := addTarget(t, cons.Net(), "lossy-client", geo.Point{Lat: 50.11, Lon: 8.68})
	var proxies []netsim.HostID
	for i, city := range []geo.Point{
		{Lat: 52.37, Lon: 4.89}, {Lat: 48.86, Lon: 2.35}, {Lat: 40.71, Lon: -74.01},
		{Lat: 35.68, Lon: 139.65}, {Lat: 51.51, Lon: -0.13}, {Lat: 37.77, Lon: -122.42},
	} {
		proxies = append(proxies, addTarget(t, cons.Net(), "lossy-proxy-"+string(rune('a'+i)), city))
	}
	return &Batch{Cons: cons, Client: client, Seed: 4242, Policy: DefaultPolicy()}, proxies
}

// TestResilientBatchDeterministicAcrossConcurrency: the ISSUE's core
// determinism criterion at the measure layer — with a fixed seed and
// faults enabled, runs at different concurrency widths produce
// identical results including the degradation ledgers.
func TestResilientBatchDeterministicAcrossConcurrency(t *testing.T) {
	b, proxies := lossyBatchFixture(t, 0.15)
	ctx := context.Background()
	var runs [][]BatchResult
	for _, conc := range []int{1, 3, 8} {
		b.Concurrency = conc
		runs = append(runs, b.Run(ctx, proxies))
	}
	base := runs[0]
	for r := 1; r < len(runs); r++ {
		for i := range base {
			a, c := base[i], runs[r][i]
			if (a.Err == nil) != (c.Err == nil) {
				t.Fatalf("proxy %s: error mismatch across widths: %v vs %v", a.Proxy, a.Err, c.Err)
			}
			if a.Err != nil {
				continue
			}
			if !reflect.DeepEqual(a.Result.Samples(), c.Result.Samples()) {
				t.Fatalf("proxy %s: samples diverge across concurrency widths", a.Proxy)
			}
			if !reflect.DeepEqual(a.Result.Deg, c.Result.Deg) {
				t.Fatalf("proxy %s: degradation ledgers diverge: %+v vs %+v",
					a.Proxy, a.Result.Deg, c.Result.Deg)
			}
		}
	}
}

// TestResilientBatchDegradesGracefully: under substantial injected
// loss the batch still yields usable partial results with consistent
// ledgers, and CorrectForProxy on the degraded sample sets keeps every
// corrected RTT positive.
func TestResilientBatchDegradesGracefully(t *testing.T) {
	b, proxies := lossyBatchFixture(t, 0.25)
	results := b.Run(context.Background(), proxies)
	succeeded := 0
	sawLoss := false
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		succeeded++
		deg := r.Result.Deg
		if deg == nil {
			t.Fatalf("proxy %s: resilient run without a ledger", r.Proxy)
		}
		if deg.Planned != deg.Measured+len(deg.LostLandmarks) {
			t.Errorf("proxy %s: ledger inconsistent: %+v", r.Proxy, deg)
		}
		if cov := deg.Coverage(); cov < 0 || cov > 1 {
			t.Errorf("proxy %s: coverage %v out of range", r.Proxy, cov)
		}
		if len(deg.LostLandmarks) > 0 {
			sawLoss = true
		}
		// η-corrected samples from a lossy campaign stay physical.
		for _, s := range r.Result.Samples() {
			if s.RTTms <= 0 {
				t.Errorf("proxy %s: non-positive corrected RTT %v", r.Proxy, s.RTTms)
			}
		}
	}
	if succeeded == 0 {
		t.Fatal("no proxy survived 25% loss — resilience not working")
	}
	if !sawLoss {
		t.Error("no landmark losses recorded at 25% injected loss")
	}
}

// TestResilientDisabledMatchesLegacy: a zero Policy must leave Batch on
// the historical path — identical output with and without the resilient
// code compiled in.
func TestResilientDisabledMatchesLegacy(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	client := addTarget(t, cons.Net(), "legacy-client", geo.Point{Lat: 50.11, Lon: 8.68})
	p := addTarget(t, cons.Net(), "legacy-proxy", geo.Point{Lat: 48.86, Lon: 2.35})
	b := &Batch{Cons: cons, Client: client, Seed: 7}
	r1 := b.Run(context.Background(), []netsim.HostID{p})
	rng := rand.New(rand.NewSource(StreamSeed(7, p)))
	direct, err := ProxiedTwoPhase(cons, client, p, 0, rng)
	if err != nil || r1[0].Err != nil {
		t.Fatal(err, r1[0].Err)
	}
	if !reflect.DeepEqual(r1[0].Result.Samples(), direct.Samples()) {
		t.Error("zero-Policy batch diverges from the legacy pipeline")
	}
	if r1[0].Result.Deg != nil {
		t.Error("legacy path attached a degradation ledger")
	}
}

// minRTT loss-path coverage (ISSUE satellite): all-attempts-fail,
// partial-loss and retry-then-succeed, via the injectable probe.
func TestMinRTTInjectedLossPaths(t *testing.T) {
	ctx := context.Background()
	mk := func(outcomes ...interface{}) func(context.Context, string) (time.Duration, error) {
		i := 0
		return func(context.Context, string) (time.Duration, error) {
			o := outcomes[i%len(outcomes)]
			i++
			if err, ok := o.(error); ok {
				return 0, err
			}
			return o.(time.Duration), nil
		}
	}
	lost := errors.New("injected loss")

	if _, err := minRTT(ctx, "x", 3, mk(lost)); err == nil {
		t.Error("all-attempts-fail must return the last error")
	}
	if got, err := minRTT(ctx, "x", 4, mk(lost, 30*time.Millisecond, lost, 20*time.Millisecond)); err != nil || got != 20*time.Millisecond {
		t.Errorf("partial loss: got %v, %v; want 20ms min of survivors", got, err)
	}
	if got, err := minRTT(ctx, "x", 3, mk(lost, lost, 25*time.Millisecond)); err != nil || got != 25*time.Millisecond {
		t.Errorf("retry-then-succeed: got %v, %v; want 25ms", got, err)
	}

	// Deterministic: the same injected fault script yields the same
	// result on every run.
	for i := 0; i < 3; i++ {
		got, err := minRTT(ctx, "x", 4, mk(lost, 30*time.Millisecond, lost, 20*time.Millisecond))
		if err != nil || got != 20*time.Millisecond {
			t.Fatalf("run %d: %v, %v", i, got, err)
		}
	}

	// Cancellation stops the attempt loop.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	calls := 0
	probe := func(context.Context, string) (time.Duration, error) {
		calls++
		return 0, cctx.Err()
	}
	if _, err := minRTT(cctx, "x", 5, probe); err == nil {
		t.Error("cancelled context must fail")
	}
	if calls != 1 {
		t.Errorf("cancelled loop ran %d attempts, want 1", calls)
	}
}
