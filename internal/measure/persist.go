package measure

import (
	"encoding/json"
	"fmt"
	"io"

	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/netsim"
)

// wireMeasurement is the on-disk measurement format, shared with
// cmd/geolocate's input format.
type wireMeasurement struct {
	Landmark string  `json:"landmark"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	RTTms    float64 `json:"rtt_ms"`
}

// WriteMeasurements serializes measurements as a JSON array in the
// format cmd/geolocate consumes.
func WriteMeasurements(w io.Writer, ms []geoloc.Measurement) error {
	wire := make([]wireMeasurement, len(ms))
	for i, m := range ms {
		wire[i] = wireMeasurement{
			Landmark: string(m.LandmarkID),
			Lat:      m.Landmark.Lat,
			Lon:      m.Landmark.Lon,
			RTTms:    m.RTTms,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wire)
}

// ReadMeasurements parses a JSON measurement array, validating
// coordinates and RTTs.
func ReadMeasurements(r io.Reader) ([]geoloc.Measurement, error) {
	var wire []wireMeasurement
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("measure: parsing measurements: %w", err)
	}
	ms := make([]geoloc.Measurement, 0, len(wire))
	for i, w := range wire {
		p := geo.Point{Lat: w.Lat, Lon: w.Lon}
		if !p.Valid() {
			return nil, fmt.Errorf("measure: measurement %d: invalid location %v", i, p)
		}
		if w.RTTms <= 0 {
			return nil, fmt.Errorf("measure: measurement %d: non-positive RTT %f", i, w.RTTms)
		}
		ms = append(ms, geoloc.Measurement{
			LandmarkID: netsim.HostID(w.Landmark),
			Landmark:   p,
			RTTms:      w.RTTms,
		})
	}
	return ms, nil
}
