package measure

import (
	"errors"
	"math/rand"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/netsim"
)

// Refiner implements the iterative refinement the paper sketches in
// §8.1: "additional probes and anchors [are] included in the measurement
// as necessary to reduce the size of the predicted region." After an
// initial two-phase result, each round measures the landmarks nearest
// the current prediction's centroid that have not been used yet, and
// re-localizes; it stops when the region stops shrinking meaningfully,
// the size target is met, or the round budget is exhausted.
type Refiner struct {
	Cons *atlas.Constellation
	Tool Tool
	// Locate is the localization function (usually CBG++'s Locate).
	Locate func(ms []geoloc.Measurement) (*grid.Region, error)

	// PerRound is how many new landmarks each round adds (default 10).
	PerRound int
	// MaxRounds bounds the refinement (default 4).
	MaxRounds int
	// TargetAreaKm2 stops refinement once the region is at most this
	// size (default 0: refine until no improvement).
	TargetAreaKm2 float64
	// MinShrink is the relative area reduction a round must achieve to
	// continue (default 0.05).
	MinShrink float64
	// Session, when set, routes every refinement measurement through
	// the resilient path: failed landmarks retry with backoff on the
	// simulated clock, budgets bound each round, and the degradation
	// ledger records what refinement lost. A terminal session (proxy
	// disconnected, campaign budget exhausted) stops refinement early
	// with whatever region the completed rounds produced.
	Session *Session
}

// RefineResult reports a refinement run.
type RefineResult struct {
	Region *grid.Region
	// Rounds actually executed (not counting the initial localization).
	Rounds int
	// Measurements is the full measurement set used for the final region.
	Measurements []geoloc.Measurement
	// AreaHistory records the region area after the initial localization
	// and after each round.
	AreaHistory []float64
}

// ErrNoRegion is returned when the initial localization yields nothing.
var ErrNoRegion = errors.New("measure: initial localization produced no region")

func (r *Refiner) perRound() int {
	if r.PerRound < 1 {
		return 10
	}
	return r.PerRound
}

func (r *Refiner) maxRounds() int {
	if r.MaxRounds < 1 {
		return 4
	}
	return r.MaxRounds
}

func (r *Refiner) minShrink() float64 {
	if r.MinShrink <= 0 {
		return 0.05
	}
	return r.MinShrink
}

// Run refines the localization of the host with the given ID, starting
// from initial measurements (typically a two-phase result).
func (r *Refiner) Run(from netsim.HostID, initial []geoloc.Measurement, rng *rand.Rand) (*RefineResult, error) {
	ms := append([]geoloc.Measurement(nil), initial...)
	region, err := r.Locate(ms)
	if err != nil {
		return nil, err
	}
	if region == nil || region.Empty() {
		return nil, ErrNoRegion
	}
	used := map[string]bool{}
	for _, m := range ms {
		used[string(m.LandmarkID)] = true
	}
	res := &RefineResult{
		Region:      region,
		AreaHistory: []float64{region.AreaKm2()},
	}

	for round := 0; round < r.maxRounds(); round++ {
		if r.TargetAreaKm2 > 0 && res.Region.AreaKm2() <= r.TargetAreaKm2 {
			break
		}
		if r.Session != nil && r.Session.Terminal() {
			break
		}
		centroid, ok := res.Region.Centroid()
		if !ok {
			break
		}
		next := r.nearestUnused(centroid, used, r.perRound())
		if len(next) == 0 {
			break
		}
		added := 0
		for _, lm := range next {
			s, err := r.measure(from, lm, rng)
			if err != nil {
				continue
			}
			used[string(lm.Host.ID)] = true
			ms = append(ms, geoloc.Measurement{
				LandmarkID: s.LandmarkID,
				Landmark:   s.Landmark,
				RTTms:      s.RTTms,
			})
			added++
		}
		if added == 0 {
			break
		}
		refined, err := r.Locate(ms)
		if err != nil || refined == nil || refined.Empty() {
			break
		}
		res.Rounds++
		prev := res.Region.AreaKm2()
		res.Region = refined
		res.AreaHistory = append(res.AreaHistory, refined.AreaKm2())
		if prev > 0 && (prev-refined.AreaKm2())/prev < r.minShrink() {
			break
		}
	}
	res.Measurements = ms
	if r.Session != nil {
		r.Session.finish()
	}
	return res, nil
}

// measure routes one refinement measurement through the resilient
// session when one is attached, tallying the outcome in its ledger.
func (r *Refiner) measure(from netsim.HostID, lm *atlas.Landmark, rng *rand.Rand) (Sample, error) {
	if r.Session == nil {
		return r.Tool.Measure(from, lm, rng)
	}
	s, err := r.Session.Measure(r.Tool, from, lm, rng)
	r.Session.record(lm.Host.ID, err)
	return s, err
}

// nearestUnused returns the n unused landmarks closest to p.
func (r *Refiner) nearestUnused(p geo.Point, used map[string]bool, n int) []*atlas.Landmark {
	type cand struct {
		lm *atlas.Landmark
		d  float64
	}
	var cands []cand
	for _, lm := range r.Cons.All() {
		if used[string(lm.Host.ID)] {
			continue
		}
		cands = append(cands, cand{lm, geo.DistanceKm(lm.Host.Loc, p)})
	}
	// Partial selection sort: n is small.
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].d < cands[min].d {
				min = j
			}
		}
		cands[i], cands[min] = cands[min], cands[i]
	}
	out := make([]*atlas.Landmark, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].lm
	}
	return out
}
