package measure

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"
)

func TestConnectRTTToLiveListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rtt, err := ConnectRTT(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > 2*time.Second {
		t.Errorf("loopback RTT = %v", rtt)
	}
}

func TestConnectRTTRefusedStillMeasures(t *testing.T) {
	// Find a port that is definitely closed: open a listener, note the
	// port, close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rtt, err := ConnectRTT(ctx, addr)
	if err != nil {
		t.Fatalf("connection refused should still measure: %v", err)
	}
	if rtt <= 0 {
		t.Errorf("RTT = %v", rtt)
	}
}

func TestConnectRTTInvalidAddress(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := ConnectRTT(ctx, "256.256.256.256:80"); err == nil {
		t.Error("invalid address should error")
	}
}

func TestMinConnectRTT(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	best, err := MinConnectRTT(ctx, ln.Addr().String(), 5)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ConnectRTT(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Min of five should not exceed a fresh single measurement by much.
	if best > single*10 {
		t.Errorf("min-of-5 %v wildly above single %v", best, single)
	}
}

func TestMinConnectRTTAllFail(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1*time.Second)
	defer cancel()
	if _, err := MinConnectRTT(ctx, "256.256.256.256:80", 2); err == nil {
		t.Error("want error when every attempt fails")
	}
}

func TestIsRefused(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	addr := ln.Addr().String()
	_ = ln.Close()
	_, err := net.DialTimeout("tcp", addr, time.Second)
	if err == nil {
		t.Skip("port unexpectedly open")
	}
	if !IsRefused(err) {
		t.Errorf("IsRefused(%v) = false", err)
	}
	if IsRefused(fmt.Errorf("some other error")) {
		t.Error("IsRefused on unrelated error")
	}
	if IsRefused(nil) {
		t.Error("IsRefused(nil)")
	}
}
