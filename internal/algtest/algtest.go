// Package algtest provides shared fixtures for the geolocation algorithm
// test suites: a lazily built constellation + environment, and helpers to
// generate measurement vectors for synthetic targets. It is test support
// code, kept out of _test files only so the five algorithm packages can
// share one (expensive) fixture.
package algtest

import (
	"math/rand"
	"sync"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/netsim"
)

var (
	once sync.Once
	cons *atlas.Constellation
	env  *geoloc.Env
	mu   sync.Mutex
)

// Fixture returns a shared 80-anchor constellation (seed 11) and a 1.5°
// environment. Safe for concurrent use from tests.
func Fixture(t testing.TB) (*atlas.Constellation, *geoloc.Env) {
	t.Helper()
	once.Do(func() {
		net := netsim.New(11)
		rng := rand.New(rand.NewSource(11))
		var err error
		cons, err = atlas.Build(net, atlas.Config{Anchors: 80, Probes: 60, SamplesPerPair: 4}, rng)
		if err != nil {
			panic(err)
		}
		env = geoloc.NewEnv(1.5)
	})
	return cons, env
}

// MeasureTarget adds a host at loc (with a unique id) and measures
// min-of-3 RTTs to n landmarks, preferring nearby anchors the way a
// two-phase selection would.
func MeasureTarget(t testing.TB, c *atlas.Constellation, id string, loc geo.Point, n int, rng *rand.Rand) []geoloc.Measurement {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	host := c.Net().Host(netsim.HostID(id))
	if host == nil {
		host = &netsim.Host{ID: netsim.HostID(id), Loc: loc}
		if err := c.Net().AddHost(host); err != nil {
			t.Fatal(err)
		}
	}
	type cand struct {
		lm *atlas.Landmark
		d  float64
	}
	lms := c.Anchors()
	cands := make([]cand, len(lms))
	for i, lm := range lms {
		cands[i] = cand{lm, geo.DistanceKm(loc, lm.Host.Loc)}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var ms []geoloc.Measurement
	for i, cd := range cands {
		if len(ms) >= n {
			break
		}
		if i < 2*n/3 || i%5 == 0 {
			rtt, err := c.Net().MinOfSamples(host.ID, cd.lm.Host.ID, 3, rng)
			if err != nil {
				continue
			}
			ms = append(ms, geoloc.Measurement{
				LandmarkID: cd.lm.Host.ID,
				Landmark:   cd.lm.Host.Loc,
				RTTms:      rtt,
			})
		}
	}
	return ms
}

// TestCities is a world-spanning set of targets used across suites.
func TestCities() map[string]geo.Point {
	return map[string]geo.Point{
		"berlin":    {Lat: 52.52, Lon: 13.405},
		"madrid":    {Lat: 40.42, Lon: -3.70},
		"chicago":   {Lat: 41.88, Lon: -87.63},
		"saopaulo":  {Lat: -23.55, Lon: -46.63},
		"tokyo":     {Lat: 35.68, Lon: 139.65},
		"sydney":    {Lat: -33.87, Lon: 151.21},
		"joburg":    {Lat: -26.20, Lon: 28.05},
		"singapore": {Lat: 1.35, Lon: 103.82},
	}
}
