package cbgpp

import (
	"math/rand"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/netsim"
)

// TestCongestedCalibrationFailureInjection reproduces the §5.1 failure
// mode end to end: a landmark whose neighborhood was congested *during
// calibration* fits a bestline biased upward; a later, clean measurement
// of a target looks "too fast" for that model, so the landmark's disk
// underestimates. Plain CBG's strict intersection then loses the target
// (or goes empty); CBG++'s baseline-region filter discards the
// underestimating disk and keeps covering it.
func TestCongestedCalibrationFailureInjection(t *testing.T) {
	net := netsim.New(303)
	rng := rand.New(rand.NewSource(303))
	cons, err := atlas.Build(net, atlas.Config{Anchors: 60, Probes: 0, SamplesPerPair: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Congest a wide area around the first European anchor and
	// recalibrate: its whole mesh view is biased up by a standing queue.
	var victim *atlas.Landmark
	for _, a := range cons.Anchors() {
		if a.Host.Country == "de" || a.Host.Country == "fr" || a.Host.Country == "nl" {
			victim = a
			break
		}
	}
	if victim == nil {
		victim = cons.Anchors()[0]
	}
	stop := net.StartCongestion(netsim.CongestionEpisode{
		Area:        geo.Cap{Center: victim.Host.Loc, RadiusKm: 150},
		ExtraBaseMs: 80,
	})
	cons.RefreshCalibration(3, rng)
	stop() // congestion clears before the target is measured

	env := geoloc.NewEnv(1.5)
	plainCal, err := cbg.Calibrate(cons, cbg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := cbg.New(env, plainCal)
	ppCal, err := Calibrate(cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pp := New(env, ppCal, Options{})

	// A target near the victim landmark, measured cleanly.
	target := netsim.HostID("victim-neighbor")
	loc := geo.DestinationPoint(victim.Host.Loc, 45, 300)
	if err := net.AddHost(&netsim.Host{ID: target, Loc: loc}); err != nil {
		t.Fatal(err)
	}
	var ms []geoloc.Measurement
	for _, lm := range cons.Anchors() {
		rtt, err := net.MinOfSamples(target, lm.Host.ID, 3, rng)
		if err != nil {
			continue
		}
		ms = append(ms, geoloc.Measurement{LandmarkID: lm.Host.ID, Landmark: lm.Host.Loc, RTTms: rtt})
	}

	// The victim's disk must underestimate its distance to the target.
	var victimMeas *geoloc.Measurement
	for i := range ms {
		if ms[i].LandmarkID == victim.Host.ID {
			victimMeas = &ms[i]
		}
	}
	if victimMeas == nil {
		t.Fatal("victim landmark unmeasured")
	}
	est := ppCal.MaxDistanceKm(victim.Host.ID, victimMeas.OneWayMs())
	truth := geo.DistanceKm(victim.Host.Loc, loc)
	if est >= truth {
		t.Skipf("injection did not produce an underestimate (est %.0f ≥ true %.0f); congestion too mild for this seed", est, truth)
	}
	t.Logf("victim disk: estimated %.0f km, true %.0f km", est, truth)

	slack := 1.2 * 111.195 * env.Grid.Resolution()
	plainRegion, err := plain.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	plainMiss := plainRegion.Empty() || plainRegion.DistanceToPointKm(loc) > slack

	ppRegion, err := pp.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if ppRegion.Empty() {
		t.Fatal("CBG++ returned an empty region")
	}
	if d := ppRegion.DistanceToPointKm(loc); d > slack {
		t.Errorf("CBG++ missed the target by %.0f km despite the baseline filter", d)
	}
	if !plainMiss {
		// The single underestimating disk may not have been enough to
		// break plain CBG at this grid resolution; that's fine — the
		// essential §5.1 property is CBG++ covering. Record it.
		t.Logf("plain CBG survived the injection too (region %v)", plainRegion)
	} else {
		t.Logf("plain CBG lost the target; CBG++ covered it — §5.1 reproduced")
	}
}
