// Package cbgpp implements CBG++, the paper's own algorithm (§5.1):
// CBG with two modifications that eliminate underestimation misses.
//
//  1. The slowline: bestlines are constrained to travel-speed estimates
//     no slower than 84.5 km/ms, because one-way times above 237 ms may
//     involve a geostationary satellite hop and carry no distance
//     information.
//  2. Baseline-region filtering: alongside each landmark's bestline
//     disk, a larger disk at the physical 200 km/ms baseline is drawn.
//     The "baseline region" is the intersection of the largest subset of
//     baseline disks with a nonempty common intersection; any bestline
//     disk that does not overlap it is discarded as an underestimate,
//     and the final "bestline region" is the intersection of the largest
//     consistent subset of the remaining bestline disks.
//
// The largest-consistent-subset searches are exact on the grid: a cell
// covered by k disks witnesses a k-subset with nonempty intersection, so
// the cells attaining the maximum coverage count are precisely the
// intersection of the largest subset(s) — no powerset search needed.
package cbgpp

import (
	"activegeo/internal/atlas"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
)

// Options toggle the two CBG++ modifications, for ablation.
type Options struct {
	// DisableSlowline turns off the 84.5 km/ms clamp.
	DisableSlowline bool
	// DisableBaselineFilter turns off baseline-region disk filtering and
	// falls back to plain largest-consistent-subset over bestline disks.
	DisableBaselineFilter bool
}

// CBGPP is the CBG++ algorithm.
type CBGPP struct {
	env  *geoloc.Env
	cal  *cbg.Calibration
	opts Options
}

// Calibrate fits CBG++ bestlines (slowline-clamped unless disabled).
func Calibrate(cons *atlas.Constellation, opts Options) (*cbg.Calibration, error) {
	return cbg.Calibrate(cons, cbg.Options{Slowline: !opts.DisableSlowline})
}

// New builds a CBG++ instance.
func New(env *geoloc.Env, cal *cbg.Calibration, opts Options) *CBGPP {
	return &CBGPP{env: env, cal: cal, opts: opts}
}

// Name implements geoloc.Algorithm.
func (c *CBGPP) Name() string { return "CBG++" }

// Calibration exposes the fitted bestlines.
func (c *CBGPP) Calibration() *cbg.Calibration { return c.cal }

// BaselineRegion computes the baseline region for a measurement set: the
// intersection of the largest consistent subset of 200 km/ms disks.
func (c *CBGPP) BaselineRegion(ms []geoloc.Measurement) *grid.Region {
	ms = geoloc.Collapse(ms)
	pad := c.env.PadKm()
	regions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		r := geo.MaxDistanceKm(m.OneWayMs(), geo.BaselineSpeedKmPerMs) + pad
		regions = append(regions, c.env.CapRegionFor(m.LandmarkID, geo.Cap{Center: m.Landmark, RadiusKm: r}))
	}
	best, _ := geoloc.CoverageArgmax(c.env.Grid, regions)
	return best
}

// Locate implements geoloc.Algorithm.
func (c *CBGPP) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	region, _, err := c.LocateDetailed(ms)
	return region, err
}

// LocateDetailed returns the prediction region plus the number of
// bestline disks that survived baseline filtering (used by the
// landmark-effectiveness analysis, Figure 11).
func (c *CBGPP) LocateDetailed(ms []geoloc.Measurement) (*grid.Region, int, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, 0, geoloc.ErrNoMeasurements
	}
	pad := c.env.PadKm()

	bestlineRegions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		r := c.cal.MaxDistanceKm(m.LandmarkID, m.OneWayMs()) + pad
		bestlineRegions = append(bestlineRegions, c.env.CapRegionFor(m.LandmarkID, geo.Cap{Center: m.Landmark, RadiusKm: r}))
	}

	kept := bestlineRegions
	if !c.opts.DisableBaselineFilter {
		baseRegion := c.BaselineRegion(ms)
		kept = kept[:0:0]
		for _, br := range bestlineRegions {
			if br.IntersectsRegion(baseRegion) {
				kept = append(kept, br)
			}
		}
		if len(kept) == 0 {
			// Every bestline disk was inconsistent with the baseline
			// region: trust the baseline region itself.
			return c.env.ApplyExclusions(baseRegion), 0, nil
		}
	}

	best, _ := geoloc.CoverageArgmax(c.env.Grid, kept)
	return c.env.ApplyExclusions(best), len(kept), nil
}

var _ geoloc.Algorithm = (*CBGPP)(nil)
