package cbgpp

import (
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
)

func newAlg(t testing.TB, opts Options) (*CBGPP, *geoloc.Env) {
	t.Helper()
	cons, env := algtest.Fixture(t)
	cal, err := Calibrate(cons, opts)
	if err != nil {
		t.Fatal(err)
	}
	return New(env, cal, opts), env
}

func TestCoverageAcrossWorld(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	alg, _ := newAlg(t, Options{})
	rng := rand.New(rand.NewSource(61))

	misses := 0
	total := 0
	for name, loc := range algtest.TestCities() {
		ms := algtest.MeasureTarget(t, cons, "cbgpp-"+name, loc, 25, rng)
		if len(ms) < 10 {
			t.Fatalf("%s: only %d measurements", name, len(ms))
		}
		region, err := alg.Locate(ms)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if region.Empty() {
			t.Errorf("%s: CBG++ must never return an empty region", name)
			continue
		}
		total++
		if d := region.DistanceToPointKm(loc); d > 300 {
			misses++
			t.Logf("%s: region misses truth by %.0f km (area %.0f km²)", name, d, region.AreaKm2())
		}
	}
	// §5.1: CBG++ eliminated all remaining misses on the crowdsourced
	// hosts. Allow one marginal miss across the world set for grid
	// coarseness, but no more.
	if misses > 1 {
		t.Errorf("CBG++ missed %d/%d world targets", misses, total)
	}
}

func TestNeverWorseThanCBGCoverage(t *testing.T) {
	cons, env := algtest.Fixture(t)
	plainCal, err := cbg.Calibrate(cons, cbg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := cbg.New(env, plainCal)
	pp, _ := newAlg(t, Options{})
	rng := rand.New(rand.NewSource(62))

	for name, loc := range algtest.TestCities() {
		ms := algtest.MeasureTarget(t, cons, "cmp-"+name, loc, 25, rng)
		cr, err := plain.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := pp.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Empty() {
			t.Errorf("%s: CBG++ empty", name)
			continue
		}
		cMiss := cr.DistanceToPointKm(loc)
		pMiss := pr.DistanceToPointKm(loc)
		// CBG++ must not miss where plain CBG covers.
		if cMiss == 0 && pMiss > 300 {
			t.Errorf("%s: CBG covered the target but CBG++ missed by %.0f km", name, pMiss)
		}
	}
}

func TestBaselineRegionAlwaysCoversTarget(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	alg, _ := newAlg(t, Options{})
	rng := rand.New(rand.NewSource(63))
	for name, loc := range algtest.TestCities() {
		ms := algtest.MeasureTarget(t, cons, "base-"+name, loc, 25, rng)
		base := alg.BaselineRegion(ms)
		if base.Empty() {
			t.Fatalf("%s: empty baseline region", name)
		}
		if d := base.DistanceToPointKm(loc); d > 300 {
			t.Errorf("%s: baseline region misses truth by %.0f km — physically impossible unless the simulator broke the floor", name, d)
		}
	}
}

func TestAblationOptions(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	rng := rand.New(rand.NewSource(64))
	loc := geo.Point{Lat: 52.52, Lon: 13.405}
	ms := algtest.MeasureTarget(t, cons, "abl-berlin", loc, 25, rng)

	full, _ := newAlg(t, Options{})
	noSlow, _ := newAlg(t, Options{DisableSlowline: true})
	noFilter, _ := newAlg(t, Options{DisableBaselineFilter: true})

	for _, alg := range []*CBGPP{full, noSlow, noFilter} {
		r, err := alg.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		if r.Empty() {
			t.Errorf("ablated variant returned empty region")
		}
	}
}

func TestLocateDetailedKeptCount(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	alg, _ := newAlg(t, Options{})
	rng := rand.New(rand.NewSource(65))
	ms := algtest.MeasureTarget(t, cons, "det-berlin", geo.Point{Lat: 52.52, Lon: 13.405}, 25, rng)
	_, kept, err := alg.LocateDetailed(ms)
	if err != nil {
		t.Fatal(err)
	}
	if kept < 1 || kept > len(geoloc.Collapse(ms)) {
		t.Errorf("kept = %d of %d", kept, len(ms))
	}
}

func TestLocateNoMeasurements(t *testing.T) {
	alg, _ := newAlg(t, Options{})
	if _, err := alg.Locate(nil); err != geoloc.ErrNoMeasurements {
		t.Errorf("err = %v", err)
	}
	if alg.Name() != "CBG++" {
		t.Error("name")
	}
	if alg.Calibration() == nil {
		t.Error("calibration accessor")
	}
}

// TestLocateMaskToggle: the two caps CBG++ builds per measurement run
// through Env.CapRegionFor, so the quantized mask cache must leave the
// speed-constrained regions byte-identical to the per-cell fallback.
func TestLocateMaskToggle(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	alg, env := newAlg(t, Options{})
	rng := rand.New(rand.NewSource(98))
	targets := map[string]geo.Point{
		"masktoggle-pp-berlin": {Lat: 52.52, Lon: 13.405},
		"masktoggle-pp-tokyo":  {Lat: 35.68, Lon: 139.69},
	}
	for id, loc := range targets {
		ms := algtest.MeasureTarget(t, cons, id, loc, 25, rng)
		on, err := alg.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		saved := env.Masks
		env.Masks = nil
		off, err := alg.Locate(ms)
		env.Masks = saved
		if err != nil {
			t.Fatal(err)
		}
		if !on.Equal(off) {
			t.Fatalf("%s: mask-on region (%d cells) differs from mask-off (%d cells)", id, on.Count(), off.Count())
		}
	}
}
