package cbg

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
)

// shared fixture: building the constellation and mask is the expensive
// part, so do it once for the package.
var (
	fixOnce sync.Once
	fixCons *atlas.Constellation
	fixEnv  *geoloc.Env
)

func fixture(t testing.TB) (*atlas.Constellation, *geoloc.Env) {
	t.Helper()
	fixOnce.Do(func() {
		net := netsim.New(11)
		rng := rand.New(rand.NewSource(11))
		var err error
		fixCons, err = atlas.Build(net, atlas.Config{Anchors: 80, Probes: 60, SamplesPerPair: 4}, rng)
		if err != nil {
			t.Fatal(err)
		}
		fixEnv = geoloc.NewEnv(1.5)
	})
	return fixCons, fixEnv
}

// measureTarget adds a host at loc and measures min-of-k RTTs to n
// landmarks (preferring nearby anchors to mimic phase-two selection).
func measureTarget(t testing.TB, cons *atlas.Constellation, id string, loc geo.Point, n int, rng *rand.Rand) []geoloc.Measurement {
	t.Helper()
	host := &netsim.Host{ID: netsim.HostID(id), Loc: loc}
	if err := cons.Net().AddHost(host); err != nil {
		t.Fatal(err)
	}
	lms := cons.Anchors()
	// Sort by distance and take a mix: the nearest 2n/3 plus every 5th
	// farther anchor, like a two-phase selection would produce.
	type cand struct {
		lm *atlas.Landmark
		d  float64
	}
	cands := make([]cand, len(lms))
	for i, lm := range lms {
		cands[i] = cand{lm, geo.DistanceKm(loc, lm.Host.Loc)}
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var ms []geoloc.Measurement
	for i, c := range cands {
		if len(ms) >= n {
			break
		}
		if i < 2*n/3 || i%5 == 0 {
			rtt, err := cons.Net().MinOfSamples(host.ID, c.lm.Host.ID, 3, rng)
			if err != nil {
				continue
			}
			ms = append(ms, geoloc.Measurement{
				LandmarkID: c.lm.Host.ID,
				Landmark:   c.lm.Host.Loc,
				RTTms:      rtt,
			})
		}
	}
	return ms
}

func TestBestLineBasicProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]mathx.XY, 200)
	trueLine := mathx.Line{Slope: 1.0 / 95.0, Intercept: 4}
	for i := range pts {
		d := rng.Float64() * 9000
		pts[i] = mathx.XY{X: d, Y: trueLine.At(d) + rng.ExpFloat64()*20}
	}
	got, err := BestLine(pts, false)
	if err != nil {
		t.Fatal(err)
	}
	// Below all points.
	for _, p := range pts {
		if got.At(p.X) > p.Y+1e-6 {
			t.Fatalf("bestline above point (%f, %f): line value %f", p.X, p.Y, got.At(p.X))
		}
	}
	// Above the baseline.
	if got.Slope < baselineSlope-1e-12 {
		t.Errorf("bestline slope %f faster than baseline", got.Slope)
	}
	if got.Intercept < -1e-9 {
		t.Errorf("negative intercept %f", got.Intercept)
	}
	// Touches the data (within noise): at least one point within 1 ms.
	touch := false
	for _, p := range pts {
		if p.Y-got.At(p.X) < 1.0 {
			touch = true
			break
		}
	}
	if !touch {
		t.Error("bestline far below all points — not 'as close as possible'")
	}
	// Should roughly recover the generating slope (speed ≈ 95 km/ms).
	speed := 1 / got.Slope
	if speed < 80 || speed > 130 {
		t.Errorf("recovered speed %f km/ms, want ≈95", speed)
	}
}

func TestBestLineSlowlineClamp(t *testing.T) {
	// Scatter so slow that the unconstrained bestline would be slower
	// than 84.5 km/ms.
	pts := []mathx.XY{{X: 1000, Y: 50}, {X: 2000, Y: 100}, {X: 4000, Y: 200}, {X: 8000, Y: 400}} // 20 km/ms
	plain, err := BestLine(pts, false)
	if err != nil {
		t.Fatal(err)
	}
	if speed := 1 / plain.Slope; speed > 25 {
		t.Errorf("plain bestline speed %f, want ≈20", speed)
	}
	clamped, err := BestLine(pts, true)
	if err != nil {
		t.Fatal(err)
	}
	if speed := 1 / clamped.Slope; math.Abs(speed-geo.SlowlineSpeedKmPerMs) > 0.1 {
		t.Errorf("slowline-clamped speed %f, want 84.5", speed)
	}
	// Clamped line estimates larger distances for the same time.
	if clamped.InvertX(200) <= plain.InvertX(200) {
		t.Error("slowline must enlarge distance estimates")
	}
}

func TestBestLineEmpty(t *testing.T) {
	if _, err := BestLine(nil, false); err == nil {
		t.Error("want error for no points")
	}
}

func TestBestLineFasterThanBaselinePoint(t *testing.T) {
	// A (physically impossible) point below the baseline: the fallback
	// bound line must still be returned, below-all-points no longer
	// satisfiable with slope ≥ baseline and intercept ≥ 0.
	pts := []mathx.XY{{X: 10000, Y: 1}} // 10000 km in 1 ms
	l, err := BestLine(pts, false)
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope < baselineSlope-1e-12 || l.Intercept < 0 {
		t.Errorf("fallback line %+v violates bounds", l)
	}
}

func TestBestLineQuickFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		pts := make([]mathx.XY, n)
		for i := range pts {
			d := rng.Float64() * 15000
			pts[i] = mathx.XY{X: d, Y: d/geo.BaselineSpeedKmPerMs + 1 + rng.ExpFloat64()*40}
		}
		l, err := BestLine(pts, false)
		if err != nil {
			return false
		}
		if l.Slope < baselineSlope-1e-12 || l.Intercept < -1e-9 {
			return false
		}
		for _, p := range pts {
			if l.At(p.X) > p.Y+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateCoversAnchors(t *testing.T) {
	cons, _ := fixture(t)
	cal, err := Calibrate(cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range cons.Anchors() {
		l := cal.Line(a.Host.ID)
		if l.Slope < baselineSlope-1e-12 {
			t.Errorf("anchor %s bestline slope %f below baseline", a.Host.ID, l.Slope)
		}
	}
	// Probe fallback uses the pooled line.
	probe := cons.Probes()[0]
	if cal.Line(probe.Host.ID) != cal.Pooled() {
		t.Error("probe should fall back to pooled line")
	}
}

func TestMaxDistanceKmCaps(t *testing.T) {
	cons, _ := fixture(t)
	cal, err := Calibrate(cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := cons.Anchors()[0].Host.ID
	// Huge delay: the estimate is capped at half the equator.
	if d := cal.MaxDistanceKm(id, 1e6); d > geo.HalfEquatorKm {
		t.Errorf("estimate %f exceeds half equator", d)
	}
	// The estimate can never exceed the baseline distance.
	for _, ms := range []float64{1, 10, 50, 100, 250} {
		if d := cal.MaxDistanceKm(id, ms); d > ms*geo.BaselineSpeedKmPerMs+1e-9 {
			t.Errorf("estimate %f exceeds baseline bound for %f ms", d, ms)
		}
	}
}

func TestCBGLocateCoversEuropeanTarget(t *testing.T) {
	cons, env := fixture(t)
	cal, err := Calibrate(cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, cal)
	rng := rand.New(rand.NewSource(21))

	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	ms := measureTarget(t, cons, "target-berlin", berlin, 25, rng)
	if len(ms) < 15 {
		t.Fatalf("only %d measurements", len(ms))
	}
	region, err := alg.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if region.Empty() {
		t.Fatal("CBG produced an empty region for a well-covered target")
	}
	c, _ := region.Centroid()
	if d := geo.DistanceKm(c, berlin); d > 2500 {
		t.Errorf("centroid %v is %.0f km from the true location", c, d)
	}
}

func TestCBGLocateNoMeasurements(t *testing.T) {
	cons, env := fixture(t)
	cal, _ := Calibrate(cons, Options{})
	if _, err := New(env, cal).Locate(nil); err != geoloc.ErrNoMeasurements {
		t.Errorf("err = %v", err)
	}
}

func TestCBGDisksMatchMeasurements(t *testing.T) {
	cons, env := fixture(t)
	cal, _ := Calibrate(cons, Options{})
	alg := New(env, cal)
	a := cons.Anchors()[0]
	ms := []geoloc.Measurement{
		{LandmarkID: a.Host.ID, Landmark: a.Host.Loc, RTTms: 40},
		{LandmarkID: a.Host.ID, Landmark: a.Host.Loc, RTTms: 30}, // duplicate, lower
	}
	disks := alg.Disks(ms)
	if len(disks) != 1 {
		t.Fatalf("collapse failed: %d disks", len(disks))
	}
	want := cal.MaxDistanceKm(a.Host.ID, 15)
	if disks[0].RadiusKm != want {
		t.Errorf("radius %f, want %f (from the minimum RTT)", disks[0].RadiusKm, want)
	}
	if alg.Name() != "CBG" {
		t.Error("name")
	}
}

// TestLocateMaskToggle: Locate with the Env's quantized mask cache
// enabled must be byte-identical to Locate with it disabled (the
// per-cell distance-scan fallback) — the masks accelerate the disk
// intersection, they never change it.
func TestLocateMaskToggle(t *testing.T) {
	cons, env := fixture(t)
	cal, err := Calibrate(cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, cal)
	rng := rand.New(rand.NewSource(97))
	targets := map[string]geo.Point{
		"masktoggle-cbg-berlin": {Lat: 52.52, Lon: 13.405},
		"masktoggle-cbg-sydney": {Lat: -33.87, Lon: 151.21},
		"masktoggle-cbg-lima":   {Lat: -12.05, Lon: -77.04},
	}
	for id, loc := range targets {
		ms := measureTarget(t, cons, id, loc, 25, rng)
		on, err := alg.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		saved := env.Masks
		env.Masks = nil
		off, err := alg.Locate(ms)
		env.Masks = saved
		if err != nil {
			t.Fatal(err)
		}
		if !on.Equal(off) {
			t.Fatalf("%s: mask-on region (%d cells) differs from mask-off (%d cells)", id, on.Count(), off.Count())
		}
	}
}
