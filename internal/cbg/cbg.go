// Package cbg implements Constraint-Based Geolocation (Gueye et al.,
// IMC 2004) as described in §3.1 of the paper: per-landmark "bestline"
// calibration over delay-vs-distance scatter, bounded below by the
// physical 200 km/ms baseline, and disk multilateration.
//
// The same calibration machinery also serves CBG++ (package cbgpp),
// which adds the 84.5 km/ms "slowline" upper bound on travel-time
// estimates.
package cbg

import (
	"fmt"
	"math"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
)

// baselineSlope is the travel time per km of the physical baseline:
// 1/200 ms/km (time as a function of distance).
const baselineSlope = 1.0 / geo.BaselineSpeedKmPerMs

// slowlineSlope is CBG++'s maximum slope: 1/84.5 ms/km.
const slowlineSlope = 1.0 / geo.SlowlineSpeedKmPerMs

// Options configure calibration.
type Options struct {
	// Slowline additionally constrains every bestline to speeds of at
	// least 84.5 km/ms (the CBG++ §5.1 modification).
	Slowline bool
}

// Calibration holds the per-landmark bestlines (one-way ms as a function
// of km) plus a pooled fallback for landmarks without their own mesh
// data (stable probes used as landmarks).
type Calibration struct {
	opts   Options
	lines  map[netsim.HostID]mathx.Line
	pooled mathx.Line
}

// Calibrate fits a bestline for every anchor from the constellation's
// mesh, and a pooled bestline over all samples as the probe fallback.
func Calibrate(cons *atlas.Constellation, opts Options) (*Calibration, error) {
	cal := &Calibration{opts: opts, lines: make(map[netsim.HostID]mathx.Line)}
	for _, a := range cons.Anchors() {
		pts := cons.Calibration(a.Host.ID)
		if len(pts) == 0 {
			continue
		}
		line, err := BestLine(toOneWay(pts), opts.Slowline)
		if err != nil {
			return nil, fmt.Errorf("cbg: calibrating %s: %w", a.Host.ID, err)
		}
		cal.lines[a.Host.ID] = line
	}
	pooled, err := BestLine(toOneWay(cons.Pooled()), opts.Slowline)
	if err != nil {
		return nil, fmt.Errorf("cbg: pooled calibration: %w", err)
	}
	cal.pooled = pooled
	return cal, nil
}

// toOneWay converts (distance, RTT) samples to (distance, one-way time).
func toOneWay(pts []mathx.XY) []mathx.XY {
	out := make([]mathx.XY, len(pts))
	for i, p := range pts {
		out[i] = mathx.XY{X: p.X, Y: geo.OneWayMs(p.Y)}
	}
	return out
}

// Line returns the bestline for a landmark, falling back to the pooled
// line for landmarks without their own calibration.
func (c *Calibration) Line(id netsim.HostID) mathx.Line {
	if l, ok := c.lines[id]; ok {
		return l
	}
	return c.pooled
}

// Pooled returns the pooled fallback bestline.
func (c *Calibration) Pooled() mathx.Line { return c.pooled }

// BestLine computes the CBG bestline for one landmark's calibration
// scatter of (distance km, one-way ms) points: the line
//
//	t = intercept + slope·d
//
// that lies below every point, has slope ≥ 1/200 ms/km (no
// faster-than-fiber speeds) and intercept ≥ 0, and among those is
// closest to the data (minimum total vertical distance). With slowline
// set, the slope is further clamped to ≤ 1/84.5 ms/km.
//
// The optimum of this two-variable linear program lies at a vertex of
// the feasible polygon, which is either a lower-convex-hull segment of
// the scatter or a point constraint intersected with one of the bounds.
func BestLine(pts []mathx.XY, slowline bool) (mathx.Line, error) {
	if len(pts) == 0 {
		return mathx.Line{}, mathx.ErrInsufficientData
	}
	var sumD float64
	for _, p := range pts {
		sumD += p.X
	}
	n := float64(len(pts))
	// Objective to maximize: n·c + Σd·m (equivalently minimize total
	// vertical distance from the points down to the line).
	objective := func(l mathx.Line) float64 { return n*l.Intercept + sumD*l.Slope }
	feasible := func(l mathx.Line) bool {
		if l.Intercept < -1e-9 || l.Slope < baselineSlope-1e-12 {
			return false
		}
		if slowline && l.Slope > slowlineSlope+1e-12 {
			return false
		}
		for _, p := range pts {
			if l.At(p.X) > p.Y+1e-9 {
				return false
			}
		}
		return true
	}

	var best mathx.Line
	bestObj := math.Inf(-1)
	consider := func(l mathx.Line) {
		if feasible(l) {
			if o := objective(l); o > bestObj {
				best, bestObj = l, o
			}
		}
	}

	// Candidate 1: lower-hull segments.
	hull := mathx.LowerHull(pts)
	for i := 1; i < len(hull); i++ {
		dx := hull[i].X - hull[i-1].X
		//lint:allow floatexact division-by-zero guard: only an exactly vertical hull segment has no slope
		if dx == 0 {
			continue
		}
		m := (hull[i].Y - hull[i-1].Y) / dx
		consider(mathx.Line{Slope: m, Intercept: hull[i].Y - m*hull[i].X})
	}
	// Candidate 2: baseline slope, maximal intercept below all points.
	consider(boundLine(pts, baselineSlope))
	// Candidate 3: zero intercept, minimal ratio slope.
	minRatio := math.Inf(1)
	for _, p := range pts {
		if p.X > 0 {
			if r := p.Y / p.X; r < minRatio {
				minRatio = r
			}
		}
	}
	if !math.IsInf(minRatio, 1) {
		consider(mathx.Line{Slope: minRatio, Intercept: 0})
	}
	// Candidate 4 (slowline only): slowline slope, maximal intercept.
	if slowline {
		consider(boundLine(pts, slowlineSlope))
	}

	if math.IsInf(bestObj, -1) {
		// No line with the required slope fits below all points and
		// above zero intercept (e.g. a point faster than the baseline,
		// which a correct simulator never produces, or — with slowline —
		// all points faster than 84.5 km/ms). Fall back to the pure
		// bound line with intercept clamped at zero.
		slope := baselineSlope
		if slowline {
			slope = slowlineSlope
		}
		l := boundLine(pts, slope)
		if l.Intercept < 0 {
			l.Intercept = 0
		}
		return l, nil
	}
	return best, nil
}

// boundLine returns the highest line of the given slope still below all
// points (its intercept may be negative).
func boundLine(pts []mathx.XY, slope float64) mathx.Line {
	c := math.Inf(1)
	for _, p := range pts {
		if v := p.Y - slope*p.X; v < c {
			c = v
		}
	}
	return mathx.Line{Slope: slope, Intercept: c}
}

// MaxDistanceKm converts a one-way travel time to the landmark's maximum
// distance estimate under its bestline, capped at the physical baseline
// distance and half the equator.
func (c *Calibration) MaxDistanceKm(id netsim.HostID, oneWayMs float64) float64 {
	line := c.Line(id)
	d := line.InvertX(oneWayMs)
	if lim := geo.MaxDistanceKm(oneWayMs, geo.BaselineSpeedKmPerMs); d > lim {
		d = lim
	}
	if d > geo.HalfEquatorKm {
		d = geo.HalfEquatorKm
	}
	return d
}

// CBG is the classic disk-intersection algorithm.
type CBG struct {
	env *geoloc.Env
	cal *Calibration
}

// New builds a CBG instance from an environment and calibration.
func New(env *geoloc.Env, cal *Calibration) *CBG {
	return &CBG{env: env, cal: cal}
}

// Name implements geoloc.Algorithm.
func (c *CBG) Name() string { return "CBG" }

// Calibration exposes the underlying calibration (used by CBG++ and the
// figure generators).
func (c *CBG) Calibration() *Calibration { return c.cal }

// Disks returns the multilateration disks for a measurement set.
func (c *CBG) Disks(ms []geoloc.Measurement) []geo.Cap {
	ms = geoloc.Collapse(ms)
	caps := make([]geo.Cap, 0, len(ms))
	for _, m := range ms {
		caps = append(caps, geo.Cap{
			Center:   m.Landmark,
			RadiusKm: c.cal.MaxDistanceKm(m.LandmarkID, m.OneWayMs()),
		})
	}
	return caps
}

// Locate implements geoloc.Algorithm: intersect all bestline disks, then
// apply the physical exclusions. The result may be empty — CBG fails
// when some disk underestimates (§5.1). The disks are evaluated against
// the Env's shared landmark distance fields, so the per-landmark
// geometry is a cached slice lookup rather than per-cell trigonometry.
func (c *CBG) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	// Pad every disk by the rasterization margin so boundary cells are
	// kept, then intersect starting from the smallest disk: cheap and
	// keeps the working region minimal.
	pad := c.env.PadKm()
	radii := make([]float64, len(ms))
	min := 0
	for i, m := range ms {
		radii[i] = c.cal.MaxDistanceKm(m.LandmarkID, m.OneWayMs()) + pad
		if radii[i] < radii[min] {
			min = i
		}
	}
	region := c.env.CapRegionFor(ms[min].LandmarkID, geo.Cap{Center: ms[min].Landmark, RadiusKm: radii[min]})
	for i, m := range ms {
		if i == min {
			continue
		}
		c.env.IntersectWithinFor(region, m.LandmarkID, m.Landmark, radii[i])
		if region.Empty() {
			return region, nil
		}
	}
	return c.env.ApplyExclusions(region), nil
}

var _ geoloc.Algorithm = (*CBG)(nil)
