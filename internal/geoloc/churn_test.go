package geoloc

// Churn-storm regression for the landmark caches (DistanceField +
// MaskCache): rounds of decommission / re-provision / recalibration
// must never leave stale geometry servable. Every check compares
// against a freshly computed oracle that bypasses both caches, so a
// stale mask or distance slice surviving churn fails byte-identically.

import (
	"math/rand"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/grid"
	"activegeo/internal/netsim"
)

func TestMaskCacheChurnStorm(t *testing.T) {
	net := netsim.New(4242)
	rng := rand.New(rand.NewSource(4242))
	cons, err := atlas.Build(net, atlas.Config{Anchors: 16, SamplesPerPair: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(4)

	// oracle recomputes the cap region from scratch — no DistanceField,
	// no masks — with the same predicate the cached paths promise.
	oracle := func(p geo.Point, radius float64) *grid.Region {
		r := env.Grid.NewRegion()
		r.AddWithinKm(env.Grid.DistancesFrom(p), radius, env.Grid.CellAt(p))
		return r
	}

	check := func(round int) {
		for _, lm := range cons.Anchors() {
			radius := 500 + rng.Float64()*8000
			got := env.CapRegionFor(lm.Host.ID, geo.Cap{Center: lm.Host.Loc, RadiusKm: radius})
			if want := oracle(lm.Host.Loc, radius); !got.Equal(want) {
				t.Fatalf("round %d: stale geometry served for %s at %v (%d vs %d cells)",
					round, lm.Host.ID, lm.Host.Loc, got.Count(), want.Count())
			}
		}
	}

	check(0)
	for round := 1; round <= 12; round++ {
		// Decommissioned anchors were warmed by the previous check, so
		// invalidation must find exactly one entry in each cache.
		for _, id := range cons.Decommission(2, rng) {
			if f, m := env.InvalidateLandmark(id); f != 1 || m != 1 {
				t.Fatalf("round %d: InvalidateLandmark(%s) evicted (%d fields, %d masks), want (1, 1)", round, id, f, m)
			}
		}
		if _, err := cons.AddAnchors(2, rng); err != nil {
			t.Fatal(err)
		}
		cons.RefreshCalibration(1, rng)
		check(round)
	}

	// The storm is eviction-complete: only the live fleet remains cached.
	if s := env.Masks.Stats(); s.Entries != len(cons.Anchors()) {
		t.Fatalf("mask cache holds %d entries after the storm, fleet has %d anchors", s.Entries, len(cons.Anchors()))
	}
	if s := env.Field.Stats(); s.Entries != len(cons.Anchors()) {
		t.Fatalf("distance field holds %d entries after the storm, fleet has %d anchors", s.Entries, len(cons.Anchors()))
	}

	// Moved host: the same ID re-provisioned elsewhere must be served the
	// new position's geometry even before any invalidation — position is
	// part of the cache key, so the stale family cannot match.
	lm := cons.Anchors()[0]
	moved := geo.DestinationPoint(lm.Host.Loc, 45, 1200)
	got := env.CapRegionFor(lm.Host.ID, geo.Cap{Center: moved, RadiusKm: 3000})
	if want := oracle(moved, 3000); !got.Equal(want) {
		t.Fatalf("moved host %s served stale masks (%d vs %d cells)", lm.Host.ID, got.Count(), want.Count())
	}
}
