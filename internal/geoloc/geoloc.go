// Package geoloc defines the types shared by all active-geolocation
// algorithms: measurements, the Algorithm interface, and the common
// environment (grid + world map) predictions are produced in, including
// the paper's physical-plausibility exclusions (on land, between 60°S
// and 85°N).
package geoloc

import (
	"errors"
	"math"
	"sort"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// Measurement is one round-trip-time observation of the target from a
// landmark in a known location. RTTms must already be corrected for
// measurement artifacts (proxy indirection, double round trips); see
// package measure.
type Measurement struct {
	LandmarkID netsim.HostID
	Landmark   geo.Point
	RTTms      float64
}

// OneWayMs returns the one-way travel time of the measurement.
func (m Measurement) OneWayMs() float64 { return geo.OneWayMs(m.RTTms) }

// Algorithm estimates a target's location from measurements.
type Algorithm interface {
	// Name identifies the algorithm ("CBG", "Quasi-Octant", …).
	Name() string
	// Locate returns the prediction region. An empty region means the
	// algorithm failed to produce any location consistent with the
	// measurements.
	Locate(ms []Measurement) (*grid.Region, error)
}

// ErrNoMeasurements is returned when Locate is called with no usable
// measurements.
var ErrNoMeasurements = errors.New("geoloc: no measurements")

// Env bundles the discretization grid, the world-map masks, and the
// landmark distance-field cache shared by algorithm implementations.
// Build one per experiment and reuse it; the mask construction dominates
// setup cost, and the distance cache amortizes landmark geometry across
// every target and every algorithm that shares the Env.
type Env struct {
	Grid *grid.Grid
	Mask *worldmap.Mask

	// Field caches the distance-to-every-cell slice of each landmark.
	// All five algorithms draw from it, so a landmark's great-circle
	// geometry is computed once per Env, not once per (target,
	// algorithm). Shared slices are immutable.
	Field *grid.DistanceField

	// Masks caches each landmark's radius-quantized cap-mask family,
	// built from Field, so cap/ring region construction is word-wise
	// with the exact distance predicate confined to the quantization
	// annulus (DESIGN.md §8). nil disables the mask fast path; every
	// geometry method then falls back to the per-cell distance scans
	// and produces byte-identical results — the toggle benchaudit's
	// mask-off column uses.
	Masks *grid.MaskCache
}

// DefaultFieldEntries bounds the distance cache. The paper-scale
// constellation has ~1050 landmarks (250 anchors + 800 probes); at 1°
// resolution one entry is ≈165 KB, so the default bound caps the cache
// near 340 MB in the worst case while never evicting in practice.
const DefaultFieldEntries = 2048

// NewEnv builds an environment at the given grid resolution (degrees).
func NewEnv(resDeg float64) *Env {
	g := grid.New(resDeg)
	f := grid.NewDistanceField(g, DefaultFieldEntries)
	return &Env{
		Grid:  g,
		Mask:  worldmap.NewMask(g),
		Field: f,
		Masks: grid.NewMaskCache(f, DefaultFieldEntries, grid.DefaultMaskStepKm),
	}
}

// masksFor returns the landmark's quantized mask family, or nil when
// the mask cache is disabled.
func (e *Env) masksFor(id netsim.HostID, landmark geo.Point) *grid.CapMasks {
	if e.Masks == nil {
		return nil
	}
	return e.Masks.Masks(grid.FieldKey{ID: string(id), Lat: landmark.Lat, Lon: landmark.Lon})
}

// Distances returns the cached distance-from-landmark slice for a
// measurement's landmark (one float32 km per grid cell, in cell order).
func (e *Env) Distances(id netsim.HostID, landmark geo.Point) []float32 {
	return e.Field.Distances(grid.FieldKey{ID: string(id), Lat: landmark.Lat, Lon: landmark.Lon})
}

// CapRegionFor builds the cap's region from the landmark's cached
// distance field, with AddCap's semantics (the cap center's cell is
// always included). With the mask cache enabled the fill is word-wise
// against the bracketing quantized masks; the fallback is the per-cell
// AddWithinKm scan. Both paths apply the same float64 predicate to
// every boundary cell, so the regions are byte-identical.
func (e *Env) CapRegionFor(id netsim.HostID, c geo.Cap) *grid.Region {
	r := e.Grid.NewRegion()
	if cm := e.masksFor(id, c.Center); cm != nil {
		if c.RadiusKm > 0 {
			cm.FillWithinKm(r, c.RadiusKm)
		}
		r.Add(e.Grid.CellAt(c.Center))
		return r
	}
	dist := e.Distances(id, c.Center)
	r.AddWithinKm(dist, c.RadiusKm, e.Grid.CellAt(c.Center))
	return r
}

// IntersectWithinFor prunes r to the cells within maxKm of the
// landmark — Region.IntersectWithinKm over the landmark's cached
// distances, word-wise against the quantized masks when the mask cache
// is enabled. CBG's per-measurement disk intersection runs through
// here.
func (e *Env) IntersectWithinFor(r *grid.Region, id netsim.HostID, landmark geo.Point, maxKm float64) {
	if cm := e.masksFor(id, landmark); cm != nil {
		cm.IntersectWithinKm(r, maxKm)
		return
	}
	r.IntersectWithinKm(e.Distances(id, landmark), maxKm)
}

// InvalidateLandmark evicts the host's entries from both the distance
// field and the mask cache, returning how many of each were dropped.
// Call it when the fleet churns (a landmark decommissioned, or a host
// re-provisioned at a new position); the host+position keys already
// prevent stale entries from being *served* for a moved host, and this
// reclaims their memory immediately.
func (e *Env) InvalidateLandmark(id netsim.HostID) (fields, masks int) {
	fields = e.Field.Invalidate(string(id))
	if e.Masks != nil {
		masks = e.Masks.Invalidate(string(id))
	}
	return fields, masks
}

// RingRegionFor builds the ring's region from the landmark's cached
// distance field, with RingRegion's semantics (including the
// boundary-cell shrink of the inner cap and AddCap's center-cell rule).
func (e *Env) RingRegionFor(id netsim.HostID, ring geo.Ring) *grid.Region {
	g := e.Grid
	r := g.NewRegion()
	// RingRegion subtracts the inner cap only when it can be shrunk by
	// one cell diagonal while staying positive; otherwise boundary cells
	// (which may still contain ring area) are kept.
	shrink := math.Inf(-1)
	if ring.MinKm > 0 {
		if s := ring.MinKm - 1.5*111.195*g.Resolution(); s > 0 {
			shrink = s
		}
	}
	if ring.MaxKm > 0 {
		if cm := e.masksFor(id, ring.Center); cm != nil {
			// Word-wise: certain ring cells by mask algebra, exact
			// two-sided predicate only near the two quantization
			// boundaries. Byte-identical to the scan below.
			cm.FillRingKm(r, shrink, ring.MaxKm)
		} else {
			dist := e.Distances(id, ring.Center)
			for i, d := range dist {
				dd := float64(d)
				if dd <= ring.MaxKm && dd > shrink {
					r.Add(i)
				}
			}
		}
	}
	// The outer cap's AddCap always includes the center cell; when the
	// inner cap is subtracted, its own center-cell rule removes it again.
	cc := g.CellAt(ring.Center)
	if math.IsInf(shrink, -1) {
		r.Add(cc)
	} else {
		r.Remove(cc)
	}
	return r
}

// PadKm is the conservative rasterization margin for this grid: a cell
// should be kept by a disk constraint if any part of the cell could be
// inside the disk, which we approximate by padding the disk radius with
// (slightly more than) half the cell diagonal. Without this, a tight but
// correct disk can drop the very cell containing the target.
func (e *Env) PadKm() float64 {
	return 0.8 * 111.195 * e.Grid.Resolution()
}

// ApplyExclusions intersects the region with the land mask (which already
// excludes terrain north of 85°N and south of 60°S). If no land cell
// survives — a prediction entirely at sea — the latitude exclusion alone
// is applied, so the caller still sees where the algorithm pointed.
func (e *Env) ApplyExclusions(r *grid.Region) *grid.Region {
	masked := r.Clone()
	masked.IntersectWith(e.Mask.LandRef())
	if !masked.Empty() {
		return masked
	}
	sea := r.Clone()
	sea.Filter(func(p geo.Point) bool { return p.Lat <= 85 && p.Lat >= -60 })
	return sea
}

// Collapse deduplicates measurements by landmark, keeping the minimum RTT
// for each — the standard treatment, since queueing can only add delay.
// The result is sorted by landmark ID for determinism.
func Collapse(ms []Measurement) []Measurement {
	best := map[netsim.HostID]Measurement{}
	for _, m := range ms {
		if cur, ok := best[m.LandmarkID]; !ok || m.RTTms < cur.RTTms {
			best[m.LandmarkID] = m
		}
	}
	out := make([]Measurement, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LandmarkID < out[j].LandmarkID })
	return out
}

// CoverageArgmax returns the set of grid cells covered by the maximum
// number of the given constraint regions, along with that maximum count.
// It is the discrete analogue of "the largest subset of disks whose
// intersection is nonempty" from CBG++ (§5.1): any cell covered by k
// disks witnesses a k-subset with nonempty intersection, so the cells at
// the maximum count are exactly the intersection of the largest such
// subset(s).
func CoverageArgmax(g *grid.Grid, regions []*grid.Region) (*grid.Region, int) {
	counts := make([]int16, g.NumCells())
	for _, r := range regions {
		r.Each(func(i int) { counts[i]++ })
	}
	var maxc int16
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	out := g.NewRegion()
	if maxc == 0 {
		return out, 0
	}
	for i, c := range counts {
		if c == maxc {
			out.Add(i)
		}
	}
	return out, int(maxc)
}

// IntersectOrArgmax multilaterates ring/disk constraint regions: it
// first tries the strict intersection of all constraints; when noise
// makes that empty (common for ring constraints at world scale, §5),
// it falls back to the cells covered by the largest consistent subset.
// The strict path keeps successful predictions small — the behaviour
// behind the paper's Figure 9C, where ring-based algorithms produce
// much smaller (and often wrong) regions than CBG.
func IntersectOrArgmax(g *grid.Grid, regions []*grid.Region) *grid.Region {
	if len(regions) == 0 {
		return g.NewRegion()
	}
	strict := regions[0].Clone()
	for _, r := range regions[1:] {
		strict.IntersectWith(r)
		if strict.Empty() {
			// Octant's weighted regions reduce to the maximum-coverage
			// cells when all weights are equal — but a region where only
			// a minority of constraints agree is no prediction at all,
			// so require a clear majority.
			best, count := CoverageArgmax(g, regions)
			if count*2 < len(regions) {
				return g.NewRegion()
			}
			return best
		}
	}
	return strict
}

// RingRegion builds the region covered by a spherical annulus.
func RingRegion(g *grid.Grid, ring geo.Ring) *grid.Region {
	outer := g.CapRegion(geo.Cap{Center: ring.Center, RadiusKm: ring.MaxKm})
	if ring.MinKm > 0 {
		inner := g.CapRegion(geo.Cap{Center: ring.Center, RadiusKm: ring.MinKm})
		// Keep boundary cells: a cell whose center is just inside MinKm
		// may still contain ring area, so only subtract the strict
		// interior by shrinking the inner cap by one cell diagonal.
		shrink := ring.MinKm - 1.5*111.195*g.Resolution()
		if shrink > 0 {
			inner = g.CapRegion(geo.Cap{Center: ring.Center, RadiusKm: shrink})
			outer.SubtractWith(inner)
		}
	}
	return outer
}
