package geoloc

// Env-level equivalence tests for the quantized mask cache: every
// geometry method must produce byte-identical regions with Masks
// enabled and disabled, across random and degenerate caps and rings.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
	"activegeo/internal/netsim"
)

// withMasksOff runs fn with the env's mask cache disabled, restoring it
// after. Tests in this package run sequentially, so the toggle is safe.
func withMasksOff(env *Env, fn func()) {
	saved := env.Masks
	env.Masks = nil
	defer func() { env.Masks = saved }()
	fn()
}

func randomPoint(rng *rand.Rand) geo.Point {
	return geo.Point{
		Lat: math.Asin(2*rng.Float64()-1) * 180 / math.Pi,
		Lon: 360*rng.Float64() - 180,
	}
}

// TestEnvMaskEquivalence: CapRegionFor, RingRegionFor and
// IntersectWithinFor must be byte-identical with and without the mask
// cache, including degenerate radii (≤ 0), rings with no usable inner
// bound, inverted rings, and radii past the antipode.
func TestEnvMaskEquivalence(t *testing.T) {
	env := NewEnv(4)
	if env.Masks == nil {
		t.Fatal("NewEnv did not wire a mask cache")
	}
	rng := rand.New(rand.NewSource(91))
	for k := 0; k < 25; k++ {
		id := netsim.HostID(fmt.Sprintf("lm-%d", k%7)) // repeats → cache hits
		p := randomPoint(rng)
		radii := []float64{
			rng.Float64() * geo.HalfEquatorKm,
			-10, 0, 1e-9,
			grid.DefaultMaskStepKm,
			math.Pi*geo.EarthRadiusKm + 50,
		}
		for _, radius := range radii {
			cap := geo.Cap{Center: p, RadiusKm: radius}
			on := env.CapRegionFor(id, cap)
			var off *grid.Region
			withMasksOff(env, func() { off = env.CapRegionFor(id, cap) })
			if !on.Equal(off) {
				t.Fatalf("cap %v r=%v: mask-on %d cells, mask-off %d", p, radius, on.Count(), off.Count())
			}
		}
		rings := []geo.Ring{
			{Center: p, MinKm: rng.Float64() * 3000, MaxKm: rng.Float64() * geo.HalfEquatorKm},
			{Center: p, MinKm: 0, MaxKm: 2500},
			{Center: p, MinKm: 10, MaxKm: 2500},   // shrink stays negative → unbounded inner edge
			{Center: p, MinKm: 6000, MaxKm: 4000}, // inverted
			{Center: p, MinKm: 0, MaxKm: 0},       // empty outer
		}
		for _, ring := range rings {
			on := env.RingRegionFor(id, ring)
			var off *grid.Region
			withMasksOff(env, func() { off = env.RingRegionFor(id, ring) })
			if !on.Equal(off) {
				t.Fatalf("ring %+v: mask-on %d cells, mask-off %d", ring, on.Count(), off.Count())
			}
		}
		base := env.Grid.CapRegion(geo.Cap{Center: randomPoint(rng), RadiusKm: 4000 + rng.Float64()*8000})
		maxKm := rng.Float64() * geo.HalfEquatorKm
		a := base.Clone()
		env.IntersectWithinFor(a, id, p, maxKm)
		b := base.Clone()
		withMasksOff(env, func() { env.IntersectWithinFor(b, id, p, maxKm) })
		if !a.Equal(b) {
			t.Fatalf("intersect maxKm=%v: mask-on %d cells, mask-off %d", maxKm, a.Count(), b.Count())
		}
	}
}

// TestInvalidateLandmark: eviction must hit both caches for a warmed
// landmark and report zero for an unknown one.
func TestInvalidateLandmark(t *testing.T) {
	env := NewEnv(5)
	p := geo.Point{Lat: 48.85, Lon: 2.35}
	env.CapRegionFor("warm", geo.Cap{Center: p, RadiusKm: 1000})
	if f, m := env.InvalidateLandmark("warm"); f != 1 || m != 1 {
		t.Fatalf("InvalidateLandmark(warm) = (%d fields, %d masks), want (1, 1)", f, m)
	}
	if f, m := env.InvalidateLandmark("cold"); f != 0 || m != 0 {
		t.Fatalf("InvalidateLandmark(cold) = (%d, %d), want (0, 0)", f, m)
	}
	// With Masks disabled the call must stay nil-safe.
	withMasksOff(env, func() {
		if f, m := env.InvalidateLandmark("cold"); f != 0 || m != 0 {
			t.Fatalf("mask-off InvalidateLandmark = (%d, %d)", f, m)
		}
	})
}
