package geoloc

import (
	"sync"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

var (
	envOnce sync.Once
	envFix  *Env
)

func testEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() { envFix = NewEnv(2.0) })
	return envFix
}

func TestCollapse(t *testing.T) {
	ms := []Measurement{
		{LandmarkID: "b", RTTms: 30},
		{LandmarkID: "a", RTTms: 50},
		{LandmarkID: "a", RTTms: 20},
		{LandmarkID: "a", RTTms: 40},
	}
	out := Collapse(ms)
	if len(out) != 2 {
		t.Fatalf("collapsed to %d", len(out))
	}
	if out[0].LandmarkID != "a" || out[0].RTTms != 20 {
		t.Errorf("out[0] = %+v, want a@20", out[0])
	}
	if out[1].LandmarkID != "b" || out[1].RTTms != 30 {
		t.Errorf("out[1] = %+v", out[1])
	}
	if len(Collapse(nil)) != 0 {
		t.Error("collapse of nil")
	}
}

func TestOneWay(t *testing.T) {
	m := Measurement{RTTms: 42}
	if m.OneWayMs() != 21 {
		t.Errorf("one way = %f", m.OneWayMs())
	}
}

func TestApplyExclusionsLand(t *testing.T) {
	e := testEnv(t)
	// A region over central Europe survives land masking.
	r := e.Grid.CapRegion(geo.Cap{Center: geo.Point{Lat: 50, Lon: 10}, RadiusKm: 500})
	masked := e.ApplyExclusions(r)
	if masked.Empty() {
		t.Fatal("European region emptied by exclusions")
	}
	masked.Each(func(i int) {
		if e.Mask.CountryOfCell(i) == "" {
			t.Fatalf("masked region kept water cell %d", i)
		}
	})
}

func TestApplyExclusionsAllSea(t *testing.T) {
	e := testEnv(t)
	// Mid-Pacific region: no land — the latitude-band fallback applies.
	r := e.Grid.CapRegion(geo.Cap{Center: geo.Point{Lat: -40, Lon: -120}, RadiusKm: 800})
	masked := e.ApplyExclusions(r)
	if masked.Empty() {
		t.Fatal("sea region should fall back to latitude masking, not vanish")
	}
	masked.Each(func(i int) {
		p := e.Grid.Center(i)
		if p.Lat > 85 || p.Lat < -60 {
			t.Fatalf("excluded latitude survived: %v", p)
		}
	})
}

func TestApplyExclusionsPolar(t *testing.T) {
	e := testEnv(t)
	r := e.Grid.CapRegion(geo.Cap{Center: geo.Point{Lat: 89, Lon: 0}, RadiusKm: 900})
	masked := e.ApplyExclusions(r)
	masked.Each(func(i int) {
		if e.Grid.Center(i).Lat > 85 {
			t.Fatalf("cell north of 85°N survived")
		}
	})
}

func TestCoverageArgmax(t *testing.T) {
	e := testEnv(t)
	g := e.Grid
	a := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 50, Lon: 10}, RadiusKm: 1000})
	b := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 51, Lon: 12}, RadiusKm: 1000})
	c := g.CapRegion(geo.Cap{Center: geo.Point{Lat: -30, Lon: 140}, RadiusKm: 1000}) // disjoint

	best, count := CoverageArgmax(g, []*grid.Region{a, b, c})
	if count != 2 {
		t.Fatalf("max count = %d, want 2", count)
	}
	// The argmax region is exactly the a∩b lens.
	ab := a.Clone()
	ab.IntersectWith(b)
	if best.Count() != ab.Count() {
		t.Errorf("argmax %d cells, intersection %d", best.Count(), ab.Count())
	}
	// Degenerate cases.
	empty, count := CoverageArgmax(g, nil)
	if count != 0 || !empty.Empty() {
		t.Error("empty input should give empty region")
	}
}

func TestIntersectOrArgmaxStrict(t *testing.T) {
	e := testEnv(t)
	g := e.Grid
	a := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 50, Lon: 10}, RadiusKm: 1500})
	b := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 51, Lon: 12}, RadiusKm: 1500})
	strict := IntersectOrArgmax(g, []*grid.Region{a, b})
	want := a.Clone()
	want.IntersectWith(b)
	if strict.Count() != want.Count() {
		t.Errorf("strict path: %d cells, want %d", strict.Count(), want.Count())
	}
}

func TestIntersectOrArgmaxFallback(t *testing.T) {
	e := testEnv(t)
	g := e.Grid
	// Three regions: a and b overlap; c is disjoint → strict intersection
	// empty → majority fallback (2 of 3) returns a∩b.
	a := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 50, Lon: 10}, RadiusKm: 1200})
	b := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 51, Lon: 12}, RadiusKm: 1200})
	c := g.CapRegion(geo.Cap{Center: geo.Point{Lat: -30, Lon: 140}, RadiusKm: 500})
	out := IntersectOrArgmax(g, []*grid.Region{a, b, c})
	if out.Empty() {
		t.Fatal("fallback should be nonempty (2/3 majority)")
	}
	if !out.ContainsPoint(geo.Point{Lat: 50.5, Lon: 11}) {
		t.Error("fallback should cover the a∩b lens")
	}

	// No majority: four pairwise-disjoint regions → empty result.
	d1 := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 0, Lon: 0}, RadiusKm: 300})
	d2 := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 0, Lon: 90}, RadiusKm: 300})
	d3 := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 0, Lon: -90}, RadiusKm: 300})
	d4 := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 60, Lon: 180}, RadiusKm: 300})
	out = IntersectOrArgmax(g, []*grid.Region{d1, d2, d3, d4})
	if !out.Empty() {
		t.Errorf("minority agreement should yield no prediction, got %d cells", out.Count())
	}
	if out := IntersectOrArgmax(g, nil); !out.Empty() {
		t.Error("no constraints should give empty region")
	}
}

func TestRingRegion(t *testing.T) {
	e := testEnv(t)
	g := e.Grid
	center := geo.Point{Lat: 48.86, Lon: 2.35}
	ring := geo.Ring{Center: center, MinKm: 1000, MaxKm: 2500}
	r := RingRegion(g, ring)
	if r.Empty() {
		t.Fatal("empty ring region")
	}
	// Center excluded (well inside MinKm, with a cell of slack).
	if r.ContainsPoint(center) {
		t.Error("ring region contains its own center")
	}
	// All cells within MaxKm; boundary cells get rasterization slack.
	r.Each(func(i int) {
		d := geo.DistanceKm(g.Center(i), center)
		if d > 2500+1 {
			t.Fatalf("cell at %.0f km beyond ring max", d)
		}
		if d < 1000-2*111.195*g.Resolution() {
			t.Fatalf("cell at %.0f km deep inside ring min", d)
		}
	})
	// Zero-min ring is a disk.
	disk := RingRegion(g, geo.Ring{Center: center, MinKm: 0, MaxKm: 800})
	if !disk.ContainsPoint(center) {
		t.Error("zero-min ring should contain center")
	}
}

func TestPadKmScalesWithResolution(t *testing.T) {
	coarse := NewEnv(3.0)
	if testEnv(t).PadKm() >= coarse.PadKm() {
		t.Error("finer grid should have smaller padding")
	}
}
