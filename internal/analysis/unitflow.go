package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// DefaultUnitFlowScope lists the packages whose float64 values carry
// physical dimensions — the geometry kernel, the delay models and the
// measurement pipeline. mathx is deliberately excluded: its fits are
// generic (x, y) arithmetic and the dimensions live at the call sites.
var DefaultUnitFlowScope = []string{
	"activegeo/internal/geo",
	"activegeo/internal/grid",
	"activegeo/internal/geoloc",
	"activegeo/internal/spotter",
	"activegeo/internal/cbg",
	"activegeo/internal/cbgpp",
	"activegeo/internal/octant",
	"activegeo/internal/hybrid",
	"activegeo/internal/worldmap",
	"activegeo/internal/netsim",
	"activegeo/internal/measure",
	"activegeo/internal/atlas",
	"activegeo/internal/atlasd",
	"activegeo/internal/stream",
	"activegeo/internal/assess",
	"activegeo/internal/iclab",
	"activegeo/internal/crowd",
}

// NewUnitflow builds the unitflow analyzer: a flow-sensitive dimension
// taint over float64 values. Identifier suffixes declare units —
// DistanceKm, oneWayMs, bearingDeg, latRad, speedKmPerMs — and the geo
// conversion constants (degToRad, radToDeg) carry their dimension
// ratios, so units propagate through multiplication and division the
// way physical dimensions do (ms · km/ms = km). The pass flags
//
//   - additive arithmetic or comparison mixing two different known
//     units (adding milliseconds to kilometres);
//   - assigning a value of one known unit to an identifier whose name
//     declares another (boundKm := oneWayMs — the paper's
//     delay→distance conversion forgotten);
//   - passing a known-unit value to a parameter whose name declares a
//     different unit (geo.MaxDistanceKm(distKm, …) where the first
//     parameter is oneWayMs);
//   - returning a known-unit value from a function whose name declares
//     a different result unit;
//   - trigonometry on degrees (math.Sin(latDeg) without degToRad).
//
// Radians are dimensionless in products (2·EarthRadiusKm·asin(√h) is
// km), so unit compatibility is checked modulo rad; degrees are a real
// dimension everywhere — deg/rad confusion is exactly the class of bug
// the pass exists for. Values without a known unit never flag: the
// pass is deliberately silent where names carry no dimension.
func NewUnitflow(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "unitflow",
		Doc:  "flags cross-unit float arithmetic (km/ms/deg/rad) without an explicit conversion",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fn, ok := n.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					return true
				}
				u := &unitFlow{pass: pass, vars: map[types.Object]unit{}, fn: fn}
				u.seedParams()
				u.stmts(fn.Body.List)
				return true
			})
		}
		return nil
	}
	return a
}

// unit is a dimension vector (exponents per dimension); nil means
// unknown, the empty map means known-dimensionless.
type unit map[string]int

func (u unit) known() bool { return u != nil }

// stripRad drops the rad dimension: radians are dimensionless in
// products.
func (u unit) stripRad() unit {
	if u == nil {
		return nil
	}
	out := unit{}
	for d, e := range u {
		if d != "rad" && e != 0 {
			out[d] = e
		}
	}
	return out
}

// compatible reports whether two known units agree modulo rad.
// Dimensionless values are compatible with everything: literals and
// pure ratios are unit-polymorphic (distKm <= 0, 1.5*delayMs), so only
// two DIFFERENT concrete dimensions ever flag.
func compatible(a, b unit) bool {
	as, bs := a.stripRad(), b.stripRad()
	if len(as) == 0 || len(bs) == 0 {
		return true
	}
	if len(as) != len(bs) {
		return false
	}
	for d, e := range as {
		if bs[d] != e {
			return false
		}
	}
	return true
}

func (u unit) String() string {
	if u == nil {
		return "?"
	}
	dims := make([]string, 0, len(u))
	for d, e := range u {
		if e != 0 {
			dims = append(dims, d)
		}
	}
	if len(dims) == 0 {
		return "dimensionless"
	}
	sort.Strings(dims)
	var num, den []string
	for _, d := range dims {
		e := u[d]
		part := d
		if e == 2 || e == -2 {
			part = d + "^2"
		} else if e > 2 || e < -2 {
			part = fmt.Sprintf("%s^%d", d, abs(e))
		}
		if e > 0 {
			num = append(num, part)
		} else {
			den = append(den, part)
		}
	}
	s := strings.Join(num, "·")
	if s == "" {
		s = "1"
	}
	if len(den) > 0 {
		s += "/" + strings.Join(den, "·")
	}
	return s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func mulUnits(a, b unit, sign int) unit {
	if a == nil || b == nil {
		return nil
	}
	out := unit{}
	for d, e := range a {
		out[d] += e
	}
	for d, e := range b {
		out[d] += sign * e
	}
	for d, e := range out {
		if e == 0 {
			delete(out, d)
		}
	}
	return out
}

// convRe matches conversion-constant names like degToRad, msToKm.
var convRe = regexp.MustCompile(`^(deg|rad|km|ms)To(Deg|Rad|Km|Ms)$`)

// unitSuffixes, longest first so KmPerMs wins over Km. The base
// suffixes are crossed into every XPerY ratio (kmPerDeg, msPerKm, …)
// at init.
var unitSuffixes = buildSuffixes()

type suffixEntry struct {
	suffix string
	u      unit
}

func buildSuffixes() []suffixEntry {
	base := []suffixEntry{
		{"Km2", unit{"km": 2}},
		{"Km", unit{"km": 1}},
		{"Ms", unit{"ms": 1}},
		{"Deg", unit{"deg": 1}},
		{"Rad", unit{"rad": 1}},
	}
	var out []suffixEntry
	for _, num := range base {
		for _, den := range base {
			if num.suffix == den.suffix {
				continue
			}
			u := unit{}
			for d, e := range num.u {
				u[d] += e
			}
			for d, e := range den.u {
				u[d] -= e
			}
			out = append(out, suffixEntry{num.suffix + "Per" + den.suffix, u})
		}
	}
	out = append(out, base...)
	sort.Slice(out, func(i, j int) bool { return len(out[i].suffix) > len(out[j].suffix) })
	return out
}

// wholeNames are identifiers that are a unit by themselves.
var wholeNames = map[string]unit{
	"km": {"km": 1}, "ms": {"ms": 1}, "deg": {"deg": 1}, "rad": {"rad": 1},
}

// latLonNames declare degrees — but only at declaration sites that are
// API surface (struct fields, parameters): a local named lat1 is very
// often the radian-converted copy.
var latLonNames = map[string]bool{"lat": true, "lon": true, "lng": true}

// resultExceptions maps function names whose unit-looking suffix does
// NOT describe the result: CosForKm returns a cosine threshold (the
// parameter is the km value).
var resultExceptions = map[string]unit{}

// unitFromName infers the unit an identifier's name declares. Trailing
// digits are stripped (lat1, dist2). allowLatLon extends the inference
// to Lat/Lon (degrees) for fields and parameters.
func unitFromName(name string, allowLatLon bool) unit {
	name = strings.TrimRight(name, "0123456789_")
	if name == "" {
		return nil
	}
	if m := convRe.FindStringSubmatch(name); m != nil {
		from := strings.ToLower(m[1])
		to := strings.ToLower(m[2])
		if from == to {
			return nil
		}
		return unit{to: 1, from: -1}
	}
	if u, ok := wholeNames[name]; ok {
		cp := unit{}
		for d, e := range u {
			cp[d] = e
		}
		return cp
	}
	if allowLatLon {
		lower := strings.ToLower(name)
		if latLonNames[lower] {
			return unit{"deg": 1}
		}
		if len(name) > 3 {
			tail := name[len(name)-3:]
			if (tail == "Lat" || tail == "Lon" || tail == "Lng") && !strings.HasSuffix(name, "ForKm") {
				return unit{"deg": 1}
			}
		}
	}
	// Functions like CosForKm take a km parameter but return something
	// else; the "ForX" tail is parameter documentation, not a result
	// unit.
	if idx := strings.LastIndex(name, "For"); idx > 0 {
		if _, ok := suffixUnit(name[idx+3:]); ok {
			return nil
		}
	}
	if u, ok := suffixUnit(name); ok {
		return u
	}
	return nil
}

// suffixUnit matches a camelCase unit suffix (oneWayMs, speedKmPerMs)
// or a whole name that IS a unit expression with a lowercase first
// letter (kmPerDeg, msPerKm).
func suffixUnit(name string) (unit, bool) {
	for _, s := range unitSuffixes {
		whole := len(name) == len(s.suffix) &&
			strings.EqualFold(name[:1], s.suffix[:1]) &&
			name[1:] == s.suffix[1:]
		if !whole && !strings.HasSuffix(name, s.suffix) {
			continue
		}
		cp := unit{}
		for d, e := range s.u {
			cp[d] = e
		}
		return cp, true
	}
	return nil, false
}

// unitFlow tracks units through one function body.
type unitFlow struct {
	pass *Pass
	fn   *ast.FuncDecl
	vars map[types.Object]unit
}

// seedParams assigns declared units to the function's parameters.
func (u *unitFlow) seedParams() {
	if u.fn.Type.Params == nil {
		return
	}
	for _, field := range u.fn.Type.Params.List {
		for _, name := range field.Names {
			obj := u.pass.Info.Defs[name]
			if obj == nil || !isFloat(obj.Type()) {
				continue
			}
			if un := unitFromName(name.Name, true); un != nil {
				u.vars[obj] = un
			}
		}
	}
}

func (u *unitFlow) stmts(list []ast.Stmt) {
	for _, s := range list {
		u.stmt(s)
	}
}

func (u *unitFlow) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		u.unitOf(st.X)
	case *ast.AssignStmt:
		u.assign(st)
	case *ast.ReturnStmt:
		u.ret(st)
	case *ast.IfStmt:
		u.stmt(st.Init)
		u.unitOf(st.Cond)
		u.stmt(st.Body)
		u.stmt(st.Else)
	case *ast.ForStmt:
		u.stmt(st.Init)
		if st.Cond != nil {
			u.unitOf(st.Cond)
		}
		u.stmt(st.Post)
		u.stmt(st.Body)
	case *ast.RangeStmt:
		u.unitOf(st.X)
		u.stmt(st.Body)
	case *ast.BlockStmt:
		u.stmts(st.List)
	case *ast.SwitchStmt:
		u.stmt(st.Init)
		if st.Tag != nil {
			u.unitOf(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					u.unitOf(e)
				}
				u.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		u.stmt(st.Init)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				u.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				u.stmt(cc.Comm)
				u.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		u.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						u.bind(name, u.unitOf(vs.Values[i]), vs.Values[i].Pos())
					}
				}
			}
		}
	case *ast.GoStmt:
		u.unitOf(st.Call)
	case *ast.DeferStmt:
		u.unitOf(st.Call)
	case *ast.SendStmt:
		u.unitOf(st.Value)
	case *ast.IncDecStmt:
		u.unitOf(st.X)
	}
}

// assign checks and propagates units across one assignment.
func (u *unitFlow) assign(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		// Tuple assignment from a call: evaluate for side checks only.
		for _, r := range st.Rhs {
			u.unitOf(r)
		}
		return
	}
	for i, lhs := range st.Lhs {
		rhs := st.Rhs[i]
		ru := u.unitOf(rhs)
		switch op := st.Tok; op {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			lu := u.unitOf(lhs)
			if lu.known() && ru.known() && !compatible(lu, ru) {
				u.pass.Reportf(st.TokPos,
					"mixing %s and %s with %s: convert explicitly before combining units", lu, ru, op)
			}
			continue
		case token.MUL_ASSIGN, token.QUO_ASSIGN:
			continue // lhs unit legitimately changes; give up tracking
		}
		if id, ok := lhs.(*ast.Ident); ok {
			u.bind(id, ru, rhs.Pos())
			continue
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok {
			if du := unitFromName(sel.Sel.Name, true); du != nil && ru.known() && isFloat(u.pass.TypeOf(lhs)) && !compatible(du, ru) {
				u.pass.Reportf(rhs.Pos(),
					"assigning %s value to field %q (%s by its name): missing unit conversion", ru, sel.Sel.Name, du)
			}
		}
	}
}

// bind records a variable's flow unit, checking it against the unit the
// name itself declares.
func (u *unitFlow) bind(id *ast.Ident, ru unit, pos token.Pos) {
	if id.Name == "_" {
		return
	}
	obj := u.pass.Info.Defs[id]
	if obj == nil {
		obj = u.pass.Info.Uses[id]
	}
	if obj == nil || !isFloat(obj.Type()) {
		return
	}
	declared := unitFromName(id.Name, false)
	if declared != nil && ru.known() && !compatible(declared, ru) {
		u.pass.Reportf(pos,
			"assigning %s value to %q (%s by its name suffix): missing unit conversion", ru, id.Name, declared)
	}
	switch {
	case ru.known():
		u.vars[obj] = ru
	case declared != nil:
		u.vars[obj] = declared
	default:
		delete(u.vars, obj)
	}
}

// ret checks a return value against the function name's declared unit.
func (u *unitFlow) ret(st *ast.ReturnStmt) {
	for _, e := range st.Results {
		u.unitOf(e)
	}
	if len(st.Results) != 1 || u.fn.Type.Results == nil || u.fn.Type.Results.NumFields() != 1 {
		return
	}
	if !isFloat(u.pass.TypeOf(st.Results[0])) {
		return
	}
	declared := u.funcResultUnit(u.fn.Name.Name)
	if declared == nil {
		return
	}
	got := u.unitOf(st.Results[0])
	if got.known() && !compatible(declared, got) {
		u.pass.Reportf(st.Results[0].Pos(),
			"returning %s value from %s (result is %s by its name suffix): missing unit conversion",
			got, u.fn.Name.Name, declared)
	}
}

func (u *unitFlow) funcResultUnit(name string) unit {
	if ex, ok := resultExceptions[name]; ok {
		return ex
	}
	return unitFromName(name, false)
}

// mathFns classifies math.* calls for unit purposes.
var trigArgRad = map[string]bool{"Sin": true, "Cos": true, "Tan": true}
var trigResultRad = map[string]bool{"Asin": true, "Acos": true, "Atan": true, "Atan2": true}

// unitOf computes the unit of an expression, reporting mixed-unit
// arithmetic as it goes. Each expression node is visited exactly once
// per statement walk, so diagnostics do not duplicate.
func (u *unitFlow) unitOf(e ast.Expr) unit {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.ParenExpr:
		return u.unitOf(x.X)
	case *ast.Ident:
		obj := u.pass.Info.Uses[x]
		if obj == nil {
			obj = u.pass.Info.Defs[x]
		}
		if obj == nil {
			return nil
		}
		if un, ok := u.vars[obj]; ok {
			return un
		}
		if !isFloat(obj.Type()) {
			return nil
		}
		switch obj.(type) {
		case *types.Const, *types.Var:
			return unitFromName(obj.Name(), false)
		}
		return nil
	case *ast.SelectorExpr:
		// Evaluate the base for side checks (method calls in chains are
		// CallExprs and arrive separately).
		if t := u.pass.TypeOf(e); t != nil && isFloat(t) {
			if un := unitFromName(x.Sel.Name, true); un != nil {
				return un
			}
		}
		return nil
	case *ast.BasicLit:
		return unit{}
	case *ast.UnaryExpr:
		return u.unitOf(x.X)
	case *ast.BinaryExpr:
		return u.binary(x)
	case *ast.CallExpr:
		return u.call(x)
	case *ast.IndexExpr:
		u.unitOf(x.Index)
		return nil
	case *ast.TypeAssertExpr:
		return nil
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				vu := u.unitOf(kv.Value)
				if key, ok := kv.Key.(*ast.Ident); ok {
					if du := unitFromName(key.Name, true); du != nil && vu.known() &&
						isFloat(u.pass.TypeOf(kv.Value)) && !compatible(du, vu) {
						u.pass.Reportf(kv.Value.Pos(),
							"assigning %s value to field %q (%s by its name): missing unit conversion",
							vu, key.Name, du)
					}
				}
			} else {
				u.unitOf(el)
			}
		}
		return nil
	case *ast.FuncLit:
		// A nested function gets its own (conservative, unseeded) walk.
		inner := &unitFlow{pass: u.pass, vars: map[types.Object]unit{}, fn: u.fn}
		inner.stmts(x.Body.List)
		return nil
	}
	return nil
}

func (u *unitFlow) binary(x *ast.BinaryExpr) unit {
	lu := u.unitOf(x.X)
	ru := u.unitOf(x.Y)
	switch x.Op {
	case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		if !isFloat(u.pass.TypeOf(x.X)) && !isFloat(u.pass.TypeOf(x.Y)) {
			return nil
		}
		if lu.known() && ru.known() && !compatible(lu, ru) {
			u.pass.Reportf(x.OpPos,
				"mixing %s and %s with %s: convert explicitly before combining units", lu, ru, x.Op)
		}
		switch x.Op {
		case token.ADD, token.SUB:
			if lu.known() && len(lu.stripRad()) > 0 {
				return lu
			}
			return ru
		}
		return nil
	case token.MUL:
		return mulUnits(lu, ru, 1)
	case token.QUO:
		return mulUnits(lu, ru, -1)
	}
	return nil
}

func (u *unitFlow) call(x *ast.CallExpr) unit {
	// Conversions: float64(v) keeps v's unit.
	if t := u.pass.Info.Types[x.Fun]; t.IsType() {
		if len(x.Args) == 1 {
			return u.unitOf(x.Args[0])
		}
		return nil
	}
	var name string
	var obj types.Object
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		obj = u.pass.Info.Uses[fun]
		name = fun.Name
	case *ast.SelectorExpr:
		obj = u.pass.Info.Uses[fun.Sel]
		name = fun.Sel.Name
	}
	fn, _ := obj.(*types.Func)

	// math.* special cases: trig wants radians, inverse trig returns
	// them, Sqrt halves even exponents (km² → km), Abs/Min/Max behave
	// additively.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
		argUnits := make([]unit, len(x.Args))
		for i, a := range x.Args {
			argUnits[i] = u.unitOf(a)
		}
		switch {
		case trigArgRad[name]:
			if len(argUnits) == 1 && argUnits[0].known() && argUnits[0]["deg"] != 0 {
				u.pass.Reportf(x.Args[0].Pos(),
					"math.%s of a value in degrees: convert with degToRad first", name)
			}
			return unit{}
		case trigResultRad[name]:
			return unit{"rad": 1}
		case name == "Sqrt" && len(argUnits) == 1 && argUnits[0].known():
			out := unit{}
			for d, e := range argUnits[0] {
				if e%2 != 0 {
					return nil
				}
				out[d] = e / 2
			}
			return out
		case name == "Abs" && len(argUnits) == 1:
			return argUnits[0]
		case (name == "Min" || name == "Max") && len(argUnits) == 2:
			if argUnits[0].known() && argUnits[1].known() && !compatible(argUnits[0], argUnits[1]) {
				u.pass.Reportf(x.Args[1].Pos(),
					"mixing %s and %s in math.%s: convert explicitly before combining units",
					argUnits[0], argUnits[1], name)
			}
			if argUnits[0].known() {
				return argUnits[0]
			}
			return argUnits[1]
		case name == "Pow" || name == "Hypot" || name == "Mod":
			return nil
		}
		return nil
	}

	// Ordinary calls: check each known-unit argument against the unit
	// the parameter name declares, then derive the result unit from the
	// callee's name.
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	for i, a := range x.Args {
		au := u.unitOf(a)
		if sig == nil || !au.known() || len(au.stripRad()) == 0 {
			continue
		}
		if i >= sig.Params().Len() {
			break // variadic tail
		}
		p := sig.Params().At(i)
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break
		}
		if !isFloat(p.Type()) {
			continue
		}
		if pu := unitFromName(p.Name(), true); pu != nil && !compatible(pu, au) {
			u.pass.Reportf(a.Pos(),
				"passing %s value as parameter %q (%s) of %s: missing unit conversion",
				au, p.Name(), pu, name)
		}
	}
	if fn == nil {
		return nil
	}
	if sig != nil && sig.Results().Len() == 1 && isFloat(sig.Results().At(0).Type()) {
		return u.funcResultUnit(name)
	}
	return nil
}
