package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"activegeo/internal/analysis"
)

// loadReal loads one of this repository's real packages.
func loadReal(t *testing.T, loader *analysis.Loader, path string) *analysis.Package {
	t.Helper()
	rel := strings.TrimPrefix(path, loader.ModPath+"/")
	pkg, err := loader.LoadDir(filepath.Join(loader.ModDir, filepath.FromSlash(rel)), path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return pkg
}

// TestSimclockAllowlist proves the exemption mechanism is the package
// scope list, not an accident of the code: internal/telemetry and
// internal/proxy both read the wall clock (span timers, socket
// deadlines), the default scope produces zero findings on them, and
// force-scoping the same analyzer onto them produces findings.
func TestSimclockAllowlist(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"activegeo/internal/telemetry", "activegeo/internal/proxy"} {
		pkg := loadReal(t, loader, path)

		def := analysis.NewSimclock(analysis.DefaultSimClockScope)
		diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{def})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("%s is allowlisted (not in scope) but got findings: %v", path, diags)
		}

		forced := analysis.NewSimclock([]string{path})
		diags, err = analysis.RunPackage(pkg, []*analysis.Analyzer{forced})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) == 0 {
			t.Errorf("%s reads the wall clock, so force-scoping simclock onto it must find something — the allowlist, not the code, is what exempts it", path)
		}
	}
}

// TestSimclockScopeCoversSimPackages pins the scope list itself.
func TestSimclockScopeCoversSimPackages(t *testing.T) {
	want := map[string]bool{
		"activegeo/internal/netsim":      true,
		"activegeo/internal/measure":     true,
		"activegeo/internal/experiments": true,
	}
	if len(analysis.DefaultSimClockScope) != len(want) {
		t.Fatalf("scope = %v, want the three sim packages", analysis.DefaultSimClockScope)
	}
	for _, p := range analysis.DefaultSimClockScope {
		if !want[p] {
			t.Errorf("unexpected package %q in simclock scope", p)
		}
	}
}

// TestMeasureDirectivesHold: internal/measure is in scope and reads
// the wall clock only in tcp.go under reasoned directives — the
// default suite must report nothing there.
func TestMeasureDirectivesHold(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadReal(t, loader, "activegeo/internal/measure")
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{analysis.NewSimclock(analysis.DefaultSimClockScope)})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("measure/tcp.go directives no longer hold: %v", diags)
	}
}
