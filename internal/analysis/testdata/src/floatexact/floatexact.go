// Package floatexact holds floatexact analyzer fixtures. scoreTie is
// distilled from the pre-PR 2 Spotter, which compared cell scores with
// == to pick a winner — exactly where the vector kernel's acos-dot
// distances and the haversine reference disagree by ULPs. The
// division-by-zero sentinel mirrors grid.Region's centroid guards,
// which carry the same directive in production.
package floatexact

import "math"

func scoreTie(score, best float64) bool {
	return score == best // want "exact float comparison"
}

func notEqualTie(a, b float64) bool {
	return a != b // want "exact float comparison"
}

func mixedIntFloat(count int, limit float64) bool {
	return float64(count) == limit // want "exact float comparison"
}

// viaEpsilon is the approved shape (mathx.ApproxEqual / mathx.Within
// in production code).
func viaEpsilon(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func intsAreFine(a, b int) bool {
	return a == b
}

func constantFolded() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// allowedSentinel: a reasoned directive keeps deliberate exact
// sentinels, as in grid.Region centroid guards.
func allowedSentinel(wsum float64) bool {
	//lint:allow floatexact division-by-zero guard: a sum of non-negative areas is zero iff the region is empty
	return wsum == 0
}
