// Package floatexact holds floatexact analyzer fixtures. scoreTie is
// distilled from the pre-PR 2 Spotter, which compared cell scores with
// == to pick a winner — exactly where the vector kernel's acos-dot
// distances and the haversine reference disagree by ULPs. The
// division-by-zero sentinel mirrors grid.Region's centroid guards,
// which carry the same directive in production.
package floatexact

import "math"

func scoreTie(score, best float64) bool {
	return score == best // want "exact float comparison"
}

func notEqualTie(a, b float64) bool {
	return a != b // want "exact float comparison"
}

func mixedIntFloat(count int, limit float64) bool {
	return float64(count) == limit // want "exact float comparison"
}

// viaEpsilon is the approved shape (mathx.ApproxEqual / mathx.Within
// in production code).
func viaEpsilon(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func intsAreFine(a, b int) bool {
	return a == b
}

func constantFolded() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// allowedSentinel: a reasoned directive keeps deliberate exact
// sentinels, as in grid.Region centroid guards.
func allowedSentinel(wsum float64) bool {
	//lint:allow floatexact division-by-zero guard: a sum of non-negative areas is zero iff the region is empty
	return wsum == 0
}

// bracketEdge is distilled from the quantized mask cache: testing
// whether a radius sits exactly on a quantization level with == invites
// ULP disagreement between r/step truncation and q*step reconstruction,
// misplacing the bracket by one level right where the annulus must
// catch it.
func bracketEdge(radius, step float64, q int) bool {
	return radius == float64(q)*step // want "exact float comparison"
}

// annulusEdge: a float32 cached distance widened to float64 and
// compared exactly against the cap radius is the same trap at the
// annulus boundary.
func annulusEdge(dist float32, maxKm float64) bool {
	return float64(dist) != maxKm // want "exact float comparison"
}

// bracketFixup is the approved quantization-boundary shape: the level
// guess from a division is re-established with one-sided ≤/>
// comparisons only, so rounding at a bracket edge can never violate
// the inner ⊆ exact ⊆ outer invariant. No equality anywhere.
func bracketFixup(radius, step float64, n int) int {
	q := int(radius / step)
	for q > 0 && float64(q)*step > radius {
		q--
	}
	for q < n-1 && float64(q+1)*step <= radius {
		q++
	}
	return q
}
