// Package maporder holds maporder analyzer fixtures — the exact bug
// class PR 1 fixed by hand in the §6 audit pipeline, where tallies and
// provider tables were built by ranging over maps: leakAppend and
// rngUnderRange are distilled from the pre-fix Lab.Audit aggregation,
// collectThenSort is the shape the fix introduced (assess.Agreement,
// atlas.Pooled, worldmap.CountriesOverlapping all use it today).
package maporder

import (
	"fmt"
	"math/rand"
	"sort"
)

func leakAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out under map iteration"
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func collectThenSortSlice(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func printUnderRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output written under map iteration"
	}
}

func rngUnderRange(m map[string]int, rng *rand.Rand) map[string]float64 {
	out := map[string]float64{}
	for k := range m {
		out[k] = rng.Float64() // want "RNG consumed under map iteration"
	}
	return out
}

// mapCopy and groupBy write only into maps or indexed slots: order
// independent, unflagged.
func mapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func groupBy(m map[string]int, idx map[int][]string) {
	for k, v := range m {
		idx[v] = append(idx[v], k)
	}
}

// sliceRangeIsFine: only map iteration is nondeterministic.
func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
