// Package lockorder holds lockorder analyzer fixtures: blocking
// operations and callbacks under a held mutex, re-acquisition, and the
// A→B / B→A inconsistent-ordering deadlock — plus the sanctioned
// patterns (unlock-before-blocking, cond.Wait, select-with-default,
// branch-local early unlock) that must stay silent.
package lockorder

import (
	"net"
	"sync"
	"time"
)

// Sink is a module interface: calls through it under a lock hand
// control to code the lock holder does not own.
type Sink interface {
	Emit(v int)
}

type server struct {
	mu     sync.Mutex
	ackMu  sync.Mutex
	cond   *sync.Cond
	conn   net.Conn
	ch     chan int
	out    Sink
	onDone func()
	n      int
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while server.mu is held"
	s.mu.Unlock()
}

func (s *server) sendUnderDeferredUnlock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "channel send while server.mu is held"
}

func (s *server) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while server.mu is held"
}

func (s *server) netUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn.Close() // want "network call net.Close while server.mu is held"
}

func (s *server) funcValueUnderLock() {
	s.mu.Lock()
	s.onDone() // want "function-valued callback s.onDone while server.mu is held"
	s.mu.Unlock()
}

func (s *server) interfaceUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out.Emit(v) // want "interface callback Emit while server.mu is held"
}

func (s *server) reacquire() {
	s.mu.Lock()
	s.mu.Lock() // want "lock server.mu acquired while already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *server) rangeChanUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "channel-range receive while server.mu is held"
		s.n += v
	}
}

func (s *server) blockingSelectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select while server.mu is held"
	case v := <-s.ch:
		s.n = v
	}
}

// The two halves of an inconsistent-ordering deadlock: each edge lies
// on the mu↔ackMu cycle and is reported at its acquisition site.
func (s *server) abOrder() {
	s.mu.Lock()
	s.ackMu.Lock() // want "inconsistent lock order: server.ackMu acquired while server.mu is held"
	s.ackMu.Unlock()
	s.mu.Unlock()
}

func (s *server) baOrder() {
	s.ackMu.Lock()
	s.mu.Lock() // want "inconsistent lock order: server.mu acquired while server.ackMu is held"
	s.mu.Unlock()
	s.ackMu.Unlock()
}

// --- negative cases -------------------------------------------------

// unlockThenBlock: release before blocking — the pattern every report
// message asks for.
func (s *server) unlockThenBlock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
	time.Sleep(time.Millisecond)
}

// condWait: sync.Cond.Wait releases its locker while parked, the one
// sanctioned way to block under a lock (the drainGate pattern).
func (s *server) condWait() {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.n--
	s.mu.Unlock()
}

// pollUnderLock: a select with a default clause is a non-blocking poll.
func (s *server) pollUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// earlyUnlock: the branch releases and returns; the receive there runs
// without the lock, and the fall through still holds it.
func (s *server) earlyUnlock(fast bool) int {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return <-s.ch
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// spawnUnderLock: launching is non-blocking and the goroutine body runs
// on its own stack with an empty held set.
func (s *server) spawnUnderLock(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
		close(done)
	}()
}

// localMutex: plain critical section around local state.
func localMutex() int {
	var mu sync.Mutex
	n := 0
	mu.Lock()
	n++
	mu.Unlock()
	return n
}

// consistentOrder: ackMu inside pairMu everywhere — edges but no cycle.
type pair struct {
	pairMu  sync.Mutex
	innerMu sync.Mutex
	n       int
}

func (p *pair) first() {
	p.pairMu.Lock()
	p.innerMu.Lock()
	p.n++
	p.innerMu.Unlock()
	p.pairMu.Unlock()
}

func (p *pair) second() {
	p.pairMu.Lock()
	p.innerMu.Lock()
	p.n--
	p.innerMu.Unlock()
	p.pairMu.Unlock()
}
