// Package main is the goroleak negative fixture: in a main package the
// process exit is the goroutine's owner, so nothing here is flagged.
package main

func tick() {}

func main() {
	go tick()
	go func() {}()
}
