// Package detrand holds detrand analyzer fixtures. The global-source
// and wall-clock cases are distilled from the pre-PR 1 audit engine,
// whose shared order-dependent randomness made every verdict depend on
// fleet iteration order; the hard-coded-seed case is the regression
// the seed-scope rule guards internal/netsim, internal/measure and
// internal/experiments against.
package detrand

import (
	"math/rand"
	"time"
)

func globalDraw(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from time.Now" "rand.NewSource seeded from time.Now"
}

func hardCodedSeed() *rand.Rand {
	return rand.New(rand.NewSource(7)) // want "hard-coded seed"
}

// seedFromConfig is the approved shape: the stream is a pure function
// of a seed that arrives from the run's configuration.
func seedFromConfig(seed int64, id string) *rand.Rand {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ int64(h)))
}
