// Package detrand holds detrand analyzer fixtures. The global-source
// and wall-clock cases are distilled from the pre-PR 1 audit engine,
// whose shared order-dependent randomness made every verdict depend on
// fleet iteration order; the hard-coded-seed case is the regression
// the seed-scope rule guards internal/netsim, internal/measure and
// internal/experiments against.
package detrand

import (
	"math/rand"
	"time"
)

func globalDraw(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from time.Now" "rand.NewSource seeded from time.Now"
}

func hardCodedSeed() *rand.Rand {
	return rand.New(rand.NewSource(7)) // want "hard-coded seed"
}

// seedFromConfig is the approved shape: the stream is a pure function
// of a seed that arrives from the run's configuration.
func seedFromConfig(seed int64, id string) *rand.Rand {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ int64(h)))
}

// Fault-injection shapes (DESIGN.md §10). A per-probe loss draw from
// the global source would tie which probes vanish to goroutine
// interleaving instead of the caller's per-entity stream — exactly
// the bug the faults-at-any-concurrency determinism tests guard.
func lossDrawGlobal(p float64) bool {
	return rand.Float64() < p // want "global math/rand.Float64"
}

func backoffJitterGlobal(maxMs int) int {
	return rand.Intn(maxMs) // want "global math/rand.Intn"
}

// A private hard-seeded stream for outage placement would make every
// run's outages identical regardless of the configured network seed.
func outageStreamHardSeed() *rand.Rand {
	return rand.New(rand.NewSource(86)) // want "hard-coded seed"
}

// lossDrawFromStream is the approved per-event shape: the fault draw
// consumes the caller's derived stream, so worker order cannot
// reorder it.
func lossDrawFromStream(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// outageWindowStart is the approved structural shape: which hosts go
// dark, and when, is a pure hash of (network seed, host ID) — no RNG
// at all, so every worker computes the same answer without locks.
func outageWindowStart(seed int64, id string, horizonMs uint64) uint64 {
	h := uint64(14695981039346656037) ^ uint64(seed)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return h % horizonMs
}

// Adversary shapes (DESIGN.md §14). A lying proxy's forged padding
// must be a pure function of (plan seed, proxy ID, landmark ID);
// drawing it from the global source would make which measurements are
// forged depend on worker interleaving, so the detection sweep could
// never be scored deterministically.
func forgedPaddingGlobal(maxMs int) int {
	return rand.Intn(maxMs) // want "global math/rand.Intn"
}

// Selecting which fleet members lie by a hard-seeded private stream
// would pin the liar set across every plan seed — the control point
// and the attack points would corrupt each other.
func liarSelectionHardSeed(n int) []int {
	rng := rand.New(rand.NewSource(13)) // want "hard-coded seed"
	return rng.Perm(n)
}

// forgedPaddingFromPlan is the approved shape: the adversary draws
// from a stream derived from the plan's own seed and the entity pair,
// so the same plan forges the same bytes at any concurrency.
func forgedPaddingFromPlan(rng *rand.Rand, aggressiveness float64, maxMs float64) float64 {
	return aggressiveness * maxMs * rng.Float64()
}
