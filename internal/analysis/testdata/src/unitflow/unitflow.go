// Package unitflow holds unitflow analyzer fixtures: the paper's
// delay→distance conversion chain done right (silent) and every way of
// doing it wrong (flagged) — mixing km with ms, assigning or returning
// across unit suffixes, passing the wrong unit to a named parameter,
// and trigonometry on degrees.
package unitflow

import "math"

const earthRadiusKm = 6371.0
const degToRad = math.Pi / 180

// kmPerDeg is a ratio constant: dividing km by it yields degrees.
const kmPerDeg = 111.195

// --- flagged --------------------------------------------------------

func mixAdd(distKm, delayMs float64) float64 {
	return distKm + delayMs // want "mixing km and ms"
}

func mixCompare(distKm, delayMs float64) bool {
	return distKm < delayMs // want "mixing km and ms"
}

func forgottenConversion(oneWayMs float64) float64 {
	boundKm := oneWayMs // want "assigning ms value to .boundKm."
	return boundKm
}

// wrongBoundKm: the unit flows through the local and disagrees with
// the result suffix at the return.
func wrongBoundKm(oneWayMs float64) float64 {
	x := oneWayMs
	return x // want "returning ms value from wrongBoundKm"
}

func clampKm(maxKm float64) float64 { return maxKm }

func wrongParam(delayMs float64) float64 {
	return clampKm(delayMs) // want "passing ms value as parameter .maxKm."
}

func trigOnDegrees(latDeg float64) float64 {
	return math.Sin(latDeg) // want "math.Sin of a value in degrees"
}

type result struct {
	RadiusKm float64
}

func fieldStore(delayMs float64) result {
	var r result
	r.RadiusKm = delayMs // want "assigning ms value to field .RadiusKm."
	return r
}

func compositeField(delayMs float64) result {
	return result{RadiusKm: delayMs} // want "assigning ms value to field .RadiusKm."
}

// --- silent ---------------------------------------------------------

// maxDistanceKm: the canonical correct conversion — ms · km/ms = km.
func maxDistanceKm(oneWayMs, speedKmPerMs float64) float64 {
	return oneWayMs * speedKmPerMs
}

// latSpanDeg: division by a ratio constant converts — km / (km/deg) = deg.
func latSpanDeg(radiusKm float64) float64 {
	return radiusKm / kmPerDeg
}

// goodTrig: degrees converted to radians before the sine.
func goodTrig(latDeg float64) float64 {
	return math.Sin(latDeg * degToRad)
}

// distanceKm: the haversine shape — radians are dimensionless in
// products, so 2·R·asin(√h) type-checks as km.
func distanceKm(lat1Deg, lon1Deg, lat2Deg, lon2Deg float64) float64 {
	la1 := lat1Deg * degToRad
	la2 := lat2Deg * degToRad
	dLon := (lon2Deg - lon1Deg) * degToRad
	s := math.Sin((la2 - la1) / 2)
	t := math.Sin(dLon / 2)
	h := s*s + math.Cos(la1)*math.Cos(la2)*t*t
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// literalThreshold: bare literals are unit-polymorphic; comparing or
// scaling by them never flags.
func literalThreshold(distKm float64) bool {
	return distKm > 0 && 1.5*distKm < 2000
}

// sqrtOfArea: even exponents halve through math.Sqrt — km² → km.
func sqrtOfArea(areaKm2 float64) float64 {
	sideKm := math.Sqrt(areaKm2)
	return sideKm
}

// untracked: values without a known unit never flag.
func untracked(a, b float64) float64 {
	return a + b
}
