// Package errdrop holds errdrop analyzer fixtures, distilled from the
// real findings in proxy/forward.go's DialThrough, which dropped the
// Close error on all three CONNECT failure paths, and from the
// SetReadDeadline pattern in the same file.
package errdrop

type conn struct{}

func (conn) Close() error               { return nil }
func (conn) SetDeadline(ms int) error   { return nil }
func (conn) SetReadDeadline(int) error  { return nil }
func (conn) SetWriteDeadline(int) error { return nil }

func silentDrops(c conn) {
	c.Close()              // want "Close error silently dropped"
	c.SetReadDeadline(10)  // want "SetReadDeadline error silently dropped"
	c.SetWriteDeadline(10) // want "SetWriteDeadline error silently dropped"
	c.SetDeadline(10)      // want "SetDeadline error silently dropped"
}

func explicitlyDiscarded(c conn) {
	_ = c.Close()
	_ = c.SetReadDeadline(10)
}

func deferredCleanup(c conn) {
	defer c.Close()
}

func handled(c conn) error {
	if err := c.SetDeadline(10); err != nil {
		return err
	}
	return c.Close()
}

// lifecycle: Drain / Sync / Shutdown / Flush are service-quiesce
// methods whose errors mean "state was not persisted".
type service struct{}

func (service) Drain() error    { return nil }
func (service) Sync() error     { return nil }
func (service) Shutdown() error { return nil }
func (service) Flush() error    { return nil }

func lifecycleDrops(s service) {
	s.Drain()    // want "Drain error silently dropped"
	s.Sync()     // want "Sync error silently dropped"
	s.Shutdown() // want "Shutdown error silently dropped"
	s.Flush()    // want "Flush error silently dropped"
}

func lifecycleHandled(s service) error {
	_ = s.Drain()
	defer s.Shutdown()
	if err := s.Flush(); err != nil {
		return err
	}
	return s.Sync()
}

// tupleSync: a Sync returning (stats, error) — the stream Auditor
// shape — is out of the analyzer's single-error scope and stays
// silent.
type statsSyncer struct{}

func (statsSyncer) Sync() (int, error) { return 0, nil }

func tupleSyncIgnored(s statsSyncer) {
	s.Sync()
}

// voidCloser: Close methods that do not return an error are not drops.
type voidCloser struct{}

func (voidCloser) Close() {}

func closeWithoutError(v voidCloser) {
	v.Close()
}

// allowedDrop: the directive keeps a deliberate best-effort close.
func allowedDrop(c conn) {
	//lint:allow errdrop best-effort close on an already-failed connection
	c.Close()
}
