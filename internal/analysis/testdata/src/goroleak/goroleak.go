// Package goroleak holds goroleak analyzer fixtures: goroutines with
// no visible owner at the launch site (flagged) against the three
// ownership marks — WaitGroup join, context cancel, channel handoff.
package goroleak

import (
	"context"
	"sync"
)

type worker struct {
	wg sync.WaitGroup
}

func leak() {}

func unownedCall() {
	go leak() // want "goroutine launched without an owner"
}

func unownedClosure(n int) {
	go func() { // want "goroutine launched without an owner"
		_ = n * 2
	}()
}

// methodNoMark: ownership hidden inside the receiver does not count —
// the mark must be visible at the go statement.
func (w *worker) run() {}

func methodNoMark(w *worker) {
	go w.run() // want "goroutine launched without an owner"
}

// --- owned ----------------------------------------------------------

// waitGroupOwned: the spawner can join.
func waitGroupOwned(w *worker) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
}

// contextOwned: the context argument lets the spawner cancel.
func contextOwned(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

// channelOwned: the result channel is a handoff the spawner selects on.
func channelOwned() chan int {
	res := make(chan int, 1)
	go func() {
		res <- 42
	}()
	return res
}

// argChannelOwned: a channel passed as an argument marks ownership too.
func produce(chan<- int) {}

func argChannelOwned(results chan<- int) {
	go produce(results)
}

// closureDoneChannel: closing a done channel from the body is a join
// the spawner can wait on.
func closureDoneChannel() chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}
