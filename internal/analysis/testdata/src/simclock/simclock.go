// Package simclock holds simclock analyzer fixtures, distilled from
// the one real finding in this repo: measure/tcp.go's live TCP
// handshake timer, which reads the wall clock inside the otherwise
// fully simulated internal/measure package and carries the allow
// directive demonstrated below.
package simclock

import "time"

func simulatedRTT() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func simulatedElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func sleepInSim() {
	time.Sleep(time.Millisecond) // want "wall-clock read time.Sleep"
}

// realSocketTimer mirrors measure.ConnectRTT: a deliberate wall-clock
// read in a real-socket path, suppressed with a reasoned directive.
func realSocketTimer() time.Time {
	//lint:allow simclock real TCP handshake timing, as in measure/tcp.go
	return time.Now()
}

// durationsAreFine: only clock reads are flagged, not the time types.
func durationsAreFine(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
