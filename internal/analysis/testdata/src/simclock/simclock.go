// Package simclock holds simclock analyzer fixtures, distilled from
// the one real finding in this repo: measure/tcp.go's live TCP
// handshake timer, which reads the wall clock inside the otherwise
// fully simulated internal/measure package and carries the allow
// directive demonstrated below.
package simclock

import "time"

func simulatedRTT() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func simulatedElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func sleepInSim() {
	time.Sleep(time.Millisecond) // want "wall-clock read time.Sleep"
}

// realSocketTimer mirrors measure.ConnectRTT: a deliberate wall-clock
// read in a real-socket path, suppressed with a reasoned directive.
func realSocketTimer() time.Time {
	//lint:allow simclock real TCP handshake timing, as in measure/tcp.go
	return time.Now()
}

// durationsAreFine: only clock reads are flagged, not the time types.
func durationsAreFine(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// Fault-injection shapes (DESIGN.md §10). Retry backoff belongs on
// the simulated clock: sleeping the goroutine would couple replay to
// the host scheduler and stall the whole worker pool.
func backoffByWallClock(attempt int) {
	time.Sleep(time.Duration(attempt) * 250 * time.Millisecond) // want "wall-clock read time.Sleep"
}

// Landmark-outage windows and campaign budgets must not be enforced
// with real timers either.
func outageDeadlineByTimer(ms int) <-chan time.Time {
	return time.After(time.Duration(ms) * time.Millisecond) // want "wall-clock read time.After"
}

// simClock mirrors netsim.Clock: simulated milliseconds advanced by
// measured RTTs and backoff waits — the sanctioned shape for the
// resilient measurement session.
type simClock struct{ ms float64 }

func (c *simClock) Advance(ms float64) { c.ms += ms }

func backoffOnSimClock(c *simClock, attempt int) {
	c.Advance(float64(int64(250) << uint(attempt)))
}

// Adversary shapes (DESIGN.md §14). A Byzantine landmark that jitters
// its forged report off the wall clock would make the attack — and
// therefore the detection score — unreproducible; the forged bias must
// ride the simulated timeline like every honest RTT.
func forgedReportJitterWallClock() float64 {
	return float64(time.Now().UnixNano()%5) * 0.1 // want "wall-clock read time.Now"
}

// Holding back a decoy proxy's response with a real timer stalls the
// worker pool and couples the decoy's apparent RTT to host scheduling.
func decoyHoldByWallClock(ms int) {
	time.Sleep(time.Duration(ms) * time.Millisecond) // want "wall-clock read time.Sleep"
}

// decoyHoldOnSimClock is the sanctioned shape: the decoy's fabricated
// delay advances the simulated clock, byte-identical at any width.
func decoyHoldOnSimClock(c *simClock, fabricatedMs float64) {
	c.Advance(fabricatedMs)
}
