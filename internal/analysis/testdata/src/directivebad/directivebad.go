// Package directivebad exercises the directive grammar: a directive
// without a reason or naming an unknown analyzer must be reported and
// must not suppress anything.
package directivebad

type closer struct{}

func (closer) Close() error { return nil }

func missingReason(c closer) {
	//lint:allow errdrop
	c.Close()
}

func unknownAnalyzer(c closer) {
	//lint:allow nosuchcheck because reasons
	c.Close()
}
