// Package sharedrand holds sharedrand analyzer fixtures, distilled
// from the pre-PR 1 Lab.Audit bug: one *rand.Rand handed to a pool of
// workers, making every server's measurement noise depend on goroutine
// scheduling. perEntityStream is the approved replacement (what
// Lab.rngFor and measure.Batch do today).
package sharedrand

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sort"
	"sync"
)

// parallelFor mirrors experiments.parallelFor — the callee-name
// heuristic treats it as a worker pool.
func parallelFor(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func sharedIntoGoStmt(rng *rand.Rand) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rng.Int63() // want "shared into a go statement"
	}()
	wg.Wait()
}

func handedToGoroutine(rng *rand.Rand, done chan struct{}) {
	go consume(rng, done) // want "passed into a go statement"
}

func consume(rng *rand.Rand, done chan struct{}) {
	_ = rng.Float64()
	close(done)
}

func sharedIntoPool(rng *rand.Rand, out []float64) {
	parallelFor(len(out), func(i int) {
		out[i] = rng.Float64() // want "shared into a worker-pool closure"
	})
}

// perEntityStream derives an independent stream inside the closure —
// the approved pattern.
func perEntityStream(seeds []int64, out []float64) {
	parallelFor(len(out), func(i int) {
		rng := rand.New(rand.NewSource(seeds[i]))
		out[i] = rng.Float64()
	})
}

// serialComparator: sort.Slice runs its comparator on the calling
// goroutine, so capturing a stream there is fine.
func serialComparator(rng *rand.Rand, xs []int) {
	sort.Slice(xs, func(i, j int) bool {
		_ = rng
		return xs[i] < xs[j]
	})
}

// coordServer mirrors the pre-PR 5 atlasd shape: one stream stored on
// the server struct and drawn from inside handlers. The mutex fixes
// the data race but not the order dependence — every response still
// depends on which request got to the stream first.
type coordServer struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (s *coordServer) handleDraw(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	v := s.rng.Int63() // want "used inside HTTP handler handleDraw"
	s.mu.Unlock()
	fmt.Fprintln(w, v)
}

func handlerLiteral(rng *rand.Rand) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, rng.Int63()) // want "used inside HTTP handler handler literal"
	})
}

// statelessDraw is the approved replacement: the response is a pure
// function of (seed, request), so a stream derived inside the handler
// is private to the request and identical at any concurrency.
type statelessServer struct {
	seed int64
}

func (s *statelessServer) handleDraw(w http.ResponseWriter, r *http.Request) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", s.seed, r.URL.Query().Get("draw"))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	fmt.Fprintln(w, rng.Int63())
}
