package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgCallee resolves a call through a package-qualified selector
// (pkg.Func) to the package's import path and the function name.
func pkgCallee(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isPkgCall reports whether call is pkg.name for the given import path
// and one of the names.
func isPkgCall(info *types.Info, call *ast.CallExpr, path string, names ...string) bool {
	p, n, ok := pkgCallee(info, call)
	if !ok || p != path {
		return false
	}
	for _, want := range names {
		if n == want {
			return true
		}
	}
	return false
}

// isRandRand reports whether t is *math/rand.Rand.
func isRandRand(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand"
}

// containsPkgCall reports whether the expression tree contains a call
// to pkg.name.
func containsPkgCall(info *types.Info, e ast.Expr, path, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPkgCall(info, call, path, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// usesObject reports whether the node mentions the object.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// declaredWithin reports whether the object's declaration lies inside
// the [lo, hi] position interval.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// isFloat reports whether the type's underlying kind is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
