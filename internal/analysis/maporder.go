package analysis

import (
	"go/ast"
	"go/types"
)

// outputFuncs are fmt package functions that emit output directly;
// calling them under map iteration writes in random order.
var outputFuncs = []string{"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln"}

// NewMaporder builds the maporder analyzer. It flags `range` over a
// map whose body makes iteration order observable:
//
//   - appending to a slice declared outside the loop, unless a
//     sort.* / slices.* call (or a .Sort() method) on that slice
//     follows in the same statement list — the collect-then-sort
//     idiom is exactly the approved fix;
//   - writing output (fmt.Print*/Fprint*, io.WriteString) — lines
//     would come out in a different order every run;
//   - consuming randomness from a *rand.Rand — the draw each entity
//     receives would depend on iteration order, the §6 audit bug
//     PR 1 fixed by hand.
//
// Writes into other maps or into index-addressed slots are order-
// independent and stay unflagged.
func NewMaporder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flags map iteration whose body leaks the random iteration order into slices, output or RNG streams",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var list []ast.Stmt
				switch s := n.(type) {
				case *ast.BlockStmt:
					list = s.List
				case *ast.CaseClause:
					list = s.Body
				case *ast.CommClause:
					list = s.Body
				default:
					return true
				}
				for i, stmt := range list {
					rs, ok := stmt.(*ast.RangeStmt)
					if !ok {
						continue
					}
					t := pass.TypeOf(rs.X)
					if t == nil {
						continue
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						continue
					}
					checkMapRange(pass, rs, list[i+1:])
				}
				return true
			})
		}
		return nil
	}
	return a
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for j, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || j >= len(s.Lhs) {
					continue
				}
				target, ok := s.Lhs[j].(*ast.Ident)
				if !ok {
					continue // append into m[k] etc. is order-independent
				}
				obj := pass.Info.ObjectOf(target)
				if obj == nil || declaredWithin(obj, rs.Pos(), rs.End()) {
					continue
				}
				if sortedAfter(pass, rest, obj) {
					continue
				}
				pass.Reportf(s.Pos(),
					"append to %s under map iteration: order is random per run — collect then sort (no sort of %s follows in this block)",
					target.Name, target.Name)
			}
		case *ast.CallExpr:
			if isPkgCall(pass.Info, s, "fmt", outputFuncs...) || isPkgCall(pass.Info, s, "io", "WriteString") {
				pass.Reportf(s.Pos(), "output written under map iteration: lines come out in a different order every run")
				return true
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				if t := pass.TypeOf(sel.X); t != nil && isRandRand(t) {
					pass.Reportf(s.Pos(),
						"RNG consumed under map iteration: the draw each entity gets depends on iteration order — iterate a sorted key slice instead")
				}
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether any statement after the loop sorts the
// object: a sort.* or slices.* call mentioning it, or obj.Sort().
func sortedAfter(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, _, ok := pkgCallee(pass.Info, call); ok && (path == "sort" || path == "slices") {
				for _, arg := range call.Args {
					if usesObject(pass.Info, arg, obj) {
						found = true
						return false
					}
				}
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sort" &&
				usesObject(pass.Info, sel.X, obj) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
