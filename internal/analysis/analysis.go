// Package analysis is a self-contained static-analysis framework plus
// the suite of analyzers that machine-enforce this repository's
// determinism, concurrency and geo-unit invariants (DESIGN.md §9).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer runs over one type-checked package at a time via a Pass —
// but is built entirely on the standard library (go/parser, go/types,
// go/build) so the repository keeps its zero-dependency property and
// the linter works offline. cmd/geolint is the multichecker driver;
// the analysistest subpackage runs // want fixtures.
//
// # Invariants enforced
//
//   - detrand:    every random draw flows from an explicit seed; no
//     global math/rand source, no wall-clock seeding, no hard-coded
//     seeds inside the simulation packages.
//   - simclock:   simulated paths never read the wall clock; latency
//     is a pure function of (seed, salt, host).
//   - maporder:   map iteration order never leaks into slices, output
//     or random streams without an intervening sort.
//   - sharedrand: a *rand.Rand never crosses a goroutine boundary.
//   - floatexact: geometry code never compares floats with == / !=
//     (the acos-dot and haversine kernels differ by ULPs).
//   - errdrop:    Close / SetDeadline errors on measurement sockets
//     are handled or explicitly discarded, never silently dropped.
//
// # Allow directive
//
// A deliberate exception is annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or alone on the line directly above it.
// The analyzer name must match one analyzer exactly and the reason is
// mandatory; a directive without a reason is itself reported. There is
// no blanket file- or package-level disable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the file set of the loaded
// package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File // non-test files only
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Suite returns all analyzers with their default scopes — the set
// cmd/geolint runs and make lint enforces.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDetrand(DefaultSeedScope),
		NewSimclock(DefaultSimClockScope),
		NewMaporder(),
		NewSharedrand(),
		NewFloatexact(DefaultFloatExactScope),
		NewErrdrop(),
	}
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported.
const DirectiveAnalyzer = "directive"

const directivePrefix = "//lint:allow"

// allowSite is one parsed //lint:allow directive.
type allowSite struct {
	analyzer string
	file     string
	line     int
}

// parseAllows extracts the allow directives of one file. Malformed
// directives (unknown grammar, missing reason) are returned as
// diagnostics so they fail the lint run instead of silently allowing
// nothing.
func parseAllows(fset *token.FileSet, f *ast.File, known map[string]bool) ([]allowSite, []Diagnostic) {
	var sites []allowSite
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			pos := fset.Position(c.Pos())
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowance — not ours
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
					Message: "malformed directive: want //lint:allow <analyzer> <reason>"})
			case !known[fields[0]]:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
					Message: fmt.Sprintf("directive names unknown analyzer %q", fields[0])})
			case len(fields) < 2:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
					Message: fmt.Sprintf("directive for %q is missing the mandatory reason", fields[0])})
			default:
				sites = append(sites, allowSite{analyzer: fields[0], file: pos.Filename, line: pos.Line})
			}
		}
	}
	return sites, bad
}

// RunPackage runs every analyzer over one loaded package and returns
// the surviving findings: diagnostics suppressed by a well-formed
// //lint:allow directive are dropped, malformed directives are added.
// Findings are sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	var allows []allowSite
	var out []Diagnostic
	for _, f := range pkg.Files {
		s, bad := parseAllows(pkg.Fset, f, known)
		allows = append(allows, s...)
		out = append(out, bad...)
	}
	for _, d := range raw {
		if !allowed(d, allows) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowed reports whether a directive covers the diagnostic: same file,
// same analyzer, on the flagged line or the line directly above it.
func allowed(d Diagnostic, allows []allowSite) bool {
	for _, a := range allows {
		if a.analyzer != d.Analyzer || a.file != d.Pos.Filename {
			continue
		}
		if a.line == d.Pos.Line || a.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// inScope reports whether an import path is in an analyzer's package
// scope list (exact match).
func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s {
			return true
		}
	}
	return false
}
