// Package analysis is a self-contained static-analysis framework plus
// the suite of analyzers that machine-enforce this repository's
// determinism, concurrency and geo-unit invariants (DESIGN.md §9).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer runs over one type-checked package at a time via a Pass —
// but is built entirely on the standard library (go/parser, go/types,
// go/build) so the repository keeps its zero-dependency property and
// the linter works offline. cmd/geolint is the multichecker driver;
// the analysistest subpackage runs // want fixtures.
//
// # Invariants enforced
//
//   - detrand:    every random draw flows from an explicit seed; no
//     global math/rand source, no wall-clock seeding, no hard-coded
//     seeds inside the simulation packages.
//   - simclock:   simulated paths never read the wall clock; latency
//     is a pure function of (seed, salt, host).
//   - maporder:   map iteration order never leaks into slices, output
//     or random streams without an intervening sort.
//   - sharedrand: a *rand.Rand never crosses a goroutine boundary.
//   - floatexact: geometry code never compares floats with == / !=
//     (the acos-dot and haversine kernels differ by ULPs).
//   - errdrop:    Close / SetDeadline / Drain / Sync / Shutdown / Flush
//     errors on measurement sockets and lifecycle methods are handled
//     or explicitly discarded, never silently dropped.
//   - lockorder:  flow-sensitive lock tracking — no channel operation,
//     network call or module-interface / function-valued callback runs
//     while a sync.Mutex/RWMutex is held, and the per-package lock
//     acquisition graph stays acyclic (consistent lock ordering).
//   - unitflow:   a dimension-taint pass over float64 values tagged
//     km / ms / deg / rad through identifier suffixes and the geo/mathx
//     conversion helpers: cross-unit arithmetic without an explicit
//     conversion is flagged (the paper's delay→distance bound is the
//     canonical sink).
//   - goroleak:   goroutines launched in library packages must have an
//     owner — a context, a WaitGroup join, or a channel handoff.
//
// Diagnostics may carry mechanical SuggestedFixes which cmd/geolint
// -fix applies (with -diff as dry-run); fix application is idempotent.
// A ratchet baseline file (cmd/geolint -baseline) makes CI fail only on
// findings not already recorded.
//
// # Allow directive
//
// A deliberate exception is annotated in the source with
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or alone on the line directly above it.
// The analyzer name must match one analyzer exactly and the reason is
// mandatory; a directive without a reason is itself reported. There is
// no blanket file- or package-level disable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the file set of the loaded
// package. Fixes, when present, are mechanical repairs cmd/geolint -fix
// can apply; applying them must make the diagnostic disappear on the
// next run (the idempotence contract fix_test.go enforces).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// TextEdit replaces the byte range [Start, End) of Filename with
// NewText. Offsets are byte offsets into the file as parsed.
type TextEdit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"new_text"`
}

// SuggestedFix is one self-contained mechanical repair: all edits are
// applied together or not at all.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File // non-test files only
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// Edit builds a TextEdit replacing the source range [from, to) with
// newText, resolving positions through the pass's file set.
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	start := p.Fset.Position(from)
	end := p.Fset.Position(to)
	return TextEdit{Filename: start.Filename, Start: start.Offset, End: end.Offset, NewText: newText}
}

// TypeOf is a nil-tolerant shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Suite returns all analyzers with their default scopes — the set
// cmd/geolint runs and make lint enforces. The v1 syntactic checkers
// come first, then the v2 flow-sensitive ones (lockorder, unitflow,
// goroleak — DESIGN.md §9).
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDetrand(DefaultSeedScope),
		NewSimclock(DefaultSimClockScope),
		NewMaporder(),
		NewSharedrand(),
		NewFloatexact(DefaultFloatExactScope),
		NewErrdrop(),
		NewLockorder(),
		NewUnitflow(DefaultUnitFlowScope),
		NewGoroleak(),
	}
}

// SuiteNames returns the names of every suite analyzer — the universe
// of valid //lint:allow targets, independent of which subset a given
// run executes.
func SuiteNames() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	return names
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint:allow directives are reported.
const DirectiveAnalyzer = "directive"

const directivePrefix = "//lint:allow"

// allowSite is one parsed //lint:allow directive.
type allowSite struct {
	analyzer string
	file     string
	line     int
}

// parseAllows extracts the allow directives of one file. Malformed
// directives (unknown grammar, missing reason) are returned as
// diagnostics so they fail the lint run instead of silently allowing
// nothing.
func parseAllows(fset *token.FileSet, f *ast.File, known map[string]bool) ([]allowSite, []Diagnostic) {
	var sites []allowSite
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			pos := fset.Position(c.Pos())
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowance — not ours
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
					Message: "malformed directive: want //lint:allow <analyzer> <reason>"})
			case !known[fields[0]]:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
					Message: fmt.Sprintf("directive names unknown analyzer %q", fields[0])})
			case len(fields) < 2:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
					Message: fmt.Sprintf("directive for %q is missing the mandatory reason", fields[0])})
			default:
				sites = append(sites, allowSite{analyzer: fields[0], file: pos.Filename, line: pos.Line})
			}
		}
	}
	return sites, bad
}

// RunPackage runs every analyzer over one loaded package and returns
// the surviving findings: diagnostics suppressed by a well-formed
// //lint:allow directive are dropped, malformed directives are added.
// Findings are sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// A directive may name any suite analyzer, not just the ones this
	// run executes — partial runs must not misreport valid directives
	// as unknown.
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, name := range SuiteNames() {
		known[name] = true
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	var allows []allowSite
	var out []Diagnostic
	for _, f := range pkg.Files {
		s, bad := parseAllows(pkg.Fset, f, known)
		allows = append(allows, s...)
		out = append(out, bad...)
	}
	for _, d := range raw {
		if !allowed(d, allows) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// allowed reports whether a directive covers the diagnostic: same file,
// same analyzer, on the flagged line or the line directly above it.
func allowed(d Diagnostic, allows []allowSite) bool {
	for _, a := range allows {
		if a.analyzer != d.Analyzer || a.file != d.Pos.Filename {
			continue
		}
		if a.line == d.Pos.Line || a.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// inScope reports whether an import path is in an analyzer's package
// scope list (exact match).
func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s {
			return true
		}
	}
	return false
}
