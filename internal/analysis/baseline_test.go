package analysis_test

import (
	"go/token"
	"path/filepath"
	"testing"

	"activegeo/internal/analysis"
)

func diag(file string, line int, analyzer, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestBaselineRatchet: baselined findings are suppressed, new ones are
// not, and a second instance of a baselined finding still fails — the
// ratchet only ever tightens.
func TestBaselineRatchet(t *testing.T) {
	mod := "/mod"
	old := []analysis.Diagnostic{
		diag("/mod/a/a.go", 10, "errdrop", "Close error silently dropped"),
		diag("/mod/b/b.go", 20, "goroleak", "goroutine launched without an owner"),
	}
	b := analysis.NewBaseline(old, mod)

	// Identical findings (even at shifted lines) are suppressed.
	shifted := []analysis.Diagnostic{
		diag("/mod/a/a.go", 99, "errdrop", "Close error silently dropped"),
		diag("/mod/b/b.go", 1, "goroleak", "goroutine launched without an owner"),
	}
	fresh, suppressed := b.Filter(shifted, mod)
	if len(fresh) != 0 || suppressed != 2 {
		t.Fatalf("fresh=%d suppressed=%d, want 0/2: %v", len(fresh), suppressed, fresh)
	}

	// A brand-new finding and a duplicate of a baselined one both
	// surface; the single baseline slot covers only the first instance.
	grown := append(shifted,
		diag("/mod/a/a.go", 50, "errdrop", "Close error silently dropped"),
		diag("/mod/c/c.go", 5, "unitflow", "mixing km and ms with +"),
	)
	fresh, suppressed = b.Filter(grown, mod)
	if suppressed != 2 || len(fresh) != 2 {
		t.Fatalf("fresh=%d suppressed=%d, want 2/2: %v", len(fresh), suppressed, fresh)
	}
}

// TestBaselineKeyRelativizes: keys use module-relative slash paths so a
// baseline written on one checkout matches another.
func TestBaselineKeyRelativizes(t *testing.T) {
	d := diag(filepath.Join("/home/x/repo", "internal", "geo", "geo.go"), 3, "unitflow", "m")
	key := analysis.BaselineKey(d, "/home/x/repo")
	if key != "internal/geo/geo.go|unitflow|m" {
		t.Fatalf("key = %q", key)
	}
}

// TestBaselineRoundTrip: write → read preserves the findings map, and
// a missing file is an explicit error, not an empty ratchet.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	diags := []analysis.Diagnostic{
		diag("/mod/a.go", 1, "errdrop", "Close error silently dropped"),
		diag("/mod/a.go", 2, "errdrop", "Close error silently dropped"),
	}
	if err := analysis.NewBaseline(diags, "/mod").WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Findings["a.go|errdrop|Close error silently dropped"]; got != 2 {
		t.Fatalf("count = %d, want 2 (identical findings accumulate)", got)
	}
	if _, err := analysis.ReadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing baseline file must be an error, not an empty ratchet")
	}
}
