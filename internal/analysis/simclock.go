package analysis

import (
	"go/ast"
)

// DefaultSimClockScope lists the packages whose code paths simulate
// the network: in them, latency and timing are pure functions of the
// seed, so reading the wall clock is a determinism bug. Real-socket
// and telemetry packages (internal/proxy, internal/telemetry,
// internal/atlasd, cmd/*) are exempt by not being listed — the
// allowlist is this package list, not per-line nolint noise. The one
// real-socket file inside a scoped package (measure/tcp.go, the
// paper's command-line TCP tool) carries explicit
// //lint:allow simclock directives.
var DefaultSimClockScope = []string{
	"activegeo/internal/netsim",
	"activegeo/internal/measure",
	"activegeo/internal/experiments",
}

// wallClockFuncs are the time package functions that read or depend on
// the wall clock (or the process monotonic clock).
var wallClockFuncs = []string{
	"Now", "Since", "Until", "Sleep", "After", "Tick",
	"AfterFunc", "NewTimer", "NewTicker",
}

// NewSimclock builds the simclock analyzer: no wall-clock reads inside
// the simulation packages.
func NewSimclock(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "simclock",
		Doc:  "forbids wall-clock reads (time.Now, time.Since, ...) in simulation packages",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(pass.Info, call, "time", wallClockFuncs...) {
					_, name, _ := pkgCallee(pass.Info, call)
					pass.Reportf(call.Pos(),
						"wall-clock read time.%s in simulation package %s: simulated latency must be a pure function of the seed",
						name, pass.Path)
				}
				return true
			})
		}
		return nil
	}
	return a
}
