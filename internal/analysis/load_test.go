package analysis_test

import (
	"fmt"
	"testing"

	"activegeo/internal/analysis"
)

// render flattens a load+lint result into a canonical string: package
// paths in order, file counts, and every diagnostic line.
func render(t *testing.T, pkgs []*analysis.Package) string {
	t.Helper()
	out := ""
	for _, pkg := range pkgs {
		out += fmt.Sprintf("%s %d\n", pkg.Path, len(pkg.Files))
		diags, err := analysis.RunPackage(pkg, analysis.Suite())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			out += d.String() + "\n"
		}
	}
	return out
}

// TestParallelLoadMatchesSerial: the worker-pool loader must be
// byte-identical to the serial one — same packages, same order, same
// diagnostics — including on fixture packages that actually produce
// findings.
func TestParallelLoadMatchesSerial(t *testing.T) {
	patterns := []string{
		"internal/geo",
		"internal/cbg",
		"internal/analysis/testdata/src/errdrop",
		"internal/analysis/testdata/src/maporder",
	}
	serialLoader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialLoader.LoadPatterns(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	parallelLoader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	par, err := parallelLoader.LoadPatternsParallel(8, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	a, b := render(t, serial), render(t, par)
	if a != b {
		t.Fatalf("parallel load differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("render produced nothing; the comparison is vacuous")
	}
}

// TestParallelLoadSharedDeps: many packages importing the same heavy
// dependencies concurrently exercise the singleflight cache; the load
// must succeed and return every package exactly once.
func TestParallelLoadSharedDeps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-package parallel load: skipped with -short")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatternsParallel(8, "./internal/measure", "./internal/atlasd",
		"./internal/stream", "./internal/netsim", "./internal/geoloc", "./internal/proxy")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 6 {
		t.Fatalf("loaded %d packages, want 6", len(pkgs))
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		if seen[pkg.Path] {
			t.Fatalf("package %s loaded twice", pkg.Path)
		}
		seen[pkg.Path] = true
	}
}
