package analysis

import (
	"go/ast"
	"go/token"
)

// DefaultFloatExactScope lists the geometry packages where exact float
// comparison is a latent bug: the vector kernel's acos-dot distances
// and the haversine reference differ by ULPs, so == / != on distances,
// scores or coordinates can disagree between the two code paths.
// mathx itself (which implements the epsilon helpers) is deliberately
// not listed.
var DefaultFloatExactScope = []string{
	"activegeo/internal/geo",
	"activegeo/internal/grid",
	"activegeo/internal/geoloc",
	"activegeo/internal/spotter",
	"activegeo/internal/cbg",
	"activegeo/internal/cbgpp",
	"activegeo/internal/octant",
	"activegeo/internal/hybrid",
	"activegeo/internal/worldmap",
}

// NewFloatexact builds the floatexact analyzer: inside the geometry
// packages, == / != with a floating-point operand must go through the
// mathx epsilon helpers (mathx.ApproxEqual / mathx.Within) or carry an
// explicit //lint:allow floatexact directive for deliberate sentinel
// comparisons. Comparisons folded entirely at compile time (both
// operands constant) are ignored.
func NewFloatexact(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "floatexact",
		Doc:  "forbids exact float == / != in geometry packages; use the mathx epsilon helpers",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
					return true
				}
				if pass.Info.Types[be.X].Value != nil && pass.Info.Types[be.Y].Value != nil {
					return true // constant-folded: decided at compile time
				}
				pass.Reportf(be.OpPos,
					"exact float comparison (%s) in geometry package %s: acos-dot and haversine paths differ by ULPs — use mathx.ApproxEqual / mathx.Within",
					be.Op, pass.Path)
				return true
			})
		}
		return nil
	}
	return a
}
