package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DefaultFloatExactScope lists the geometry packages where exact float
// comparison is a latent bug: the vector kernel's acos-dot distances
// and the haversine reference differ by ULPs, so == / != on distances,
// scores or coordinates can disagree between the two code paths.
// mathx itself (which implements the epsilon helpers) is deliberately
// not listed.
var DefaultFloatExactScope = []string{
	"activegeo/internal/geo",
	"activegeo/internal/grid",
	"activegeo/internal/geoloc",
	"activegeo/internal/spotter",
	"activegeo/internal/cbg",
	"activegeo/internal/cbgpp",
	"activegeo/internal/octant",
	"activegeo/internal/hybrid",
	"activegeo/internal/worldmap",
}

// NewFloatexact builds the floatexact analyzer: inside the geometry
// packages, == / != with a floating-point operand must go through the
// mathx epsilon helpers (mathx.ApproxEqual / mathx.Within) or carry an
// explicit //lint:allow floatexact directive for deliberate sentinel
// comparisons. Comparisons folded entirely at compile time (both
// operands constant) are ignored.
func NewFloatexact(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "floatexact",
		Doc:  "forbids exact float == / != in geometry packages; use the mathx epsilon helpers",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			mathxName := importName(f, "activegeo/internal/mathx")
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
					return true
				}
				if pass.Info.Types[be.X].Value != nil && pass.Info.Types[be.Y].Value != nil {
					return true // constant-folded: decided at compile time
				}
				msg := "exact float comparison (%s) in geometry package %s: acos-dot and haversine paths differ by ULPs — use mathx.ApproxEqual / mathx.Within"
				// The mechanical rewrite a == b → mathx.ApproxEqual(a, b)
				// (negated for !=) is only offered when the file already
				// imports mathx: suggested fixes edit text, not import
				// graphs.
				if mathxName == "" {
					pass.Reportf(be.OpPos, msg, be.Op, pass.Path)
					return true
				}
				open := mathxName + ".ApproxEqual("
				if be.Op == token.NEQ {
					open = "!" + open
				}
				fix := SuggestedFix{
					Message: "compare through " + mathxName + ".ApproxEqual",
					Edits: []TextEdit{
						pass.Edit(be.X.Pos(), be.X.Pos(), open),
						pass.Edit(be.X.End(), be.Y.Pos(), ", "),
						pass.Edit(be.Y.End(), be.Y.End(), ")"),
					},
				}
				pass.ReportFix(be.OpPos, fix, msg, be.Op, pass.Path)
				return true
			})
		}
		return nil
	}
	return a
}

// importName returns the name the file refers to the given import path
// by ("" when not imported; blank and dot imports don't count — the
// rewrite needs a usable qualifier).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name == nil {
			return path[strings.LastIndex(path, "/")+1:]
		}
		if imp.Name.Name == "_" || imp.Name.Name == "." {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}
