package analysis

import (
	"go/ast"
	"go/types"
)

// NewGoroleak builds the goroleak analyzer: goroutines launched in
// library packages must have an owner — something that can observe
// their termination or tell them to stop. Acceptable ownership marks,
// checked over the spawned call's arguments and (for function
// literals) its body:
//
//   - a sync.WaitGroup (the spawner can join),
//   - a context.Context (the spawner can cancel),
//   - a channel (a done/result handoff the spawner can select on).
//
// A bare `go f()` with none of these is a leak-by-construction: the
// library hands a goroutine to the runtime with no way for any caller
// to wait for it or stop it — exactly how measurement probes outlive a
// cancelled experiment. package main is exempt (process exit is the
// owner), as are test files (excluded from loads anyway).
func NewGoroleak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "flags goroutines launched without a WaitGroup, context, or channel owner",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Name() == "main" {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goOwned(pass, g.Call) {
					pass.Reportf(g.Pos(),
						"goroutine launched without an owner: pass a context, add it to a WaitGroup, or hand it a done channel so callers can join or cancel it")
				}
				return true
			})
		}
		return nil
	}
	return a
}

// goOwned reports whether the spawned call carries an ownership mark.
func goOwned(pass *Pass, call *ast.CallExpr) bool {
	found := false
	mark := func(e ast.Expr) {
		if found || e == nil {
			return
		}
		if t := pass.TypeOf(e); t != nil && ownershipType(t) {
			found = true
		}
	}
	// Arguments (and the method receiver chain) may carry the owner:
	// go worker(ctx, ch), go p.run(&wg).
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				mark(e)
			}
			return !found
		})
	}
	// A function literal owns itself if its body touches a WaitGroup,
	// context, or channel from the enclosing scope (wg.Done(), <-done,
	// results <- v, ctx.Done()).
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				mark(e)
			}
			return !found
		})
	}
	// A method call on a receiver that itself holds the owner
	// (s.loop() where s has a done chan) is NOT accepted implicitly:
	// the mark must be visible at the go statement. This is the point
	// of the analyzer — ownership you can see at the launch site.
	return found
}

// ownershipType recognizes the three ownership marks.
func ownershipType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		_ = u
		return true
	case *types.Pointer:
		return ownershipType(u.Elem())
	case *types.Struct:
		return isSyncType(t, "WaitGroup")
	case *types.Interface:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
		}
	}
	return false
}
