package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"activegeo/internal/analysis"
)

// writeFixture drops one Go file into a temp package dir and returns
// the dir.
func writeFixture(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func lintDir(t *testing.T, dir, path string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const errdropFixSrc = `package errfix

type conn struct{}

func (conn) Close() error           { return nil }
func (conn) SetDeadline(int) error  { return nil }
func (conn) Drain() error           { return nil }

func drops(c conn) {
	c.Close()
	c.SetDeadline(10)
	c.Drain()
}
`

// TestErrdropFixIdempotent: applying the errdrop fixes removes every
// finding, and a second application is a no-op — the idempotence
// contract behind geolint -fix.
func TestErrdropFixIdempotent(t *testing.T) {
	dir := writeFixture(t, "errfix.go", errdropFixSrc)
	a := analysis.NewErrdrop()

	diags := lintDir(t, dir, "fixture/errfix", a)
	if len(diags) != 3 {
		t.Fatalf("want 3 findings before fixing, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Fixes) != 1 {
			t.Fatalf("finding carries no fix: %s", d)
		}
	}
	res, err := analysis.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 3 || res.Skipped != 0 {
		t.Fatalf("applied/skipped = %d/%d, want 3/0", res.Applied, res.Skipped)
	}
	diff, err := res.Diff()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "+\t_ = c.Close()") {
		t.Errorf("diff does not show the discard rewrite:\n%s", diff)
	}
	if err := res.WriteFixes(); err != nil {
		t.Fatal(err)
	}

	// Second pass: the tree is clean and a re-application rewrites
	// nothing.
	again := lintDir(t, dir, "fixture/errfix2", a)
	if len(again) != 0 {
		t.Fatalf("findings survive their own fix: %v", again)
	}
	res2, err := analysis.ApplyFixes(again)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 0 || len(res2.Files) != 0 {
		t.Fatalf("second application not a no-op: applied %d, %d file(s)", res2.Applied, len(res2.Files))
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "errfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"_ = c.Close()", "_ = c.SetDeadline(10)", "_ = c.Drain()"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}
}

const floatexactFixSrc = `package geofix

import "activegeo/internal/mathx"

func same(a, b float64) bool {
	return a == b
}

func differ(a, b float64) bool {
	return a != b || mathx.ApproxEqual(a, 0)
}
`

// TestFloatexactFixIdempotent: == / != rewrite through
// mathx.ApproxEqual when the file already imports mathx, and the
// rewritten file is clean on the next run.
func TestFloatexactFixIdempotent(t *testing.T) {
	dir := writeFixture(t, "geofix.go", floatexactFixSrc)
	a := analysis.NewFloatexact([]string{"fixture/geofix"})

	diags := lintDir(t, dir, "fixture/geofix", a)
	if len(diags) != 2 {
		t.Fatalf("want 2 findings, got %d: %v", len(diags), diags)
	}
	res, err := analysis.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 {
		t.Fatalf("applied = %d, want 2", res.Applied)
	}
	if err := res.WriteFixes(); err != nil {
		t.Fatal(err)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "geofix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"return mathx.ApproxEqual(a, b)", "return !mathx.ApproxEqual(a, b) ||"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}
	if again := lintDir(t, dir, "fixture/geofix2", a); len(again) != 0 {
		t.Fatalf("findings survive their own fix: %v", again)
	}
}

// TestFloatexactFixGatedOnImport: without a mathx import the finding
// is reported but carries no fix — suggested fixes edit text, not
// import graphs.
func TestFloatexactFixGatedOnImport(t *testing.T) {
	dir := writeFixture(t, "nomathx.go", `package nomathx

func same(a, b float64) bool { return a == b }
`)
	a := analysis.NewFloatexact([]string{"fixture/nomathx"})
	diags := lintDir(t, dir, "fixture/nomathx", a)
	if len(diags) != 1 {
		t.Fatalf("want 1 finding, got %v", diags)
	}
	if len(diags[0].Fixes) != 0 {
		t.Fatalf("fix offered without the mathx import: %+v", diags[0].Fixes)
	}
}

// TestOverlappingFixesSkippedDeterministically: two fixes editing the
// same range apply first-by-position; the second is skipped whole.
func TestOverlappingFixesSkippedDeterministically(t *testing.T) {
	dir := writeFixture(t, "o.go", "package o\n")
	name := filepath.Join(dir, "o.go")
	mk := func(text string) analysis.Diagnostic {
		return analysis.Diagnostic{
			Analyzer: "test",
			Fixes: []analysis.SuggestedFix{{
				Message: text,
				Edits:   []analysis.TextEdit{{Filename: name, Start: 0, End: 9, NewText: text}},
			}},
		}
	}
	res, err := analysis.ApplyFixes([]analysis.Diagnostic{mk("package a"), mk("package b")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("applied/skipped = %d/%d, want 1/1", res.Applied, res.Skipped)
	}
	if got := string(res.Files[name]); got != "package a\n" {
		t.Fatalf("first-by-position fix must win: %q", got)
	}
}
