package analysis

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// FixResult describes one application of suggested fixes.
type FixResult struct {
	// Files maps each touched filename to its rewritten content.
	Files map[string][]byte
	// Applied counts the fixes whose edits were all applied.
	Applied int
	// Skipped counts fixes dropped because an edit overlapped one
	// already applied (first-by-position wins, deterministically).
	Skipped int
}

// ApplyFixes computes the result of applying every suggested fix
// carried by diags. Files are read from disk; nothing is written — the
// caller decides between -diff (print) and -fix (write). Fixes are
// applied in diagnostic order (diags are already position-sorted);
// within the run, a fix whose edits overlap an already-accepted edit is
// skipped whole, so the result is deterministic and each edit range is
// rewritten at most once. Applying the result and re-running the suite
// must yield no further fixable diagnostics (idempotence; enforced by
// fix_test.go).
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	res := &FixResult{Files: map[string][]byte{}}
	accepted := map[string][]TextEdit{}
	overlaps := func(e TextEdit) bool {
		for _, a := range accepted[e.Filename] {
			if e.Start < a.End && a.Start < e.End {
				return true
			}
			// Two pure insertions at the same offset would be
			// order-dependent; reject the later one.
			if e.Start == e.End && a.Start == a.End && e.Start == a.Start {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			ok := true
			for _, e := range fix.Edits {
				if e.Start < 0 || e.End < e.Start || overlaps(e) {
					ok = false
					break
				}
			}
			if !ok {
				res.Skipped++
				continue
			}
			for _, e := range fix.Edits {
				accepted[e.Filename] = append(accepted[e.Filename], e)
			}
			res.Applied++
		}
	}
	for name, edits := range accepted {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		for _, e := range edits {
			if e.End > len(src) {
				return nil, fmt.Errorf("analysis: edit [%d,%d) past end of %s (%d bytes)",
					e.Start, e.End, name, len(src))
			}
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
		}
		res.Files[name] = src
	}
	return res, nil
}

// WriteFixes writes the rewritten files back to disk.
func (r *FixResult) WriteFixes() error {
	names := make([]string, 0, len(r.Files))
	for name := range r.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(name, r.Files[name], 0o644); err != nil {
			return fmt.Errorf("analysis: writing fixes: %w", err)
		}
	}
	return nil
}

// Diff renders the pending rewrites as a unified diff, files in name
// order — the -fix -diff dry-run output. Empty when nothing changes.
func (r *FixResult) Diff() (string, error) {
	names := make([]string, 0, len(r.Files))
	for name := range r.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		old, err := os.ReadFile(name)
		if err != nil {
			return "", fmt.Errorf("analysis: diffing fixes: %w", err)
		}
		if string(old) == string(r.Files[name]) {
			continue
		}
		fmt.Fprintf(&b, "--- %s\n+++ %s (fixed)\n", name, name)
		b.WriteString(unifiedDiff(splitLines(string(old)), splitLines(string(r.Files[name]))))
	}
	return b.String(), nil
}

func splitLines(s string) []string {
	lines := strings.SplitAfter(s, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// unifiedDiff emits minimal unified hunks (context 2) from an LCS table.
// Linted files are source files, small enough for the quadratic table.
func unifiedDiff(a, b []string) string {
	n, m := len(a), len(b)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	type op struct {
		kind byte // ' ', '-', '+'
		line string
	}
	var ops []op
	for i, j := 0, 0; i < n || j < m; {
		switch {
		case i < n && j < m && a[i] == b[j]:
			ops = append(ops, op{' ', a[i]})
			i++
			j++
		case j < m && (i == n || lcs[i][j+1] >= lcs[i+1][j]):
			ops = append(ops, op{'+', b[j]})
			j++
		default:
			ops = append(ops, op{'-', a[i]})
			i++
		}
	}
	const ctx = 2
	var out strings.Builder
	for k := 0; k < len(ops); {
		if ops[k].kind == ' ' {
			k++
			continue
		}
		// Hunk: back up for context, extend past trailing context.
		start := k
		for start > 0 && k-start < ctx && ops[start-1].kind == ' ' {
			start--
		}
		end := k
		gap := 0
		for end < len(ops) {
			if ops[end].kind == ' ' {
				gap++
				if gap > 2*ctx {
					break
				}
			} else {
				gap = 0
			}
			end++
		}
		for end > start && ops[end-1].kind == ' ' && gap > ctx {
			end--
			gap--
		}
		aLine, bLine := 1, 1
		for t := 0; t < start; t++ {
			if ops[t].kind != '+' {
				aLine++
			}
			if ops[t].kind != '-' {
				bLine++
			}
		}
		var aCount, bCount int
		for t := start; t < end; t++ {
			if ops[t].kind != '+' {
				aCount++
			}
			if ops[t].kind != '-' {
				bCount++
			}
		}
		fmt.Fprintf(&out, "@@ -%d,%d +%d,%d @@\n", aLine, aCount, bLine, bCount)
		for t := start; t < end; t++ {
			out.WriteByte(ops[t].kind)
			out.WriteString(ops[t].line)
			if !strings.HasSuffix(ops[t].line, "\n") {
				out.WriteString("\n\\ No newline at end of file\n")
			}
		}
		k = end
	}
	return out.String()
}
