package analysis

import (
	"go/ast"
)

// DefaultSeedScope lists the simulation/measurement packages in which
// hard-coded RNG seeds are forbidden: their random streams must be
// derived from the run's configured seed (measure.StreamSeed,
// netsim.HashID, Lab.streamSeed), or two runs with different configs
// would silently share noise.
var DefaultSeedScope = []string{
	"activegeo/internal/netsim",
	"activegeo/internal/measure",
	"activegeo/internal/experiments",
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the process-global, cross-goroutine shared source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// NewDetrand builds the detrand analyzer. Three rules:
//
//  1. no calls to the global math/rand top-level draw functions — the
//     global source is shared across goroutines and makes every draw
//     depend on whatever else the process randomized first;
//  2. no rand.New / rand.NewSource seeded from time.Now — measurements
//     must be a pure function of (seed, salt, host);
//  3. inside seedScope, no rand.NewSource with a compile-time constant
//     seed — per-entity streams must be derived from the configured
//     run seed.
//
// Test files are never loaded, so fixed seeds in _test.go stay fine.
func NewDetrand(seedScope []string) *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc:  "forbids the global math/rand source, wall-clock seeding, and hard-coded seeds in simulation packages",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				path, name, ok := pkgCallee(pass.Info, call)
				if !ok || path != "math/rand" {
					return true
				}
				switch {
				case globalRandFuncs[name]:
					pass.Reportf(call.Pos(),
						"call to global math/rand.%s: draw from an explicit seeded *rand.Rand (rngFor / measure.StreamSeed) instead",
						name)
				case name == "New" || name == "NewSource":
					for _, arg := range call.Args {
						if containsPkgCall(pass.Info, arg, "time", "Now") {
							pass.Reportf(call.Pos(),
								"rand.%s seeded from time.Now: randomness must be a pure function of (seed, salt, host)",
								name)
							break
						}
					}
					if name == "NewSource" && inScope(pass.Path, seedScope) &&
						len(call.Args) == 1 && pass.Info.Types[call.Args[0]].Value != nil {
						pass.Reportf(call.Pos(),
							"hard-coded seed in simulation package %s: derive stream seeds from the run's config seed (measure.StreamSeed / netsim.HashID)",
							pass.Path)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
