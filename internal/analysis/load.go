package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, build-tag filtered
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module with
// no toolchain or network access: module packages resolve inside the
// module directory, everything else resolves from GOROOT source. The
// standard library is checked API-only (function bodies ignored), so a
// whole-tree load stays fast.
//
// A Loader is safe for concurrent LoadDir calls: the file set is
// internally synchronized and the dependency cache is a singleflight —
// concurrent imports of the same path coalesce onto one check.
type Loader struct {
	ModPath string
	ModDir  string

	ctxt build.Context
	fset *token.FileSet

	depMu sync.Mutex
	deps  map[string]*depCall // API-only singleflight cache, shared across loads
}

// depCall is one in-flight (or completed) dependency check; concurrent
// importers of the same path wait on done instead of re-checking.
type depCall struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

// NewLoader locates the module root at or above dir and reads its path
// from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", modDir)
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // select pure-Go fallbacks; we only need API shapes
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		ctxt:    ctxt,
		fset:    token.NewFileSet(),
		deps:    map[string]*depCall{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Expand resolves go-style package patterns ("./...", "./internal/geo",
// "internal/geo/...") relative to the module root into package dirs.
// testdata, vendor and hidden directories are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		p = strings.TrimPrefix(p, "./")
		recursive := false
		if p == "..." {
			p, recursive = "", true
		} else if rest, ok := strings.CutSuffix(p, "/..."); ok {
			p, recursive = rest, true
		}
		root := filepath.Join(l.ModDir, filepath.FromSlash(p))
		st, err := os.Stat(root)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("analysis: no package directory %q", p)
		}
		if !recursive {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadPatterns expands the patterns and fully type-checks every
// package directory that contains buildable Go files, serially.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	return l.LoadPatternsParallel(1, patterns...)
}

// LoadPatternsParallel is LoadPatterns over a bounded worker pool:
// package directories are parsed and type-checked on up to workers
// goroutines (workers <= 1 selects the serial path), with dependency
// checks coalescing in the shared singleflight cache. The returned
// slice is in directory order regardless of completion order, so a
// parallel load is byte-identical to a serial one — downstream
// diagnostic ordering cannot observe the pool.
func (l *Loader) LoadPatternsParallel(workers int, patterns ...string) ([]*Package, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	loaded := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	loadOne := func(i int) {
		path, err := l.importPathFor(dirs[i])
		if err != nil {
			errs[i] = err
			return
		}
		pkg, err := l.LoadDir(dirs[i], path)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return // directory without buildable Go files: skip
			}
			errs[i] = err
			return
		}
		loaded[i] = pkg
	}
	if workers <= 1 {
		for i := range dirs {
			loadOne(i)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(dirs) {
						return
					}
					loadOne(i)
				}
			}()
		}
		wg.Wait()
	}
	var pkgs []*Package
	for i := range dirs {
		if errs[i] != nil {
			// First error in directory order, independent of scheduling.
			return nil, errs[i]
		}
		if loaded[i] != nil {
			pkgs = append(pkgs, loaded[i])
		}
	}
	return pkgs, nil
}

// LoadDir parses and fully type-checks the single package in dir under
// the given import path. Test files are excluded; type errors fail the
// load (the tree is expected to build — `go build` gates before lint).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    (*depImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v (and %d more)",
			path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// depImporter resolves imports for type-checking: module-internal paths
// from the module directory, the rest from GOROOT source (including the
// GOROOT vendor tree). Dependencies are checked with IgnoreFuncBodies —
// analyzers only need their exported API shapes.
type depImporter Loader

func (im *depImporter) loader() *Loader { return (*Loader)(im) }

func (im *depImporter) Import(path string) (*types.Package, error) {
	l := im.loader()
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Singleflight: the first importer of a path checks it, concurrent
	// importers wait on the same call. No lock is held during the check
	// itself, so recursive imports (dependencies of the dependency)
	// re-enter freely and cannot deadlock — Go import graphs have no
	// cycles.
	l.depMu.Lock()
	if call, ok := l.deps[path]; ok {
		l.depMu.Unlock()
		<-call.done
		return call.pkg, call.err
	}
	call := &depCall{done: make(chan struct{})}
	l.deps[path] = call
	l.depMu.Unlock()

	call.pkg, call.err = im.check(path)
	close(call.done)
	return call.pkg, call.err
}

// check parses and API-only type-checks one dependency package.
func (im *depImporter) check(path string) (*types.Package, error) {
	l := im.loader()
	dir, err := im.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         im,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("analysis: importing %s: %w", path, err)
	}
	// API-only checks of tag-filtered stdlib trees can surface benign
	// body-level issues; a usable (possibly incomplete) package is
	// enough for analysis, mirroring srcimporter's tolerance.
	return pkg, nil
}

func (im *depImporter) dirFor(path string) (string, error) {
	l := im.loader()
	if path == l.ModPath {
		return l.ModDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	for _, base := range []string{"src", filepath.Join("src", "vendor")} {
		d := filepath.Join(goroot, base, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}
