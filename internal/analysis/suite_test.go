package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"activegeo/internal/analysis"
	"activegeo/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// Each analyzer runs over its fixture package; scope-sensitive
// analyzers are constructed with the fixture's import path so the
// scoped rules fire.

func TestDetrandFixture(t *testing.T) {
	a := analysis.NewDetrand([]string{"fixture/detrand"})
	analysistest.Run(t, fixture("detrand"), "fixture/detrand", a)
}

func TestDetrandSeedRuleOnlyInScope(t *testing.T) {
	// Outside the seed scope the hard-coded-seed rule is silent but
	// the global-source and wall-clock rules still fire.
	a := analysis.NewDetrand([]string{"activegeo/internal/netsim"})
	diags := analysistest.Findings(t, fixture("detrand"), "fixture/unscoped", a)
	for _, d := range diags {
		if strings.Contains(d.Message, "hard-coded seed") {
			t.Errorf("seed rule fired outside its scope: %s", d)
		}
	}
	if len(diags) == 0 {
		t.Fatal("global-source and wall-clock rules must fire regardless of scope")
	}
}

func TestSimclockFixture(t *testing.T) {
	a := analysis.NewSimclock([]string{"fixture/simclock"})
	analysistest.Run(t, fixture("simclock"), "fixture/simclock", a)
}

func TestMaporderFixture(t *testing.T) {
	analysistest.Run(t, fixture("maporder"), "fixture/maporder", analysis.NewMaporder())
}

func TestSharedrandFixture(t *testing.T) {
	analysistest.Run(t, fixture("sharedrand"), "fixture/sharedrand", analysis.NewSharedrand())
}

func TestFloatexactFixture(t *testing.T) {
	a := analysis.NewFloatexact([]string{"fixture/floatexact"})
	analysistest.Run(t, fixture("floatexact"), "fixture/floatexact", a)
}

func TestErrdropFixture(t *testing.T) {
	analysistest.Run(t, fixture("errdrop"), "fixture/errdrop", analysis.NewErrdrop())
}

func TestLockorderFixture(t *testing.T) {
	analysistest.Run(t, fixture("lockorder"), "fixture/lockorder", analysis.NewLockorder())
}

func TestUnitflowFixture(t *testing.T) {
	a := analysis.NewUnitflow([]string{"fixture/unitflow"})
	analysistest.Run(t, fixture("unitflow"), "fixture/unitflow", a)
}

func TestUnitflowScopeGate(t *testing.T) {
	// Outside its scope list the analyzer is silent even on a fixture
	// full of violations.
	a := analysis.NewUnitflow([]string{"activegeo/internal/geo"})
	diags := analysistest.Findings(t, fixture("unitflow"), "fixture/unscoped-unitflow", a)
	if len(diags) != 0 {
		t.Fatalf("unitflow fired outside its scope: %v", diags)
	}
}

func TestGoroleakFixture(t *testing.T) {
	analysistest.Run(t, fixture("goroleak"), "fixture/goroleak", analysis.NewGoroleak())
}

func TestGoroleakMainExempt(t *testing.T) {
	// package main: process exit owns every goroutine.
	diags := analysistest.Findings(t, fixture("goroleakmain"), "fixture/goroleakmain", analysis.NewGoroleak())
	if len(diags) != 0 {
		t.Fatalf("goroleak fired in package main: %v", diags)
	}
}

// TestMalformedDirectives: a directive missing its reason or naming an
// unknown analyzer is reported and suppresses nothing.
func TestMalformedDirectives(t *testing.T) {
	diags := analysistest.Findings(t, fixture("directivebad"), "fixture/directivebad", analysis.NewErrdrop())
	var missingReason, unknownName, drops int
	for _, d := range diags {
		switch {
		case d.Analyzer == analysis.DirectiveAnalyzer && strings.Contains(d.Message, "missing the mandatory reason"):
			missingReason++
		case d.Analyzer == analysis.DirectiveAnalyzer && strings.Contains(d.Message, "unknown analyzer"):
			unknownName++
		case d.Analyzer == "errdrop":
			drops++
		}
	}
	if missingReason != 1 || unknownName != 1 {
		t.Errorf("want 1 missing-reason + 1 unknown-analyzer directive diagnostics, got %d + %d (all: %v)",
			missingReason, unknownName, diags)
	}
	if drops != 2 {
		t.Errorf("malformed directives must not suppress: want 2 errdrop findings, got %d", drops)
	}
}

// TestSuiteNames pins the analyzer set the multichecker runs.
func TestSuiteNames(t *testing.T) {
	want := []string{"detrand", "simclock", "maporder", "sharedrand", "floatexact", "errdrop",
		"lockorder", "unitflow", "goroleak"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
