// Package analysistest runs analyzers over fixture packages and checks
// their findings against // want comments, mirroring the x/tools
// package of the same name on the stdlib-only framework.
//
// A fixture is one directory under testdata/src/<name>/ containing a
// single package. Lines that must be flagged carry a trailing comment
//
//	code() // want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. The run
// fails on any missing or unexpected diagnostic. Allow directives in
// fixtures are honored exactly as in production, so suppression is
// testable: a line whose finding is suppressed simply carries no want.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"activegeo/internal/analysis"
)

// wantRe matches one quoted regexp in a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one expected diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture directory as import path fixturePath, applies
// the analyzers, and diffs diagnostics against the fixture's want
// comments. fixturePath is what Pass.Path reports, so scope-sensitive
// analyzers can be pointed at (or away from) the fixture.
func Run(t *testing.T, dir, fixturePath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, fixturePath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants parses the fixture's // want comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// Findings loads a fixture and returns the raw diagnostics — for tests
// that assert on counts or exit behaviour rather than want comments.
func Findings(t *testing.T, dir, fixturePath string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, fixturePath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	return diags
}
