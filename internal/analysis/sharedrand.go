package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewSharedrand builds the sharedrand analyzer: a *rand.Rand must
// never cross a goroutine boundary. math/rand sources are not safe for
// concurrent use, and even a mutex-wrapped shared stream makes every
// draw depend on goroutine scheduling — the pre-PR 1 Lab.Audit bug.
//
// Flagged:
//
//   - a `go` statement whose function literal captures a *rand.Rand
//     declared outside the literal, or that passes one as an argument;
//   - a function literal capturing an outer *rand.Rand handed to a
//     worker-pool-shaped callee (name containing "parallel", "worker",
//     "pool", "spawn" or "async", e.g. experiments.parallelFor);
//   - an HTTP handler — any func or method with the
//     (http.ResponseWriter, *http.Request) signature — touching a
//     *rand.Rand declared outside it (typically a server struct
//     field). net/http serves every request on its own goroutine, so
//     a handler-shared stream is a data race and makes responses
//     depend on request arrival order — the pre-PR 5 atlasd bug.
//
// Serial callbacks (sort.Slice comparators and the like) stay
// unflagged; per-entity streams derived inside the closure
// (rngFor / measure.StreamSeed) and stateless per-request draws
// (atlasd.Server.drawRNG) are the approved patterns.
func NewSharedrand() *Analyzer {
	a := &Analyzer{
		Name: "sharedrand",
		Doc:  "forbids *rand.Rand values crossing goroutine boundaries (go statements, worker-pool closures)",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncDecl:
					if s.Body != nil && isHandlerSig(pass.TypeOf(s.Name)) {
						reportHandlerRand(pass, s.Body, s.Name.Name)
					}
				case *ast.FuncLit:
					if isHandlerSig(pass.TypeOf(s)) {
						reportHandlerRand(pass, s.Body, "handler literal")
					}
				case *ast.GoStmt:
					if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
						reportCapturedRand(pass, lit, "go statement")
					}
					for _, arg := range s.Call.Args {
						if t := pass.TypeOf(arg); t != nil && isRandRand(t) {
							pass.Reportf(arg.Pos(),
								"*rand.Rand passed into a go statement: derive a per-goroutine stream (measure.StreamSeed) instead of sharing one")
						}
					}
				case *ast.CallExpr:
					if !isWorkerPoolCallee(s) {
						return true
					}
					for _, arg := range s.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							reportCapturedRand(pass, lit, "worker-pool closure")
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// reportCapturedRand flags free *rand.Rand variables referenced inside
// the literal but declared outside it.
func reportCapturedRand(pass *Pass, lit *ast.FuncLit, where string) {
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isRandRand(obj.Type()) || declaredWithin(obj, lit.Pos(), lit.End()) {
			return true
		}
		if seen[obj.Name()] {
			return true
		}
		seen[obj.Name()] = true
		pass.Reportf(id.Pos(),
			"*rand.Rand %q shared into a %s: every draw would depend on scheduling — derive a per-entity stream inside the closure",
			obj.Name(), where)
		return true
	})
}

// isHandlerSig reports whether t is the http.HandlerFunc shape:
// func(http.ResponseWriter, *http.Request).
func isHandlerSig(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return isNetHTTP(sig.Params().At(0).Type(), "ResponseWriter", false) &&
		isNetHTTP(sig.Params().At(1).Type(), "Request", true)
}

// isNetHTTP reports whether t is net/http.<name> (or a pointer to it).
func isNetHTTP(t types.Type, name string, wantPtr bool) bool {
	if wantPtr {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// reportHandlerRand flags *rand.Rand objects referenced inside an HTTP
// handler body but declared outside it — server-struct fields above
// all. net/http runs handlers on concurrent serve goroutines, so such
// a stream is shared state even behind a mutex.
func reportHandlerRand(pass *Pass, body *ast.BlockStmt, name string) {
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isRandRand(obj.Type()) || declaredWithin(obj, body.Pos(), body.End()) {
			return true
		}
		if seen[obj.Name()] {
			return true
		}
		seen[obj.Name()] = true
		pass.Reportf(id.Pos(),
			"*rand.Rand %q used inside HTTP handler %s: handlers run on concurrent serve goroutines — make the response a stateless function of (seed, request) instead",
			obj.Name(), name)
		return true
	})
}

// isWorkerPoolCallee applies the naming heuristic for callees that run
// their function-literal arguments concurrently.
func isWorkerPoolCallee(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, marker := range []string{"parallel", "worker", "pool", "spawn", "async"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}
