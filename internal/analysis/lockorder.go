package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewLockorder builds the lockorder analyzer: a flow-sensitive pass
// over sync.Mutex / sync.RWMutex critical sections.
//
// Within each function body the pass tracks the set of locks held
// (Lock/RLock acquires, Unlock/RUnlock releases, `defer mu.Unlock()`
// holds to function exit; branches are analyzed on copies of the held
// set, so an early-unlock-and-return path does not leak into the fall
// through). While at least one lock is held it flags
//
//   - channel sends, receives and blocking selects (a select with a
//     default clause is a non-blocking poll and passes);
//   - network calls — any function or method from net, net/http,
//     net/textproto, net/rpc or crypto/tls (the atlasd drain path and
//     proxy forwarder are the motivating surfaces);
//   - time.Sleep and sync.WaitGroup.Wait (sync.Cond.Wait is exempt: it
//     releases its locker while parked — the drainGate pattern);
//   - callbacks: calls through function-valued variables or fields
//     (Config.OnBatchDone, modelCache.fit) and module-interface
//     methods (stream.Provisioner / Source, geoloc.Algorithm) — code
//     the lock holder does not control and that may block or re-enter;
//   - re-acquiring a lock already held (sync mutexes are not
//     reentrant; recursive RLock can deadlock against a queued writer).
//
// Acquisition pairs (A held while B is acquired) accumulate into a
// per-package lock graph; any edge on a cycle — the A→B / B→A
// inconsistent-ordering deadlock — is reported at its acquisition site.
//
// Lock identity is (defining type, field name) for struct-owned
// mutexes and the variable name for package-level or local ones, so
// every instance of a type shares one graph node: the graph is about
// code paths, not object instances.
func NewLockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "flags blocking operations and callbacks under sync locks and inconsistent lock acquisition order",
	}
	a.Run = func(pass *Pass) error {
		w := &lockWalker{
			pass:  pass,
			edges: map[lockEdge]token.Pos{},
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						w.walkBody(fn.Body)
					}
				case *ast.FuncLit:
					// Function literals run on their own stack (go
					// statements, deferred closures, stored callbacks):
					// each is analyzed as its own function with an empty
					// held set. walkBody does not descend into them.
					w.walkBody(fn.Body)
				}
				return true
			})
		}
		w.reportCycles()
		return nil
	}
	return a
}

// lockKey names one lock node in the package graph.
type lockKey string

// lockEdge records "from held while to acquired".
type lockEdge struct{ from, to lockKey }

// heldLock is one currently held lock.
type heldLock struct {
	key lockKey
	pos token.Pos
}

type lockWalker struct {
	pass  *Pass
	edges map[lockEdge]token.Pos
}

// walkBody analyzes one function body with an empty held set.
func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	held := []heldLock{}
	w.stmts(body.List, &held)
}

func (w *lockWalker) stmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// branch analyzes a nested conditional region on a copy of the held
// set: acquisitions and releases inside it are observed for edges and
// blocking calls but do not alter the fall-through state. This is the
// approximation that makes `if cond { mu.Unlock(); return }` sound: the
// fall through still holds the lock, and the branch body is checked
// with the unlock applied.
func (w *lockWalker) branch(s ast.Stmt, held *[]heldLock) {
	if s == nil {
		return
	}
	cp := append([]heldLock(nil), *held...)
	w.stmt(s, &cp)
}

func (w *lockWalker) branchStmts(list []ast.Stmt, held *[]heldLock) {
	cp := append([]heldLock(nil), *held...)
	w.stmts(list, &cp)
}

func (w *lockWalker) stmt(s ast.Stmt, held *[]heldLock) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, key, ok := w.mutexOp(call); ok {
				w.applyMutexOp(op, key, call.Pos(), held)
				return
			}
		}
		w.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() — and defer func() { ...; mu.Unlock() }() —
		// hold the lock to function exit: nothing to release now, and
		// everything after this statement runs under the lock, which
		// the held set already reflects.
		if op, _, ok := w.mutexOp(st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			_ = lit // analyzed separately with an empty held set
			return
		}
	case *ast.GoStmt:
		// Spawning is non-blocking; the goroutine body is analyzed as
		// its own function. Arguments are evaluated here, though.
		for _, arg := range st.Call.Args {
			w.checkExpr(arg, held)
		}
	case *ast.SendStmt:
		if len(*held) > 0 {
			w.reportBlocked(st.Arrow, "channel send", held)
		}
		w.checkExpr(st.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.checkExpr(rhs, held)
		}
		for _, lhs := range st.Lhs {
			w.checkExpr(lhs, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		w.stmt(st.Init, held)
		w.checkExpr(st.Cond, held)
		w.branch(st.Body, held)
		w.branch(st.Else, held)
	case *ast.ForStmt:
		w.stmt(st.Init, held)
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		w.branch(st.Body, held)
	case *ast.RangeStmt:
		if t := w.pass.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(*held) > 0 {
				w.reportBlocked(st.Range, "channel-range receive", held)
			}
		}
		w.checkExpr(st.X, held)
		w.branch(st.Body, held)
	case *ast.SelectStmt:
		nonBlocking := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				nonBlocking = true
			}
		}
		if !nonBlocking && len(*held) > 0 {
			w.reportBlocked(st.Select, "blocking select", held)
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm op itself is covered by the select report (or is
			// a non-blocking poll); the clause bodies still run under
			// the lock.
			w.branchStmts(cc.Body, held)
		}
	case *ast.SwitchStmt:
		w.stmt(st.Init, held)
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branchStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branchStmts(cc.Body, held)
			}
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.checkExpr(st.X, held)
	}
}

// applyMutexOp updates the held set for one Lock/Unlock call.
func (w *lockWalker) applyMutexOp(op string, key lockKey, pos token.Pos, held *[]heldLock) {
	switch op {
	case "Lock", "RLock":
		for _, h := range *held {
			if h.key == key {
				w.pass.Reportf(pos,
					"lock %s acquired while already held (acquired at %s): sync mutexes are not reentrant",
					key, w.pass.Fset.Position(h.pos))
				return
			}
			edge := lockEdge{from: h.key, to: key}
			if _, seen := w.edges[edge]; !seen {
				w.edges[edge] = pos
			}
		}
		*held = append(*held, heldLock{key: key, pos: pos})
	case "Unlock", "RUnlock":
		for i, h := range *held {
			if h.key == key {
				*held = append((*held)[:i], (*held)[i+1:]...)
				return
			}
		}
	}
}

// checkExpr scans an expression for blocking operations performed with
// locks held. Function literal bodies are skipped (they run on their
// own stack and are analyzed separately).
func (w *lockWalker) checkExpr(e ast.Expr, held *[]heldLock) {
	if e == nil || len(*held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.reportBlocked(x.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if op, _, ok := w.mutexOp(x); ok {
				// Nested lock calls inside larger expressions are rare
				// enough to ignore here; statement-level calls are
				// handled by stmt.
				_ = op
				return true
			}
			w.checkCall(x, held)
		}
		return true
	})
}

// netPkgs are the stdlib packages whose calls mean "waiting on a peer".
var netPkgs = map[string]bool{
	"net":           true,
	"net/http":      true,
	"net/textproto": true,
	"net/rpc":       true,
	"net/smtp":      true,
	"crypto/tls":    true,
}

// checkCall classifies one call made while locks are held.
func (w *lockWalker) checkCall(call *ast.CallExpr, held *[]heldLock) {
	info := w.pass.Info
	var obj types.Object
	var sel *ast.SelectorExpr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		sel = fun
		obj = info.Uses[fun.Sel]
	default:
		return
	}
	if obj == nil {
		return
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, _ := o.Type().(*types.Signature)
		pkg := o.Pkg()
		switch {
		case pkg != nil && pkg.Path() == "time" && o.Name() == "Sleep":
			w.reportBlocked(call.Pos(), "time.Sleep", held)
		case sig != nil && sig.Recv() != nil && isSyncType(sig.Recv().Type(), "WaitGroup") && o.Name() == "Wait":
			w.reportBlocked(call.Pos(), "sync.WaitGroup.Wait", held)
		case sig != nil && sig.Recv() != nil && isSyncType(sig.Recv().Type(), "Cond"):
			// sync.Cond.Wait releases its locker while parked — the
			// condition-variable pattern is the one sanctioned way to
			// block under a lock. Signal/Broadcast never block.
		case pkg != nil && netPkgs[pkg.Path()]:
			w.reportBlocked(call.Pos(), fmt.Sprintf("network call %s.%s", pkg.Name(), o.Name()), held)
		case sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) && w.inModule(pkg):
			w.reportBlocked(call.Pos(),
				fmt.Sprintf("interface callback %s", callName(sel, o)), held)
		}
	case *types.Var:
		// A call through a function-valued variable, parameter or
		// struct field: the lock holder does not control what runs.
		if _, isSig := o.Type().Underlying().(*types.Signature); isSig {
			w.reportBlocked(call.Pos(),
				fmt.Sprintf("function-valued callback %s", callName(sel, o)), held)
		}
	}
}

// inModule reports whether pkg belongs to the module under analysis:
// same package, or an import path sharing the module's first segment.
// Stdlib interface methods (error.Error, io.Writer.Write) stay exempt.
func (w *lockWalker) inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pkg == w.pass.Pkg {
		return true
	}
	mod, _, _ := strings.Cut(w.pass.Path, "/")
	first, _, _ := strings.Cut(pkg.Path(), "/")
	return mod == first
}

func callName(sel *ast.SelectorExpr, obj types.Object) string {
	if sel != nil {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + obj.Name()
		}
	}
	return obj.Name()
}

func (w *lockWalker) reportBlocked(pos token.Pos, what string, held *[]heldLock) {
	h := (*held)[len(*held)-1]
	w.pass.Reportf(pos,
		"%s while %s is held (acquired at %s): blocking under a lock stalls every other acquirer — move it outside the critical section",
		what, h.key, w.pass.Fset.Position(h.pos))
}

// mutexOp recognizes mu.Lock / RLock / Unlock / RUnlock calls,
// including through embedded mutexes, and returns the canonical lock
// key.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (op string, key lockKey, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	// The method must come from sync.Mutex / sync.RWMutex — directly or
	// via embedding.
	fn, isFn := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	if !isSyncType(sig.Recv().Type(), "Mutex") && !isSyncType(sig.Recv().Type(), "RWMutex") {
		return "", "", false
	}
	return op, w.lockKeyOf(sel.X), true
}

// lockKeyOf canonicalizes the expression the lock method was called on.
// Struct-owned mutexes become "Type.field" (instance-independent);
// package-level and local mutex variables keep their names.
func (w *lockWalker) lockKeyOf(e ast.Expr) lockKey {
	switch x := e.(type) {
	case *ast.Ident:
		return lockKey(x.Name)
	case *ast.SelectorExpr:
		if t := w.pass.TypeOf(x.X); t != nil {
			if ptr, isPtr := t.(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed {
				return lockKey(named.Obj().Name() + "." + x.Sel.Name)
			}
		}
		return lockKey(x.Sel.Name)
	case *ast.ParenExpr:
		return w.lockKeyOf(x.X)
	case *ast.StarExpr:
		return w.lockKeyOf(x.X)
	case *ast.IndexExpr:
		return w.lockKeyOf(x.X)
	}
	return lockKey("lock")
}

// reportCycles flags every acquisition edge that lies on a cycle of the
// package lock graph — the classic inconsistent-ordering deadlock.
func (w *lockWalker) reportCycles() {
	adj := map[lockKey][]lockKey{}
	for e := range w.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to lockKey) bool {
		seen := map[lockKey]bool{}
		stack := []lockKey{from}
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if k == to {
				return true
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			stack = append(stack, adj[k]...)
		}
		return false
	}
	edges := make([]lockEdge, 0, len(w.edges))
	for e := range w.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if reaches(e.to, e.from) {
			w.pass.Reportf(w.edges[e],
				"inconsistent lock order: %s acquired while %s is held, but elsewhere in this package the order is reversed — pick one order (deadlock risk)",
				e.to, e.from)
		}
	}
}

// isSyncType reports whether t (or what it points to) is sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
