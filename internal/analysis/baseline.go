package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Baseline is the ratchet file: a snapshot of known findings that CI
// tolerates, so the suite can grow stricter without a flag day — only
// findings NOT in the baseline fail the run, and regenerating the file
// after fixes ratchets the debt downward.
//
// Keys are file|analyzer|message with the filename relative to the
// module root (line numbers are deliberately excluded so unrelated
// edits shifting a file don't spuriously "create" findings); the value
// counts identical findings, so adding a second instance of a
// baselined problem still fails.
type Baseline struct {
	Findings map[string]int `json:"findings"`
}

// BaselineKey canonicalizes one diagnostic for baseline matching.
// modDir, when non-empty, relativizes the filename.
func BaselineKey(d Diagnostic, modDir string) string {
	name := d.Pos.Filename
	if modDir != "" {
		if rel, err := filepath.Rel(modDir, name); err == nil && !filepath.IsAbs(rel) {
			name = filepath.ToSlash(rel)
		}
	}
	return name + "|" + d.Analyzer + "|" + d.Message
}

// NewBaseline snapshots the given diagnostics.
func NewBaseline(diags []Diagnostic, modDir string) *Baseline {
	b := &Baseline{Findings: map[string]int{}}
	for _, d := range diags {
		b.Findings[BaselineKey(d, modDir)]++
	}
	return b
}

// Filter splits diags into the new findings (not covered by the
// baseline) and the count of baselined ones suppressed. For a key with
// baseline count b, the first b occurrences in position order are
// suppressed and the rest reported — deterministic, and an added
// duplicate of a baselined finding still fails.
func (b *Baseline) Filter(diags []Diagnostic, modDir string) (fresh []Diagnostic, suppressed int) {
	remaining := make(map[string]int, len(b.Findings))
	for k, v := range b.Findings {
		remaining[k] = v
	}
	for _, d := range diags {
		k := BaselineKey(d, modDir)
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, suppressed
}

// WriteBaseline saves the baseline as stable JSON (encoding/json
// renders map keys sorted, so the file diffs cleanly across runs).
func (b *Baseline) WriteBaseline(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline file. A missing file is an error — an
// empty ratchet should be an explicitly committed empty baseline, not a
// typo'd path silently tolerating everything.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Findings == nil {
		b.Findings = map[string]int{}
	}
	return b, nil
}
