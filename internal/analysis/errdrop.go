package analysis

import (
	"go/ast"
	"go/types"
)

// errdropMethods are the socket- and service-lifecycle methods whose
// error results must not be silently dropped: a failed SetReadDeadline
// turns a bounded measurement read into an unbounded hang, a failed
// Close leaks the connection the RTT was measured on, and a failed
// Drain / Sync / Shutdown / Flush means the caller believes state was
// persisted or quiesced when it was not.
var errdropMethods = map[string]bool{
	"Close":            true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
	"Drain":            true,
	"Sync":             true,
	"Shutdown":         true,
	"Flush":            true,
}

// NewErrdrop builds the errdrop analyzer: a bare expression-statement
// call to one of the lifecycle methods above that returns exactly an
// error is flagged, carrying a suggested fix that prefixes the call
// with `_ = ` (the explicit discard the message asks for). Handling
// the error, explicitly discarding it, or deferring the call
// (`defer c.Close()`, the idiomatic best-effort cleanup) all pass.
func NewErrdrop() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "flags silently dropped errors from Close / SetDeadline / SetReadDeadline / SetWriteDeadline",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				// Defers are DeferStmt nodes, go-calls GoStmt nodes:
				// only a plain ExprStmt is a silent drop.
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !errdropMethods[sel.Sel.Name] {
					return true
				}
				if _, isPkg := pass.Info.Uses[identOf(sel.X)].(*types.PkgName); isPkg {
					return true // pkg.Close(...) is not a method call
				}
				if t := pass.TypeOf(call); t != nil && isErrorType(t) {
					fix := SuggestedFix{
						Message: "discard the error explicitly with `_ = `",
						Edits:   []TextEdit{pass.Edit(call.Pos(), call.Pos(), "_ = ")},
					}
					pass.ReportFix(call.Pos(), fix,
						"%s error silently dropped: handle it or discard explicitly (_ = x.%s())",
						sel.Sel.Name, sel.Sel.Name)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
