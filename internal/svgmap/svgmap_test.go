package svgmap

import (
	"strings"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

func TestNewContainsCountries(t *testing.T) {
	m := New(800)
	s := m.String()
	if !strings.HasPrefix(s, `<svg xmlns=`) || !strings.HasSuffix(s, `</svg>`) {
		t.Fatal("not an SVG document")
	}
	if strings.Count(s, "<circle") < 200 {
		t.Errorf("only %d circles; the country layer should contribute hundreds", strings.Count(s, "<circle"))
	}
	if !strings.Contains(s, `viewBox="0 0 800 400"`) {
		t.Error("wrong viewBox")
	}
}

func TestMinimumWidth(t *testing.T) {
	m := New(10)
	if !strings.Contains(m.String(), `viewBox="0 0 200 100"`) {
		t.Error("minimum width not enforced")
	}
}

func TestLayers(t *testing.T) {
	m := New(400)
	before := strings.Count(m.String(), "<circle")

	m.AddDisk(geo.Cap{Center: geo.Point{Lat: 48.86, Lon: 2.35}, RadiusKm: 500}, "#123456")
	if got := strings.Count(m.String(), "<circle"); got != before+1 {
		t.Errorf("disk did not add one circle: %d → %d", before, got)
	}
	if !strings.Contains(m.String(), "#123456") {
		t.Error("disk color missing")
	}

	g := grid.New(2.0)
	r := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 50, Lon: 10}, RadiusKm: 300})
	m.AddRegion(r, "#ff0000")
	if strings.Count(m.String(), "<rect") < r.Count() {
		t.Errorf("region cells not drawn: %d rects for %d cells", strings.Count(m.String(), "<rect"), r.Count())
	}

	m.AddPoint(geo.Point{Lat: 0, Lon: 0}, "#000", `tar<get>"x"`)
	s := m.String()
	if !strings.Contains(s, "tar&lt;get&gt;") {
		t.Error("label not escaped")
	}
	if strings.Contains(s, `<get>`) {
		t.Error("raw markup leaked from label")
	}
}

func TestProjection(t *testing.T) {
	m := New(1000) // 1000x500
	x, y := m.xy(geo.Point{Lat: 0, Lon: 0})
	if x != 500 || y != 250 {
		t.Errorf("origin projects to %.0f,%.0f", x, y)
	}
	x, y = m.xy(geo.Point{Lat: 90, Lon: -180})
	if x != 0 || y != 0 {
		t.Errorf("NW corner projects to %.0f,%.0f", x, y)
	}
	// 111.195 km of surface ≈ 1 degree ≈ height/180 px.
	if px := m.kmToPx(111.195); px < 2.7 || px > 2.9 {
		t.Errorf("kmToPx(1°) = %.2f px, want ≈2.78", px)
	}
}
