// Package svgmap renders world maps as SVG: the graphical counterpart
// to package vis, used by the web demo (cmd/webdemo) to draw
// measurements as circles on a map the way the paper's web application
// does, and by anyone who wants a figure-quality view of a prediction
// region.
//
// The projection is equirectangular. Countries are drawn from the
// worldmap cap atlas (each cap becomes a circle), so the map is
// self-contained — no external geometry files.
package svgmap

import (
	"fmt"
	"math"
	"strings"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
	"activegeo/internal/worldmap"
)

// Map accumulates layers and renders SVG.
type Map struct {
	width, height int
	layers        []string
}

// New creates a map canvas of the given pixel width (2:1 aspect).
func New(widthPx int) *Map {
	if widthPx < 200 {
		widthPx = 200
	}
	m := &Map{width: widthPx, height: widthPx / 2}
	m.layers = append(m.layers, fmt.Sprintf(
		`<rect width="%d" height="%d" fill="#dbe9f4"/>`, m.width, m.height))
	m.drawCountries()
	return m
}

// xy projects a point to pixel coordinates.
func (m *Map) xy(p geo.Point) (float64, float64) {
	p = p.Normalize()
	x := (p.Lon + 180) / 360 * float64(m.width)
	y := (90 - p.Lat) / 180 * float64(m.height)
	return x, y
}

// kmToPx converts a surface distance at latitude lat to pixels along the
// x axis (the equirectangular scale varies with latitude; for circle
// radii we use the latitude-independent y scale, which keeps circles
// visually comparable).
func (m *Map) kmToPx(km float64) float64 {
	return km / (180 * 111.195) * float64(m.height)
}

// drawCountries paints every country's caps.
func (m *Map) drawCountries() {
	var b strings.Builder
	b.WriteString(`<g fill="#b9c7ae" stroke="none">`)
	for _, c := range worldmap.Countries() {
		for _, cap := range c.Shapes {
			x, y := m.xy(cap.Center)
			r := m.kmToPx(math.Max(cap.RadiusKm, 40))
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f"/>`, x, y, r)
		}
	}
	b.WriteString(`</g>`)
	m.layers = append(m.layers, b.String())
}

// AddDisk draws a measurement disk (a landmark's distance bound) as a
// translucent circle — the paper's Figure 1 visual.
func (m *Map) AddDisk(c geo.Cap, color string) {
	x, y := m.xy(c.Center)
	m.layers = append(m.layers, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.12" stroke="%s" stroke-opacity="0.6" stroke-width="1"/>`,
		x, y, m.kmToPx(c.RadiusKm), color, color))
}

// AddRegion draws a prediction region's cells.
func (m *Map) AddRegion(r *grid.Region, color string) {
	g := r.Grid()
	var b strings.Builder
	fmt.Fprintf(&b, `<g fill="%s" fill-opacity="0.75" stroke="none">`, color)
	cellH := float64(m.height) / 180 * g.Resolution()
	r.Each(func(i int) {
		p := g.Center(i)
		x, y := m.xy(p)
		w := cellH / math.Max(0.2, math.Cos(p.Lat*math.Pi/180))
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f"/>`,
			x-w/2, y-cellH/2, w, cellH)
	})
	b.WriteString(`</g>`)
	m.layers = append(m.layers, b.String())
}

// AddPoint draws a marker with a label.
func (m *Map) AddPoint(p geo.Point, color, label string) {
	x, y := m.xy(p)
	m.layers = append(m.layers, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="#fff" stroke-width="1.2"/>`, x, y, color))
	if label != "" {
		m.layers = append(m.layers, fmt.Sprintf(
			`<text x="%.1f" y="%.1f" font-size="11" font-family="sans-serif" fill="#222">%s</text>`,
			x+6, y-4, escape(label)))
	}
}

// String renders the SVG document.
func (m *Map) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d">`,
		m.width, m.height, m.width, m.height)
	for _, l := range m.layers {
		b.WriteString(l)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
