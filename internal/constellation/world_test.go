package constellation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

const testClients = 8

var (
	fixOnce  sync.Once
	fixCons  *atlas.Constellation
	fixHosts []netsim.HostID
)

// world builds one simulated constellation plus vantage hosts, shared
// by every test in the package.
func world(t *testing.T) (*atlas.Constellation, []netsim.HostID) {
	t.Helper()
	fixOnce.Do(func() {
		net := netsim.New(47)
		rng := rand.New(rand.NewSource(47))
		cons, err := atlas.Build(net, atlas.Config{Anchors: 30, Probes: 20, SamplesPerPair: 3}, rng)
		if err != nil {
			panic(err)
		}
		for i := 0; i < testClients; i++ {
			id := netsim.HostID(fmt.Sprintf("cl-client-%04d", i))
			loc := geo.Point{Lat: -55 + 120*rng.Float64(), Lon: -175 + 350*rng.Float64()}
			if err := net.AddHost(&netsim.Host{ID: id, Loc: loc}); err != nil {
				panic(err)
			}
			fixHosts = append(fixHosts, id)
		}
		fixCons = cons
	})
	return fixCons, fixHosts
}

func newCluster(t *testing.T, shards ...string) *Cluster {
	t.Helper()
	cons, _ := world(t)
	base := atlasd.Config{Seed: 47, Opts: cbg.Options{Slowline: true}}
	return NewCluster(cons, base, shards, 47, 16)
}
