package constellation

import (
	"context"
	"fmt"
	"testing"

	"activegeo/internal/atlasd"
)

// seedReports ledgers one report per client through the sharding
// client, returning the (client, seq) keys accepted.
func seedReports(t *testing.T, c *Cluster, clients int, seqBase int64) []string {
	t.Helper()
	cc := c.Client()
	ctx := context.Background()
	var keys []string
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("seed-client-%02d", i)
		rep := atlasd.Report{
			Client:  name,
			Seq:     seqBase + 1,
			Samples: []atlasd.ReportSample{{LandmarkID: landmarkID(t, c, i%8), RTTms: 12}},
		}
		if err := cc.Upload(ctx, rep); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, fmt.Sprintf("%s|%d", name, seqBase+1))
	}
	return keys
}

// assertMergedExactlyOnce checks every key is somewhere and no shard
// holds two copies of any key.
func assertMergedExactlyOnce(t *testing.T, c *Cluster, keys []string) {
	t.Helper()
	merged := c.MergedLedger()
	for _, key := range keys {
		holders := merged[key]
		if len(holders) == 0 {
			t.Errorf("accepted report %s dropped from every ledger", key)
			continue
		}
		for shard, n := range holders {
			if n != 1 {
				t.Errorf("shard %s holds %d copies of %s", shard, n, key)
			}
		}
	}
}

// TestClusterDrainPreservesLedger: draining a shard replays its ledger
// to ring successors; nothing is dropped, nothing double-ledgered, and
// the cluster keeps serving.
func TestClusterDrainPreservesLedger(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()
	keys := seedReports(t, c, 12, 0)

	victim := c.Ring().Owner(keyFor("seed-client-00"))
	had := len(c.Shard(victim).Reports())
	if had == 0 {
		t.Fatalf("victim %s ledgered nothing; routing is broken", victim)
	}
	replayed, err := c.Drain(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != had {
		t.Errorf("replayed %d of %d ledgered reports", replayed, had)
	}
	if c.Shard(victim) != nil || len(c.Members()) != 2 {
		t.Fatalf("members after drain: %v", c.Members())
	}
	assertMergedExactlyOnce(t, c, keys)

	// A client retry of an already-ledgered seq lands on the successor
	// and dedupes there — the replayed entry absorbs it.
	cc := c.Client()
	rep := atlasd.Report{
		Client:  "seed-client-00",
		Seq:     1,
		Samples: []atlasd.ReportSample{{LandmarkID: landmarkID(t, c, 0), RTTms: 12}},
	}
	if err := cc.Upload(ctx, rep); err != nil {
		t.Fatal(err)
	}
	assertMergedExactlyOnce(t, c, keys)
}

// TestClusterFailoverOnDownShard: with one shard partitioned away the
// sharding client still answers everything, identically, by walking
// the ring successors.
func TestClusterFailoverOnDownShard(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()
	cc := c.Client()

	// Baseline answers with all shards up.
	var want []*atlasd.ModelInfo
	for i := 0; i < 8; i++ {
		m, err := cc.Model(ctx, landmarkID(t, c, i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}

	c.SetDown("s1", true)
	defer c.SetDown("s1", false)
	for i := 0; i < 8; i++ {
		m, err := cc.Model(ctx, landmarkID(t, c, i))
		if err != nil {
			t.Fatalf("model %d with s1 down: %v", i, err)
		}
		if m.LandmarkID != want[i].LandmarkID || m.SlopeMsPerKm != want[i].SlopeMsPerKm ||
			m.InterceptMs != want[i].InterceptMs || m.Pooled != want[i].Pooled {
			t.Errorf("model %d diverged across failover: %+v vs %+v", i, m, want[i])
		}
	}
	if c.Telemetry().Count("constellation.failover") == 0 {
		t.Error("no failover recorded with a shard down")
	}
}

// TestClusterRestart: a restarted shard rejoins at the fleet epoch with
// the ring restored, and no ledgered report is lost across the cycle.
func TestClusterRestart(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()
	keys := seedReports(t, c, 12, 0)
	if got, err := c.Controller().AdvanceEpoch(ctx); err != nil || got != 1 {
		t.Fatalf("advance: %d, %v", got, err)
	}

	before := c.Ring().Shards()
	if err := c.Restart(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	after := c.Ring().Shards()
	if len(after) != len(before) {
		t.Fatalf("ring after restart: %v", after)
	}
	if e := c.Shard("s1").Epoch(); e != 1 {
		t.Errorf("restarted shard at epoch %d, want 1", e)
	}
	assertMergedExactlyOnce(t, c, keys)

	// The fleet is barrier-ready again.
	if got, err := c.Controller().AdvanceEpoch(ctx); err != nil || got != 2 {
		t.Fatalf("advance after restart: %d, %v", got, err)
	}
}

// TestClusterDrainUnknownShard: draining a non-member is an error, not
// a panic or a silent no-op.
func TestClusterDrainUnknownShard(t *testing.T) {
	c := newCluster(t, "s0")
	if _, err := c.Drain(context.Background(), "nope"); err == nil {
		t.Fatal("drain of unknown shard succeeded")
	}
}
