package constellation

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"

	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

// handlerTransport serves a shard in-process: requests go straight to
// the handler's ServeHTTP, like loadgen's transport, and a shard
// "killed" by chaos turns into transport errors — exactly what a
// closed port looks like to the client, which must fail over.
type handlerTransport struct {
	mu   sync.RWMutex
	h    http.Handler
	down bool
}

func (t *handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.RLock()
	h, down := t.h, t.down
	t.mu.RUnlock()
	if down || h == nil {
		return nil, fmt.Errorf("constellation: shard unreachable: %s", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func (t *handlerTransport) swap(h http.Handler) {
	t.mu.Lock()
	t.h = h
	t.down = false
	t.mu.Unlock()
}

func (t *handlerTransport) setDown(down bool) {
	t.mu.Lock()
	t.down = down
	t.mu.Unlock()
}

// member is one shard's in-process state.
type member struct {
	name      string
	srv       *atlasd.Server
	tel       *telemetry.Collector
	transport *handlerTransport
	client    *atlasd.Client
}

// Cluster is an in-process constellation: N atlasd shards over one
// simulated world, a shared routing ring, per-shard telemetry, and the
// lifecycle operations the chaos soak and the benchmark drive — drain
// (with ledger replay to the ring successors), restart (fresh server,
// epoch re-sync, rejoin) and the fleet-wide epoch barrier.
//
// Every shard is built over the same atlas.Constellation and world
// seed, so its stateless responses are byte-identical to its peers' —
// the property the routing layer leans on for deterministic failover.
type Cluster struct {
	cons *atlas.Constellation
	base atlasd.Config
	ring *Ring
	tel  *telemetry.Collector
	ctl  *Controller

	mu      sync.Mutex
	members map[string]*member
}

// NewCluster builds an N-shard cluster. base is the per-shard server
// config (Seed, Opts, MaxInflight, FenceTTL); each shard gets its own
// telemetry collector, its ShardName, and an Owns predicate bound to
// the shared ring. ringSeed and vnodes parameterize placement.
func NewCluster(cons *atlas.Constellation, base atlasd.Config, shards []string, ringSeed int64, vnodes int) *Cluster {
	c := &Cluster{
		cons:    cons,
		base:    base,
		ring:    NewRing(ringSeed, vnodes, shards...),
		tel:     telemetry.New(),
		members: make(map[string]*member),
	}
	c.ctl = &Controller{Shards: c.shardRefs, Telemetry: c.tel}
	for _, name := range shards {
		c.members[name] = c.newMember(name)
	}
	return c
}

// newMember builds one shard server and its in-process plumbing.
func (c *Cluster) newMember(name string) *member {
	tel := telemetry.New()
	cfg := c.base
	cfg.Telemetry = tel
	cfg.ShardName = name
	cfg.Owns = func(id string) bool { return c.ring.Owner(netsim.HostID(id)) == name }
	srv := atlasd.NewServer(c.cons, cfg)
	tr := &handlerTransport{h: srv.Handler()}
	return &member{
		name:      name,
		srv:       srv,
		tel:       tel,
		transport: tr,
		client: &atlasd.Client{
			BaseURL:    "http://" + name + ".constellation.inproc",
			HTTPClient: &http.Client{Transport: tr},
		},
	}
}

// Ring returns the shared routing ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Telemetry returns the cluster-level collector (routing, failover,
// hedge and controller counters).
func (c *Cluster) Telemetry() *telemetry.Collector { return c.tel }

// Controller returns the fleet controller bound to live membership.
func (c *Cluster) Controller() *Controller { return c.ctl }

// Shard returns a live shard's server, or nil.
func (c *Cluster) Shard(name string) *atlasd.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.members[name]; m != nil {
		return m.srv
	}
	return nil
}

// ShardTelemetry returns a live shard's collector, or nil.
func (c *Cluster) ShardTelemetry(name string) *telemetry.Collector {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.members[name]; m != nil {
		return m.tel
	}
	return nil
}

// Members returns the live shard names, sorted.
func (c *Cluster) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.members))
	for name := range c.members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// resolve maps a shard name to its wire client for the routing client.
func (c *Cluster) resolve(name string) *atlasd.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.members[name]; m != nil {
		return m.client
	}
	return nil
}

// shardRefs is the controller's live membership view, sorted by name.
func (c *Cluster) shardRefs() []ShardRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	refs := make([]ShardRef, 0, len(c.members))
	for _, m := range c.members {
		refs = append(refs, ShardRef{Name: m.name, Client: m.client})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
	return refs
}

// Client builds a sharding-aware client over the cluster. Each call
// site may hold its own (hedge state is per client); they all share
// the ring and the cluster telemetry.
func (c *Cluster) Client() *Client {
	return &Client{Ring: c.ring, Resolve: c.resolve, Telemetry: c.tel}
}

// SetDown simulates an abrupt network partition of one shard: its
// transport returns connection errors until cleared (or until Restart
// swaps in a fresh server). State inside the shard is untouched.
func (c *Cluster) SetDown(name string, down bool) {
	c.mu.Lock()
	m := c.members[name]
	c.mu.Unlock()
	if m != nil {
		m.transport.setDown(down)
	}
}

// successorRefs routes a client ID on the current ring to live shard
// refs — the replay targets during a drain (the drained shard has
// already been removed from the ring).
func (c *Cluster) successorRefs(clientID string) []ShardRef {
	var refs []ShardRef
	for _, name := range c.ring.Successors(keyFor(clientID)) {
		c.mu.Lock()
		m := c.members[name]
		c.mu.Unlock()
		if m != nil {
			refs = append(refs, ShardRef{Name: m.name, Client: m.client})
		}
	}
	return refs
}

// Drain gracefully removes one shard: take it out of the ring (new
// traffic routes around it; in-flight requests to it finish or fail
// over), drain it over the wire, then replay its (client, seq) ledger
// onto the ring successors so client retries stay idempotent. The
// shard leaves the member set once its ledger is safe. Returns how
// many ledger entries were replayed.
func (c *Cluster) Drain(ctx context.Context, name string) (int, error) {
	c.mu.Lock()
	m := c.members[name]
	c.mu.Unlock()
	if m == nil {
		return 0, fmt.Errorf("constellation: unknown shard %q", name)
	}
	c.ring.Remove(name)
	replayed, err := c.ctl.DrainShard(ctx, ShardRef{Name: m.name, Client: m.client}, c.successorRefs)
	if err != nil {
		// The shard is drained but its ledger is not fully replayed;
		// keep it as a member so the harvest can be retried.
		return replayed, err
	}
	c.mu.Lock()
	delete(c.members, name)
	c.mu.Unlock()
	return replayed, nil
}

// Epoch returns the fleet epoch: the maximum over live shards (they
// agree except inside a barrier window or after a partial commit).
func (c *Cluster) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var epoch int64
	for _, m := range c.members {
		if e := m.srv.Epoch(); e > epoch {
			epoch = e
		}
	}
	return epoch
}

// Restart cycles one shard: gracefully drain it (replaying its ledger
// to the survivors), then bring up a fresh server under the same name
// — empty ledger, cold model cache, epoch 0 — sync it to the fleet
// epoch and rejoin it to the ring, which moves its ~K/N key range
// back. This is the chaos soak's kill/restart primitive.
func (c *Cluster) Restart(ctx context.Context, name string) error {
	if _, err := c.Drain(ctx, name); err != nil {
		return err
	}
	epoch := c.Epoch()
	fresh := c.newMember(name)
	// Adopt the fleet epoch over the wire before taking traffic, so a
	// barrier never finds the fleet skewed by a restart.
	if err := fresh.client.EpochSync(ctx, epoch); err != nil {
		return fmt.Errorf("constellation: syncing restarted %s to epoch %d: %w", name, epoch, err)
	}
	c.mu.Lock()
	c.members[name] = fresh
	c.mu.Unlock()
	c.ring.Add(name)
	return nil
}

// MergedLedger merges every live shard's report ledger into one view:
// for each (client, seq) key, which shards hold it and how many copies
// each holds. The exactly-once contract across the whole constellation
// is: every client-side 202 receipt has at least one copy somewhere
// (drains replay, so entries survive their shard), and no shard holds
// two (the per-shard dedupe). Cross-shard copies can legitimately
// exist transiently (an entry replayed to a successor the client also
// retried to); the merged view counts each key once.
func (c *Cluster) MergedLedger() map[string]map[string]int {
	c.mu.Lock()
	members := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		members = append(members, m)
	}
	c.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })
	out := make(map[string]map[string]int)
	for _, m := range members {
		for _, rep := range m.srv.Reports() {
			key := fmt.Sprintf("%s|%d", rep.Client, rep.Seq)
			if out[key] == nil {
				out[key] = make(map[string]int)
			}
			out[key][m.name]++
		}
	}
	return out
}
