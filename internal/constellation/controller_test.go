package constellation

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"activegeo/internal/atlasd"
)

// TestAdvanceEpochAll: the barrier moves every shard forward together
// and releases every fence.
func TestAdvanceEpochAll(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()
	for want := int64(1); want <= 3; want++ {
		got, err := c.Controller().AdvanceEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("advance returned %d, want %d", got, want)
		}
		for _, st := range c.Controller().Status(ctx) {
			if st.Err != nil {
				t.Fatalf("%s: %v", st.Name, st.Err)
			}
			if st.Epoch != want || st.Fenced {
				t.Fatalf("%s at epoch %d (fenced=%t), want %d unfenced", st.Name, st.Epoch, st.Fenced, want)
			}
		}
	}
}

// TestAdvanceEpochUnreachableShard: a dead shard fails the barrier
// before any fence goes up, and the survivors stay put.
func TestAdvanceEpochUnreachableShard(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()
	c.SetDown("s1", true)
	if _, err := c.Controller().AdvanceEpoch(ctx); err == nil {
		t.Fatal("barrier succeeded with a dead shard")
	}
	c.SetDown("s1", false)
	for _, st := range c.Controller().Status(ctx) {
		if st.Epoch != 0 || st.Fenced {
			t.Fatalf("%s at epoch %d (fenced=%t) after failed barrier", st.Name, st.Epoch, st.Fenced)
		}
	}
}

// prepareRefuser wraps a shard's transport and fails only the prepare
// POST — a shard that answers status but cannot hold up its half of the
// barrier.
type prepareRefuser struct {
	inner http.RoundTripper
}

func (p *prepareRefuser) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == "/v1/epoch/prepare" {
		return nil, fmt.Errorf("prepare refused by test")
	}
	return p.inner.RoundTrip(req)
}

// TestAdvanceEpochPrepareFailureAborts: when one shard's prepare fails,
// the controller aborts every fence it did raise — all-or-nothing, the
// fleet stays at the old epoch and keeps serving models.
func TestAdvanceEpochPrepareFailureAborts(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()

	refs := c.shardRefs()
	broken := make([]ShardRef, len(refs))
	for i, ref := range refs {
		broken[i] = ref
		if ref.Name == "s1" {
			broken[i].Client = &atlasd.Client{
				BaseURL:    ref.Client.BaseURL,
				HTTPClient: &http.Client{Transport: &prepareRefuser{inner: ref.Client.HTTPClient.Transport}},
			}
		}
	}
	ctl := &Controller{Shards: func() []ShardRef { return broken }}

	if _, err := ctl.AdvanceEpoch(ctx); err == nil {
		t.Fatal("barrier succeeded with a failing prepare")
	} else if !strings.Contains(err.Error(), "prepare(1) failed on s1") {
		t.Fatalf("unexpected barrier error: %v", err)
	}
	for _, st := range c.Controller().Status(ctx) {
		if st.Epoch != 0 {
			t.Fatalf("%s advanced to %d through a failed barrier", st.Name, st.Epoch)
		}
		if st.Fenced {
			t.Fatalf("%s left fenced after abort", st.Name)
		}
	}
	// The fences are down: models serve immediately.
	if _, err := c.resolve("s0").Model(ctx, landmarkID(t, c, 0)); err != nil {
		t.Fatalf("model blocked after aborted barrier: %v", err)
	}
	// With the refuser out of the way the next barrier goes through.
	if got, err := c.Controller().AdvanceEpoch(ctx); err != nil || got != 1 {
		t.Fatalf("advance after abort: epoch %d, err %v", got, err)
	}
}

// landmarkID returns the i-th landmark of the cluster's constellation.
func landmarkID(t *testing.T, c *Cluster, i int) string {
	t.Helper()
	all := c.cons.All()
	if i >= len(all) {
		t.Fatalf("landmark index %d out of range %d", i, len(all))
	}
	return string(all[i].Host.ID)
}

// TestNoMixedEpochs: clients hammering the model endpoint through
// repeated barriers each observe a non-decreasing epoch sequence, and
// after AdvanceEpoch returns, every fetch sees the new epoch — no shard
// ever serves a model fitted under a mix of epochs.
func TestNoMixedEpochs(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()
	cc := c.Client()
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = landmarkID(t, c, i)
	}

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := int64(-1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m, err := cc.Model(ctx, ids[(g+i)%len(ids)])
				if err != nil {
					errc <- fmt.Errorf("fetcher %d: %w", g, err)
					return
				}
				if m.Epoch < last {
					errc <- fmt.Errorf("fetcher %d: epoch went backwards %d -> %d", g, last, m.Epoch)
					return
				}
				last = m.Epoch
			}
		}(g)
	}

	for want := int64(1); want <= 3; want++ {
		if got, err := c.Controller().AdvanceEpoch(ctx); err != nil || got != want {
			close(stop)
			wg.Wait()
			t.Fatalf("advance: epoch %d, err %v", got, err)
		}
		// The barrier has committed: every subsequent fetch is in the new
		// epoch on every shard.
		for _, id := range ids {
			m, err := cc.Model(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if m.Epoch != want {
				t.Fatalf("model %s at epoch %d after barrier to %d", id, m.Epoch, want)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestEpochSkewRefused: the controller refuses to advance a fleet that
// disagrees on the current epoch.
func TestEpochSkewRefused(t *testing.T) {
	c := newCluster(t, "s0", "s1")
	ctx := context.Background()
	if err := c.resolve("s1").EpochSync(ctx, 7); err != nil {
		t.Fatal(err)
	}
	_, err := c.Controller().AdvanceEpoch(ctx)
	if err == nil || !strings.Contains(err.Error(), "epochs diverge") {
		t.Fatalf("skewed fleet advanced: %v", err)
	}
}

// TestControllerStatusSorted: Status reports every member, sorted,
// with reachability errors attached rather than fatal.
func TestControllerStatusSorted(t *testing.T) {
	c := newCluster(t, "s2", "s0", "s1")
	ctx := context.Background()
	c.SetDown("s1", true)
	st := c.Controller().Status(ctx)
	if len(st) != 3 {
		t.Fatalf("status reported %d shards, want 3", len(st))
	}
	for i, want := range []string{"s0", "s1", "s2"} {
		if st[i].Name != want {
			t.Fatalf("status order %v", st)
		}
	}
	if st[1].Err == nil {
		t.Error("down shard reported no error")
	}
	if st[0].Err != nil || st[2].Err != nil {
		t.Errorf("live shards reported errors: %v / %v", st[0].Err, st[2].Err)
	}
}

// TestReplayLedgerIdempotent: replaying a drained shard's ledger twice
// leaves the successors with exactly one copy of each report — the
// (client, seq) dedupe makes replay safe to retry from any point.
func TestReplayLedgerIdempotent(t *testing.T) {
	c := newCluster(t, "s0", "s1", "s2")
	ctx := context.Background()

	// Ledger a few reports directly on s1.
	src := c.resolve("s1")
	for i := 0; i < 5; i++ {
		rep := atlasd.Report{
			Client:  fmt.Sprintf("replay-client-%d", i),
			Seq:     1,
			Samples: []atlasd.ReportSample{{LandmarkID: landmarkID(t, c, i), RTTms: 10}},
		}
		if err := src.Upload(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}

	c.Ring().Remove("s1")
	from := ShardRef{Name: "s1", Client: src}
	for pass := 0; pass < 2; pass++ {
		n, err := c.Controller().ReplayLedger(ctx, from, c.successorRefs, 0)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if n != 5 {
			t.Fatalf("pass %d replayed %d, want 5", pass, n)
		}
	}

	// Each report lives exactly once on its ring successor.
	for i := 0; i < 5; i++ {
		client := fmt.Sprintf("replay-client-%d", i)
		owner := c.Ring().Owner(keyFor(client))
		copies := 0
		for _, rep := range c.Shard(owner).Reports() {
			if rep.Client == client && rep.Seq == 1 {
				copies++
			}
		}
		if copies != 1 {
			t.Errorf("successor %s holds %d copies of %s|1, want 1", owner, copies, client)
		}
	}
}
