package constellation

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/loadgen"
	"activegeo/internal/measure"
)

// TestChaosSoak is the constellation chaos soak (`make
// soak-constellation`): rounds of cluster load generation while one
// shard per interval is killed and restarted, with an epoch advance
// every few rounds. Each round's merged transcripts must be
// byte-identical to a fresh single-shard serial oracle, and the merged
// ledger must hold every accepted report exactly once — a kill that
// dropped a ledgered report, or a restart that served a stale model,
// fails the round.
//
// ACTIVEGEO_CHAOS_MINUTES sets the soak length with a one-kill-per-
// minute cadence (nightly runs 15). Unset, the test runs two quick
// rounds with a sub-second cadence — the same protocol, CI-sized.
func TestChaosSoak(t *testing.T) {
	minutes := 0
	if v := os.Getenv("ACTIVEGEO_CHAOS_MINUTES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("ACTIVEGEO_CHAOS_MINUTES=%q: %v", v, err)
		}
		minutes = n
	}
	interval := 250 * time.Millisecond
	deadline := time.Now() // quick mode: no deadline, just minRounds
	if minutes > 0 {
		interval = time.Minute
		deadline = time.Now().Add(time.Duration(minutes) * time.Minute)
	}
	const minRounds = 2

	cons, hosts := world(t)
	ctx := context.Background()
	base := atlasd.Config{Seed: 47, Opts: cbg.Options{Slowline: true}}
	shards := []string{"s0", "s1", "s2"}
	fleet := NewCluster(cons, base, shards, 47, 16)
	runner := &loadgen.ClusterRunner{
		Coordinator: fleet.Client(),
		Tool:        &measure.CLITool{Net: cons.Net()},
		Hosts:       hosts,
	}

	var acceptedKeys []string
	for round := 0; round < minRounds || time.Now().Before(deadline); round++ {
		cfg := loadgen.ClusterConfig{
			Clients:     testClients,
			Iterations:  2,
			SecondPhase: 6,
			Seed:        47,
			SeqBase:     int64(round) * 100,
		}

		// Chaos: partway through the round, cycle one shard. Even rounds
		// partition it abruptly and heal; odd rounds drain-and-restart it
		// (ledger replayed to the survivors, fresh server rejoins at the
		// fleet epoch).
		victim := shards[round%len(shards)]
		chaosDone := make(chan error, 1)
		go func() {
			time.Sleep(interval / 2)
			if round%2 == 0 {
				fleet.SetDown(victim, true)
				time.Sleep(interval / 4)
				fleet.SetDown(victim, false)
				chaosDone <- nil
				return
			}
			chaosDone <- fleet.Restart(ctx, victim)
		}()

		res, err := runner.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := <-chaosDone; err != nil {
			t.Fatalf("round %d: chaos cycle of %s: %v", round, victim, err)
		}

		// Fresh single-shard serial oracle for the same round config.
		oracleCluster := NewCluster(cons, base, []string{"oracle"}, 47, 16)
		oc := oracleCluster.Client()
		oc.NoHedge = true
		ocfg := cfg
		ocfg.Concurrency = 1
		oracle, err := (&loadgen.ClusterRunner{
			Coordinator: oc,
			Tool:        &measure.CLITool{Net: cons.Net()},
			Hosts:       hosts,
		}).Run(ctx, ocfg)
		if err != nil {
			t.Fatalf("round %d oracle: %v", round, err)
		}
		if !loadgen.TranscriptsIdentical(oracle, res) {
			for i := range oracle.PerClient {
				if oracle.PerClient[i].TranscriptSHA != res.PerClient[i].TranscriptSHA {
					t.Errorf("round %d: client %s transcript diverged under chaos",
						round, oracle.PerClient[i].Client)
				}
			}
			t.Fatalf("round %d: chaos transcripts diverged from serial oracle", round)
		}
		if res.AcceptedReports != oracle.AcceptedReports {
			t.Fatalf("round %d: accepted %d vs oracle %d", round, res.AcceptedReports, oracle.AcceptedReports)
		}

		// Exactly-once across the whole soak so far: every receipt from
		// every round is still ledgered somewhere, never twice per shard.
		for _, st := range res.PerClient {
			for _, seq := range st.AcceptedSeqs {
				acceptedKeys = append(acceptedKeys, fmt.Sprintf("%s|%d", st.Client, seq))
			}
		}
		assertMergedExactlyOnce(t, fleet, acceptedKeys)

		if round%3 == 2 {
			if _, err := fleet.Controller().AdvanceEpoch(ctx); err != nil {
				t.Fatalf("round %d: epoch advance: %v", round, err)
			}
		}
	}
}
