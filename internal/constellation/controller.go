package constellation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"activegeo/internal/atlasd"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

// ShardRef names one shard and the wire client that reaches it — the
// controller's whole view of a member. cmd/atlasctl builds these from
// -shards URLs; the in-process Cluster builds them over handler
// transports.
type ShardRef struct {
	Name   string
	Client *atlasd.Client
}

// ShardEpoch is one shard's barrier-relevant state.
type ShardEpoch struct {
	Name   string
	Epoch  int64
	Fenced bool
	Err    error
}

// Controller drives fleet-wide operations over the shards' existing
// wire surface: the two-phase AdvanceEpoch barrier and the
// drain-harvest-replay protocol that moves a leaving shard's ledger to
// its ring successors. It holds no state of its own beyond the member
// list — every decision reads the shards, so a restarted controller
// resumes cleanly.
type Controller struct {
	// Shards returns the current member list; a closure so the caller's
	// membership changes (drains, joins) are picked up per call.
	Shards func() []ShardRef
	// Telemetry, when non-nil, receives barrier and replay counters
	// under "controller.*".
	Telemetry *telemetry.Collector
}

func (ctl *Controller) count(name string, delta int64) {
	if ctl.Telemetry != nil {
		ctl.Telemetry.Add(name, delta)
	}
}

// Status polls every shard's epoch state in parallel. The result is
// sorted by shard name.
func (ctl *Controller) Status(ctx context.Context) []ShardEpoch {
	refs := ctl.Shards()
	out := make([]ShardEpoch, len(refs))
	var wg sync.WaitGroup
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref ShardRef) {
			defer wg.Done()
			out[i].Name = ref.Name
			info, err := ref.Client.EpochStatus(ctx)
			if err != nil {
				out[i].Err = err
				return
			}
			out[i].Epoch = info.Epoch
			out[i].Fenced = info.Fenced
		}(i, ref)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// errEpochSkew: the fleet disagrees on the current epoch, so there is
// no well-defined "next" to advance to. A shard that missed a commit
// should be EpochSync'd (or restarted) before the next barrier.
var errEpochSkew = errors.New("constellation: fleet epochs diverge")

// AdvanceEpoch runs the fleet-wide two-phase barrier (DESIGN.md §13):
//
//	phase 1  prepare(N+1) on every shard — each fences model serving
//	         and acks once no old-epoch model response is in flight;
//	phase 2  commit(N+1) on every shard — each flips behind its fence.
//
// If any prepare fails, every prepared shard gets abort(N+1) and the
// fleet stays at N: the barrier is all-or-nothing on the prepare side.
// A commit failure (a shard died inside the window) leaves that shard
// to be EpochSync'd when it returns; the survivors are already at N+1.
// Returns the committed epoch.
func (ctl *Controller) AdvanceEpoch(ctx context.Context) (int64, error) {
	refs := ctl.Shards()
	if len(refs) == 0 {
		return 0, errors.New("constellation: no shards to advance")
	}
	status := ctl.Status(ctx)
	cur := status[0].Epoch
	for _, st := range status {
		if st.Err != nil {
			return 0, fmt.Errorf("constellation: %s unreachable before barrier: %w", st.Name, st.Err)
		}
		if st.Epoch != cur {
			return 0, fmt.Errorf("%w: %s at %d, %s at %d", errEpochSkew, status[0].Name, cur, st.Name, st.Epoch)
		}
	}
	target := cur + 1

	// Phase 1: prepare everywhere, in parallel.
	prepErrs := make([]error, len(refs))
	var wg sync.WaitGroup
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref ShardRef) {
			defer wg.Done()
			prepErrs[i] = ref.Client.EpochPrepare(ctx, target)
		}(i, ref)
	}
	wg.Wait()
	for i, err := range prepErrs {
		if err == nil {
			continue
		}
		// All-or-nothing: release every fence and stay at cur.
		for j, ref := range refs {
			if prepErrs[j] == nil {
				if aerr := ref.Client.EpochAbort(ctx, target); aerr != nil {
					ctl.count("controller.epoch.abort_failed", 1)
				}
			}
		}
		ctl.count("controller.epoch.aborted", 1)
		return cur, fmt.Errorf("constellation: prepare(%d) failed on %s: %w", target, refs[i].Name, err)
	}

	// Phase 2: commit everywhere. After the last prepare ack no shard
	// is serving models at all, so the first commit starting the new
	// epoch cannot overlap a straggling old-epoch response.
	commitErrs := make([]error, len(refs))
	for i, ref := range refs {
		wg.Add(1)
		go func(i int, ref ShardRef) {
			defer wg.Done()
			commitErrs[i] = ref.Client.EpochCommit(ctx, target)
		}(i, ref)
	}
	wg.Wait()
	var failed []string
	for i, err := range commitErrs {
		if err != nil {
			failed = append(failed, refs[i].Name)
		}
	}
	if len(failed) > 0 {
		ctl.count("controller.epoch.partial_commit", 1)
		return target, fmt.Errorf("constellation: commit(%d) failed on %v; resync them before the next barrier", target, failed)
	}
	ctl.count("controller.epoch.advanced", 1)
	return target, nil
}

// ReplayLedger harvests every report ledgered on the drained shard and
// re-uploads each to the shards that now own its client's ring
// position, in ledger order. The (client, seq) idempotency key makes
// the replay itself idempotent: entries the successor already holds —
// because the client retried there during the drain, or because a
// previous replay attempt got partway — are acknowledged and counted
// as duplicates, never double-ledgered. Returns how many entries were
// replayed.
func (ctl *Controller) ReplayLedger(ctx context.Context, from ShardRef, route func(clientID string) []ShardRef, attempts int) (int, error) {
	reports, err := from.Client.Ledger(ctx)
	if err != nil {
		return 0, fmt.Errorf("constellation: harvesting %s: %w", from.Name, err)
	}
	if attempts < 1 {
		attempts = DefaultAttempts
	}
	replayed := 0
	for _, rep := range reports {
		targets := route(rep.Client)
		if len(targets) == 0 {
			return replayed, fmt.Errorf("constellation: no successor for client %s while replaying %s", rep.Client, from.Name)
		}
		fns := make([]func() error, len(targets))
		for i, t := range targets {
			sc := t.Client
			r := rep
			fns[i] = func() error { return sc.Upload(ctx, r) }
		}
		if err := atlasd.RetryChain(ctx, attempts, fns...); err != nil {
			return replayed, fmt.Errorf("constellation: replaying %s|%d from %s: %w", rep.Client, rep.Seq, from.Name, err)
		}
		replayed++
		ctl.count("controller.replay.reports", 1)
	}
	return replayed, nil
}

// DrainShard gracefully removes one shard: drain its in-flight work
// over the wire, then replay its ledger onto the successors the route
// function names. The caller removes the shard from its ring before
// calling, so new traffic is already routing around it and client
// retries land where the replay does.
func (ctl *Controller) DrainShard(ctx context.Context, from ShardRef, route func(clientID string) []ShardRef) (int, error) {
	if _, err := from.Client.DrainServer(ctx); err != nil {
		return 0, fmt.Errorf("constellation: draining %s: %w", from.Name, err)
	}
	n, err := ctl.ReplayLedger(ctx, from, route, 0)
	if err != nil {
		return n, err
	}
	ctl.count("controller.drains", 1)
	return n, nil
}

// SyncEpoch brings one shard (typically freshly restarted at epoch 0)
// to the given epoch.
func (ctl *Controller) SyncEpoch(ctx context.Context, ref ShardRef, epoch int64) error {
	return ref.Client.EpochSync(ctx, epoch)
}

// keyFor routes a client ID the same way the sharding client does.
func keyFor(clientID string) netsim.HostID { return netsim.HostID(clientID) }
