package constellation

import (
	"fmt"
	"testing"

	"activegeo/internal/netsim"
)

func testKeys(n int) []netsim.HostID {
	keys := make([]netsim.HostID, n)
	for i := range keys {
		keys[i] = netsim.HostID(fmt.Sprintf("key-%04d", i))
	}
	return keys
}

// TestRingPlacementOrderIndependent: two rings with the same seed and
// membership agree on every key regardless of construction order —
// clients, shards and the controller can each hold their own ring.
func TestRingPlacementOrderIndependent(t *testing.T) {
	a := NewRing(7, 32, "s0", "s1", "s2", "s3")
	b := NewRing(7, 32, "s3", "s1")
	b.Add("s0")
	b.Add("s2")
	b.Add("s2") // idempotent
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingSeedChangesPlacement: the seed is a real parameter — a
// different seed produces a different partition.
func TestRingSeedChangesPlacement(t *testing.T) {
	a := NewRing(1, 32, "s0", "s1", "s2")
	b := NewRing(2, 32, "s0", "s1", "s2")
	moved := 0
	keys := testKeys(500)
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("seed had no effect on placement")
	}
}

// TestRingRebalanceBounds is the consistent-hash contract: removing a
// shard moves ONLY its own keys (each to a surviving shard), and adding
// it back restores the exact original placement. No key whose owner
// survives ever moves.
func TestRingRebalanceBounds(t *testing.T) {
	keys := testKeys(2000)
	r := NewRing(47, 64, "s0", "s1", "s2", "s3")
	before := make(map[netsim.HostID]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	r.Remove("s2")
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if before[k] == "s2" {
			if now == "s2" || now == "" {
				t.Fatalf("key %s still owned by removed shard", k)
			}
			moved++
		} else if now != before[k] {
			t.Fatalf("key %s moved from surviving shard %s to %s", k, before[k], now)
		}
	}
	// ~K/N of the keys belonged to s2; allow generous slack around 1/4.
	if lo, hi := len(keys)/10, len(keys)/2; moved < lo || moved > hi {
		t.Errorf("removal moved %d of %d keys; want roughly K/N (between %d and %d)", moved, len(keys), lo, hi)
	}

	r.Add("s2")
	for _, k := range keys {
		if r.Owner(k) != before[k] {
			t.Fatalf("key %s not restored after re-add: %s vs %s", k, r.Owner(k), before[k])
		}
	}
}

// TestRingSuccessors: the failover list starts at the owner, covers
// every member exactly once, and drops a removed member while
// preserving the relative order of the rest.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(47, 32, "s0", "s1", "s2", "s3")
	for _, k := range testKeys(200) {
		order := r.Successors(k)
		if len(order) != 4 {
			t.Fatalf("key %s: %d successors, want 4", k, len(order))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("key %s: successors[0]=%s, owner=%s", k, order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range order {
			if seen[s] {
				t.Fatalf("key %s: duplicate successor %s", k, s)
			}
			seen[s] = true
		}
	}

	k := netsim.HostID("key-0001")
	full := r.Successors(k)
	r.Remove(full[1])
	after := r.Successors(k)
	if len(after) != 3 {
		t.Fatalf("after removal: %d successors, want 3", len(after))
	}
	want := []string{full[0], full[2], full[3]}
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("successor order changed after removal: %v vs %v (from %v)", after, want, full)
		}
	}
}

// TestRingPartitionSpread: with enough virtual nodes every shard owns a
// non-trivial share of a large key set.
func TestRingPartitionSpread(t *testing.T) {
	keys := testKeys(4000)
	r := NewRing(47, 64, "s0", "s1", "s2", "s3")
	part := r.Partition(keys)
	for _, s := range r.Shards() {
		n := part[s]
		if n < len(keys)/16 {
			t.Errorf("shard %s owns only %d of %d keys", s, n, len(keys))
		}
	}
}

// TestRingEmpty: an empty ring routes nowhere and says so.
func TestRingEmpty(t *testing.T) {
	r := NewRing(47, 8)
	if o := r.Owner("k"); o != "" {
		t.Errorf("empty ring owner = %q", o)
	}
	if s := r.Successors("k"); s != nil {
		t.Errorf("empty ring successors = %v", s)
	}
}
