package constellation

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"activegeo/internal/atlasd"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

// DefaultAttempts bounds shed-retries per shard before the client
// either fails over or gives up.
const DefaultAttempts = 50

// Hedging defaults: before any phase-2 latency has been observed the
// hedge fires after InitialHedgeDelay; afterwards it fires at the p99
// of the observed window, clamped to [MinHedgeDelay, MaxHedgeDelay].
const (
	InitialHedgeDelay = 5 * time.Millisecond
	MinHedgeDelay     = time.Millisecond
	MaxHedgeDelay     = 100 * time.Millisecond
)

// hedgeWindow is how many recent phase-2 latencies the p99 is computed
// over. Small enough to track a drifting service, large enough that
// the p99 is not just the max of a handful of samples.
const hedgeWindow = 64

// hedgeTracker derives the hedge delay from observed phase-2 latency:
// a fixed ring buffer of recent samples whose p99 is the point where a
// straggling primary is slower than 99% of history — the classic
// tail-at-scale trigger for sending the backup request.
type hedgeTracker struct {
	mu    sync.Mutex
	latMs [hedgeWindow]float64
	n     int // filled entries
	idx   int // next write position
}

func (h *hedgeTracker) observe(ms float64) {
	h.mu.Lock()
	h.latMs[h.idx] = ms
	h.idx = (h.idx + 1) % hedgeWindow
	if h.n < hedgeWindow {
		h.n++
	}
	h.mu.Unlock()
}

// delay returns the current hedge trigger.
func (h *hedgeTracker) delay() time.Duration {
	h.mu.Lock()
	n := h.n
	window := make([]float64, n)
	copy(window, h.latMs[:n])
	h.mu.Unlock()
	if n < 8 {
		return InitialHedgeDelay
	}
	sort.Float64s(window)
	d := time.Duration(mathx.Quantile(window, 0.99) * float64(time.Millisecond))
	if d < MinHedgeDelay {
		return MinHedgeDelay
	}
	if d > MaxHedgeDelay {
		return MaxHedgeDelay
	}
	return d
}

// Client is the sharding-aware coordination client: it routes every
// call by consistent-hash position (models by landmark ID — the
// partition; uploads by client ID — ledger locality; landmark draws by
// draw key — load spreading), fails over to the next ring successor on
// 503 or transport failure, and hedges phase-2 queries with a backup
// request to the successor after a p99-derived delay, first response
// wins. It implements atlasd.Coordinator, so RemoteTwoPhase and the
// load generator drive a whole constellation exactly as they drive one
// server.
type Client struct {
	// Ring is the shared routing ring; the cluster mutates it on drains
	// and joins and every reader picks the change up immediately.
	Ring *Ring
	// Resolve maps a shard name to its wire client. Returning nil means
	// the shard has left the cluster; the call moves to the next
	// successor.
	Resolve func(shard string) *atlasd.Client
	// Telemetry, when non-nil, receives routing, failover and hedge
	// counters under "constellation.*".
	Telemetry *telemetry.Collector
	// Attempts bounds shed-retries per shard; 0 means DefaultAttempts.
	Attempts int
	// NoHedge disables hedged phase-2 queries (the serial oracle runs
	// with hedging off so wall-clock noise cannot even in principle
	// change its issue order; with it on the answers are identical —
	// that is the determinism contract — but the oracle should not
	// depend on it).
	NoHedge bool

	hedge hedgeTracker
}

var _ atlasd.Coordinator = (*Client)(nil)

func (c *Client) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	return DefaultAttempts
}

func (c *Client) count(name string, delta int64) {
	if c.Telemetry != nil {
		c.Telemetry.Add(name, delta)
	}
}

// errNoShards is returned when the ring is empty or every member has
// already left by the time the call resolves its client.
var errNoShards = errors.New("constellation: no shard available")

// call runs one logical operation against the key's failover chain:
// the ring owner first, then each successor. Within a shard, 429s
// retry with backoff (atlasd.Retry); a 503 or transport failure moves
// down the chain; the last shard keeps terminal semantics.
func (c *Client) call(ctx context.Context, key netsim.HostID, op string, fn func(sc *atlasd.Client) error) error {
	order := c.Ring.Successors(key)
	if len(order) == 0 {
		return errNoShards
	}
	var err error
	tried := 0
	for _, shard := range order {
		sc := c.Resolve(shard)
		if sc == nil {
			continue // left the cluster between routing and resolving
		}
		if tried > 0 {
			c.count("constellation.failover", 1)
			c.count("constellation.failover."+op, 1)
		}
		tried++
		c.count("constellation.route."+shard, 1)
		err = atlasd.Retry(ctx, c.attempts(), func() error { return fn(sc) })
		if err == nil || !atlasd.Failover(err) {
			return err
		}
	}
	if tried == 0 {
		return errNoShards
	}
	return err
}

// Phase1Landmarks routes by the draw key: the response is a pure
// function of (seed, request), so any shard serves it identically and
// the ring position just spreads load.
func (c *Client) Phase1Landmarks(ctx context.Context, draw string) ([]atlasd.LandmarkInfo, error) {
	var out []atlasd.LandmarkInfo
	err := c.call(ctx, netsim.HostID("p1|"+draw), "phase1", func(sc *atlasd.Client) error {
		var err error
		out, err = sc.Phase1Landmarks(ctx, draw)
		return err
	})
	return out, err
}

// Phase2Landmarks is the hedged call: the primary goes to the ring
// owner of the draw key; if it has not answered within the p99-derived
// delay, a backup goes to the next successor and the first response
// wins, cancelling the loser. Identical responses from either shard
// keep the transcript independent of which one wins.
func (c *Client) Phase2Landmarks(ctx context.Context, continent string, n int, draw string) ([]atlasd.LandmarkInfo, error) {
	key := netsim.HostID("p2|" + continent + "|" + draw)
	plain := func() ([]atlasd.LandmarkInfo, error) {
		var out []atlasd.LandmarkInfo
		err := c.call(ctx, key, "phase2", func(sc *atlasd.Client) error {
			var err error
			out, err = sc.Phase2Landmarks(ctx, continent, n, draw)
			return err
		})
		return out, err
	}
	order := c.Ring.Successors(key)
	if c.NoHedge || len(order) < 2 {
		return plain()
	}
	primary, backup := c.Resolve(order[0]), c.Resolve(order[1])
	if primary == nil || backup == nil {
		return plain()
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type leg struct {
		lms    []atlasd.LandmarkInfo
		err    error
		hedged bool
	}
	// Buffered so the losing leg's send never blocks after we return.
	ch := make(chan leg, 2)
	launch := func(sc *atlasd.Client, hedged bool) {
		go func(sc *atlasd.Client, hedged bool) {
			lms, err := sc.Phase2Landmarks(hctx, continent, n, draw)
			ch <- leg{lms: lms, err: err, hedged: hedged}
		}(sc, hedged)
	}
	start := time.Now()
	c.count("constellation.route."+order[0], 1)
	launch(primary, false)
	timer := time.NewTimer(c.hedge.delay())
	defer timer.Stop()
	pending := 1
	for {
		select {
		case <-timer.C:
			if pending == 1 {
				c.count("constellation.hedge.launched", 1)
				c.count("constellation.route."+order[1], 1)
				launch(backup, true)
				pending = 2
			}
		case l := <-ch:
			if l.err == nil {
				cancel() // first response wins; the loser is cancelled
				if l.hedged {
					c.count("constellation.hedge.won", 1)
				}
				c.hedge.observe(float64(time.Since(start).Microseconds()) / 1000)
				return l.lms, nil
			}
			pending--
			if pending == 0 {
				// Both legs failed (drain, shed, transport): fall back to
				// the full retry-with-failover chain, which owns backoff.
				return plain()
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Model routes by landmark ID — the consistent-hash partition that
// splits the model caches across the fleet: each shard fits only the
// ~K/N landmarks it owns, and a fit is computed once cluster-wide
// instead of once per shard.
func (c *Client) Model(ctx context.Context, landmarkID string) (*atlasd.ModelInfo, error) {
	var out *atlasd.ModelInfo
	err := c.call(ctx, netsim.HostID(landmarkID), "model", func(sc *atlasd.Client) error {
		var err error
		out, err = sc.Model(ctx, landmarkID)
		return err
	})
	return out, err
}

// Upload routes by client ID, so one client's (client, seq) ledger
// entries live on one shard and retried uploads dedupe there; after a
// drain the controller replays that ledger onto the ring successor the
// retries now route to.
func (c *Client) Upload(ctx context.Context, rep atlasd.Report) error {
	return c.call(ctx, netsim.HostID(rep.Client), "report", func(sc *atlasd.Client) error {
		return sc.Upload(ctx, rep)
	})
}

// Metrics fetches the metrics snapshot of every live shard, keyed by
// shard name.
func (c *Client) Metrics(ctx context.Context) (map[string]*atlasd.Metrics, error) {
	out := make(map[string]*atlasd.Metrics)
	for _, shard := range c.Ring.Shards() {
		sc := c.Resolve(shard)
		if sc == nil {
			continue
		}
		m, err := sc.Metrics(ctx)
		if err != nil {
			return nil, err
		}
		out[shard] = m
	}
	return out, nil
}
