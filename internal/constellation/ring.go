// Package constellation shards the atlasd coordination service into an
// epoch-coordinated multi-process fleet (ROADMAP item 1, DESIGN.md
// §13): landmarks and model caches partition across N shards by a
// consistent-hash ring, a small controller drives a two-phase
// fleet-wide epoch barrier over the existing wire surface, and a
// sharding-aware client routes by ring position with failover to the
// next ring successor and hedged phase-2 queries.
//
// The spine of the package is the determinism contract: the merged
// logical transcript of thousands of clients driven across the
// constellation — through shard drains, restarts and epoch advances —
// must be byte-identical to a single-shard serial oracle. That holds
// because every response is a pure function of (world seed, request):
// landmark draws key netsim.HashID over the request, model fits are
// deterministic functions of the calibration mesh, and ring placement
// is a pure function of (ring seed, landmark ID). Which shard answers
// is a routing detail; what it answers is not.
package constellation

import (
	"fmt"
	"sort"
	"sync"

	"activegeo/internal/netsim"
)

// DefaultVirtualNodes is the per-shard virtual-node count when a Ring
// is built with vnodes <= 0: enough points that removing one shard
// spreads its keys across all survivors in ~1/N slices, few enough
// that ring rebuilds stay trivially cheap.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a shard.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring with virtual nodes. Placement is a
// pure function of (seed, shard name, vnode index) through
// netsim.HashID, so two rings built from the same seed and membership
// agree on every key regardless of the order shards were added — the
// property that lets clients, shards and the controller each hold
// their own Ring and still route identically.
//
// All methods are safe for concurrent use; Add and Remove rebuild the
// point slice under the write lock.
type Ring struct {
	mu     sync.RWMutex
	seed   int64
	vnodes int
	shards map[string]struct{}
	points []ringPoint
}

// NewRing builds a ring over the given shards. vnodes <= 0 means
// DefaultVirtualNodes.
func NewRing(seed int64, vnodes int, shards ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{seed: seed, vnodes: vnodes, shards: make(map[string]struct{})}
	for _, s := range shards {
		r.shards[s] = struct{}{}
	}
	r.rebuild()
	return r
}

// pointHash places one virtual node: a pure function of the ring seed,
// the shard name and the vnode index, shared verbatim by every ring
// holder.
func pointHash(seed int64, shard string, vnode int) uint64 {
	return netsim.HashID(netsim.HostID(fmt.Sprintf("ring|%d|%s|%d", seed, shard, vnode)))
}

// rebuild regenerates the sorted point slice from the member set.
// Callers hold the write lock (or have exclusive access).
func (r *Ring) rebuild() {
	names := make([]string, 0, len(r.shards))
	for s := range r.shards {
		names = append(names, s)
	}
	sort.Strings(names)
	r.points = r.points[:0]
	for _, s := range names {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(r.seed, s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break by name so placement stays total-ordered.
		return r.points[i].shard < r.points[j].shard
	})
}

// Add inserts a shard (idempotent). Only keys whose owning arc the new
// shard's virtual nodes split move — the ~K/N rebalance guarantee the
// ring property tests pin down.
func (r *Ring) Add(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; ok {
		return
	}
	r.shards[shard] = struct{}{}
	r.rebuild()
}

// Remove deletes a shard (idempotent); its keys redistribute to the
// ring successors of each of its virtual nodes.
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	r.rebuild()
}

// Shards returns the member names in sorted order.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.shards))
	for s := range r.shards {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Seed returns the placement seed the ring was built with.
func (r *Ring) Seed() int64 { return r.seed }

// VirtualNodes returns the per-shard virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// find returns the index of the first point at or clockwise of the key
// hash, wrapping at the top of the circle. Callers hold a lock and
// have checked the ring is non-empty.
func (r *Ring) find(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the shard owning the key, or "" on an empty ring.
func (r *Ring) Owner(key netsim.HostID) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.find(netsim.HashID(key))].shard
}

// Successors returns every member in ring order starting from the
// key's owner: the failover preference list. Successors(k)[0] is
// Owner(k); a request that gets 503 from order[i] moves to order[i+1].
func (r *Ring) Successors(key netsim.HostID) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	start := r.find(netsim.HashID(key))
	order := make([]string, 0, len(r.shards))
	seen := make(map[string]struct{}, len(r.shards))
	for i := 0; i < len(r.points) && len(order) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		order = append(order, p.shard)
	}
	return order
}

// Partition counts how many of the given keys each shard owns —
// the observability hook behind the ~K/N rebalance tests and the
// per-shard ownership rows in BENCH_constellation.json.
func (r *Ring) Partition(keys []netsim.HostID) map[string]int {
	out := make(map[string]int, r.Size())
	for _, k := range keys {
		out[r.Owner(k)]++
	}
	return out
}
