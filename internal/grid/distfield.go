package grid

import (
	"sync"

	"activegeo/internal/geo"
)

// FieldKey identifies one landmark's distance field: the landmark's host
// ID plus its position. The position is part of the key so a stale entry
// can never be served for a host that moved (foreign constellations
// reuse IDs across experiments), and so ID-less callers can key on
// position alone.
type FieldKey struct {
	ID       string
	Lat, Lon float64
}

// DistanceField is a concurrency-safe, bounded cache of landmark→cell
// distance slices over one grid. The first request for a landmark
// materializes the distance from its position to every cell center
// (one dot product + acos per cell over the grid's precomputed unit
// vectors); subsequent requests — from any goroutine, any algorithm —
// return the same shared slice.
//
// This is the amortization at the heart of the localization fast path:
// the landmark fleet is small and identical across all targets and all
// five algorithms, so per-(target, landmark) great-circle math collapses
// to a slice lookup. Entries are evicted least-recently-used beyond the
// capacity, bounding memory at capacity × NumCells × 4 bytes.
//
// Returned slices are shared and must be treated as immutable.
type DistanceField struct {
	g   *Grid
	cap int

	mu      sync.Mutex
	entries map[FieldKey]*fieldEntry
	clock   uint64

	hits, misses, evictions uint64
}

type fieldEntry struct {
	once    sync.Once
	dist    []float32
	lastUse uint64 // guarded by DistanceField.mu
}

// NewDistanceField builds a cache over g holding at most maxEntries
// landmark fields (minimum 1).
func NewDistanceField(g *Grid, maxEntries int) *DistanceField {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &DistanceField{
		g:       g,
		cap:     maxEntries,
		entries: make(map[FieldKey]*fieldEntry, maxEntries),
	}
}

// Grid returns the grid the field is built over.
func (f *DistanceField) Grid() *Grid { return f.g }

// Distances returns the distance-to-every-cell slice for the landmark,
// computing and caching it on first use. The fill runs outside the cache
// lock, so concurrent misses on different landmarks compute in parallel
// while concurrent requests for the same landmark share a single fill.
func (f *DistanceField) Distances(key FieldKey) []float32 {
	f.mu.Lock()
	e, ok := f.entries[key]
	if ok {
		f.hits++
	} else {
		f.misses++
		e = &fieldEntry{}
		f.entries[key] = e
		if len(f.entries) > f.cap {
			f.evictLocked(e)
		}
	}
	f.clock++
	e.lastUse = f.clock
	f.mu.Unlock()

	e.once.Do(func() {
		e.dist = f.g.DistancesFrom(geo.Point{Lat: key.Lat, Lon: key.Lon})
	})
	return e.dist
}

// evictLocked drops the least-recently-used entry other than keep. An
// evicted entry may still be mid-fill in another goroutine; that
// goroutine keeps its own reference and simply loses the caching.
func (f *DistanceField) evictLocked(keep *fieldEntry) {
	var victim FieldKey
	var victimEntry *fieldEntry
	for k, e := range f.entries {
		if e == keep {
			continue
		}
		if victimEntry == nil || e.lastUse < victimEntry.lastUse {
			victim, victimEntry = k, e
		}
	}
	if victimEntry != nil {
		delete(f.entries, victim)
		f.evictions++
	}
}

// Invalidate evicts every cached field whose key carries the given
// host ID (at any position) and returns how many were dropped. The
// position-in-key rule already guarantees a moved host is never served
// a stale slice; Invalidate additionally reclaims the dead entries so
// churned landmarks don't squat in the LRU until capacity pressure.
func (f *DistanceField) Invalidate(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for k := range f.entries {
		if k.ID == id {
			delete(f.entries, k)
			n++
		}
	}
	f.evictions += uint64(n)
	return n
}

// FieldStats reports cache effectiveness counters.
type FieldStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns a snapshot of the cache counters.
func (f *DistanceField) Stats() FieldStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FieldStats{
		Entries:   len(f.entries),
		Hits:      f.hits,
		Misses:    f.misses,
		Evictions: f.evictions,
	}
}
