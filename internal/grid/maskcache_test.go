package grid

// Tests for the per-landmark quantized mask cache: the bracket
// invariant (inner mask ⊆ exact region ⊆ outer mask) across grid
// resolutions and degenerate radii, byte-identical equivalence of the
// word-wise fill/intersect/ring ops against the per-cell scans they
// replace, and the LRU / invalidation / shared-build behaviour of the
// cache itself.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"activegeo/internal/geo"
)

// maskTestRadii returns the stress radii for one trial: the
// quantization boundaries themselves (exactly q·step, one ULP either
// side), degenerate values (negative, zero, -Inf via callers),
// antipodal and beyond-antipodal distances, plus random draws.
func maskTestRadii(cm *CapMasks, rng *rand.Rand) []float64 {
	maxSphere := math.Pi * geo.EarthRadiusKm
	radii := []float64{
		-5, 0, 1e-9,
		cm.StepKm(), math.Nextafter(cm.StepKm(), 0), math.Nextafter(cm.StepKm(), math.Inf(1)),
		3 * cm.StepKm(), 3*cm.StepKm() - 1e-9,
		maxSphere, maxSphere + 100, geo.HalfEquatorKm,
	}
	for k := 0; k < 8; k++ {
		radii = append(radii, rng.Float64()*geo.HalfEquatorKm)
	}
	return radii
}

// TestMaskBracketInvariant: for every radius, the inner bracketing mask
// must be a subset of the exact region and the exact region a subset of
// the outer bracketing mask — across resolutions, with pole-centered
// and equatorial landmarks and degenerate radii.
func TestMaskBracketInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, res := range []float64{5.0, 2.5, 1.5} {
		g := New(res)
		centers := []geo.Point{
			{Lat: 89.9, Lon: 12},  // pole-crossing caps
			{Lat: -89.9, Lon: -7}, // south pole
			{Lat: 0, Lon: 179.9},  // antimeridian
			randomCap(rng).Center,
			randomCap(rng).Center,
		}
		for _, p := range centers {
			dist := g.DistancesFrom(p)
			cm := newCapMasks(g, dist, DefaultMaskStepKm, nil)
			for _, rKm := range maskTestRadii(cm, rng) {
				lo, hi := cm.bracket(rKm)
				inner, outer := cm.level(lo), cm.level(hi)
				for i, d := range dist {
					w, bit := i/64, uint64(1)<<uint(i%64)
					exact := float64(d) <= rKm
					in := inner != nil && inner[w]&bit != 0
					out := outer[w]&bit != 0
					if in && !exact {
						t.Fatalf("res %v radius %v cell %d (dist %v): inner mask ⊄ exact region (lo=%d)", res, rKm, i, d, lo)
					}
					if exact && !out {
						t.Fatalf("res %v radius %v cell %d (dist %v): exact region ⊄ outer mask (hi=%d)", res, rKm, i, d, hi)
					}
				}
			}
		}
	}
}

// TestMaskFillWithinKmMatchesAddWithinKm: the word-wise cap fill plus
// the caller's center-cell rule must be byte-identical to AddWithinKm
// over the same distance slice.
func TestMaskFillWithinKmMatchesAddWithinKm(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(72))
	for k := 0; k < 40; k++ {
		c := randomCap(rng)
		dist := g.DistancesFrom(c.Center)
		cm := newCapMasks(g, dist, DefaultMaskStepKm, nil)
		center := g.CellAt(c.Center)
		for _, rKm := range maskTestRadii(cm, rng) {
			a, b := g.NewRegion(), g.NewRegion()
			if rKm > 0 {
				cm.FillWithinKm(a, rKm)
			}
			a.Add(center)
			b.AddWithinKm(dist, rKm, center)
			if !a.Equal(b) {
				t.Fatalf("cap %v radius %v: mask fill differs from AddWithinKm (%d vs %d cells)",
					c.Center, rKm, a.Count(), b.Count())
			}
		}
	}
}

// TestMaskIntersectWithinKmMatches: pruning a ragged region through the
// bracketing masks must be byte-identical to the per-bit keep-mask
// kernel (and therefore to the bit-by-bit reference it is tested
// against elsewhere).
func TestMaskIntersectWithinKmMatches(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(73))
	for k := 0; k < 40; k++ {
		r := randomRegion(g, rng)
		lm := randomCap(rng).Center
		dist := g.DistancesFrom(lm)
		cm := newCapMasks(g, dist, DefaultMaskStepKm, nil)
		for _, rKm := range maskTestRadii(cm, rng) {
			a, b := r.Clone(), r.Clone()
			cm.IntersectWithinKm(a, rKm)
			b.IntersectWithinKm(dist, rKm)
			if !a.Equal(b) {
				t.Fatalf("radius %v: mask intersect differs from kernel (%d vs %d cells)", rKm, a.Count(), b.Count())
			}
		}
	}
}

// TestMaskFillRingKmMatches: the two-bracket ring fill must reproduce
// the exact two-sided predicate (min < dist ≤ max) bit for bit,
// including an unbounded inner edge (−Inf), inverted bounds, and rings
// past the antipode.
func TestMaskFillRingKmMatches(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(74))
	maxSphere := math.Pi * geo.EarthRadiusKm
	for k := 0; k < 40; k++ {
		lm := randomCap(rng).Center
		dist := g.DistancesFrom(lm)
		cm := newCapMasks(g, dist, DefaultMaskStepKm, nil)
		bounds := [][2]float64{
			{math.Inf(-1), rng.Float64() * geo.HalfEquatorKm},
			{rng.Float64() * 2000, rng.Float64() * geo.HalfEquatorKm},
			{cm.StepKm(), 2 * cm.StepKm()},
			{math.Nextafter(cm.StepKm(), 0), cm.StepKm()},
			{5000, 4000}, // inverted: empty ring
			{maxSphere, maxSphere + 500},
			{math.Inf(-1), maxSphere + 500},
			{0, 1e-9},
		}
		for _, mm := range bounds {
			minEx, maxKm := mm[0], mm[1]
			a := g.NewRegion()
			cm.FillRingKm(a, minEx, maxKm)
			b := g.NewRegion()
			for i, d := range dist {
				dd := float64(d)
				if dd <= maxKm && dd > minEx {
					b.Add(i)
				}
			}
			if !a.Equal(b) {
				t.Fatalf("ring (%v, %v]: mask fill differs from scan (%d vs %d cells)", minEx, maxKm, a.Count(), b.Count())
			}
		}
	}
}

// TestMaskCacheLRUAndStats exercises the bounded cache: hits, misses,
// LRU eviction beyond capacity, and ID-wide invalidation across
// positions (the moved-host key shape).
func TestMaskCacheLRUAndStats(t *testing.T) {
	g := New(5)
	f := NewDistanceField(g, 8)
	c := NewMaskCache(f, 2, DefaultMaskStepKm)

	kA := FieldKey{ID: "a", Lat: 10, Lon: 20}
	kB := FieldKey{ID: "b", Lat: -30, Lon: 40}
	kC := FieldKey{ID: "c", Lat: 50, Lon: -60}

	mA := c.Masks(kA)
	if got := c.Masks(kA); got != mA {
		t.Fatalf("second request for same key returned a different mask family")
	}
	c.Masks(kB)
	c.Masks(kC) // evicts kA (LRU)
	s := c.Stats()
	if s.Entries != 2 || s.Misses != 3 || s.Hits != 1 || s.Evictions != 1 {
		t.Fatalf("stats after LRU churn = %+v, want entries 2, misses 3, hits 1, evictions 1", s)
	}
	if s.Levels <= 0 || s.BytesPerMask <= 0 {
		t.Fatalf("stats missing geometry: %+v", s)
	}

	// Same ID at a new position is a distinct key (moved host): the old
	// entry can never be served, and Invalidate sweeps both positions.
	kB2 := FieldKey{ID: "b", Lat: -31, Lon: 41}
	c.Masks(kB2)
	if n := c.Invalidate("b"); n == 0 {
		t.Fatalf("Invalidate(b) evicted nothing")
	}
	for _, e := range []FieldKey{kB, kB2} {
		c.mu.Lock()
		_, still := c.entries[e]
		c.mu.Unlock()
		if still {
			t.Fatalf("entry %+v survived Invalidate", e)
		}
	}
	if n := c.Invalidate("nope"); n != 0 {
		t.Fatalf("Invalidate(nope) = %d, want 0", n)
	}
}

// TestMaskCacheSharedBuild: concurrent requests for one landmark must
// share a single build and return the same family.
func TestMaskCacheSharedBuild(t *testing.T) {
	g := New(5)
	f := NewDistanceField(g, 4)
	c := NewMaskCache(f, 4, DefaultMaskStepKm)
	key := FieldKey{ID: "x", Lat: 1, Lon: 2}

	const n = 16
	got := make([]*CapMasks, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.Masks(key)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different mask family", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single shared build)", s.Misses)
	}
}

// TestMaskRefinedCounter: ops through the cache must account the
// annulus cells they refined exactly.
func TestMaskRefinedCounter(t *testing.T) {
	g := New(5)
	f := NewDistanceField(g, 4)
	c := NewMaskCache(f, 4, DefaultMaskStepKm)
	cm := c.Masks(FieldKey{ID: "x", Lat: 10, Lon: 10})
	r := g.NewRegion()
	cm.FillWithinKm(r, 3000)
	s := c.Stats()
	if s.RefinedCells == 0 {
		t.Fatalf("refined-cell counter did not advance")
	}
	if total := uint64(g.NumCells()); s.RefinedCells >= total {
		t.Fatalf("refined %d of %d cells — annulus refinement degenerated to a full scan", s.RefinedCells, total)
	}
}
