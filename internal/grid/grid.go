// Package grid discretizes the Earth's surface into an (approximately)
// equal-area grid of cells and represents geolocation prediction regions
// as bitsets over those cells.
//
// The grid is built from latitude bands of fixed angular height; each band
// is divided into a number of columns proportional to cos(latitude), so
// every cell covers roughly the same surface area. All multilateration in
// this library — disks (CBG), rings (Octant), posterior mass (Spotter) —
// reduces to selecting subsets of these cells.
package grid

import (
	"fmt"
	"math"
	"math/bits"

	"activegeo/internal/geo"
)

// kmPerDeg is the meridian arc length of one degree of latitude: the
// conversion factor between a north–south distance and the latitude
// span it covers.
const kmPerDeg = 111.195

// Grid is an immutable equal-area discretization of the sphere. Build one
// with New and share it; Regions are only comparable within one Grid.
//
// Alongside the cell centers the grid precomputes the geometry kernel:
// a unit vector per cell center and a cell→band table. Distance tests
// against a cell then cost one dot product (cap membership is a single
// comparison against a precomputed cos(radius)), and band lookups —
// which sit inside CellArea, and therefore inside AreaKm2, Centroid and
// Spotter's mass weighting — are O(1) instead of a binary search.
type Grid struct {
	resDeg     float64   // band height in degrees
	bands      int       // number of latitude bands
	cols       []int     // columns per band
	bandOffset []int     // first cell index of each band
	total      int       // total number of cells
	cellArea   []float64 // area of one cell in each band, km²
	centers    []geo.Point
	units      []geo.Vec3 // unit vector of each cell center
	bandIdx    []int32    // band of each cell
}

// New builds a grid with latitude bands resDeg degrees tall. A resolution
// of 1.0° yields ≈41k cells (cells ≈111 km tall); 0.5° yields ≈165k.
func New(resDeg float64) *Grid {
	if resDeg <= 0 || resDeg > 30 {
		panic(fmt.Sprintf("grid: invalid resolution %v", resDeg))
	}
	bands := int(math.Ceil(180 / resDeg))
	g := &Grid{
		resDeg:     resDeg,
		bands:      bands,
		cols:       make([]int, bands),
		bandOffset: make([]int, bands),
		cellArea:   make([]float64, bands),
	}
	offset := 0
	for b := 0; b < bands; b++ {
		latLo := -90 + float64(b)*resDeg
		latHi := math.Min(latLo+resDeg, 90)
		latMid := (latLo + latHi) / 2
		n := int(math.Max(1, math.Round(360*math.Cos(latMid*math.Pi/180)/resDeg)))
		g.cols[b] = n
		g.bandOffset[b] = offset
		offset += n
		// Band area: 2πR² |sin(hi) - sin(lo)|, divided among n cells.
		bandArea := 2 * math.Pi * geo.EarthRadiusKm * geo.EarthRadiusKm *
			math.Abs(math.Sin(latHi*math.Pi/180)-math.Sin(latLo*math.Pi/180))
		g.cellArea[b] = bandArea / float64(n)
	}
	g.total = offset
	g.centers = make([]geo.Point, g.total)
	g.units = make([]geo.Vec3, g.total)
	g.bandIdx = make([]int32, g.total)
	for b := 0; b < bands; b++ {
		latLo := -90 + float64(b)*resDeg
		latHi := math.Min(latLo+resDeg, 90)
		latMid := (latLo + latHi) / 2
		n := g.cols[b]
		for c := 0; c < n; c++ {
			i := g.bandOffset[b] + c
			lon := -180 + (float64(c)+0.5)*360/float64(n)
			g.centers[i] = geo.Point{Lat: latMid, Lon: lon}
			g.units[i] = geo.UnitVec(g.centers[i])
			g.bandIdx[i] = int32(b)
		}
	}
	return g
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.total }

// Resolution returns the band height in degrees.
func (g *Grid) Resolution() float64 { return g.resDeg }

// Center returns the center point of cell i.
func (g *Grid) Center(i int) geo.Point { return g.centers[i] }

// UnitVec returns the precomputed unit vector of cell i's center.
func (g *Grid) UnitVec(i int) geo.Vec3 { return g.units[i] }

// DistancesFrom materializes the great-circle distance from p to every
// cell center, in cell order, as float32 kilometers. This is the raw
// material of the DistanceField cache: one pass of dot products + acos
// over the precomputed unit vectors.
func (g *Grid) DistancesFrom(p geo.Point) []float32 {
	u := geo.UnitVec(p)
	out := make([]float32, g.total)
	for i, v := range g.units {
		out[i] = float32(geo.DistanceKmFromDot(u.Dot(v)))
	}
	return out
}

// CellArea returns the surface area of cell i in km².
func (g *Grid) CellArea(i int) float64 { return g.cellArea[g.bandOf(i)] }

// CellAt returns the index of the cell containing p.
func (g *Grid) CellAt(p geo.Point) int {
	p = p.Normalize()
	b := int((p.Lat + 90) / g.resDeg)
	if b >= g.bands {
		b = g.bands - 1
	}
	if b < 0 {
		b = 0
	}
	n := g.cols[b]
	c := int((p.Lon + 180) / 360 * float64(n))
	if c >= n {
		c = n - 1
	}
	if c < 0 {
		c = 0
	}
	return g.bandOffset[b] + c
}

func (g *Grid) bandOf(i int) int { return int(g.bandIdx[i]) }

// bandLatRange returns the latitude span [lo, hi] of band b.
func (g *Grid) bandLatRange(b int) (lo, hi float64) {
	lo = -90 + float64(b)*g.resDeg
	return lo, math.Min(lo+g.resDeg, 90)
}

// Region is a set of grid cells. The zero value is unusable; create
// regions through Grid methods. Regions are mutable; use Clone before
// destructive set operations when the original is still needed.
type Region struct {
	g    *Grid
	bits []uint64
}

// NewRegion returns an empty region on g.
func (g *Grid) NewRegion() *Region {
	return &Region{g: g, bits: make([]uint64, (g.total+63)/64)}
}

// FullRegion returns a region covering every cell.
func (g *Grid) FullRegion() *Region {
	r := g.NewRegion()
	for i := range r.bits {
		r.bits[i] = ^uint64(0)
	}
	// Clear the bits beyond the last valid cell.
	if extra := len(r.bits)*64 - g.total; extra > 0 {
		r.bits[len(r.bits)-1] >>= uint(extra)
	}
	return r
}

// Grid returns the grid this region belongs to.
func (r *Region) Grid() *Grid { return r.g }

// Clone returns a deep copy.
func (r *Region) Clone() *Region {
	b := make([]uint64, len(r.bits))
	copy(b, r.bits)
	return &Region{g: r.g, bits: b}
}

// Add inserts cell i.
func (r *Region) Add(i int) { r.bits[i/64] |= 1 << uint(i%64) }

// Remove deletes cell i.
func (r *Region) Remove(i int) { r.bits[i/64] &^= 1 << uint(i%64) }

// Contains reports whether cell i is in the region.
func (r *Region) Contains(i int) bool { return r.bits[i/64]&(1<<uint(i%64)) != 0 }

// ContainsPoint reports whether the cell containing p is in the region.
func (r *Region) ContainsPoint(p geo.Point) bool { return r.Contains(r.g.CellAt(p)) }

// Count returns the number of cells in the region.
func (r *Region) Count() int {
	n := 0
	for _, w := range r.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the region has no cells.
func (r *Region) Empty() bool {
	for _, w := range r.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// AreaKm2 returns the total surface area of the region. Cells within one
// latitude band all share one area, so the sum reduces to a word-masked
// popcount per band times that band's cell area — no per-cell iteration.
// The streaming audit recomputes region areas per verdict delta, which is
// what pushed this off the bit-by-bit path.
func (r *Region) AreaKm2() float64 {
	g := r.g
	var area float64
	for b := 0; b < g.bands; b++ {
		lo := g.bandOffset[b]
		if n := r.countInRange(lo, lo+g.cols[b]); n > 0 {
			area += float64(n) * g.cellArea[b]
		}
	}
	return area
}

// AreaKm2Reference is the pre-kernel AreaKm2 (bit-by-bit cell walk,
// per-cell band lookup), kept as the oracle/baseline; new code should use
// AreaKm2.
func (r *Region) AreaKm2Reference() float64 {
	var area float64
	r.Each(func(i int) { area += r.g.CellArea(i) })
	return area
}

// countInRange returns the number of region cells in [lo, hi) using
// word-masked popcounts.
func (r *Region) countInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > r.g.total {
		hi = r.g.total
	}
	if lo >= hi {
		return 0
	}
	wLo, wHi := lo/64, (hi-1)/64
	n := 0
	for w := wLo; w <= wHi; w++ {
		word := r.bits[w]
		if word == 0 {
			continue
		}
		if w == wLo && lo%64 != 0 {
			word &= ^uint64(0) << uint(lo%64)
		}
		if w == wHi && hi%64 != 0 {
			word &= ^uint64(0) >> uint(64-hi%64)
		}
		n += bits.OnesCount64(word)
	}
	return n
}

// Each calls fn for every cell index in the region, in increasing order.
func (r *Region) Each(fn func(i int)) {
	for w, word := range r.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &= word - 1
		}
	}
}

// IntersectWith removes every cell of r not present in other.
func (r *Region) IntersectWith(other *Region) {
	for i := range r.bits {
		r.bits[i] &= other.bits[i]
	}
}

// UnionWith adds every cell of other to r.
func (r *Region) UnionWith(other *Region) {
	for i := range r.bits {
		r.bits[i] |= other.bits[i]
	}
}

// SubtractWith removes every cell of other from r.
func (r *Region) SubtractWith(other *Region) {
	for i := range r.bits {
		r.bits[i] &^= other.bits[i]
	}
}

// Filter removes every cell for which keep returns false. Like
// IntersectWithinKm, the walk is word-wise: zero words are skipped and
// each surviving word's keep-mask is built locally and stored once,
// instead of a Remove per rejected cell. The predicate is applied to
// exactly the same cells in the same order as the bit-by-bit reference,
// so the resulting bits are identical.
func (r *Region) Filter(keep func(center geo.Point) bool) {
	for w, word := range r.bits {
		if word == 0 {
			continue
		}
		out := word
		base := w * 64
		for t := word; t != 0; t &= t - 1 {
			b := bits.TrailingZeros64(t)
			if !keep(r.g.centers[base+b]) {
				out &^= 1 << uint(b)
			}
		}
		r.bits[w] = out
	}
}

// FilterReference is the pre-kernel Filter (bit-by-bit walk with a
// Remove per rejected cell), kept as the oracle/baseline; new code
// should use Filter.
func (r *Region) FilterReference(keep func(center geo.Point) bool) {
	r.Each(func(i int) {
		if !keep(r.g.centers[i]) {
			r.Remove(i)
		}
	})
}

// Equal reports whether r and other contain exactly the same cells.
func (r *Region) Equal(other *Region) bool {
	if len(r.bits) != len(other.bits) {
		return false
	}
	for i, w := range r.bits {
		if w != other.bits[i] {
			return false
		}
	}
	return true
}

// IntersectsRegion reports whether r and other share at least one cell.
func (r *Region) IntersectsRegion(other *Region) bool {
	for i := range r.bits {
		if r.bits[i]&other.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Centroid returns the area-weighted centroid of the region's cell
// centers, computed in 3-D Cartesian space to behave across the
// antimeridian. For an empty region it returns false.
func (r *Region) Centroid() (geo.Point, bool) {
	var x, y, z, wsum float64
	r.Each(func(i int) {
		u := r.g.units[i]
		w := r.g.CellArea(i)
		x += w * u.X
		y += w * u.Y
		z += w * u.Z
		wsum += w
	})
	//lint:allow floatexact division-by-zero guard: wsum is a sum of non-negative areas, zero iff the region is empty
	if wsum == 0 {
		return geo.Point{}, false
	}
	x, y, z = x/wsum, y/wsum, z/wsum
	norm := math.Sqrt(x*x + y*y + z*z)
	//lint:allow floatexact division-by-zero guard: norm is exactly zero only for perfectly antipodally symmetric regions
	if norm == 0 {
		return geo.Point{}, false
	}
	lat := math.Asin(z/norm) * 180 / math.Pi
	lon := math.Atan2(y, x) * 180 / math.Pi
	return geo.Point{Lat: lat, Lon: lon}, true
}

// DistanceToPointKm returns the great-circle distance from the nearest
// cell center of the region to p (0 if the region contains p's cell).
// Returns +Inf for an empty region.
//
// Instead of scanning every cell of the region, it expands outward from
// p's latitude band: all centers in band b sit exactly at the band's
// middle latitude, so the distance from p to any of them is at least the
// latitude separation, and the search stops as soon as both directions'
// bands are provably farther than the best cell found. For the small,
// compact regions claim assessment produces, this touches a handful of
// bands.
func (r *Region) DistanceToPointKm(p geo.Point) float64 {
	if r.ContainsPoint(p) {
		return 0
	}
	g := r.g
	pn := p.Normalize()
	u := geo.UnitVec(pn)
	pb := int((pn.Lat + 90) / g.resDeg)
	if pb >= g.bands {
		pb = g.bands - 1
	}
	if pb < 0 {
		pb = 0
	}
	bestDot := math.Inf(-1)
	bestKm := math.Inf(1)
	scanBand := func(b int) {
		off := g.bandOffset[b]
		r.eachInRange(off, off+g.cols[b], func(i int) {
			if d := u.Dot(g.units[i]); d > bestDot {
				bestDot = d
			}
		})
		if !math.IsInf(bestDot, -1) {
			bestKm = geo.DistanceKmFromDot(bestDot)
		}
	}
	// Minimum possible distance from p to any center in band b: the pure
	// latitude separation (a great circle between points Δφ apart spans at
	// least Δφ). The epsilon guards against acos-vs-multiplication rounding
	// disagreements at the prune boundary.
	sepKm := func(b int) float64 {
		lo, hi := g.bandLatRange(b)
		return math.Abs(pn.Lat-(lo+hi)/2) * (math.Pi / 180) * geo.EarthRadiusKm
	}
	lo, hi := pb, pb+1
	loDone, hiDone := false, false
	for !loDone || !hiDone {
		if !loDone {
			if lo < 0 || sepKm(lo) > bestKm+1e-6 {
				loDone = true
			} else {
				scanBand(lo)
				lo--
			}
		}
		if !hiDone {
			if hi >= g.bands || sepKm(hi) > bestKm+1e-6 {
				hiDone = true
			} else {
				scanBand(hi)
				hi++
			}
		}
	}
	return bestKm
}

// eachInRange calls fn for every cell index of the region in [lo, hi),
// in increasing order.
func (r *Region) eachInRange(lo, hi int, fn func(i int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > r.g.total {
		hi = r.g.total
	}
	if lo >= hi {
		return
	}
	wLo, wHi := lo/64, (hi-1)/64
	for w := wLo; w <= wHi; w++ {
		word := r.bits[w]
		if word == 0 {
			continue
		}
		if w == wLo && lo%64 != 0 {
			word &= ^uint64(0) << uint(lo%64)
		}
		if w == wHi && hi%64 != 0 {
			word &= ^uint64(0) >> uint(64-hi%64)
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &= word - 1
		}
	}
}

// AddCap adds every cell whose center lies within the cap, plus the cell
// containing the cap's center (so a cap smaller than a cell still maps to
// a nonempty region). It uses a latitude-band prefilter so the cost is
// proportional to the cap size, and the kernel's dot-product membership
// test so no trigonometry runs per candidate cell.
func (r *Region) AddCap(c geo.Cap) {
	u := geo.UnitVec(c.Center)
	cosR := geo.CosForKm(c.RadiusKm)
	r.addCap(c, func(i int) bool { return u.Dot(r.g.units[i]) >= cosR })
}

// AddCapReference is the pre-kernel AddCap: identical candidate
// enumeration, but membership tested with a haversine distance per cell.
// It exists as the oracle for equivalence tests and as the "before" side
// of the BENCH_locate microbenchmarks; new code should use AddCap.
func (r *Region) AddCapReference(c geo.Cap) {
	r.addCap(c, func(i int) bool { return c.Contains(r.g.centers[i]) })
}

// addCap enumerates the candidate cells of a cap (latitude-band and
// longitude-window prefilters) and adds those passing the membership
// test. The predicate is the only thing the kernel path and the
// reference path disagree on.
func (r *Region) addCap(c geo.Cap, contains func(i int) bool) {
	g := r.g
	r.Add(g.CellAt(c.Center))
	if c.RadiusKm <= 0 {
		return
	}
	latHalf := c.RadiusKm / kmPerDeg
	bLo := int((c.Center.Lat - latHalf + 90) / g.resDeg)
	bHi := int((c.Center.Lat + latHalf + 90) / g.resDeg)
	if bLo < 0 {
		bLo = 0
	}
	if bHi >= g.bands {
		bHi = g.bands - 1
	}
	// Longitude prefilter: for a spherical cap that does not reach a
	// pole, every cap point satisfies |lon − centerLon| ≤
	// asin(sin(angularRadius)/cos(centerLat)). Caps that reach a pole or
	// exceed a quarter sphere span all longitudes.
	lonHalf := 180.0
	ar := c.RadiusKm / geo.EarthRadiusKm
	if ar < math.Pi/2 {
		sinAr := math.Sin(ar)
		cosLatC := math.Cos(c.Center.Lat * math.Pi / 180)
		if sinAr < cosLatC {
			lonHalf = math.Asin(sinAr/cosLatC) * 180 / math.Pi
		}
	}
	for b := bLo; b <= bHi; b++ {
		n := g.cols[b]
		off := g.bandOffset[b]
		span := lonHalf + 360/float64(n) // pad by one cell width
		if span >= 180 {
			for cc := 0; cc < n; cc++ {
				if contains(off + cc) {
					r.Add(off + cc)
				}
			}
			continue
		}
		cLo := int(math.Floor((c.Center.Lon - span + 180) / 360 * float64(n)))
		cHi := int(math.Ceil((c.Center.Lon + span + 180) / 360 * float64(n)))
		if cHi-cLo >= n {
			cLo, cHi = 0, n-1
		}
		for k := cLo; k <= cHi; k++ {
			cc := ((k % n) + n) % n
			if contains(off + cc) {
				r.Add(off + cc)
			}
		}
	}
}

// CapRegion returns a fresh region covering the cap.
func (g *Grid) CapRegion(c geo.Cap) *Region {
	r := g.NewRegion()
	r.AddCap(c)
	return r
}

// AddWithinKm adds every cell whose precomputed distance is at most
// maxKm, plus centerCell — mirroring AddCap's contract that the cap's
// own cell is always present. dist must be a slice of length NumCells in
// cell order, as produced by Grid.DistancesFrom (usually via a
// DistanceField); maxKm ≤ 0 adds only the center cell, like AddCap.
func (r *Region) AddWithinKm(dist []float32, maxKm float64, centerCell int) {
	r.Add(centerCell)
	if maxKm <= 0 {
		return
	}
	for i, d := range dist {
		if float64(d) <= maxKm {
			r.Add(i)
		}
	}
}

// IntersectWithinKm removes every cell whose precomputed distance
// exceeds maxKm. dist must be a slice of length NumCells in cell order.
// The pruning is word-wise: zero words are skipped outright and each
// surviving word's keep-mask is built locally and stored once, instead of
// a Remove (index arithmetic + store) per far cell. The per-cell
// predicate is unchanged, so the resulting bits are identical to the
// bit-by-bit reference.
func (r *Region) IntersectWithinKm(dist []float32, maxKm float64) {
	for w, word := range r.bits {
		if word == 0 {
			continue
		}
		keep := word
		base := w * 64
		for t := word; t != 0; t &= t - 1 {
			b := bits.TrailingZeros64(t)
			if float64(dist[base+b]) > maxKm {
				keep &^= 1 << uint(b)
			}
		}
		r.bits[w] = keep
	}
}

// IntersectWithinKmReference is the pre-kernel IntersectWithinKm
// (bit-by-bit walk with per-cell Remove), kept as the oracle/baseline;
// new code should use IntersectWithinKm.
func (r *Region) IntersectWithinKmReference(dist []float32, maxKm float64) {
	r.Each(func(i int) {
		if float64(dist[i]) > maxKm {
			r.Remove(i)
		}
	})
}

// IntersectCap removes every cell whose center is outside the cap.
func (r *Region) IntersectCap(c geo.Cap) {
	u := geo.UnitVec(c.Center)
	cosR := geo.CosForKm(c.RadiusKm)
	if c.RadiusKm <= 0 {
		// Degenerate cap: fall back to the distance comparison so a cell
		// center coinciding with the cap center is kept, as before (a dot
		// product can round to just under 1).
		r.Each(func(i int) {
			if !c.Contains(r.g.centers[i]) {
				r.Remove(i)
			}
		})
		return
	}
	r.Each(func(i int) {
		if u.Dot(r.g.units[i]) < cosR {
			r.Remove(i)
		}
	})
}

// IntersectCapReference is the pre-kernel IntersectCap (haversine per
// cell), kept as the oracle/baseline; new code should use IntersectCap.
func (r *Region) IntersectCapReference(c geo.Cap) {
	r.Each(func(i int) {
		if !c.Contains(r.g.centers[i]) {
			r.Remove(i)
		}
	})
}

// IntersectRing removes every cell whose center is outside the ring.
func (r *Region) IntersectRing(ring geo.Ring) {
	u := geo.UnitVec(ring.Center)
	cosOuter := geo.CosForKm(ring.MaxKm)
	checkInner := ring.MinKm > 0
	cosInner := 1.0
	if checkInner {
		if ring.MinKm/geo.EarthRadiusKm > math.Pi {
			// The inner bound exceeds the antipodal distance: nothing on
			// the sphere is that far away.
			r.Each(func(i int) { r.Remove(i) })
			return
		}
		cosInner = geo.CosForKm(ring.MinKm)
	}
	if ring.MaxKm <= 0 {
		// Degenerate outer bound: use exact distances, as IntersectCap does.
		r.Each(func(i int) {
			if !ring.Contains(r.g.centers[i]) {
				r.Remove(i)
			}
		})
		return
	}
	r.Each(func(i int) {
		d := u.Dot(r.g.units[i])
		if d < cosOuter || (checkInner && d > cosInner) {
			r.Remove(i)
		}
	})
}

// IntersectRingReference is the pre-kernel IntersectRing (haversine per
// cell), kept as the oracle/baseline; new code should use IntersectRing.
func (r *Region) IntersectRingReference(ring geo.Ring) {
	r.Each(func(i int) {
		if !ring.Contains(r.g.centers[i]) {
			r.Remove(i)
		}
	})
}

// DistanceToPointKmReference is the pre-kernel full-region scan
// (haversine per cell), kept as the oracle/baseline; new code should use
// DistanceToPointKm.
func (r *Region) DistanceToPointKmReference(p geo.Point) float64 {
	if r.ContainsPoint(p) {
		return 0
	}
	best := math.Inf(1)
	r.Each(func(i int) {
		if d := geo.DistanceKm(r.g.centers[i], p); d < best {
			best = d
		}
	})
	return best
}

// String summarizes the region.
func (r *Region) String() string {
	cnt := r.Count()
	if cnt == 0 {
		return "region{empty}"
	}
	c, _ := r.Centroid()
	return fmt.Sprintf("region{%d cells, %.0f km², centroid %v}", cnt, r.AreaKm2(), c)
}
