package grid

// Tests for the word-wise region reductions: the per-band popcount area
// sum and the keep-mask distance pruning, each checked against its
// retained bit-by-bit reference implementation.

import (
	"math"
	"math/rand"
	"testing"

	"activegeo/internal/geo"
)

// randomRegion builds a region from a few random caps minus a random
// cap, so it has ragged boundaries, multiple bands, and holes.
func randomRegion(g *Grid, rng *rand.Rand) *Region {
	r := g.NewRegion()
	for k := 0; k < 1+rng.Intn(3); k++ {
		r.AddCap(randomCap(rng))
	}
	hole := g.NewRegion()
	hole.AddCap(randomCap(rng))
	r.SubtractWith(hole)
	return r
}

// TestAreaKm2MatchesReference: the word-wise per-band sum must agree
// with the sequential per-cell sum. The two accumulate in different
// orders (n equal terms multiplied vs added one by one), so agreement is
// up to relative rounding, not bit-exact.
func TestAreaKm2MatchesReference(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(31))
	for k := 0; k < 100; k++ {
		r := randomRegion(g, rng)
		got, want := r.AreaKm2(), r.AreaKm2Reference()
		if want == 0 {
			if got != 0 {
				t.Fatalf("empty region: got area %v, want 0", got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1e-12 {
			t.Fatalf("region %d cells: AreaKm2 %v vs reference %v (rel %.3g)", r.Count(), got, want, rel)
		}
	}
	empty := g.NewRegion()
	if a := empty.AreaKm2(); a != 0 {
		t.Fatalf("empty region area = %v, want 0", a)
	}
	full := g.FullRegion()
	sphere := 4 * math.Pi * geo.EarthRadiusKm * geo.EarthRadiusKm
	if rel := math.Abs(full.AreaKm2()-sphere) / sphere; rel > 1e-9 {
		t.Fatalf("full region area %v, want sphere %v", full.AreaKm2(), sphere)
	}
}

// TestIntersectWithinKmMatchesReference: the keep-mask path applies the
// identical float64 predicate per set bit, so the resulting bitsets must
// be byte-identical to the reference, not merely equivalent.
func TestIntersectWithinKmMatchesReference(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(32))
	for k := 0; k < 100; k++ {
		r := randomRegion(g, rng)
		dist := g.DistancesFrom(randomCap(rng).Center)
		maxKm := rng.Float64() * geo.HalfEquatorKm
		a, b := r.Clone(), r.Clone()
		a.IntersectWithinKm(dist, maxKm)
		b.IntersectWithinKmReference(dist, maxKm)
		for w := range a.bits {
			if a.bits[w] != b.bits[w] {
				t.Fatalf("maxKm %.1f: word %d differs: %x vs %x", maxKm, w, a.bits[w], b.bits[w])
			}
		}
	}
}

// TestCountInRange checks the word-masked popcount against a brute
// count, including unaligned and cross-word ranges.
func TestCountInRange(t *testing.T) {
	g := New(3)
	rng := rand.New(rand.NewSource(33))
	r := randomRegion(g, rng)
	for k := 0; k < 200; k++ {
		lo := rng.Intn(g.total+10) - 5
		hi := lo + rng.Intn(200)
		want := 0
		for i := lo; i < hi; i++ {
			if i >= 0 && i < g.total && r.Contains(i) {
				want++
			}
		}
		if got := r.countInRange(lo, hi); got != want {
			t.Fatalf("countInRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

// TestFilterMatchesReference: the word-wise keep-mask Filter applies
// the identical predicate to the identical cells, so the resulting
// bitsets must be byte-identical to the bit-by-bit reference — for
// ragged geometric predicates and for keep-all/drop-all extremes.
func TestFilterMatchesReference(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(34))
	preds := []func(p geo.Point) bool{
		func(p geo.Point) bool { return p.Lat <= 85 && p.Lat >= -60 },
		func(p geo.Point) bool { return p.Lon > 10 || p.Lat < -20 },
		func(p geo.Point) bool { return math.Mod(math.Abs(p.Lat)+math.Abs(p.Lon), 7) < 3.5 },
		func(p geo.Point) bool { return true },
		func(p geo.Point) bool { return false },
	}
	for k := 0; k < 50; k++ {
		r := randomRegion(g, rng)
		keep := preds[k%len(preds)]
		a, b := r.Clone(), r.Clone()
		a.Filter(keep)
		b.FilterReference(keep)
		if !a.Equal(b) {
			t.Fatalf("trial %d: Filter differs from reference (%d vs %d cells)", k, a.Count(), b.Count())
		}
	}
}
