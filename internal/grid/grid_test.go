package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"activegeo/internal/geo"
)

func testGrid(t testing.TB) *Grid {
	t.Helper()
	return New(1.0)
}

func TestGridTotalArea(t *testing.T) {
	g := testGrid(t)
	var total float64
	for b := 0; b < g.bands; b++ {
		total += g.cellArea[b] * float64(g.cols[b])
	}
	sphere := 4 * math.Pi * geo.EarthRadiusKm * geo.EarthRadiusKm
	if math.Abs(total-sphere)/sphere > 1e-9 {
		t.Errorf("total cell area %.0f ≠ sphere area %.0f", total, sphere)
	}
}

func TestGridCellAreasRoughlyEqual(t *testing.T) {
	g := testGrid(t)
	// Equal-area within a factor ~2 away from the extreme polar bands.
	ref := g.cellArea[g.bands/2] // equatorial band
	for b := 2; b < g.bands-2; b++ {
		ratio := g.cellArea[b] / ref
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("band %d cell area ratio %f", b, ratio)
		}
	}
}

func TestCellAtRoundTrip(t *testing.T) {
	g := testGrid(t)
	f := func(lat, lon float64) bool {
		p := geo.Point{
			Lat: math.Mod(lat, 90),
			Lon: math.Mod(lon, 180),
		}
		if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
			return true
		}
		i := g.CellAt(p)
		if i < 0 || i >= g.NumCells() {
			return false
		}
		// The cell's center should be within one cell diagonal of p.
		d := geo.DistanceKm(g.Center(i), p)
		return d < 2*111.195*g.Resolution()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellAtPoles(t *testing.T) {
	g := testGrid(t)
	for _, p := range []geo.Point{{Lat: 90, Lon: 0}, {Lat: -90, Lon: 0}, {Lat: 90, Lon: 179.9}, {Lat: -90, Lon: -179.9}} {
		i := g.CellAt(p)
		if i < 0 || i >= g.NumCells() {
			t.Errorf("pole point %v → invalid cell %d", p, i)
		}
	}
}

func TestRegionSetOperations(t *testing.T) {
	g := testGrid(t)
	a := g.NewRegion()
	b := g.NewRegion()
	a.Add(10)
	a.Add(20)
	b.Add(20)
	b.Add(30)

	u := a.Clone()
	u.UnionWith(b)
	if u.Count() != 3 || !u.Contains(10) || !u.Contains(20) || !u.Contains(30) {
		t.Errorf("union wrong: %v", u)
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 1 || !i.Contains(20) {
		t.Errorf("intersection wrong: %v", i)
	}
	s := a.Clone()
	s.SubtractWith(b)
	if s.Count() != 1 || !s.Contains(10) {
		t.Errorf("subtraction wrong: %v", s)
	}
	if !a.IntersectsRegion(b) {
		t.Error("a and b share cell 20")
	}
	s.Remove(10)
	if !s.Empty() {
		t.Error("expected empty region")
	}
}

func TestFullRegion(t *testing.T) {
	g := testGrid(t)
	full := g.FullRegion()
	if full.Count() != g.NumCells() {
		t.Errorf("full region has %d cells, grid has %d", full.Count(), g.NumCells())
	}
	sphere := 4 * math.Pi * geo.EarthRadiusKm * geo.EarthRadiusKm
	if a := full.AreaKm2(); math.Abs(a-sphere)/sphere > 1e-9 {
		t.Errorf("full region area %.0f ≠ %.0f", a, sphere)
	}
}

func TestCapRegionConsistency(t *testing.T) {
	g := testGrid(t)
	paris := geo.Point{Lat: 48.8566, Lon: 2.3522}
	c := geo.Cap{Center: paris, RadiusKm: 500}
	r := g.CapRegion(c)

	if !r.ContainsPoint(paris) {
		t.Error("cap region must contain its center")
	}
	// Every cell center must actually be within the cap.
	r.Each(func(i int) {
		if d := geo.DistanceKm(g.Center(i), paris); d > 500+1 {
			t.Errorf("cell %d at distance %.1f exceeds cap radius", i, d)
		}
	})
	// Region area should approximate the analytic cap area.
	if got, want := r.AreaKm2(), c.AreaKm2(); math.Abs(got-want)/want > 0.10 {
		t.Errorf("cap region area %.0f, analytic %.0f", got, want)
	}
}

func TestCapRegionAntimeridian(t *testing.T) {
	g := testGrid(t)
	fiji := geo.Point{Lat: -17.7, Lon: 178.0}
	r := g.CapRegion(geo.Cap{Center: fiji, RadiusKm: 800})
	// A point on the other side of the antimeridian, within 800 km.
	other := geo.Point{Lat: -17.7, Lon: -176.0}
	if geo.DistanceKm(fiji, other) < 750 {
		if !r.ContainsPoint(other) {
			t.Error("cap region must wrap across the antimeridian")
		}
	}
}

func TestCapRegionPolar(t *testing.T) {
	g := testGrid(t)
	r := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 88, Lon: 0}, RadiusKm: 600})
	if r.Empty() {
		t.Fatal("polar cap region is empty")
	}
	if !r.ContainsPoint(geo.Point{Lat: 89.5, Lon: 120}) {
		t.Error("polar cap should cover the pole vicinity regardless of longitude")
	}
}

func TestIntersectCapAndRing(t *testing.T) {
	g := testGrid(t)
	paris := geo.Point{Lat: 48.8566, Lon: 2.3522}
	r := g.CapRegion(geo.Cap{Center: paris, RadiusKm: 1000})
	r.IntersectRing(geo.Ring{Center: paris, MinKm: 300, MaxKm: 600})
	r.Each(func(i int) {
		d := geo.DistanceKm(g.Center(i), paris)
		if d < 299 || d > 601 {
			t.Errorf("ring intersection kept cell at %.1f km", d)
		}
	})
	if r.Empty() {
		t.Error("ring intersection should not be empty")
	}
}

func TestCapRegionMatchesBruteForce(t *testing.T) {
	g := New(3.0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		center := geo.Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		radius := rng.Float64() * 15000
		c := geo.Cap{Center: center, RadiusKm: radius}
		got := g.CapRegion(c)
		centerCell := g.CellAt(center)
		for i := 0; i < g.NumCells(); i++ {
			inside := geo.DistanceKm(g.Center(i), center) <= radius
			if inside && !got.Contains(i) {
				t.Logf("seed %d: cell %d (center %v) inside cap %v r=%.0f but missing", seed, i, g.Center(i), center, radius)
				return false
			}
			if !inside && got.Contains(i) && i != centerCell {
				t.Logf("seed %d: cell %d outside cap but present", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCentroid(t *testing.T) {
	g := testGrid(t)
	paris := geo.Point{Lat: 48.8566, Lon: 2.3522}
	r := g.CapRegion(geo.Cap{Center: paris, RadiusKm: 400})
	c, ok := r.Centroid()
	if !ok {
		t.Fatal("centroid of nonempty region")
	}
	if d := geo.DistanceKm(c, paris); d > 100 {
		t.Errorf("centroid %.1f km from cap center", d)
	}
	if _, ok := g.NewRegion().Centroid(); ok {
		t.Error("empty region must have no centroid")
	}
}

func TestCentroidAntimeridian(t *testing.T) {
	g := testGrid(t)
	fiji := geo.Point{Lat: -17.7, Lon: 179.5}
	r := g.CapRegion(geo.Cap{Center: fiji, RadiusKm: 500})
	c, ok := r.Centroid()
	if !ok {
		t.Fatal("no centroid")
	}
	if d := geo.DistanceKm(c, fiji); d > 150 {
		t.Errorf("antimeridian centroid off by %.1f km (got %v)", d, c)
	}
}

func TestDistanceToPoint(t *testing.T) {
	g := testGrid(t)
	paris := geo.Point{Lat: 48.8566, Lon: 2.3522}
	r := g.CapRegion(geo.Cap{Center: paris, RadiusKm: 300})
	if d := r.DistanceToPointKm(paris); d != 0 {
		t.Errorf("distance to contained point = %f", d)
	}
	newYork := geo.Point{Lat: 40.7128, Lon: -74.0060}
	d := r.DistanceToPointKm(newYork)
	want := geo.DistanceKm(paris, newYork) - 300
	if math.Abs(d-want) > 150 {
		t.Errorf("distance to NY = %.0f, want ≈%.0f", d, want)
	}
	if !math.IsInf(g.NewRegion().DistanceToPointKm(paris), 1) {
		t.Error("empty region distance should be +Inf")
	}
}

func TestEachOrderedAndComplete(t *testing.T) {
	g := testGrid(t)
	r := g.NewRegion()
	want := []int{3, 64, 65, 1000, g.NumCells() - 1}
	for _, i := range want {
		r.Add(i)
	}
	var got []int
	r.Each(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Each order: got %v, want %v", got, want)
			break
		}
	}
}

func TestFilter(t *testing.T) {
	g := testGrid(t)
	r := g.FullRegion()
	r.Filter(func(p geo.Point) bool { return p.Lat > 0 })
	r.Each(func(i int) {
		if g.Center(i).Lat <= 0 {
			t.Fatalf("filter kept southern cell at %v", g.Center(i))
		}
	})
	if r.Count() == 0 || r.Count() >= g.NumCells() {
		t.Errorf("filtered count %d", r.Count())
	}
}

func TestRegionPropertiesQuick(t *testing.T) {
	g := New(2.0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := g.NewRegion(), g.NewRegion()
		for i := 0; i < 50; i++ {
			a.Add(rng.Intn(g.NumCells()))
			b.Add(rng.Intn(g.NumCells()))
		}
		// |A∪B| + |A∩B| == |A| + |B|
		u, in := a.Clone(), a.Clone()
		u.UnionWith(b)
		in.IntersectWith(b)
		if u.Count()+in.Count() != a.Count()+b.Count() {
			return false
		}
		// (A\B) ∩ B == ∅
		s := a.Clone()
		s.SubtractWith(b)
		s.IntersectWith(b)
		return s.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionString(t *testing.T) {
	g := testGrid(t)
	if s := g.NewRegion().String(); s != "region{empty}" {
		t.Errorf("empty region string %q", s)
	}
	r := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 10, Lon: 10}, RadiusKm: 200})
	if s := r.String(); len(s) == 0 || s == "region{empty}" {
		t.Errorf("region string %q", s)
	}
}

func TestNewPanicsOnBadResolution(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func BenchmarkCellAt(b *testing.B) {
	g := New(0.5)
	p := geo.Point{Lat: 48.8566, Lon: 2.3522}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CellAt(p)
	}
}

func BenchmarkCapRegion(b *testing.B) {
	g := New(0.5)
	c := geo.Cap{Center: geo.Point{Lat: 48.8566, Lon: 2.3522}, RadiusKm: 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CapRegion(c)
	}
}
