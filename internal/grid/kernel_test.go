package grid

// Tests for the geometry kernel: the precomputed band table, the
// dot-product cap/ring membership paths against the pre-kernel
// (haversine) reference paths, the distance-slice region builders, and
// the expanding-band nearest-cell search.

import (
	"math"
	"math/rand"
	"testing"

	"activegeo/internal/geo"
)

// bandOfBinarySearch is the pre-kernel band lookup, kept here as the
// oracle for the O(1) table.
func bandOfBinarySearch(g *Grid, i int) int {
	lo, hi := 0, g.bands-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.bandOffset[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func TestBandTableMatchesBinarySearch(t *testing.T) {
	for _, res := range []float64{5.0, 1.5, 1.0} {
		g := New(res)
		for i := 0; i < g.NumCells(); i++ {
			if got, want := g.bandOf(i), bandOfBinarySearch(g, i); got != want {
				t.Fatalf("res %v cell %d: band %d, want %d", res, i, got, want)
			}
		}
	}
}

func TestUnitVecMatchesCenter(t *testing.T) {
	g := New(2.0)
	for i := 0; i < g.NumCells(); i += 7 {
		want := geo.UnitVec(g.Center(i))
		if g.UnitVec(i) != want {
			t.Fatalf("cell %d: unit vector not derived from center", i)
		}
	}
}

func randomCap(rng *rand.Rand) geo.Cap {
	return geo.Cap{
		Center: geo.Point{
			Lat: math.Asin(2*rng.Float64()-1) * 180 / math.Pi,
			Lon: 360*rng.Float64() - 180,
		},
		RadiusKm: rng.Float64() * geo.HalfEquatorKm,
	}
}

// TestAddCapMatchesReference compares the kernel AddCap against the
// haversine reference over random caps, including polar and hemispheric
// ones. The two paths enumerate identical candidates and differ only in
// the membership predicate, which agrees except for exact-boundary ulp
// coincidences (never hit with continuous random radii).
func TestAddCapMatchesReference(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(21))
	for k := 0; k < 200; k++ {
		c := randomCap(rng)
		a, b := g.NewRegion(), g.NewRegion()
		a.AddCap(c)
		b.AddCapReference(c)
		if diff := symmetricDiff(a, b); diff != 0 {
			t.Fatalf("cap %+v: %d cells differ", c, diff)
		}
	}
}

func TestIntersectCapRingMatchReference(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(22))
	full := g.FullRegion()
	for k := 0; k < 100; k++ {
		c := randomCap(rng)
		a, b := full.Clone(), full.Clone()
		a.IntersectCap(c)
		b.IntersectCapReference(c)
		if diff := symmetricDiff(a, b); diff != 0 {
			t.Fatalf("IntersectCap %+v: %d cells differ", c, diff)
		}
		ring := geo.Ring{
			Center: c.Center,
			MinKm:  rng.Float64() * 8000,
			MaxKm:  rng.Float64() * geo.HalfEquatorKm,
		}
		a, b = full.Clone(), full.Clone()
		a.IntersectRing(ring)
		b.IntersectRingReference(ring)
		if diff := symmetricDiff(a, b); diff != 0 {
			t.Fatalf("IntersectRing %+v: %d cells differ", ring, diff)
		}
	}
}

// TestAddWithinKmMatchesAddCap checks the distance-slice builder against
// AddCap. Distances are float32, so cells within half a float32 ulp of
// the boundary (≈1 m at world scale) may differ; random radii never land
// there.
func TestAddWithinKmMatchesAddCap(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(23))
	for k := 0; k < 100; k++ {
		c := randomCap(rng)
		dist := g.DistancesFrom(c.Center)
		a, b := g.NewRegion(), g.NewRegion()
		a.AddWithinKm(dist, c.RadiusKm, g.CellAt(c.Center))
		b.AddCap(c)
		if diff := symmetricDiff(a, b); diff != 0 {
			t.Fatalf("cap %+v: %d cells differ between AddWithinKm and AddCap", c, diff)
		}
		// IntersectWithinKm against IntersectCap from a full region.
		a, b = g.FullRegion(), g.FullRegion()
		a.IntersectWithinKm(dist, c.RadiusKm)
		b.IntersectCap(c)
		if diff := symmetricDiff(a, b); diff != 0 {
			t.Fatalf("cap %+v: %d cells differ between IntersectWithinKm and IntersectCap", c, diff)
		}
	}
}

func TestDistanceToPointKmMatchesReference(t *testing.T) {
	g := New(2.5)
	rng := rand.New(rand.NewSource(24))
	for k := 0; k < 120; k++ {
		r := g.NewRegion()
		// Random union of a few caps, sometimes empty.
		for n := rng.Intn(3); n > 0; n-- {
			c := randomCap(rng)
			c.RadiusKm = rng.Float64() * 3000
			r.AddCap(c)
		}
		p := geo.Point{
			Lat: math.Asin(2*rng.Float64()-1) * 180 / math.Pi,
			Lon: 360*rng.Float64() - 180,
		}
		got := r.DistanceToPointKm(p)
		want := r.DistanceToPointKmReference(p)
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("empty region: got %f, want +Inf", got)
			}
			continue
		}
		if diff := math.Abs(got - want); diff > 1e-6+1e-9*want {
			t.Fatalf("distance %f vs reference %f (diff %g)", got, want, diff)
		}
	}
}

func TestEachInRange(t *testing.T) {
	g := New(5.0)
	r := g.NewRegion()
	rng := rand.New(rand.NewSource(25))
	for k := 0; k < 300; k++ {
		r.Add(rng.Intn(g.NumCells()))
	}
	for k := 0; k < 200; k++ {
		lo := rng.Intn(g.NumCells())
		hi := lo + rng.Intn(200)
		var got []int
		r.eachInRange(lo, hi, func(i int) { got = append(got, i) })
		var want []int
		r.Each(func(i int) {
			if i >= lo && i < hi {
				want = append(want, i)
			}
		})
		if len(got) != len(want) {
			t.Fatalf("[%d,%d): %d cells, want %d", lo, hi, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("[%d,%d): element %d is %d, want %d", lo, hi, j, got[j], want[j])
			}
		}
	}
}

func symmetricDiff(a, b *Region) int {
	d := a.Clone()
	d.SubtractWith(b)
	n := d.Count()
	d = b.Clone()
	d.SubtractWith(a)
	return n + d.Count()
}
