package grid

// Per-landmark quantized cap/ring mask cache.
//
// Every Locate in the audit pipeline carves caps and rings around the
// same few hundred landmarks, for every target. The DistanceField
// already amortizes the great-circle math per landmark; this file
// amortizes the *geometry* as well: for each landmark it precomputes a
// monotone family of radius-quantized cap bitmasks (level q covers the
// cells within q·stepKm), so a cap or ring of any radius reduces to
// word-wise OR/AND/AND-NOT against the two bracketing levels, with the
// exact float64 distance predicate applied only in the thin annulus
// between the inner (certainly inside) and outer (certainly covering)
// bracket. Because the annulus refinement applies the *identical*
// predicate the unquantized paths use, results are byte-identical to
// AddWithinKm / IntersectWithinKm / the geoloc ring loop — the masks
// are an accelerator, never an approximation (DESIGN.md §8).

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"activegeo/internal/geo"
)

// DefaultMaskStepKm is the quantization step of the cap-mask family.
// A 400 km step keeps the family small (⌈π·R/step⌉+2 ≈ 53 levels,
// ≈270 KB per landmark at 1° resolution) while the annulus a bracket
// leaves for exact refinement stays under ~2 % of the sphere.
const DefaultMaskStepKm = 400.0

// CapMasks is the quantized cap-mask family of one landmark: nLevels
// bitmasks over the grid, where level q contains exactly the cells
// whose cached distance is ≤ q·stepKm. The family is monotone
// (level q ⊆ level q+1) and the top level covers the whole sphere, so
// for any radius r the bracketing levels lo = ⌊r/step⌋ and hi = lo+1
// satisfy the bracket invariant
//
//	mask[lo] ⊆ {cells with dist ≤ r} ⊆ mask[hi]
//
// and only the annulus mask[hi] &^ mask[lo] needs the per-cell float64
// test. CapMasks is immutable after construction and safe for
// concurrent use.
type CapMasks struct {
	g       *Grid
	dist    []float32 // the landmark's cached distance field (shared, immutable)
	words   int
	stepKm  float64
	nLevels int
	levels  []uint64       // flattened nLevels × words
	refined *atomic.Uint64 // annulus cells exactly refined; nil-safe
}

// newCapMasks builds the mask family from a landmark's distance slice.
// refined may be nil; when set, every op adds the number of annulus
// cells it refined with the exact predicate.
func newCapMasks(g *Grid, dist []float32, stepKm float64, refined *atomic.Uint64) *CapMasks {
	if stepKm <= 0 {
		stepKm = DefaultMaskStepKm
	}
	words := (g.total + 63) / 64
	// Enough levels that the top one certainly covers the antipode
	// (max sphere distance π·R), so every radius has an outer bracket.
	nLevels := int(math.Pi*geo.EarthRadiusKm/stepKm) + 3
	cm := &CapMasks{
		g:       g,
		dist:    dist,
		words:   words,
		stepKm:  stepKm,
		nLevels: nLevels,
		levels:  make([]uint64, nLevels*words),
		refined: refined,
	}
	for i, d := range dist {
		q := cm.firstLevel(float64(d))
		cm.levels[q*words+i/64] |= 1 << uint(i%64)
	}
	// Prefix-OR: each level also covers everything nearer.
	for q := 1; q < nLevels; q++ {
		dst := cm.levels[q*words : (q+1)*words]
		src := cm.levels[(q-1)*words : q*words]
		for w := range dst {
			dst[w] |= src[w]
		}
	}
	return cm
}

// Levels returns the number of quantization levels in the family.
func (cm *CapMasks) Levels() int { return cm.nLevels }

// StepKm returns the quantization step in kilometers.
func (cm *CapMasks) StepKm() float64 { return cm.stepKm }

// MaskBytes returns the memory footprint of the mask words.
func (cm *CapMasks) MaskBytes() int { return len(cm.levels) * 8 }

// radiusOf returns the radius of quantization level q.
func (cm *CapMasks) radiusOf(q int) float64 { return float64(q) * cm.stepKm }

// firstLevel returns the smallest level q with d ≤ radiusOf(q). The
// initial guess comes from a division; the fix-up loops re-establish
// the invariant with direct one-sided comparisons, so division rounding
// at a quantization boundary can never misplace a cell.
func (cm *CapMasks) firstLevel(d float64) int {
	q := int(d / cm.stepKm)
	if q < 0 {
		q = 0
	}
	if q > cm.nLevels-1 {
		q = cm.nLevels - 1
	}
	for q > 0 && d <= cm.radiusOf(q-1) {
		q--
	}
	for q < cm.nLevels-1 && d > cm.radiusOf(q) {
		q++
	}
	return q
}

// bracket returns the bracketing level indices (lo, hi) for radius
// rKm: lo is the largest level with radiusOf(lo) ≤ rKm (−1 when rKm is
// negative, i.e. no level is certainly inside), and hi = lo+1 is the
// smallest level with radiusOf(hi) > rKm (clamped by callers to the
// top level, which covers the whole sphere). All boundary decisions
// use one-sided ≤/> comparisons only.
func (cm *CapMasks) bracket(rKm float64) (lo, hi int) {
	if math.IsNaN(rKm) || rKm < 0 {
		return -1, 0
	}
	if math.IsInf(rKm, 1) {
		return cm.nLevels - 1, cm.nLevels
	}
	q := int(rKm / cm.stepKm)
	if q < 0 {
		q = 0
	}
	if q > cm.nLevels-1 {
		q = cm.nLevels - 1
	}
	for q > 0 && cm.radiusOf(q) > rKm {
		q--
	}
	for q < cm.nLevels-1 && cm.radiusOf(q+1) <= rKm {
		q++
	}
	if cm.radiusOf(q) > rKm {
		// Only reachable at q == 0 when 0 < rKm fails, i.e. never for
		// rKm ≥ 0; kept as a defensive floor for subnormal surprises.
		return -1, 0
	}
	return q, q + 1
}

// level returns the words of level q; nil for q < 0 (empty mask). A q
// beyond the top level is clamped to the top, which covers the sphere.
func (cm *CapMasks) level(q int) []uint64 {
	if q < 0 {
		return nil
	}
	if q > cm.nLevels-1 {
		q = cm.nLevels - 1
	}
	return cm.levels[q*cm.words : (q+1)*cm.words]
}

func (cm *CapMasks) addRefined(n uint64) {
	if cm.refined != nil && n > 0 {
		cm.refined.Add(n)
	}
}

// FillWithinKm ORs into dst exactly the cells whose cached distance is
// ≤ maxKm — byte-identical to Region.AddWithinKm without the center
// cell (callers add that separately, preserving AddCap's center rule).
// Inner-bracket words are ORed wholesale; only annulus bits see the
// exact float64 predicate.
func (cm *CapMasks) FillWithinKm(dst *Region, maxKm float64) {
	lo, hi := cm.bracket(maxKm)
	inner := cm.level(lo)
	outer := cm.level(hi)
	var refined uint64
	for w := 0; w < cm.words; w++ {
		var in uint64
		if inner != nil {
			in = inner[w]
		}
		keep := in
		if ann := outer[w] &^ in; ann != 0 {
			refined += uint64(bits.OnesCount64(ann))
			base := w * 64
			for t := ann; t != 0; t &= t - 1 {
				b := bits.TrailingZeros64(t)
				if float64(cm.dist[base+b]) <= maxKm {
					keep |= 1 << uint(b)
				}
			}
		}
		if keep != 0 {
			dst.bits[w] |= keep
		}
	}
	cm.addRefined(refined)
}

// IntersectWithinKm removes from r every cell whose cached distance
// exceeds maxKm — byte-identical to Region.IntersectWithinKm over the
// same distance slice. Cells inside the inner bracket are kept and
// cells outside the outer bracket dropped word-wise; only set bits in
// the annulus see the exact predicate.
func (cm *CapMasks) IntersectWithinKm(r *Region, maxKm float64) {
	lo, hi := cm.bracket(maxKm)
	inner := cm.level(lo)
	outer := cm.level(hi)
	var refined uint64
	for w, word := range r.bits {
		if word == 0 {
			continue
		}
		var in uint64
		if inner != nil {
			in = inner[w]
		}
		keep := word & in
		if ann := word & outer[w] &^ in; ann != 0 {
			refined += uint64(bits.OnesCount64(ann))
			base := w * 64
			for t := ann; t != 0; t &= t - 1 {
				b := bits.TrailingZeros64(t)
				if float64(cm.dist[base+b]) <= maxKm {
					keep |= 1 << uint(b)
				}
			}
		}
		r.bits[w] = keep
	}
	cm.addRefined(refined)
}

// FillRingKm ORs into dst exactly the cells with
// minExclusiveKm < dist ≤ maxKm — byte-identical to the per-cell ring
// loop over the same distance slice. minExclusiveKm may be −Inf (no
// inner bound). Cells certainly in the ring (inside the outer bound's
// inner bracket and outside the inner bound's outer bracket) are ORed
// word-wise; only candidate bits near either boundary see the exact
// two-sided predicate.
func (cm *CapMasks) FillRingKm(dst *Region, minExclusiveKm, maxKm float64) {
	oLo, oHi := cm.bracket(maxKm)
	iLo, iHi := cm.bracket(minExclusiveKm)
	outSure := cm.level(oLo)  // certainly ≤ maxKm; nil if none
	outAll := cm.level(oHi)   // everything possibly ≤ maxKm
	innDrop := cm.level(iLo)  // certainly ≤ minExclusiveKm (excluded); nil if none
	innMaybe := cm.level(iHi) // possibly ≤ minExclusiveKm
	var refined uint64
	for w := 0; w < cm.words; w++ {
		var os, id, im uint64
		if outSure != nil {
			os = outSure[w]
		}
		if innDrop != nil {
			id = innDrop[w]
		}
		if innMaybe != nil {
			im = innMaybe[w]
		}
		cand := outAll[w] &^ id // possibly in the ring
		keep := os &^ im        // certainly in the ring (⊆ cand)
		if ann := cand &^ keep; ann != 0 {
			refined += uint64(bits.OnesCount64(ann))
			base := w * 64
			for t := ann; t != 0; t &= t - 1 {
				b := bits.TrailingZeros64(t)
				dd := float64(cm.dist[base+b])
				if dd <= maxKm && dd > minExclusiveKm {
					keep |= 1 << uint(b)
				}
			}
		}
		if keep != 0 {
			dst.bits[w] |= keep
		}
	}
	cm.addRefined(refined)
}

// MaskCache is a concurrency-safe, bounded LRU cache of per-landmark
// CapMasks, keyed like the DistanceField by host ID *and* position so
// a moved landmark can never be served stale geometry. The first
// request for a landmark pulls its distance slice from the underlying
// DistanceField (warming that cache too) and builds the mask family
// outside the cache lock; concurrent requests for the same landmark
// share a single build via sync.Once. Memory is bounded at
// capacity × nLevels × words × 8 bytes.
type MaskCache struct {
	field  *DistanceField
	stepKm float64
	cap    int

	mu      sync.Mutex
	entries map[FieldKey]*maskEntry
	clock   uint64

	hits, misses, evictions uint64
	refined                 atomic.Uint64
}

type maskEntry struct {
	once    sync.Once
	masks   *CapMasks
	lastUse uint64 // guarded by MaskCache.mu
}

// NewMaskCache builds a mask cache over the field's grid holding at
// most maxEntries landmark families (minimum 1). stepKm ≤ 0 selects
// DefaultMaskStepKm.
func NewMaskCache(field *DistanceField, maxEntries int, stepKm float64) *MaskCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if stepKm <= 0 {
		stepKm = DefaultMaskStepKm
	}
	return &MaskCache{
		field:   field,
		stepKm:  stepKm,
		cap:     maxEntries,
		entries: make(map[FieldKey]*maskEntry, maxEntries),
	}
}

// Field returns the distance-field cache the masks are built from.
func (c *MaskCache) Field() *DistanceField { return c.field }

// Masks returns the landmark's quantized mask family, building and
// caching it on first use. The build runs outside the cache lock, so
// misses on different landmarks build in parallel while concurrent
// requests for the same landmark share one build.
func (c *MaskCache) Masks(key FieldKey) *CapMasks {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &maskEntry{}
		c.entries[key] = e
		if len(c.entries) > c.cap {
			c.evictLocked(e)
		}
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()

	e.once.Do(func() {
		dist := c.field.Distances(key)
		e.masks = newCapMasks(c.field.Grid(), dist, c.stepKm, &c.refined)
	})
	return e.masks
}

// evictLocked drops the least-recently-used entry other than keep.
func (c *MaskCache) evictLocked(keep *maskEntry) {
	var victim FieldKey
	var victimEntry *maskEntry
	for k, e := range c.entries {
		if e == keep {
			continue
		}
		if victimEntry == nil || e.lastUse < victimEntry.lastUse {
			victim, victimEntry = k, e
		}
	}
	if victimEntry != nil {
		delete(c.entries, victim)
		c.evictions++
	}
}

// Invalidate evicts every cached mask family whose key carries the
// given host ID (at any position) and returns how many were dropped.
// Landmark churn — decommissioned anchors, a host re-provisioned at a
// new position — calls this alongside DistanceField.Invalidate so no
// stale geometry outlives the fleet change.
func (c *MaskCache) Invalidate(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k := range c.entries {
		if k.ID == id {
			delete(c.entries, k)
			n++
		}
	}
	c.evictions += uint64(n)
	return n
}

// MaskStats reports mask-cache effectiveness counters. RefinedCells is
// the cumulative number of annulus cells the word-wise ops fell back to
// the exact float64 predicate for — the cost the quantization did not
// elide.
type MaskStats struct {
	Entries      int
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	RefinedCells uint64
	Levels       int
	BytesPerMask int
}

// Stats returns a snapshot of the cache counters.
func (c *MaskCache) Stats() MaskStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Levels and bytes-per-mask are a pure function of (grid, step), so
	// they are derived here rather than read off an entry: an entry's
	// masks pointer is written inside its sync.Once and must not be
	// inspected without going through Do.
	nLevels := int(math.Pi*geo.EarthRadiusKm/c.stepKm) + 3
	words := (c.field.Grid().total + 63) / 64
	return MaskStats{
		Entries:      len(c.entries),
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		RefinedCells: c.refined.Load(),
		Levels:       nLevels,
		BytesPerMask: nLevels * words * 8,
	}
}
