package grid

import (
	"math/rand"
	"sync"
	"testing"

	"activegeo/internal/geo"
)

func TestDistanceFieldValues(t *testing.T) {
	g := New(3.0)
	f := NewDistanceField(g, 8)
	p := geo.Point{Lat: 48.85, Lon: 2.35}
	dist := f.Distances(FieldKey{ID: "paris", Lat: p.Lat, Lon: p.Lon})
	if len(dist) != g.NumCells() {
		t.Fatalf("len %d, want %d", len(dist), g.NumCells())
	}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 500; k++ {
		i := rng.Intn(g.NumCells())
		want := geo.DistanceKm(p, g.Center(i))
		if diff := float64(dist[i]) - want; diff > 0.05 || diff < -0.05 {
			t.Fatalf("cell %d: field %.4f vs haversine %.4f", i, dist[i], want)
		}
	}
}

func TestDistanceFieldHitMiss(t *testing.T) {
	g := New(5.0)
	f := NewDistanceField(g, 4)
	k1 := FieldKey{ID: "a", Lat: 10, Lon: 20}
	k2 := FieldKey{ID: "b", Lat: -30, Lon: 40}

	d1 := f.Distances(k1)
	if s := f.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first fill: %+v", s)
	}
	if d1b := f.Distances(k1); &d1b[0] != &d1[0] {
		t.Error("second request did not return the shared slice")
	}
	f.Distances(k2)
	if s := f.Stats(); s.Misses != 2 || s.Hits != 1 || s.Entries != 2 {
		t.Fatalf("after second landmark: %+v", s)
	}
	// Same ID at a different position is a different field.
	f.Distances(FieldKey{ID: "a", Lat: 11, Lon: 20})
	if s := f.Stats(); s.Misses != 3 {
		t.Fatalf("moved landmark should miss: %+v", s)
	}
}

func TestDistanceFieldEviction(t *testing.T) {
	g := New(5.0)
	f := NewDistanceField(g, 2)
	ka := FieldKey{ID: "a"}
	kb := FieldKey{ID: "b"}
	kc := FieldKey{ID: "c"}
	f.Distances(ka)
	f.Distances(kb)
	f.Distances(ka) // a is now more recently used than b
	f.Distances(kc) // evicts b (LRU)
	s := f.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("after overflow: %+v", s)
	}
	f.Distances(ka)
	if s := f.Stats(); s.Misses != 3 {
		t.Fatalf("a should still be cached: %+v", s)
	}
	f.Distances(kb)
	if s := f.Stats(); s.Misses != 4 {
		t.Fatalf("b should have been evicted: %+v", s)
	}
}

// TestDistanceFieldConcurrent hammers the cache from many goroutines
// (run under -race by make race): same-key requests must share one fill
// and every returned slice must be complete.
func TestDistanceFieldConcurrent(t *testing.T) {
	g := New(5.0)
	f := NewDistanceField(g, 8)
	keys := make([]FieldKey, 16)
	for i := range keys {
		keys[i] = FieldKey{ID: string(rune('a' + i)), Lat: float64(i * 5), Lon: float64(i * 10)}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 200; n++ {
				k := keys[rng.Intn(len(keys))]
				dist := f.Distances(k)
				if len(dist) != g.NumCells() {
					t.Errorf("incomplete slice for %v", k)
					return
				}
				// Spot-check one value to catch a torn fill.
				i := rng.Intn(len(dist))
				want := geo.DistanceKm(geo.Point{Lat: k.Lat, Lon: k.Lon}, g.Center(i))
				if diff := float64(dist[i]) - want; diff > 0.05 || diff < -0.05 {
					t.Errorf("bad value under concurrency: %v cell %d", k, i)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := f.Stats()
	if s.Entries > 8 {
		t.Errorf("capacity exceeded: %+v", s)
	}
}

// TestDistanceFieldInvalidate: invalidating a host ID must drop its
// entries at every cached position (the moved-host shape) and leave
// other hosts untouched.
func TestDistanceFieldInvalidate(t *testing.T) {
	g := New(10)
	f := NewDistanceField(g, 8)
	f.Distances(FieldKey{ID: "m", Lat: 1, Lon: 2})
	f.Distances(FieldKey{ID: "m", Lat: 3, Lon: 4}) // same host, new position
	f.Distances(FieldKey{ID: "n", Lat: 5, Lon: 6})
	if n := f.Invalidate("m"); n != 2 {
		t.Fatalf("Invalidate(m) = %d, want 2", n)
	}
	s := f.Stats()
	if s.Entries != 1 || s.Evictions != 2 {
		t.Fatalf("stats after invalidate = %+v, want 1 entry, 2 evictions", s)
	}
	if n := f.Invalidate("m"); n != 0 {
		t.Fatalf("second Invalidate(m) = %d, want 0", n)
	}
}
