// Package proxy models the commercial VPN ecosystem the paper audits
// (§6): seven providers (anonymized A–G) with claimed server countries,
// the ground-truth placement of their servers in data centers, the
// behavioral quirks that make proxies hard to measure (ICMP blocking,
// time-exceeded dropping, port filtering), and the wider provider market
// of Figure 14.
//
// The package also contains a real TCP forwarding proxy (forward.go)
// that can be run on a live network, so the measurement pipeline can be
// demonstrated outside the simulator.
package proxy

import (
	"fmt"
	"math/rand"
	"sort"

	"activegeo/internal/datacenter"
	"activegeo/internal/geo"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// Server is one proxy server: a simulated host plus the provider's claim
// about it and the ground truth.
type Server struct {
	Host           *netsim.Host
	Provider       string
	Hostname       string // round-robin DNS name the provider advertises
	ClaimedCountry string // ISO code
	TrueCountry    string // ISO code (ground truth, hidden from the pipeline)
}

// Provider is one VPN service.
type Provider struct {
	Name    string // "A" … "G"
	Claims  []string
	Servers []*Server
	// Honesty is the construction parameter: the probability that a
	// server's true location matches its claim when hosting there is
	// possible. Exposed for experiment reporting only.
	Honesty float64
}

// ClaimedCountries returns the provider's distinct claimed countries,
// sorted.
func (p *Provider) ClaimedCountries() []string {
	return append([]string(nil), p.Claims...)
}

// Fleet is the full simulated proxy ecosystem.
type Fleet struct {
	Providers []*Provider
	net       *netsim.Network
}

// Config controls fleet construction.
type Config struct {
	// TotalServers across all providers (paper: 2269 unique IPs).
	TotalServers int
	// ICMPBlockFraction is the share of servers ignoring ping (paper:
	// roughly 90%).
	ICMPBlockFraction float64
	// DropTimeExceededFraction is the share of servers through which
	// traceroute is impossible (paper: roughly a third).
	DropTimeExceededFraction float64
}

// DefaultConfig matches the paper's scale.
func DefaultConfig() Config {
	return Config{
		TotalServers:             2269,
		ICMPBlockFraction:        0.90,
		DropTimeExceededFraction: 0.33,
	}
}

// providerSpec is the construction recipe for the seven studied
// providers. Claim breadths follow Figure 14 (A–E among the 20 broadest
// claimants — A claiming all but a few sovereign states — F and G
// modest); honesty follows the per-provider patterns of Figures 18/19
// (provider A "especially misleading").
var providerSpec = []struct {
	name    string
	claimed int     // number of claimed countries
	share   float64 // share of the total fleet
	honesty float64
}{
	{"A", 190, 0.22, 0.50},
	{"B", 120, 0.18, 0.45},
	{"C", 95, 0.17, 0.65},
	{"D", 80, 0.15, 0.72},
	{"E", 60, 0.12, 0.50},
	{"F", 34, 0.09, 0.75},
	{"G", 26, 0.07, 0.82},
}

// hostingWeight gives popular hosting countries their Figure 17 pull:
// when a claim is dishonest (or unhostable), the server actually lands
// in one of these.
var hostingWeight = map[string]float64{
	"us": 30, "de": 14, "nl": 10, "gb": 10, "fr": 7, "cz": 6,
	"ca": 5, "sg": 4, "jp": 4, "au": 3, "se": 3, "ch": 2,
	"pl": 2, "es": 2, "it": 2, "ro": 2, "ru": 2, "hk": 2,
	"br": 1, "za": 1, "in": 1, "mx": 1,
}

// BuildFleet constructs the seven providers and their servers inside
// net. All placement randomness comes from rng.
func BuildFleet(net *netsim.Network, cfg Config, rng *rand.Rand) (*Fleet, error) {
	if cfg.TotalServers < len(providerSpec) {
		return nil, fmt.Errorf("proxy: need at least %d servers", len(providerSpec))
	}
	f := &Fleet{net: net}

	countries := worldmap.Countries()
	// Popular claims first: everyone claims the big hosting countries,
	// then each provider extends down a shuffled long tail.
	popular := datacenter.HostingCountries()

	asnNext := 60000
	dcASN := map[string]map[string]int{}    // provider → dc → asn
	dcPrefix := map[string]map[string]int{} // provider → dc → prefix counter
	serverSeq := 0

	for _, spec := range providerSpec {
		p := &Provider{Name: spec.name, Honesty: spec.honesty}

		// Claim list: the popular countries plus a random sample of the
		// rest, up to the spec breadth.
		claimSet := map[string]bool{}
		for _, c := range popular {
			if len(claimSet) >= spec.claimed {
				break
			}
			claimSet[c] = true
		}
		perm := rng.Perm(len(countries))
		for _, i := range perm {
			if len(claimSet) >= spec.claimed {
				break
			}
			claimSet[countries[i].Code] = true
		}
		for c := range claimSet {
			p.Claims = append(p.Claims, c)
		}
		sort.Strings(p.Claims)

		// Server claims are weighted toward the popular countries, as in
		// Figure 17: the ten most-claimed countries account for the bulk
		// of advertised servers, with the long tail of exotic claims
		// carrying only a few servers each.
		claimWeights := make([]float64, len(p.Claims))
		var claimTotal float64
		for i, c := range p.Claims {
			w := hostingWeight[c]
			if w == 0 {
				w = 0.25
			}
			claimWeights[i] = w
			claimTotal += w
		}
		pickClaim := func() string {
			x := rng.Float64() * claimTotal
			for i, w := range claimWeights {
				x -= w
				if x <= 0 {
					return p.Claims[i]
				}
			}
			return p.Claims[len(p.Claims)-1]
		}

		n := int(float64(cfg.TotalServers)*spec.share + 0.5)
		for i := 0; i < n; i++ {
			claimed := pickClaim()
			trueCountry := claimed
			honest := rng.Float64() < spec.honesty
			dcs := datacenter.InCountry(claimed)
			if !honest || len(dcs) == 0 {
				trueCountry = pickHostingCountry(rng)
				dcs = datacenter.InCountry(trueCountry)
			}
			dc := dcs[rng.Intn(len(dcs))]

			if dcASN[p.Name] == nil {
				dcASN[p.Name] = map[string]int{}
				dcPrefix[p.Name] = map[string]int{}
			}
			asn, ok := dcASN[p.Name][dc.ID]
			if !ok {
				asn = asnNext
				asnNext++
				dcASN[p.Name][dc.ID] = asn
			}
			// A handful of /24s per provider+DC; servers cluster in them.
			prefixIdx := dcPrefix[p.Name][dc.ID]
			if rng.Float64() < 0.2 {
				dcPrefix[p.Name][dc.ID]++
				prefixIdx++
			}
			prefix := fmt.Sprintf("10.%d.%d", asn%250, prefixIdx%250)

			// Scatter within ~15 km of the DC.
			loc := geo.DestinationPoint(dc.Loc, rng.Float64()*360, rng.Float64()*15)
			serverSeq++
			host := &netsim.Host{
				ID:                netsim.HostID(fmt.Sprintf("vpn-%s-%04d", p.Name, serverSeq)),
				Addr:              fmt.Sprintf("%s.%d", prefix, serverSeq%250+1),
				Loc:               loc,
				Country:           trueCountry,
				ASN:               asn,
				Prefix24:          prefix,
				DataCenter:        dc.ID,
				BlocksICMP:        rng.Float64() < cfg.ICMPBlockFraction,
				DropsTimeExceeded: rng.Float64() < cfg.DropTimeExceededFraction,
				AccessDelayMs:     0.2 + rng.Float64()*0.3, // data-center grade

			}
			// Aggressive filtering of unusual ports (§4.2) — everything
			// except 80 and 443.
			if rng.Float64() < 0.3 {
				host.FilteredPorts = map[int]bool{33434: true, 8080: true, 5060: true}
			}
			if err := net.AddHost(host); err != nil {
				return nil, err
			}
			p.Servers = append(p.Servers, &Server{
				Host:           host,
				Provider:       p.Name,
				Hostname:       fmt.Sprintf("%s.vpn-%s.example", claimed, p.Name),
				ClaimedCountry: claimed,
				TrueCountry:    trueCountry,
			})
		}
		f.Providers = append(f.Providers, p)
	}
	return f, nil
}

// pickHostingCountry draws a country by hosting weight.
func pickHostingCountry(rng *rand.Rand) string {
	var total float64
	codes := make([]string, 0, len(hostingWeight))
	for c := range hostingWeight {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		total += hostingWeight[c]
	}
	x := rng.Float64() * total
	for _, c := range codes {
		x -= hostingWeight[c]
		if x <= 0 {
			return c
		}
	}
	return codes[len(codes)-1]
}

// ResolveHostname returns every server behind a round-robin DNS name,
// sorted by host ID. All the providers use round-robin DNS for load
// balancing (§6), which is why the paper resolves all hostnames in
// advance and tests each IP separately.
func (f *Fleet) ResolveHostname(hostname string) []*Server {
	var out []*Server
	for _, s := range f.Servers() {
		if s.Hostname == hostname {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host.ID < out[j].Host.ID })
	return out
}

// Hostnames returns every distinct advertised hostname, sorted.
func (f *Fleet) Hostnames() []string {
	seen := map[string]bool{}
	for _, s := range f.Servers() {
		seen[s.Hostname] = true
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Servers returns every server in the fleet, ordered by provider then ID.
func (f *Fleet) Servers() []*Server {
	var out []*Server
	for _, p := range f.Providers {
		out = append(out, p.Servers...)
	}
	return out
}

// Provider returns the named provider, or nil.
func (f *Fleet) Provider(name string) *Provider {
	for _, p := range f.Providers {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Pingable returns the servers that answer direct pings (the ~10% used
// for the η calibration of Figure 13).
func (f *Fleet) Pingable() []*Server {
	var out []*Server
	for _, s := range f.Servers() {
		if !s.Host.BlocksICMP {
			out = append(out, s)
		}
	}
	return out
}

// DataCenterGroups clusters servers by (provider, AS, /24) — the
// Figure 16 metadata check: such a group is practically certain to be in
// one physical location.
func (f *Fleet) DataCenterGroups() map[string][]*Server {
	groups := map[string][]*Server{}
	for _, s := range f.Servers() {
		key := fmt.Sprintf("%s/AS%d/%s", s.Provider, s.Host.ASN, s.Host.Prefix24)
		groups[key] = append(groups[key], s)
	}
	return groups
}

// MarketEntry is one provider in the Figure 14 market overview.
type MarketEntry struct {
	Name      string
	Countries int  // number of claimed countries and dependencies
	Studied   bool // one of the seven providers in this study
}

// Market generates the 157-provider market of Figure 14: claim-breadth
// ranking with the studied providers placed at their observed ranks, and
// the long tail of modest competitors clustered on much the same popular
// countries.
func Market(rng *rand.Rand) []MarketEntry {
	out := make([]MarketEntry, 0, 157)
	for _, spec := range providerSpec {
		out = append(out, MarketEntry{Name: spec.name, Countries: spec.claimed, Studied: true})
	}
	for i := 0; i < 150; i++ {
		// Long-tailed distribution: most providers claim a handful of
		// countries, a few claim very many.
		n := 1 + int(60*rng.ExpFloat64()*0.35)
		if n > 175 {
			n = 175
		}
		out = append(out, MarketEntry{Name: fmt.Sprintf("other-%03d", i), Countries: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Countries != out[j].Countries {
			return out[i].Countries > out[j].Countries
		}
		return out[i].Name < out[j].Name
	})
	return out
}
