package proxy

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// startEchoServer returns the address of a server that echoes one line.
func startEchoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				line, err := bufio.NewReader(c).ReadString('\n')
				if err != nil {
					return
				}
				fmt.Fprintf(c, "echo: %s", line)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// startForwarder returns a running forwarder's address.
func startForwarder(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &Forwarder{DialTimeout: 5 * time.Second}
	go func() { _ = f.Serve(ln) }()
	t.Cleanup(func() { f.Close() })
	return ln.Addr().String()
}

func TestDialThroughSplicesTraffic(t *testing.T) {
	target := startEchoServer(t)
	proxyAddr := startForwarder(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := DialThrough(ctx, proxyAddr, target)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "hello through proxy\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if resp != "echo: hello through proxy\n" {
		t.Errorf("resp = %q", resp)
	}
}

func TestConnectRTTThrough(t *testing.T) {
	target := startEchoServer(t)
	proxyAddr := startForwarder(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rtt, err := ConnectRTTThrough(ctx, proxyAddr, target)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > 2*time.Second {
		t.Errorf("indirect RTT = %v", rtt)
	}
}

func TestSelfPingThroughProxy(t *testing.T) {
	// The §5.3 maneuver on a real network: the client measures itself
	// through the proxy by targeting its own listener.
	self := startEchoServer(t)
	proxyAddr := startForwarder(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rtt, err := ConnectRTTThrough(ctx, proxyAddr, self)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("self-ping RTT = %v", rtt)
	}
}

func TestProxyRefusesBadUpstream(t *testing.T) {
	proxyAddr := startForwarder(t)
	// A port that is closed.
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	dead := ln.Addr().String()
	_ = ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := DialThrough(ctx, proxyAddr, dead); err == nil {
		t.Error("want error for dead upstream")
	}
	if _, err := ConnectRTTThrough(ctx, proxyAddr, dead); err == nil {
		t.Error("want error for dead upstream")
	}
}

func TestProxyRejectsMalformedRequest(t *testing.T) {
	proxyAddr := startForwarder(t)
	conn, err := net.DialTimeout("tcp", proxyAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GARBAGE\n")
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Errorf("resp = %q", resp)
	}
}

func TestParseConnect(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"CONNECT 127.0.0.1:80\n", "127.0.0.1:80", true},
		{"CONNECT example.com:443\n", "example.com:443", true},
		{"CONNECT missing-port\n", "", false},
		{"GET / HTTP/1.1\n", "", false},
		{"\n", "", false},
	}
	for _, c := range cases {
		got, ok := parseConnect(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("parseConnect(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestForwarderCloseStopsServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &Forwarder{}
	errc := make(chan error, 1)
	go func() { errc <- f.Serve(ln) }()
	time.Sleep(50 * time.Millisecond)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Error("Serve returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Error("Serve did not stop after Close")
	}
	// Serving again after Close fails fast.
	if err := f.Serve(ln); err == nil {
		t.Error("Serve after Close should fail")
	}
}
