package proxy

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Forwarder is a minimal real TCP forwarding proxy, protocol:
//
//	client → proxy:  "CONNECT host:port\n"
//	proxy  → client: "OK\n"   (after the upstream TCP handshake) or
//	                 "ERR <reason>\n"
//
// after which bytes are spliced in both directions. It exists so the
// measurement pipeline can be exercised on a live network: the time from
// writing the CONNECT line to reading "OK" is exactly the paper's
// indirect round-trip time B (client↔proxy plus proxy↔target), and
// connecting back to one's own listener through it is the §5.3
// self-ping.
type Forwarder struct {
	// DialTimeout bounds upstream connection attempts (default 10s).
	DialTimeout time.Duration

	mu     sync.Mutex
	closed bool
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

func (f *Forwarder) dialTimeout() time.Duration {
	if f.DialTimeout <= 0 {
		return 10 * time.Second
	}
	return f.DialTimeout
}

// Serve accepts and handles connections on ln until Close or an accept
// error. It always returns a non-nil error; after Close it returns
// net.ErrClosed.
func (f *Forwarder) Serve(ln net.Listener) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return net.ErrClosed
	}
	f.ln = ln
	f.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			_ = conn.Close() // racing shutdown; the accept error is authoritative
			return net.ErrClosed
		}
		if f.conns == nil {
			f.conns = map[net.Conn]struct{}{}
		}
		f.conns[conn] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			f.handle(conn)
		}()
	}
}

// Close stops the forwarder: it closes the listener and every live
// proxied connection, then waits for the handler goroutines to drain.
// The listener and connections are snapshotted under the lock but
// closed outside it, so a slow network teardown never stalls Serve's
// accept-loop bookkeeping.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	f.closed = true
	ln := f.ln
	conns := make([]net.Conn, 0, len(f.conns))
	for c := range f.conns {
		//lint:allow maporder teardown closes every conn; order is irrelevant
		conns = append(conns, c)
	}
	f.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close() // unblocks the handler; its own deferred Close reports
	}
	f.wg.Wait()
	return err
}

// forget drops a finished connection from the live set.
func (f *Forwarder) forget(c net.Conn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

func (f *Forwarder) handle(client net.Conn) {
	defer f.forget(client)
	defer client.Close()
	_ = client.SetReadDeadline(time.Now().Add(f.dialTimeout()))
	line, err := bufio.NewReader(client).ReadString('\n')
	if err != nil {
		return
	}
	_ = client.SetReadDeadline(time.Time{})
	target, ok := parseConnect(line)
	if !ok {
		fmt.Fprintf(client, "ERR bad request\n")
		return
	}
	upstream, err := net.DialTimeout("tcp", target, f.dialTimeout())
	if err != nil {
		fmt.Fprintf(client, "ERR %s\n", err)
		return
	}
	defer upstream.Close()
	if _, err := io.WriteString(client, "OK\n"); err != nil {
		return
	}
	done := make(chan struct{}, 2)
	go splice(upstream, client, done)
	go splice(client, upstream, done)
	<-done
}

func parseConnect(line string) (string, bool) {
	line = strings.TrimSpace(line)
	const prefix = "CONNECT "
	if !strings.HasPrefix(line, prefix) {
		return "", false
	}
	target := strings.TrimSpace(strings.TrimPrefix(line, prefix))
	if _, _, err := net.SplitHostPort(target); err != nil {
		return "", false
	}
	return target, true
}

func splice(dst io.WriteCloser, src io.Reader, done chan<- struct{}) {
	_, _ = io.Copy(dst, src)
	_ = dst.Close()
	done <- struct{}{}
}

// ErrProxyRefused is returned when the proxy reports an upstream failure.
var ErrProxyRefused = errors.New("proxy: upstream connect failed")

// DialThrough connects to targetAddr through the forwarder at proxyAddr
// and returns the spliced connection after the proxy reports success.
func DialThrough(ctx context.Context, proxyAddr, targetAddr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", proxyAddr)
	if err != nil {
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if _, err := fmt.Fprintf(conn, "CONNECT %s\n", targetAddr); err != nil {
		_ = conn.Close() // surfacing the write error; close is best-effort
		return nil, err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		_ = conn.Close() // surfacing the read error; close is best-effort
		return nil, err
	}
	if !strings.HasPrefix(resp, "OK") {
		_ = conn.Close() // surfacing the refusal; close is best-effort
		return nil, fmt.Errorf("%w: %s", ErrProxyRefused, strings.TrimSpace(resp))
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}

// ConnectRTTThrough measures the indirect round-trip time to targetAddr
// through the proxy: the time from sending the CONNECT request to
// receiving the proxy's success response. This is the quantity the
// paper calls B (Figure 12); subtract η times the self-ping to recover
// the proxy↔target time.
func ConnectRTTThrough(ctx context.Context, proxyAddr, targetAddr string) (time.Duration, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", proxyAddr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	start := time.Now()
	if _, err := fmt.Fprintf(conn, "CONNECT %s\n", targetAddr); err != nil {
		return 0, err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if !strings.HasPrefix(resp, "OK") {
		return 0, fmt.Errorf("%w: %s", ErrProxyRefused, strings.TrimSpace(resp))
	}
	return elapsed, nil
}
