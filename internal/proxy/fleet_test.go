package proxy

import (
	"math/rand"
	"testing"

	"activegeo/internal/datacenter"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

func buildTestFleet(t testing.TB, total int) (*Fleet, *netsim.Network) {
	t.Helper()
	net := netsim.New(42)
	cfg := DefaultConfig()
	cfg.TotalServers = total
	f, err := BuildFleet(net, cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return f, net
}

func TestFleetScale(t *testing.T) {
	f, _ := buildTestFleet(t, 2269)
	n := len(f.Servers())
	if n < 2200 || n > 2340 {
		t.Errorf("fleet has %d servers, want ≈2269", n)
	}
	if len(f.Providers) != 7 {
		t.Errorf("providers = %d", len(f.Providers))
	}
}

func TestClaimBreadthOrdering(t *testing.T) {
	f, _ := buildTestFleet(t, 700)
	a := f.Provider("A")
	g := f.Provider("G")
	if a == nil || g == nil {
		t.Fatal("missing providers")
	}
	if len(a.Claims) <= len(g.Claims) {
		t.Errorf("A claims %d countries, G claims %d; A should be the broadest", len(a.Claims), len(g.Claims))
	}
	if len(a.Claims) < 150 {
		t.Errorf("A claims only %d countries; the paper's A claims all but seven sovereign states", len(a.Claims))
	}
	// Claims must be real countries.
	for _, p := range f.Providers {
		for _, c := range p.Claims {
			if worldmap.ByCode(c) == nil {
				t.Fatalf("%s claims unknown country %q", p.Name, c)
			}
		}
	}
}

func TestServersGroundTruthConsistent(t *testing.T) {
	f, _ := buildTestFleet(t, 700)
	for _, s := range f.Servers() {
		if s.Host.Country != s.TrueCountry {
			t.Fatalf("%s: host country %q ≠ true country %q", s.Host.ID, s.Host.Country, s.TrueCountry)
		}
		dc, ok := datacenter.ByID(s.Host.DataCenter)
		if !ok {
			t.Fatalf("%s: unknown data center %q", s.Host.ID, s.Host.DataCenter)
		}
		if dc.Country != s.TrueCountry {
			t.Fatalf("%s: DC in %q but true country %q", s.Host.ID, dc.Country, s.TrueCountry)
		}
		// The server's location must actually be in the true country
		// (within the cap atlas).
		if c := worldmap.ByCode(s.TrueCountry); !c.Contains(s.Host.Loc) {
			t.Errorf("%s: located %v outside %s", s.Host.ID, s.Host.Loc, s.TrueCountry)
		}
	}
}

func TestDishonestyConcentratesInHostingCountries(t *testing.T) {
	f, _ := buildTestFleet(t, 2269)
	falseCount := 0
	trueInHosting := 0
	for _, s := range f.Servers() {
		if s.ClaimedCountry != s.TrueCountry {
			falseCount++
			if hostingWeight[s.TrueCountry] > 0 {
				trueInHosting++
			}
		}
	}
	total := len(f.Servers())
	// Paper: at least a third of servers are not in the advertised
	// country (one third definite + part of the uncertain third).
	if frac := float64(falseCount) / float64(total); frac < 0.30 || frac < 0.25 {
		t.Errorf("false-claim fraction = %f, want ≥ 0.30", frac)
	}
	if trueInHosting != falseCount {
		t.Errorf("all dishonest servers should really sit in hosting countries: %d of %d", trueInHosting, falseCount)
	}
}

func TestICMPAndTracerouteFractions(t *testing.T) {
	f, _ := buildTestFleet(t, 2269)
	blocked, drop := 0, 0
	for _, s := range f.Servers() {
		if s.Host.BlocksICMP {
			blocked++
		}
		if s.Host.DropsTimeExceeded {
			drop++
		}
	}
	total := float64(len(f.Servers()))
	if frac := float64(blocked) / total; frac < 0.85 || frac > 0.95 {
		t.Errorf("ICMP-blocking fraction %f, want ≈0.90", frac)
	}
	if frac := float64(drop) / total; frac < 0.27 || frac > 0.40 {
		t.Errorf("time-exceeded-dropping fraction %f, want ≈0.33", frac)
	}
	pingable := len(f.Pingable())
	if pingable != len(f.Servers())-blocked {
		t.Errorf("Pingable() = %d, want %d", pingable, len(f.Servers())-blocked)
	}
}

func TestDataCenterGroups(t *testing.T) {
	f, _ := buildTestFleet(t, 700)
	groups := f.DataCenterGroups()
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	for key, servers := range groups {
		var first *Server
		for _, s := range servers {
			if first == nil {
				first = s
				continue
			}
			if s.Host.ASN != first.Host.ASN || s.Host.Prefix24 != first.Host.Prefix24 {
				t.Fatalf("group %s mixes AS/prefix", key)
			}
			if s.Host.DataCenter != first.Host.DataCenter {
				t.Fatalf("group %s mixes physical data centers", key)
			}
		}
	}
	// There must be at least one group of ≥ 5 servers (the Figure 16
	// AS63128-style cluster).
	big := 0
	for _, servers := range groups {
		if len(servers) >= 5 {
			big++
		}
	}
	if big == 0 {
		t.Error("no sizable same-DC group found")
	}
}

func TestMarket(t *testing.T) {
	m := Market(rand.New(rand.NewSource(1)))
	if len(m) != 157 {
		t.Fatalf("market size = %d", len(m))
	}
	studied := 0
	for i := 1; i < len(m); i++ {
		if m[i-1].Countries < m[i].Countries {
			t.Fatal("market not sorted by claim breadth")
		}
	}
	var aRank int
	for i, e := range m {
		if e.Studied {
			studied++
			if e.Name == "A" {
				aRank = i
			}
		}
	}
	if studied != 7 {
		t.Errorf("studied providers in market = %d", studied)
	}
	if aRank > 20 {
		t.Errorf("provider A ranked %d; should be among the broadest claimants", aRank)
	}
}

func TestResolveHostname(t *testing.T) {
	f, _ := buildTestFleet(t, 700)
	names := f.Hostnames()
	if len(names) == 0 {
		t.Fatal("no hostnames")
	}
	total := 0
	for _, name := range names {
		servers := f.ResolveHostname(name)
		if len(servers) == 0 {
			t.Fatalf("hostname %s resolves to nothing", name)
		}
		total += len(servers)
		claimed := servers[0].ClaimedCountry
		for _, s := range servers {
			if s.Hostname != name {
				t.Fatalf("wrong server for %s", name)
			}
			// One hostname = one advertised country (the name encodes it).
			if s.ClaimedCountry != claimed {
				t.Fatalf("hostname %s mixes claimed countries", name)
			}
		}
	}
	if total != len(f.Servers()) {
		t.Errorf("hostnames cover %d servers of %d", total, len(f.Servers()))
	}
	// Round-robin: at least one hostname has multiple IPs.
	multi := false
	for _, name := range names {
		if len(f.ResolveHostname(name)) > 1 {
			multi = true
			break
		}
	}
	if !multi {
		t.Error("no round-robin hostnames")
	}
	if f.ResolveHostname("no-such-name") != nil {
		t.Error("unknown hostname should resolve to nil")
	}
}

func TestBuildFleetValidation(t *testing.T) {
	net := netsim.New(1)
	if _, err := BuildFleet(net, Config{TotalServers: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("tiny fleet should fail")
	}
}

func TestFleetDeterministic(t *testing.T) {
	f1, _ := buildTestFleet(t, 300)
	f2, _ := buildTestFleet(t, 300)
	s1, s2 := f1.Servers(), f2.Servers()
	if len(s1) != len(s2) {
		t.Fatal("different sizes")
	}
	for i := range s1 {
		if s1[i].Host.ID != s2[i].Host.ID || s1[i].TrueCountry != s2[i].TrueCountry || s1[i].ClaimedCountry != s2[i].ClaimedCountry {
			t.Fatalf("server %d differs between identically seeded builds", i)
		}
	}
}
