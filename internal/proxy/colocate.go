package proxy

import (
	"math/rand"
	"sort"

	"activegeo/internal/netsim"
)

// CoLocationThresholdMs is the §8.1 heuristic: "some groups of proxies
// (including proxies claimed to be in separate countries) show less than
// 5 ms round-trip times among themselves, which practically guarantees
// they are on the same local network."
const CoLocationThresholdMs = 5.0

// CoLocate measures round-trip times between every pair of the given
// servers (through the network simulator) and clusters servers whose
// mutual RTT is below thresholdMs (CoLocationThresholdMs when 0) into
// groups, using single-linkage over the sub-threshold pairs. Groups of
// one are omitted. Each measurement takes the minimum of k samples.
func CoLocate(net *netsim.Network, servers []*Server, thresholdMs float64, k int, rng *rand.Rand) [][]*Server {
	if thresholdMs <= 0 {
		thresholdMs = CoLocationThresholdMs
	}
	if k < 1 {
		k = 3
	}
	n := len(servers)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if find(i) == find(j) {
				continue // already linked; skip the measurement
			}
			rtt, err := net.MinOfSamples(servers[i].Host.ID, servers[j].Host.ID, k, rng)
			if err != nil {
				continue
			}
			if rtt < thresholdMs {
				union(i, j)
			}
		}
	}

	byRoot := map[int][]*Server{}
	for i, s := range servers {
		r := find(i)
		byRoot[r] = append(byRoot[r], s)
	}
	var groups [][]*Server
	for _, g := range byRoot {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(a, b int) bool { return g[a].Host.ID < g[b].Host.ID })
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0].Host.ID < groups[b][0].Host.ID })
	return groups
}

// CrossCountryCoLocations returns, for each co-located group, the set of
// distinct *claimed* countries in it — the paper's smoking gun: proxies
// claimed to be in separate countries sharing a local network.
func CrossCountryCoLocations(groups [][]*Server) map[string][]string {
	out := map[string][]string{}
	for _, g := range groups {
		seen := map[string]bool{}
		for _, s := range g {
			seen[s.ClaimedCountry] = true
		}
		if len(seen) < 2 {
			continue
		}
		var claims []string
		for c := range seen {
			claims = append(claims, c)
		}
		sort.Strings(claims)
		out[string(g[0].Host.ID)] = claims
	}
	return out
}
