package proxy

import (
	"math/rand"
	"testing"
)

func TestCoLocateGroupsSameDataCenter(t *testing.T) {
	f, net := buildTestFleet(t, 700)
	// Use one provider's servers to keep the O(n²) mesh small.
	servers := f.Provider("A").Servers
	if len(servers) > 120 {
		servers = servers[:120]
	}
	rng := rand.New(rand.NewSource(4))
	groups := CoLocate(net, servers, 0, 3, rng)
	if len(groups) == 0 {
		t.Fatal("no co-located groups found")
	}
	// Every group must be physically one data center.
	for _, g := range groups {
		dc := g[0].Host.DataCenter
		for _, s := range g[1:] {
			if s.Host.DataCenter != dc {
				t.Fatalf("group mixes data centers %s and %s", dc, s.Host.DataCenter)
			}
		}
	}
	// And the grouping should recover most same-DC pairs: count servers
	// in DCs with ≥2 servers vs servers appearing in groups.
	perDC := map[string]int{}
	for _, s := range servers {
		perDC[s.Host.DataCenter]++
	}
	expectGrouped := 0
	for _, n := range perDC {
		if n >= 2 {
			expectGrouped += n
		}
	}
	grouped := 0
	for _, g := range groups {
		grouped += len(g)
	}
	if grouped < expectGrouped/2 {
		t.Errorf("grouped %d of %d expected same-DC servers", grouped, expectGrouped)
	}
}

func TestCrossCountryCoLocations(t *testing.T) {
	f, net := buildTestFleet(t, 700)
	servers := f.Provider("A").Servers
	if len(servers) > 120 {
		servers = servers[:120]
	}
	rng := rand.New(rand.NewSource(5))
	groups := CoLocate(net, servers, 0, 3, rng)
	cross := CrossCountryCoLocations(groups)
	// The paper's pilot observation: groups claimed in separate
	// countries sit on the same LAN. With provider A's honesty, such
	// groups must exist.
	if len(cross) == 0 {
		t.Error("no cross-country co-located groups; provider A should have them")
	}
	for key, claims := range cross {
		if len(claims) < 2 {
			t.Errorf("group %s has %d claimed countries, want ≥2", key, len(claims))
		}
	}
}

func TestCoLocateThresholdRespected(t *testing.T) {
	f, net := buildTestFleet(t, 700)
	servers := f.Provider("G").Servers
	if len(servers) > 40 {
		servers = servers[:40]
	}
	rng := rand.New(rand.NewSource(6))
	// An absurdly low threshold groups nothing.
	if groups := CoLocate(net, servers, 0.0001, 3, rng); len(groups) != 0 {
		t.Errorf("0.1 µs threshold produced %d groups", len(groups))
	}
}
