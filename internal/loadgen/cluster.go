package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"activegeo/internal/atlasd"
	"activegeo/internal/mathx"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

// The cluster runner drives clients through an atlasd.Coordinator —
// one server or a whole constellation — and records each client's
// *logical* transcript: a sha256 over the content of every successful
// call result, in issue order, at the coordination-API layer.
//
// The single-server Runner hashes raw HTTP traffic, which is the right
// proof when the topology is fixed. Across a constellation the raw
// traffic is topology-dependent by construction — failover re-issues
// requests to successors, hedges race duplicates, drains move routes —
// while the *results* must not be. So the cluster contract hashes what
// a campaign learns, not how it learned it:
//
//   - landmark lists: every field of every landmark, in served order;
//   - models: landmark, slope, intercept, pooled — but not the epoch
//     stamp, which says *when* the fleet last refreshed, not *what*
//     the model is (the fit is a pure function of the calibration
//     mesh, so a mid-run epoch advance refits to identical lines);
//   - reports: the exact samples uploaded and the acknowledgement.
//
// A multi-shard concurrent run through drains and epoch advances must
// hash byte-identical to the single-shard serial oracle — the property
// `benchaudit -mode constellation` and the chaos soak enforce.

// ClusterConfig shapes one cluster load-generation run.
type ClusterConfig struct {
	// Clients is the number of closed-loop clients (default 1).
	Clients int
	// Iterations is the number of two-phase campaigns per client
	// (default 1).
	Iterations int
	// SecondPhase is the phase-2 landmark count per campaign
	// (default 10).
	SecondPhase int
	// Concurrency bounds how many clients run at once; 0 means all.
	// Concurrency 1 is the serial oracle.
	Concurrency int
	// Seed derives every client's measurement-noise stream.
	Seed int64
	// SeqBase offsets every campaign's report sequence number:
	// campaign i uploads under SeqBase+i+1. Successive rounds of a
	// long soak use disjoint SeqBase ranges so their (client, seq)
	// ledger keys never collide.
	SeqBase int64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.SecondPhase < 1 {
		c.SecondPhase = 10
	}
	if c.Concurrency < 1 || c.Concurrency > c.Clients {
		c.Concurrency = c.Clients
	}
	return c
}

// ClusterRunner binds a cluster load run to a coordination plane and a
// measurement world.
type ClusterRunner struct {
	// Coordinator is the coordination plane — *atlasd.Client for one
	// server, *constellation.Client for a sharded fleet. It must be
	// safe for concurrent use.
	Coordinator atlasd.Coordinator
	// Tool measures RTTs in the simulated world.
	Tool measure.Tool
	// Hosts are the vantage points; client i measures from
	// Hosts[i%len(Hosts)].
	Hosts []netsim.HostID
	// Telemetry, when non-nil, receives per-op latency observations
	// under "loadgen.cluster.op_ms".
	Telemetry *telemetry.Collector
}

// Run executes one cluster load-generation run.
func (r *ClusterRunner) Run(ctx context.Context, cfg ClusterConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(r.Hosts) == 0 {
		return nil, errors.New("loadgen: no vantage hosts")
	}
	stats := make([]ClientStats, cfg.Clients)
	lats := make([][]float64, cfg.Clients)
	errs := make([]error, cfg.Clients)

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				stats[i], lats[i], errs[i] = r.runClusterClient(ctx, cfg, i)
			}
		}()
	}
	for i := 0; i < cfg.Clients; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wallMs := float64(time.Since(start).Microseconds()) / 1000

	res := &Result{PerClient: stats, WallMs: wallMs}
	var lat []float64
	for i, st := range stats {
		if errs[i] != nil {
			return nil, fmt.Errorf("loadgen: client %s: %w", st.Client, errs[i])
		}
		res.Campaigns += st.Campaigns
		res.Ops += st.Ops
		res.AcceptedReports += len(st.AcceptedSeqs)
		lat = append(lat, lats[i]...)
	}
	if wallMs > 0 {
		res.ThroughputOps = float64(res.Ops) / (wallMs / 1000)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		res.P50Ms = mathx.Quantile(lat, 0.50)
		res.P99Ms = mathx.Quantile(lat, 0.99)
	}
	return res, nil
}

// runClusterClient walks one client through its campaigns behind a
// transcript-hashing decorator.
func (r *ClusterRunner) runClusterClient(ctx context.Context, cfg ClusterConfig, i int) (ClientStats, []float64, error) {
	from := r.Hosts[i%len(r.Hosts)]
	tc := &transcriptCoordinator{inner: r.Coordinator, h: sha256.New(), tel: r.Telemetry}
	st := ClientStats{Client: string(from)}
	rng := rand.New(rand.NewSource(measure.StreamSeed(cfg.Seed, from)))
	clk := &netsim.Clock{}

	for it := 0; it < cfg.Iterations; it++ {
		seq := cfg.SeqBase + int64(it+1)
		res, err := atlasd.RemoteTwoPhase(ctx, tc, r.Tool, from, cfg.SecondPhase, seq, rng)
		if err != nil {
			var he *atlasd.HTTPError
			if errors.As(err, &he) && he.Status == http.StatusServiceUnavailable {
				st.DrainStopped = true
				break
			}
			return st, tc.latMs, err
		}
		st.Campaigns++
		for _, s := range res.Samples() {
			clk.Advance(s.RTTms)
		}
		if res.Accepted {
			st.AcceptedSeqs = append(st.AcceptedSeqs, res.Seq)
		}
	}
	st.Ops = tc.ops
	st.SimMs = clk.NowMs()
	st.TranscriptSHA = hex.EncodeToString(tc.h.Sum(nil))
	return st, tc.latMs, nil
}

// transcriptCoordinator decorates a Coordinator with the logical
// transcript hash: every successful result is appended to the hash in
// a canonical encoding, in issue order. It is used by exactly one
// client goroutine, so it needs no locking.
type transcriptCoordinator struct {
	inner atlasd.Coordinator
	h     hash.Hash
	ops   int
	latMs []float64
	tel   *telemetry.Collector
}

func (t *transcriptCoordinator) observe(start time.Time) {
	ms := float64(time.Since(start).Microseconds()) / 1000
	t.latMs = append(t.latMs, ms)
	t.tel.Observe("loadgen.cluster.op_ms", ms)
	t.ops++
}

// writeLandmarks appends a served landmark list to the transcript.
// %v prints the shortest exact float64 representation, so the encoding
// is canonical and lossless.
func (t *transcriptCoordinator) writeLandmarks(lms []atlasd.LandmarkInfo) {
	for _, lm := range lms {
		fmt.Fprintf(t.h, "lm %s %s %v %v %s %t\n", lm.ID, lm.Addr, lm.Lat, lm.Lon, lm.Continent, lm.Anchor)
	}
}

func (t *transcriptCoordinator) Phase1Landmarks(ctx context.Context, draw string) ([]atlasd.LandmarkInfo, error) {
	start := time.Now()
	lms, err := t.inner.Phase1Landmarks(ctx, draw)
	if err != nil {
		return nil, err
	}
	t.observe(start)
	fmt.Fprintf(t.h, "phase1 %s\n", draw)
	t.writeLandmarks(lms)
	return lms, nil
}

func (t *transcriptCoordinator) Phase2Landmarks(ctx context.Context, continent string, n int, draw string) ([]atlasd.LandmarkInfo, error) {
	start := time.Now()
	lms, err := t.inner.Phase2Landmarks(ctx, continent, n, draw)
	if err != nil {
		return nil, err
	}
	t.observe(start)
	fmt.Fprintf(t.h, "phase2 %s %d %s\n", continent, n, draw)
	t.writeLandmarks(lms)
	return lms, nil
}

func (t *transcriptCoordinator) Model(ctx context.Context, landmarkID string) (*atlasd.ModelInfo, error) {
	start := time.Now()
	m, err := t.inner.Model(ctx, landmarkID)
	if err != nil {
		return nil, err
	}
	t.observe(start)
	// The epoch stamp is deliberately excluded: it records *when* the
	// fleet last refreshed, and the determinism contract must hold
	// across a mid-run epoch advance (same mesh → same fit).
	fmt.Fprintf(t.h, "model %s %v %v %t\n", m.LandmarkID, m.SlopeMsPerKm, m.InterceptMs, m.Pooled)
	return m, nil
}

func (t *transcriptCoordinator) Upload(ctx context.Context, rep atlasd.Report) error {
	start := time.Now()
	if err := t.inner.Upload(ctx, rep); err != nil {
		return err
	}
	t.observe(start)
	fmt.Fprintf(t.h, "report %s %d %d\n", rep.Client, rep.Seq, len(rep.Samples))
	for _, s := range rep.Samples {
		fmt.Fprintf(t.h, "s %s %v\n", s.LandmarkID, s.RTTms)
	}
	return nil
}
