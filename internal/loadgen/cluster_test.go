package loadgen

import (
	"context"
	"crypto/sha256"
	"net/http"
	"testing"

	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/constellation"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

func newClusterRunner(cons *atlas.Constellation, hosts []netsim.HostID, co atlasd.Coordinator) *ClusterRunner {
	return &ClusterRunner{
		Coordinator: co,
		Tool:        &measure.CLITool{Net: cons.Net()},
		Hosts:       hosts,
	}
}

func newTestCluster(cons *atlas.Constellation, shards ...string) *constellation.Cluster {
	base := atlasd.Config{Seed: 47, Opts: cbg.Options{Slowline: true}}
	return constellation.NewCluster(cons, base, shards, 47, 16)
}

// TestClusterSerialMatchesSingleShard pins the oracle itself: a
// 1-shard serial run through the constellation client must match a
// 1-shard serial run through a plain atlasd client — the sharding
// layer adds routing, not answers.
func TestClusterSerialMatchesSingleShard(t *testing.T) {
	cons, hosts := world(t)
	ctx := context.Background()
	cfg := ClusterConfig{Clients: 8, Iterations: 2, SecondPhase: 6, Concurrency: 1, Seed: 47}

	one := newTestCluster(cons, "s0")
	oc := one.Client()
	oc.NoHedge = true
	oracle, err := newClusterRunner(cons, hosts[:8], oc).Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	srv := newServer(cons, 0)
	plainClient := &atlasd.Client{
		BaseURL:    "http://atlasd.inproc",
		HTTPClient: &http.Client{Transport: &opRecorder{hash: sha256.New(), handler: srv.Handler()}},
	}
	direct, err := newClusterRunner(cons, hosts[:8], plainClient).Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !TranscriptsIdentical(oracle, direct) {
		t.Fatal("1-shard constellation serial run diverged from a plain single server")
	}
}

// TestClusterConcurrentMatchesSerialOracle is the tentpole determinism
// claim in miniature: all clients driven concurrently across a 3-shard
// constellation (hedging on) produce transcripts byte-identical to the
// 1-shard serial oracle (hedging off).
func TestClusterConcurrentMatchesSerialOracle(t *testing.T) {
	cons, hosts := world(t)
	ctx := context.Background()

	oracleCluster := newTestCluster(cons, "s0")
	oc := oracleCluster.Client()
	oc.NoHedge = true
	cfgSerial := ClusterConfig{Clients: soakClients, Iterations: 2, SecondPhase: 8, Concurrency: 1, Seed: 47}
	oracle, err := newClusterRunner(cons, hosts, oc).Run(ctx, cfgSerial)
	if err != nil {
		t.Fatal(err)
	}

	fleet := newTestCluster(cons, "s0", "s1", "s2")
	cfg := cfgSerial
	cfg.Concurrency = 0 // all at once
	res, err := newClusterRunner(cons, hosts, fleet.Client()).Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !TranscriptsIdentical(oracle, res) {
		for i := range oracle.PerClient {
			if oracle.PerClient[i].TranscriptSHA != res.PerClient[i].TranscriptSHA {
				t.Errorf("client %s transcript diverged across the constellation",
					oracle.PerClient[i].Client)
			}
		}
		t.Fatal("3-shard concurrent run is not byte-identical to the 1-shard serial oracle")
	}
	if oracle.Campaigns != res.Campaigns || oracle.AcceptedReports != res.AcceptedReports {
		t.Errorf("oracle %d/%d vs fleet %d/%d campaigns/accepted",
			oracle.Campaigns, oracle.AcceptedReports, res.Campaigns, res.AcceptedReports)
	}
	for i := range oracle.PerClient {
		if oracle.PerClient[i].SimMs != res.PerClient[i].SimMs {
			t.Errorf("client %s sim time %v vs %v", oracle.PerClient[i].Client,
				oracle.PerClient[i].SimMs, res.PerClient[i].SimMs)
		}
	}

	// The partition did its job: the fitting work spread across shards
	// (not all on one), and the fleet as a whole fitted each landmark at
	// most once (plus per-shard pooled fallbacks).
	var fits int64
	fitting := 0
	for _, name := range fleet.Members() {
		m := fleet.Shard(name).Metrics()
		if m.ModelCache.Fits > 0 {
			fitting++
		}
		fits += m.ModelCache.Fits
	}
	if fitting < 2 {
		t.Errorf("only %d shard(s) fitted models; partition is not spreading", fitting)
	}
	if maxFits := int64(len(cons.All()) + len(fleet.Members())); fits > maxFits {
		t.Errorf("fleet fits = %d, want ≤ %d (each landmark fitted on one shard)", fits, maxFits)
	}
}

// TestClusterSeqBaseDisjointLedgers runs two rounds with disjoint
// SeqBase ranges and checks the merged ledger holds every receipt from
// both rounds exactly once — the chaos soak's round protocol.
func TestClusterSeqBaseDisjointLedgers(t *testing.T) {
	cons, hosts := world(t)
	ctx := context.Background()
	fleet := newTestCluster(cons, "s0", "s1")
	r := newClusterRunner(cons, hosts[:4], fleet.Client())

	var accepted int
	for round := 0; round < 2; round++ {
		cfg := ClusterConfig{Clients: 4, Iterations: 2, SecondPhase: 5, Seed: 47, SeqBase: int64(round * 100)}
		res, err := r.Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		accepted += res.AcceptedReports
	}
	merged := fleet.MergedLedger()
	if len(merged) != accepted {
		t.Fatalf("merged ledger holds %d keys, want %d receipts", len(merged), accepted)
	}
	for key, holders := range merged {
		for shard, n := range holders {
			if n != 1 {
				t.Errorf("shard %s holds %d copies of %s", shard, n, key)
			}
		}
	}
}
