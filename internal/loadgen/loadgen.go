// Package loadgen is a deterministic closed-loop load generator for
// the atlasd coordination service. It drives N concurrent
// RemoteTwoPhase clients against an in-process server and separates
// two kinds of truth:
//
//   - The workload is deterministic and runs on the sim clock: each
//     client draws its measurement noise from a per-client seeded
//     stream (measure.StreamSeed, DESIGN.md §6), its landmark sets are
//     pure functions of its (client, campaign) draw key, and its
//     simulated campaign time advances a netsim.Clock by the measured
//     RTTs. Per-client request/response transcripts are therefore
//     byte-identical at any concurrency — the property the soak tests
//     and `benchaudit -mode atlasd` assert.
//   - The service observations are wall-clock: per-operation latency
//     (p50/p99), throughput, and how many requests the server shed.
//     These describe the machine the run happened on and are reported,
//     never asserted deterministic.
//
// Clients run closed-loop (each issues its next request only after the
// previous one completes), so concurrency equals offered parallelism
// and shed load comes only from the server's admission bound.
package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"activegeo/internal/atlasd"
	"activegeo/internal/mathx"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

// Config shapes one load-generation run.
type Config struct {
	// Clients is the number of closed-loop clients (default 1).
	Clients int
	// Iterations is the number of two-phase campaigns per client
	// (default 1). Campaign i uploads under seq i+1.
	Iterations int
	// SecondPhase is the phase-2 landmark count per campaign
	// (default 10).
	SecondPhase int
	// Concurrency bounds how many clients run at once; 0 means all of
	// them. Concurrency 1 is the serial reference run.
	Concurrency int
	// Seed derives every client's measurement-noise stream.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.SecondPhase < 1 {
		c.SecondPhase = 10
	}
	if c.Concurrency < 1 || c.Concurrency > c.Clients {
		c.Concurrency = c.Clients
	}
	return c
}

// Runner binds a load run to a server and a measurement world.
type Runner struct {
	// Handler is the coordination server, driven in-process (no
	// sockets, no ports; latency measured around ServeHTTP).
	Handler http.Handler
	// Tool measures RTTs in the simulated world; it must be safe for
	// concurrent use (the stock tools are).
	Tool measure.Tool
	// Hosts are the vantage points; client i measures from
	// Hosts[i%len(Hosts)] and identifies itself by that host ID.
	Hosts []netsim.HostID
	// Telemetry, when non-nil, receives per-op latency observations
	// under "loadgen.op_ms".
	Telemetry *telemetry.Collector
}

// ClientStats is one client's deterministic record of a run.
type ClientStats struct {
	Client    string
	Campaigns int
	// Ops counts completed HTTP operations (2xx responses).
	Ops int
	// Shed counts 429 responses this client saw (and retried).
	Shed int
	// DrainStopped is true when the run ended because the server began
	// draining (503) rather than because iterations ran out.
	DrainStopped bool
	// AcceptedSeqs lists the report sequence numbers the server
	// acknowledged with 202 — the client-side half of the
	// exactly-once ledger check.
	AcceptedSeqs []int64
	// TranscriptSHA is the sha256 over every successful response
	// (method, path, status, body) in issue order. Identical across
	// runs at any concurrency.
	TranscriptSHA string
	// SimMs is the simulated campaign time: the client's netsim.Clock
	// advanced by every measured RTT.
	SimMs float64
}

// Result aggregates a run.
type Result struct {
	PerClient []ClientStats
	Campaigns int
	Ops       int
	Shed      int
	// AcceptedReports sums accepted uploads across clients.
	AcceptedReports int
	// Wall-clock observations (machine-dependent, never asserted):
	WallMs        float64
	ThroughputOps float64 // completed ops per wall second
	P50Ms         float64 // per-op service latency
	P99Ms         float64
}

// ShedRate is the fraction of issued requests the server shed.
func (r *Result) ShedRate() float64 {
	if r.Ops+r.Shed == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Ops+r.Shed)
}

// TranscriptsIdentical reports whether two runs produced byte-identical
// per-client transcripts — the determinism-under-concurrency check.
func TranscriptsIdentical(a, b *Result) bool {
	if len(a.PerClient) != len(b.PerClient) {
		return false
	}
	for i := range a.PerClient {
		if a.PerClient[i].TranscriptSHA != b.PerClient[i].TranscriptSHA {
			return false
		}
	}
	return true
}

// opRecorder observes one client's traffic at the transport layer.
type opRecorder struct {
	hash    hash.Hash
	ops     int
	shed    int
	latMs   []float64
	tel     *telemetry.Collector
	handler http.Handler
}

// RoundTrip serves the request in-process and records latency, shed
// responses, and the success transcript.
func (t *opRecorder) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	start := time.Now()
	t.handler.ServeHTTP(rec, req)
	latMs := float64(time.Since(start).Microseconds()) / 1000
	resp := rec.Result()
	resp.Request = req
	switch {
	case resp.StatusCode/100 == 2:
		t.ops++
		t.latMs = append(t.latMs, latMs)
		t.tel.Observe("loadgen.op_ms", latMs)
		body := rec.Body.Bytes()
		fmt.Fprintf(t.hash, "%s %s %d\n", req.Method, req.URL.RequestURI(), resp.StatusCode)
		t.hash.Write(body)
		resp.Body = io.NopCloser(bytes.NewReader(body))
	case resp.StatusCode == http.StatusTooManyRequests:
		t.shed++
	}
	return resp, nil
}

// Run executes one load-generation run. It returns an error only for
// infrastructure failures; a server that drains mid-run is a normal
// outcome, recorded per client in DrainStopped.
func (r *Runner) Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(r.Hosts) == 0 {
		return nil, errors.New("loadgen: no vantage hosts")
	}
	stats := make([]ClientStats, cfg.Clients)
	recorders := make([]*opRecorder, cfg.Clients)
	errs := make([]error, cfg.Clients)

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				st, rec, err := r.runClient(ctx, cfg, i)
				stats[i], recorders[i], errs[i] = st, rec, err
			}
		}()
	}
	for i := 0; i < cfg.Clients; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wallMs := float64(time.Since(start).Microseconds()) / 1000

	res := &Result{PerClient: stats, WallMs: wallMs}
	var lat []float64
	for i, st := range stats {
		if errs[i] != nil {
			return nil, fmt.Errorf("loadgen: client %s: %w", st.Client, errs[i])
		}
		res.Campaigns += st.Campaigns
		res.Ops += st.Ops
		res.Shed += st.Shed
		res.AcceptedReports += len(st.AcceptedSeqs)
		lat = append(lat, recorders[i].latMs...)
	}
	if wallMs > 0 {
		res.ThroughputOps = float64(res.Ops) / (wallMs / 1000)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		res.P50Ms = mathx.Quantile(lat, 0.50)
		res.P99Ms = mathx.Quantile(lat, 0.99)
	}
	return res, nil
}

// newClientRNG derives the client's measurement-noise stream from the
// run seed and the vantage host, the repo's per-entity stream pattern.
func newClientRNG(seed int64, from netsim.HostID) *rand.Rand {
	return rand.New(rand.NewSource(measure.StreamSeed(seed, from)))
}

// runClient walks one client through its campaigns.
func (r *Runner) runClient(ctx context.Context, cfg Config, i int) (ClientStats, *opRecorder, error) {
	from := r.Hosts[i%len(r.Hosts)]
	rec := &opRecorder{hash: sha256.New(), tel: r.Telemetry, handler: r.Handler}
	client := &atlasd.Client{
		BaseURL:    "http://atlasd.inproc",
		HTTPClient: &http.Client{Transport: rec},
	}
	st := ClientStats{Client: string(from)}
	// The per-client noise stream: a pure function of (seed, host), so
	// this client's measured RTTs — and with them its uploads and its
	// whole transcript — do not depend on what other clients do.
	rng := newClientRNG(cfg.Seed, from)
	clk := &netsim.Clock{}

	for it := 0; it < cfg.Iterations; it++ {
		seq := int64(it + 1)
		res, err := atlasd.RemoteTwoPhase(ctx, client, r.Tool, from, cfg.SecondPhase, seq, rng)
		if err != nil {
			var he *atlasd.HTTPError
			if errors.As(err, &he) && he.Status == http.StatusServiceUnavailable {
				st.DrainStopped = true
				break
			}
			return st, rec, err
		}
		st.Campaigns++
		for _, s := range res.Samples() {
			clk.Advance(s.RTTms)
		}
		if res.Accepted {
			st.AcceptedSeqs = append(st.AcceptedSeqs, res.Seq)
		}
	}
	st.Ops = rec.ops
	st.Shed = rec.shed
	st.SimMs = clk.NowMs()
	st.TranscriptSHA = hex.EncodeToString(rec.hash.Sum(nil))
	return st, rec, nil
}
