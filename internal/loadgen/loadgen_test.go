package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"activegeo/internal/atlas"
	"activegeo/internal/atlasd"
	"activegeo/internal/cbg"
	"activegeo/internal/geo"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/telemetry"
)

const soakClients = 32

var (
	fixOnce  sync.Once
	fixCons  *atlas.Constellation
	fixHosts []netsim.HostID
)

// world builds one simulated constellation plus soakClients vantage
// hosts scattered over the globe, shared by every test.
func world(t *testing.T) (*atlas.Constellation, []netsim.HostID) {
	t.Helper()
	fixOnce.Do(func() {
		net := netsim.New(47)
		rng := rand.New(rand.NewSource(47))
		cons, err := atlas.Build(net, atlas.Config{Anchors: 40, Probes: 30, SamplesPerPair: 3}, rng)
		if err != nil {
			panic(err)
		}
		for i := 0; i < soakClients; i++ {
			id := netsim.HostID(fmt.Sprintf("lg-client-%04d", i))
			loc := geo.Point{Lat: -55 + 120*rng.Float64(), Lon: -175 + 350*rng.Float64()}
			if err := net.AddHost(&netsim.Host{ID: id, Loc: loc}); err != nil {
				panic(err)
			}
			fixHosts = append(fixHosts, id)
		}
		fixCons = cons
	})
	return fixCons, fixHosts
}

func newRunner(srv *atlasd.Server, cons *atlas.Constellation, hosts []netsim.HostID, tel *telemetry.Collector) *Runner {
	return &Runner{
		Handler:   srv.Handler(),
		Tool:      &measure.CLITool{Net: cons.Net()},
		Hosts:     hosts,
		Telemetry: tel,
	}
}

func newServer(cons *atlas.Constellation, maxInflight int) *atlasd.Server {
	return atlasd.NewServer(cons, atlasd.Config{
		Seed:        47,
		Opts:        cbg.Options{Slowline: true},
		MaxInflight: maxInflight,
	})
}

func TestRunSmoke(t *testing.T) {
	cons, hosts := world(t)
	srv := newServer(cons, 0)
	tel := telemetry.New()
	r := newRunner(srv, cons, hosts[:4], tel)
	res, err := r.Run(context.Background(), Config{Clients: 4, Iterations: 2, SecondPhase: 5, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaigns != 8 {
		t.Errorf("campaigns = %d, want 8", res.Campaigns)
	}
	if res.AcceptedReports != 8 {
		t.Errorf("accepted = %d, want 8", res.AcceptedReports)
	}
	if res.Ops == 0 || res.ThroughputOps <= 0 {
		t.Errorf("ops = %d, throughput = %v", res.Ops, res.ThroughputOps)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Errorf("latency quantiles p50=%v p99=%v", res.P50Ms, res.P99Ms)
	}
	for _, st := range res.PerClient {
		if st.SimMs <= 0 {
			t.Errorf("client %s: sim clock never advanced", st.Client)
		}
		if st.TranscriptSHA == "" {
			t.Errorf("client %s: empty transcript", st.Client)
		}
		if len(st.AcceptedSeqs) != 2 {
			t.Errorf("client %s: accepted seqs %v", st.Client, st.AcceptedSeqs)
		}
	}
	if d, ok := tel.Distribution("loadgen.op_ms"); !ok || d.Count != int64(res.Ops) {
		t.Errorf("telemetry distribution missing or short: %+v", d)
	}
	// All campaign reports were ledgered, none twice.
	assertLedgerExactlyOnce(t, srv, res)
}

// assertLedgerExactlyOnce cross-checks client receipts against the
// server ledger: every accepted (client, seq) appears exactly once,
// and nothing else does.
func assertLedgerExactlyOnce(t *testing.T, srv *atlasd.Server, res *Result) {
	t.Helper()
	ledger := map[string]int{}
	for _, rep := range srv.Reports() {
		ledger[fmt.Sprintf("%s|%d", rep.Client, rep.Seq)]++
	}
	accepted := 0
	for _, st := range res.PerClient {
		for _, seq := range st.AcceptedSeqs {
			accepted++
			key := fmt.Sprintf("%s|%d", st.Client, seq)
			if n := ledger[key]; n != 1 {
				t.Errorf("report %s ledgered %d times, want exactly 1", key, n)
			}
			delete(ledger, key)
		}
	}
	for key, n := range ledger {
		t.Errorf("ledger holds %d unaccounted copies of %s", n, key)
	}
	if m := srv.Metrics(); m.ReportsLedgered != accepted {
		t.Errorf("ledger size %d != accepted receipts %d", m.ReportsLedgered, accepted)
	}
}

func TestTranscriptsDifferAcrossClients(t *testing.T) {
	cons, hosts := world(t)
	srv := newServer(cons, 0)
	r := newRunner(srv, cons, hosts[:2], nil)
	res, err := r.Run(context.Background(), Config{Clients: 2, SecondPhase: 5, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerClient[0].TranscriptSHA == res.PerClient[1].TranscriptSHA {
		t.Error("distinct clients produced identical transcripts")
	}
}

// TestSoakConcurrentMatchesSerial is the §4.1 service determinism
// soak: 32 clients walk the full phase1→phase2→model→report loop
// against one server, once serially and once fully concurrently, and
// every client's transcript must be byte-identical between the runs.
// `make soak` runs it under the race detector.
func TestSoakConcurrentMatchesSerial(t *testing.T) {
	cons, hosts := world(t)
	ctx := context.Background()
	cfg := Config{Clients: soakClients, Iterations: 2, SecondPhase: 8, Seed: 47}

	serialSrv := newServer(cons, 0)
	cfgSerial := cfg
	cfgSerial.Concurrency = 1
	serial, err := newRunner(serialSrv, cons, hosts, nil).Run(ctx, cfgSerial)
	if err != nil {
		t.Fatal(err)
	}

	concSrv := newServer(cons, 0)
	conc, err := newRunner(concSrv, cons, hosts, nil).Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !TranscriptsIdentical(serial, conc) {
		for i := range serial.PerClient {
			if serial.PerClient[i].TranscriptSHA != conc.PerClient[i].TranscriptSHA {
				t.Errorf("client %s transcript diverged under concurrency",
					serial.PerClient[i].Client)
			}
		}
		t.Fatal("concurrent run is not byte-identical to the serial run")
	}
	if serial.Campaigns != conc.Campaigns || serial.AcceptedReports != conc.AcceptedReports {
		t.Errorf("serial %d/%d vs concurrent %d/%d campaigns/accepted",
			serial.Campaigns, serial.AcceptedReports, conc.Campaigns, conc.AcceptedReports)
	}
	for i := range serial.PerClient {
		if serial.PerClient[i].SimMs != conc.PerClient[i].SimMs {
			t.Errorf("client %s sim time %v vs %v", serial.PerClient[i].Client,
				serial.PerClient[i].SimMs, conc.PerClient[i].SimMs)
		}
	}
	assertLedgerExactlyOnce(t, serialSrv, serial)
	assertLedgerExactlyOnce(t, concSrv, conc)

	// The model cache coalesced: one fit per requested landmark (plus
	// the pooled fallback), not one per request.
	stats := concSrv.Metrics().ModelCache
	maxFits := int64(len(cons.All()) + 1)
	if stats.Fits > maxFits {
		t.Errorf("fits = %d, want ≤ %d (one per landmark per epoch)", stats.Fits, maxFits)
	}
	if stats.Hits == 0 {
		t.Error("cache never hit across 32 clients")
	}
}

// TestSoakGracefulShutdownExactlyOnce drains the server mid-soak and
// proves no accepted report is lost and none is duplicated: the ledger
// equals the set of client-side 202 receipts exactly.
func TestSoakGracefulShutdownExactlyOnce(t *testing.T) {
	cons, hosts := world(t)
	// A small admission bound so the soak also exercises shed/retry
	// while the shutdown races the in-flight batches.
	srv := newServer(cons, 8)
	r := newRunner(srv, cons, hosts, nil)

	resc := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := r.Run(context.Background(), Config{
			Clients: soakClients, Iterations: 50, SecondPhase: 6, Seed: 47,
		})
		resc <- res
		errc <- err
	}()

	// Let the soak get going, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Metrics().ReportsLedgered < soakClients {
		if time.Now().After(deadline) {
			t.Fatal("soak never ledgered a first round of reports")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	res := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	stopped := 0
	for _, st := range res.PerClient {
		if st.DrainStopped {
			stopped++
		}
	}
	if stopped == 0 {
		t.Error("no client observed the drain; shutdown happened too late to test anything")
	}
	if res.AcceptedReports == 0 {
		t.Fatal("no reports accepted before shutdown")
	}
	assertLedgerExactlyOnce(t, srv, res)
}
