// Package assess implements the paper's §6 claim-assessment pipeline:
// classifying each proxy's advertised country as credible, uncertain, or
// false from its CBG++ prediction region; refining uncertain verdicts
// with data-center locations (Figure 15) and shared-AS//24 metadata
// (Figure 16); the continent-level analysis; and the aggregate honesty
// statistics behind Figures 17–19 and the confusion matrices of
// Figures 22–23.
package assess

import (
	"sort"

	"activegeo/internal/datacenter"
	"activegeo/internal/grid"
	"activegeo/internal/worldmap"
)

// Verdict classifies one country claim.
type Verdict int

// Verdicts, in the paper's vocabulary: a claim is false if the predicted
// region does not cover any part of the claimed country, credible if the
// region is entirely within it, and uncertain when the region covers the
// claimed country and others.
const (
	Credible Verdict = iota
	Uncertain
	False
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Credible:
		return "credible"
	case Uncertain:
		return "uncertain"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// Classify applies the paper's region-vs-claim rule.
func Classify(mask *worldmap.Mask, region *grid.Region, claimed string) Verdict {
	if region == nil || region.Empty() {
		return Uncertain // no usable prediction: cannot falsify
	}
	if !mask.Overlaps(region, claimed) {
		return False
	}
	if mask.Within(region, claimed) {
		return Credible
	}
	return Uncertain
}

// ContinentVerdict classifies the claim at continent granularity: does
// the region touch any country on the claimed country's continent?
func ContinentVerdict(mask *worldmap.Mask, region *grid.Region, claimed string) Verdict {
	c := worldmap.ByCode(claimed)
	if c == nil || region == nil || region.Empty() {
		return Uncertain
	}
	conts := mask.ContinentsOverlapping(region)
	touches := false
	for _, cont := range conts {
		if cont == c.Continent {
			touches = true
			break
		}
	}
	if !touches {
		return False
	}
	if len(conts) == 1 {
		return Credible
	}
	return Uncertain
}

// DisambiguateByDataCenters applies the Figure 15 refinement to an
// uncertain verdict: restrict the candidate countries to those with a
// known data center inside the region. If the claimed country is not
// among them, the claim becomes false; if it is the only one, credible.
func DisambiguateByDataCenters(region *grid.Region, claimed string, verdict Verdict) Verdict {
	if verdict != Uncertain || region == nil || region.Empty() {
		return verdict
	}
	withDC := datacenter.CountriesWithDCInRegion(region)
	if len(withDC) == 0 {
		return verdict
	}
	found := false
	for _, c := range withDC {
		if c == claimed {
			found = true
			break
		}
	}
	if !found {
		return False
	}
	if len(withDC) == 1 {
		return Credible
	}
	return Uncertain
}

// Result is the full assessment of one server's claim.
type Result struct {
	ServerID       string
	Provider       string
	ClaimedCountry string
	Region         *grid.Region

	// VerdictRaw is the pure region-vs-claim verdict; Verdict includes
	// the data-center and metadata disambiguation steps.
	VerdictRaw Verdict
	Verdict    Verdict

	// ContVerdict is the continent-level verdict (after disambiguation
	// the continent verdict of a reclassified claim follows suit).
	ContVerdict Verdict

	// ProbableCountry is the candidate country owning the largest share
	// of the region (used for the Figure 17 "probable country" bars and
	// the Figures 22–23 confusion matrices).
	ProbableCountry string
	// Candidates is every country the region overlaps, sorted.
	Candidates []string

	// ManipulationSuspected is the adversary-detection verdict dimension:
	// the measurement pattern of this server looks manipulated (decoy
	// rewrite, selective inflation/deflation or a constant shift). It is
	// orthogonal to the claim verdict — a manipulated server's claim can
	// still be classified, but the classification shouldn't be trusted.
	// Only set when the detection layer runs (the adversary plan is
	// armed); plain audits leave all three fields zero.
	ManipulationSuspected bool
	// ManipulationScore is the strongest detector's signal-to-threshold
	// ratio (>1 means suspected).
	ManipulationScore float64
	// ManipulationReasons names the tripped detectors in canonical order.
	ManipulationReasons []string
}

// Assess produces the raw (pre-metadata) assessment for one server.
func Assess(mask *worldmap.Mask, region *grid.Region, serverID, provider, claimed string) *Result {
	r := &Result{
		ServerID:       serverID,
		Provider:       provider,
		ClaimedCountry: claimed,
		Region:         region,
	}
	r.VerdictRaw = Classify(mask, region, claimed)
	r.Verdict = DisambiguateByDataCenters(region, claimed, r.VerdictRaw)
	r.ContVerdict = ContinentVerdict(mask, region, claimed)
	if region != nil && !region.Empty() {
		r.Candidates = mask.CountriesOverlapping(region)
		r.ProbableCountry = probableCountry(mask, region)
	}
	return r
}

// probableCountry returns the country owning the largest area share of
// the region.
func probableCountry(mask *worldmap.Mask, region *grid.Region) string {
	areas := map[string]float64{}
	g := region.Grid()
	region.Each(func(i int) {
		if code := mask.CountryOfCell(i); code != "" {
			areas[code] += g.CellArea(i)
		}
	})
	best, bestArea := "", -1.0
	codes := make([]string, 0, len(areas))
	for c := range areas {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		if areas[c] > bestArea {
			best, bestArea = c, areas[c]
		}
	}
	return best
}

// DisambiguateGroup applies the Figure 16 metadata refinement to a group
// of servers known (by shared provider, AS and /24) to be in one
// physical location: if some single country is covered by every region
// in the group, all group members are ascribed to the intersection —
// each member's verdict is re-evaluated against the countries common to
// all regions.
func DisambiguateGroup(group []*Result) {
	if len(group) < 2 {
		return
	}
	// Countries covered by every region in the group.
	common := map[string]int{}
	usable := 0
	for _, r := range group {
		if r.Region == nil || r.Region.Empty() {
			continue
		}
		usable++
		for _, c := range r.Candidates {
			common[c]++
		}
	}
	if usable < 2 {
		return
	}
	var shared []string
	for c, n := range common {
		if n == usable {
			shared = append(shared, c)
		}
	}
	if len(shared) == 0 {
		return
	}
	sort.Strings(shared)
	for _, r := range group {
		if r.Region == nil || r.Region.Empty() || r.Verdict != Uncertain {
			continue
		}
		claimedShared := false
		for _, c := range shared {
			if c == r.ClaimedCountry {
				claimedShared = true
				break
			}
		}
		switch {
		case !claimedShared:
			// The group's common ground excludes the claim.
			r.Verdict = False
		case len(shared) == 1:
			r.Verdict = Credible
		}
		if len(shared) >= 1 {
			r.ProbableCountry = shared[0]
		}
	}
}
