package assess

import (
	"sync"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
	"activegeo/internal/worldmap"
)

var (
	maskOnce sync.Once
	gridFix  *grid.Grid
	maskFix  *worldmap.Mask
)

func fixture(t testing.TB) (*grid.Grid, *worldmap.Mask) {
	t.Helper()
	maskOnce.Do(func() {
		gridFix = grid.New(1.5)
		maskFix = worldmap.NewMask(gridFix)
	})
	return gridFix, maskFix
}

// regionAround builds a land-clipped cap region.
func regionAround(g *grid.Grid, m *worldmap.Mask, p geo.Point, radiusKm float64) *grid.Region {
	r := g.CapRegion(geo.Cap{Center: p, RadiusKm: radiusKm})
	land := r.Clone()
	land.IntersectWith(m.LandRef())
	if land.Empty() {
		return r
	}
	return land
}

func TestClassifyCredible(t *testing.T) {
	g, m := fixture(t)
	berlin := regionAround(g, m, geo.Point{Lat: 52.52, Lon: 13.405}, 120)
	if v := Classify(m, berlin, "de"); v != Credible {
		t.Errorf("Berlin region vs de = %v", v)
	}
}

func TestClassifyFalse(t *testing.T) {
	g, m := fixture(t)
	berlin := regionAround(g, m, geo.Point{Lat: 52.52, Lon: 13.405}, 120)
	if v := Classify(m, berlin, "kp"); v != False {
		t.Errorf("Berlin region vs North Korea = %v", v)
	}
}

func TestClassifyUncertain(t *testing.T) {
	g, m := fixture(t)
	benelux := regionAround(g, m, geo.Point{Lat: 50.8, Lon: 4.4}, 450)
	if v := Classify(m, benelux, "be"); v != Uncertain {
		t.Errorf("Benelux-scale region vs be = %v", v)
	}
	// Empty region → uncertain.
	if v := Classify(m, g.NewRegion(), "de"); v != Uncertain {
		t.Errorf("empty region = %v", v)
	}
}

func TestContinentVerdict(t *testing.T) {
	g, m := fixture(t)
	benelux := regionAround(g, m, geo.Point{Lat: 50.8, Lon: 4.4}, 450)
	if v := ContinentVerdict(m, benelux, "kp"); v != False {
		t.Errorf("European region vs Asian claim = %v", v)
	}
	if v := ContinentVerdict(m, benelux, "pl"); v == False {
		t.Errorf("European region vs European claim = %v", v)
	}
}

func TestDisambiguateByDataCenters(t *testing.T) {
	g, m := fixture(t)
	// The Figure 15 scenario transplanted: a region covering Chile and
	// Argentina's border area. Data centers exist in Santiago but not in
	// the Argentine part of the region.
	r := regionAround(g, m, geo.Point{Lat: -33.45, Lon: -70.0}, 350)
	if v := Classify(m, r, "ar"); v != Uncertain {
		t.Skipf("region not uncertain (got %v); geometry too coarse for this fixture", v)
	}
	after := DisambiguateByDataCenters(r, "ar", Uncertain)
	if after != False {
		t.Errorf("Argentina claim with only Chilean DCs in region = %v, want false", after)
	}
	afterCl := DisambiguateByDataCenters(r, "cl", Uncertain)
	if afterCl != Credible {
		t.Errorf("Chile claim with only Chilean DCs = %v, want credible", afterCl)
	}
	// Non-uncertain verdicts pass through untouched.
	if DisambiguateByDataCenters(r, "ar", False) != False {
		t.Error("false must stay false")
	}
}

func TestAssessEndToEnd(t *testing.T) {
	g, m := fixture(t)
	berlin := regionAround(g, m, geo.Point{Lat: 52.52, Lon: 13.405}, 120)
	r := Assess(m, berlin, "srv1", "A", "de")
	if r.Verdict != Credible || r.VerdictRaw != Credible {
		t.Errorf("verdicts: %v / %v", r.VerdictRaw, r.Verdict)
	}
	if r.ProbableCountry != "de" {
		t.Errorf("probable country %q", r.ProbableCountry)
	}
	if len(r.Candidates) == 0 {
		t.Error("no candidates")
	}
}

func TestDisambiguateGroup(t *testing.T) {
	g, m := fixture(t)
	// Figure 16: a group of servers in one Toronto data center; regions
	// straddle the US-Canada border but all cover part of Canada.
	toronto := geo.Point{Lat: 43.65, Lon: -79.38}
	mk := func(radius float64, claimed string) *Result {
		return Assess(m, regionAround(g, m, toronto, radius), "s", "B", claimed)
	}
	group := []*Result{mk(300, "ca"), mk(500, "ca"), mk(420, "us"), mk(380, "ca")}
	// Pre-state: regions of 300+ km around Toronto cover both countries.
	for i, r := range group {
		if r.VerdictRaw != Uncertain {
			t.Skipf("member %d not uncertain (%v); fixture geometry too coarse", i, r.VerdictRaw)
		}
	}
	DisambiguateGroup(group)
	// The common intersection around Toronto is Canadian (plus US): both
	// countries are common, so claims stay; but if only Canada were
	// common, us claims would flip. Directly test the sharper scenario:
	near := []*Result{mk(120, "ca"), mk(150, "us")}
	if near[0].VerdictRaw == Uncertain || near[1].VerdictRaw == Uncertain {
		DisambiguateGroup(near)
	}
	// Construct the canonical case manually: two regions whose common
	// candidates are only Canada.
	a := Assess(m, regionAround(g, m, geo.Point{Lat: 45.42, Lon: -75.70}, 140), "x", "B", "us") // Ottawa
	b := Assess(m, regionAround(g, m, toronto, 450), "y", "B", "us")
	if a.VerdictRaw == False {
		// Ottawa region doesn't touch the US at all: already false.
		if a.Verdict != False {
			t.Errorf("expected false, got %v", a.Verdict)
		}
	}
	grp := []*Result{a, b}
	DisambiguateGroup(grp)
	if b.Verdict == Uncertain {
		// b's candidates include both; common set is a's candidates ∩
		// b's. If the intersection excludes "us", b must have flipped.
		common := intersect(a.Candidates, b.Candidates)
		hasUS := false
		for _, c := range common {
			if c == "us" {
				hasUS = true
			}
		}
		if !hasUS && len(common) > 0 {
			t.Errorf("group sharing only Canada left a us claim uncertain")
		}
	}
}

func intersect(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	var out []string
	for _, x := range b {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestDisambiguateGroupDirect(t *testing.T) {
	g, m := fixture(t)
	// Construct the Figure 16 situation synthetically: three members of
	// one AS//24 group. Their regions all cover Canada; only some also
	// cross into the US. The common ground is Canada alone, so the
	// us-claiming member flips to false and ca members to credible.
	ottawa := geo.Point{Lat: 45.42, Lon: -75.70}
	toronto := geo.Point{Lat: 43.65, Lon: -79.38}

	caOnly := regionAround(g, m, ottawa, 150) // within Canada
	crossBorder := regionAround(g, m, toronto, 400)

	mk := func(region *grid.Region, claimed string) *Result {
		return Assess(m, region, "s", "B", claimed)
	}
	a := mk(caOnly, "ca")
	b := mk(crossBorder, "ca")
	c := mk(crossBorder, "us")
	if a.VerdictRaw != Credible {
		t.Skipf("fixture geometry: Ottawa region %v", a.VerdictRaw)
	}
	// Force the uncertain starting state for the cross-border members so
	// the group logic (not the DC disambiguator) is under test.
	b.Verdict, c.Verdict = Uncertain, Uncertain

	DisambiguateGroup([]*Result{a, b, c})
	common := intersect(a.Candidates, intersect(b.Candidates, c.Candidates))
	if len(common) == 1 && common[0] == "ca" {
		if b.Verdict != Credible {
			t.Errorf("ca claim in a Canada-only group = %v", b.Verdict)
		}
		if c.Verdict != False {
			t.Errorf("us claim in a Canada-only group = %v", c.Verdict)
		}
		if b.ProbableCountry != "ca" || c.ProbableCountry != "ca" {
			t.Errorf("probable countries %q/%q", b.ProbableCountry, c.ProbableCountry)
		}
	} else {
		// Even if the fixture's common set is wider, the group pass must
		// never *introduce* uncertainty or flip non-uncertain verdicts.
		if a.Verdict != Credible {
			t.Errorf("credible member mutated to %v", a.Verdict)
		}
	}

	// Degenerate inputs are no-ops.
	solo := mk(caOnly, "ca")
	DisambiguateGroup([]*Result{solo})
	empty1 := &Result{Verdict: Uncertain}
	empty2 := &Result{Verdict: Uncertain}
	DisambiguateGroup([]*Result{empty1, empty2})
	if empty1.Verdict != Uncertain {
		t.Error("empty-region group members must not change")
	}
}

func TestTabulate(t *testing.T) {
	results := []*Result{
		{Verdict: Credible},
		{Verdict: Uncertain, ContVerdict: Credible},
		{Verdict: Uncertain, ContVerdict: False},
		{Verdict: False, ContVerdict: False},
		{Verdict: False, ContVerdict: Uncertain},
	}
	tl := Tabulate(results)
	if tl.Credible != 1 || tl.Uncertain != 2 || tl.False != 2 {
		t.Errorf("tally %+v", tl)
	}
	if tl.FalseOffContinent != 1 {
		t.Errorf("false off-continent = %d", tl.FalseOffContinent)
	}
	if tl.UncertainSameCont != 1 {
		t.Errorf("uncertain same-continent = %d", tl.UncertainSameCont)
	}
	if tl.Total() != 5 {
		t.Errorf("total = %d", tl.Total())
	}
}

func TestCountryBreakdown(t *testing.T) {
	results := []*Result{
		{ClaimedCountry: "us"}, {ClaimedCountry: "us"}, {ClaimedCountry: "de"},
	}
	bars := CountryBreakdown(results, func(r *Result) string { return r.ClaimedCountry })
	if len(bars) != 2 || bars[0].Country != "us" || bars[0].Count != 2 {
		t.Errorf("bars %v", bars)
	}
}

func TestHonestyMatrix(t *testing.T) {
	results := []*Result{
		{Provider: "A", ClaimedCountry: "us", Verdict: Credible},
		{Provider: "A", ClaimedCountry: "us", Verdict: False},
		{Provider: "A", ClaimedCountry: "kp", Verdict: False},
	}
	cells := HonestyMatrix(results)
	if len(cells) != 2 {
		t.Fatalf("cells %v", cells)
	}
	var us HonestyCell
	for _, c := range cells {
		if c.Country == "us" {
			us = c
		}
	}
	if us.Claimed != 2 || us.Backed != 1 || us.Credible != 1 {
		t.Errorf("us cell %+v", us)
	}
	if h := us.Honesty(); h != 0.5 {
		t.Errorf("honesty %f", h)
	}
	if (HonestyCell{}).Honesty() != 0 {
		t.Error("empty cell honesty should be 0")
	}
}

func TestAgreement(t *testing.T) {
	results := []*Result{
		{Provider: "A", Verdict: Credible},
		{Provider: "A", Verdict: Uncertain},
		{Provider: "A", Verdict: False},
		{Provider: "B", Verdict: Credible},
	}
	ag := Agreement(results)
	if len(ag) != 2 {
		t.Fatalf("agreement %v", ag)
	}
	a := ag[0]
	if a.Provider != "A" {
		t.Fatalf("order %v", ag)
	}
	if a.Generous < 0.66 || a.Generous > 0.67 {
		t.Errorf("generous %f", a.Generous)
	}
	if a.Strict < 0.33 || a.Strict > 0.34 {
		t.Errorf("strict %f", a.Strict)
	}
}

func TestConfusionMatrix(t *testing.T) {
	results := []*Result{
		{Candidates: []string{"be", "de", "nl"}},
		{Candidates: []string{"be", "nl"}},
		{Candidates: []string{"us"}}, // single candidate: ignored
	}
	m := ConfusionMatrix(results, func(c string) string { return c })
	if m[[2]string{"be", "nl"}] != 2 {
		t.Errorf("be-nl = %d", m[[2]string{"be", "nl"}])
	}
	if m[[2]string{"nl", "be"}] != 2 {
		t.Errorf("nl-be = %d", m[[2]string{"nl", "be"}])
	}
	if m[[2]string{"be", "de"}] != 1 {
		t.Errorf("be-de = %d", m[[2]string{"be", "de"}])
	}
	// Continent keying.
	cm := ConfusionMatrix(results, ContinentKey)
	if cm[[2]string{"Europe", "Europe"}] == 0 {
		t.Error("Europe-Europe confusion missing")
	}
	if ContinentKey("zz") != "Unknown" {
		t.Error("unknown country key")
	}
}

func TestClassifyMonotoneUnderShrinking(t *testing.T) {
	// Property: shrinking a region can never un-falsify a claim, and a
	// credible claim stays credible for any nonempty subregion.
	g, m := fixture(t)
	centers := []geo.Point{
		{Lat: 52.52, Lon: 13.405}, {Lat: 40.71, Lon: -74.01}, {Lat: -33.87, Lon: 151.21},
		{Lat: 35.68, Lon: 139.65}, {Lat: 48.86, Lon: 2.35}, {Lat: 1.35, Lon: 103.82},
	}
	claims := []string{"de", "us", "au", "jp", "fr", "sg", "kp", "br"}
	for _, center := range centers {
		for _, claim := range claims {
			big := regionAround(g, m, center, 900)
			small := regionAround(g, m, center, 250)
			// Ensure small ⊆ big (land clipping preserves subset).
			sub := small.Clone()
			sub.SubtractWith(big)
			if !sub.Empty() {
				continue
			}
			vb := Classify(m, big, claim)
			vs := Classify(m, small, claim)
			if vb == False && vs != False {
				t.Errorf("%v/%s: big false but small %v", center, claim, vs)
			}
			if vb == Credible && vs != Credible && !small.Empty() {
				t.Errorf("%v/%s: big credible but small %v", center, claim, vs)
			}
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Credible.String() != "credible" || Uncertain.String() != "uncertain" || False.String() != "false" {
		t.Error("verdict strings")
	}
	if Verdict(9).String() != "unknown" {
		t.Error("out-of-range verdict")
	}
}
