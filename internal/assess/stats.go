package assess

import (
	"sort"

	"activegeo/internal/worldmap"
)

// Tally aggregates verdicts the way Figure 17's top bars do.
type Tally struct {
	Credible  int
	Uncertain int
	False     int

	// Continent-level splits of the false and uncertain cases.
	FalseOffContinent int // false, and region doesn't even touch the claimed continent
	UncertainSameCont int // uncertain, but continent credible
}

// Total returns the number of tallied results.
func (t Tally) Total() int { return t.Credible + t.Uncertain + t.False }

// Tabulate computes the overall tally from results.
func Tabulate(results []*Result) Tally {
	var t Tally
	for _, r := range results {
		switch r.Verdict {
		case Credible:
			t.Credible++
		case Uncertain:
			t.Uncertain++
			if r.ContVerdict != False {
				t.UncertainSameCont++
			}
		case False:
			t.False++
			if r.ContVerdict == False {
				t.FalseOffContinent++
			}
		}
	}
	return t
}

// CountryBar is one row of the Figure 17 country breakdown.
type CountryBar struct {
	Country string
	Count   int
}

// CountryBreakdown counts results by a key function, descending.
func CountryBreakdown(results []*Result, key func(*Result) string) []CountryBar {
	counts := map[string]int{}
	for _, r := range results {
		if k := key(r); k != "" {
			counts[k]++
		}
	}
	out := make([]CountryBar, 0, len(counts))
	for c, n := range counts {
		out = append(out, CountryBar{Country: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// HonestyCell is one cell of the Figure 18/19 provider×country honesty
// matrices: the share of a provider's claims for one country that
// CBG++ at least partially backs up (credible or uncertain).
type HonestyCell struct {
	Provider string
	Country  string
	Claimed  int
	Backed   int // credible + uncertain
	Credible int
}

// Honesty returns the fraction of claims at least partially backed.
func (h HonestyCell) Honesty() float64 {
	if h.Claimed == 0 {
		return 0
	}
	return float64(h.Backed) / float64(h.Claimed)
}

// HonestyMatrix computes provider×country honesty cells from results.
func HonestyMatrix(results []*Result) []HonestyCell {
	type key struct{ p, c string }
	cells := map[key]*HonestyCell{}
	for _, r := range results {
		k := key{r.Provider, r.ClaimedCountry}
		cell, ok := cells[k]
		if !ok {
			cell = &HonestyCell{Provider: r.Provider, Country: r.ClaimedCountry}
			cells[k] = cell
		}
		cell.Claimed++
		if r.Verdict != False {
			cell.Backed++
		}
		if r.Verdict == Credible {
			cell.Credible++
		}
	}
	out := make([]HonestyCell, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Provider != out[j].Provider {
			return out[i].Provider < out[j].Provider
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// ProviderAgreement is one column of Figure 21 for the CBG++ rows: the
// share of a provider's claims our assessment agrees with, computed two
// ways.
type ProviderAgreement struct {
	Provider string
	// Generous treats uncertain verdicts as credible; Strict treats
	// them as false.
	Generous float64
	Strict   float64
}

// Agreement computes per-provider generous/strict agreement rates.
func Agreement(results []*Result) []ProviderAgreement {
	type acc struct{ total, credible, uncertain int }
	byProv := map[string]*acc{}
	for _, r := range results {
		a, ok := byProv[r.Provider]
		if !ok {
			a = &acc{}
			byProv[r.Provider] = a
		}
		a.total++
		switch r.Verdict {
		case Credible:
			a.credible++
		case Uncertain:
			a.uncertain++
		}
	}
	provs := make([]string, 0, len(byProv))
	for p := range byProv {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	out := make([]ProviderAgreement, 0, len(provs))
	for _, p := range provs {
		a := byProv[p]
		if a.total == 0 {
			continue
		}
		out = append(out, ProviderAgreement{
			Provider: p,
			Generous: float64(a.credible+a.uncertain) / float64(a.total),
			Strict:   float64(a.credible) / float64(a.total),
		})
	}
	return out
}

// ConfusionMatrix counts, over uncertain predictions, how often the
// claimed key appears together with each candidate key in the same
// region — Figures 22 (continents) and 23 (countries). The key function
// maps a country code to a matrix label (itself for Figure 23, its
// continent for Figure 22).
func ConfusionMatrix(results []*Result, key func(code string) string) map[[2]string]int {
	m := map[[2]string]int{}
	for _, r := range results {
		if len(r.Candidates) < 2 {
			continue
		}
		for i, a := range r.Candidates {
			ka := key(a)
			for _, b := range r.Candidates[i:] {
				kb := key(b)
				m[[2]string{ka, kb}]++
				if ka != kb {
					m[[2]string{kb, ka}]++
				}
			}
		}
	}
	return m
}

// ContinentKey maps a country code to its continent name (for Figure 22).
func ContinentKey(code string) string {
	if c := worldmap.ByCode(code); c != nil {
		return c.Continent.String()
	}
	return "Unknown"
}
