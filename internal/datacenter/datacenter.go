// Package datacenter is the library's substitute for the University of
// Wisconsin "Internet Atlas" data-center list the paper uses for
// disambiguation (§6, Figure 15): a catalog of commercial hosting
// locations, plus the metadata cross-checks (shared AS and /24 prefix,
// Figure 16) that let uncertain predictions be resolved.
package datacenter

import (
	"sort"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

// DC is one known data-center location.
type DC struct {
	ID      string
	City    string
	Country string // ISO code
	Loc     geo.Point
}

// list is the catalog. It mirrors where commercial hosting is actually
// plentiful — the same skew the paper observes in Figure 17: the top
// hosting countries absorb most of the real servers.
var list = []DC{
	{"dc-iad", "Ashburn", "us", geo.Point{Lat: 39.04, Lon: -77.49}},
	{"dc-nyc", "New York", "us", geo.Point{Lat: 40.71, Lon: -74.01}},
	{"dc-chi", "Chicago", "us", geo.Point{Lat: 41.88, Lon: -87.63}},
	{"dc-dal", "Dallas", "us", geo.Point{Lat: 32.78, Lon: -96.80}},
	{"dc-lax", "Los Angeles", "us", geo.Point{Lat: 34.05, Lon: -118.24}},
	{"dc-sjc", "San Jose", "us", geo.Point{Lat: 37.34, Lon: -121.89}},
	{"dc-sea", "Seattle", "us", geo.Point{Lat: 47.61, Lon: -122.33}},
	{"dc-mia", "Miami", "us", geo.Point{Lat: 25.76, Lon: -80.19}},
	{"dc-yyz", "Toronto", "ca", geo.Point{Lat: 43.65, Lon: -79.38}},
	{"dc-yvr", "Vancouver", "ca", geo.Point{Lat: 49.28, Lon: -123.12}},
	{"dc-fra", "Frankfurt", "de", geo.Point{Lat: 50.11, Lon: 8.68}},
	{"dc-ber", "Berlin", "de", geo.Point{Lat: 52.52, Lon: 13.41}},
	{"dc-ams", "Amsterdam", "nl", geo.Point{Lat: 52.37, Lon: 4.89}},
	{"dc-lon", "London", "gb", geo.Point{Lat: 51.51, Lon: -0.13}},
	{"dc-man", "Manchester", "gb", geo.Point{Lat: 53.48, Lon: -2.24}},
	{"dc-par", "Paris", "fr", geo.Point{Lat: 48.86, Lon: 2.35}},
	{"dc-rbx", "Roubaix", "fr", geo.Point{Lat: 50.69, Lon: 3.17}},
	{"dc-prg", "Prague", "cz", geo.Point{Lat: 50.08, Lon: 14.44}},
	{"dc-waw", "Warsaw", "pl", geo.Point{Lat: 52.23, Lon: 21.01}},
	{"dc-sto", "Stockholm", "se", geo.Point{Lat: 59.33, Lon: 18.07}},
	{"dc-zrh", "Zurich", "ch", geo.Point{Lat: 47.38, Lon: 8.54}},
	{"dc-mil", "Milan", "it", geo.Point{Lat: 45.46, Lon: 9.19}},
	{"dc-mad", "Madrid", "es", geo.Point{Lat: 40.42, Lon: -3.70}},
	{"dc-vie", "Vienna", "at", geo.Point{Lat: 48.21, Lon: 16.37}},
	{"dc-buh", "Bucharest", "ro", geo.Point{Lat: 44.43, Lon: 26.10}},
	{"dc-mow", "Moscow", "ru", geo.Point{Lat: 55.76, Lon: 37.62}},
	{"dc-sin", "Singapore", "sg", geo.Point{Lat: 1.35, Lon: 103.82}},
	{"dc-hkg", "Hong Kong", "hk", geo.Point{Lat: 22.32, Lon: 114.17}},
	{"dc-tyo", "Tokyo", "jp", geo.Point{Lat: 35.68, Lon: 139.65}},
	{"dc-icn", "Seoul", "kr", geo.Point{Lat: 37.57, Lon: 126.98}},
	{"dc-bom", "Mumbai", "in", geo.Point{Lat: 19.08, Lon: 72.88}},
	{"dc-syd", "Sydney", "au", geo.Point{Lat: -33.87, Lon: 151.21}},
	{"dc-akl", "Auckland", "nz", geo.Point{Lat: -36.85, Lon: 174.76}},
	{"dc-gru", "São Paulo", "br", geo.Point{Lat: -23.55, Lon: -46.63}},
	{"dc-scl", "Santiago", "cl", geo.Point{Lat: -33.45, Lon: -70.67}},
	{"dc-jnb", "Johannesburg", "za", geo.Point{Lat: -26.20, Lon: 28.05}},
	{"dc-dxb", "Dubai", "ae", geo.Point{Lat: 25.20, Lon: 55.27}},
	{"dc-mex", "Mexico City", "mx", geo.Point{Lat: 19.43, Lon: -99.13}},
}

// All returns the full catalog, sorted by ID.
func All() []DC {
	out := append([]DC(nil), list...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the data center with the given ID.
func ByID(id string) (DC, bool) {
	for _, dc := range list {
		if dc.ID == id {
			return dc, true
		}
	}
	return DC{}, false
}

// InCountry returns all data centers in the given country.
func InCountry(code string) []DC {
	var out []DC
	for _, dc := range list {
		if dc.Country == code {
			out = append(out, dc)
		}
	}
	return out
}

// HostingCountries returns the set of countries with at least one data
// center, sorted — the "easy hosting" list of the paper's Figure 17/18.
func HostingCountries() []string {
	seen := map[string]bool{}
	for _, dc := range list {
		seen[dc.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// InRegion returns the data centers whose location falls inside the
// region — the Figure 15 disambiguation primitive: if a prediction
// region covers two countries but contains data centers in only one of
// them, the server is in that one.
func InRegion(r *grid.Region) []DC {
	var out []DC
	for _, dc := range list {
		if r.ContainsPoint(dc.Loc) {
			out = append(out, dc)
		}
	}
	return out
}

// CountriesWithDCInRegion returns the sorted set of countries that have
// at least one data center inside the region.
func CountriesWithDCInRegion(r *grid.Region) []string {
	seen := map[string]bool{}
	for _, dc := range InRegion(r) {
		seen[dc.Country] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
