package datacenter

import (
	"strings"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/grid"
)

func TestAllSortedAndWellFormed(t *testing.T) {
	dcs := All()
	if len(dcs) < 30 {
		t.Fatalf("catalog has %d DCs", len(dcs))
	}
	seen := map[string]bool{}
	for i, dc := range dcs {
		if i > 0 && dcs[i-1].ID >= dc.ID {
			t.Fatal("not sorted by ID")
		}
		if seen[dc.ID] {
			t.Fatalf("duplicate ID %s", dc.ID)
		}
		seen[dc.ID] = true
		if !dc.Loc.Valid() {
			t.Errorf("%s has invalid location", dc.ID)
		}
		if dc.Country == "" || dc.City == "" {
			t.Errorf("%s missing metadata", dc.ID)
		}
		if !strings.HasPrefix(dc.ID, "dc-") {
			t.Errorf("%s lacks the dc- prefix", dc.ID)
		}
	}
}

func TestByID(t *testing.T) {
	dc, ok := ByID("dc-fra")
	if !ok || dc.City != "Frankfurt" || dc.Country != "de" {
		t.Errorf("ByID(dc-fra) = %+v, %v", dc, ok)
	}
	if _, ok := ByID("dc-nowhere"); ok {
		t.Error("unknown ID should miss")
	}
}

func TestInCountry(t *testing.T) {
	us := InCountry("us")
	if len(us) < 5 {
		t.Errorf("US has %d DCs, the hosting hub should have many", len(us))
	}
	for _, dc := range us {
		if dc.Country != "us" {
			t.Errorf("%s not in the US", dc.ID)
		}
	}
	if InCountry("kp") != nil {
		t.Error("North Korea should have no data centers")
	}
}

func TestHostingCountries(t *testing.T) {
	hosting := HostingCountries()
	if len(hosting) < 15 {
		t.Errorf("only %d hosting countries", len(hosting))
	}
	for i := 1; i < len(hosting); i++ {
		if hosting[i-1] >= hosting[i] {
			t.Fatal("not sorted")
		}
	}
	want := map[string]bool{"us": true, "de": true, "nl": true, "gb": true, "cz": true}
	found := 0
	for _, c := range hosting {
		if want[c] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("missing major hosting countries: %v", hosting)
	}
}

func TestInRegionDisambiguation(t *testing.T) {
	g := grid.New(1.5)
	// The Figure 15 shape: a region around Santiago covers Chilean DCs
	// but no Argentine ones.
	santiago := geo.Point{Lat: -33.45, Lon: -70.67}
	r := g.CapRegion(geo.Cap{Center: santiago, RadiusKm: 400})
	dcs := InRegion(r)
	if len(dcs) == 0 {
		t.Fatal("no DCs in the Santiago region")
	}
	for _, dc := range dcs {
		if dc.Country != "cl" {
			t.Errorf("unexpected %s DC in the region", dc.Country)
		}
	}
	countries := CountriesWithDCInRegion(r)
	if len(countries) != 1 || countries[0] != "cl" {
		t.Errorf("countries = %v, want [cl]", countries)
	}
	// An empty region has no DCs.
	if got := CountriesWithDCInRegion(g.NewRegion()); len(got) != 0 {
		t.Errorf("empty region has DCs: %v", got)
	}
	// A transatlantic region has DCs on both sides.
	big := g.CapRegion(geo.Cap{Center: geo.Point{Lat: 45, Lon: -30}, RadiusKm: 4500})
	both := CountriesWithDCInRegion(big)
	hasUS, hasEU := false, false
	for _, c := range both {
		if c == "us" || c == "ca" {
			hasUS = true
		}
		if c == "gb" || c == "fr" || c == "de" || c == "nl" {
			hasEU = true
		}
	}
	if !hasUS || !hasEU {
		t.Errorf("transatlantic region DC countries = %v", both)
	}
}
