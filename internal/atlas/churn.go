package atlas

import (
	"fmt"
	"math/rand"

	"activegeo/internal/geo"
	"activegeo/internal/netsim"
)

// Churn models the constellation turnover the paper experienced: "At
// the time we began our experiments (July 2016), there were 207 usable
// anchors; during the course of the experiment, 12 were decommissioned
// and another 61 were added."
//
// Decommissioned anchors stay in the network (their hosts don't vanish
// from the Internet) but are removed from the landmark set and lose
// their calibration data; added anchors are placed like Build places
// them and only gain calibration on the next RefreshCalibration.

// Decommission removes n randomly chosen anchors from the landmark set
// and returns their IDs.
func (c *Constellation) Decommission(n int, rng *rand.Rand) []netsim.HostID {
	if n > len(c.anchors) {
		n = len(c.anchors)
	}
	perm := rng.Perm(len(c.anchors))[:n]
	drop := map[int]bool{}
	var ids []netsim.HostID
	for _, i := range perm {
		drop[i] = true
		ids = append(ids, c.anchors[i].Host.ID)
	}
	kept := c.anchors[:0:0]
	for i, a := range c.anchors {
		if drop[i] {
			delete(c.byID, a.Host.ID)
			delete(c.calib, a.Host.ID)
			continue
		}
		kept = append(kept, a)
	}
	c.anchors = kept
	c.epoch.Add(1)
	return ids
}

// AddAnchors places n new anchors near the given cities' coordinates
// (cycled), registering them in the network. They have no calibration
// until the next RefreshCalibration.
//
// IDs and addresses come from a monotonic per-constellation counter, not
// from rng: random six-digit IDs collide after a few hundred churn
// rounds (birthday bound), and a collision silently overwrote the byID
// entry while AddHost rejected the duplicate host — corrupting any state
// keyed by anchor ID. Placement randomness still comes from rng, so
// churn remains reproducible.
func (c *Constellation) AddAnchors(n int, rng *rand.Rand) ([]netsim.HostID, error) {
	var ids []netsim.HostID
	for i := 0; i < n; i++ {
		city := cities[rng.Intn(len(cities))]
		loc := geo.DestinationPoint(geo.Point{Lat: city.Lat, Lon: city.Lon},
			rng.Float64()*360, rng.Float64()*30)
		seq := c.anchorSeq
		c.anchorSeq++
		h := &netsim.Host{
			ID:            netsim.HostID(fmt.Sprintf("anchor-new-%06d", seq)),
			Addr:          fmt.Sprintf("192.88.%d.%d", seq/250%250, seq%250),
			Loc:           loc,
			Country:       city.Country,
			AccessDelayMs: 0.5 + rng.Float64()*1.5,
			ListensHTTP:   rng.Float64() < 0.5,
		}
		if err := c.net.AddHost(h); err != nil {
			return ids, err
		}
		lm := &Landmark{Host: h, IsAnchor: true}
		c.anchors = append(c.anchors, lm)
		c.byID[h.ID] = lm
		ids = append(ids, h.ID)
	}
	c.epoch.Add(1)
	return ids, nil
}
