package atlas

// City is a place where landmarks (anchors or probes) can be hosted.
type City struct {
	Country string // ISO code, matching worldmap
	Name    string
	Lat     float64
	Lon     float64
}

// cities is the catalog of places landmark hosts are drawn from. The mix
// mirrors the RIPE Atlas constellation's real skew (Figure 3): dense in
// Europe, good in North America, present in Asia and South America, thin
// in Africa and Oceania.
var cities = []City{
	// Europe (dense).
	{"de", "Frankfurt", 50.11, 8.68}, {"de", "Berlin", 52.52, 13.41}, {"de", "Munich", 48.14, 11.58},
	{"de", "Hamburg", 53.55, 9.99}, {"de", "Düsseldorf", 51.23, 6.78}, {"de", "Nuremberg", 49.45, 11.08},
	{"nl", "Amsterdam", 52.37, 4.89}, {"nl", "Rotterdam", 51.92, 4.48}, {"nl", "Eindhoven", 51.44, 5.47},
	{"gb", "London", 51.51, -0.13}, {"gb", "Manchester", 53.48, -2.24}, {"gb", "Edinburgh", 55.95, -3.19},
	{"gb", "Cardiff", 51.48, -3.18}, {"fr", "Paris", 48.86, 2.35}, {"fr", "Lyon", 45.76, 4.84},
	{"fr", "Marseille", 43.30, 5.37}, {"fr", "Bordeaux", 44.84, -0.58}, {"fr", "Roubaix", 50.69, 3.17},
	{"cz", "Prague", 50.08, 14.44}, {"cz", "Brno", 49.20, 16.61},
	{"pl", "Warsaw", 52.23, 21.01}, {"pl", "Krakow", 50.06, 19.94}, {"pl", "Poznan", 52.41, 16.93},
	{"at", "Vienna", 48.21, 16.37}, {"ch", "Zurich", 47.38, 8.54}, {"ch", "Geneva", 46.20, 6.14},
	{"be", "Brussels", 50.85, 4.35}, {"be", "Antwerp", 51.22, 4.40}, {"lu", "Luxembourg", 49.61, 6.13},
	{"it", "Milan", 45.46, 9.19}, {"it", "Rome", 41.90, 12.50}, {"it", "Turin", 45.07, 7.69},
	{"es", "Madrid", 40.42, -3.70}, {"es", "Barcelona", 41.39, 2.17}, {"es", "Valencia", 39.47, -0.38},
	{"pt", "Lisbon", 38.72, -9.14}, {"pt", "Porto", 41.15, -8.61},
	{"se", "Stockholm", 59.33, 18.07}, {"se", "Gothenburg", 57.71, 11.97}, {"se", "Malmö", 55.60, 13.00},
	{"no", "Oslo", 59.91, 10.75}, {"no", "Bergen", 60.39, 5.32},
	{"dk", "Copenhagen", 55.68, 12.57}, {"fi", "Helsinki", 60.17, 24.94}, {"fi", "Oulu", 65.01, 25.47},
	{"ie", "Dublin", 53.35, -6.26}, {"is", "Reykjavik", 64.15, -21.94},
	{"ee", "Tallinn", 59.44, 24.75}, {"lv", "Riga", 56.95, 24.11}, {"lt", "Vilnius", 54.69, 25.28},
	{"ua", "Kyiv", 50.45, 30.52}, {"ua", "Lviv", 49.84, 24.03}, {"by", "Minsk", 53.90, 27.57},
	{"ru", "Moscow", 55.76, 37.62}, {"ru", "St. Petersburg", 59.93, 30.34}, {"ru", "Novosibirsk", 55.03, 82.92},
	{"ru", "Yekaterinburg", 56.84, 60.61}, {"ru", "Khabarovsk", 48.48, 135.07},
	{"ro", "Bucharest", 44.43, 26.10}, {"ro", "Cluj", 46.77, 23.59},
	{"bg", "Sofia", 42.70, 23.32}, {"gr", "Athens", 37.98, 23.73}, {"gr", "Thessaloniki", 40.64, 22.94},
	{"hu", "Budapest", 47.50, 19.04}, {"sk", "Bratislava", 48.15, 17.11}, {"si", "Ljubljana", 46.05, 14.51},
	{"hr", "Zagreb", 45.81, 15.98}, {"rs", "Belgrade", 44.79, 20.45}, {"ba", "Sarajevo", 43.86, 18.41},
	{"mk", "Skopje", 41.99, 21.43}, {"al", "Tirana", 41.33, 19.82}, {"md", "Chisinau", 47.01, 28.86},
	{"tr", "Istanbul", 41.01, 28.98}, {"tr", "Ankara", 39.93, 32.86}, {"tr", "Izmir", 38.42, 27.14},
	{"mt", "Valletta", 35.90, 14.51}, {"ge", "Tbilisi", 41.72, 44.79},

	// North America.
	{"us", "Ashburn", 39.04, -77.49}, {"us", "New York", 40.71, -74.01}, {"us", "Chicago", 41.88, -87.63},
	{"us", "Dallas", 32.78, -96.80}, {"us", "Los Angeles", 34.05, -118.24}, {"us", "San Jose", 37.34, -121.89},
	{"us", "Seattle", 47.61, -122.33}, {"us", "Miami", 25.76, -80.19}, {"us", "Atlanta", 33.75, -84.39},
	{"us", "Denver", 39.74, -104.99}, {"us", "Kansas City", 39.10, -94.58}, {"us", "Boston", 42.36, -71.06},
	{"us", "Phoenix", 33.45, -112.07}, {"us", "Minneapolis", 44.98, -93.27}, {"us", "Portland", 45.52, -122.68},
	{"us", "Salt Lake City", 40.76, -111.89}, {"us", "Honolulu", 21.31, -157.86}, {"us", "Anchorage", 61.22, -149.90},
	{"ca", "Toronto", 43.65, -79.38}, {"ca", "Montreal", 45.50, -73.57}, {"ca", "Vancouver", 49.28, -123.12},
	{"ca", "Calgary", 51.05, -114.07}, {"ca", "Winnipeg", 49.90, -97.14}, {"ca", "Halifax", 44.65, -63.57},

	// Central / South America.
	{"mx", "Mexico City", 19.43, -99.13}, {"mx", "Guadalajara", 20.67, -103.35}, {"mx", "Monterrey", 25.67, -100.31},
	{"pa", "Panama City", 8.98, -79.52}, {"cr", "San José CR", 9.93, -84.08}, {"gt", "Guatemala City", 14.63, -90.51},
	{"cu", "Havana", 23.11, -82.37}, {"do", "Santo Domingo", 18.47, -69.90}, {"pr", "San Juan", 18.47, -66.11},
	{"br", "São Paulo", -23.55, -46.63}, {"br", "Rio de Janeiro", -22.91, -43.17}, {"br", "Fortaleza", -3.73, -38.52},
	{"br", "Porto Alegre", -30.03, -51.23}, {"br", "Brasília", -15.79, -47.88}, {"br", "Manaus", -3.12, -60.02},
	{"ar", "Buenos Aires", -34.60, -58.38}, {"ar", "Córdoba", -31.42, -64.18},
	{"cl", "Santiago", -33.45, -70.67}, {"cl", "Valparaíso", -33.05, -71.62},
	{"co", "Bogotá", 4.71, -74.07}, {"co", "Medellín", 6.25, -75.56},
	{"pe", "Lima", -12.05, -77.04}, {"ec", "Quito", -0.18, -78.47}, {"uy", "Montevideo", -34.90, -56.16},
	{"ve", "Caracas", 10.49, -66.88}, {"bo", "La Paz", -16.49, -68.12}, {"py", "Asunción", -25.26, -57.58},

	// Asia.
	{"jp", "Tokyo", 35.68, 139.65}, {"jp", "Osaka", 34.69, 135.50}, {"jp", "Fukuoka", 33.59, 130.40},
	{"kr", "Seoul", 37.57, 126.98}, {"kr", "Busan", 35.18, 129.08},
	{"cn", "Beijing", 39.90, 116.40}, {"cn", "Shanghai", 31.23, 121.47}, {"cn", "Guangzhou", 23.13, 113.26},
	{"cn", "Chengdu", 30.57, 104.07}, {"hk", "Hong Kong", 22.32, 114.17}, {"tw", "Taipei", 25.03, 121.57},
	{"in", "Mumbai", 19.08, 72.88}, {"in", "Delhi", 28.61, 77.21}, {"in", "Bangalore", 12.97, 77.59},
	{"in", "Chennai", 13.08, 80.27}, {"th", "Bangkok", 13.76, 100.50}, {"vn", "Hanoi", 21.03, 105.85},
	{"vn", "Ho Chi Minh City", 10.82, 106.63}, {"kh", "Phnom Penh", 11.56, 104.92},
	{"pk", "Karachi", 24.86, 67.01}, {"bd", "Dhaka", 23.81, 90.41}, {"lk", "Colombo", 6.93, 79.85},
	{"kz", "Almaty", 43.24, 76.95}, {"uz", "Tashkent", 41.30, 69.24}, {"am", "Yerevan", 40.18, 44.51},
	{"az", "Baku", 40.41, 49.87}, {"ir", "Tehran", 35.69, 51.39}, {"mn", "Ulaanbaatar", 47.89, 106.91},
	{"np", "Kathmandu", 27.72, 85.32},

	// Africa & Middle East.
	{"za", "Johannesburg", -26.20, 28.05}, {"za", "Cape Town", -33.92, 18.42}, {"za", "Durban", -29.86, 31.03},
	{"ke", "Nairobi", -1.29, 36.82}, {"ng", "Lagos", 6.52, 3.38}, {"gh", "Accra", 5.56, -0.20},
	{"eg", "Cairo", 30.04, 31.24}, {"ma", "Casablanca", 33.57, -7.59}, {"tn", "Tunis", 36.81, 10.17},
	{"dz", "Algiers", 36.75, 3.06}, {"sn", "Dakar", 14.72, -17.47}, {"tz", "Dar es Salaam", -6.79, 39.21},
	{"ug", "Kampala", 0.35, 32.58}, {"zw", "Harare", -17.83, 31.05}, {"mu", "Port Louis", -20.16, 57.50},
	{"ae", "Dubai", 25.20, 55.27}, {"sa", "Riyadh", 24.71, 46.68}, {"il", "Tel Aviv", 32.07, 34.79},
	{"jo", "Amman", 31.95, 35.93}, {"lb", "Beirut", 33.89, 35.50}, {"kw", "Kuwait City", 29.38, 47.99},
	{"qa", "Doha", 25.29, 51.53}, {"bh", "Manama", 26.23, 50.59}, {"om", "Muscat", 23.59, 58.41},
	{"cy", "Nicosia", 35.17, 33.37},

	// Oceania & maritime Southeast Asia.
	{"au", "Sydney", -33.87, 151.21}, {"au", "Melbourne", -37.81, 144.96}, {"au", "Brisbane", -27.47, 153.03},
	{"au", "Perth", -31.95, 115.86}, {"au", "Adelaide", -34.93, 138.60},
	{"nz", "Auckland", -36.85, 174.76}, {"nz", "Wellington", -41.29, 174.78},
	{"sg", "Singapore", 1.35, 103.82}, {"my", "Kuala Lumpur", 3.14, 101.69},
	{"id", "Jakarta", -6.21, 106.85}, {"id", "Surabaya", -7.25, 112.75},
	{"ph", "Manila", 14.60, 120.98}, {"ph", "Cebu", 10.32, 123.89},
	{"fj", "Suva", -18.14, 178.44}, {"nc", "Nouméa", -22.27, 166.44}, {"pg", "Port Moresby", -9.44, 147.18},
	{"gu", "Hagåtña", 13.44, 144.79}, {"mv", "Malé", 4.18, 73.51},
}

// continentAnchorWeights reproduces the paper's Figure 3 skew: the share
// of anchors per continent group.
var continentAnchorWeights = map[string]float64{
	"Europe":          0.55,
	"North America":   0.20,
	"Asia":            0.10,
	"South America":   0.05,
	"Africa":          0.05,
	"Oceania":         0.04,
	"Central America": 0.005,
	"Australia":       0.025,
}
