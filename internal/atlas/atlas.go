// Package atlas builds and maintains the landmark constellation — the
// library's substitute for RIPE Atlas. It places "anchor" hosts (always
// on, well connected, accurately located) and "probe" hosts (more
// numerous, residential) into a netsim.Network with the geographic skew
// of the real constellation, runs the continuous inter-anchor ping mesh,
// and exposes per-landmark delay–distance calibration data, refreshed the
// way the paper's measurement server refreshes its models daily from the
// most recent two weeks of RIPE measurements.
package atlas

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"activegeo/internal/geo"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

// Landmark is a host in a known location usable for multilateration.
type Landmark struct {
	Host     *netsim.Host
	IsAnchor bool
}

// Config controls constellation construction.
type Config struct {
	Anchors int // number of anchors (the paper had 207→250 usable)
	Probes  int // number of stable probes used as extra landmarks

	// SamplesPerPair is how many mesh pings each anchor pair exchanges
	// per calibration window.
	SamplesPerPair int

	// Name prefixes host IDs, so several constellations can coexist in
	// one network (the §8.1 multi-constellation study). Empty means the
	// default "anchor"/"probe" prefixes.
	Name string

	// AnchorAccessMinMs/AnchorAccessMaxMs bound the anchors' last-mile
	// delay. RIPE anchors sit on stable, lightly loaded subnets
	// (default 0.5–2 ms); PlanetLab nodes enjoy academic connectivity
	// (§2 notes the "unfair advantage"); Ark monitors are mixed.
	AnchorAccessMinMs float64
	AnchorAccessMaxMs float64
}

// DefaultConfig matches the paper's scale.
func DefaultConfig() Config {
	return Config{Anchors: 250, Probes: 800, SamplesPerPair: 4}
}

// PairSample is one anchor pair's calibration data: every RTT sample
// from the mesh window, plus the pair's true distance.
type PairSample struct {
	Peer   netsim.HostID
	DistKm float64
	RTTms  []float64 // all mesh samples, unsorted
}

// MinRTTms returns the pair's fastest observation.
func (p PairSample) MinRTTms() float64 {
	best := p.RTTms[0]
	for _, v := range p.RTTms[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// Constellation is a built landmark set plus its calibration mesh.
type Constellation struct {
	net     *netsim.Network
	anchors []*Landmark
	probes  []*Landmark
	byID    map[netsim.HostID]*Landmark

	// calib maps an anchor to its per-peer mesh samples. The full
	// sample set — including the congested tail — is what Octant and
	// Spotter calibrate on; CBG's bestline only sees the envelope
	// anyway.
	calib map[netsim.HostID][]PairSample

	// epoch counts landmark-set and calibration generations: it is
	// bumped by Decommission, AddAnchors and RefreshCalibration, so
	// incremental consumers (the streaming audit) can detect that a
	// verdict predates the current constellation. Atomic because churn
	// may be applied from a pipeline callback while a feeder goroutine
	// reads the epoch to stamp dependency signatures.
	epoch atomic.Uint64

	// anchorSeq numbers anchors minted by AddAnchors. A monotonic
	// counter — never an rng draw — so churned-in anchor IDs are unique
	// for the constellation's lifetime.
	anchorSeq int
}

// Epoch returns the constellation's churn/calibration generation. Two
// reads returning the same value bracket a window with no landmark-set
// or calibration changes.
func (c *Constellation) Epoch() uint64 { return c.epoch.Load() }

// Build creates the constellation inside net. All anchor/probe placement
// randomness comes from rng, so builds are reproducible.
func Build(net *netsim.Network, cfg Config, rng *rand.Rand) (*Constellation, error) {
	if cfg.Anchors < 8 {
		return nil, fmt.Errorf("atlas: need at least 8 anchors, got %d", cfg.Anchors)
	}
	if cfg.SamplesPerPair < 1 {
		cfg.SamplesPerPair = 1
	}
	c := &Constellation{
		net:   net,
		byID:  make(map[netsim.HostID]*Landmark),
		calib: make(map[netsim.HostID][]PairSample),
	}

	byContinent := map[string][]City{}
	for _, city := range cities {
		cont := continentOf(city.Country)
		byContinent[cont] = append(byContinent[cont], city)
	}
	conts := make([]string, 0, len(byContinent))
	for k := range byContinent {
		conts = append(conts, k)
	}
	sort.Strings(conts)

	accessMin, accessMax := cfg.AnchorAccessMinMs, cfg.AnchorAccessMaxMs
	if accessMin <= 0 {
		accessMin = 0.5
	}
	if accessMax <= accessMin {
		accessMax = accessMin + 1.5
	}
	place := func(kind string, idx int, anchor bool) error {
		if cfg.Name != "" {
			kind = cfg.Name + "-" + kind
		}
		cont := pickContinent(rng, conts)
		cs := byContinent[cont]
		city := cs[rng.Intn(len(cs))]
		// Scatter within ~30 km of the city center.
		brg := rng.Float64() * 360
		dist := rng.Float64() * 30
		loc := geo.DestinationPoint(geo.Point{Lat: city.Lat, Lon: city.Lon}, brg, dist)
		access := accessMin + rng.Float64()*(accessMax-accessMin)
		if !anchor {
			access = 2 + rng.ExpFloat64()*8 // probes: residential
		}
		h := &netsim.Host{
			ID:            netsim.HostID(fmt.Sprintf("%s-%04d", kind, idx)),
			Addr:          fmt.Sprintf("192.%d.%d.%d", 1+idx/65536, (idx/256)%256, idx%256),
			Loc:           loc,
			Country:       city.Country,
			AccessDelayMs: access,
			ListensHTTP:   rng.Float64() < 0.5, // §4.2: depends on node software version
		}
		if err := net.AddHost(h); err != nil {
			return err
		}
		lm := &Landmark{Host: h, IsAnchor: anchor}
		if anchor {
			c.anchors = append(c.anchors, lm)
		} else {
			c.probes = append(c.probes, lm)
		}
		c.byID[h.ID] = lm
		return nil
	}

	for i := 0; i < cfg.Anchors; i++ {
		if err := place("anchor", i, true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Probes; i++ {
		if err := place("probe", i, false); err != nil {
			return nil, err
		}
	}
	c.RefreshCalibration(cfg.SamplesPerPair, rng)
	return c, nil
}

// pickContinent draws a continent according to the anchor weights.
func pickContinent(rng *rand.Rand, conts []string) string {
	var total float64
	for _, c := range conts {
		total += continentAnchorWeights[c]
	}
	x := rng.Float64() * total
	for _, c := range conts {
		x -= continentAnchorWeights[c]
		if x <= 0 {
			return c
		}
	}
	return conts[len(conts)-1]
}

func continentOf(code string) string {
	if c := worldmap.ByCode(code); c != nil {
		return c.Continent.String()
	}
	return "Europe"
}

// RefreshCalibration reruns the anchor mesh: every anchor takes k RTT
// samples to every other anchor. All samples are kept — the congested
// tail included — mirroring the paper's use of "the most recent two
// weeks of ping measurements" rather than just the minimum.
func (c *Constellation) RefreshCalibration(samplesPerPair int, rng *rand.Rand) {
	if samplesPerPair < 1 {
		samplesPerPair = 1
	}
	c.epoch.Add(1)
	for id := range c.calib {
		delete(c.calib, id)
	}
	for _, a := range c.anchors {
		pairs := make([]PairSample, 0, len(c.anchors)-1)
		for _, b := range c.anchors {
			if a == b {
				continue
			}
			ps := PairSample{
				Peer:   b.Host.ID,
				DistKm: geo.DistanceKm(a.Host.Loc, b.Host.Loc),
			}
			for i := 0; i < samplesPerPair; i++ {
				rtt, err := c.net.SampleRTTMs(a.Host.ID, b.Host.ID, rng)
				if err != nil {
					continue
				}
				ps.RTTms = append(ps.RTTms, rtt)
			}
			if len(ps.RTTms) > 0 {
				pairs = append(pairs, ps)
			}
		}
		c.calib[a.Host.ID] = pairs
	}
}

// Net returns the underlying network.
func (c *Constellation) Net() *netsim.Network { return c.net }

// Anchors returns the anchor landmarks.
func (c *Constellation) Anchors() []*Landmark { return c.anchors }

// Probes returns the stable-probe landmarks.
func (c *Constellation) Probes() []*Landmark { return c.probes }

// All returns anchors followed by probes.
func (c *Constellation) All() []*Landmark {
	out := make([]*Landmark, 0, len(c.anchors)+len(c.probes))
	out = append(out, c.anchors...)
	out = append(out, c.probes...)
	return out
}

// Landmark returns the landmark with the given host ID, or nil.
func (c *Constellation) Landmark(id netsim.HostID) *Landmark { return c.byID[id] }

// CalibrationPairs returns the per-peer mesh data for the given anchor.
// Probes have no mesh data and return nil.
func (c *Constellation) CalibrationPairs(id netsim.HostID) []PairSample {
	return c.calib[id]
}

// Calibration returns the anchor's mesh as a flat (distance km, RTT ms)
// scatter, one point per sample. Probes return nil, and algorithms then
// fall back to the pooled calibration (see Pooled).
func (c *Constellation) Calibration(id netsim.HostID) []mathx.XY {
	pairs := c.calib[id]
	if pairs == nil {
		return nil
	}
	var out []mathx.XY
	for _, p := range pairs {
		for _, rtt := range p.RTTms {
			out = append(out, mathx.XY{X: p.DistKm, Y: rtt})
		}
	}
	return out
}

// Pooled returns the union of all anchors' calibration samples — the
// landmark-landmark dataset Spotter fits its single global model to.
func (c *Constellation) Pooled() []mathx.XY {
	var out []mathx.XY
	ids := make([]string, 0, len(c.calib))
	for id := range c.calib {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, c.Calibration(netsim.HostID(id))...)
	}
	return out
}

// ByContinent groups all landmarks by the continent of their country.
func (c *Constellation) ByContinent() map[worldmap.Continent][]*Landmark {
	out := map[worldmap.Continent][]*Landmark{}
	for _, lm := range c.All() {
		wc := worldmap.ByCode(lm.Host.Country)
		if wc == nil {
			continue
		}
		out[wc.Continent] = append(out[wc.Continent], lm)
	}
	return out
}
