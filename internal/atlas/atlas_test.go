package atlas

import (
	"math/rand"
	"testing"

	"activegeo/internal/geo"
	"activegeo/internal/netsim"
	"activegeo/internal/worldmap"
)

func buildSmall(t testing.TB) *Constellation {
	t.Helper()
	net := netsim.New(7)
	rng := rand.New(rand.NewSource(7))
	c, err := Build(net, Config{Anchors: 60, Probes: 120, SamplesPerPair: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildCounts(t *testing.T) {
	c := buildSmall(t)
	if len(c.Anchors()) != 60 {
		t.Errorf("anchors = %d", len(c.Anchors()))
	}
	if len(c.Probes()) != 120 {
		t.Errorf("probes = %d", len(c.Probes()))
	}
	if len(c.All()) != 180 {
		t.Errorf("all = %d", len(c.All()))
	}
}

func TestBuildValidation(t *testing.T) {
	net := netsim.New(1)
	if _, err := Build(net, Config{Anchors: 2}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("too few anchors should fail")
	}
}

func TestBuildDeterministic(t *testing.T) {
	build := func() *Constellation {
		net := netsim.New(7)
		c, err := Build(net, Config{Anchors: 20, Probes: 10, SamplesPerPair: 2}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := build(), build()
	for i := range a.Anchors() {
		pa, pb := a.Anchors()[i].Host.Loc, b.Anchors()[i].Host.Loc
		if pa != pb {
			t.Fatalf("anchor %d placed differently: %v vs %v", i, pa, pb)
		}
	}
	ca := a.Calibration(a.Anchors()[0].Host.ID)
	cb := b.Calibration(b.Anchors()[0].Host.ID)
	if len(ca) != len(cb) || ca[0] != cb[0] {
		t.Error("calibration not deterministic")
	}
}

func TestEuropeanSkew(t *testing.T) {
	c := buildSmall(t)
	byCont := c.ByContinent()
	eu := len(byCont[worldmap.Europe])
	if eu < len(c.All())/3 {
		t.Errorf("Europe has %d of %d landmarks; expected the paper's European skew", eu, len(c.All()))
	}
	// At least five continent groups should be populated.
	populated := 0
	for _, lms := range byCont {
		if len(lms) > 0 {
			populated++
		}
	}
	if populated < 5 {
		t.Errorf("only %d continents populated", populated)
	}
}

func TestCalibrationShape(t *testing.T) {
	c := buildSmall(t)
	a0 := c.Anchors()[0]
	pts := c.Calibration(a0.Host.ID)
	// 3 samples per pair, all kept.
	if want := (len(c.Anchors()) - 1) * 3; len(pts) != want {
		t.Fatalf("calibration has %d points, want %d", len(pts), want)
	}
	pairs := c.CalibrationPairs(a0.Host.ID)
	if len(pairs) != len(c.Anchors())-1 {
		t.Fatalf("pairs = %d, want %d", len(pairs), len(c.Anchors())-1)
	}
	for _, p := range pairs {
		if len(p.RTTms) != 3 {
			t.Fatalf("pair has %d samples", len(p.RTTms))
		}
		min := p.MinRTTms()
		for _, v := range p.RTTms {
			if v < min {
				t.Fatal("MinRTTms not minimal")
			}
		}
	}
	for _, p := range pts {
		if p.X < 0 || p.X > geo.HalfEquatorKm+10 {
			t.Errorf("bad distance %f", p.X)
		}
		if p.Y <= 0 {
			t.Errorf("non-positive RTT %f", p.Y)
		}
		// Physical floor: RTT ≥ 2·dist/200.
		if p.Y < 2*p.X/geo.BaselineSpeedKmPerMs-1e-9 {
			t.Errorf("calibration point (%.0f km, %.1f ms) violates the physical floor", p.X, p.Y)
		}
	}
}

func TestProbesHaveNoCalibration(t *testing.T) {
	c := buildSmall(t)
	if pts := c.Calibration(c.Probes()[0].Host.ID); pts != nil {
		t.Error("probes should have no mesh calibration")
	}
}

func TestPooled(t *testing.T) {
	c := buildSmall(t)
	pooled := c.Pooled()
	want := len(c.Anchors()) * (len(c.Anchors()) - 1) * 3
	if len(pooled) != want {
		t.Errorf("pooled size %d, want %d", len(pooled), want)
	}
}

func TestLandmarkLookup(t *testing.T) {
	c := buildSmall(t)
	a0 := c.Anchors()[0]
	if lm := c.Landmark(a0.Host.ID); lm != a0 {
		t.Error("Landmark lookup failed")
	}
	if c.Landmark("nope") != nil {
		t.Error("unknown landmark should be nil")
	}
}

func TestRefreshCalibrationChangesSamples(t *testing.T) {
	c := buildSmall(t)
	id := c.Anchors()[0].Host.ID
	var before []float64
	for _, p := range c.Calibration(id) {
		before = append(before, p.Y)
	}
	c.RefreshCalibration(3, rand.New(rand.NewSource(99)))
	var changed bool
	for i, p := range c.Calibration(id) {
		if p.Y != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("refresh with a different rng should change at least one sample")
	}
}

func TestLandmarkCountriesAreReal(t *testing.T) {
	c := buildSmall(t)
	for _, lm := range c.All() {
		if worldmap.ByCode(lm.Host.Country) == nil {
			t.Errorf("landmark %s has unknown country %q", lm.Host.ID, lm.Host.Country)
		}
	}
}

func TestChurn(t *testing.T) {
	net := netsim.New(55)
	rng := rand.New(rand.NewSource(55))
	c, err := Build(net, Config{Anchors: 30, Probes: 10, SamplesPerPair: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's experience: 12 decommissioned, 61 added over the run.
	dropped := c.Decommission(5, rng)
	if len(dropped) != 5 {
		t.Fatalf("dropped %d", len(dropped))
	}
	if len(c.Anchors()) != 25 {
		t.Errorf("anchors = %d", len(c.Anchors()))
	}
	for _, id := range dropped {
		if c.Landmark(id) != nil {
			t.Errorf("decommissioned %s still a landmark", id)
		}
		if c.Calibration(id) != nil {
			t.Errorf("decommissioned %s still has calibration", id)
		}
		// The host still exists on the network.
		if net.Host(id) == nil {
			t.Errorf("decommissioned %s vanished from the network", id)
		}
	}

	added, err := c.AddAnchors(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 8 || len(c.Anchors()) != 33 {
		t.Fatalf("added %d, anchors %d", len(added), len(c.Anchors()))
	}
	// New anchors have no calibration until a refresh.
	if c.Calibration(added[0]) != nil {
		t.Error("new anchor calibrated before refresh")
	}
	c.RefreshCalibration(2, rng)
	if len(c.Calibration(added[0])) == 0 {
		t.Error("new anchor still uncalibrated after refresh")
	}
	// Decommissioned anchors are not mesh peers anymore.
	for _, p := range c.CalibrationPairs(added[0]) {
		for _, id := range dropped {
			if p.Peer == id {
				t.Errorf("mesh still pings decommissioned %s", id)
			}
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := netsim.New(7)
		_, _ = Build(net, Config{Anchors: 60, Probes: 60, SamplesPerPair: 2}, rand.New(rand.NewSource(7)))
	}
}

// TestLongChurnUniqueIDs is the regression test for the AddAnchors ID
// bug: minting IDs from rng.Intn(1_000_000) collides after a few
// hundred churn rounds (birthday bound ≈ 1180 draws for even odds),
// silently overwriting byID entries while the network rejected the
// duplicate host. The monotonic counter must survive sustained churn
// with every minted ID unique and registered.
func TestLongChurnUniqueIDs(t *testing.T) {
	net := netsim.New(56)
	rng := rand.New(rand.NewSource(56))
	c, err := Build(net, Config{Anchors: 40, Probes: 0, SamplesPerPair: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netsim.HostID]bool{}
	epoch := c.Epoch()
	for round := 0; round < 400; round++ {
		c.Decommission(2, rng)
		added, err := c.AddAnchors(2, rng)
		if err != nil {
			t.Fatalf("round %d: AddAnchors: %v", round, err)
		}
		for _, id := range added {
			if seen[id] {
				t.Fatalf("round %d: anchor ID %s minted twice", round, id)
			}
			seen[id] = true
			if c.Landmark(id) == nil {
				t.Fatalf("round %d: added anchor %s missing from byID", round, id)
			}
			if net.Host(id) == nil {
				t.Fatalf("round %d: added anchor %s missing from the network", round, id)
			}
		}
		if e := c.Epoch(); e <= epoch {
			t.Fatalf("round %d: epoch did not advance (%d → %d)", round, epoch, e)
		} else {
			epoch = e
		}
	}
	if len(seen) != 800 {
		t.Fatalf("minted %d distinct IDs, want 800", len(seen))
	}
	if got := len(c.Anchors()); got != 40 {
		t.Fatalf("anchors = %d after balanced churn, want 40", got)
	}
}

// TestEpochTracksCalibration: RefreshCalibration alone must advance the
// epoch, since recalibration changes every landmark's delay model.
func TestEpochTracksCalibration(t *testing.T) {
	net := netsim.New(57)
	rng := rand.New(rand.NewSource(57))
	c, err := Build(net, Config{Anchors: 10, Probes: 0, SamplesPerPair: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Epoch()
	if before == 0 {
		t.Fatal("built constellation has epoch 0; Build's calibration should have bumped it")
	}
	c.RefreshCalibration(1, rng)
	if after := c.Epoch(); after != before+1 {
		t.Fatalf("epoch %d → %d across RefreshCalibration, want +1", before, after)
	}
}
