package spotter

import (
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/mathx"
)

func synthSamples(n int, seed int64) []mathx.XY {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]mathx.XY, n)
	for i := range pts {
		d := rng.Float64() * 15000
		oneWay := d/110 + 4 + rng.ExpFloat64()*15
		pts[i] = mathx.XY{X: d, Y: 2 * oneWay}
	}
	return pts
}

func TestFitModel(t *testing.T) {
	m, err := Fit(synthSamples(2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	// µ must be increasing over the calibrated range and roughly match
	// the generating speed of 110 km/ms.
	prev := -1.0
	for _, tt := range []float64{10, 30, 60, 100, 140} {
		mu := m.MuKm(tt)
		if mu < prev {
			t.Errorf("µ decreased at %f ms", tt)
		}
		prev = mu
	}
	if mu := m.MuKm(100); mu < 6000 || mu > 13000 {
		t.Errorf("µ(100 ms) = %f km, want ≈10-11k", mu)
	}
	// σ positive and floored.
	for _, tt := range []float64{1, 50, 150, 1000} {
		if m.SigmaKm(tt) < 50 {
			t.Errorf("σ(%f) below floor", tt)
		}
	}
	// Clamped outside the fitted range (no cubic explosion).
	if m.MuKm(1e6) > geo.HalfEquatorKm {
		t.Error("µ not clamped at extreme delay")
	}
	if m.MuKm(0) < 0 {
		t.Error("µ negative at zero delay")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("want error for no samples")
	}
	if _, err := Fit(synthSamples(10, 2)); err == nil {
		t.Error("want error for too few samples")
	}
}

func TestLocateProducesMassRegion(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, model)
	if alg.Name() != "Spotter" {
		t.Error("name")
	}
	if alg.Model() != model {
		t.Error("model accessor")
	}
	rng := rand.New(rand.NewSource(41))
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	ms := algtest.MeasureTarget(t, cons, "spot-berlin", berlin, 25, rng)
	region, err := alg.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if region.Empty() {
		t.Fatal("empty Spotter region")
	}
	// The posterior mode should be in the right part of the world even
	// if (as the paper found) the 95% region can be off.
	c, _ := region.Centroid()
	if d := geo.DistanceKm(c, berlin); d > 6000 {
		t.Errorf("Spotter centroid %.0f km from truth", d)
	}
	// Region is land-only by construction.
	region.Each(func(i int) {
		if env.Mask.CountryOfCell(i) == "" {
			t.Fatalf("Spotter region contains water cell %d", i)
		}
	})
}

func TestLocateNoMeasurements(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(env, model).Locate(nil); err != geoloc.ErrNoMeasurements {
		t.Errorf("err = %v", err)
	}
}

func TestSmallerSigmaGivesSmallerRegion(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	ms := algtest.MeasureTarget(t, cons, "spot-chicago", geo.Point{Lat: 41.88, Lon: -87.63}, 25, rng)

	wide, err := New(env, model).Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	// A model with tighter σ must not produce a larger region.
	tight := &Model{Mu: model.Mu, Sigma: model.Sigma, minT: model.minT, maxT: model.maxT}
	tight.Sigma.C[0] -= 0.5 * model.SigmaKm(50)
	tr, err := New(env, tight).Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if tr.AreaKm2() > wide.AreaKm2()*1.5 {
		t.Errorf("tighter σ produced a much larger region: %f vs %f", tr.AreaKm2(), wide.AreaKm2())
	}
}

// TestLocateMaskToggle: Spotter reads raw distance slices, not region
// geometry, so the mask cache must be a strict no-op for it — the
// toggle pins that Locate stays byte-identical either way.
func TestLocateMaskToggle(t *testing.T) {
	cons, env := algtest.Fixture(t)
	model, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, model)
	rng := rand.New(rand.NewSource(100))
	ms := algtest.MeasureTarget(t, cons, "masktoggle-spot-berlin", geo.Point{Lat: 52.52, Lon: 13.405}, 25, rng)
	on, err := alg.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	saved := env.Masks
	env.Masks = nil
	off, err := alg.Locate(ms)
	env.Masks = saved
	if err != nil {
		t.Fatal(err)
	}
	if !on.Equal(off) {
		t.Fatalf("mask toggle changed Spotter output (%d vs %d cells)", on.Count(), off.Count())
	}
}
