// Package spotter implements Spotter (Laki et al., INFOCOM 2011) as
// described in §3.3: a single global probabilistic delay–distance model.
//
// From the pooled landmark-landmark calibration data, Spotter computes
// the mean µ and standard deviation σ of distance as a function of
// delay, fitting a cubic polynomial to each (constrained to be
// increasing — the paper found anything more flexible overfits badly).
// Each landmark measurement then induces a Gaussian ring-shaped
// probability distribution over the Earth; rings are combined with
// Bayes' rule and the prediction region is the smallest cell set
// containing 95% of the posterior mass.
package spotter

import (
	"fmt"
	"math"
	"sort"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/mathx"
)

// MassFraction is the posterior mass the prediction region must cover.
const MassFraction = 0.95

// minSigmaKm keeps the Gaussian rings from degenerating at tiny delays.
const minSigmaKm = 50.0

// Model is the fitted global delay→distance distribution.
type Model struct {
	Mu    mathx.Cubic // mean distance (km) as a function of one-way ms
	Sigma mathx.Cubic // standard deviation (km) as a function of one-way ms
	// fit range, for clamping the polynomials outside the data.
	minT, maxT float64
	// sigmaMax caps the σ polynomial at the largest spread actually
	// observed in a bin: an increasing cubic can overshoot badly toward
	// the end of the fit range.
	sigmaMax float64
}

// Fit builds the model from pooled (distance km, RTT ms) samples by
// binning delays into quantile bins and fitting constrained cubics to
// the per-bin mean and standard deviation of distance.
func Fit(samples []mathx.XY) (*Model, error) {
	if len(samples) < 20 {
		return nil, mathx.ErrInsufficientData
	}
	type obs struct{ t, d float64 }
	all := make([]obs, len(samples))
	for i, s := range samples {
		all[i] = obs{t: geo.OneWayMs(s.Y), d: s.X}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })

	const bins = 24
	per := len(all) / bins
	if per < 3 {
		return nil, mathx.ErrInsufficientData
	}
	var bt, bmu, bsd []float64
	for b := 0; b < bins; b++ {
		lo, hi := b*per, (b+1)*per
		if b == bins-1 {
			hi = len(all)
		}
		var ts, ds []float64
		for _, o := range all[lo:hi] {
			ts = append(ts, o.t)
			ds = append(ds, o.d)
		}
		bt = append(bt, mathx.Mean(ts))
		bmu = append(bmu, mathx.Mean(ds))
		// Robust spread: the raw standard deviation is dominated by the
		// congested tail (pairs with enormous delay inflation), and even
		// the quartiles straddle the quality mixture. The Gaussian ring
		// model describes the dominant mode, so the spread is estimated
		// from the quartiles of the half of the bin closest to its
		// median — the same pragmatism the paper applies when it
		// constrains the fits to avoid "severe overfitting".
		med := mathx.Quantile(ds, 0.5)
		var core []float64
		for _, d := range ds {
			if d >= med-0.35*med-500 && d <= med+0.35*med+500 {
				core = append(core, d)
			}
		}
		if len(core) < 3 {
			core = ds
		}
		sd := mathx.StdDev(core)
		if sd < minSigmaKm {
			sd = minSigmaKm
		}
		bsd = append(bsd, sd)
	}
	mu, err := mathx.FitCubicIncreasing(bt, bmu)
	if err != nil {
		return nil, fmt.Errorf("spotter: fitting µ: %w", err)
	}
	sigma, err := mathx.FitCubicIncreasing(bt, bsd)
	if err != nil {
		return nil, fmt.Errorf("spotter: fitting σ: %w", err)
	}
	sigmaMax := minSigmaKm
	for _, v := range bsd {
		if v > sigmaMax {
			sigmaMax = v
		}
	}
	return &Model{
		Mu:       mu,
		Sigma:    sigma,
		minT:     all[0].t,
		maxT:     all[len(all)-1].t,
		sigmaMax: sigmaMax,
	}, nil
}

// clampT keeps polynomial evaluation inside the calibrated delay range,
// extending flat beyond it (cubics explode when extrapolated).
func (m *Model) clampT(t float64) float64 {
	if t < m.minT {
		return m.minT
	}
	if t > m.maxT {
		return m.maxT
	}
	return t
}

// MuKm returns the expected distance for a one-way delay.
func (m *Model) MuKm(oneWayMs float64) float64 {
	v := m.Mu.At(m.clampT(oneWayMs))
	if v < 0 {
		return 0
	}
	if v > geo.HalfEquatorKm {
		return geo.HalfEquatorKm
	}
	return v
}

// SigmaKm returns the distance standard deviation for a one-way delay.
func (m *Model) SigmaKm(oneWayMs float64) float64 {
	v := m.Sigma.At(m.clampT(oneWayMs))
	if v < minSigmaKm {
		return minSigmaKm
	}
	if m.sigmaMax > 0 && v > m.sigmaMax {
		return m.sigmaMax
	}
	return v
}

// Calibrate fits the global Spotter model from a constellation.
func Calibrate(cons *atlas.Constellation) (*Model, error) {
	return Fit(cons.Pooled())
}

// Spotter is the Bayesian multilateration algorithm.
type Spotter struct {
	env   *geoloc.Env
	model *Model
}

// New builds a Spotter instance.
func New(env *geoloc.Env, model *Model) *Spotter {
	return &Spotter{env: env, model: model}
}

// Name implements geoloc.Algorithm.
func (s *Spotter) Name() string { return "Spotter" }

// Model returns the fitted delay model (used by the Hybrid and by the
// figure generators).
func (s *Spotter) Model() *Model { return s.model }

// Locate implements geoloc.Algorithm: compute the log-posterior over
// all land cells (uniform land prior) and return the smallest cell set
// covering MassFraction of the mass.
func (s *Spotter) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	g := s.env.Grid
	land := s.env.Mask.LandRef()

	type scored struct {
		cell int
		logp float64
	}
	cells := make([]scored, 0, land.Count())
	land.Each(func(i int) {
		p := g.Center(i)
		lp := 0.0
		for _, m := range ms {
			d := geo.DistanceKm(m.Landmark, p)
			t := m.OneWayMs()
			mu, sig := s.model.MuKm(t), s.model.SigmaKm(t)
			z := (d - mu) / sig
			lp += -0.5*z*z - math.Log(sig)
		}
		cells = append(cells, scored{cell: i, logp: lp})
	})
	if len(cells) == 0 {
		return g.NewRegion(), nil
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].logp > cells[j].logp })

	// Convert to normalized masses relative to the best cell, weighting
	// by cell area (the prior is uniform per km², not per cell).
	best := cells[0].logp
	var total float64
	masses := make([]float64, len(cells))
	for i, c := range cells {
		masses[i] = math.Exp(c.logp-best) * g.CellArea(c.cell)
		total += masses[i]
	}
	region := g.NewRegion()
	var acc float64
	for i, c := range cells {
		region.Add(c.cell)
		acc += masses[i]
		if acc >= MassFraction*total {
			break
		}
	}
	return region, nil
}

var _ geoloc.Algorithm = (*Spotter)(nil)
