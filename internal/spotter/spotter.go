// Package spotter implements Spotter (Laki et al., INFOCOM 2011) as
// described in §3.3: a single global probabilistic delay–distance model.
//
// From the pooled landmark-landmark calibration data, Spotter computes
// the mean µ and standard deviation σ of distance as a function of
// delay, fitting a cubic polynomial to each (constrained to be
// increasing — the paper found anything more flexible overfits badly).
// Each landmark measurement then induces a Gaussian ring-shaped
// probability distribution over the Earth; rings are combined with
// Bayes' rule and the prediction region is the smallest cell set
// containing 95% of the posterior mass.
package spotter

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/mathx"
)

// MassFraction is the posterior mass the prediction region must cover.
const MassFraction = 0.95

// minSigmaKm keeps the Gaussian rings from degenerating at tiny delays.
const minSigmaKm = 50.0

// Model is the fitted global delay→distance distribution.
type Model struct {
	Mu    mathx.Cubic // mean distance (km) as a function of one-way ms
	Sigma mathx.Cubic // standard deviation (km) as a function of one-way ms
	// fit range, for clamping the polynomials outside the data.
	minT, maxT float64
	// sigmaMax caps the σ polynomial at the largest spread actually
	// observed in a bin: an increasing cubic can overshoot badly toward
	// the end of the fit range.
	sigmaMax float64
}

// Fit builds the model from pooled (distance km, RTT ms) samples by
// binning delays into quantile bins and fitting constrained cubics to
// the per-bin mean and standard deviation of distance.
func Fit(samples []mathx.XY) (*Model, error) {
	if len(samples) < 20 {
		return nil, mathx.ErrInsufficientData
	}
	type obs struct{ t, d float64 }
	all := make([]obs, len(samples))
	for i, s := range samples {
		all[i] = obs{t: geo.OneWayMs(s.Y), d: s.X}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })

	const bins = 24
	per := len(all) / bins
	if per < 3 {
		return nil, mathx.ErrInsufficientData
	}
	var bt, bmu, bsd []float64
	for b := 0; b < bins; b++ {
		lo, hi := b*per, (b+1)*per
		if b == bins-1 {
			hi = len(all)
		}
		var ts, ds []float64
		for _, o := range all[lo:hi] {
			ts = append(ts, o.t)
			ds = append(ds, o.d)
		}
		bt = append(bt, mathx.Mean(ts))
		bmu = append(bmu, mathx.Mean(ds))
		// Robust spread: the raw standard deviation is dominated by the
		// congested tail (pairs with enormous delay inflation), and even
		// the quartiles straddle the quality mixture. The Gaussian ring
		// model describes the dominant mode, so the spread is estimated
		// from the quartiles of the half of the bin closest to its
		// median — the same pragmatism the paper applies when it
		// constrains the fits to avoid "severe overfitting".
		med := mathx.Quantile(ds, 0.5)
		var core []float64
		for _, d := range ds {
			if d >= med-0.35*med-500 && d <= med+0.35*med+500 {
				core = append(core, d)
			}
		}
		if len(core) < 3 {
			core = ds
		}
		sd := mathx.StdDev(core)
		if sd < minSigmaKm {
			sd = minSigmaKm
		}
		bsd = append(bsd, sd)
	}
	mu, err := mathx.FitCubicIncreasing(bt, bmu)
	if err != nil {
		return nil, fmt.Errorf("spotter: fitting µ: %w", err)
	}
	sigma, err := mathx.FitCubicIncreasing(bt, bsd)
	if err != nil {
		return nil, fmt.Errorf("spotter: fitting σ: %w", err)
	}
	sigmaMax := minSigmaKm
	for _, v := range bsd {
		if v > sigmaMax {
			sigmaMax = v
		}
	}
	return &Model{
		Mu:       mu,
		Sigma:    sigma,
		minT:     all[0].t,
		maxT:     all[len(all)-1].t,
		sigmaMax: sigmaMax,
	}, nil
}

// clampT keeps polynomial evaluation inside the calibrated delay range,
// extending flat beyond it (cubics explode when extrapolated).
func (m *Model) clampT(t float64) float64 {
	if t < m.minT {
		return m.minT
	}
	if t > m.maxT {
		return m.maxT
	}
	return t
}

// MuKm returns the expected distance for a one-way delay.
func (m *Model) MuKm(oneWayMs float64) float64 {
	v := m.Mu.At(m.clampT(oneWayMs))
	if v < 0 {
		return 0
	}
	if v > geo.HalfEquatorKm {
		return geo.HalfEquatorKm
	}
	return v
}

// SigmaKm returns the distance standard deviation for a one-way delay.
func (m *Model) SigmaKm(oneWayMs float64) float64 {
	v := m.Sigma.At(m.clampT(oneWayMs))
	if v < minSigmaKm {
		return minSigmaKm
	}
	if m.sigmaMax > 0 && v > m.sigmaMax {
		return m.sigmaMax
	}
	return v
}

// Calibrate fits the global Spotter model from a constellation.
func Calibrate(cons *atlas.Constellation) (*Model, error) {
	return Fit(cons.Pooled())
}

// Spotter is the Bayesian multilateration algorithm.
type Spotter struct {
	env   *geoloc.Env
	model *Model
	// scratch recycles the per-Locate working buffers (candidate cells,
	// log-posteriors, masses). Locate is called once per target across
	// the audit's worker pool, so the pool removes the dominant
	// allocations from the hot path while staying concurrency-safe.
	scratch sync.Pool
}

// locateScratch is one reusable set of Locate working buffers.
type locateScratch struct {
	cells  []int32
	logp   []float64
	masses []float64
}

// New builds a Spotter instance.
func New(env *geoloc.Env, model *Model) *Spotter {
	s := &Spotter{env: env, model: model}
	s.scratch.New = func() any { return &locateScratch{} }
	return s
}

// Name implements geoloc.Algorithm.
func (s *Spotter) Name() string { return "Spotter" }

// Model returns the fitted delay model (used by the Hybrid and by the
// figure generators).
func (s *Spotter) Model() *Model { return s.model }

// pruneSigmas is the plausibility-prune cushion: a cell is skipped only
// if, for some measurement, it is beyond BOTH the physical
// baseline-speed maximum distance (plus the rasterization pad) AND
// µ+pruneSigmas·σ of that measurement's Gaussian ring. The first
// condition means no signal could have reached the cell in the observed
// time; the second bounds the skipped cell's likelihood factor at
// exp(-pruneSigmas²/2) ≈ 2e-22 of the ring's peak, so the skipped mass
// cannot move the 95% cutoff. See DESIGN.md §"Geometry kernel".
const pruneSigmas = 10.0

// Locate implements geoloc.Algorithm: compute the log-posterior over
// all land cells (uniform land prior) and return the smallest cell set
// covering MassFraction of the mass.
//
// The hot loop runs on the Env's shared landmark distance fields: per
// cell and measurement it is one slice read, one multiply-add pair, and
// no trigonometry or polynomial evaluation (µ and σ depend only on the
// measurement and are hoisted). Cells beyond the plausibility cap of
// some measurement are pruned before scoring; if every land cell is
// pruned — wildly inconsistent (e.g. forged) measurements — the full
// unpruned scan is used instead, preserving the pre-kernel behaviour.
func (s *Spotter) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	g := s.env.Grid
	land := s.env.Mask.LandRef()

	type field struct {
		dist   []float32
		mu     float64
		sig    float64
		logSig float64
		thresh float64 // prune distance, km
	}
	fields := make([]field, len(ms))
	for i, m := range ms {
		t := m.OneWayMs()
		mu, sig := s.model.MuKm(t), s.model.SigmaKm(t)
		thresh := geo.MaxDistanceKm(t, geo.BaselineSpeedKmPerMs) + s.env.PadKm()
		if soft := mu + pruneSigmas*sig; soft > thresh {
			thresh = soft
		}
		fields[i] = field{
			dist:   s.env.Distances(m.LandmarkID, m.Landmark),
			mu:     mu,
			sig:    sig,
			logSig: math.Log(sig),
			thresh: thresh,
		}
	}
	// Prune order: tightest constraint first, so implausible cells exit
	// on their first comparison. The scoring pass below keeps the
	// original (landmark-ID-sorted) summation order for determinism.
	order := make([]int, len(fields))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fields[order[a]].thresh < fields[order[b]].thresh })

	sc := s.scratch.Get().(*locateScratch)
	defer s.scratch.Put(sc)
	sc.cells = sc.cells[:0]

	collect := func(pruned bool) {
		land.Each(func(i int) {
			if pruned {
				for _, fi := range order {
					if float64(fields[fi].dist[i]) > fields[fi].thresh {
						return
					}
				}
			}
			sc.cells = append(sc.cells, int32(i))
		})
	}
	collect(true)
	if len(sc.cells) == 0 {
		// Every land cell violates some plausibility cap: fall back to
		// the full posterior so the result matches the pre-kernel path.
		collect(false)
	}
	if len(sc.cells) == 0 {
		return g.NewRegion(), nil
	}

	if cap(sc.logp) < len(sc.cells) {
		sc.logp = make([]float64, len(sc.cells))
		sc.masses = make([]float64, len(sc.cells))
	}
	sc.logp = sc.logp[:len(sc.cells)]
	sc.masses = sc.masses[:len(sc.cells)]
	for j, ci := range sc.cells {
		lp := 0.0
		for fi := range fields {
			f := &fields[fi]
			z := (float64(f.dist[ci]) - f.mu) / f.sig
			lp += -0.5*z*z - f.logSig
		}
		sc.logp[j] = lp
	}
	// Best-first, with cell index as the tie-break so equal-score cells
	// order identically on every platform and Go version (sort.Slice on
	// the score alone left the mass cutoff unstable under ties).
	sort.Sort(byScore{cells: sc.cells, logp: sc.logp})

	// Convert to normalized masses relative to the best cell, weighting
	// by cell area (the prior is uniform per km², not per cell).
	best := sc.logp[0]
	var total float64
	for j := range sc.cells {
		sc.masses[j] = math.Exp(sc.logp[j]-best) * g.CellArea(int(sc.cells[j]))
		total += sc.masses[j]
	}
	region := g.NewRegion()
	var acc float64
	for j := range sc.cells {
		region.Add(int(sc.cells[j]))
		acc += sc.masses[j]
		if acc >= MassFraction*total {
			break
		}
	}
	return region, nil
}

// byScore sorts cells by descending log-posterior, breaking ties by
// ascending cell index.
type byScore struct {
	cells []int32
	logp  []float64
}

func (b byScore) Len() int { return len(b.cells) }
func (b byScore) Less(i, j int) bool {
	//lint:allow floatexact comparator needs exact equality: an epsilon tie would break sort's strict weak ordering
	if b.logp[i] != b.logp[j] {
		return b.logp[i] > b.logp[j]
	}
	return b.cells[i] < b.cells[j]
}
func (b byScore) Swap(i, j int) {
	b.cells[i], b.cells[j] = b.cells[j], b.cells[i]
	b.logp[i], b.logp[j] = b.logp[j], b.logp[i]
}

var _ geoloc.Algorithm = (*Spotter)(nil)
