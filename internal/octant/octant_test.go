package octant

import (
	"math/rand"
	"testing"

	"activegeo/internal/algtest"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/mathx"
)

func synthSamples(n int, seed int64) []mathx.XY {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]mathx.XY, n)
	for i := range pts {
		d := rng.Float64() * 12000
		oneWay := d/120 + 3 + rng.ExpFloat64()*d/400 // speeds mostly ≤120 km/ms
		pts[i] = mathx.XY{X: d, Y: 2 * oneWay}       // stored as RTT
	}
	return pts
}

func TestFitCurvesBasic(t *testing.T) {
	cv, err := FitCurves(synthSamples(300, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Max distance must grow with delay and respect the baseline cap.
	prev := 0.0
	for _, oneWay := range []float64{5, 20, 50, 100, 200, 400} {
		d := cv.MaxDistanceKm(oneWay)
		if d < prev-1e-9 {
			t.Errorf("max distance decreased at %f ms: %f < %f", oneWay, d, prev)
		}
		if d > oneWay*geo.BaselineSpeedKmPerMs+1e-9 {
			t.Errorf("max distance %f exceeds baseline bound at %f ms", d, oneWay)
		}
		prev = d
	}
	// Min ≤ max everywhere.
	for _, oneWay := range []float64{5, 20, 50, 100, 200, 400} {
		if cv.MinDistanceKm(oneWay) > cv.MaxDistanceKm(oneWay) {
			t.Errorf("min > max at %f ms", oneWay)
		}
	}
	// Tiny delays imply no minimum distance.
	if cv.MinDistanceKm(0.1) != 0 {
		t.Error("minimum distance at near-zero delay should be 0")
	}
}

func TestFitCurvesErrors(t *testing.T) {
	if _, err := FitCurves(nil); err == nil {
		t.Error("want error for no samples")
	}
	if _, err := FitCurves(synthSamples(3, 2)); err == nil {
		t.Error("want error for too few samples")
	}
}

func TestMinDistanceNeverNegative(t *testing.T) {
	cv, err := FitCurves(synthSamples(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	for oneWay := 0.0; oneWay < 500; oneWay += 7 {
		if d := cv.MinDistanceKm(oneWay); d < 0 {
			t.Fatalf("negative min distance %f at %f ms", d, oneWay)
		}
	}
}

func TestCalibrateAndLocate(t *testing.T) {
	cons, env := algtest.Fixture(t)
	cal, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, cal)
	if alg.Name() != "Quasi-Octant" {
		t.Error("name")
	}
	rng := rand.New(rand.NewSource(31))
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	ms := algtest.MeasureTarget(t, cons, "oct-berlin", berlin, 25, rng)
	region, err := alg.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if region.Empty() {
		t.Fatal("Quasi-Octant returned an empty region")
	}
	c, _ := region.Centroid()
	if d := geo.DistanceKm(c, berlin); d > 4000 {
		t.Errorf("centroid %.0f km from truth (Octant is allowed to miss, but not wildly)", d)
	}
}

func TestLocateNoMeasurements(t *testing.T) {
	cons, env := algtest.Fixture(t)
	cal, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(env, cal).Locate(nil); err != geoloc.ErrNoMeasurements {
		t.Errorf("err = %v", err)
	}
}

func TestRingsWellFormed(t *testing.T) {
	cons, env := algtest.Fixture(t)
	cal, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, cal)
	rng := rand.New(rand.NewSource(32))
	ms := algtest.MeasureTarget(t, cons, "oct-tokyo", geo.Point{Lat: 35.68, Lon: 139.65}, 20, rng)
	for _, r := range alg.Rings(ms) {
		if r.MinKm < 0 || r.MaxKm < r.MinKm {
			t.Errorf("malformed ring [%f, %f]", r.MinKm, r.MaxKm)
		}
		if r.MaxKm > geo.HalfEquatorKm+1 {
			t.Errorf("ring max %f beyond half equator", r.MaxKm)
		}
	}
}

func TestProbeFallsBackToPooled(t *testing.T) {
	cons, _ := algtest.Fixture(t)
	cal, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	probe := cons.Probes()[0].Host.ID
	if cal.Curves(probe) != cal.pooled {
		t.Error("probe should use pooled curves")
	}
}

// TestLocateMaskToggle: Quasi-Octant's ring constraints run through
// Env.RingRegionFor, so the quantized mask cache must leave its regions
// byte-identical to the per-cell ring scan.
func TestLocateMaskToggle(t *testing.T) {
	cons, env := algtest.Fixture(t)
	cal, err := Calibrate(cons)
	if err != nil {
		t.Fatal(err)
	}
	alg := New(env, cal)
	rng := rand.New(rand.NewSource(99))
	targets := map[string]geo.Point{
		"masktoggle-oct-berlin": {Lat: 52.52, Lon: 13.405},
		"masktoggle-oct-dakar":  {Lat: 14.72, Lon: -17.47},
	}
	for id, loc := range targets {
		ms := algtest.MeasureTarget(t, cons, id, loc, 25, rng)
		on, err := alg.Locate(ms)
		if err != nil {
			t.Fatal(err)
		}
		saved := env.Masks
		env.Masks = nil
		off, err := alg.Locate(ms)
		env.Masks = saved
		if err != nil {
			t.Fatal(err)
		}
		if !on.Equal(off) {
			t.Fatalf("%s: mask-on region (%d cells) differs from mask-off (%d cells)", id, on.Count(), off.Count())
		}
	}
}
