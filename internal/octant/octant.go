// Package octant implements "Quasi-Octant" (§3.2): the Octant algorithm
// of Wong et al. (NSDI 2007) without its traceroute-dependent features,
// which cannot be used through commercial proxies.
//
// Per landmark, Quasi-Octant estimates both a maximum and a minimum
// distance for a given delay, using piecewise-linear curves defined by
// the convex hull of the delay-vs-distance calibration scatter. Only
// observations up to the 50th (max curve) and 75th (min curve) delay
// percentiles are trusted; beyond those cutoffs fixed empirical speeds
// take over. Multilateration intersects the resulting rings; because
// ring intersections are frequently empty at world scale, the cells
// covered by the largest number of rings are used (Octant's weighted
// regions reduce to exactly this when all weights are equal).
package octant

import (
	"fmt"
	"math"
	"sort"

	"activegeo/internal/atlas"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/mathx"
	"activegeo/internal/netsim"
)

// Empirical speeds used beyond the percentile cutoffs, in km per ms of
// one-way time. The fast bound falls back to the physical baseline; the
// slow bound is a conservative "packets at least crawl" estimate.
const (
	fastEmpiricalSpeed = geo.BaselineSpeedKmPerMs
	slowEmpiricalSpeed = 25.0
)

// Curves is the per-landmark delay→distance model.
type Curves struct {
	// maxKnots map one-way delay to maximum plausible distance
	// (increasing, from the lower hull of (distance, delay) scatter).
	maxKnots []mathx.XY
	// minKnots map one-way delay to minimum plausible distance
	// (increasing, from the upper hull).
	minKnots []mathx.XY
	// cutoffs: delays beyond which the hulls are not trusted.
	maxCutoff float64 // 50th percentile of one-way delays
	minCutoff float64 // 75th percentile
}

// FitCurves builds the Quasi-Octant curves from (distance km, RTT ms)
// calibration samples.
func FitCurves(samples []mathx.XY) (*Curves, error) {
	if len(samples) < 4 {
		return nil, mathx.ErrInsufficientData
	}
	// Work in (distance, one-way delay) space.
	pts := make([]mathx.XY, len(samples))
	delays := make([]float64, len(samples))
	for i, s := range samples {
		pts[i] = mathx.XY{X: s.X, Y: geo.OneWayMs(s.Y)}
		delays[i] = pts[i].Y
	}
	c := &Curves{
		maxCutoff: mathx.Quantile(delays, 0.50),
		minCutoff: mathx.Quantile(delays, 0.75),
	}
	// Max-distance curve: the lower hull is the fastest observed travel;
	// inverting it (delay → distance) gives the farthest a packet could
	// plausibly have gone. Keep hull points up to the cutoff.
	lower := mathx.LowerHull(pts)
	c.maxKnots = invertHull(lower, c.maxCutoff)
	// Min-distance curve: the upper hull is the slowest observed travel;
	// inverting gives the least distance a delay that large implies.
	upper := mathx.UpperHull(pts)
	c.minKnots = invertHull(upper, c.minCutoff)
	if len(c.maxKnots) == 0 || len(c.minKnots) == 0 {
		return nil, fmt.Errorf("octant: degenerate hulls from %d samples", len(samples))
	}
	return c, nil
}

// invertHull turns hull points (distance, delay) into increasing
// (delay, distance) knots, dropping knots beyond the delay cutoff and
// enforcing monotonicity in both coordinates by taking the running
// maximum of distance as delay increases.
func invertHull(hull []mathx.XY, cutoff float64) []mathx.XY {
	inv := make([]mathx.XY, 0, len(hull))
	for _, p := range hull {
		inv = append(inv, mathx.XY{X: p.Y, Y: p.X}) // (delay, distance)
	}
	sort.Slice(inv, func(i, j int) bool { return inv[i].X < inv[j].X })
	out := inv[:0]
	maxD := 0.0
	for _, p := range inv {
		if p.X > cutoff && len(out) > 0 {
			break
		}
		if p.Y < maxD {
			continue // keep distance nondecreasing in delay
		}
		maxD = p.Y
		if len(out) > 0 && mathx.ApproxEqual(out[len(out)-1].X, p.X) {
			out[len(out)-1].Y = p.Y
			continue
		}
		out = append(out, p)
	}
	return out
}

// MaxDistanceKm returns the maximum distance estimate for a one-way
// delay: hull interpolation up to the cutoff, then the fast empirical
// speed.
func (c *Curves) MaxDistanceKm(oneWayMs float64) float64 {
	d := evalKnots(c.maxKnots, oneWayMs, c.maxCutoff, fastEmpiricalSpeed)
	if lim := geo.MaxDistanceKm(oneWayMs, geo.BaselineSpeedKmPerMs); d > lim {
		d = lim
	}
	return d
}

// MinDistanceKm returns the minimum distance estimate for a one-way
// delay: below the hull's first knot the minimum is zero, inside it is
// hull interpolation, beyond the cutoff the slow empirical speed
// extends it. This is the assumption — a minimum travel speed — that
// §5 shows is invalid under heavy queueing.
func (c *Curves) MinDistanceKm(oneWayMs float64) float64 {
	if len(c.minKnots) == 0 || oneWayMs <= c.minKnots[0].X {
		return 0
	}
	d := evalKnots(c.minKnots, oneWayMs, c.minCutoff, slowEmpiricalSpeed)
	if d < 0 {
		return 0
	}
	if d > geo.HalfEquatorKm {
		d = geo.HalfEquatorKm
	}
	return d
}

// evalKnots interpolates increasing (delay, distance) knots at t, and
// extends linearly with speedBeyond past the cutoff (or past the last
// knot, whichever comes first).
func evalKnots(knots []mathx.XY, t, cutoff, speedBeyond float64) float64 {
	if len(knots) == 0 {
		return geo.MaxDistanceKm(t, speedBeyond)
	}
	last := knots[len(knots)-1]
	end := math.Min(cutoff, last.X)
	if t >= end {
		base := mathx.NewPiecewiseLinear(knots).At(end)
		return base + (t-end)*speedBeyond
	}
	if t <= knots[0].X {
		// Before the first knot, scale the first knot's implied speed.
		if knots[0].X <= 0 {
			return knots[0].Y
		}
		return knots[0].Y * t / knots[0].X
	}
	return mathx.NewPiecewiseLinear(knots).At(t)
}

// Calibration holds per-anchor curves and the pooled fallback.
type Calibration struct {
	curves map[netsim.HostID]*Curves
	pooled *Curves
}

// Calibrate fits curves for every anchor plus the pooled fallback.
func Calibrate(cons *atlas.Constellation) (*Calibration, error) {
	cal := &Calibration{curves: make(map[netsim.HostID]*Curves)}
	for _, a := range cons.Anchors() {
		pts := cons.Calibration(a.Host.ID)
		if len(pts) < 4 {
			continue
		}
		cv, err := FitCurves(pts)
		if err != nil {
			return nil, fmt.Errorf("octant: calibrating %s: %w", a.Host.ID, err)
		}
		cal.curves[a.Host.ID] = cv
	}
	pooled, err := FitCurves(cons.Pooled())
	if err != nil {
		return nil, fmt.Errorf("octant: pooled calibration: %w", err)
	}
	cal.pooled = pooled
	return cal, nil
}

// Curves returns the curves for a landmark, or the pooled fallback.
func (c *Calibration) Curves(id netsim.HostID) *Curves {
	if cv, ok := c.curves[id]; ok {
		return cv
	}
	return c.pooled
}

// Octant is the ring-multilateration algorithm.
type Octant struct {
	env *geoloc.Env
	cal *Calibration
}

// New builds a Quasi-Octant instance.
func New(env *geoloc.Env, cal *Calibration) *Octant {
	return &Octant{env: env, cal: cal}
}

// Name implements geoloc.Algorithm.
func (o *Octant) Name() string { return "Quasi-Octant" }

// Calibration exposes the fitted per-landmark curves (used by the
// reference-implementation benchmarks).
func (o *Octant) Calibration() *Calibration { return o.cal }

// Rings returns the per-landmark annulus constraints for a measurement set.
func (o *Octant) Rings(ms []geoloc.Measurement) []geo.Ring {
	ms = geoloc.Collapse(ms)
	rings := make([]geo.Ring, 0, len(ms))
	for _, m := range ms {
		cv := o.cal.Curves(m.LandmarkID)
		t := m.OneWayMs()
		rings = append(rings, geo.Ring{
			Center: m.Landmark,
			MinKm:  cv.MinDistanceKm(t),
			MaxKm:  cv.MaxDistanceKm(t),
		})
	}
	return rings
}

// Locate implements geoloc.Algorithm: the cells covered by the largest
// number of ring constraints, restricted to the physical exclusions.
// Ring rasterization draws on the Env's shared landmark distance fields.
func (o *Octant) Locate(ms []geoloc.Measurement) (*grid.Region, error) {
	ms = geoloc.Collapse(ms)
	if len(ms) == 0 {
		return nil, geoloc.ErrNoMeasurements
	}
	pad := o.env.PadKm()
	regions := make([]*grid.Region, 0, len(ms))
	for _, m := range ms {
		cv := o.cal.Curves(m.LandmarkID)
		t := m.OneWayMs()
		r := geo.Ring{
			Center: m.Landmark,
			MinKm:  cv.MinDistanceKm(t) - pad,
			MaxKm:  cv.MaxDistanceKm(t) + pad,
		}
		if r.MinKm < 0 {
			r.MinKm = 0
		}
		regions = append(regions, o.env.RingRegionFor(m.LandmarkID, r))
	}
	best := geoloc.IntersectOrArgmax(o.env.Grid, regions)
	return o.env.ApplyExclusions(best), nil
}

var _ geoloc.Algorithm = (*Octant)(nil)
