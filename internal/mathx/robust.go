package mathx

import (
	"errors"
	"math"
	"sort"
)

// MAD returns the median absolute deviation of xs about its median — the
// robust dispersion estimate the adversary-detection layer scores mesh
// and measurement residuals with (NaN for an empty slice). No
// consistency factor is applied; callers compare MADs to MADs.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, v := range xs {
		devs[i] = math.Abs(v - m)
	}
	return Median(devs)
}

// ErrTrimRange is returned when TrimmedLine's trim fraction is outside
// [0, 0.5).
var ErrTrimRange = errors.New("mathx: trim fraction must be in [0, 0.5)")

// TrimmedLine fits y = a + b·x by iteratively trimmed least squares: a
// Theil–Sen fit seeds the residuals, then (three rounds) the
// floor(trim·n) points with the largest absolute residuals are dropped
// and an OLS line is refit to the keepers. Ties in residual magnitude
// break by index, so the fit is a pure function of its inputs.
//
// The breakdown point is min(trim, ~0.29): contamination up to the trim
// fraction is excluded from the refit as long as the Theil–Sen seed
// (itself good to ~29% outliers) separates the gross outliers'
// residuals from the inliers' — the property the robust-fit tests pin.
// With trim = 0 the function degenerates to plain OLS seeded sanity
// checks (the Theil–Sen pass still runs but nothing is dropped).
func TrimmedLine(x, y []float64, trim float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, errors.New("mathx: mismatched slice lengths")
	}
	if trim < 0 || trim >= 0.5 {
		return Line{}, ErrTrimRange
	}
	n := len(x)
	drop := int(trim * float64(n))
	keep := n - drop
	if keep < 2 {
		return Line{}, ErrInsufficientData
	}
	line, err := TheilSen(x, y)
	if err != nil {
		return Line{}, err
	}
	if drop == 0 {
		if ols, err := FitLine(x, y); err == nil {
			return ols, nil
		}
		return line, nil
	}
	idx := make([]int, n)
	kx := make([]float64, 0, keep)
	ky := make([]float64, 0, keep)
	for iter := 0; iter < 3; iter++ {
		for i := range idx {
			idx[i] = i
		}
		resid := func(i int) float64 { return math.Abs(y[i] - line.At(x[i])) }
		sort.Slice(idx, func(a, b int) bool {
			ra, rb := resid(idx[a]), resid(idx[b])
			if ra != rb {
				return ra < rb
			}
			return idx[a] < idx[b]
		})
		kx, ky = kx[:0], ky[:0]
		for _, i := range idx[:keep] {
			kx = append(kx, x[i])
			ky = append(ky, y[i])
		}
		refit, err := FitLine(kx, ky)
		if err != nil {
			// Degenerate keeper set (e.g. all x equal): the previous
			// robust line is the best available answer.
			return line, nil
		}
		if refit == line {
			break
		}
		line = refit
	}
	return line, nil
}
