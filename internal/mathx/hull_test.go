package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLowerHullSquare(t *testing.T) {
	pts := []XY{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.5, 0.5}}
	h := LowerHull(pts)
	want := []XY{{0, 0}, {1, 0}}
	if len(h) != len(want) {
		t.Fatalf("hull = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hull[%d] = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestUpperHullSquare(t *testing.T) {
	pts := []XY{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0.5, 0.5}}
	h := UpperHull(pts)
	want := []XY{{0, 1}, {1, 1}}
	if len(h) != len(want) {
		t.Fatalf("hull = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hull[%d] = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestLowerHullBelowAllPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]XY, 40)
		for i := range pts {
			pts[i] = XY{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		h := LowerHull(pts)
		if len(h) == 0 {
			return false
		}
		pl := NewPiecewiseLinear(h)
		for _, p := range pts {
			if p.X >= h[0].X && p.X <= h[len(h)-1].X && pl.At(p.X) > p.Y+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowerHullIsConvex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]XY, 30)
		for i := range pts {
			pts[i] = XY{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		h := LowerHull(pts)
		for i := 2; i < len(h); i++ {
			if cross(h[i-2], h[i-1], h[i]) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowerHullDuplicateX(t *testing.T) {
	pts := []XY{{1, 5}, {1, 2}, {2, 9}, {2, 1}, {3, 4}}
	h := LowerHull(pts)
	// Only the minimum-Y at each X can appear.
	for _, p := range h {
		if p.X == 1 && p.Y != 2 {
			t.Errorf("kept non-minimal point at x=1: %v", p)
		}
		if p.X == 2 && p.Y != 1 {
			t.Errorf("kept non-minimal point at x=2: %v", p)
		}
	}
}

func TestLowerHullDegenerate(t *testing.T) {
	if h := LowerHull(nil); h != nil {
		t.Errorf("empty hull = %v", h)
	}
	one := LowerHull([]XY{{1, 1}})
	if len(one) != 1 || one[0] != (XY{1, 1}) {
		t.Errorf("single point hull = %v", one)
	}
	two := LowerHull([]XY{{2, 2}, {1, 1}})
	if len(two) != 2 || two[0] != (XY{1, 1}) {
		t.Errorf("two point hull = %v", two)
	}
}

func TestPiecewiseLinearInterpolation(t *testing.T) {
	pl := NewPiecewiseLinear([]XY{{0, 0}, {10, 100}, {20, 100}})
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 50}, {10, 100}, {15, 100}, {20, 100},
		{-5, -50}, // extrapolates with the first segment
		{25, 100}, // extrapolates with the last (flat) segment
	}
	for _, c := range cases {
		if got := pl.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("At(%f) = %f, want %f", c.x, got, c.want)
		}
	}
}

func TestPiecewiseLinearDegenerate(t *testing.T) {
	if got := NewPiecewiseLinear(nil).At(5); got != 0 {
		t.Errorf("empty curve At = %f", got)
	}
	if got := NewPiecewiseLinear([]XY{{3, 7}}).At(100); got != 7 {
		t.Errorf("single-knot curve At = %f", got)
	}
	same := NewPiecewiseLinear([]XY{{3, 7}, {3, 9}})
	if got := same.At(3); got != 7 {
		t.Errorf("vertical segment At = %f", got)
	}
}
