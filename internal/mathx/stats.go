package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation, without modifying the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Number of samples ≤ x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying samples.
func (e *ECDF) Quantile(q float64) float64 {
	return Quantile(e.sorted, q)
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// NormalPDF evaluates the Gaussian density with mean mu and standard
// deviation sigma at x. A non-positive sigma yields a point mass
// approximation (huge density at mu, zero elsewhere).
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x == mu {
			return math.MaxFloat64
		}
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// GroupedRegression summarizes a one-slope-per-group linear model, used to
// reproduce the paper's §4.3 tool-validation analysis (Figures 4–6).
type GroupedRegression struct {
	Groups map[string]Line
	// R2 is the coefficient of determination of the combined model.
	R2 float64
}

// FitGrouped fits an independent OLS line per group and reports the pooled
// R² of the combined model.
func FitGrouped(x, y []float64, group []string) (*GroupedRegression, error) {
	if len(x) != len(y) || len(x) != len(group) {
		return nil, ErrInsufficientData
	}
	idx := map[string][]int{}
	for i, g := range group {
		idx[g] = append(idx[g], i)
	}
	out := &GroupedRegression{Groups: make(map[string]Line, len(idx))}
	pred := make([]float64, len(x))
	for g, ids := range idx {
		gx := make([]float64, len(ids))
		gy := make([]float64, len(ids))
		for k, i := range ids {
			gx[k], gy[k] = x[i], y[i]
		}
		ln, err := FitLine(gx, gy)
		if err != nil {
			return nil, err
		}
		out.Groups[g] = ln
		for _, i := range ids {
			pred[i] = ln.At(x[i])
		}
	}
	out.R2 = RSquared(y, pred)
	return out, nil
}

// FTestNested compares two nested linear models by their residual sums of
// squares: rssFull with dfFull residual degrees of freedom against
// rssReduced with dfReduced. It returns the F statistic; large values mean
// the extra parameters of the full model matter. (We report F only — the
// paper quotes F and p; computing exact p-values needs the incomplete beta
// function, approximated here via FTestPValue.)
func FTestNested(rssReduced, rssFull float64, dfReduced, dfFull int) float64 {
	dn := dfReduced - dfFull
	if dn <= 0 || dfFull <= 0 || rssFull <= 0 {
		return math.NaN()
	}
	return ((rssReduced - rssFull) / float64(dn)) / (rssFull / float64(dfFull))
}

// FTestPValue approximates the upper-tail p-value of an F(d1, d2)
// distribution via the regularized incomplete beta function computed with
// a continued fraction (Lentz's algorithm).
func FTestPValue(f float64, d1, d2 int) float64 {
	if math.IsNaN(f) || f <= 0 || d1 <= 0 || d2 <= 0 {
		return math.NaN()
	}
	x := float64(d2) / (float64(d2) + float64(d1)*f)
	return regIncBeta(float64(d2)/2, float64(d1)/2, x)
}

// regIncBeta computes I_x(a, b), the regularized incomplete beta function,
// via the standard continued-fraction expansion (modified Lentz).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) where the continued
	// fraction converges fastest.
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	const maxIter = 300
	const eps = 1e-13
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		var num float64
		m := i / 2
		fm := float64(m)
		switch {
		case i == 0:
			num = 1
		case i%2 == 0:
			num = (fm * (b - fm) * x) / ((a + 2*fm - 1) * (a + 2*fm))
		default:
			num = -((a + fm) * (a + b + fm) * x) / ((a + 2*fm) * (a + 2*fm + 1))
		}
		d = 1 + num*d
		if math.Abs(d) < 1e-30 {
			d = 1e-30
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < 1e-30 {
			c = 1e-30
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
