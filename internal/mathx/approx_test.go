package mathx

import (
	"math"
	"testing"
)

func TestWithin(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-12, true},
		{0, 0, 1e-12, true},
		{1, 1 + 1e-12, 1e-9, true},           // relative regime
		{1e6, 1e6 * (1 + 1e-12), 1e-9, true}, // scales with magnitude
		{1e6, 1e6 * (1 + 1e-6), 1e-9, false}, // beyond tolerance
		{0, 1e-12, 1e-9, true},               // absolute regime near zero
		{0, 1e-3, 1e-9, false},               //
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
	}
	for _, c := range cases {
		if got := Within(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Within(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualULPNoise(t *testing.T) {
	// The use case from the geometry kernel: acos-dot and haversine
	// distances for the same pair differ by a few ULPs on km scales.
	d := 4242.4242424242
	noisy := d * (1 + 4*2.220446049250313e-16)
	if d == noisy {
		t.Skip("could not construct ULP-separated pair")
	}
	if !ApproxEqual(d, noisy) {
		t.Errorf("ApproxEqual must absorb ULP noise: %v vs %v", d, noisy)
	}
	if ApproxEqual(d, d+1) {
		t.Errorf("ApproxEqual(%v, %v) = true: a kilometre is not noise", d, d+1)
	}
}
