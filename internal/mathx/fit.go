// Package mathx provides the numerical routines the geolocation algorithms
// rely on: ordinary and robust line fitting, constrained cubic least
// squares, lower convex hulls, empirical CDFs, and basic linear-model
// statistics (R², F-tests).
//
// Everything here is plain float64 math over slices; no external solvers.
package mathx

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when a fit is requested with fewer points
// than free parameters.
var ErrInsufficientData = errors.New("mathx: insufficient data for fit")

// Line is y = Intercept + Slope*x.
type Line struct {
	Slope     float64
	Intercept float64
}

// At evaluates the line at x.
func (l Line) At(x float64) float64 { return l.Intercept + l.Slope*x }

// InvertX returns the x at which the line attains y. It returns +Inf for a
// zero slope with y above the intercept, and 0 for y below the intercept.
func (l Line) InvertX(y float64) float64 {
	if l.Slope == 0 {
		if y >= l.Intercept {
			return math.Inf(1)
		}
		return 0
	}
	x := (y - l.Intercept) / l.Slope
	if x < 0 {
		return 0
	}
	return x
}

// FitLine computes the ordinary-least-squares line through (x, y).
func FitLine(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, errors.New("mathx: mismatched slice lengths")
	}
	if len(x) < 2 {
		return Line{}, ErrInsufficientData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Line{}, errors.New("mathx: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	return Line{Slope: slope, Intercept: (sy - slope*sx) / n}, nil
}

// LineCI is a fitted line with 95% confidence half-widths on its
// parameters — the gray bands of the paper's Figure 4.
type LineCI struct {
	Line
	SlopeCI95     float64 // half-width of the slope's 95% CI
	InterceptCI95 float64
	ResidualSE    float64
}

// FitLineCI fits by OLS and computes normal-approximation 95% confidence
// intervals for both parameters.
func FitLineCI(x, y []float64) (LineCI, error) {
	line, err := FitLine(x, y)
	if err != nil {
		return LineCI{}, err
	}
	n := float64(len(x))
	if n < 3 {
		return LineCI{Line: line}, nil
	}
	mx := Mean(x)
	var ssRes, sxx float64
	for i := range x {
		r := y[i] - line.At(x[i])
		ssRes += r * r
		d := x[i] - mx
		sxx += d * d
	}
	se := math.Sqrt(ssRes / (n - 2))
	out := LineCI{Line: line, ResidualSE: se}
	if sxx > 0 {
		seSlope := se / math.Sqrt(sxx)
		var sx2 float64
		for _, v := range x {
			sx2 += v * v
		}
		seIntercept := se * math.Sqrt(sx2/(n*sxx))
		const z95 = 1.96
		out.SlopeCI95 = z95 * seSlope
		out.InterceptCI95 = z95 * seIntercept
	}
	return out, nil
}

// FitLineThroughOrigin computes the least-squares slope of y = Slope*x.
func FitLineThroughOrigin(x, y []float64) (Line, error) {
	if len(x) != len(y) || len(x) == 0 {
		return Line{}, ErrInsufficientData
	}
	var sxx, sxy float64
	for i := range x {
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	if sxx == 0 {
		return Line{}, errors.New("mathx: degenerate x values")
	}
	return Line{Slope: sxy / sxx}, nil
}

// TheilSen computes the robust Theil–Sen line: slope is the median of all
// pairwise slopes, intercept the median of y - slope*x. It tolerates up to
// ~29% outliers, which is what the η estimation in the paper's Figure 13
// ("a robust linear regression") needs.
func TheilSen(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, errors.New("mathx: mismatched slice lengths")
	}
	n := len(x)
	if n < 2 {
		return Line{}, ErrInsufficientData
	}
	slopes := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[j] - x[i]
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (y[j]-y[i])/dx)
		}
	}
	if len(slopes) == 0 {
		return Line{}, errors.New("mathx: degenerate x values")
	}
	slope := Median(slopes)
	resid := make([]float64, n)
	for i := range x {
		resid[i] = y[i] - slope*x[i]
	}
	return Line{Slope: slope, Intercept: Median(resid)}, nil
}

// RSquared returns the coefficient of determination of predictions pred
// against observations y.
func RSquared(y, pred []float64) float64 {
	if len(y) != len(pred) || len(y) == 0 {
		return math.NaN()
	}
	mean := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		r := y[i] - pred[i]
		ssRes += r * r
		d := y[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// Cubic is y = C0 + C1·x + C2·x² + C3·x³.
type Cubic struct {
	C [4]float64
}

// At evaluates the polynomial at x.
func (c Cubic) At(x float64) float64 {
	return c.C[0] + x*(c.C[1]+x*(c.C[2]+x*c.C[3]))
}

// IncreasingOn reports whether the cubic is nondecreasing over [lo, hi],
// checked at the analytic critical points of its derivative.
func (c Cubic) IncreasingOn(lo, hi float64) bool {
	// derivative: C1 + 2·C2·x + 3·C3·x²  must be ≥ 0 on [lo, hi].
	d := func(x float64) float64 { return c.C[1] + 2*c.C[2]*x + 3*c.C[3]*x*x }
	if d(lo) < -1e-9 || d(hi) < -1e-9 {
		return false
	}
	// Vertex of the derivative parabola.
	if c.C[3] != 0 {
		v := -c.C[2] / (3 * c.C[3])
		if v > lo && v < hi && d(v) < -1e-9 {
			return false
		}
	}
	return true
}

// FitCubic fits a cubic polynomial to (x, y) by least squares, solving the
// 4×4 normal equations with partial-pivot Gaussian elimination.
func FitCubic(x, y []float64) (Cubic, error) {
	if len(x) != len(y) {
		return Cubic{}, errors.New("mathx: mismatched slice lengths")
	}
	if len(x) < 4 {
		return Cubic{}, ErrInsufficientData
	}
	// Normal equations: (XᵀX) c = Xᵀy with X = [1 x x² x³].
	var a [4][5]float64
	var pows [7]float64 // Σ x^k for k=0..6
	var rhs [4]float64
	for i := range x {
		p := 1.0
		for k := 0; k <= 6; k++ {
			pows[k] += p
			if k < 4 {
				rhs[k] += p * y[i]
			}
			p *= x[i]
		}
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			a[r][c] = pows[r+c]
		}
		a[r][4] = rhs[r]
	}
	coef, err := solve4(a)
	if err != nil {
		return Cubic{}, err
	}
	return Cubic{C: coef}, nil
}

// FitCubicIncreasing fits a cubic to (x, y) and, if the unconstrained fit
// is not nondecreasing over the observed x range, falls back first to a
// quadratic-free ("shrunk") cubic and ultimately to the OLS line — matching
// the paper's Spotter reimplementation, which constrains each curve to be
// increasing everywhere because "anything more flexible led to severe
// overfitting".
func FitCubicIncreasing(x, y []float64) (Cubic, error) {
	if len(x) < 4 {
		ln, err := FitLine(x, y)
		if err != nil {
			return Cubic{}, err
		}
		return Cubic{C: [4]float64{ln.Intercept, ln.Slope, 0, 0}}, nil
	}
	lo, hi := MinMax(x)
	c, err := FitCubic(x, y)
	if err == nil && c.IncreasingOn(lo, hi) {
		return c, nil
	}
	// The OLS line is the monotone anchor (after flooring its slope at
	// zero); blend the cubic toward it and keep the most cubic-like
	// monotone blend. Blending full coefficient vectors preserves fit
	// quality far better than merely shrinking the nonlinear terms.
	ln, lerr := FitLine(x, y)
	if lerr != nil {
		return Cubic{}, lerr
	}
	if ln.Slope < 0 {
		ln.Slope = 0
		ln.Intercept = Mean(y)
	}
	lineCubic := Cubic{C: [4]float64{ln.Intercept, ln.Slope, 0, 0}}
	if err == nil {
		for _, alpha := range []float64{0.8, 0.6, 0.4, 0.2, 0.1} {
			var b Cubic
			for i := range b.C {
				b.C[i] = alpha*c.C[i] + (1-alpha)*lineCubic.C[i]
			}
			if b.IncreasingOn(lo, hi) {
				return b, nil
			}
		}
	}
	return lineCubic, nil
}

func solve4(a [4][5]float64) ([4]float64, error) {
	const n = 4
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return [4]float64{}, errors.New("mathx: singular normal equations")
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var out [4]float64
	for i := 0; i < n; i++ {
		out[i] = a[i][n] / a[i][i]
	}
	return out, nil
}
