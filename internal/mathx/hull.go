package mathx

import "sort"

// XY is a point in the plane, used by convex-hull routines over
// (distance, delay) calibration scatter.
type XY struct {
	X, Y float64
}

// LowerHull returns the lower convex hull of the given points, sorted by
// increasing X. The lower hull is the boundary an Octant-style calibration
// traces under a delay-vs-distance scatterplot: the fastest observed travel
// at every distance. Ties in X keep only the lowest Y.
func LowerHull(pts []XY) []XY {
	if len(pts) == 0 {
		return nil
	}
	s := append([]XY(nil), pts...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].X != s[j].X {
			return s[i].X < s[j].X
		}
		return s[i].Y < s[j].Y
	})
	// Drop duplicate X, keeping the minimum Y (already first after sort).
	uniq := s[:0]
	for i, p := range s {
		if i > 0 && p.X == uniq[len(uniq)-1].X {
			continue
		}
		uniq = append(uniq, p)
	}
	s = uniq
	if len(s) <= 2 {
		return append([]XY(nil), s...)
	}
	hull := make([]XY, 0, len(s))
	for _, p := range s {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull
}

// UpperHull returns the upper convex hull of the given points, sorted by
// increasing X: the slowest observed travel at every distance.
func UpperHull(pts []XY) []XY {
	neg := make([]XY, len(pts))
	for i, p := range pts {
		neg[i] = XY{X: p.X, Y: -p.Y}
	}
	h := LowerHull(neg)
	for i := range h {
		h[i].Y = -h[i].Y
	}
	return h
}

// cross returns the z component of (b-a) × (c-a); positive when the turn
// a→b→c is counterclockwise.
func cross(a, b, c XY) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// PiecewiseLinear is a monotone-in-X piecewise-linear curve, evaluated by
// interpolation between knots and linear extrapolation beyond them.
type PiecewiseLinear struct {
	Knots []XY // sorted by X, at least one
}

// NewPiecewiseLinear builds a curve from knots, which must be sorted by X.
func NewPiecewiseLinear(knots []XY) *PiecewiseLinear {
	return &PiecewiseLinear{Knots: append([]XY(nil), knots...)}
}

// At evaluates the curve at x.
func (pl *PiecewiseLinear) At(x float64) float64 {
	k := pl.Knots
	switch {
	case len(k) == 0:
		return 0
	case len(k) == 1:
		return k[0].Y
	case x <= k[0].X:
		return extrapolate(k[0], k[1], x)
	case x >= k[len(k)-1].X:
		return extrapolate(k[len(k)-2], k[len(k)-1], x)
	}
	i := sort.Search(len(k), func(i int) bool { return k[i].X >= x })
	return extrapolate(k[i-1], k[i], x)
}

func extrapolate(a, b XY, x float64) float64 {
	if b.X == a.X {
		return a.Y
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}
