package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// exactCorpus draws n x-values and puts y exactly on the line, so the
// clean fit is recoverable to machine precision and the contamination
// property below can use the strict ApproxEqual tolerance.
func exactCorpus(rng *rand.Rand, n int, line Line) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 9000
		y[i] = line.At(x[i])
	}
	return x, y
}

// TestTrimmedLineContaminationProperty is the robust-fit property test:
// across seeded corpora, contamination below the breakdown fraction
// leaves the fitted slope and intercept within ApproxEqual of the clean
// fit.
func TestTrimmedLineContaminationProperty(t *testing.T) {
	const n, trim = 60, 0.3
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		truth := Line{Slope: 0.005 + rng.Float64()*0.02, Intercept: rng.Float64() * 40}
		x, y := exactCorpus(rng, n, truth)
		clean, err := TrimmedLine(x, y, trim)
		if err != nil {
			t.Fatalf("seed %d: clean fit: %v", seed, err)
		}
		if !ApproxEqual(clean.Slope, truth.Slope) || !ApproxEqual(clean.Intercept, truth.Intercept) {
			t.Fatalf("seed %d: clean fit %+v != truth %+v", seed, clean, truth)
		}

		// Contaminate strictly below the trim fraction: 25% gross
		// outliers in both directions.
		dirty := int(0.25 * n)
		for _, i := range rng.Perm(n)[:dirty] {
			off := 4000 + rng.Float64()*6000
			if rng.Float64() < 0.5 {
				off = -off
			}
			y[i] = truth.At(x[i]) + off
		}
		got, err := TrimmedLine(x, y, trim)
		if err != nil {
			t.Fatalf("seed %d: contaminated fit: %v", seed, err)
		}
		if !ApproxEqual(got.Slope, clean.Slope) {
			t.Errorf("seed %d: slope %v drifted from clean %v under 25%% contamination", seed, got.Slope, clean.Slope)
		}
		if !ApproxEqual(got.Intercept, clean.Intercept) {
			t.Errorf("seed %d: intercept %v drifted from clean %v under 25%% contamination", seed, got.Intercept, clean.Intercept)
		}
	}
}

// TestTrimmedLineBreakdown demonstrates the breakdown point: a
// consistent majority shift (55% of points offset by +1000) captures
// the fit, so the intercept lands near the contaminated plateau rather
// than the clean one. This is the failure the breakdown fraction
// promises, not a bug.
func TestTrimmedLineBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	truth := Line{Slope: 0.012, Intercept: 10}
	x, y := exactCorpus(rng, 60, truth)
	for _, i := range rng.Perm(60)[:33] {
		y[i] = truth.At(x[i]) + 1000
	}
	got, err := TrimmedLine(x, y, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Intercept-truth.Intercept) < 500 {
		t.Errorf("intercept %v survived 55%% consistent contamination; breakdown point is supposed to be ~trim", got.Intercept)
	}
}

func TestTrimmedLineMatchesOLSWhenTrimZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = 5 + 0.3*x[i] + rng.NormFloat64()
	}
	ols, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrimmedLine(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(got.Slope, ols.Slope) || !ApproxEqual(got.Intercept, ols.Intercept) {
		t.Errorf("trim=0 fit %+v != OLS %+v", got, ols)
	}
}

func TestTrimmedLineErrors(t *testing.T) {
	if _, err := TrimmedLine([]float64{1, 2}, []float64{1}, 0.2); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := TrimmedLine([]float64{1, 2, 3}, []float64{1, 2, 3}, 0.5); err != ErrTrimRange {
		t.Errorf("trim 0.5 accepted: %v", err)
	}
	if _, err := TrimmedLine([]float64{1, 2, 3}, []float64{1, 2, 3}, -0.1); err != ErrTrimRange {
		t.Errorf("negative trim accepted: %v", err)
	}
	if _, err := TrimmedLine([]float64{1, 2, 3}, []float64{1, 2, 3}, 0.4); err != nil {
		t.Errorf("keep=2 rejected: %v", err)
	}
	if _, err := TrimmedLine([]float64{1}, []float64{1}, 0.2); err != ErrInsufficientData {
		t.Errorf("single point accepted: %v", err)
	}
}

func TestMAD(t *testing.T) {
	if got := MAD([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("MAD of constants = %v", got)
	}
	// Median 3, deviations {2,1,0,1,2} -> median 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); !ApproxEqual(got, 1) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD(nil) not NaN")
	}
}
