package mathx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %f, want 5", m)
	}
	if m := Median(xs); math.Abs(m-4.5) > 1e-12 {
		t.Errorf("Median = %f, want 4.5", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("StdDev = %f, want ≈2.138", s)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of one sample is 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%f) = %f, want %f", c.q, got, c.want)
		}
	}
	// Quantile must not mutate its input.
	shuffled := []float64{5, 1, 4, 2, 3}
	Quantile(shuffled, 0.5)
	if shuffled[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF.At(%f) = %f, want %f", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if q := e.Quantile(0.5); math.Abs(q-2) > 1e-12 {
		t.Errorf("ECDF median = %f, want 2", q)
	}
}

func TestECDFIsProperCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		e := NewECDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return e.At(sorted[len(sorted)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalPDF(t *testing.T) {
	// Peak of a standard normal.
	if got := NormalPDF(0, 0, 1); math.Abs(got-0.39894) > 1e-4 {
		t.Errorf("N(0;0,1) = %f", got)
	}
	// Symmetry.
	if NormalPDF(1, 0, 1) != NormalPDF(-1, 0, 1) {
		t.Error("normal pdf should be symmetric")
	}
	// Degenerate sigma.
	if NormalPDF(1, 0, 0) != 0 {
		t.Error("point mass away from mean should be 0")
	}
	if NormalPDF(0, 0, 0) != math.MaxFloat64 {
		t.Error("point mass at mean should be huge")
	}
}

func TestFitGrouped(t *testing.T) {
	// Two groups with different slopes, the scenario of Figure 4:
	// one-round-trip and two-round-trip measurements.
	var x, y []float64
	var g []string
	for i := 0; i < 50; i++ {
		fx := float64(i) * 100
		x = append(x, fx, fx)
		y = append(y, 10+0.034*fx, 20+0.067*fx)
		g = append(g, "one", "two")
	}
	gr, err := FitGrouped(x, y, g)
	if err != nil {
		t.Fatal(err)
	}
	one, two := gr.Groups["one"], gr.Groups["two"]
	ratio := two.Slope / one.Slope
	if math.Abs(ratio-1.97) > 0.02 {
		t.Errorf("slope ratio = %f, want ≈1.97", ratio)
	}
	if gr.R2 < 0.999 {
		t.Errorf("noiseless grouped fit R² = %f", gr.R2)
	}
}

func TestFTest(t *testing.T) {
	// Full model fits better: F should be positive and p small when the
	// improvement is large relative to residual noise.
	f := FTestNested(100, 10, 48, 46)
	if f <= 0 {
		t.Fatalf("F = %f", f)
	}
	p := FTestPValue(f, 2, 46)
	if !(p > 0 && p < 1e-6) {
		t.Errorf("p = %g, want tiny", p)
	}
	// No improvement: F ≈ 0, p ≈ 1.
	f0 := FTestNested(10.0001, 10, 48, 46)
	p0 := FTestPValue(f0, 2, 46)
	if p0 < 0.9 {
		t.Errorf("null p = %f, want ≈1", p0)
	}
	if !math.IsNaN(FTestNested(10, 10, 46, 46)) {
		t.Error("degenerate df should give NaN")
	}
}

func TestFTestPValueKnown(t *testing.T) {
	// F(1, 10) upper tail at 4.965 ≈ 0.05 (classic table value).
	p := FTestPValue(4.965, 1, 10)
	if math.Abs(p-0.05) > 0.002 {
		t.Errorf("p = %f, want ≈0.05", p)
	}
	// F(5, 20) at 2.71 ≈ 0.05.
	p = FTestPValue(2.71, 5, 20)
	if math.Abs(p-0.05) > 0.003 {
		t.Errorf("p = %f, want ≈0.05", p)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %f,%f", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("MinMax(nil) should be NaN, NaN")
	}
}
