package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	ln, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ln.Slope-2) > 1e-9 || math.Abs(ln.Intercept-1) > 1e-9 {
		t.Errorf("got %+v, want slope 2 intercept 1", ln)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for constant x")
	}
}

func TestFitLineRecoversNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = 5 + 0.7*x[i] + rng.NormFloat64()*0.5
	}
	ln, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ln.Slope-0.7) > 0.02 || math.Abs(ln.Intercept-5) > 0.5 {
		t.Errorf("recovered %+v, want slope 0.7 intercept 5", ln)
	}
	pred := make([]float64, n)
	for i := range x {
		pred[i] = ln.At(x[i])
	}
	if r2 := RSquared(y, pred); r2 < 0.99 {
		t.Errorf("R² = %f, want > 0.99", r2)
	}
}

func TestFitLineCI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 50
		y[i] = 3 + 2*x[i] + rng.NormFloat64()
	}
	ci, err := FitLineCI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// The true slope must be inside the CI (with overwhelming
	// probability at this n and noise level).
	if math.Abs(ci.Slope-2) > ci.SlopeCI95+0.05 {
		t.Errorf("true slope outside CI: %.3f ± %.3f", ci.Slope, ci.SlopeCI95)
	}
	if ci.SlopeCI95 <= 0 || ci.InterceptCI95 <= 0 || ci.ResidualSE <= 0 {
		t.Errorf("degenerate CI: %+v", ci)
	}
	// More noise → wider CI.
	for i := range y {
		y[i] = 3 + 2*x[i] + rng.NormFloat64()*10
	}
	wide, err := FitLineCI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if wide.SlopeCI95 <= ci.SlopeCI95 {
		t.Errorf("noisier data should widen the CI: %.4f vs %.4f", wide.SlopeCI95, ci.SlopeCI95)
	}
	// Tiny input: CI fields stay zero but the line is returned.
	small, err := FitLineCI([]float64{0, 1}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.Slope != 2 || small.SlopeCI95 != 0 {
		t.Errorf("two-point fit %+v", small)
	}
}

func TestFitLineThroughOrigin(t *testing.T) {
	ln, err := FitLineThroughOrigin([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ln.Slope-2) > 1e-12 || ln.Intercept != 0 {
		t.Errorf("got %+v", ln)
	}
}

func TestTheilSenRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 10 + 0.49*x[i] + rng.NormFloat64()*0.2
	}
	// Corrupt 20% of the points badly.
	for i := 0; i < 20; i++ {
		y[rng.Intn(n)] += 500
	}
	ln, err := TheilSen(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ln.Slope-0.49) > 0.02 {
		t.Errorf("Theil-Sen slope %f, want ≈0.49 despite outliers", ln.Slope)
	}
	// OLS, by contrast, should be dragged off by the outliers.
	ols, _ := FitLine(x, y)
	if math.Abs(ols.Slope-0.49) < math.Abs(ln.Slope-0.49) {
		t.Error("OLS unexpectedly more robust than Theil-Sen here")
	}
}

func TestLineInvertX(t *testing.T) {
	ln := Line{Slope: 2, Intercept: 10}
	if got := ln.InvertX(20); math.Abs(got-5) > 1e-12 {
		t.Errorf("InvertX(20) = %f, want 5", got)
	}
	if got := ln.InvertX(0); got != 0 {
		t.Errorf("InvertX below intercept should clamp to 0, got %f", got)
	}
	flat := Line{Slope: 0, Intercept: 10}
	if got := flat.InvertX(20); !math.IsInf(got, 1) {
		t.Errorf("flat line InvertX above intercept = %f, want +Inf", got)
	}
	if got := flat.InvertX(5); got != 0 {
		t.Errorf("flat line InvertX below intercept = %f, want 0", got)
	}
}

func TestFitCubicExact(t *testing.T) {
	// y = 1 + 2x - 0.5x² + 0.25x³
	want := Cubic{C: [4]float64{1, 2, -0.5, 0.25}}
	var x, y []float64
	for i := -10; i <= 10; i++ {
		fx := float64(i) / 2
		x = append(x, fx)
		y = append(y, want.At(fx))
	}
	got, err := FitCubic(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.C {
		if math.Abs(got.C[i]-want.C[i]) > 1e-6 {
			t.Errorf("coefficient %d: got %f, want %f", i, got.C[i], want.C[i])
		}
	}
}

func TestFitCubicIncreasingIsMonotone(t *testing.T) {
	// A strongly non-monotone target: fit must still come back monotone.
	rng := rand.New(rand.NewSource(3))
	var x, y []float64
	for i := 0; i < 200; i++ {
		fx := rng.Float64() * 100
		x = append(x, fx)
		y = append(y, 50*math.Sin(fx/10)+fx*0.01+rng.NormFloat64())
	}
	c, err := FitCubicIncreasing(x, y)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MinMax(x)
	if !c.IncreasingOn(lo, hi) {
		t.Errorf("FitCubicIncreasing returned non-monotone cubic %+v", c)
	}
}

func TestFitCubicIncreasingFewPoints(t *testing.T) {
	c, err := FitCubicIncreasing([]float64{0, 1, 2}, []float64{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.At(3)-6) > 1e-9 {
		t.Errorf("3-point fall-back line At(3) = %f, want 6", c.At(3))
	}
}

func TestCubicIncreasingOn(t *testing.T) {
	inc := Cubic{C: [4]float64{0, 1, 0, 0}}
	if !inc.IncreasingOn(0, 100) {
		t.Error("y=x should be increasing")
	}
	dec := Cubic{C: [4]float64{0, -1, 0, 0}}
	if dec.IncreasingOn(0, 100) {
		t.Error("y=-x should not be increasing")
	}
	// Cubic with an interior dip: x³ - 3x has derivative 3x²-3, negative on (-1,1).
	dip := Cubic{C: [4]float64{0, -3, 0, 1}}
	if dip.IncreasingOn(-2, 2) {
		t.Error("x³-3x dips on (-1,1)")
	}
	if !dip.IncreasingOn(2, 5) {
		t.Error("x³-3x increases beyond x=1")
	}
}

func TestSolve4Singular(t *testing.T) {
	// All x identical → singular normal equations.
	if _, err := FitCubic([]float64{1, 1, 1, 1, 1}, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Error("want singularity error")
	}
}

func TestRSquaredProperties(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if r := RSquared(y, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect prediction R² = %f, want 1", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(y, mean); math.Abs(r) > 1e-12 {
		t.Errorf("mean prediction R² = %f, want 0", r)
	}
	if !math.IsNaN(RSquared(nil, nil)) {
		t.Error("empty R² should be NaN")
	}
}

func TestQuickTheilSenMatchesExactLine(t *testing.T) {
	f := func(slope, intercept float64, seed int64) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || math.Abs(slope) > 1e6 {
			return true
		}
		if math.IsNaN(intercept) || math.IsInf(intercept, 0) || math.Abs(intercept) > 1e6 {
			return true
		}
		x := []float64{0, 1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = intercept + slope*x[i]
		}
		ln, err := TheilSen(x, y)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Abs(slope))
		return math.Abs(ln.Slope-slope) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
