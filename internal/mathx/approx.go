package mathx

import "math"

// DefaultTol is the tolerance ApproxEqual uses: well above the ULP
// noise that separates the vector kernel's acos-dot distances from the
// haversine reference (relative error ~1e-15 on kilometre scales), and
// far below any physically meaningful difference in delay or distance.
const DefaultTol = 1e-9

// Within reports whether a and b agree to within a mixed
// absolute/relative tolerance: |a-b| <= tol*max(1, |a|, |b|). The
// max(1, ...) floor makes the test absolute near zero and relative for
// large magnitudes, so it is usable on raw kilometres, milliseconds
// and log-posteriors alike. NaNs are never within anything.
func Within(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { // handles equal infinities and exact matches
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal with an infinite side: no finite tolerance helps
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// ApproxEqual reports whether a and b agree to within DefaultTol. It
// is the comparison the floatexact analyzer (DESIGN.md §9) directs
// geometry code to use instead of == / != on floats.
func ApproxEqual(a, b float64) bool { return Within(a, b, DefaultTol) }
