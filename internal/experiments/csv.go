package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"activegeo/internal/worldmap"
)

// CSV writers: every figure with a data series can emit it as CSV, so
// the rows the paper plots can be regenerated with any plotting tool.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV emits the Figure 9 comparison rows.
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Algorithm, strconv.Itoa(r.Hosts), f(r.Coverage),
			f(r.MissMedian), f(r.MissP90), f(r.MissP97),
			f(r.CentroidMedian), f(r.AreaMedianFrac),
		})
	}
	return writeCSV(w, []string{
		"algorithm", "hosts", "coverage",
		"miss_p50_km", "miss_p90_km", "miss_p97_km",
		"centroid_p50_km", "area_p50_land_frac",
	}, out)
}

// WriteFig9HostsCSV emits the per-host records behind the three Figure 9
// CDF panels, one row per host×algorithm.
func WriteFig9HostsCSV(w io.Writer, records []Fig9HostRecord) error {
	out := make([][]string, 0, len(records))
	for _, r := range records {
		out = append(out, []string{
			r.Algorithm, r.Host, f(r.MissKm), f(r.CentroidKm), f(r.AreaLandFrac),
			strconv.FormatBool(r.Empty),
		})
	}
	return writeCSV(w, []string{"algorithm", "host", "miss_km", "centroid_km", "area_land_frac", "empty"}, out)
}

// WriteFig5CSV emits the Windows browser noise rows.
func WriteFig5CSV(w io.Writer, rows []Fig5Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Browser, f(r.SlopeRatio), strconv.Itoa(r.HighOutliers),
			strconv.Itoa(r.Samples), f(r.MeanOutlierMs),
		})
	}
	return writeCSV(w, []string{"browser", "slope_ratio", "high_outliers", "samples", "mean_outlier_ms"}, out)
}

// WriteFig11CSV emits the landmark-effectiveness bins.
func WriteFig11CSV(w io.Writer, r *Fig11Result) error {
	out := make([][]string, 0, len(r.Bins))
	for _, b := range r.Bins {
		out = append(out, []string{
			f(b.MaxDistKm), strconv.Itoa(b.Effective), strconv.Itoa(b.Ineffective), f(b.MeanReduction),
		})
	}
	return writeCSV(w, []string{"max_dist_km", "effective", "ineffective", "mean_reduction_km2"}, out)
}

// WriteFig17CSV emits the per-country claimed/probable counts.
func WriteFig17CSV(w io.Writer, r *Fig17Result) error {
	probable := map[string]int{}
	for _, b := range r.TopProbable {
		probable[b.Country] = b.Count
	}
	out := make([][]string, 0, len(r.TopClaimed))
	for _, b := range r.TopClaimed {
		out = append(out, []string{b.Country, strconv.Itoa(b.Count), strconv.Itoa(probable[b.Country])})
	}
	return writeCSV(w, []string{"country", "claimed", "probable"}, out)
}

// WriteFig18CSV emits the provider×country honesty cells.
func WriteFig18CSV(w io.Writer, r *Fig18Result) error {
	out := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		out = append(out, []string{
			c.Provider, c.Country, strconv.Itoa(c.Claimed),
			strconv.Itoa(c.Backed), strconv.Itoa(c.Credible), f(c.Honesty()),
		})
	}
	return writeCSV(w, []string{"provider", "country", "claimed", "backed", "credible", "honesty"}, out)
}

// WriteFig21CSV emits the method-agreement matrix.
func WriteFig21CSV(w io.Writer, rows []Fig21Row) error {
	if len(rows) == 0 {
		return nil
	}
	dbNames := make([]string, 0, len(rows[0].Databases))
	for name := range rows[0].Databases {
		dbNames = append(dbNames, name)
	}
	sort.Strings(dbNames)
	header := []string{"provider", "cbgpp_generous", "cbgpp_strict", "iclab"}
	header = append(header, dbNames...)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := []string{r.Provider, f(r.CBGppGenerous), f(r.CBGppStrict), f(r.ICLab)}
		for _, name := range dbNames {
			row = append(row, f(r.Databases[name]))
		}
		out = append(out, row)
	}
	return writeCSV(w, header, out)
}

// WriteFig22CSV emits the continent confusion matrix in long form.
func WriteFig22CSV(w io.Writer, r *ConfusionResult) error {
	conts := worldmap.AllContinents()
	var out [][]string
	for _, a := range conts {
		for _, b := range conts {
			n := r.Continents[[2]string{a.String(), b.String()}]
			if n == 0 {
				continue
			}
			out = append(out, []string{a.String(), b.String(), strconv.Itoa(n)})
		}
	}
	return writeCSV(w, []string{"continent_a", "continent_b", "count"}, out)
}

// WriteFig23CSV emits the country confusion matrix in long form.
func WriteFig23CSV(w io.Writer, r *ConfusionResult) error {
	type pair struct {
		a, b string
		n    int
	}
	var pairs []pair
	for k, n := range r.Countries {
		if k[0] <= k[1] {
			pairs = append(pairs, pair{k[0], k[1], n})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].a+pairs[i].b < pairs[j].a+pairs[j].b
	})
	out := make([][]string, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, []string{p.a, p.b, strconv.Itoa(p.n)})
	}
	return writeCSV(w, []string{"country_a", "country_b", "count"}, out)
}

// WriteRobustnessCSV emits the loss sweep in long form: one row per
// (loss rate, algorithm) with the point's audit tallies and coverage
// repeated alongside that algorithm's mean region size.
func WriteRobustnessCSV(w io.Writer, r *RobustnessResult) error {
	var out [][]string
	for _, p := range r.Points {
		for _, a := range p.Areas {
			out = append(out, []string{
				f(p.Loss), strconv.Itoa(p.Tally.Credible), strconv.Itoa(p.Tally.Uncertain),
				strconv.Itoa(p.Tally.False), f(p.MeanCoverage),
				strconv.Itoa(p.MeasureFailures), strconv.Itoa(p.DegradedServers),
				strconv.Itoa(p.Disconnects), strconv.Itoa(p.LostLandmarks),
				a.Algorithm, strconv.Itoa(a.Hosts), f(a.MeanAreaKm2),
			})
		}
	}
	return writeCSV(w, []string{
		"loss", "credible", "uncertain", "false", "mean_coverage",
		"measure_failures", "degraded_servers", "disconnects", "lost_landmarks",
		"algorithm", "hosts", "mean_area_km2",
	}, out)
}

// CSVName maps a figure ID to its export file name.
func CSVName(fig string) string {
	return fmt.Sprintf("%s.csv", fig)
}
