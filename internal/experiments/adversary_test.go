package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"activegeo/internal/measure"
)

// TestAdversaryDisabledGoldenSHA: a nil plan and the zero plan must both
// leave the audit byte-identical to the pre-adversary engine — the
// fingerprint still hashes to the pinned golden SHA-256. This is the
// regression that proves arming infrastructure cannot leak into the
// honest path.
func TestAdversaryDisabledGoldenSHA(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan *measure.AdversaryPlan
	}{
		{"nil-plan", nil},
		{"zero-plan", &measure.AdversaryPlan{}},
	} {
		lab, err := NewLab(tinyAuditConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		lab.Adversary = tc.plan
		run, err := lab.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if run.AdversaryArmed {
			t.Fatalf("%s: audit reports the adversary layer armed", tc.name)
		}
		sum := sha256.Sum256([]byte(Fingerprint(run)))
		if got := hex.EncodeToString(sum[:]); got != auditGoldenSHA256 {
			t.Fatalf("%s: fingerprint sha256 = %s, want golden %s", tc.name, got, auditGoldenSHA256)
		}
	}
}

// TestAdversaryArmedAnnotations: an armed plan (even DetectOnly, with
// zero liars) switches the fingerprint's adversary annotations on, so
// armed and honest audits can never be confused.
func TestAdversaryArmedAnnotations(t *testing.T) {
	lab, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	lab.Adversary = &measure.AdversaryPlan{Seed: 1, DetectOnly: true}
	run, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !run.AdversaryArmed {
		t.Fatal("DetectOnly plan did not arm the audit's detection layer")
	}
	fp := Fingerprint(run)
	if !strings.Contains(fp, "|adv:") {
		t.Fatal("armed fingerprint carries no per-server adversary annotations")
	}
	if !strings.Contains(fp, "\nadversary: flagged:") {
		t.Fatal("armed fingerprint carries no adversary aggregate line")
	}
	if len(run.Inspections) != len(run.Results) {
		t.Fatalf("Inspections has %d entries for %d servers", len(run.Inspections), len(run.Results))
	}
}

// TestAdversarySweepRestoresLab: the sweep must leave the lab's plan
// and memoized audit exactly as it found them.
func TestAdversarySweepRestoresLab(t *testing.T) {
	lab, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	honest, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.AdversarySweep([]AttackPoint{
		{"control", measure.AdversaryPlan{Seed: 1, DetectOnly: true}},
		{"inflate", measure.AdversaryPlan{Seed: 2, Attack: measure.AttackInflate, ProxyFraction: 0.3, Aggressiveness: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if lab.Adversary != nil {
		t.Fatal("sweep left an adversary plan armed on the lab")
	}
	run, err := lab.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if run != honest {
		t.Fatal("sweep dropped the lab's memoized honest audit")
	}
}

// TestAdversarySweepDeterministicAcrossConcurrency: the scored sweep —
// every audit SHA, every confusion matrix, the pooled ratios — must be
// byte-identical at any worker-pool width.
func TestAdversarySweepDeterministicAcrossConcurrency(t *testing.T) {
	matrix := []AttackPoint{
		{"control", measure.AdversaryPlan{Seed: 101, DetectOnly: true}},
		{"decoy", measure.AdversaryPlan{Seed: 102, Attack: measure.AttackDecoy, ProxyFraction: 0.3, Aggressiveness: 1, PretendSpeedKmPerMs: 70}},
		{"inflate+byz", measure.AdversaryPlan{Seed: 103, Attack: measure.AttackInflate, ProxyFraction: 0.3, Aggressiveness: 1, ByzantineFraction: 0.2}},
	}
	sweepAt := func(concurrency int) string {
		lab, err := NewLab(tinyAuditConfig(concurrency))
		if err != nil {
			t.Fatal(err)
		}
		res, err := lab.AdversarySweep(matrix)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	serial := sweepAt(1)
	if par := sweepAt(4); par != serial {
		t.Fatalf("adversary sweep diverged across concurrency:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

// TestAdversaryStreamingParity: an armed streaming pass must reproduce
// the armed batch audit's fingerprint byte for byte — cross-validation,
// landmark exclusion and the population-judged inspections included.
func TestAdversaryStreamingParity(t *testing.T) {
	plan := measure.AdversaryPlan{
		Seed: 42, Attack: measure.AttackInflate, ProxyFraction: 0.3,
		Aggressiveness: 1, ByzantineFraction: 0.15,
	}
	lab1, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	lab1.Adversary = &plan
	run, err := lab1.Audit()
	if err != nil {
		t.Fatal(err)
	}
	batch := Fingerprint(run)

	lab2, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	lab2.Adversary = &plan
	a := lab2.StreamingAuditor(8, 2)
	if _, err := a.Sync(context.Background(), lab2.StreamSource()); err != nil {
		t.Fatal(err)
	}
	if got := a.Store().Fingerprint(); got != batch {
		t.Fatalf("armed streaming pass diverged from batch audit:\n--- batch ---\n%s--- stream ---\n%s", batch, got)
	}
}

// TestAdversaryStreamingRearmDirties: arming the plan after an honest
// pass must dirty every row (the verdicts mean something else now), and
// a disarmed follow-up must restore the honest fingerprint.
func TestAdversaryStreamingRearmDirties(t *testing.T) {
	lab, err := NewLab(tinyAuditConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	honest := lab.StreamingAuditor(8, 2)
	if _, err := honest.Sync(context.Background(), lab.StreamSource()); err != nil {
		t.Fatal(err)
	}
	honestFP := honest.Store().Fingerprint()

	second, err := honest.Sync(context.Background(), lab.StreamSource())
	if err != nil {
		t.Fatal(err)
	}
	if second.Audited != 0 {
		t.Fatalf("unchanged honest fleet re-audited %d servers", second.Audited)
	}

	lab.Adversary = &measure.AdversaryPlan{Seed: 9, DetectOnly: true}
	armed := lab.StreamingAuditor(8, 2)
	// Fresh auditor, fresh store: the first armed pass audits everything.
	stats, err := armed.Sync(context.Background(), lab.StreamSource())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Audited != stats.Total {
		t.Fatalf("armed pass audited %d of %d", stats.Audited, stats.Total)
	}
	if armed.Store().Fingerprint() == honestFP {
		t.Fatal("armed fingerprint identical to the honest one")
	}

	lab.Adversary = nil
	disarmed := lab.StreamingAuditor(8, 2)
	if _, err := disarmed.Sync(context.Background(), lab.StreamSource()); err != nil {
		t.Fatal(err)
	}
	if got := disarmed.Store().Fingerprint(); got != honestFP {
		t.Fatalf("disarmed pass did not restore the honest fingerprint:\n--- honest ---\n%s--- disarmed ---\n%s", honestFP, got)
	}
}

// TestAdversaryDetectionFloors: the pooled detection quality over the
// default attack matrix at the benchmark scale must clear the CI floors
// (precision ≥ 0.9, recall ≥ 0.8) — the same numbers cmd/benchaudit
// -mode adversary enforces.
func TestAdversaryDetectionFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("full attack-matrix sweep at benchmark scale")
	}
	cfg := AdversaryBenchConfig()
	cfg.Concurrency = 8
	lab, err := NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.AdversarySweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.9 {
		t.Errorf("pooled detection precision %.3f below the 0.9 floor\n%s", res.Precision, res.Render())
	}
	if res.Recall < 0.8 {
		t.Errorf("pooled detection recall %.3f below the 0.8 floor\n%s", res.Recall, res.Render())
	}
	for _, pt := range res.Points {
		if pt.Unscored > len(lab.Fleet.Servers())/4 {
			t.Errorf("%s: %d unscored servers — the attack is breaking the pipeline, not evading it", pt.Name, pt.Unscored)
		}
	}
}
