package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"activegeo/internal/measure"
	"activegeo/internal/netsim"
)

// The adversary sweep: run the full audit under each point of an attack
// matrix (attack type × aggressiveness × Byzantine-landmark fraction)
// and score the detection layer's verdicts against the plan's ground
// truth. The paper's §7–§8 threat — an adversary forging delays to fake
// a location — becomes a measurable quantity: how often does the
// manipulation-suspected verdict hit actual liars (precision), and how
// many liars does it catch (recall)? BENCH_adversary.json pins CI
// floors on both.

// AdversaryBenchConfig is the lab scale the CI detection floors are
// measured at (cmd/benchaudit -mode adversary and the floors test use
// the same one): big enough that the honest server population
// calibrates the inspection gates and every attack has a statistical
// signature, small enough that the nine-point sweep stays CI-friendly.
func AdversaryBenchConfig() Config {
	return Config{
		Seed:       7,
		Anchors:    48,
		Probes:     64,
		GridResDeg: 2,
		FleetTotal: 120,
		Volunteers: 2,
		MTurkers:   4,
	}
}

// AttackPoint is one cell of the attack matrix.
type AttackPoint struct {
	Name string
	Plan measure.AdversaryPlan
}

// DefaultAttackMatrix is the matrix the CI floors are enforced on:
// every proxy attack at full and blended aggressiveness, Byzantine
// landmarks alone and mixed in, plus an all-honest control point that
// charges false positives against precision.
func DefaultAttackMatrix() []AttackPoint {
	return []AttackPoint{
		{"control", measure.AdversaryPlan{Seed: 101, DetectOnly: true}},
		{"decoy-full", measure.AdversaryPlan{Seed: 102, Attack: measure.AttackDecoy, ProxyFraction: 0.3, Aggressiveness: 1, PretendSpeedKmPerMs: 70}},
		{"decoy-blend+byz", measure.AdversaryPlan{Seed: 103, Attack: measure.AttackDecoy, ProxyFraction: 0.3, Aggressiveness: 0.7, PretendSpeedKmPerMs: 70, ByzantineFraction: 0.12}},
		{"inflate-full", measure.AdversaryPlan{Seed: 104, Attack: measure.AttackInflate, ProxyFraction: 0.3, Aggressiveness: 1}},
		{"inflate-blend+byz", measure.AdversaryPlan{Seed: 105, Attack: measure.AttackInflate, ProxyFraction: 0.3, Aggressiveness: 0.7, ByzantineFraction: 0.2}},
		{"deflate-full+byz", measure.AdversaryPlan{Seed: 106, Attack: measure.AttackDeflate, ProxyFraction: 0.3, Aggressiveness: 1, ByzantineFraction: 0.12}},
		{"deflate-blend", measure.AdversaryPlan{Seed: 107, Attack: measure.AttackDeflate, ProxyFraction: 0.3, Aggressiveness: 0.85}},
		{"delay-full", measure.AdversaryPlan{Seed: 108, Attack: measure.AttackDelay, ProxyFraction: 0.3, Aggressiveness: 1}},
		{"byzantine-only", measure.AdversaryPlan{Seed: 109, ByzantineFraction: 0.2}},
	}
}

// AdversaryPoint is one matrix cell's scored outcome.
type AdversaryPoint struct {
	Name string
	Plan measure.AdversaryPlan

	// Proxy-side confusion matrix: ManipulationSuspected vs the plan's
	// LyingProxy ground truth, over servers that produced a verdict.
	// Unscored counts servers whose pipeline failed outright — a liar
	// that never measured left nothing to detect (or clear).
	TP, FP, FN, TN int
	Unscored       int

	// Landmark-side confusion matrix: cross-validation flags vs the
	// plan's ByzantineLandmark ground truth, over all anchors.
	LandmarkTP, LandmarkFP, LandmarkFN int

	// Audit aggregates at this point.
	SuspectedServers     int
	FlaggedLandmarks     int
	ExcludedMeasurements int

	// AuditSHA is the SHA-256 of the full audit fingerprint at this
	// point — the cross-concurrency determinism check compares these.
	AuditSHA string
}

// AdversaryResult is the scored sweep.
type AdversaryResult struct {
	Points []AdversaryPoint

	// Pooled detection quality over the whole matrix, proxies and
	// landmarks together — the numbers the CI floors gate on.
	Precision float64
	Recall    float64
	// Per-side pools, for diagnosis.
	ProxyPrecision, ProxyRecall       float64
	LandmarkPrecision, LandmarkRecall float64
}

// AdversarySweep audits the fleet under every matrix point (the default
// matrix when nil) and scores detection against ground truth. The
// lab's adversary plan and memoized audit are restored afterwards, so
// the sweep can run against any lab without disturbing it.
func (l *Lab) AdversarySweep(matrix []AttackPoint) (*AdversaryResult, error) {
	if matrix == nil {
		matrix = DefaultAttackMatrix()
	}
	prevPlan := l.Adversary
	prevAudit := l.audit
	defer func() {
		l.Adversary = prevPlan
		l.audit = prevAudit
	}()

	res := &AdversaryResult{}
	span := l.Telemetry.StartStage("adversary.sweep")
	defer span.End()
	for pi := range matrix {
		plan := matrix[pi].Plan
		l.Adversary = &plan
		l.audit = nil
		run, err := l.Audit()
		if err != nil {
			return nil, fmt.Errorf("experiments: adversary audit at %s: %w", matrix[pi].Name, err)
		}
		res.Points = append(res.Points, l.scoreAdversaryPoint(matrix[pi].Name, &plan, run))
		l.Telemetry.Progress("adversary.sweep", pi+1, len(matrix))
	}

	var tp, fp, fn, ltp, lfp, lfn int
	for _, pt := range res.Points {
		tp += pt.TP
		fp += pt.FP
		fn += pt.FN
		ltp += pt.LandmarkTP
		lfp += pt.LandmarkFP
		lfn += pt.LandmarkFN
	}
	res.ProxyPrecision = ratio(tp, tp+fp)
	res.ProxyRecall = ratio(tp, tp+fn)
	res.LandmarkPrecision = ratio(ltp, ltp+lfp)
	res.LandmarkRecall = ratio(ltp, ltp+lfn)
	res.Precision = ratio(tp+ltp, tp+ltp+fp+lfp)
	res.Recall = ratio(tp+ltp, tp+ltp+fn+lfn)
	return res, nil
}

// scoreAdversaryPoint compares one audited matrix point against the
// plan's ground truth.
func (l *Lab) scoreAdversaryPoint(name string, plan *measure.AdversaryPlan, run *AuditRun) AdversaryPoint {
	pt := AdversaryPoint{
		Name:                 name,
		Plan:                 *plan,
		SuspectedServers:     run.SuspectedServers,
		FlaggedLandmarks:     len(run.FlaggedLandmarks),
		ExcludedMeasurements: run.ExcludedMeasurements,
	}
	for _, r := range run.Results {
		if _, failed := run.Errors[r.ServerID]; failed {
			pt.Unscored++
			continue
		}
		lying := plan.LyingProxy(netsim.HostID(r.ServerID))
		switch {
		case lying && r.ManipulationSuspected:
			pt.TP++
		case lying:
			pt.FN++
		case r.ManipulationSuspected:
			pt.FP++
		default:
			pt.TN++
		}
	}
	for _, lm := range l.Cons.Anchors() {
		byz := plan.ByzantineLandmark(lm.Host.ID)
		flagged := run.Landmarks.IsFlagged(lm.Host.ID)
		switch {
		case byz && flagged:
			pt.LandmarkTP++
		case byz:
			pt.LandmarkFN++
		case flagged:
			pt.LandmarkFP++
		}
	}
	sum := sha256.Sum256([]byte(Fingerprint(run)))
	pt.AuditSHA = hex.EncodeToString(sum[:])
	return pt
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Fingerprint serializes everything observable about the sweep — one
// line per point with the plan signature, the full confusion matrices
// and the audit SHA, then the pooled scores. Two sweeps are identical
// iff their fingerprints are byte-equal; the determinism tests compare
// them across concurrency settings.
func (r *AdversaryResult) Fingerprint() string {
	var b strings.Builder
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%s|sig:%016x|proxy:%d/%d/%d/%d|unscored:%d|lm:%d/%d/%d|sus:%d|flag:%d|excl:%d|%s\n",
			pt.Name, pt.Plan.Signature(), pt.TP, pt.FP, pt.FN, pt.TN, pt.Unscored,
			pt.LandmarkTP, pt.LandmarkFP, pt.LandmarkFN,
			pt.SuspectedServers, pt.FlaggedLandmarks, pt.ExcludedMeasurements, pt.AuditSHA)
	}
	fmt.Fprintf(&b, "pooled: precision:%.6f recall:%.6f proxy:%.6f/%.6f landmark:%.6f/%.6f\n",
		r.Precision, r.Recall, r.ProxyPrecision, r.ProxyRecall, r.LandmarkPrecision, r.LandmarkRecall)
	return b.String()
}

// Render formats the sweep for the cmd layer.
func (r *AdversaryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adversary sweep | detection over %d attack points (pooled precision %.3f, recall %.3f):\n",
		len(r.Points), r.Precision, r.Recall)
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "  %-18s proxies tp:%-3d fp:%-3d fn:%-3d tn:%-3d  landmarks tp:%-2d fp:%-2d fn:%-2d  excluded:%d\n",
			pt.Name, pt.TP, pt.FP, pt.FN, pt.TN, pt.LandmarkTP, pt.LandmarkFP, pt.LandmarkFN, pt.ExcludedMeasurements)
	}
	fmt.Fprintf(&b, "  proxy precision %.3f recall %.3f | landmark precision %.3f recall %.3f\n",
		r.ProxyPrecision, r.ProxyRecall, r.LandmarkPrecision, r.LandmarkRecall)
	return b.String()
}
