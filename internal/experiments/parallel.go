package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Concurrency resolves the lab's worker count for parallel stages:
// Cfg.Concurrency when positive, else GOMAXPROCS.
func (l *Lab) Concurrency() int {
	if l.Cfg.Concurrency > 0 {
		return l.Cfg.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns when all calls have completed. Work is handed
// out by an atomic counter, so fn must write its result into a
// per-index slot and must not rely on call order: determinism comes
// from per-entity random streams (rngFor), never from scheduling. With
// workers ≤ 1 the calls run inline in index order — the serial
// reference the determinism tests compare the parallel runs against.
func parallelFor(n, workers int, fn func(i int)) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
