package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"activegeo/internal/assess"
	"activegeo/internal/datacenter"
	"activegeo/internal/detect"
	"activegeo/internal/geo"
	"activegeo/internal/geoloc"
	"activegeo/internal/grid"
	"activegeo/internal/iclab"
	"activegeo/internal/ipdb"
	"activegeo/internal/mathx"
	"activegeo/internal/measure"
	"activegeo/internal/netsim"
	"activegeo/internal/proxy"
	"activegeo/internal/worldmap"
)

// Fig13Result is the direct-vs-indirect RTT calibration.
type Fig13Result struct {
	Proxies int
	Eta     float64 // paper: 0.49
	R2      float64 // paper: > 0.99
}

// Fig13Eta estimates η from the pingable subset of the fleet: direct
// pings from the client to each proxy, against self-pings through it.
// Each proxy draws from its own seeded stream, so the calibration is
// identical at any concurrency and in any fleet order.
func (l *Lab) Fig13Eta() (*Fig13Result, error) {
	pingable := l.Fleet.Pingable()
	type etaPair struct {
		direct, indirect float64
		ok               bool
	}
	pairs := make([]etaPair, len(pingable))
	span := l.Telemetry.StartStage("fig13.measure")
	parallelFor(len(pingable), l.Concurrency(), func(i int) {
		s := pingable[i]
		rng := l.rngFor(13, s.Host.ID)
		// Direct and indirect measurements both take min-of-8 samples:
		// jitter must be suppressed on both axes, or the regression's R²
		// reflects queueing noise rather than the leg relationship.
		d, err := l.Net.MinOfSamples(l.Client, s.Host.ID, 8, rng)
		if err != nil {
			return
		}
		pt := &measure.ProxiedTool{Net: l.Net, Client: l.Client, Proxy: s.Host.ID, Attempts: 8}
		ind, err := pt.SelfPing(rng)
		if err != nil {
			return
		}
		pairs[i] = etaPair{direct: d, indirect: ind, ok: true}
	})
	span.End()
	var direct, indirect []float64
	for _, p := range pairs {
		if p.ok {
			direct = append(direct, p.direct)
			indirect = append(indirect, p.indirect)
		}
	}
	if len(direct) < 3 {
		return nil, fmt.Errorf("experiments: only %d pingable proxies", len(direct))
	}
	eta, r2, err := measure.EstimateEta(direct, indirect)
	if err != nil {
		return nil, err
	}
	return &Fig13Result{Proxies: len(direct), Eta: eta, R2: r2}, nil
}

// Render formats the result.
func (r *Fig13Result) Render() string {
	return fmt.Sprintf("Fig 13 | η over %d pingable proxies: slope %.3f (paper 0.49), R²=%.4f (paper >0.99)", r.Proxies, r.Eta, r.R2)
}

// Fig14Result is the provider-market claim ranking.
type Fig14Result struct {
	Entries []proxy.MarketEntry
}

// Fig14Market generates the 157-provider market overview.
func (l *Lab) Fig14Market() *Fig14Result {
	return &Fig14Result{Entries: proxy.Market(l.rng(14))}
}

// Render formats the studied providers' ranks.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14 | claim breadth over %d providers (studied providers marked):\n", len(r.Entries))
	for rank, e := range r.Entries {
		if e.Studied {
			fmt.Fprintf(&b, "  rank %3d: provider %s claims %d countries\n", rank+1, e.Name, e.Countries)
		}
	}
	return b.String()
}

// Audit pipeline stage names, as recorded in AuditRun.Errors and the
// telemetry collector.
const (
	StageMeasure = "measure"
	StageLocate  = "locate"
)

// ServerError records why one server produced no prediction region: its
// measurement failed outright (or yielded too few usable samples), or
// CBG++ localization failed on the measurements it did produce.
type ServerError struct {
	Stage string // StageMeasure or StageLocate
	Err   error
}

// CoverageNote annotates one server's verdict with what its measurement
// campaign lost under fault injection: the audit's answer to "how much
// should this verdict be trusted?".
type CoverageNote struct {
	// Planned/Measured count landmarks attempted and landmarks that
	// produced a usable sample.
	Planned  int
	Measured int
	// Retries and ProbeFailures are the resilience layer's work:
	// backoff-retry rounds and failed measurement attempts.
	Retries       int
	ProbeFailures int
	// LostLandmarks are the landmarks that never answered (sorted).
	LostLandmarks []netsim.HostID
	// Disconnected marks a proxy that hung up mid-campaign;
	// BudgetExhausted a campaign cut off by its deadline budget.
	Disconnected    bool
	BudgetExhausted bool
	// Coverage is Measured/Planned; Confidence the derived grade
	// (measure.ConfidenceFull/Degraded/Low).
	Coverage   float64
	Confidence string
}

// AuditRun is the memoized output of the full §6 pipeline.
type AuditRun struct {
	Results []*assess.Result
	// byServer maps server IDs to results for cross-referencing.
	byServer map[string]*assess.Result
	// ReclassifiedByDC counts uncertain→(credible|false) flips from the
	// data-center check; ReclassifiedByGroup from the AS//24 check.
	ReclassifiedByDC    int
	ReclassifiedByGroup int

	// Errors maps server IDs to the reason the pipeline produced no
	// region for them. Such servers are assessed against an empty
	// region (verdict uncertain), but the Figure 17 tallies can now
	// distinguish "measured and uncertain" from "never measured".
	Errors map[string]ServerError
	// MeasureFailures and LocateFailures are the per-stage aggregate
	// counts behind Errors.
	MeasureFailures int
	LocateFailures  int

	// Coverage maps server IDs to their degradation annotations. Only
	// populated when fault injection is armed: on the fault-free path
	// the map is empty and the audit output is unchanged.
	Coverage map[string]CoverageNote
	// Fault-resilience aggregates over all servers.
	Retries         int
	ProbeFailures   int
	LostLandmarks   int
	Disconnects     int
	DegradedServers int // servers whose confidence is not "full"

	// Adversary-detection outputs. Only populated when the lab's
	// adversary plan is armed: on the honest path every field below is
	// zero and the audit output is byte-identical to the pre-adversary
	// engine.
	AdversaryArmed bool
	// Landmarks is the inter-anchor cross-validation report; its
	// Flagged IDs (copied here, sorted) were excluded from every
	// server's localization inputs — ExcludedMeasurements counts the
	// samples dropped that way.
	Landmarks            *detect.LandmarkReport
	FlaggedLandmarks     []netsim.HostID
	ExcludedMeasurements int
	// Inspections maps server IDs to their full manipulation
	// inspection (the verdict fields on assess.Result are a summary of
	// these).
	Inspections map[string]detect.Inspection
	// SuspectedServers counts manipulation-suspected verdicts.
	SuspectedServers int
}

// Audit runs (once) the full pipeline: for every server, self-ping,
// two-phase measurement through the proxy with the CLI tool, η
// correction, CBG++ localization, claim assessment, then data-center and
// metadata disambiguation.
//
// The pipeline is deterministic AND parallel: the measurement phase runs
// through measure.Batch and the localization+assessment phase on a
// bounded worker pool, with every server drawing from its own stream
// seeded by (lab seed, server ID) and results merged in fleet order. A
// serial run (Concurrency: 1) and an N-worker run produce byte-identical
// verdicts; concurrency changes only the wall-clock time.
func (l *Lab) Audit() (*AuditRun, error) {
	if l.audit != nil {
		return l.audit, nil
	}
	tel := l.Telemetry
	servers := l.Fleet.Servers()
	// Cache counters are cumulative over the Env's lifetime; snapshot
	// them here so the deltas reported below cover this audit only.
	fieldBefore := l.Env.Field.Stats()
	var maskBefore grid.MaskStats
	if l.Env.Masks != nil {
		maskBefore = l.Env.Masks.Stats()
	}
	run := &AuditRun{
		byServer: make(map[string]*assess.Result, len(servers)),
		Errors:   map[string]ServerError{},
		Coverage: map[string]CoverageNote{},
	}

	// Stage 0 (adversary plan armed only): cross-validate every anchor
	// against the as-reported calibration mesh. The flagged landmarks
	// are excluded from every server's localization inputs below, and
	// the robust mesh fit doubles as the honest-noise baseline the
	// per-server manipulation detectors compare against.
	plan := l.Adversary
	var lmReport *detect.LandmarkReport
	var inspectCfg detect.InspectConfig
	if plan.Enabled() {
		span := tel.StartStage("audit.crossvalidate")
		edges := detect.MeshEdges(l.Cons, plan.ReportedPosition, plan.ReportBiasMs)
		lmReport = detect.CrossValidate(edges, detect.DefaultCrossValidateConfig())
		inspectCfg = detect.DefaultInspectConfig()
		run.AdversaryArmed = true
		run.Landmarks = lmReport
		run.FlaggedLandmarks = append([]netsim.HostID(nil), lmReport.Flagged...)
		run.Inspections = make(map[string]detect.Inspection, len(servers))
		span.End()
	}

	// Stage 1: two-phase measurement through every proxy, batched.
	span := tel.StartStage("audit.measure")
	proxies := make([]netsim.HostID, len(servers))
	for i, s := range servers {
		proxies[i] = s.Host.ID
	}
	batch := &measure.Batch{
		Cons:        l.Cons,
		Client:      l.Client,
		Eta:         measure.DefaultEta,
		Concurrency: l.Concurrency(),
		Seed:        l.streamSeed(17),
		Policy:      l.policy(),
		Adversary:   plan,
		OnProgress: func(done, total int) {
			tel.Progress("audit.measure", done, total)
		},
	}
	measured := batch.Run(context.Background(), proxies)
	span.End()

	// Stage 2: CBG++ localization + claim assessment, worker pool with
	// per-index slots merged in fleet order.
	span = tel.StartStage("audit.locate")
	assessed := make([]*assess.Result, len(servers))
	serverErrs := make([]*ServerError, len(servers))
	inspections := make([]detect.Inspection, len(servers))
	excluded := make([]int, len(servers))
	var located int64
	parallelFor(len(servers), l.Concurrency(), func(i int) {
		s := servers[i]
		region := l.Env.Grid.NewRegion()
		var ms []geoloc.Measurement
		switch {
		case measured[i].Err != nil:
			serverErrs[i] = &ServerError{Stage: StageMeasure, Err: measured[i].Err}
		default:
			ms = measured[i].Result.Measurements()
			if run.AdversaryArmed {
				// Flagged landmarks' reports are poison: drop them from
				// the localization inputs before fitting a region.
				kept := make([]geoloc.Measurement, 0, len(ms))
				for _, m := range ms {
					if !lmReport.IsFlagged(m.LandmarkID) {
						kept = append(kept, m)
					}
				}
				excluded[i] = len(ms) - len(kept)
				ms = kept
			}
			if len(ms) < 4 {
				serverErrs[i] = &ServerError{
					Stage: StageMeasure,
					Err:   fmt.Errorf("experiments: only %d usable measurements (need 4)", len(ms)),
				}
			} else if r2, lerr := l.CBGpp.Locate(ms); lerr != nil {
				serverErrs[i] = &ServerError{Stage: StageLocate, Err: lerr}
			} else {
				region = r2
			}
		}
		a := assess.Assess(l.Env.Mask, region, string(s.Host.ID), s.Provider, s.ClaimedCountry)
		if run.AdversaryArmed {
			if c, ok := region.Centroid(); ok {
				inspections[i] = detect.InspectServer(ms, c, inspectCfg)
			}
		}
		assessed[i] = a
		tel.Progress("audit.locate", int(atomic.AddInt64(&located, 1)), len(servers))
	})
	span.End()

	// The per-server fits are judged as a population: the honest
	// majority of servers calibrates the spread/shift gates, so a noisy
	// network doesn't read as an attack and a quiet one doesn't hide it.
	if run.AdversaryArmed {
		byID := make(map[string]detect.Inspection, len(servers))
		for i, a := range assessed {
			byID[a.ServerID] = inspections[i]
		}
		judged := detect.JudgeServers(byID, inspectCfg)
		for i, a := range assessed {
			inspections[i] = judged[a.ServerID]
			a.ManipulationSuspected = inspections[i].Suspected
			a.ManipulationScore = inspections[i].Score
			a.ManipulationReasons = inspections[i].Reasons
		}
	}

	for i, a := range assessed {
		if e := serverErrs[i]; e != nil {
			run.Errors[a.ServerID] = *e
			if e.Stage == StageMeasure {
				run.MeasureFailures++
			} else {
				run.LocateFailures++
			}
		}
		if res := measured[i].Result; res != nil && res.Deg != nil {
			note := coverageNote(res.Deg)
			run.Coverage[a.ServerID] = note
			run.Retries += note.Retries
			run.ProbeFailures += note.ProbeFailures
			run.LostLandmarks += len(note.LostLandmarks)
			if note.Disconnected {
				run.Disconnects++
			}
			if note.Confidence != measure.ConfidenceFull {
				run.DegradedServers++
			}
		}
		if a.VerdictRaw == assess.Uncertain && a.Verdict != assess.Uncertain {
			run.ReclassifiedByDC++
		}
		if run.AdversaryArmed {
			run.ExcludedMeasurements += excluded[i]
			run.Inspections[a.ServerID] = inspections[i]
			if a.ManipulationSuspected {
				run.SuspectedServers++
			}
		}
		run.Results = append(run.Results, a)
		run.byServer[a.ServerID] = a
	}

	// Stage 3 — Figure 16: metadata disambiguation over provider/AS//24
	// groups. Groups are disjoint, so traversal order cannot change the
	// outcome; keys are still sorted for a stable telemetry trace.
	span = tel.StartStage("audit.disambiguate")
	groups := l.Fleet.DataCenterGroups()
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		group := groups[key]
		if len(group) < 2 {
			continue
		}
		members := make([]*assess.Result, 0, len(group))
		for _, s := range group {
			if r, ok := run.byServer[string(s.Host.ID)]; ok {
				members = append(members, r)
			}
		}
		before := countUncertain(members)
		assess.DisambiguateGroup(members)
		run.ReclassifiedByGroup += before - countUncertain(members)
	}
	span.End()

	tel.Add("audit.servers", int64(len(servers)))
	tel.Add("audit.failures.measure", int64(run.MeasureFailures))
	tel.Add("audit.failures.locate", int64(run.LocateFailures))
	tel.Add("audit.reclassified.dc", int64(run.ReclassifiedByDC))
	tel.Add("audit.reclassified.group", int64(run.ReclassifiedByGroup))
	if run.AdversaryArmed {
		tel.Add("audit.adversary.flagged", int64(len(run.FlaggedLandmarks)))
		tel.Add("audit.adversary.excluded", int64(run.ExcludedMeasurements))
		tel.Add("audit.adversary.suspected", int64(run.SuspectedServers))
	}
	if len(run.Coverage) > 0 {
		tel.Add("audit.faults.retries", int64(run.Retries))
		tel.Add("audit.faults.probefailures", int64(run.ProbeFailures))
		tel.Add("audit.faults.lostlandmarks", int64(run.LostLandmarks))
		tel.Add("audit.faults.disconnects", int64(run.Disconnects))
		tel.Add("audit.faults.degraded", int64(run.DegradedServers))
	}
	fieldAfter := l.Env.Field.Stats()
	tel.Add("geo.field.hits", int64(fieldAfter.Hits-fieldBefore.Hits))
	tel.Add("geo.field.misses", int64(fieldAfter.Misses-fieldBefore.Misses))
	tel.Add("geo.field.evictions", int64(fieldAfter.Evictions-fieldBefore.Evictions))
	if l.Env.Masks != nil {
		maskAfter := l.Env.Masks.Stats()
		tel.Add("geo.mask.hits", int64(maskAfter.Hits-maskBefore.Hits))
		tel.Add("geo.mask.misses", int64(maskAfter.Misses-maskBefore.Misses))
		tel.Add("geo.mask.evictions", int64(maskAfter.Evictions-maskBefore.Evictions))
		tel.Add("geo.mask.refined", int64(maskAfter.RefinedCells-maskBefore.RefinedCells))
	}
	l.audit = run
	return run, nil
}

// coverageNote converts a measurement-layer degradation ledger into the
// audit's per-server annotation.
func coverageNote(d *measure.Degradation) CoverageNote {
	return CoverageNote{
		Planned:         d.Planned,
		Measured:        d.Measured,
		Retries:         d.Retries,
		ProbeFailures:   d.ProbeFailures,
		LostLandmarks:   append([]netsim.HostID(nil), d.LostLandmarks...),
		Disconnected:    d.Disconnected,
		BudgetExhausted: d.BudgetExhausted,
		Coverage:        d.Coverage(),
		Confidence:      d.Confidence(),
	}
}

func countUncertain(rs []*assess.Result) int {
	n := 0
	for _, r := range rs {
		if r.Verdict == assess.Uncertain {
			n++
		}
	}
	return n
}

// Fig17Result is the overall assessment.
type Fig17Result struct {
	Tally               assess.Tally
	ReclassifiedByDC    int
	ReclassifiedByGroup int
	// MeasureFailures/LocateFailures split the uncertain verdicts that
	// stem from pipeline failures (no region at all) from genuinely
	// measured-but-ambiguous servers.
	MeasureFailures int
	LocateFailures  int
	TopClaimed      []assess.CountryBar // countries by claimed count
	TopProbable     []assess.CountryBar // countries by probable (measured) count
}

// Fig17Assessment tabulates the audit.
func (l *Lab) Fig17Assessment() (*Fig17Result, error) {
	run, err := l.Audit()
	if err != nil {
		return nil, err
	}
	return &Fig17Result{
		Tally:               assess.Tabulate(run.Results),
		ReclassifiedByDC:    run.ReclassifiedByDC,
		ReclassifiedByGroup: run.ReclassifiedByGroup,
		MeasureFailures:     run.MeasureFailures,
		LocateFailures:      run.LocateFailures,
		TopClaimed: assess.CountryBreakdown(run.Results, func(r *assess.Result) string {
			return r.ClaimedCountry
		}),
		TopProbable: assess.CountryBreakdown(run.Results, func(r *assess.Result) string {
			return r.ProbableCountry
		}),
	}, nil
}

// Render formats the result.
func (r *Fig17Result) Render() string {
	var b strings.Builder
	t := r.Tally
	fmt.Fprintf(&b, "Fig 17 | overall assessment of %d servers (paper: 989 credible / 642 uncertain / 638 false of 2269):\n", t.Total())
	fmt.Fprintf(&b, "  credible %d (%.0f%%)  uncertain %d (%.0f%%)  false %d (%.0f%%)\n",
		t.Credible, pct(t.Credible, t.Total()), t.Uncertain, pct(t.Uncertain, t.Total()), t.False, pct(t.False, t.Total()))
	fmt.Fprintf(&b, "  false & off-continent: %d (paper: 401 of 638)  uncertain but continent-credible: %d (paper: 462 of 642)\n",
		t.FalseOffContinent, t.UncertainSameCont)
	fmt.Fprintf(&b, "  reclassified: %d by data centers, %d by AS//24 groups (paper: 353 total)\n",
		r.ReclassifiedByDC, r.ReclassifiedByGroup)
	fmt.Fprintf(&b, "  never measured (pipeline failures): %d measurement, %d localization — the rest of the uncertain verdicts were measured but ambiguous\n",
		r.MeasureFailures, r.LocateFailures)
	fmt.Fprintf(&b, "  top claimed countries:  %s\n", renderBars(r.TopClaimed, 10))
	fmt.Fprintf(&b, "  top probable countries: %s\n", renderBars(r.TopProbable, 10))
	return b.String()
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func renderBars(bars []assess.CountryBar, n int) string {
	if n > len(bars) {
		n = len(bars)
	}
	parts := make([]string, 0, n)
	for _, bar := range bars[:n] {
		parts = append(parts, fmt.Sprintf("%s:%d", bar.Country, bar.Count))
	}
	return strings.Join(parts, " ")
}

// Fig18Result is the provider×country honesty matrix.
type Fig18Result struct {
	Cells []assess.HonestyCell
}

// Fig18HonestyByCountry computes the Figure 18/19 cells.
func (l *Lab) Fig18HonestyByCountry() (*Fig18Result, error) {
	run, err := l.Audit()
	if err != nil {
		return nil, err
	}
	return &Fig18Result{Cells: assess.HonestyMatrix(run.Results)}, nil
}

// Render shows the most-claimed countries' columns per provider.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 18/19 | honesty by provider and country (backed claims / claims; paper: credible claims concentrate in common hosting countries):\n")
	byProv := map[string][]assess.HonestyCell{}
	for _, c := range r.Cells {
		byProv[c.Provider] = append(byProv[c.Provider], c)
	}
	provs := make([]string, 0, len(byProv))
	for p := range byProv {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		cells := byProv[p]
		sort.Slice(cells, func(i, j int) bool { return cells[i].Claimed > cells[j].Claimed })
		var agg, claimed int
		for _, c := range cells {
			agg += c.Backed
			claimed += c.Claimed
		}
		n := 6
		if n > len(cells) {
			n = len(cells)
		}
		parts := make([]string, 0, n)
		for _, c := range cells[:n] {
			parts = append(parts, fmt.Sprintf("%s %d/%d", c.Country, c.Backed, c.Claimed))
		}
		fmt.Fprintf(&b, "  %s: overall %3.0f%%  top: %s\n", p, 100*float64(agg)/float64(claimed), strings.Join(parts, ", "))
	}
	return b.String()
}

// Fig20Result checks whether region size correlates with landmark
// proximity within one data-center group.
type Fig20Result struct {
	GroupKey    string
	Servers     int
	Corr        float64 // paper: no correlation
	MeanAreaKm2 float64
}

// Fig20RegionSizeVsLandmark analyzes the largest AS//24 group, as the
// paper does for AS63128.
func (l *Lab) Fig20RegionSizeVsLandmark() (*Fig20Result, error) {
	run, err := l.Audit()
	if err != nil {
		return nil, err
	}
	var bestKey string
	var bestGroup []*proxy.Server
	for key, group := range l.Fleet.DataCenterGroups() {
		if len(group) > len(bestGroup) {
			bestKey, bestGroup = key, group
		}
	}
	if len(bestGroup) < 3 {
		return nil, fmt.Errorf("experiments: no sizable group")
	}
	var areas, dists []float64
	for _, s := range bestGroup {
		r, ok := run.byServer[string(s.Host.ID)]
		if !ok || r.Region == nil || r.Region.Empty() {
			continue
		}
		c, ok2 := r.Region.Centroid()
		if !ok2 {
			continue
		}
		// Distance from the region centroid to the nearest landmark.
		nearest := nearestLandmarkKm(l, c)
		areas = append(areas, r.Region.AreaKm2())
		dists = append(dists, nearest)
	}
	if len(areas) < 3 {
		return nil, fmt.Errorf("experiments: group has too few usable regions")
	}
	return &Fig20Result{
		GroupKey:    bestKey,
		Servers:     len(areas),
		Corr:        pearson(dists, areas),
		MeanAreaKm2: mathx.Mean(areas),
	}, nil
}

func nearestLandmarkKm(l *Lab, p geo.Point) float64 {
	best := geo.HalfEquatorKm
	for _, lm := range l.Cons.All() {
		if d := geo.DistanceKm(lm.Host.Loc, p); d < best {
			best = d
		}
	}
	return best
}

// Render formats the result.
func (r *Fig20Result) Render() string {
	return fmt.Sprintf(
		"Fig 20 | group %s (%d servers): corr(region size, nearest-landmark distance) = %.3f (paper: no correlation), mean area %.0f km²",
		r.GroupKey, r.Servers, r.Corr, r.MeanAreaKm2)
}

// Fig21Row is one provider column of the comparison matrix.
type Fig21Row struct {
	Provider        string
	CBGppGenerous   float64
	CBGppStrict     float64
	ICLab           float64
	Databases       map[string]float64
	ProviderHonesty float64 // ground truth, for reference (not in the paper)
}

// Fig21Comparison computes the agreement matrix: CBG++ two ways, the
// ICLab checker, and the five IP-to-location databases.
func (l *Lab) Fig21Comparison() ([]Fig21Row, error) {
	run, err := l.Audit()
	if err != nil {
		return nil, err
	}
	agreement := assess.Agreement(run.Results)
	agreeByProv := map[string]assess.ProviderAgreement{}
	for _, a := range agreement {
		agreeByProv[a.Provider] = a
	}

	checker := &iclab.Checker{}
	var rows []Fig21Row
	span := l.Telemetry.StartStage("fig21.iclab")
	for _, p := range l.Fleet.Providers {
		row := Fig21Row{Provider: p.Name, Databases: map[string]float64{}, ProviderHonesty: p.Honesty}
		if a, ok := agreeByProv[p.Name]; ok {
			row.CBGppGenerous = a.Generous
			row.CBGppStrict = a.Strict
		}
		// ICLab: re-measure through each proxy (the checker consumes raw
		// indirect measurements; its speed limit absorbs the extra leg).
		// The re-measurement runs through the deterministic batch: each
		// proxy's stream depends only on (seed, proxy ID), not on its
		// position in the provider's roster.
		proxies := make([]netsim.HostID, len(p.Servers))
		for i, s := range p.Servers {
			proxies[i] = s.Host.ID
		}
		batch := &measure.Batch{
			Cons:        l.Cons,
			Client:      l.Client,
			Eta:         measure.DefaultEta,
			Concurrency: l.Concurrency(),
			Seed:        l.streamSeed(21),
		}
		accepted, checked := 0, 0
		for i, br := range batch.Run(context.Background(), proxies) {
			if br.Err != nil {
				continue
			}
			v, err := checker.Check(p.Servers[i].ClaimedCountry, br.Result.Measurements())
			if err != nil {
				continue
			}
			checked++
			if v.Accepted {
				accepted++
			}
		}
		if checked > 0 {
			row.ICLab = float64(accepted) / float64(checked)
		}
		for _, db := range ipdb.Databases() {
			row.Databases[db.Name] = db.AgreementRate(p.Servers)
		}
		rows = append(rows, row)
	}
	span.End()
	return rows, nil
}

// RenderFig21 formats the matrix.
func RenderFig21(rows []Fig21Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 21 | %% of claims each method agrees with (paper: databases agree far more than active geolocation):\n")
	fmt.Fprintf(&b, "  %-22s", "method")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s", r.Provider)
	}
	fmt.Fprintln(&b)
	printRow := func(name string, get func(Fig21Row) float64) {
		fmt.Fprintf(&b, "  %-22s", name)
		for _, r := range rows {
			fmt.Fprintf(&b, " %2.0f", 100*get(r))
		}
		fmt.Fprintln(&b)
	}
	printRow("CBG++ (generous)", func(r Fig21Row) float64 { return r.CBGppGenerous })
	printRow("CBG++ (strict)", func(r Fig21Row) float64 { return r.CBGppStrict })
	printRow("ICLab", func(r Fig21Row) float64 { return r.ICLab })
	for _, db := range ipdb.Databases() {
		name := db.Name
		printRow(name, func(r Fig21Row) float64 { return r.Databases[name] })
	}
	printRow("(ground-truth honesty)", func(r Fig21Row) float64 { return r.ProviderHonesty })
	return b.String()
}

// ConfusionResult holds both confusion matrices.
type ConfusionResult struct {
	Continents map[[2]string]int
	Countries  map[[2]string]int
}

// Fig22_23Confusion computes the Figures 22–23 matrices over the audit's
// uncertain predictions.
func (l *Lab) Fig22_23Confusion() (*ConfusionResult, error) {
	run, err := l.Audit()
	if err != nil {
		return nil, err
	}
	return &ConfusionResult{
		Continents: assess.ConfusionMatrix(run.Results, assess.ContinentKey),
		Countries:  assess.ConfusionMatrix(run.Results, func(c string) string { return c }),
	}, nil
}

// Render summarizes the continent matrix (the country matrix has
// thousands of cells; the renderer shows its strongest confusions).
func (r *ConfusionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 22 | continent confusion (diagonal = regions within one continent):\n")
	conts := worldmap.AllContinents()
	fmt.Fprintf(&b, "  %-16s", "")
	for _, c := range conts {
		fmt.Fprintf(&b, " %6.6s", c.String())
	}
	fmt.Fprintln(&b)
	for _, a := range conts {
		fmt.Fprintf(&b, "  %-16s", a.String())
		for _, c := range conts {
			fmt.Fprintf(&b, " %6d", r.Continents[[2]string{a.String(), c.String()}])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "Fig 23 | strongest cross-country confusions:\n")
	type pairCount struct {
		pair  [2]string
		count int
	}
	var pairs []pairCount
	for p, n := range r.Countries {
		if p[0] < p[1] { // each unordered pair once, off-diagonal only
			pairs = append(pairs, pairCount{p, n})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].pair[0]+pairs[i].pair[1] < pairs[j].pair[0]+pairs[j].pair[1]
	})
	n := 12
	if n > len(pairs) {
		n = len(pairs)
	}
	for _, pc := range pairs[:n] {
		fmt.Fprintf(&b, "  %s ↔ %s: %d\n", pc.pair[0], pc.pair[1], pc.count)
	}
	return b.String()
}

// DisambiguationResult quantifies Figures 15–16 at fleet scale.
type DisambiguationResult struct {
	UncertainBefore int
	ByDataCenters   int
	ByGroups        int
}

// Fig16Disambiguation reports how many uncertain verdicts the two
// refinements resolved (paper: 353 of the uncertain cases).
func (l *Lab) Fig16Disambiguation() (*DisambiguationResult, error) {
	run, err := l.Audit()
	if err != nil {
		return nil, err
	}
	before := 0
	for _, r := range run.Results {
		if r.VerdictRaw == assess.Uncertain {
			before++
		}
	}
	return &DisambiguationResult{
		UncertainBefore: before,
		ByDataCenters:   run.ReclassifiedByDC,
		ByGroups:        run.ReclassifiedByGroup,
	}, nil
}

// Render formats the result.
func (r *DisambiguationResult) Render() string {
	return fmt.Sprintf(
		"Fig 15/16 | of %d uncertain predictions, %d resolved by data-center locations and %d by AS//24 metadata (paper: 353 total)",
		r.UncertainBefore, r.ByDataCenters, r.ByGroups)
}

// DCCheck exposes the datacenter package's region query for the
// quickstart example and the cmd layer.
func DCCheck(run *AuditRun) int {
	n := 0
	for _, r := range run.Results {
		if r.Region != nil && !r.Region.Empty() && len(datacenter.InRegion(r.Region)) > 0 {
			n++
		}
	}
	return n
}
